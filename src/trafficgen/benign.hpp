// Benign IoT traffic generator, modelled on the smart-environment traffic of
// Sivanathan et al. (the paper's normal dataset [30]) and HorusEye's benign
// captures [15]. Six device classes share one latent "activity" manifold:
// more active flows send larger packets, faster, and for longer. This joint
// structure is what the autoencoders learn and what attacks (attacks.hpp)
// violate — the mechanism behind the paper's Fig. 2 overlap and the
// iGuard-vs-iForest accuracy gap.
#pragma once

#include <vector>

#include "ml/rng.hpp"
#include "trafficgen/flowspec.hpp"

namespace iguard::traffic {

enum class DeviceClass {
  kSensor,      // MQTT/CoAP telemetry: small, slow, short flows
  kSmartPlug,   // near-constant keep-alives: tiny, strictly periodic
  kDns,         // 2-packet query/response
  kNtp,         // 2-packet, periodic
  kHttpControl, // app/API chatter: medium size & rate
  kCamera,      // streaming: large, fast, long flows
  kBackup       // rare firmware/backup bursts: manifold extreme, sparse in
                // training — separates generalising detectors (AEs) from
                // proximity detectors (kNN/X-means), as real traffic does
};

/// The benign manifold: flow statistics as a deterministic function of the
/// activity latent a in [0,1] (before per-class noise). Exposed so attack
/// generators and tests can reference the same manifold.
struct ManifoldPoint {
  double size_mu;    // bytes
  double ipd_mean;   // seconds
  double packets;    // expected packet budget
};
ManifoldPoint benign_manifold(double activity);

struct BenignConfig {
  std::size_t flows = 1000;
  double horizon = 600.0;  // flow start times uniform over [0, horizon) s
  std::uint32_t device_count = 24;
};

/// Draw benign flow specs (device mix roughly matching an IoT deployment).
std::vector<FlowSpec> benign_flows(const BenignConfig& cfg, ml::Rng& rng);

/// Convenience: specs -> packets.
Trace benign_trace(const BenignConfig& cfg, ml::Rng& rng);

}  // namespace iguard::traffic
