#include "core/model_swap.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/forest_compile.hpp"

namespace iguard::core {

std::shared_ptr<const ModelBundle> build_bundle(std::uint64_t version, VoteWhitelist fl,
                                                rules::Quantizer fl_q, VoteWhitelist pl,
                                                rules::Quantizer pl_q, ml::CompiledForest forest,
                                                std::vector<std::int32_t> ae_thresholds_q16) {
  auto b = std::make_shared<ModelBundle>();
  b->version = version;
  b->fl = std::move(fl);
  b->pl = std::move(pl);
  b->fl_q = std::move(fl_q);
  b->pl_q = std::move(pl_q);
  b->fl_compiled = CompiledVoteWhitelist(b->fl);
  if (b->has_pl()) b->pl_compiled = CompiledVoteWhitelist(b->pl);
  b->forest = std::move(forest);
  b->ae_thresholds_q16 = std::move(ae_thresholds_q16);
  return b;
}

// --- ModelDistributor ------------------------------------------------------

std::shared_ptr<const ModelBundle> ModelDistributor::get_or_build(std::uint64_t version,
                                                                  const Builder& build) {
  std::lock_guard<std::mutex> lock(mu_);
  ++distributions_;
  for (const auto& [v, b] : cache_) {
    if (v == version) return b;
  }
  if (build == nullptr) throw std::invalid_argument("ModelDistributor: builder is null");
  auto built = build();
  if (built == nullptr) throw std::invalid_argument("ModelDistributor: builder returned null");
  if (built->version != version) {
    throw std::invalid_argument("ModelDistributor: built bundle version mismatch");
  }
  ++compiles_;  // only successful builds count: failures are not cached
  cache_.emplace_back(version, built);
  return built;
}

std::size_t ModelDistributor::compiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return compiles_;
}

std::size_t ModelDistributor::distributions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return distributions_;
}

std::size_t ModelDistributor::versions_cached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

// --- ModelHandle -----------------------------------------------------------

ModelHandle::ModelHandle(std::shared_ptr<const ModelBundle> initial)
    : cur_(initial.get()), live_(std::move(initial)) {
  if (live_ == nullptr) throw std::invalid_argument("ModelHandle: initial bundle is null");
}

std::size_t ModelHandle::register_reader() {
  std::lock_guard<std::mutex> lock(mu_);
  if (slots_.size() >= kMaxReaders) {
    throw std::length_error("ModelHandle: reader slots exhausted");
  }
  slots_.push_back(std::make_unique<std::atomic<const ModelBundle*>>(nullptr));
  return slots_.size() - 1;
}

const ModelBundle* ModelHandle::pin(std::size_t reader) {
  std::atomic<const ModelBundle*>& slot = *slots_[reader];
  for (;;) {
    const ModelBundle* b = cur_.load(std::memory_order_acquire);
    // Hazard protocol: advertise the candidate pointer, then confirm it is
    // still current. The candidate is never dereferenced before the
    // confirm load succeeds, so a concurrent publish+collect that freed it
    // in the gap only costs a retry. Once confirmed, any publish() that
    // retires `b` happened-after the slot store, so collect() observes the
    // pin and keeps the bundle alive. The seq_cst pair provides the
    // StoreLoad ordering the protocol needs.
    slot.store(b, std::memory_order_seq_cst);
    if (cur_.load(std::memory_order_seq_cst) == b) return b;
  }
}

void ModelHandle::quiesce(std::size_t reader) {
  slots_[reader]->store(nullptr, std::memory_order_seq_cst);
}

std::uint64_t ModelHandle::publish(std::shared_ptr<const ModelBundle> next) {
  if (next == nullptr) throw std::invalid_argument("ModelHandle: published bundle is null");
  std::lock_guard<std::mutex> lock(mu_);
  if (next->version <= live_->version) {
    throw std::invalid_argument("ModelHandle: published version must increase");
  }
  retired_.push_back(std::move(live_));
  live_ = std::move(next);
  cur_.store(live_.get(), std::memory_order_seq_cst);
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return live_->version;
}

std::size_t ModelHandle::collect() {
  std::lock_guard<std::mutex> lock(mu_);
  // A retired bundle is reclaimable once no hazard slot advertises it. A
  // stale slot that happens to alias a *newer* bundle's address only keeps
  // that newer bundle alive longer — conservative, never unsafe.
  std::size_t reclaimed = 0;
  std::erase_if(retired_, [&](const std::shared_ptr<const ModelBundle>& b) {
    for (const auto& slot : slots_) {
      if (slot->load(std::memory_order_seq_cst) == b.get()) return false;
    }
    ++reclaimed;
    return true;
  });
  return reclaimed;
}

std::size_t ModelHandle::readers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

std::size_t ModelHandle::retired_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_.size();
}

// --- DriftDetector ---------------------------------------------------------

DriftSignal DriftDetector::observe(double miss_fraction, bool fully_covered,
                                   std::size_t rejected_total) {
  if (!cfg_.enabled || cfg_.window == 0) return DriftSignal::kNone;
  if (!have_rejected_start_) {
    rejected_at_window_start_ = rejected_total;
    have_rejected_start_ = true;
  }
  ++obs_in_window_;
  if (!fully_covered) ++misses_in_window_;
  vote_sum_ += miss_fraction;
  if (obs_in_window_ < cfg_.window) return DriftSignal::kNone;

  // Window boundary: summarise, then judge or calibrate.
  const double n = static_cast<double>(obs_in_window_);
  last_miss_rate_ = static_cast<double>(misses_in_window_) / n;
  last_vote_ = vote_sum_ / n;
  const std::size_t rejected_delta = rejected_total - rejected_at_window_start_;
  ++windows_closed_;
  obs_in_window_ = 0;
  misses_in_window_ = 0;
  vote_sum_ = 0.0;
  rejected_at_window_start_ = rejected_total;

  if (cooldown_left_ > 0) {
    --cooldown_left_;
    return DriftSignal::kNone;
  }
  if (!baseline_ready_) {
    baseline_miss_accum_ += last_miss_rate_;
    baseline_vote_accum_ += last_vote_;
    if (++baseline_accum_windows_ >= std::max<std::size_t>(cfg_.baseline_windows, 1)) {
      const double w = static_cast<double>(baseline_accum_windows_);
      baseline_miss_rate_ = baseline_miss_accum_ / w;
      baseline_vote_ = baseline_vote_accum_ / w;
      baseline_ready_ = true;
    }
    return DriftSignal::kNone;
  }
  // Strongest-signal order: a rising miss rate is the most direct evidence
  // the deployed whitelist no longer covers benign traffic.
  if (last_miss_rate_ > baseline_miss_rate_ + cfg_.miss_rate_margin) {
    ++fires_;
    return DriftSignal::kMissRate;
  }
  if (last_vote_ > baseline_vote_ + cfg_.vote_shift ||
      last_vote_ + cfg_.vote_shift < baseline_vote_) {
    ++fires_;
    return DriftSignal::kVoteShift;
  }
  if (cfg_.rejected_slope > 0 && rejected_delta >= cfg_.rejected_slope) {
    ++fires_;
    return DriftSignal::kRejectedSlope;
  }
  return DriftSignal::kNone;
}

void DriftDetector::reset() {
  obs_in_window_ = 0;
  misses_in_window_ = 0;
  vote_sum_ = 0.0;
  have_rejected_start_ = false;
  rejected_at_window_start_ = 0;
  baseline_ready_ = false;
  baseline_accum_windows_ = 0;
  baseline_miss_accum_ = 0.0;
  baseline_vote_accum_ = 0.0;
  baseline_miss_rate_ = 0.0;
  baseline_vote_ = 0.0;
  cooldown_left_ = cfg_.cooldown_windows;
}

// --- Rebuilders ------------------------------------------------------------

ModelRebuilder recompile_rebuilder() {
  return [](const RebuildInput& in) {
    // Adopting staging extensions changes only the rules; the last distilled
    // forest (and teacher thresholds) remain the deployed model artifacts.
    return build_bundle(in.new_version, *in.staging_fl, in.current->fl_q, in.current->pl,
                        in.current->pl_q, in.current->forest, in.current->ae_thresholds_q16);
  };
}

ModelRebuilder distill_rebuilder(const AeEnsemble& teacher, GuidedForestConfig forest_cfg,
                                 WhitelistConfig whitelist_cfg, std::size_t min_rows,
                                 std::uint64_t seed) {
  return [&teacher, forest_cfg, whitelist_cfg, min_rows,
          seed](const RebuildInput& in) -> std::shared_ptr<const ModelBundle> {
    if (in.recent == nullptr || in.recent->rows() < std::max<std::size_t>(min_rows, 1)) {
      // Not enough retained traffic to learn from: fall back to publishing
      // the staging extensions, which is always safe.
      return recompile_rebuilder()(in);
    }
    GuidedIsolationForest forest(forest_cfg);
    ml::Rng rng(seed + in.new_version);  // per-version stream, still deterministic
    forest.fit(*in.recent, teacher, rng);
    WhitelistConfig wcfg = whitelist_cfg;
    // Robust support of the *recent* epochs: the refreshed whitelist must
    // not admit feature values the drifted benign traffic never produced.
    wcfg.clip = support_clip(*in.recent, in.current->fl_q);
    VoteWhitelist fresh = compile_per_tree(forest, in.current->fl_q, wcfg);
    // The refreshed forest is also AOT-compiled into the bundle so the flat
    // kernel hitless-swaps in lockstep with the whitelist it distilled.
    return build_bundle(in.new_version, std::move(fresh), in.current->fl_q, in.current->pl,
                        in.current->pl_q, compile_forest(forest, in.current->fl_q),
                        quantize_ae_thresholds(teacher));
  };
}

}  // namespace iguard::core
