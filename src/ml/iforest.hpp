// Conventional Isolation Forest (Liu, Ting & Zhou, ICDM 2008) — the baseline
// the paper compares against (its data-plane deployment follows HorusEye).
// Each iTree splits on a uniformly random (feature, value) pair until a node
// holds <= 1 sample or the height cap ceil(log2 psi) is reached. The anomaly
// score of x is 2^(-E[h(x)]/c(psi)) where E[h(x)] is the mean path length
// over trees and c(n) the average unsuccessful-BST-search length.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/detector.hpp"
#include "ml/matrix.hpp"
#include "ml/rng.hpp"

namespace iguard::ml {

/// c(n): expected path length of an unsuccessful BST search over n samples;
/// normalises iForest path lengths and pads leaves that stopped early.
double average_path_length(std::size_t n);

/// Node of an isolation tree, stored flat. feature == -1 marks a leaf.
struct ITreeNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  std::size_t size = 0;  // training samples that reached this node
  int depth = 0;
};

struct ITree {
  std::vector<ITreeNode> nodes;

  /// h(x): depth of the leaf x falls into plus c(leaf.size).
  double path_length(std::span<const double> x) const;
  /// Index of the leaf node x falls into.
  int leaf_index(std::span<const double> x) const;
  std::size_t leaf_count() const;
};

struct IsolationForestConfig {
  std::size_t num_trees = 100;    // t
  std::size_t subsample = 256;    // Psi
  double contamination = 0.05;    // expected anomaly fraction -> threshold
};

class IsolationForest : public AnomalyDetector {
 public:
  explicit IsolationForest(IsolationForestConfig cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& benign, Rng& rng) override;
  double score(std::span<const double> x) override { return anomaly_score(x); }
  bool thread_safe_score() const override { return true; }  // pure tree walks
  double threshold() const override { return threshold_; }
  void set_threshold(double t) override { threshold_ = t; }
  std::string name() const override { return "iforest"; }

  double anomaly_score(std::span<const double> x) const;
  /// E[h(x)] over all trees — the quantity plotted in the paper's Fig. 2/7.
  double expected_path_length(std::span<const double> x) const;

  const std::vector<ITree>& trees() const { return trees_; }
  const IsolationForestConfig& config() const { return cfg_; }
  /// Effective subsample size used for c(psi) (clamped to dataset size).
  std::size_t effective_subsample() const { return effective_psi_; }

 private:
  IsolationForestConfig cfg_;
  std::vector<ITree> trees_;
  std::size_t effective_psi_ = 0;
  double threshold_ = 0.5;
};

}  // namespace iguard::ml
