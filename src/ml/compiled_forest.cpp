#include "ml/compiled_forest.hpp"

#include <algorithm>

namespace iguard::ml {

namespace {
/// Keys evaluated per inner block: small enough that the per-key cursor
/// array lives in L1, large enough to amortise the node-stripe traffic.
constexpr std::size_t kChunk = 64;

/// Level-synchronous descent of one tree for a whole chunk: every round
/// advances each non-leaf cursor one level. A per-key serial walk is a
/// dependent-load chain (one L1 hit per level, nothing to overlap); here the
/// m cursors are independent within a round, so the out-of-order core keeps
/// many walks in flight at once. The body is select-based (no data-dependent
/// branches): settled cursors re-read their leaf node and step by 0, which
/// costs one wasted round for the deepest straggler but keeps the loop
/// branch-free. Visits exactly the leaves the scalar walk visits.
inline void descend_chunk(const std::int16_t* feat, const std::uint32_t* thr,
                          const std::int32_t* child, std::uint32_t root,
                          const std::uint32_t* keys, std::size_t width, std::size_t m,
                          std::uint32_t* cur) {
  // Settled cursors re-read their leaf node and step by 0 until the chunk's
  // deepest straggler lands; the wasted rounds cost less than any form of
  // active-lane compaction (measured: lane indirection defeats the very
  // load-pipelining this loop exists to create).
  for (std::size_t i = 0; i < m; ++i) cur[i] = root;
  std::uint32_t active = 1;
  while (active != 0) {
    active = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint32_t c = cur[i];
      const std::int16_t f = feat[c];
      const std::uint32_t live = f >= 0 ? 1u : 0u;
      const std::size_t fi = live ? static_cast<std::size_t>(f) : 0u;
      const std::size_t go = keys[i * width + fi] >= thr[c] ? 1u : 0u;
      const std::int32_t step = live ? child[2 * c + go] : 0;
      cur[i] = c + static_cast<std::uint32_t>(step);
      active |= live;
    }
  }
}
}  // namespace

// The three batched kernels share one shape: chunk the batch, and for each
// chunk run a tree-major sweep — every key descends tree t before any key
// touches tree t+1 — so one tree's feature/threshold/child stripes stay
// cache-resident for the whole chunk. Per-key accumulation order over trees
// is unchanged from the scalar loop, so double sums (a deterministic but
// order-sensitive reduction) are bit-exact with payload_sum.

void CompiledForest::score_batch(std::span<const std::uint32_t> keys, std::size_t width,
                                 std::span<double> out) const {
  if (width == 0 || width > kMaxFields) throw std::invalid_argument("score_batch: bad width");
  const std::size_t n = keys.size() / width;
  if (keys.size() != n * width || out.size() < n) {
    throw std::invalid_argument("score_batch: buffer size mismatch");
  }
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t m = std::min(kChunk, n - base);
    const std::uint32_t* kp = keys.data() + base * width;
    double acc[kChunk] = {};
    std::uint32_t cur[kChunk];
    for (const std::uint32_t root : tree_root_) {
      descend_chunk(feature_.data(), threshold_.data(), child_.data(), root, kp, width, m, cur);
      for (std::size_t i = 0; i < m; ++i) acc[i] += payload_[cur[i]];
    }
    for (std::size_t i = 0; i < m; ++i) out[base + i] = acc[i];
  }
}

void CompiledForest::score_batch_q16(std::span<const std::uint32_t> keys, std::size_t width,
                                     std::span<std::int64_t> out) const {
  if (width == 0 || width > kMaxFields) throw std::invalid_argument("score_batch_q16: bad width");
  const std::size_t n = keys.size() / width;
  if (keys.size() != n * width || out.size() < n) {
    throw std::invalid_argument("score_batch_q16: buffer size mismatch");
  }
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t m = std::min(kChunk, n - base);
    const std::uint32_t* kp = keys.data() + base * width;
    std::int64_t acc[kChunk] = {};
    std::uint32_t cur[kChunk];
    for (const std::uint32_t root : tree_root_) {
      descend_chunk(feature_.data(), threshold_.data(), child_.data(), root, kp, width, m, cur);
      for (std::size_t i = 0; i < m; ++i) acc[i] += payload_q16_[cur[i]];
    }
    for (std::size_t i = 0; i < m; ++i) out[base + i] = acc[i];
  }
}

void CompiledForest::predict_majority_batch(std::span<const std::uint32_t> keys,
                                            std::size_t width, std::span<int> out) const {
  if (width == 0 || width > kMaxFields) {
    throw std::invalid_argument("predict_majority_batch: bad width");
  }
  const std::size_t n = keys.size() / width;
  if (keys.size() != n * width || out.size() < n) {
    throw std::invalid_argument("predict_majority_batch: buffer size mismatch");
  }
  const std::int64_t bar = static_cast<std::int64_t>(tree_count()) * 65536;
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t m = std::min(kChunk, n - base);
    const std::uint32_t* kp = keys.data() + base * width;
    std::int64_t acc[kChunk] = {};
    std::uint32_t cur[kChunk];
    for (const std::uint32_t root : tree_root_) {
      descend_chunk(feature_.data(), threshold_.data(), child_.data(), root, kp, width, m, cur);
      for (std::size_t i = 0; i < m; ++i) acc[i] += payload_q16_[cur[i]];
    }
    for (std::size_t i = 0; i < m; ++i) out[base + i] = 2 * acc[i] > bar ? 1 : 0;
  }
}

}  // namespace iguard::ml
