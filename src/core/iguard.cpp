#include "core/iguard.hpp"

namespace iguard::core {

void IGuard::fit(const ml::Matrix& benign_fl, const ml::Matrix& benign_pl, ml::Rng& rng) {
  owned_teacher_.emplace();
  owned_teacher_->fit(benign_fl, cfg_.teacher, rng);
  fit_with_teacher(benign_fl, benign_pl, *owned_teacher_, rng);
}

void IGuard::fit_with_teacher(const ml::Matrix& benign_fl, const ml::Matrix& benign_pl,
                              const AeEnsemble& teacher, ml::Rng& rng) {
  // Drop a previously owned teacher when an external one is supplied.
  if (!owned_teacher_.has_value() || &teacher != &*owned_teacher_) owned_teacher_.reset();
  teacher_ = &teacher;

  forest_ = GuidedIsolationForest(cfg_.forest);
  forest_.fit(benign_fl, teacher, rng);

  quantizer_ = rules::Quantizer(cfg_.quantizer_bits);
  quantizer_.fit(benign_fl);
  WhitelistConfig wcfg = cfg_.whitelist;
  if (wcfg.clip.empty()) wcfg.clip = support_clip(benign_fl, quantizer_, 0.0);
  whitelist_ = compile_per_tree(forest_, quantizer_, wcfg);

  pl_ = PlModel(cfg_.pl);
  if (benign_pl.rows() > 0) pl_.fit(benign_pl, rng);
}

int IGuard::predict_flow(std::span<const double> fl) const {
  const auto key = quantizer_.quantize(fl);
  return whitelist_.classify(key);
}

int IGuard::predict_packet(std::span<const double> pl) const {
  if (!pl_.fitted()) return 0;  // no PL model: never block early packets
  return pl_.classify(pl);
}

double IGuard::consistency(const ml::Matrix& samples) const {
  if (samples.rows() == 0) return 1.0;
  std::size_t agree = 0;
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    agree += predict_flow(samples.row(i)) == predict_flow_model(samples.row(i)) ? 1 : 0;
  }
  return static_cast<double>(agree) / static_cast<double>(samples.rows());
}

}  // namespace iguard::core
