#include "switchsim/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "ml/parallel.hpp"

namespace iguard::switchsim {

namespace {

// Decorrelated per-(device, purpose) seed: raw seed ^ device would give
// adjacent devices near-identical SplitMix64 streams.
std::uint64_t derive_seed(std::uint64_t seed, std::size_t device, std::uint64_t salt) {
  return ml::mix64(seed ^ ml::mix64(static_cast<std::uint64_t>(device) + salt));
}

constexpr std::uint64_t kPartitionSalt = 0x9A27171011ull;
constexpr std::uint64_t kCrashSalt = 0xC2A5B0A7D5ull;
constexpr std::uint64_t kLocalFaultSalt = 0x10CA1F4017ull;
constexpr std::uint64_t kInstallSalt = 0x1257A11F47ull;

std::string check_rate(const char* field, double v) {
  if (std::isnan(v) || v < 0.0 || v > 1.0) {
    return std::string(field) + ": probability must be in [0, 1] (got " + std::to_string(v) +
           ")";
  }
  return {};
}

std::string check_nonneg(const char* field, double v) {
  if (std::isnan(v) || std::isinf(v) || v < 0.0) {
    return std::string(field) + ": must be finite and >= 0 (got " + std::to_string(v) + ")";
  }
  return {};
}

[[noreturn]] void throw_config(const char* structure, const std::string& err) {
  const std::size_t colon = err.find(':');
  throw ConfigError(structure, err.substr(0, colon),
                    colon == std::string::npos ? err : err.substr(colon + 2));
}

}  // namespace

std::string validate_config(const FleetFaultConfig& cfg) {
  std::string err;
  if (!(err = check_rate("digest_loss_rate", cfg.digest_loss_rate)).empty()) return err;
  if (!(err = check_rate("digest_delay_rate", cfg.digest_delay_rate)).empty()) return err;
  if (!(err = check_nonneg("digest_delay_s", cfg.digest_delay_s)).empty()) return err;
  if (!(err = check_rate("install_failure_rate", cfg.install_failure_rate)).empty()) return err;
  if (!(err = check_rate("crash_rate", cfg.crash_rate)).empty()) return err;
  if (!(err = check_nonneg("crash_duration_s", cfg.crash_duration_s)).empty()) return err;
  if (!(err = check_rate("partition_rate", cfg.partition_rate)).empty()) return err;
  if (!(err = check_nonneg("partition_duration_s", cfg.partition_duration_s)).empty())
    return err;
  if (std::isnan(cfg.check_interval_s) || cfg.check_interval_s <= 0.0) {
    return "check_interval_s: must be > 0 (got " + std::to_string(cfg.check_interval_s) + ")";
  }
  return {};
}

std::string validate_config(const FleetControllerConfig& cfg) {
  std::string err;
  if (cfg.batch_size == 0) return "batch_size: must be >= 1 (got 0)";
  if (!(err = check_nonneg("batch_interval_s", cfg.batch_interval_s)).empty()) return err;
  if (!(err = check_nonneg("install_latency_s", cfg.install_latency_s)).empty()) return err;
  if (!(err = check_rate("install_failure_rate", cfg.install_failure_rate)).empty()) return err;
  if (!(err = check_nonneg("retry_backoff_s", cfg.retry_backoff_s)).empty()) return err;
  if (!(err = check_nonneg("retry_backoff_cap_s", cfg.retry_backoff_cap_s)).empty())
    return err;
  if (cfg.retry_backoff_cap_s < cfg.retry_backoff_s) {
    return "retry_backoff_cap_s: must be >= retry_backoff_s (got " +
           std::to_string(cfg.retry_backoff_cap_s) + " < " +
           std::to_string(cfg.retry_backoff_s) + ")";
  }
  return {};
}

std::string validate_config(const FleetConfig& cfg) {
  if (cfg.devices == 0) return "devices: must be >= 1 (got 0)";
  std::string err;
  if (!(err = validate_config(cfg.replay)).empty()) return "replay." + err;
  if (!(err = validate_config(cfg.faults)).empty()) return "faults." + err;
  if (!(err = validate_config(cfg.control)).empty()) return "control." + err;
  return {};
}

std::vector<LinkWindow> generate_fault_windows(std::uint64_t seed, double rate,
                                               double duration_s, double check_interval_s,
                                               double horizon_s) {
  std::vector<LinkWindow> out;
  if (rate <= 0.0 || duration_s <= 0.0 || check_interval_s <= 0.0 || horizon_s < 0.0) {
    return out;
  }
  // One Bernoulli draw per interval step over the whole horizon — the draw
  // count is fixed by the horizon, so one window opening never shifts the
  // positions of later ones.
  SplitMix64 rng(seed);
  for (double t = 0.0; t <= horizon_s; t += check_interval_s) {
    if (rng.chance(rate)) out.push_back({t, duration_s});
  }
  return out;
}

DarkSchedule::DarkSchedule(std::vector<LinkWindow> windows) {
  std::sort(windows.begin(), windows.end(), [](const LinkWindow& a, const LinkWindow& b) {
    return a.start_s != b.start_s ? a.start_s < b.start_s : a.duration_s < b.duration_s;
  });
  for (const auto& w : windows) {
    if (w.duration_s <= 0.0) continue;
    if (!windows_.empty() && w.start_s <= windows_.back().end_s()) {
      const double end = std::max(windows_.back().end_s(), w.end_s());
      windows_.back().duration_s = end - windows_.back().start_s;
    } else {
      windows_.push_back(w);
    }
  }
}

bool DarkSchedule::down_at(double ts_s) const {
  for (const auto& w : windows_) {
    if (ts_s >= w.start_s && ts_s < w.end_s()) return true;
    if (w.start_s > ts_s) break;
  }
  return false;
}

double DarkSchedule::up_after(double ts_s) const {
  for (const auto& w : windows_) {
    if (ts_s >= w.start_s && ts_s < w.end_s()) return w.end_s();
    if (w.start_s > ts_s) break;
  }
  return ts_s;
}

// --- FleetController -------------------------------------------------------

FleetController::FleetController(FleetControllerConfig cfg, std::vector<FailureDomain> domains,
                                 obs::Registry* metrics, std::string_view metrics_prefix)
    : cfg_(cfg) {
  if (const std::string err = validate_config(cfg_); !err.empty()) {
    throw_config("FleetControllerConfig", err);
  }
  if (domains.empty()) domains.emplace_back();
  dev_.resize(domains.size());
  for (std::size_t d = 0; d < dev_.size(); ++d) {
    dev_[d].domain = std::move(domains[d]);
    dev_[d].install_faults = SplitMix64(dev_[d].domain.install_fault_seed);
    dev_[d].st.partitions = dev_[d].domain.partitions;
    dev_[d].st.crash_windows = dev_[d].domain.crash_windows;
  }
  fleet_.devices = dev_.size();
  if (metrics != nullptr && metrics->enabled()) {
    const std::string p(metrics_prefix);
    obs_.digests = metrics->counter(p + ".digests");
    obs_.digests_lost_dark = metrics->counter(p + ".digests_lost_dark");
    obs_.intents = metrics->counter(p + ".install_intents");
    obs_.dedup_suppressed = metrics->counter(p + ".dedup_suppressed");
    obs_.batches = metrics->counter(p + ".batches");
    obs_.installs = metrics->counter(p + ".installs");
    obs_.install_retries = metrics->counter(p + ".install_retries");
    obs_.dead_letters = metrics->counter(p + ".dead_letters");
    obs_.backpressure_drops = metrics->counter(p + ".backpressure_drops");
    obs_.catchup_installs = metrics->counter(p + ".catchup_installs");
    obs_.staleness_s =
        metrics->histogram(p + ".staleness_s", obs::default_install_latency_bounds_s());
    obs_.backlog = metrics->series(p + ".backlog", cfg_.sample_capacity, cfg_.sample_every);
    obs_.devices_degraded =
        metrics->series(p + ".devices_degraded", cfg_.sample_capacity, cfg_.sample_every);
    for (std::size_t d = 0; d < dev_.size(); ++d) {
      const std::string dp = p + ".dev" + std::to_string(d);
      dev_[d].obs_queue = metrics->gauge(dp + ".install_queue");
      dev_[d].obs_rules = metrics->gauge(dp + ".rules_resident");
      dev_[d].obs_staleness = metrics->gauge(dp + ".staleness_s");
    }
  }
}

double FleetController::backoff_delay(std::uint32_t attempt) const {
  double d = cfg_.retry_backoff_s;
  for (std::uint32_t i = 1; i < attempt && d < cfg_.retry_backoff_cap_s; ++i) d *= 2.0;
  return std::min(d, cfg_.retry_backoff_cap_s);
}

double FleetController::next_rejoin_ts(const Device& dev) const {
  const auto& windows = dev.domain.dark.windows();
  if (dev.next_rejoin >= windows.size()) return std::numeric_limits<double>::infinity();
  return windows[dev.next_rejoin].end_s();
}

void FleetController::apply(std::size_t d, std::uint64_t key, double intent_ts,
                            double apply_ts) {
  Device& dv = dev_[d];
  dv.resident.insert(key);
  const double lag = apply_ts - intent_ts;
  dv.st.staleness_hwm_s = std::max(dv.st.staleness_hwm_s, lag);
  fleet_.staleness_hwm_s = std::max(fleet_.staleness_hwm_s, lag);
  obs_.staleness_s.record(lag);
  dv.obs_rules.set(static_cast<double>(dv.resident.size()));
  dv.obs_staleness.set(lag);
}

void FleetController::run_rejoin(std::size_t d, double ts_s) {
  Device& dv = dev_[d];
  ++dv.next_rejoin;
  if (dv.missed.empty()) return;
  // Coalesced catch-up: every rule the device missed while dark (or lost to
  // backpressure / dead-letter) lands in one re-sync pass, exempt from
  // failure injection — mirroring the local recovery sweep's semantics.
  // Sorted by key so the hash map's iteration order never leaks into
  // counters or metrics.
  std::vector<std::pair<std::uint64_t, double>> work(dv.missed.begin(), dv.missed.end());
  std::sort(work.begin(), work.end());
  for (const auto& [key, intent_ts] : work) {
    if (dv.resident.count(key) != 0) continue;  // an in-flight retry landed first
    apply(d, key, intent_ts, ts_s);
    ++dv.st.catchup_installs;
    obs_.catchup_installs.inc();
  }
  dv.missed.clear();
}

void FleetController::flush_batch(double ts_s) {
  if (pending_.empty()) return;
  ++fleet_.batches;
  obs_.batches.inc();
  last_flush_ts_ = ts_s;
  const auto enqueue = [&](std::size_t d, const Intent& in) {
    ++fleet_.install_ops_addressed;
    Device& dv = dev_[d];
    if (cfg_.install_queue_capacity > 0 && dv.queue_len >= cfg_.install_queue_capacity) {
      // Backpressure, not an unbounded buffer: drop the op, remember the
      // rule in the missed set, re-sync at the next rejoin.
      ++dv.st.backpressure_drops;
      obs_.backpressure_drops.inc();
      dv.missed.emplace(in.key, in.ts);
      return;
    }
    ++dv.queue_len;
    ++total_inflight_;
    dv.st.queue_hwm = std::max(dv.st.queue_hwm, dv.queue_len);
    fleet_.backlog_hwm = std::max(fleet_.backlog_hwm, total_inflight_);
    ++dv.st.installs_enqueued;
    dv.obs_queue.set(static_cast<double>(dv.queue_len));
    double base = ts_s;
    if (dv.domain.dark.down_at(ts_s)) {
      // Device is dark: serve stale, park the op until the window closes.
      ++dv.st.deferred_while_dark;
      base = dv.domain.dark.up_after(ts_s);
    }
    ops_.push(Op{d, in.key, in.ts, base + cfg_.install_latency_s, 0, seq_++});
  };
  for (const Intent& in : pending_) {
    if (cfg_.broadcast) {
      for (std::size_t d = 0; d < dev_.size(); ++d) enqueue(d, in);
    } else {
      enqueue(in.source, in);
    }
  }
  pending_.clear();
}

void FleetController::deliver(const Op& op) {
  Device& dv = dev_[op.device];
  if (dv.domain.dark.down_at(op.due_ts)) {
    // Went dark while the op was in flight: park it until rejoin. The
    // schedule's windows are merged, so up_after's result is never dark.
    ++dv.st.deferred_while_dark;
    Op parked = op;
    parked.due_ts = dv.domain.dark.up_after(op.due_ts);
    parked.seq = seq_++;
    ops_.push(parked);
    return;
  }
  if (dv.install_faults.chance(cfg_.install_failure_rate)) {
    ++dv.st.install_failures;
    const std::uint32_t attempt = op.attempt + 1;
    if (attempt > cfg_.max_install_retries) {
      ++dv.st.dead_letters;
      ++fleet_.dead_letters;
      obs_.dead_letters.inc();
      --dv.queue_len;
      --total_inflight_;
      dv.obs_queue.set(static_cast<double>(dv.queue_len));
      dv.missed.emplace(op.key, op.intent_ts);
      return;
    }
    ++dv.st.install_retries;
    obs_.install_retries.inc();
    Op retry = op;
    retry.due_ts = op.due_ts + backoff_delay(attempt);
    retry.attempt = attempt;
    retry.seq = seq_++;
    ops_.push(retry);
    return;
  }
  --dv.queue_len;
  --total_inflight_;
  dv.obs_queue.set(static_cast<double>(dv.queue_len));
  apply(op.device, op.key, op.intent_ts, op.due_ts);
  ++dv.st.installs_applied;
  ++fleet_.installs_applied;
  obs_.installs.inc();
}

void FleetController::advance_to(double now_s) {
  if (now_s < clock_) now_s = clock_;
  while (true) {
    const double op_ts =
        ops_.empty() ? std::numeric_limits<double>::infinity() : ops_.top().due_ts;
    double rej_ts = std::numeric_limits<double>::infinity();
    std::size_t rej_d = dev_.size();
    for (std::size_t d = 0; d < dev_.size(); ++d) {
      const double t = next_rejoin_ts(dev_[d]);
      if (t < rej_ts) {
        rej_ts = t;
        rej_d = d;
      }
    }
    const double t = std::min(op_ts, rej_ts);
    // Strictly-greater alone is not enough when draining with now_s = inf:
    // inf > inf is false, so an empty horizon must break explicitly.
    if (t > now_s || t == std::numeric_limits<double>::infinity()) break;
    clock_ = t;
    if (rej_ts <= op_ts) {
      // Rejoin first: an op due exactly at the window's end is delivered to
      // an already re-synced device.
      run_rejoin(rej_d, rej_ts);
    } else {
      const Op op = ops_.top();
      ops_.pop();
      deliver(op);
    }
  }
  if (now_s < std::numeric_limits<double>::infinity()) clock_ = now_s;
}

void FleetController::on_digest(std::size_t device, const Digest& d, double ts_s) {
  advance_to(ts_s);
  if (cfg_.batch_interval_s > 0.0 && !pending_.empty() &&
      ts_s - last_flush_ts_ >= cfg_.batch_interval_s) {
    flush_batch(ts_s);
  }
  ++fleet_.digests_observed;
  obs_.digests.inc();
  Device& dv = dev_[device];
  if (dv.domain.link.down_at(ts_s)) {
    // Digest export is a data-plane function, so only a *link* partition
    // silences a device towards the fleet — a local controller crash does
    // not (the local loss is already counted in that device's FaultStats).
    ++dv.st.digests_lost_dark;
    ++fleet_.digests_lost_dark;
    obs_.digests_lost_dark.inc();
  } else if (d.label != 1) {
    ++fleet_.benign_digests;
  } else {
    const std::uint64_t key = BlacklistTable::flow_key(d.ft);
    if (!known_keys_.insert(key).second) {
      ++fleet_.dedup_suppressed;
      obs_.dedup_suppressed.inc();
    } else {
      ++fleet_.install_intents;
      obs_.intents.inc();
      pending_.push_back({key, device, ts_s});
      if (cfg_.batch_size <= 1 || pending_.size() >= cfg_.batch_size) flush_batch(ts_s);
    }
  }
  sample(ts_s);
}

void FleetController::sample(double ts_s) {
  std::size_t degraded = 0;
  for (const auto& dv : dev_) {
    if (dv.domain.dark.down_at(ts_s) || dv.queue_len > cfg_.degraded_backlog_threshold) {
      ++degraded;
    }
  }
  fleet_.devices_degraded_hwm = std::max(fleet_.devices_degraded_hwm, degraded);
  obs_.devices_degraded.observe(static_cast<double>(degraded));
  obs_.backlog.observe(static_cast<double>(total_inflight_));
}

void FleetController::finish() {
  flush_batch(clock_);
  advance_to(std::numeric_limits<double>::infinity());
  for (auto& dv : dev_) {
    dv.st.rules_resident = dv.resident.size();
    dv.obs_rules.set(static_cast<double>(dv.resident.size()));
    dv.obs_queue.set(static_cast<double>(dv.queue_len));
  }
}

// --- replay_fleet ----------------------------------------------------------

std::size_t device_of(const traffic::FiveTuple& ft, const FleetConfig& cfg) {
  const std::size_t n = std::max<std::size_t>(cfg.devices, 1);
  if (n <= 1) return 0;
  if (cfg.partition == TenantPartition::kSrcSubnet) {
    const std::uint32_t subnet = ft.canonical().src_ip >> 16;
    return static_cast<std::size_t>(ml::mix64(cfg.tenant_seed ^ subnet) % n);
  }
  return static_cast<std::size_t>(traffic::bihash(ft, cfg.tenant_seed) % n);
}

std::vector<traffic::Trace> partition_by_tenant(const traffic::Trace& trace,
                                                const FleetConfig& cfg) {
  const std::size_t n = std::max<std::size_t>(cfg.devices, 1);
  std::vector<traffic::Trace> parts(n);
  for (const auto& p : trace.packets) {
    parts[device_of(p.ft, cfg)].packets.push_back(p);
  }
  return parts;
}

FleetResult replay_fleet(const traffic::Trace& trace, const PipelineConfig& cfg,
                         const DeployedModel& model, const FleetConfig& fcfg) {
  if (const std::string err = validate_config(fcfg); !err.empty()) {
    throw_config("FleetConfig", err);
  }
  const std::size_t n = fcfg.devices;
  const bool faults_on = fcfg.faults.any_enabled();

  // --- tenant partition (phase 0) ---
  std::vector<traffic::Trace> parts(n);
  std::vector<std::uint32_t> device_of_packet;
  device_of_packet.reserve(trace.size());
  for (const auto& p : trace.packets) {
    const std::size_t d = device_of(p.ft, fcfg);
    device_of_packet.push_back(static_cast<std::uint32_t>(d));
    parts[d].packets.push_back(p);
  }
  double horizon = 0.0;
  for (const auto& p : trace.packets) horizon = std::max(horizon, p.ts);

  // --- per-device failure domains ---
  std::vector<FleetController::FailureDomain> domains(n);
  std::vector<std::vector<LinkWindow>> crash_windows(n);
  for (std::size_t d = 0; d < n; ++d) {
    auto partitions =
        generate_fault_windows(derive_seed(fcfg.faults.seed, d, kPartitionSalt),
                               fcfg.faults.partition_rate, fcfg.faults.partition_duration_s,
                               fcfg.faults.check_interval_s, horizon);
    crash_windows[d] =
        generate_fault_windows(derive_seed(fcfg.faults.seed, d, kCrashSalt),
                               fcfg.faults.crash_rate, fcfg.faults.crash_duration_s,
                               fcfg.faults.check_interval_s, horizon);
    std::vector<LinkWindow> dark = partitions;
    dark.insert(dark.end(), crash_windows[d].begin(), crash_windows[d].end());
    domains[d].link = DarkSchedule(std::move(partitions));
    domains[d].dark = DarkSchedule(std::move(dark));
    domains[d].install_fault_seed = derive_seed(fcfg.faults.seed, d, kInstallSalt);
    domains[d].partitions = domains[d].link.windows().size();
    domains[d].crash_windows = crash_windows[d].size();
  }

  // --- per-device pipeline configs ---
  // With one device and fleet faults off the config passes through
  // untouched — that is what makes N=1 byte-identical to replay_sharded.
  std::vector<PipelineConfig> dcfgs(n, cfg);
  for (std::size_t d = 0; d < n; ++d) {
    if (n > 1) dcfgs[d].metrics_prefix = cfg.metrics_prefix + ".dev" + std::to_string(d);
    if (faults_on) {
      FaultConfig& f = dcfgs[d].control.faults;
      f.seed = derive_seed(fcfg.faults.seed, d, kLocalFaultSalt);
      f.digest_loss_rate = fcfg.faults.digest_loss_rate;
      f.digest_delay_rate = fcfg.faults.digest_delay_rate;
      f.digest_delay_s = fcfg.faults.digest_delay_s;
      f.install_failure_rate = fcfg.faults.install_failure_rate;
      f.crashes.clear();
      for (const auto& w : crash_windows[d]) f.crashes.push_back({w.start_s, w.duration_s});
    }
  }

  // --- phase 1: per-device sharded replays (parallel, digest taps on) ---
  ReplayConfig rc = fcfg.replay;
  rc.capture_digests = true;
  std::vector<ShardedReplayResult> dres(n);
  if (n == 1) {
    dres[0] = replay_sharded(parts[0], dcfgs[0], model, rc);
  } else {
    ml::ThreadPool pool(std::min(ml::resolve_threads(fcfg.num_threads), n));
    pool.parallel_for(n, [&](std::size_t d) {
      dres[d] = replay_sharded(parts[d], dcfgs[d], model, rc);
    });
  }

  // --- phase 2: fleet control plane over the merged digest stream ---
  FleetController fctl(fcfg.control, std::move(domains), cfg.metrics,
                       cfg.metrics_prefix + ".fleet");
  std::vector<std::size_t> cursor(n, 0);
  while (true) {
    std::size_t best = n;
    for (std::size_t d = 0; d < n; ++d) {
      if (cursor[d] >= dres[d].digests.size()) continue;
      if (best == n || dres[d].digests[cursor[d]].ts < dres[best].digests[cursor[best]].ts) {
        best = d;
      }
    }
    if (best == n) break;
    const TimedDigest& td = dres[best].digests[cursor[best]++];
    fctl.on_digest(best, td.digest, td.ts);
  }
  fctl.finish();

  // --- result assembly ---
  FleetResult out;
  out.per_device.resize(n);
  for (std::size_t d = 0; d < n; ++d) out.per_device[d] = std::move(dres[d].stats);
  if (n == 1) {
    out.stats = out.per_device[0];
  } else {
    out.stats = merge_stats(out.per_device);
    if (cfg.record_labels) {
      // Re-interleave per-device label streams into original trace order,
      // the same cursor walk replay_sharded does per shard.
      out.stats.pred.clear();
      out.stats.truth.clear();
      out.stats.pred.reserve(trace.size());
      out.stats.truth.reserve(trace.size());
      std::vector<std::size_t> next(n, 0);
      for (const std::uint32_t d : device_of_packet) {
        const std::size_t i = next[d]++;
        out.stats.pred.push_back(out.per_device[d].pred[i]);
        out.stats.truth.push_back(out.per_device[d].truth[i]);
      }
    }
  }
  out.device_control.resize(n);
  for (std::size_t d = 0; d < n; ++d) out.device_control[d] = fctl.device_stats(d);
  out.fleet = fctl.fleet_stats();
  return out;
}

// --- conservation audits ---------------------------------------------------

namespace {

bool check_eq(std::ostringstream& os, const char* what, std::size_t lhs, std::size_t rhs) {
  if (lhs == rhs) return true;
  os << what << ": " << lhs << " != " << rhs;
  return false;
}

}  // namespace

std::string audit_sim_conservation(const SimStats& s) {
  std::ostringstream os;
  std::size_t paths = 0;
  for (const std::size_t c : s.path_count) paths += c;
  if (!check_eq(os, "path_count sum == packets", paths, s.packets)) return os.str();
  if (!check_eq(os, "tp+fp+tn+fn == packets", s.tp + s.fp + s.tn + s.fn, s.packets)) {
    return os.str();
  }
  if (!check_eq(os, "dropped == tp+fp", s.dropped, s.tp + s.fp)) return os.str();
  const FaultStats& f = s.faults;
  // Every digest that entered the channel mouth is accounted for exactly
  // once: delivered, injected-dropped, overflowed (digest share), or lost
  // to a crash (at the mouth or at first delivery).
  const std::size_t digest_overflow = f.channel_overflow_drops - f.mirror_overflow_drops;
  if (!check_eq(os, "digests_received == delivered + injected + overflow + crash",
                f.digests_received,
                f.digests_delivered + f.injected_digest_drops + digest_overflow +
                    f.digests_lost_to_crash)) {
    return os.str();
  }
  // Every install attempt either applied a rule or failed ...
  if (!check_eq(os, "install_attempts == applied + failures", f.install_attempts,
                f.installs_applied + f.install_failures)) {
    return os.str();
  }
  // ... and every failure was either re-scheduled or dead-lettered.
  if (!check_eq(os, "install_failures == retries + dead_letters", f.install_failures,
                f.install_retries + f.dead_letters)) {
    return os.str();
  }
  // Mirrors enter the channel only when the swap loop is on; when any mirror
  // was emitted, every benign finalisation's mirror ends delivered or lost.
  if (f.mirrors_enqueued + f.mirrors_delivered + f.mirrors_lost > 0) {
    if (!check_eq(os, "mirrors delivered + lost == emitted",
                  f.mirrors_delivered + f.mirrors_lost, s.benign_feature_mirrors)) {
      return os.str();
    }
  }
  return {};
}

std::string audit_fleet_conservation(const FleetResult& r, std::size_t injected_packets) {
  std::ostringstream os;
  std::size_t dev_packets = 0;
  for (const auto& s : r.per_device) dev_packets += s.packets;
  if (!check_eq(os, "sum of per-device packets == injected", dev_packets, injected_packets)) {
    return os.str();
  }
  if (!check_eq(os, "merged packets == injected", r.stats.packets, injected_packets)) {
    return os.str();
  }
  for (std::size_t d = 0; d < r.per_device.size(); ++d) {
    const std::string err = audit_sim_conservation(r.per_device[d]);
    if (!err.empty()) return "device " + std::to_string(d) + ": " + err;
  }
  std::size_t mouth = 0;
  for (const auto& s : r.per_device) mouth += s.faults.digests_received;
  if (!check_eq(os, "fleet digests_observed == sum of channel-mouth digests",
                r.fleet.digests_observed, mouth)) {
    return os.str();
  }
  if (!check_eq(os, "digests_observed == lost_dark + benign + dedup + intents",
                r.fleet.digests_observed,
                r.fleet.digests_lost_dark + r.fleet.benign_digests +
                    r.fleet.dedup_suppressed + r.fleet.install_intents)) {
    return os.str();
  }
  std::size_t enq = 0, applied = 0, dead = 0, bp = 0;
  for (std::size_t d = 0; d < r.device_control.size(); ++d) {
    const DeviceFleetStats& dc = r.device_control[d];
    enq += dc.installs_enqueued;
    applied += dc.installs_applied;
    dead += dc.dead_letters;
    bp += dc.backpressure_drops;
    // Each enqueued op resolves exactly once after finish().
    if (dc.installs_enqueued != dc.installs_applied + dc.dead_letters) {
      os << "device " << d << ": enqueued == applied + dead_letters: "
         << dc.installs_enqueued << " != " << dc.installs_applied + dc.dead_letters;
      return os.str();
    }
    if (dc.install_failures != dc.install_retries + dc.dead_letters) {
      os << "device " << d << ": failures == retries + dead_letters: " << dc.install_failures
         << " != " << dc.install_retries + dc.dead_letters;
      return os.str();
    }
    // Catch-up only replays rules that were dropped or abandoned.
    if (dc.catchup_installs > dc.backpressure_drops + dc.dead_letters) {
      os << "device " << d << ": catchup_installs " << dc.catchup_installs
         << " exceeds backpressure_drops + dead_letters "
         << dc.backpressure_drops + dc.dead_letters;
      return os.str();
    }
    if (dc.rules_resident > r.fleet.install_intents) {
      os << "device " << d << ": rules_resident " << dc.rules_resident
         << " exceeds fleet install_intents " << r.fleet.install_intents;
      return os.str();
    }
  }
  if (!check_eq(os, "ops addressed == enqueued + backpressure_drops",
                r.fleet.install_ops_addressed, enq + bp)) {
    return os.str();
  }
  if (!check_eq(os, "fleet installs_applied == per-device sum", r.fleet.installs_applied,
                applied)) {
    return os.str();
  }
  if (!check_eq(os, "fleet dead_letters == per-device sum", r.fleet.dead_letters, dead)) {
    return os.str();
  }
  return {};
}

}  // namespace iguard::switchsim
