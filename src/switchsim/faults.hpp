// Fault-aware asynchronous control plane. The data plane no longer installs
// blacklist rules in lockstep with digest generation: digests enter a
// capacity-bounded channel stamped with the triggering packet's timestamp,
// and the controller applies them on an event clock — an install becomes
// visible at digest_ts + control_latency, so the pipeline keeps admitting
// packets of an already-classified malicious flow during the install window
// (tracked as FaultStats::leaked_packets). On top of the latency model sits
// a deterministic, splitmix64-seeded fault injector that can drop digests,
// delay them, fail individual installs (retried with capped exponential
// backoff, then dead-lettered), and crash the controller for configured
// windows; on restart the controller reconciles the blacklist from the
// flow-label registers still resident in the FlowStore (App. B.2 is the
// budget this channel lives under; §3.3.2 is why install churn matters).
//
// With every fault disabled and control_latency == 0 the observable pipeline
// behaviour is bit-identical to the old synchronous "digest -> install"
// model: a rule installed by packet i's digest has always only affected
// packets after i, and the event clock preserves exactly that order.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "switchsim/registers.hpp"
#include "switchsim/tables.hpp"

namespace iguard::switchsim {

/// Egress mirror of one benign flow's FL features (Fig. 1 step 12 — "FL
/// features from benign traffic may be used to update the whitelist rules
/// table"): the quantised whitelist key the data plane matched plus the raw
/// integer-finalised features, so the control plane can both stretch rules
/// (core/online_update.hpp) and retain rows for re-distillation
/// (core/model_swap.hpp). Mirrors ride the same control channel as digests
/// and are subject to the same latency, capacity, and fault programme.
struct BenignMirror {
  std::array<std::uint32_t, kSwitchFlFeatures> key{};
  std::array<double, kSwitchFlFeatures> features{};

  /// Wire size: 13 quantised 16-bit feature levels.
  static constexpr std::size_t kBytes = 2 * kSwitchFlFeatures;
};

/// Control-plane consumer of delivered benign mirrors (the whitelist-update
/// half of the model-swap loop). Callbacks arrive on the controller's event
/// clock, in delivery order.
class WhitelistUpdateSink {
 public:
  virtual ~WhitelistUpdateSink() = default;
  virtual void on_benign_mirror(const BenignMirror& m, double deliver_ts_s) = 0;
};

/// splitmix64 (Steele et al.) — tiny, seedable, bit-identical everywhere;
/// each fault decision type owns an independent stream so enabling one fault
/// never perturbs another's draw sequence.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Bernoulli(p) without floating-point accumulation error: compare one
  /// draw against p scaled to the full 64-bit range.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return static_cast<double>(next()) <
           p * static_cast<double>(std::numeric_limits<std::uint64_t>::max());
  }

 private:
  std::uint64_t state_;
};

/// One controller outage: the control plane is unreachable in
/// [start_s, start_s + duration_s). Digests sent or delivered inside the
/// window are lost; at the window's end the controller restarts and runs a
/// recovery sweep over the FlowStore.
struct CrashWindow {
  double start_s = 0.0;
  double duration_s = 0.0;

  double end_s() const { return start_s + duration_s; }
};

/// One offered-load burst at the ingest boundary: while ts is inside
/// [start_s, start_s + duration_s) every offered record is replicated up to
/// `multiplier`x (io/chaos.hpp applies it before the overload gate, so
/// bursts are what trip the shed policies in bench_ingest).
struct BurstWindow {
  double start_s = 0.0;
  double duration_s = 0.0;
  double multiplier = 2.0;  // offered-load scale inside the window, >= 1

  double end_s() const { return start_s + duration_s; }
};

/// Largest per-window burst multiplier validate_config accepts. The mangler
/// turns the (product of overlapping windows') multiplier into a uint64
/// record copy count, so the bound keeps that cast defined and the record
/// amplification bounded; chaos.cpp additionally clamps the product.
inline constexpr double kMaxBurstMultiplier = 1e9;

/// Deterministic fault programme. Everything is off by default; a
/// default-constructed config is the perfect-channel model.
struct FaultConfig {
  std::uint64_t seed = 0x14A7u;
  double digest_loss_rate = 0.0;     // P(digest silently dropped in flight)
  double digest_delay_rate = 0.0;    // P(digest held back by digest_delay_s)
  double digest_delay_s = 0.0;       // extra in-flight delay when held back
  double install_failure_rate = 0.0; // P(one install attempt fails)
  std::vector<CrashWindow> crashes;  // must be sorted by start_s

  // Ingest-domain faults (DESIGN.md §4g): applied by io/chaos.hpp to
  // serialized records and record batches *before* the TraceReader, each
  // from its own independent stream. The control-plane programme above is
  // untouched by enabling any of these.
  double record_truncate_rate = 0.0;  // P(record cut short mid-field)
  double record_corrupt_rate = 0.0;   // P(one byte of the record flipped)
  double batch_duplicate_rate = 0.0;  // P(a record batch replayed twice)
  double batch_reorder_rate = 0.0;    // P(a batch swapped with its successor)
  std::vector<BurstWindow> bursts;    // offered-load multiplier windows

  /// Control-plane faults only (the lockstep-equivalence switch).
  bool any_enabled() const {
    return digest_loss_rate > 0.0 || digest_delay_rate > 0.0 ||
           install_failure_rate > 0.0 || !crashes.empty();
  }

  /// Ingest-domain faults only (the hardened-boundary chaos switch).
  bool ingest_any_enabled() const {
    return record_truncate_rate > 0.0 || record_corrupt_rate > 0.0 ||
           batch_duplicate_rate > 0.0 || batch_reorder_rate > 0.0 || !bursts.empty();
  }
};

/// Structured configuration error: the offending struct + field, preserved
/// so callers (and tests) can assert on *which* invariant was violated
/// instead of pattern-matching a message.
class ConfigError : public std::invalid_argument {
 public:
  ConfigError(std::string structure, std::string field, const std::string& message)
      : std::invalid_argument(structure + "." + field + ": " + message),
        structure_(std::move(structure)),
        field_(std::move(field)) {}

  const std::string& structure() const { return structure_; }
  const std::string& field() const { return field_; }

 private:
  std::string structure_;
  std::string field_;
};

/// Empty string when `cfg` is well-formed, otherwise "field: problem" for
/// the first violated invariant (NaN/negative rates, negative latencies or
/// capacities, inverted backoff, malformed windows). Controller's
/// constructor throws ConfigError on a non-empty result, so a bad config
/// fails loudly at construction instead of silently misbehaving mid-replay.
std::string validate_config(const FaultConfig& cfg);

/// Seeded source of fault decisions, bit-identical across runs for a given
/// (seed, call sequence). Streams are independent per decision type.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& cfg)
      : cfg_(cfg),
        drop_(cfg.seed ^ 0xD1E57D20Full),
        delay_(cfg.seed ^ 0x0DE1A7EDull),
        install_(cfg.seed ^ 0x1357A11Full),
        mirror_drop_(cfg.seed ^ 0x3AB1E0F5ull),
        mirror_delay_(cfg.seed ^ 0x7E1A9D02ull),
        truncate_(cfg.seed ^ 0x7C4A7E01ull),
        corrupt_(cfg.seed ^ 0xC0228477ull),
        batch_dup_(cfg.seed ^ 0xD4B11CA7ull),
        batch_reorder_(cfg.seed ^ 0x2E02DE25ull),
        chaos_value_(cfg.seed ^ 0x1A9E57EDull) {}

  bool drop_digest() { return drop_.chance(cfg_.digest_loss_rate); }
  bool delay_digest() { return delay_.chance(cfg_.digest_delay_rate); }
  bool fail_install() { return install_.chance(cfg_.install_failure_rate); }
  /// Benign mirrors share the digest loss/delay *rates* (same channel) but
  /// draw from their own streams, so enabling the mirror path never perturbs
  /// the digest fault sequence of an existing workload.
  bool drop_mirror() { return mirror_drop_.chance(cfg_.digest_loss_rate); }
  bool delay_mirror() { return mirror_delay_.chance(cfg_.digest_delay_rate); }

  // Ingest-domain decisions (io/chaos.hpp), one independent stream each so
  // enabling any ingest fault never perturbs the control-plane sequences.
  bool truncate_record() { return truncate_.chance(cfg_.record_truncate_rate); }
  bool corrupt_record() { return corrupt_.chance(cfg_.record_corrupt_rate); }
  bool duplicate_batch() { return batch_dup_.chance(cfg_.batch_duplicate_rate); }
  bool reorder_batch() { return batch_reorder_.chance(cfg_.batch_reorder_rate); }
  /// Raw value draws for the ingest mangler (cut positions, flipped bytes);
  /// a dedicated stream so position choices never consume decision draws.
  std::uint64_t chaos_value() { return chaos_value_.next(); }

  /// Offered-load multiplier at ts: the product of every burst window
  /// containing ts (1.0 outside every window). Multipliers below 1 are
  /// treated as 1 — bursts only ever amplify.
  double burst_multiplier_at(double ts_s) const {
    double m = 1.0;
    for (const auto& w : cfg_.bursts) {
      if (ts_s >= w.start_s && ts_s < w.end_s()) m *= std::max(w.multiplier, 1.0);
    }
    return m;
  }

  /// True while ts falls inside any configured crash window.
  bool down_at(double ts_s) const {
    for (const auto& w : cfg_.crashes) {
      if (ts_s >= w.start_s && ts_s < w.end_s()) return true;
      if (w.start_s > ts_s) break;  // windows sorted by start
    }
    return false;
  }

  /// Earliest time >= ts_s at which the controller is up, chaining through
  /// back-to-back crash windows (sorted by start, so one pass suffices).
  double up_after(double ts_s) const {
    double t = ts_s;
    for (const auto& w : cfg_.crashes) {
      if (t >= w.start_s && t < w.end_s()) t = w.end_s();
    }
    return t;
  }

  const FaultConfig& config() const { return cfg_; }

 private:
  FaultConfig cfg_;
  SplitMix64 drop_, delay_, install_;
  SplitMix64 mirror_drop_, mirror_delay_;
  SplitMix64 truncate_, corrupt_, batch_dup_, batch_reorder_, chaos_value_;
};

/// One digest as it entered the control channel, stamped with the
/// triggering packet's timestamp. The fleet simulator (fleet.hpp) taps
/// these at the channel mouth so a central controller can consume the same
/// event stream the local controller saw.
struct TimedDigest {
  Digest digest{};
  double ts = 0.0;
};

/// Control-channel + controller behaviour knobs. Defaults reproduce the old
/// lockstep model exactly (zero latency, unbounded channel, no faults).
struct ControlPlaneConfig {
  double control_latency_s = 0.0;   // digest_ts -> install visibility
  std::size_t channel_capacity = 0; // pending digests; 0 = unbounded
  std::size_t max_install_retries = 5;
  double retry_backoff_s = 0.001;      // first retry delay
  double retry_backoff_cap_s = 0.100;  // exponential backoff ceiling
  /// Observability cadence: when a metrics registry is attached, the channel
  /// backlog is sampled into a bounded time series every N digests (the
  /// event count, not wall time, so the series is deterministic).
  std::size_t backlog_sample_every = 8;
  std::size_t backlog_sample_capacity = 4096;
  /// Optional caller-owned tap: every digest is appended here at the channel
  /// mouth, before any loss/overflow/crash decision, so the captured stream
  /// is exactly what the data plane emitted. Must outlive the controller.
  std::vector<TimedDigest>* digest_tap = nullptr;
  FaultConfig faults;
};

/// Empty string when well-formed, otherwise the first violated invariant.
/// Checked (throwing ConfigError) by Controller's constructor.
std::string validate_config(const ControlPlaneConfig& cfg);

/// Degradation accounting for one run. Channel-side counters live in the
/// controller; leaked_packets is counted by the pipeline (it is the data
/// plane that admits the packet).
struct FaultStats {
  /// Digests at the channel mouth (mirror of Controller::digests_received(),
  /// kept here so SimStats-level conservation audits are self-contained).
  std::size_t digests_received = 0;
  /// First-attempt digest events that reached delivery while the controller
  /// was up (benign digests included). Conservation (tests/fault_audit.hpp):
  ///   digests_received == digests_delivered + injected_digest_drops
  ///                       + (channel_overflow_drops - mirror_overflow_drops)
  ///                       + digests_lost_to_crash
  std::size_t digests_delivered = 0;
  std::size_t channel_overflow_drops = 0;  // bounded channel was full
  std::size_t mirror_overflow_drops = 0;   // the mirror share of the above
  std::size_t injected_digest_drops = 0;   // FaultInjector losses
  std::size_t delayed_digests = 0;
  std::size_t backlog_hwm = 0;             // channel high-water mark
  std::size_t install_attempts = 0;
  std::size_t installs_applied = 0;        // successful non-recovery installs
  std::size_t install_failures = 0;        // failed attempts (pre-retry)
  std::size_t install_retries = 0;         // attempts re-scheduled
  std::size_t dead_letters = 0;            // installs abandoned after retries
  std::size_t crashes = 0;                 // restarts performed
  std::size_t digests_lost_to_crash = 0;   // first deliveries, mouth or due-time
  /// Scheduled retries whose due time fell inside a crash window — the
  /// install chain ends without an applied rule or a dead letter, counted
  /// separately so digests_lost_to_crash keeps its first-delivery meaning.
  std::size_t retry_installs_lost_to_crash = 0;
  std::size_t recovery_installs = 0;       // rules rebuilt from FlowStore labels
  /// Packets the data plane admitted (verdict 0) after their flow had
  /// already been classified malicious — detection happened, enforcement
  /// had not landed yet.
  std::size_t leaked_packets = 0;
  // Benign-mirror channel (whitelist-update path, core/model_swap.hpp).
  std::size_t mirrors_enqueued = 0;   // accepted into the channel
  std::size_t mirrors_delivered = 0;  // handed to the whitelist-update sink
  std::size_t mirrors_lost = 0;       // crash loss + injected loss + overflow
  std::size_t delayed_mirrors = 0;

  bool operator==(const FaultStats&) const = default;
};

/// Event-clocked, fault-aware controller. The data plane enqueues digests
/// with `on_digest(d, ts)`; `advance_to(now)` delivers everything due by
/// `now` in timestamp order, interleaved with crash-window restarts. The
/// legacy counters (digests/bytes/installs) keep their lockstep meaning:
/// digests and bytes count at the channel mouth, installs count applied
/// blacklist writes.
class Controller {
 public:
  /// `metrics` (optional, caller-owned) attaches digest/install counters, a
  /// simulated install-latency histogram, and the backlog time series under
  /// `<prefix>.*` — all event-clocked, hence deterministic (non-"timing.").
  explicit Controller(BlacklistTable& blacklist, ControlPlaneConfig cfg = {},
                      const FlowStore* store = nullptr,
                      obs::Registry* metrics = nullptr,
                      std::string_view metrics_prefix = "control");

  /// Data-plane side: submit one digest stamped with the triggering
  /// packet's timestamp. May drop (channel overflow, injected loss,
  /// controller down) — all counted.
  void on_digest(const Digest& d, double ts_s);

  /// Data-plane side: submit one benign egress mirror (Fig. 1 step 12).
  /// Shares the digest channel's latency, capacity, and crash windows but
  /// draws faults from independent streams; delivered mirrors are handed to
  /// the registered WhitelistUpdateSink on the event clock. Without a sink
  /// the mirror is still transported and counted (delivered-to-nobody).
  void on_benign_mirror(const BenignMirror& m, double ts_s);

  /// Register the control-plane consumer of delivered mirrors (caller-owned,
  /// may be null to detach).
  void set_update_sink(WhitelistUpdateSink* sink) { sink_ = sink; }

  /// True while ts falls inside a configured crash window.
  bool down_at(double ts_s) const { return injector_.down_at(ts_s); }
  /// Earliest time >= ts_s the controller is up (end of any crash chain).
  double up_after(double ts_s) const { return injector_.up_after(ts_s); }

  /// Deliver every queued event due at or before now_s, processing crash
  /// restarts (and their recovery sweeps) in time order along the way.
  void advance_to(double now_s);

  /// End-of-trace drain: deliver everything still in flight, including
  /// retries, and run any remaining restart recoveries.
  void flush();

  std::size_t digests_received() const { return digests_; }
  std::size_t bytes_received() const { return bytes_; }
  std::size_t rules_installed() const { return installs_; }
  std::size_t backlog() const { return channel_backlog_; }
  const FaultStats& fault_stats() const { return stats_; }
  const ControlPlaneConfig& config() const { return cfg_; }

 private:
  struct Event {
    Digest digest;
    BenignMirror mirror;
    bool is_mirror = false;
    double enqueue_ts = 0.0;
    double due_ts = 0.0;
    std::uint32_t attempt = 0;   // 0 = first delivery, >0 = install retry
    std::uint64_t seq = 0;       // FIFO tiebreak for equal due times
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.due_ts != b.due_ts ? a.due_ts > b.due_ts : a.seq > b.seq;
    }
  };

  /// End of the next crash window whose recovery has not run yet.
  double next_recovery_ts() const;
  void run_recovery(double ts_s);
  void deliver(const Event& e);
  double backoff_delay(std::uint32_t attempt) const;

  /// Inactive no-op handles unless a registry was attached.
  struct Obs {
    obs::Counter digests;
    obs::Counter installs;
    obs::Counter install_retries;
    obs::Counter dead_letters;
    obs::Counter digest_drops;       // overflow + injected + crash losses
    obs::Histogram install_latency;  // simulated seconds, digest -> applied
    obs::Series backlog;             // sampled every backlog_sample_every digests
  };

  BlacklistTable* blacklist_;
  ControlPlaneConfig cfg_;
  const FlowStore* store_;
  WhitelistUpdateSink* sink_ = nullptr;
  FaultInjector injector_;
  Obs obs_;
  std::priority_queue<Event, std::vector<Event>, Later> channel_;
  std::size_t channel_backlog_ = 0;  // attempt-0 events in flight
  std::size_t next_recovery_ = 0;    // index into cfg_.faults.crashes
  std::uint64_t seq_ = 0;
  double clock_ = 0.0;
  std::size_t digests_ = 0;
  std::size_t bytes_ = 0;
  std::size_t installs_ = 0;
  FaultStats stats_;
};

}  // namespace iguard::switchsim
