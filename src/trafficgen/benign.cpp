#include "trafficgen/benign.hpp"

#include <algorithm>
#include <cmath>

namespace iguard::traffic {

ManifoldPoint benign_manifold(double a) {
  a = std::clamp(a, 0.0, 1.3);  // >1: rare high-activity extremes (backup)
  ManifoldPoint p;
  p.size_mu = std::min(1460.0, 60.0 + 1240.0 * std::pow(a, 1.3));
  // Activity beyond 1 saturates at the fastest rate (pow of a negative base
  // with a fractional exponent would be NaN).
  p.ipd_mean = 0.002 + 3.0 * std::pow(std::max(0.0, 1.0 - a), 2.2);
  p.packets = 4.0 + 250.0 * std::pow(a, 1.5);
  return p;
}

namespace {

struct ClassProfile {
  DeviceClass cls;
  double weight;       // mix fraction
  double a_lo, a_hi;   // activity range on the manifold
  std::uint16_t dst_port;
  std::uint8_t proto;
  double size_noise;   // relative deviation off the manifold
  double jitter_sigma; // per-packet IPD jitter
};

constexpr ClassProfile kProfiles[] = {
    // Overlapping activity ranges: benign traffic forms one continuous
    // filament along the manifold rather than isolated islands (real IoT
    // deployments mix device intensities continuously).
    {DeviceClass::kSensor, 0.30, 0.00, 0.35, 1883, kProtoTcp, 0.14, 0.45},
    {DeviceClass::kSmartPlug, 0.13, 0.02, 0.08, 8883, kProtoTcp, 0.01, 0.05},
    {DeviceClass::kDns, 0.15, 0.05, 0.15, 53, kProtoUdp, 0.15, 0.30},
    {DeviceClass::kNtp, 0.10, 0.03, 0.10, 123, kProtoUdp, 0.02, 0.10},
    {DeviceClass::kHttpControl, 0.18, 0.25, 0.72, 443, kProtoTcp, 0.15, 0.40},
    {DeviceClass::kCamera, 0.10, 0.60, 1.00, 554, kProtoTcp, 0.10, 0.35},
    // Activity beyond the camera range: the manifold extended past a = 1.
    {DeviceClass::kBackup, 0.04, 1.00, 1.25, 443, kProtoTcp, 0.06, 0.30},
};

const ClassProfile& pick_profile(ml::Rng& rng) {
  double u = rng.uniform();
  for (const auto& p : kProfiles) {
    if (u < p.weight) return p;
    u -= p.weight;
  }
  return kProfiles[std::size(kProfiles) - 1];
}

}  // namespace

std::vector<FlowSpec> benign_flows(const BenignConfig& cfg, ml::Rng& rng) {
  std::vector<FlowSpec> specs;
  specs.reserve(cfg.flows);
  for (std::size_t i = 0; i < cfg.flows; ++i) {
    const ClassProfile& prof = pick_profile(rng);
    const double a = rng.uniform(prof.a_lo, prof.a_hi);
    const ManifoldPoint mp = benign_manifold(a);

    FlowSpec s;
    s.ft.src_ip = 0xC0A80100u | (1 + rng.index(cfg.device_count));  // 192.168.1.x
    s.ft.dst_ip = 0x08080000u | static_cast<std::uint32_t>(rng.index(4096));
    s.ft.src_port = static_cast<std::uint16_t>(rng.integer(32768, 60999));
    s.ft.dst_port = prof.dst_port;
    s.ft.proto = prof.proto;
    s.start = rng.uniform(0.0, cfg.horizon);
    // DNS/NTP are request/response pairs; others follow the manifold budget.
    if (prof.cls == DeviceClass::kDns || prof.cls == DeviceClass::kNtp) {
      s.packets = 2 + rng.index(3);
    } else {
      s.packets = std::max<std::size_t>(
          2, static_cast<std::size_t>(mp.packets * std::exp(0.35 * rng.normal())));
    }
    s.size_mu = mp.size_mu * (1.0 + prof.size_noise * rng.normal());
    s.size_mu = std::clamp(s.size_mu, 44.0, 1460.0);
    s.size_sigma = std::max(0.5, 0.12 * s.size_mu * (prof.cls == DeviceClass::kSmartPlug ||
                                                             prof.cls == DeviceClass::kNtp
                                                         ? 0.05
                                                         : 1.0));
    s.ipd_mean = mp.ipd_mean * std::exp(0.20 * rng.normal());
    s.ipd_jitter_sigma = prof.jitter_sigma;
    s.ttl = prof.proto == kProtoUdp ? 255 : 64;
    s.first_flag = prof.proto == kProtoTcp ? TcpFlag::kSyn : TcpFlag::kNone;
    s.malicious = false;
    s.flow_id = static_cast<std::uint32_t>(i);
    specs.push_back(s);
  }
  return specs;
}

Trace benign_trace(const BenignConfig& cfg, ml::Rng& rng) {
  auto specs = benign_flows(cfg, rng);
  return emit_packets(specs, rng);
}

}  // namespace iguard::traffic
