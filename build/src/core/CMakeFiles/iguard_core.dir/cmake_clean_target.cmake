file(REMOVE_RECURSE
  "libiguard_core.a"
)
