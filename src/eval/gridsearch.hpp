// Tiny grid-search helper used by the experiment harnesses: evaluate a
// scoring callable over a candidate list and keep the argmax. The paper
// grid-searches (t, Psi, contamination) for iForest and (t, Psi, k, T) for
// iGuard on the validation split.
#pragma once

#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

namespace iguard::eval {

template <typename Config>
struct GridOutcome {
  Config best{};
  double best_score = 0.0;
  std::vector<std::pair<Config, double>> all;  // every candidate with score
};

/// `score_fn(cfg) -> double`, higher is better. Throws on empty candidates.
template <typename Config, typename ScoreFn>
GridOutcome<Config> grid_search(std::span<const Config> candidates, ScoreFn&& score_fn) {
  if (candidates.empty()) throw std::invalid_argument("grid_search: no candidates");
  GridOutcome<Config> out;
  bool first = true;
  for (const auto& cfg : candidates) {
    const double s = score_fn(cfg);
    out.all.emplace_back(cfg, s);
    if (first || s > out.best_score) {
      out.best = cfg;
      out.best_score = s;
      first = false;
    }
  }
  return out;
}

/// The paper's §4.2.1 deployment reward balancing detection quality against
/// switch memory footprint rho (fraction of total resources), alpha = 0.5.
inline double deployment_reward(double f1, double pr_auc, double roc_auc, double rho,
                                double alpha = 0.5) {
  return alpha / 3.0 * (f1 + pr_auc + roc_auc) + (1.0 - alpha) * (1.0 - rho);
}

}  // namespace iguard::eval
