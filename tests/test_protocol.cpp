#include <gtest/gtest.h>

#include "eval/gridsearch.hpp"
#include "eval/metrics.hpp"
#include "eval/protocol.hpp"
#include "eval/report.hpp"

#include <sstream>

namespace iguard::eval {
namespace {

ml::Matrix rows(std::size_t n, double v) {
  ml::Matrix m(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, 0) = v;
    m(i, 1) = static_cast<double>(i);
  }
  return m;
}

TEST(Protocol, SplitSizesFollowFractions) {
  ml::Rng rng(1);
  const auto split = make_split(rows(1000, 0.0), rows(500, 1.0), {}, rng);
  // 30% test, 20% of the rest validation.
  EXPECT_EQ(split.train_x.rows(), 560u);
  // val = 140 benign + attack count such that attacks are ~20% of the set.
  const double val_attack =
      static_cast<double>(std::count(split.val_y.begin(), split.val_y.end(), 1));
  EXPECT_NEAR(val_attack / static_cast<double>(split.val_y.size()), 0.20, 0.02);
  const double test_attack =
      static_cast<double>(std::count(split.test_y.begin(), split.test_y.end(), 1));
  EXPECT_NEAR(test_attack / static_cast<double>(split.test_y.size()), 0.20, 0.02);
}

TEST(Protocol, BenignRowsAreDisjointAcrossSplits) {
  ml::Rng rng(2);
  const auto split = make_split(rows(100, 0.0), rows(50, 1.0), {}, rng);
  // Column 1 is a unique row id; collect benign ids per split.
  std::set<double> seen;
  auto collect = [&](const ml::Matrix& x, const std::vector<int>* y) {
    for (std::size_t i = 0; i < x.rows(); ++i) {
      if (y && (*y)[i] == 1) continue;
      if (x(i, 0) != 0.0) continue;  // benign marker
      EXPECT_TRUE(seen.insert(x(i, 1)).second) << "duplicated benign row";
    }
  };
  collect(split.train_x, nullptr);
  collect(split.val_x, &split.val_y);
  collect(split.test_x, &split.test_y);
}

TEST(Protocol, PoisonAppendsToTraining) {
  ml::Rng rng(3);
  auto split = make_split(rows(100, 0.0), rows(50, 1.0), {}, rng);
  const std::size_t before = split.train_x.rows();
  poison_training(split, rows(7, 9.0));
  EXPECT_EQ(split.train_x.rows(), before + 7);
}

TEST(Protocol, TooLittleDataThrows) {
  ml::Rng rng(4);
  EXPECT_THROW(make_split(rows(5, 0.0), rows(5, 1.0), {}, rng), std::invalid_argument);
}

TEST(GridSearch, PicksArgmaxAndRecordsAll) {
  const std::vector<int> candidates = {1, 5, 3, 2};
  const auto out =
      grid_search<int>(candidates, [](int c) { return static_cast<double>(c * c); });
  EXPECT_EQ(out.best, 5);
  EXPECT_DOUBLE_EQ(out.best_score, 25.0);
  EXPECT_EQ(out.all.size(), 4u);
}

TEST(GridSearch, EmptyThrows) {
  const std::vector<int> none;
  EXPECT_THROW(grid_search<int>(none, [](int) { return 0.0; }), std::invalid_argument);
}

TEST(DeploymentReward, BalancesAccuracyAndMemory) {
  // Perfect detection, zero memory: reward 1. All-zero: 0.5 from memory.
  EXPECT_DOUBLE_EQ(deployment_reward(1.0, 1.0, 1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(deployment_reward(0.0, 0.0, 0.0, 1.0), 0.0);
  // More memory lowers the reward at fixed accuracy.
  EXPECT_GT(deployment_reward(0.9, 0.9, 0.9, 0.1), deployment_reward(0.9, 0.9, 0.9, 0.5));
  // alpha = 1: memory ignored.
  EXPECT_DOUBLE_EQ(deployment_reward(0.9, 0.9, 0.9, 0.9, 1.0), 0.9);
}

TEST(Report, TablePrintsAndCsvRoundtrips) {
  Table t({"a", "b"});
  t.add_row({"x", Table::num(1.2345, 2)});
  t.add_row({"y", Table::pct(0.5, 1)});
  std::ostringstream os;
  t.print(os, "demo");
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("50.0%"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

}  // namespace
}  // namespace iguard::eval
