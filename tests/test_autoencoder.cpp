#include "ml/autoencoder.hpp"

#include <gtest/gtest.h>

namespace iguard::ml {
namespace {

Matrix manifold(std::size_t n, Rng& rng) {
  // 3-D data on a 1-D manifold: (t, 2t, -t) + noise.
  Matrix x(0, 3);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng.normal(0.0, 1.0);
    const double row[3] = {t + rng.normal(0, 0.05), 2.0 * t + rng.normal(0, 0.05),
                           -t + rng.normal(0, 0.05)};
    x.push_row(row);
  }
  return x;
}

TEST(Autoencoder, TrainingReducesLoss) {
  Rng rng(1);
  Matrix x = manifold(500, rng);
  Autoencoder short_run([] {
    AutoencoderConfig c;
    c.encoder_hidden = {4, 1};
    c.epochs = 2;
    return c;
  }());
  Autoencoder long_run([] {
    AutoencoderConfig c;
    c.encoder_hidden = {4, 1};
    c.epochs = 60;
    return c;
  }());
  Rng r1(9), r2(9);
  short_run.fit(x, r1);
  long_run.fit(x, r2);
  EXPECT_LT(long_run.final_loss(), short_run.final_loss());
}

TEST(Autoencoder, ReconstructionErrorSeparatesOffManifold) {
  Rng rng(2);
  Matrix x = manifold(800, rng);
  Autoencoder ae([] {
    AutoencoderConfig c;
    c.encoder_hidden = {6, 1};
    c.epochs = 80;
    return c;
  }());
  ae.fit(x, rng);
  const double on[3] = {0.5, 1.0, -0.5};
  const double off[3] = {0.5, -1.0, 0.5};
  EXPECT_GT(ae.reconstruction_error(off), 2.0 * ae.reconstruction_error(on));
}

TEST(Autoencoder, ThresholdQuantileBehaviour) {
  // With quantile q, about (1-q) of training points exceed the threshold.
  Rng rng(3);
  Matrix x = manifold(500, rng);
  Autoencoder ae([] {
    AutoencoderConfig c;
    c.encoder_hidden = {4, 1};
    c.epochs = 40;
    c.threshold_quantile = 0.90;
    return c;
  }());
  ae.fit(x, rng);
  std::size_t above = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    above += ae.reconstruction_error(x.row(i)) > ae.threshold() ? 1 : 0;
  }
  const double frac = static_cast<double>(above) / static_cast<double>(x.rows());
  EXPECT_NEAR(frac, 0.10, 0.04);
}

TEST(Autoencoder, PredictUsesThreshold) {
  Rng rng(4);
  Matrix x = manifold(400, rng);
  Autoencoder ae;
  ae.fit(x, rng);
  ae.set_threshold(1e9);
  const double p[3] = {100.0, 100.0, 100.0};
  EXPECT_EQ(ae.predict(p), 0);
  ae.set_threshold(0.0);
  EXPECT_EQ(ae.predict(p), 1);
}

TEST(Autoencoder, UnfittedThrows) {
  Autoencoder ae;
  const double p[3] = {0, 0, 0};
  EXPECT_THROW(ae.reconstruction_error(p), std::logic_error);
  Rng rng(5);
  Matrix empty;
  EXPECT_THROW(ae.fit(empty, rng), std::invalid_argument);
}

TEST(MagnifierConfig, IsAsymmetric) {
  const auto cfg = magnifier_config();
  EXPECT_GE(cfg.encoder_hidden.size(), 3u);  // deep encoder
  EXPECT_TRUE(cfg.decoder_hidden.empty());   // single-layer decoder
  EXPECT_EQ(cfg.label, "magnifier");
}

TEST(TestbedConfig, SmallerThanMagnifier) {
  const auto mag = magnifier_config();
  const auto tb = testbed_autoencoder_config();
  EXPECT_LT(tb.encoder_hidden.front(), mag.encoder_hidden.front());
}

TEST(Autoencoder, DeterministicGivenSeed) {
  Matrix x;
  {
    Rng rng(6);
    x = manifold(300, rng);
  }
  Autoencoder a, b;
  Rng r1(42), r2(42);
  a.fit(x, r1);
  b.fit(x, r2);
  const double p[3] = {0.1, 0.3, -0.2};
  EXPECT_DOUBLE_EQ(a.reconstruction_error(p), b.reconstruction_error(p));
}

}  // namespace
}  // namespace iguard::ml
