file(REMOVE_RECURSE
  "libiguard_rules.a"
)
