// Minimal libpcap-format I/O so the library can consume real captures and
// export its synthetic traces for inspection in standard tools. No external
// dependency: the classic pcap container (24-byte global header, 16-byte
// per-record headers, microsecond timestamps) with Ethernet + IPv4 + TCP/UDP
// framing is written and parsed directly. Non-IPv4 records are skipped on
// read; payloads are zero-filled on write (flow statistics never look at
// them).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "trafficgen/packet.hpp"

namespace iguard::traffic {

/// Write the trace as a little-endian microsecond pcap. Packet lengths below
/// the minimal header stack (Ethernet 14 + IPv4 20 + L4 8 = 42 bytes) are
/// padded up to it on the wire; `Packet::length` is preserved in the IPv4
/// total-length field either way.
void write_pcap(std::ostream& os, const Trace& trace);
void write_pcap_file(const std::string& path, const Trace& trace);

/// Outcome of parsing one captured frame. Everything except kOk means the
/// packet could not be recovered from the record; the caller decides whether
/// to skip (legacy read_pcap) or quarantine with accounting (io::TraceReader).
enum class PcapRecordStatus : std::uint8_t {
  kOk = 0,
  kTruncated,         // frame shorter than the Ethernet+IPv4+L4 header stack
  kNotIpv4,           // ethertype != 0x0800
  kBadIpv4Header,     // IP version != 4 or IHL < 5
  kUnsupportedProto,  // not TCP/UDP/ICMP
  kBadLength,         // unrecoverable IP total length (0 after fallback)
  kBadTimestamp,      // ts_usec outside [0, 999999]
};

/// Parse one pcap record (header timestamp fields + captured frame bytes)
/// into a Packet without throwing. `orig_len` is the record header's
/// original frame length, used as the length fallback when the IPv4 total
/// length field is zero (clamped — never underflows on sub-Ethernet runts).
/// Ground-truth fields (malicious, flow_id) are not representable in pcap
/// and come back defaulted.
PcapRecordStatus parse_pcap_record(std::uint32_t ts_sec, std::uint32_t ts_usec,
                                   std::uint32_t orig_len, std::string_view frame,
                                   Packet& out);

/// Size of the classic pcap global header / per-record header, and the
/// minimal supported frame (Ethernet 14 + IPv4 20 + L4 8) — shared with the
/// hardened reader in src/io so both parse the same subset.
inline constexpr std::size_t kPcapGlobalHeaderLen = 24;
inline constexpr std::size_t kPcapRecordHeaderLen = 16;
inline constexpr std::size_t kPcapMinFrame = 42;
inline constexpr std::uint32_t kPcapMagicLE = 0xA1B2C3D4;
inline constexpr std::uint32_t kPcapLinkEthernet = 1;

/// Parse a pcap stream produced by write_pcap (or any capture restricted to
/// Ethernet/IPv4/TCP|UDP). Unsupported records are skipped; malformed
/// headers throw std::runtime_error. Ground-truth fields (malicious,
/// flow_id) are not representable in pcap and come back defaulted. This is
/// the legacy throwing loader — new code should go through io::TraceReader,
/// which parses the same subset with per-category accounting and a
/// quarantine ring instead of silent skips.
Trace read_pcap(std::istream& is);
Trace read_pcap_file(const std::string& path);

}  // namespace iguard::traffic
