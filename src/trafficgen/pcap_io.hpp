// Minimal libpcap-format I/O so the library can consume real captures and
// export its synthetic traces for inspection in standard tools. No external
// dependency: the classic pcap container (24-byte global header, 16-byte
// per-record headers, microsecond timestamps) with Ethernet + IPv4 + TCP/UDP
// framing is written and parsed directly. Non-IPv4 records are skipped on
// read; payloads are zero-filled on write (flow statistics never look at
// them).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trafficgen/packet.hpp"

namespace iguard::traffic {

/// Write the trace as a little-endian microsecond pcap. Packet lengths below
/// the minimal header stack (Ethernet 14 + IPv4 20 + L4 8 = 42 bytes) are
/// padded up to it on the wire; `Packet::length` is preserved in the IPv4
/// total-length field either way.
void write_pcap(std::ostream& os, const Trace& trace);
void write_pcap_file(const std::string& path, const Trace& trace);

/// Parse a pcap stream produced by write_pcap (or any capture restricted to
/// Ethernet/IPv4/TCP|UDP). Unsupported records are skipped; malformed
/// headers throw std::runtime_error. Ground-truth fields (malicious,
/// flow_id) are not representable in pcap and come back defaulted.
Trace read_pcap(std::istream& is);
Trace read_pcap_file(const std::string& path);

}  // namespace iguard::traffic
