// Quickstart: the whole iGuard pipeline on one attack, end to end.
//
//   1. synthesise benign IoT traffic and Mirai attack traffic,
//   2. extract flow-level features,
//   3. train the conventional iForest baseline, a Magnifier-style
//      autoencoder, and iGuard (AE-guided iForest + distillation),
//   4. compile iGuard to whitelist rules,
//   5. compare macro-F1 / ROC-AUC / PR-AUC on a held-out test set.
//
// Expected outcome (the paper's headline): iGuard tracks the autoencoder
// and clearly beats the conventional iForest.
#include <iostream>

#include "core/iguard.hpp"
#include "eval/metrics.hpp"
#include "eval/protocol.hpp"
#include "eval/report.hpp"
#include "features/flow_features.hpp"
#include "ml/iforest.hpp"
#include "trafficgen/attacks.hpp"
#include "trafficgen/benign.hpp"

using namespace iguard;

int main() {
  ml::Rng rng(2024);

  // --- 1. traffic ------------------------------------------------------
  traffic::BenignConfig bcfg;
  bcfg.flows = 3000;
  traffic::Trace benign = traffic::benign_trace(bcfg, rng);

  traffic::AttackConfig acfg;
  acfg.flows = 600;
  traffic::Trace attack = traffic::attack_trace(traffic::AttackType::kMirai, acfg, rng);

  std::cout << "benign packets: " << benign.size() << ", attack packets: " << attack.size()
            << "\n";

  // --- 2. features -------------------------------------------------------
  features::ExtractorConfig fcfg;
  fcfg.set = features::FeatureSet::kCpuExtended;
  const auto benign_ds = features::extract_flows(benign, fcfg);
  const auto attack_ds = features::extract_flows(attack, fcfg);
  std::cout << "benign flows: " << benign_ds.x.rows() << ", attack flows: " << attack_ds.x.rows()
            << "\n";

  // --- 3. split ----------------------------------------------------------
  eval::SplitData split = eval::make_split(benign_ds.x, attack_ds.x, {}, rng);

  // --- 4. models ---------------------------------------------------------
  ml::IsolationForest iforest({.num_trees = 100, .subsample = 256, .contamination = 0.05});
  iforest.fit(split.train_x, rng);
  {
    // Calibrate the score threshold on validation (the paper's grid search
    // over the contamination hyperparameter does the same job).
    std::vector<double> s(split.val_x.rows());
    for (std::size_t i = 0; i < split.val_x.rows(); ++i)
      s[i] = iforest.anomaly_score(split.val_x.row(i));
    iforest.set_threshold(eval::best_f1_threshold(split.val_y, s));
  }

  // Teacher: train the AE ensemble, then calibrate each member's RMSE
  // threshold T_u on the validation split (the paper's "T" grid search).
  core::AeEnsembleConfig tcfg;
  tcfg.ensemble_size = 3;
  tcfg.num_threads = 0;  // train members on all cores (bit-identical result)
  core::AeEnsemble teacher_ens;
  teacher_ens.fit(split.train_x, tcfg, rng);
  std::vector<double> base_t(teacher_ens.size());
  for (std::size_t u = 0; u < teacher_ens.size(); ++u) {
    std::vector<double> s(split.val_x.rows());
    for (std::size_t i = 0; i < split.val_x.rows(); ++i)
      s[i] = teacher_ens.reconstruction_error(u, split.val_x.row(i));
    base_t[u] = eval::best_f1_threshold(split.val_y, s);
    teacher_ens.set_member_threshold(u, base_t[u]);
  }

  // Grid-search the teacher threshold scale T on validation F1 of the final
  // distilled forest (the paper's (t, Psi, k, T) search, reduced to T here).
  core::IGuardConfig gcfg;
  gcfg.teacher.num_threads = 0;  // 0 = hardware concurrency
  gcfg.forest.num_threads = 0;
  core::IGuard guard(gcfg);
  double best_val = -1.0;
  double best_scale = 1.0;
  for (double scale : {0.65, 0.8, 1.0, 1.2}) {
    for (std::size_t u = 0; u < teacher_ens.size(); ++u)
      teacher_ens.set_member_threshold(u, base_t[u] * scale);
    core::IGuard cand(gcfg);
    ml::Rng crng(4242);
    cand.fit_with_teacher(split.train_x, ml::Matrix{}, teacher_ens, crng);
    std::vector<int> vp(split.val_x.rows());
    for (std::size_t i = 0; i < split.val_x.rows(); ++i)
      vp[i] = cand.predict_flow_model(split.val_x.row(i));
    const double f1 = eval::macro_f1(split.val_y, vp);
    if (f1 > best_val) {
      best_val = f1;
      best_scale = scale;
      guard = std::move(cand);
    }
  }
  std::cout << "selected teacher threshold scale T = " << best_scale << " (val F1 "
            << eval::Table::num(best_val) << ")\n";
  // Report Magnifier at its own calibrated threshold (scale 1.0).
  for (std::size_t u = 0; u < teacher_ens.size(); ++u)
    teacher_ens.set_member_threshold(u, base_t[u]);

  std::cout << "whitelist rules: " << guard.whitelist().total_rules() << " across "
            << guard.whitelist().tables.size() << " per-tree tables\n";

  // --- 5. evaluate ---------------------------------------------------------
  const auto& teacher = guard.teacher();
  std::vector<double> s_if, s_ae, s_ig;
  std::vector<int> p_if, p_ae, p_ig, p_rules;
  for (std::size_t i = 0; i < split.test_x.rows(); ++i) {
    auto x = split.test_x.row(i);
    s_if.push_back(iforest.anomaly_score(x));
    p_if.push_back(s_if.back() > iforest.threshold() ? 1 : 0);
    double re = teacher.reconstruction_error(0, x);
    s_ae.push_back(re);
    p_ae.push_back(teacher.predict(x));
    s_ig.push_back(guard.vote_fraction(x));
    p_ig.push_back(guard.predict_flow_model(x));
    p_rules.push_back(guard.predict_flow(x));
  }

  eval::Table table({"model", "macro F1", "ROC AUC", "PR AUC"});
  auto add = [&](const std::string& name, const std::vector<int>& pred,
                 const std::vector<double>& score) {
    const auto m = eval::evaluate(split.test_y, pred, score);
    table.add_row({name, eval::Table::num(m.macro_f1), eval::Table::num(m.roc_auc),
                   eval::Table::num(m.pr_auc)});
  };
  add("iForest (conventional)", p_if, s_if);
  add("Autoencoder (Magnifier)", p_ae, s_ae);
  add("iGuard (model)", p_ig, s_ig);
  {
    std::vector<double> s_rules(p_rules.begin(), p_rules.end());
    add("iGuard (whitelist rules)", p_rules, s_rules);
  }
  table.print(std::cout, "Mirai detection, CPU pipeline");

  std::cout << "rules/model consistency C = "
            << eval::Table::num(guard.consistency(split.test_x)) << "\n";
  return 0;
}
