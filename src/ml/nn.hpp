// Minimal dense neural-network substrate: fully-connected layers, common
// activations, MSE loss and the Adam optimiser. This is the training engine
// behind the Magnifier-style autoencoders (autoencoder.hpp) and the VAE
// (vae.hpp). Scope is deliberately narrow — inputs here are 4-50 dimensional
// flow-feature vectors, so a straightforward per-sample backprop loop with
// gradient accumulation over minibatches is fast enough and easy to verify.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/matrix.hpp"
#include "ml/rng.hpp"

namespace iguard::ml {

enum class Activation { kLinear, kRelu, kSigmoid, kTanh };

double apply_activation(Activation a, double z);
/// Derivative expressed in terms of the *activated* output y = f(z).
double activation_grad_from_output(Activation a, double y);

/// One fully-connected layer `y = f(W x + b)` with Adam state.
class DenseLayer {
 public:
  DenseLayer(std::size_t in, std::size_t out, Activation act, Rng& rng);

  std::size_t in_dim() const { return w_.cols(); }
  std::size_t out_dim() const { return w_.rows(); }
  Activation activation() const { return act_; }

  /// Forward one sample; caches input and output for a later backward().
  void forward(std::span<const double> x, std::vector<double>& y);

  /// Forward one sample without touching the training caches. Safe to call
  /// concurrently from many threads on the same (const) layer.
  void forward_const(std::span<const double> x, std::vector<double>& y) const;

  /// Backward one sample: consumes dL/dy, accumulates parameter gradients,
  /// and produces dL/dx. Must follow the matching forward() call.
  void backward(std::span<const double> dy, std::vector<double>& dx);

  /// Adam update with the accumulated gradients (averaged over `batch`),
  /// then clears the accumulators.
  void step(double lr, std::size_t batch, std::size_t t, double beta1 = 0.9,
            double beta2 = 0.999, double eps = 1e-8);

  const Matrix& weights() const { return w_; }
  const std::vector<double>& bias() const { return b_; }

 private:
  Matrix w_;                   // out x in
  std::vector<double> b_;      // out
  Activation act_;
  // Gradient accumulators and Adam moments.
  Matrix gw_, mw_, vw_;
  std::vector<double> gb_, mb_, vb_;
  // Per-sample caches.
  std::vector<double> last_x_, last_y_;
};

/// A feed-forward stack of dense layers trained with MSE loss.
class Mlp {
 public:
  /// `dims` = {in, h1, ..., out}; `acts.size() == dims.size() - 1`.
  Mlp(std::span<const std::size_t> dims, std::span<const Activation> acts, Rng& rng);
  Mlp() = default;

  std::size_t in_dim() const;
  std::size_t out_dim() const;

  /// Forward pass; returns reference to an internal buffer (valid until the
  /// next forward call on this object).
  const std::vector<double>& forward(std::span<const double> x);

  /// Inference-only forward pass into caller-owned buffers: leaves the
  /// network untouched (no activation caches), so concurrent calls on one
  /// const Mlp are race-free. `out` receives the output; `scratch` is
  /// ping-pong storage for intermediate layers.
  void forward_const(std::span<const double> x, std::vector<double>& out,
                     std::vector<double>& scratch) const;

  /// One minibatch of (x -> target) pairs with MSE loss; returns mean loss.
  double train_batch(const Matrix& x, const Matrix& target,
                     std::span<const std::size_t> idx, double lr);

  /// Full training loop: shuffled minibatches for `epochs`; returns the mean
  /// loss of the final epoch.
  double fit(const Matrix& x, const Matrix& target, std::size_t epochs,
             std::size_t batch_size, double lr, Rng& rng);

  /// Backward from an externally supplied output gradient (used by the VAE);
  /// must directly follow forward() and accumulates layer gradients.
  void backward(std::span<const double> dout, std::vector<double>& dx);
  void step(double lr, std::size_t batch);

  const std::vector<DenseLayer>& layers() const { return layers_; }

 private:
  std::vector<DenseLayer> layers_;
  std::vector<std::vector<double>> buf_;  // per-layer activation buffers
  std::size_t adam_t_ = 0;
};

}  // namespace iguard::ml
