// Ensemble of r autoencoders (§3.2.1). Each AE_u is trained independently on
// the benign set and carries an RMSE threshold T_u; the ensemble prediction
// is the weighted vote  1{ sum_u w_u * 1{RE_u(x) > T_u} > 0.5 }  with
// w in [0,1], sum w_u = 1. This is the "teacher" that guides iTree node
// expansion and labels leaves during knowledge distillation.
#pragma once

#include <memory>
#include <vector>

#include "ml/autoencoder.hpp"
#include "ml/matrix.hpp"
#include "ml/rng.hpp"

namespace iguard::core {

struct AeEnsembleConfig {
  std::size_t ensemble_size = 3;  // r
  ml::AutoencoderConfig base = ml::magnifier_config();
  /// Global multiplier on each AE's calibrated threshold T_u (the paper's
  /// grid-searched "T" hyperparameter).
  double threshold_scale = 1.0;
  /// Worker threads for member training and batch scoring (0 = hardware
  /// concurrency). Member RNG forks are drawn sequentially before the
  /// parallel section, so results are bit-identical at any thread count.
  std::size_t num_threads = 1;
};

class AeEnsemble {
 public:
  AeEnsemble() = default;

  /// Train r independent AEs on the benign set (each with its own RNG fork
  /// and shuffled minibatch order, so the ensemble has genuine diversity).
  void fit(const ml::Matrix& benign, const AeEnsembleConfig& cfg, ml::Rng& rng);

  std::size_t size() const { return aes_.size(); }

  /// RE_u(x): reconstruction RMSE of member u.
  double reconstruction_error(std::size_t u, std::span<const double> x) const;

  /// Batched scoring: row i of the result holds {RE_0(x_i), ..., RE_{r-1}(x_i)}.
  /// Rows are scored in parallel (num_threads = 0 → hardware concurrency);
  /// the output is identical at every thread count.
  ml::Matrix reconstruction_errors(const ml::Matrix& x, std::size_t num_threads = 1) const;

  /// Batched ensemble predictions over every row of x (1 = malicious),
  /// scored in parallel like reconstruction_errors().
  std::vector<int> predict_batch(const ml::Matrix& x, std::size_t num_threads = 1) const;
  /// T_u (already scaled by threshold_scale).
  double member_threshold(std::size_t u) const { return thresholds_[u]; }
  double weight(std::size_t u) const { return weights_[u]; }

  /// Autoencoders.predict(x) of §3.2.1 — 1 = malicious.
  int predict(std::span<const double> x) const;

  /// Weighted vote over *precomputed* per-member errors (used for leaf
  /// labelling, Eq. 6, where the error is an expectation over leaf samples).
  int vote_from_errors(std::span<const double> per_member_errors) const;

  /// Replace the uniform weights (must sum to ~1; sizes must match).
  void set_weights(std::vector<double> w);

  /// Recalibrate one member's RMSE threshold T_u (the paper grid-searches T
  /// on the validation split; see eval::best_f1_threshold).
  void set_member_threshold(std::size_t u, double t) { thresholds_.at(u) = t; }

 private:
  std::vector<std::unique_ptr<ml::Autoencoder>> aes_;
  std::vector<double> thresholds_;
  std::vector<double> weights_;
};

}  // namespace iguard::core
