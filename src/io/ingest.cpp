#include "io/ingest.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "trafficgen/pcap_io.hpp"

namespace iguard::io {

namespace {

constexpr std::size_t kMaxDetailBytes = 160;

/// from_chars-strict scalar parse: the whole field, nothing but the value.
template <typename T>
bool parse_int(std::string_view s, T& out) {
  if (s.empty()) return false;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto res = std::from_chars(first, last, out, 10);
  return res.ec == std::errc{} && res.ptr == last;
}

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto res = std::from_chars(first, last, out);
  return res.ec == std::errc{} && res.ptr == last && std::isfinite(out);
}

std::string clip(std::string s) {
  if (s.size() > kMaxDetailBytes) s.resize(kMaxDetailBytes);
  return s;
}

}  // namespace

std::string_view category_name(IngestErrorCategory c) {
  switch (c) {
    case IngestErrorCategory::kTruncated: return "truncated";
    case IngestErrorCategory::kBadField: return "bad_field";
    case IngestErrorCategory::kRangeViolation: return "range_violation";
    case IngestErrorCategory::kUnsupported: return "unsupported";
    case IngestErrorCategory::kOversized: return "oversized";
    case IngestErrorCategory::kBudget: return "budget";
    case IngestErrorCategory::kContainer: return "container";
  }
  return "unknown";
}

void QuarantineRing::push(IngestErrorCategory cat, std::uint64_t record_index,
                          std::string detail, std::string_view raw) {
  IngestError e;
  e.category = cat;
  e.record_index = record_index;
  e.detail = clip(std::move(detail));
  e.snippet.assign(raw.substr(0, snippet_bytes_));
  if (capacity_ == 0) {
    ++evicted_;
    return;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  ring_[start_] = std::move(e);
  start_ = (start_ + 1) % capacity_;
  ++evicted_;
}

bool IngestStats::conserved() const {
  std::uint64_t by_cat = 0;
  for (const auto n : by_category) by_cat += n;
  return offered == accepted + quarantined && quarantined == by_cat;
}

std::string trace_to_csv(const traffic::Trace& trace) {
  std::string out;
  out.reserve(trace.size() * 64 + 80);
  out.append(kTraceCsvHeader);
  out.push_back('\n');
  char row[192];
  for (const auto& p : trace.packets) {
    // %.17g round-trips every finite double bit-exactly.
    const int n = std::snprintf(row, sizeof(row), "%.17g,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u\n",
                                p.ts, p.ft.src_ip, p.ft.dst_ip, unsigned{p.ft.src_port},
                                unsigned{p.ft.dst_port}, unsigned{p.ft.proto},
                                unsigned{p.length}, unsigned{p.ttl},
                                static_cast<unsigned>(p.flags), p.malicious ? 1u : 0u,
                                p.flow_id);
    out.append(row, static_cast<std::size_t>(n));
  }
  return out;
}

TraceReader::TraceReader(TraceReaderConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.metrics != nullptr && cfg_.metrics->enabled()) {
    const std::string& p = cfg_.metrics_prefix;
    obs_.offered = cfg_.metrics->counter(p + ".offered");
    obs_.accepted = cfg_.metrics->counter(p + ".accepted");
    obs_.quarantined = cfg_.metrics->counter(p + ".quarantined");
    obs_.clamped = cfg_.metrics->counter(p + ".timestamps_clamped");
    for (std::size_t i = 0; i < kIngestCategories; ++i) {
      obs_.by_category[i] = cfg_.metrics->counter(
          p + ".quarantine." +
          std::string(category_name(static_cast<IngestErrorCategory>(i))));
    }
  }
}

void TraceReader::count(IngestResult& r, IngestErrorCategory cat, std::uint64_t index,
                        std::string detail, std::string_view raw) const {
  ++r.stats.quarantined;
  ++r.stats.by_category[static_cast<std::size_t>(cat)];
  r.quarantine.push(cat, index, std::move(detail), raw);
}

void TraceReader::finish(IngestResult& r) const {
  obs_.offered.inc(r.stats.offered);
  obs_.accepted.inc(r.stats.accepted);
  obs_.quarantined.inc(r.stats.quarantined);
  obs_.clamped.inc(r.stats.timestamps_clamped);
  for (std::size_t i = 0; i < kIngestCategories; ++i) {
    obs_.by_category[i].inc(r.stats.by_category[i]);
  }
}

namespace {

/// Shared timestamp sanitiser: clamp negatives to zero and regressions to
/// the running maximum (the same floor to_us() applies downstream), or
/// report a violation in strict mode. Returns false when the packet must be
/// quarantined instead of accepted.
bool sanitise_ts(double& ts, double& prev_ts, bool clamp, IngestStats& stats,
                 std::string* why) {
  double v = ts;
  if (v < 0.0) {
    if (!clamp) {
      if (why != nullptr) *why = "ts: negative timestamp in strict mode";
      return false;
    }
    v = 0.0;
  }
  if (v < prev_ts) {
    if (!clamp) {
      if (why != nullptr) *why = "ts: timestamp regression in strict mode";
      return false;
    }
    v = prev_ts;
  }
  if (v != ts) {
    ts = v;
    ++stats.timestamps_clamped;
  }
  prev_ts = v;
  return true;
}

}  // namespace

IngestResult TraceReader::read_csv(std::string_view bytes) const {
  IngestResult r;
  r.quarantine = QuarantineRing(cfg_.limits.quarantine_capacity,
                                cfg_.limits.quarantine_snippet_bytes);

  // Header line first: its absence is container damage, counted as one
  // offered+quarantined record so conservation covers the probe itself.
  std::size_t pos = 0;
  {
    std::size_t eol = bytes.find('\n');
    std::string_view header = bytes.substr(0, eol == std::string_view::npos ? bytes.size() : eol);
    if (!header.empty() && header.back() == '\r') header.remove_suffix(1);
    if (header != kTraceCsvHeader) {
      ++r.stats.offered;
      count(r, IngestErrorCategory::kContainer, 0, "csv: missing or malformed header",
            header);
      r.container_ok = false;
      r.container_error = "csv: missing or malformed header";
      finish(r);
      return r;
    }
    pos = eol == std::string_view::npos ? bytes.size() : eol + 1;
  }

  double prev_ts = 0.0;
  while (pos < bytes.size()) {
    std::size_t eol = bytes.find('\n', pos);
    if (eol == std::string_view::npos) eol = bytes.size();
    std::string_view row = bytes.substr(pos, eol - pos);
    pos = eol + 1;
    if (!row.empty() && row.back() == '\r') row.remove_suffix(1);
    if (row.empty()) continue;  // blank separator lines are not records

    ++r.stats.offered;
    const std::uint64_t idx = r.stats.offered - 1;

    if (row.size() > cfg_.limits.max_record_bytes) {
      count(r, IngestErrorCategory::kOversized, idx, "csv: row exceeds max_record_bytes",
            row);
      continue;
    }
    if (cfg_.limits.max_records != 0 && r.stats.accepted >= cfg_.limits.max_records) {
      count(r, IngestErrorCategory::kBudget, idx, "csv: max_records budget exhausted", row);
      continue;
    }

    // Split into exactly 11 fields.
    std::array<std::string_view, 11> f;
    std::size_t nfields = 0;
    std::size_t start = 0;
    bool too_many = false;
    for (std::size_t i = 0; i <= row.size(); ++i) {
      if (i == row.size() || row[i] == ',') {
        if (nfields == f.size()) {
          too_many = true;
          break;
        }
        f[nfields++] = row.substr(start, i - start);
        start = i + 1;
      }
    }
    if (too_many) {
      count(r, IngestErrorCategory::kBadField, idx, "csv: more than 11 fields", row);
      continue;
    }
    if (nfields < f.size()) {
      count(r, IngestErrorCategory::kTruncated, idx,
            "csv: " + std::to_string(nfields) + " of 11 fields", row);
      continue;
    }

    traffic::Packet p;
    std::uint8_t flags = 0, malicious = 0;
    if (!parse_double(f[0], p.ts)) {
      count(r, IngestErrorCategory::kBadField, idx, "csv: ts is not a finite number", row);
      continue;
    }
    if (!parse_int(f[1], p.ft.src_ip) || !parse_int(f[2], p.ft.dst_ip) ||
        !parse_int(f[3], p.ft.src_port) || !parse_int(f[4], p.ft.dst_port) ||
        !parse_int(f[5], p.ft.proto) || !parse_int(f[6], p.length) ||
        !parse_int(f[7], p.ttl) || !parse_int(f[8], flags) || !parse_int(f[9], malicious) ||
        !parse_int(f[10], p.flow_id)) {
      count(r, IngestErrorCategory::kBadField, idx,
            "csv: numeric field failed strict parse or overflowed its width", row);
      continue;
    }
    if (p.ft.proto != traffic::kProtoTcp && p.ft.proto != traffic::kProtoUdp &&
        p.ft.proto != traffic::kProtoIcmp) {
      count(r, IngestErrorCategory::kUnsupported, idx,
            "csv: proto " + std::to_string(unsigned{p.ft.proto}) + " not in {1,6,17}", row);
      continue;
    }
    if (flags > 5) {
      count(r, IngestErrorCategory::kRangeViolation, idx,
            "csv: flags ordinal " + std::to_string(unsigned{flags}) + " > 5", row);
      continue;
    }
    if (malicious > 1) {
      count(r, IngestErrorCategory::kRangeViolation, idx, "csv: malicious must be 0/1", row);
      continue;
    }
    p.flags = static_cast<traffic::TcpFlag>(flags);
    p.malicious = malicious != 0;

    std::string why;
    if (!sanitise_ts(p.ts, prev_ts, cfg_.clamp_timestamps, r.stats, &why)) {
      count(r, IngestErrorCategory::kRangeViolation, idx, "csv: " + why, row);
      continue;
    }
    ++r.stats.accepted;
    r.trace.packets.push_back(p);
  }
  finish(r);
  return r;
}

IngestResult TraceReader::read_pcap(std::string_view bytes) const {
  IngestResult r;
  r.quarantine = QuarantineRing(cfg_.limits.quarantine_capacity,
                                cfg_.limits.quarantine_snippet_bytes);

  const auto container_fail = [&](const std::string& msg) {
    ++r.stats.offered;
    count(r, IngestErrorCategory::kContainer, 0, msg, bytes.substr(0, 24));
    r.container_ok = false;
    r.container_error = msg;
    finish(r);
    return r;
  };

  if (bytes.size() < traffic::kPcapGlobalHeaderLen) {
    return container_fail("pcap: truncated global header");
  }
  const auto rd32 = [&](std::size_t off) {
    std::uint32_t v;
    std::memcpy(&v, bytes.data() + off, sizeof(v));
    return v;
  };
  if (rd32(0) != traffic::kPcapMagicLE) {
    return container_fail("pcap: unsupported magic/endianness");
  }
  if (rd32(20) != traffic::kPcapLinkEthernet) {
    return container_fail("pcap: not Ethernet link type");
  }

  double prev_ts = 0.0;
  std::size_t pos = traffic::kPcapGlobalHeaderLen;
  while (pos < bytes.size()) {
    ++r.stats.offered;
    const std::uint64_t idx = r.stats.offered - 1;
    if (bytes.size() - pos < traffic::kPcapRecordHeaderLen) {
      count(r, IngestErrorCategory::kTruncated, idx, "pcap: truncated record header",
            bytes.substr(pos));
      break;
    }
    const std::uint32_t ts_sec = rd32(pos);
    const std::uint32_t ts_usec = rd32(pos + 4);
    const std::uint32_t incl = rd32(pos + 8);
    const std::uint32_t orig = rd32(pos + 12);
    pos += traffic::kPcapRecordHeaderLen;

    if (incl > cfg_.limits.max_record_bytes) {
      // The frame length itself is untrustworthy: skipping `incl` bytes
      // would let a forged length teleport the cursor, so stop framing.
      count(r, IngestErrorCategory::kOversized, idx,
            "pcap: incl_len " + std::to_string(incl) + " exceeds max_record_bytes",
            bytes.substr(pos - traffic::kPcapRecordHeaderLen, 32));
      break;
    }
    if (bytes.size() - pos < incl) {
      count(r, IngestErrorCategory::kTruncated, idx, "pcap: truncated record body",
            bytes.substr(pos));
      break;
    }
    const std::string_view frame = bytes.substr(pos, incl);
    pos += incl;

    if (cfg_.limits.max_records != 0 && r.stats.accepted >= cfg_.limits.max_records) {
      count(r, IngestErrorCategory::kBudget, idx, "pcap: max_records budget exhausted",
            frame);
      continue;
    }

    traffic::Packet p;
    const auto status = traffic::parse_pcap_record(ts_sec, ts_usec, orig, frame, p);
    switch (status) {
      case traffic::PcapRecordStatus::kOk:
        break;
      case traffic::PcapRecordStatus::kTruncated:
        count(r, IngestErrorCategory::kTruncated, idx, "pcap: frame below header stack",
              frame);
        continue;
      case traffic::PcapRecordStatus::kNotIpv4:
        count(r, IngestErrorCategory::kUnsupported, idx, "pcap: not IPv4", frame);
        continue;
      case traffic::PcapRecordStatus::kBadIpv4Header:
        count(r, IngestErrorCategory::kBadField, idx, "pcap: bad IPv4 header", frame);
        continue;
      case traffic::PcapRecordStatus::kUnsupportedProto:
        count(r, IngestErrorCategory::kUnsupported, idx, "pcap: proto not in {1,6,17}",
              frame);
        continue;
      case traffic::PcapRecordStatus::kBadLength:
        count(r, IngestErrorCategory::kRangeViolation, idx, "pcap: unrecoverable length",
              frame);
        continue;
      case traffic::PcapRecordStatus::kBadTimestamp:
        count(r, IngestErrorCategory::kRangeViolation, idx, "pcap: ts_usec > 999999",
              frame);
        continue;
    }

    std::string why;
    if (!sanitise_ts(p.ts, prev_ts, cfg_.clamp_timestamps, r.stats, &why)) {
      count(r, IngestErrorCategory::kRangeViolation, idx, "pcap: " + why, frame);
      continue;
    }
    ++r.stats.accepted;
    r.trace.packets.push_back(p);
  }
  finish(r);
  return r;
}

IngestResult TraceReader::read_buffer(std::string_view bytes) const {
  TraceFormat fmt = cfg_.format;
  if (fmt == TraceFormat::kAuto) {
    std::uint32_t magic = 0;
    if (bytes.size() >= sizeof(magic)) std::memcpy(&magic, bytes.data(), sizeof(magic));
    fmt = magic == traffic::kPcapMagicLE ? TraceFormat::kPcap : TraceFormat::kCsv;
  }
  return fmt == TraceFormat::kPcap ? read_pcap(bytes) : read_csv(bytes);
}

IngestResult TraceReader::read_file(const std::string& path) const {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    IngestResult r;
    r.quarantine = QuarantineRing(cfg_.limits.quarantine_capacity,
                                  cfg_.limits.quarantine_snippet_bytes);
    ++r.stats.offered;
    count(r, IngestErrorCategory::kContainer, 0, "cannot open " + path, {});
    r.container_ok = false;
    r.container_error = "cannot open " + path;
    finish(r);
    return r;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string bytes = ss.str();
  return read_buffer(bytes);
}

std::string_view packet_violation(const traffic::Packet& p) {
  if (!std::isfinite(p.ts)) return "ts is not finite";
  if (p.ft.proto != traffic::kProtoTcp && p.ft.proto != traffic::kProtoUdp &&
      p.ft.proto != traffic::kProtoIcmp) {
    return "proto not in {1,6,17}";
  }
  if (static_cast<std::uint8_t>(p.flags) > 5) return "flags ordinal > 5";
  return {};
}

IngestResult ingest_trace(const traffic::Trace& trace, const TraceReaderConfig& cfg) {
  TraceReader reader(cfg);
  IngestResult r;
  r.quarantine = QuarantineRing(cfg.limits.quarantine_capacity,
                                cfg.limits.quarantine_snippet_bytes);
  r.trace.packets.reserve(trace.size());

  double prev_ts = 0.0;
  char row[192];
  const auto snippet_of = [&](const traffic::Packet& p) {
    const int n = std::snprintf(row, sizeof(row), "%.17g,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u",
                                p.ts, p.ft.src_ip, p.ft.dst_ip, unsigned{p.ft.src_port},
                                unsigned{p.ft.dst_port}, unsigned{p.ft.proto},
                                unsigned{p.length}, unsigned{p.ttl},
                                static_cast<unsigned>(p.flags), p.malicious ? 1u : 0u,
                                p.flow_id);
    return std::string_view(row, static_cast<std::size_t>(n));
  };
  struct CountHelper {
    IngestResult& r;
    void operator()(IngestErrorCategory cat, std::uint64_t idx, std::string detail,
                    std::string_view raw) {
      ++r.stats.quarantined;
      ++r.stats.by_category[static_cast<std::size_t>(cat)];
      r.quarantine.push(cat, idx, std::move(detail), raw);
    }
  } count{r};

  for (const auto& src : trace.packets) {
    ++r.stats.offered;
    const std::uint64_t idx = r.stats.offered - 1;
    if (cfg.limits.max_records != 0 && r.stats.accepted >= cfg.limits.max_records) {
      count(IngestErrorCategory::kBudget, idx, "trace: max_records budget exhausted",
            snippet_of(src));
      continue;
    }
    const std::string_view bad = packet_violation(src);
    if (!bad.empty()) {
      const auto cat = bad.substr(0, 5) == "proto" ? IngestErrorCategory::kUnsupported
                                                   : IngestErrorCategory::kRangeViolation;
      count(cat, idx, "trace: " + std::string(bad), snippet_of(src));
      continue;
    }
    traffic::Packet p = src;
    std::string why;
    if (!sanitise_ts(p.ts, prev_ts, cfg.clamp_timestamps, r.stats, &why)) {
      count(IngestErrorCategory::kRangeViolation, idx, "trace: " + why, snippet_of(src));
      continue;
    }
    ++r.stats.accepted;
    r.trace.packets.push_back(p);
  }

  // Route the totals into the reader's metrics (registered by its ctor).
  if (cfg.metrics != nullptr && cfg.metrics->enabled()) {
    const std::string& pfx = cfg.metrics_prefix;
    cfg.metrics->counter(pfx + ".offered").inc(r.stats.offered);
    cfg.metrics->counter(pfx + ".accepted").inc(r.stats.accepted);
    cfg.metrics->counter(pfx + ".quarantined").inc(r.stats.quarantined);
    cfg.metrics->counter(pfx + ".timestamps_clamped").inc(r.stats.timestamps_clamped);
    for (std::size_t i = 0; i < kIngestCategories; ++i) {
      cfg.metrics
          ->counter(pfx + ".quarantine." +
                    std::string(category_name(static_cast<IngestErrorCategory>(i))))
          .inc(r.stats.by_category[i]);
    }
  }
  return r;
}

void encode_digest(const switchsim::Digest& d, std::string& out) {
  const auto be32 = [&](std::uint32_t v) {
    out.push_back(static_cast<char>(v >> 24));
    out.push_back(static_cast<char>(v >> 16));
    out.push_back(static_cast<char>(v >> 8));
    out.push_back(static_cast<char>(v));
  };
  const auto be16 = [&](std::uint16_t v) {
    out.push_back(static_cast<char>(v >> 8));
    out.push_back(static_cast<char>(v));
  };
  be32(d.ft.src_ip);
  be32(d.ft.dst_ip);
  be16(d.ft.src_port);
  be16(d.ft.dst_port);
  out.push_back(static_cast<char>(d.ft.proto));
  out.push_back(static_cast<char>(d.label != 0 ? 1 : 0));
}

std::string encode_digest(const switchsim::Digest& d) {
  std::string out;
  out.reserve(switchsim::Digest::kBytes);
  encode_digest(d, out);
  return out;
}

bool decode_digest(std::string_view bytes, switchsim::Digest& out) {
  if (bytes.size() != switchsim::Digest::kBytes) return false;
  const auto* d = reinterpret_cast<const unsigned char*>(bytes.data());
  const auto rd32 = [&](std::size_t off) {
    return static_cast<std::uint32_t>(d[off]) << 24 | static_cast<std::uint32_t>(d[off + 1]) << 16 |
           static_cast<std::uint32_t>(d[off + 2]) << 8 | static_cast<std::uint32_t>(d[off + 3]);
  };
  const auto rd16 = [&](std::size_t off) {
    return static_cast<std::uint16_t>(d[off] << 8 | d[off + 1]);
  };
  const std::uint8_t proto = d[12];
  if (proto != traffic::kProtoTcp && proto != traffic::kProtoUdp &&
      proto != traffic::kProtoIcmp) {
    return false;
  }
  const std::uint8_t label = d[13];
  if (label > 1) return false;
  out.ft.src_ip = rd32(0);
  out.ft.dst_ip = rd32(4);
  out.ft.src_port = rd16(8);
  out.ft.dst_port = rd16(10);
  out.ft.proto = proto;
  out.label = label;
  return true;
}

std::vector<switchsim::Digest> decode_digest_stream(std::string_view bytes,
                                                    DigestDecodeStats& stats) {
  std::vector<switchsim::Digest> out;
  constexpr std::size_t kRec = switchsim::Digest::kBytes;
  out.reserve(bytes.size() / kRec);
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    ++stats.offered;
    if (bytes.size() - pos < kRec) {
      ++stats.rejected;  // trailing fragment
      break;
    }
    switchsim::Digest d;
    if (decode_digest(bytes.substr(pos, kRec), d)) {
      ++stats.decoded;
      out.push_back(d);
    } else {
      ++stats.rejected;
    }
    pos += kRec;
  }
  return out;
}

}  // namespace iguard::io
