#include "core/whitelist.hpp"

#include <gtest/gtest.h>

#include "core/ae_ensemble.hpp"
#include "core/guided_iforest.hpp"

namespace iguard::core {
namespace {

// Small trained system shared across the suite: 3-D benign manifold.
class WhitelistTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new ml::Rng(23);
    train_ = new ml::Matrix(0, 3);
    for (int i = 0; i < 1200; ++i) {
      const double a = rng_->uniform();
      const double row[3] = {a + rng_->normal(0, 0.05), 2.0 * a + rng_->normal(0, 0.05),
                             1.0 - a + rng_->normal(0, 0.05)};
      train_->push_row(row);
    }
    teacher_ = new AeEnsemble();
    AeEnsembleConfig tcfg;
    tcfg.ensemble_size = 2;
    tcfg.base.encoder_hidden = {6, 2};
    tcfg.base.epochs = 50;
    teacher_->fit(*train_, tcfg, *rng_);

    forest_ = new GuidedIsolationForest{GuidedForestConfig{.num_trees = 5}};
    forest_->fit(*train_, *teacher_, *rng_);

    quant_ = new rules::Quantizer(12);
    quant_->fit(*train_);
  }
  static void TearDownTestSuite() {
    delete quant_;
    delete forest_;
    delete teacher_;
    delete train_;
    delete rng_;
  }

  static ml::Rng* rng_;
  static ml::Matrix* train_;
  static AeEnsemble* teacher_;
  static GuidedIsolationForest* forest_;
  static rules::Quantizer* quant_;
};
ml::Rng* WhitelistTest::rng_ = nullptr;
ml::Matrix* WhitelistTest::train_ = nullptr;
AeEnsemble* WhitelistTest::teacher_ = nullptr;
GuidedIsolationForest* WhitelistTest::forest_ = nullptr;
rules::Quantizer* WhitelistTest::quant_ = nullptr;

TEST_F(WhitelistTest, QuantizedTreeAgreesWithFloatVote) {
  // The quantised guided tree's payload must match the float tree's vote on
  // (almost) every probe; disagreement can only come from quantisation.
  const auto& tree = forest_->trees()[0];
  const QuantizedTree qt = quantize_tree(tree, *quant_);
  ml::Rng probe(5);
  std::size_t agree = 0, n = 0;
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x(3);
    for (auto& v : x) v = probe.uniform(-0.5, 2.5);
    const auto key = quant_->quantize(x);
    // Compare on the *dequantised* point so both sides see the same input.
    std::vector<double> xq(3);
    for (std::size_t j = 0; j < 3; ++j) xq[j] = quant_->dequantize(j, key[j]);
    const int qlabel = qt.payload_at(key) > 0.5 ? 1 : 0;
    agree += qlabel == tree.vote(xq) ? 1 : 0;
    ++n;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(n), 0.97);
}

TEST_F(WhitelistTest, PerTreeCompileMatchesForestVote) {
  const VoteWhitelist wl = compile_per_tree(*forest_, *quant_);
  EXPECT_EQ(wl.tables.size(), forest_->trees().size());
  ml::Rng probe(7);
  std::size_t agree = 0, n = 0;
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x(3);
    for (auto& v : x) v = probe.uniform(-0.5, 2.5);
    const auto key = quant_->quantize(x);
    std::vector<double> xq(3);
    for (std::size_t j = 0; j < 3; ++j) xq[j] = quant_->dequantize(j, key[j]);
    agree += wl.classify(key) == forest_->predict(xq) ? 1 : 0;
    ++n;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(n), 0.97);
}

TEST_F(WhitelistTest, VoteFractionMatchesTableVotes) {
  const VoteWhitelist wl = compile_per_tree(*forest_, *quant_);
  const auto key = quant_->quantize(train_->row(0));
  const double frac = wl.malicious_vote_fraction(key);
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 1.0);
  EXPECT_EQ(wl.classify(key), 2.0 * frac > 1.0 ? 1 : 0);
}

TEST_F(WhitelistTest, TrainingPointsMostlyWhitelisted) {
  const VoteWhitelist wl = compile_per_tree(*forest_, *quant_);
  std::size_t benign = 0;
  for (std::size_t i = 0; i < train_->rows(); ++i) {
    benign += wl.classify(quant_->quantize(train_->row(i))) == 0 ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(benign) / static_cast<double>(train_->rows()), 0.9);
}

TEST_F(WhitelistTest, FarOffSupportIsNeverWhitelisted) {
  const VoteWhitelist wl = compile_per_tree(*forest_, *quant_);
  const std::vector<double> far = {100.0, -100.0, 100.0};
  EXPECT_EQ(wl.classify(quant_->quantize(far)), 1);
}

TEST_F(WhitelistTest, ClipRestrictsRules) {
  WhitelistConfig cfg;
  cfg.clip = support_clip(*train_, *quant_);
  const VoteWhitelist wl = compile_per_tree(*forest_, *quant_, cfg);
  for (const auto& t : wl.tables) {
    for (const auto& r : t.rules()) {
      for (std::size_t j = 0; j < r.fields.size(); ++j) {
        EXPECT_GE(r.fields[j].lo, cfg.clip[j].lo);
        EXPECT_LE(r.fields[j].hi, cfg.clip[j].hi);
      }
    }
  }
}

TEST_F(WhitelistTest, UntrimmedSupportClipCoversAllTrainingPoints) {
  const auto clip = support_clip(*train_, *quant_, 0.0);
  for (std::size_t i = 0; i < train_->rows(); ++i) {
    const auto key = quant_->quantize(train_->row(i));
    for (std::size_t j = 0; j < key.size(); ++j) {
      EXPECT_GE(key[j], clip[j].lo);
      EXPECT_LE(key[j], clip[j].hi);
    }
  }
}

TEST_F(WhitelistTest, TrimmedSupportClipExcludesTails) {
  // Robust support (poison defence): a trimmed clip is strictly inside the
  // untrimmed one and excludes roughly the trimmed tail mass.
  const auto full = support_clip(*train_, *quant_, 0.0);
  const auto robust = support_clip(*train_, *quant_, 0.05);
  std::size_t tighter_sides = 0;
  for (std::size_t j = 0; j < full.size(); ++j) {
    EXPECT_GE(robust[j].lo, full[j].lo);
    EXPECT_LE(robust[j].hi, full[j].hi);
    tighter_sides += (robust[j].lo > full[j].lo ? 1 : 0) + (robust[j].hi < full[j].hi ? 1 : 0);
  }
  EXPECT_GT(tighter_sides, 0u);
  std::size_t outside = 0;
  for (std::size_t i = 0; i < train_->rows(); ++i) {
    const auto key = quant_->quantize(train_->row(i));
    for (std::size_t j = 0; j < key.size(); ++j) {
      if (key[j] < robust[j].lo || key[j] > robust[j].hi) {
        ++outside;
        break;
      }
    }
  }
  // Union over 3 dims of ~10% tail mass each: somewhere in (5%, 35%).
  const double frac = static_cast<double>(outside) / static_cast<double>(train_->rows());
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.5);
}

TEST_F(WhitelistTest, PathThresholdFromScoreInverse) {
  // score = 2^(-E/c) and E = -c log2(score) must be mutual inverses.
  const std::size_t psi = 256;
  const double c = ml::average_path_length(psi);
  for (double s : {0.4, 0.5, 0.6, 0.7}) {
    const double e = path_threshold_from_score(s, psi);
    EXPECT_NEAR(std::pow(2.0, -e / c), s, 1e-9);
  }
}

TEST_F(WhitelistTest, BaselineCompileMatchesLeafThresholdVote) {
  ml::IsolationForest iforest({.num_trees = 5, .subsample = 64, .contamination = 0.1});
  ml::Rng frng(3);
  iforest.fit(*train_, frng);
  const VoteWhitelist wl = compile_per_tree(iforest, *quant_);
  const double e_thr =
      path_threshold_from_score(iforest.threshold(), iforest.effective_subsample());

  ml::Rng probe(9);
  std::size_t agree = 0, n = 0;
  for (int i = 0; i < 400; ++i) {
    std::vector<double> x(3);
    for (auto& v : x) v = probe.uniform(-0.5, 2.5);
    const auto key = quant_->quantize(x);
    std::vector<double> xq(3);
    for (std::size_t j = 0; j < 3; ++j) xq[j] = quant_->dequantize(j, key[j]);
    // Reference: per-tree leaf-threshold majority vote in float space.
    std::size_t mal = 0;
    for (const auto& tree : iforest.trees()) {
      mal += tree.path_length(xq) < e_thr ? 1 : 0;
    }
    const int ref = 2 * mal > iforest.trees().size() ? 1 : 0;
    agree += wl.classify(key) == ref ? 1 : 0;
    ++n;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(n), 0.97);
}

TEST_F(WhitelistTest, SampleLabellerAgreesWithForestOnRegions) {
  // The paper's random-interior-point labelling applied to whitelist rules:
  // every interior point of a benign rule must be classified benign by the
  // compiled rules (they are, by construction, subsets of benign boxes).
  const VoteWhitelist wl = compile_per_tree(*forest_, *quant_);
  ml::Rng probe(11);
  for (const auto& table : wl.tables) {
    for (std::size_t ri = 0; ri < std::min<std::size_t>(table.size(), 5); ++ri) {
      const auto& r = table.rules()[ri];
      const int label = sample_label_majority(*forest_, *quant_, r, probe);
      EXPECT_TRUE(label == 0 || label == 1);
    }
  }
}

}  // namespace
}  // namespace iguard::core
