// End-to-end integration tests over the full stack: synthetic traffic ->
// feature extraction -> teacher -> guided forest -> rules -> (switch
// pipeline). Small sizes keep each test in the low seconds; assertions
// check the paper's *orderings*, not absolute numbers.
#include <gtest/gtest.h>

#include "harness/cpu_lab.hpp"
#include "harness/testbed_lab.hpp"

namespace iguard::harness {
namespace {

CpuLabConfig small_cpu_cfg() {
  CpuLabConfig cfg;
  cfg.benign_flows = 1500;
  cfg.attack_flows = 300;
  cfg.scale_grid = {1.1, 1.4};
  cfg.teacher.base.epochs = 25;
  return cfg;
}

class CpuIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { lab_ = new CpuLab(small_cpu_cfg()); }
  static void TearDownTestSuite() {
    delete lab_;
    lab_ = nullptr;
  }
  static CpuLab* lab_;
};
CpuLab* CpuIntegration::lab_ = nullptr;

TEST_F(CpuIntegration, IGuardBeatsIForestOnMirai) {
  const auto split = lab_->make_attack_split(traffic::AttackType::kMirai);
  const auto base_t = lab_->calibrate_teacher(split);
  const auto m_if = lab_->evaluate_detector(lab_->iforest(), split);
  const auto ig = lab_->train_iguard(split, base_t);
  EXPECT_GT(ig.model.macro_f1, m_if.macro_f1);
  EXPECT_GT(ig.model.macro_f1, 0.7);
  EXPECT_GT(ig.model.roc_auc, 0.85);
}

TEST_F(CpuIntegration, IGuardTracksTeacher) {
  const auto split = lab_->make_attack_split(traffic::AttackType::kUdpDdos);
  const auto base_t = lab_->calibrate_teacher(split);
  const auto m_ae = lab_->evaluate_teacher(split, base_t);
  const auto ig = lab_->train_iguard(split, base_t);
  // "iGuard yields ... similar to Magnifier" — within a sensible band.
  EXPECT_GT(ig.model.macro_f1, m_ae.macro_f1 - 0.15);
}

TEST_F(CpuIntegration, RulesConsistencyIsHigh) {
  const auto split = lab_->make_attack_split(traffic::AttackType::kOsScan);
  const auto base_t = lab_->calibrate_teacher(split);
  const auto ig = lab_->train_iguard(split, base_t);
  EXPECT_GT(ig.consistency, 0.97);  // paper: 0.992-0.996
  EXPECT_GT(ig.guard->whitelist().total_rules(), 0u);
}

TEST_F(CpuIntegration, SplitShapesAndLabels) {
  const auto split = lab_->make_attack_split(traffic::AttackType::kAidra);
  ASSERT_EQ(split.val_x.rows(), split.val_y.size());
  ASSERT_EQ(split.test_x.rows(), split.test_y.size());
  const auto frac = [](const std::vector<int>& y) {
    double s = 0;
    for (int v : y) s += v;
    return s / static_cast<double>(y.size());
  };
  // ~20% attack share in val and test, as the protocol prescribes.
  EXPECT_NEAR(frac(split.val_y), 0.20, 0.05);
  EXPECT_NEAR(frac(split.test_y), 0.20, 0.05);
}

TEST(TestbedIntegration, PipelineBeatsBaselinePerPacket) {
  TestbedLabConfig cfg;
  cfg.benign_train_flows = 1500;
  cfg.benign_val_flows = 400;
  cfg.benign_test_flows = 400;
  cfg.attack_flows = 100;
  cfg.scale_grid = {1.1, 1.4};
  cfg.teacher.base.epochs = 25;
  TestbedLab lab{cfg};
  const auto out = lab.run_attack(traffic::AttackType::kMirai);
  EXPECT_GT(out.iguard.macro_f1, out.iforest.macro_f1);
  EXPECT_GT(out.iguard.macro_f1, 0.6);
  // Path accounting must cover every packet exactly once; loopback mirrors
  // are copies and live in their own counter.
  std::size_t paths = 0;
  for (std::size_t i = 0; i < 6; ++i) paths += out.iguard_stats.path_count[i];
  EXPECT_EQ(paths, out.iguard_stats.packets);
  EXPECT_EQ(out.iguard_stats.path(switchsim::Path::kGreen), 0u);
  EXPECT_GE(out.iguard_stats.green_mirrors, out.iguard_stats.flows_classified);
  EXPECT_EQ(out.iguard_stats.pred.size(), out.iguard_stats.packets);
}

}  // namespace
}  // namespace iguard::harness
