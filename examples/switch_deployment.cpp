// Switch-deployment walkthrough: train iGuard under data-plane constraints,
// compile it to per-tree whitelist tables, deploy onto the Tofino-style
// pipeline simulator, replay mixed traffic, and inspect what the switch
// actually did — the six packet paths of Fig. 4, digests, blacklist
// installs, and the RMT resource bill.
#include <fstream>
#include <iostream>

#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "harness/testbed_lab.hpp"
#include "io/replay.hpp"
#include "obs/metrics.hpp"
#include "switchsim/timing.hpp"

using namespace iguard;

int main() {
  harness::TestbedLabConfig cfg;
  cfg.attack_flows = 150;
  cfg.teacher.num_threads = 0;  // 0 = hardware concurrency
  cfg.forest.num_threads = 0;
  harness::TestbedLab lab{cfg};

  const auto atk = traffic::AttackType::kMirai;
  std::cout << "deploying iGuard and the iForest baseline; replaying benign + "
            << traffic::attack_name(atk) << " traffic...\n\n";
  const auto out = lab.run_attack(atk);

  eval::Table verdicts({"system", "macro F1", "ROC AUC", "PR AUC"});
  verdicts.add_row({"iGuard", eval::Table::num(out.iguard.macro_f1),
                    eval::Table::num(out.iguard.roc_auc), eval::Table::num(out.iguard.pr_auc)});
  verdicts.add_row({"iForest [15]", eval::Table::num(out.iforest.macro_f1),
                    eval::Table::num(out.iforest.roc_auc),
                    eval::Table::num(out.iforest.pr_auc)});
  verdicts.print(std::cout, "Per-packet verdicts");

  const auto& st = out.iguard_stats;
  eval::Table paths({"path", "meaning", "packets"});
  paths.add_row({"red", "blacklisted 5-tuple, dropped early",
                 std::to_string(st.path(switchsim::Path::kRed))});
  paths.add_row({"brown", "packets 1..n-1, PL whitelist verdict",
                 std::to_string(st.path(switchsim::Path::kBrown))});
  paths.add_row({"blue", "n-th packet / timeout, FL classification",
                 std::to_string(st.path(switchsim::Path::kBlue))});
  paths.add_row({"orange", "hash collision handling",
                 std::to_string(st.path(switchsim::Path::kOrange))});
  paths.add_row({"purple", "flow already classified, early decision",
                 std::to_string(st.path(switchsim::Path::kPurple))});
  paths.add_row({"green", "loopback mirror (label/flow-ID commit)",
                 std::to_string(st.green_mirrors)});
  std::cout << "\n";
  paths.print(std::cout, "iGuard packet execution paths (Fig. 4)");

  std::cout << "\nflows classified: " << st.flows_classified
            << ", digests sent: " << st.flows_classified
            << ", benign feature mirrors: " << st.benign_feature_mirrors
            << ", collisions: " << st.collisions << "\n";
  std::cout << "selected teacher threshold scale: " << out.selected_scale << "\n\n";

  eval::Table res({"resource", "iGuard", "iForest [15]"});
  res.add_row({"TCAM", eval::Table::pct(out.iguard_res.tcam_frac),
               eval::Table::pct(out.iforest_res.tcam_frac)});
  res.add_row({"SRAM", eval::Table::pct(out.iguard_res.sram_frac),
               eval::Table::pct(out.iforest_res.sram_frac)});
  res.add_row({"sALUs", eval::Table::pct(out.iguard_res.salu_frac),
               eval::Table::pct(out.iforest_res.salu_frac)});
  res.add_row({"VLIW", eval::Table::pct(out.iguard_res.vliw_frac),
               eval::Table::pct(out.iforest_res.vliw_frac)});
  res.add_row({"stages", std::to_string(out.iguard_res.stages),
               std::to_string(out.iforest_res.stages)});
  res.print(std::cout, "Switch resources");

  const switchsim::TimingConfig timing;
  std::cout << "\npipeline latency: " << switchsim::pipeline_latency_ns(timing)
            << " ns per packet (" << timing.stages << " stages x " << timing.per_stage_ns
            << " ns)\n";

  // --- control-plane fault drill ------------------------------------------
  // Same deployment, degraded channel: 5 ms installs, 5 % digest loss, a
  // bounded channel, and a controller outage over a quarter of the replay.
  // The controller recovers by rebuilding blacklist rules from the
  // flow-label registers still resident in the data plane.
  const auto dep = lab.deploy_attack(atk);
  const double end_ts = dep.test_trace.packets.back().ts;
  switchsim::PipelineConfig fault_cfg = cfg.pipe;
  fault_cfg.control.control_latency_s = 5e-3;
  fault_cfg.control.channel_capacity = 128;
  fault_cfg.control.faults.seed = cfg.seed;
  fault_cfg.control.faults.digest_loss_rate = 0.05;
  fault_cfg.control.faults.crashes = {{0.40 * end_ts, 0.25 * end_ts}};
  // Observability (DESIGN.md §4d): attach a registry and the pipeline
  // self-registers path counters, latency histograms, occupancy gauges, and
  // the control-plane backlog series — allocation-free per packet.
  obs::Registry metrics;
  fault_cfg.metrics = &metrics;
  switchsim::Pipeline degraded(fault_cfg, dep.iguard_model());
  const auto fst = degraded.run(dep.test_trace);

  eval::Table faults({"control-plane event", "count"});
  faults.add_row({"digests sent", std::to_string(degraded.controller().digests_received())});
  faults.add_row({"injected digest drops", std::to_string(fst.faults.injected_digest_drops)});
  faults.add_row({"channel overflow drops", std::to_string(fst.faults.channel_overflow_drops)});
  faults.add_row({"channel backlog high-water", std::to_string(fst.faults.backlog_hwm)});
  faults.add_row({"install attempts", std::to_string(fst.faults.install_attempts)});
  faults.add_row({"install retries", std::to_string(fst.faults.install_retries)});
  faults.add_row({"dead-lettered installs", std::to_string(fst.faults.dead_letters)});
  faults.add_row({"controller restarts", std::to_string(fst.faults.crashes)});
  faults.add_row({"digests lost to crash", std::to_string(fst.faults.digests_lost_to_crash)});
  faults.add_row({"recovery installs (from registers)",
                  std::to_string(fst.faults.recovery_installs)});
  faults.add_row({"leaked packets (admitted post-classification)",
                  std::to_string(fst.faults.leaked_packets)});
  std::cout << "\n";
  faults.print(std::cout,
               "Degraded control plane (5ms installs, 5% loss, cap 128, 25% outage)");
  std::cout << "red-path drops under faults: " << fst.path(switchsim::Path::kRed) << " (vs "
            << st.path(switchsim::Path::kRed) << " lockstep)\n";

  // --- ingest chaos drill ---------------------------------------------------
  // Same replay, hostile input path (DESIGN.md §4g): serialize the test
  // trace to CSV, mangle it with seeded ingest faults (truncated and
  // corrupted records, duplicated and reordered batches, a burst window),
  // then shove it through the hardened reader and an overloaded shed queue
  // before it reaches the pipeline. Everything is seeded and event-clocked,
  // so the drill is bit-identical across runs and the conservation audit
  // must balance: offered == accepted + quarantined, then
  // accepted == admitted + shed.
  io::IngestReplayConfig icfg;
  icfg.reader.metrics = &metrics;  // ingest.* counters join the snapshot
  icfg.chaos.record_truncate_rate = 0.04;
  icfg.chaos.record_corrupt_rate = 0.04;
  icfg.chaos.batch_duplicate_rate = 0.10;
  icfg.chaos.batch_reorder_rate = 0.10;
  icfg.chaos.bursts = {{0.40 * end_ts, 0.10 * end_ts, 2.0}};
  icfg.overload.enabled = true;
  icfg.overload.queue_capacity = 256;
  icfg.overload.policy = io::ShedPolicy::kFlowHash;
  icfg.overload.flow_shed_fraction = 0.3;
  icfg.overload.drain_rate_pps =
      0.6 * static_cast<double>(dep.test_trace.size()) / end_ts;
  switchsim::ReplayConfig chaos_rc;
  chaos_rc.shards = 2;
  const auto drill = io::ingest_replay_sharded(dep.test_trace, icfg, fault_cfg,
                                               dep.iguard_model(), chaos_rc);
  if (const std::string err = io::audit_ingest_conservation(drill); !err.empty()) {
    std::cerr << "ingest conservation audit FAILED: " << err << "\n";
    return 1;
  }

  eval::Table drill_tbl({"ingest chaos drill", "count"});
  drill_tbl.add_row({"records offered", std::to_string(drill.ingest.offered)});
  drill_tbl.add_row({"accepted", std::to_string(drill.ingest.accepted)});
  drill_tbl.add_row({"quarantined", std::to_string(drill.ingest.quarantined)});
  drill_tbl.add_row({"timestamps clamped", std::to_string(drill.ingest.timestamps_clamped)});
  drill_tbl.add_row({"burst copies injected", std::to_string(drill.chaos.burst_copies)});
  drill_tbl.add_row({"batches duplicated", std::to_string(drill.chaos.batches_duplicated)});
  drill_tbl.add_row({"batches reordered", std::to_string(drill.chaos.batches_reordered)});
  drill_tbl.add_row({"shed by overload", std::to_string(drill.overload.shed)});
  drill_tbl.add_row({"queue high-water", std::to_string(drill.overload.queue_hwm)});
  drill_tbl.add_row({"admitted to pipeline", std::to_string(drill.overload.admitted)});
  drill_tbl.add_row({"replayed", std::to_string(drill.replay.stats.packets)});
  std::cout << "\n";
  drill_tbl.print(std::cout,
                  "Ingest chaos drill (mangled CSV, flow-hash shed, conservation-audited)");

  // Export the metrics snapshot (README "Dumping an observability
  // snapshot"): deterministic key order; "timing." keys are wall-clock and
  // the only ones that vary between runs.
  const obs::MetricsSnapshot snap = metrics.snapshot();
  std::ofstream("switch_deployment_obs.json") << obs::to_json(snap);
  std::ofstream("switch_deployment_obs.csv") << obs::to_csv(snap);
  std::cout << "\nwrote switch_deployment_obs.json / .csv (" << snap.scalars.size()
            << " scalar keys, " << snap.series.size() << " series)\n";
  return 0;
}
