#include "ml/matrix.hpp"

#include <gtest/gtest.h>

namespace iguard::ml {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, RowSpanWritesThrough) {
  Matrix m(2, 2);
  auto r = m.row(0);
  r[1] = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Matrix, PushRowSetsWidthOnFirst) {
  Matrix m;
  const double v[] = {1.0, 2.0, 3.0};
  m.push_row(v);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.rows(), 1u);
  const double w[] = {4.0, 5.0};
  EXPECT_THROW(m.push_row(w), std::invalid_argument);
}

TEST(Matrix, Gather) {
  Matrix m{{1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}};
  const std::size_t idx[] = {2, 0};
  Matrix g = m.gather(idx);
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_DOUBLE_EQ(g(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 1.0);
}

TEST(Kernels, DotAxpySqDist) {
  const double a[] = {1.0, 2.0, 3.0};
  const double b[] = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  double dst[] = {1.0, 1.0, 1.0};
  axpy(2.0, a, dst);
  EXPECT_DOUBLE_EQ(dst[2], 7.0);
  EXPECT_DOUBLE_EQ(sq_dist(a, b), 27.0);
}

}  // namespace
}  // namespace iguard::ml
