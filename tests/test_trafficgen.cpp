#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "trafficgen/adversarial.hpp"
#include "trafficgen/attacks.hpp"
#include "trafficgen/benign.hpp"

namespace iguard::traffic {
namespace {

TEST(Bihash, DirectionInvariant) {
  const FiveTuple a{0x0A000001, 0x0A000002, 1234, 80, kProtoTcp};
  EXPECT_EQ(bihash(a), bihash(a.reversed()));
  EXPECT_EQ(bihash(a, 99), bihash(a.reversed(), 99));
}

TEST(Bihash, SeedAndTupleSensitive) {
  const FiveTuple a{0x0A000001, 0x0A000002, 1234, 80, kProtoTcp};
  FiveTuple b = a;
  b.dst_port = 81;
  EXPECT_NE(bihash(a), bihash(b));
  EXPECT_NE(bihash(a, 1), bihash(a, 2));
}

TEST(Dirhash, DirectionSensitive) {
  const FiveTuple a{0x0A000001, 0x0A000002, 1234, 80, kProtoTcp};
  EXPECT_NE(dirhash(a), dirhash(a.reversed()));
}

TEST(Trace, MergeSortsAndRenumbersFlows) {
  Trace t1, t2;
  auto pkt = [](double ts, std::uint32_t id) {
    Packet p;
    p.ts = ts;
    p.flow_id = id;
    return p;
  };
  t1.packets.push_back(pkt(2.0, 0));
  t1.packets.push_back(pkt(4.0, 1));
  t2.packets.push_back(pkt(1.0, 0));
  t2.packets.push_back(pkt(3.0, 1));
  std::vector<Trace> parts{t1, t2};
  Trace merged = merge_traces(parts);
  ASSERT_EQ(merged.size(), 4u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged.packets[i - 1].ts, merged.packets[i].ts);
  }
  std::set<std::uint32_t> ids;
  for (const auto& p : merged.packets) ids.insert(p.flow_id);
  EXPECT_EQ(ids.size(), 4u);  // flow ids stay distinct across sources
}

TEST(FlowSpec, EmitRespectsBudgetAndClamp) {
  ml::Rng rng(1);
  FlowSpec s;
  s.packets = 50;
  s.size_mu = 5000.0;  // far above the clamp
  s.size_sigma = 10.0;
  s.ipd_mean = 0.01;
  s.flow_id = 7;
  const Trace t = emit_packets(std::span(&s, 1), rng);
  EXPECT_EQ(t.size(), 50u);
  for (const auto& p : t.packets) {
    EXPECT_LE(p.length, 1500);
    EXPECT_GE(p.length, 40);
    EXPECT_EQ(p.flow_id, 7u);
  }
}

TEST(FlowSpec, MeanIpdApproximatelyPreserved) {
  ml::Rng rng(2);
  FlowSpec s;
  s.packets = 5000;
  s.ipd_mean = 0.01;
  s.ipd_jitter_sigma = 0.5;
  const Trace t = emit_packets(std::span(&s, 1), rng);
  const double mean_gap = t.duration() / static_cast<double>(t.size() - 1);
  EXPECT_NEAR(mean_gap, 0.01, 0.002);  // unit-mean lognormal jitter
}

TEST(Benign, ManifoldFiniteForExtendedActivity) {
  // Regression: a > 1 (the rare backup class) must not produce NaN
  // (pow of a negative base with a fractional exponent).
  for (double a : {0.0, 0.5, 1.0, 1.1, 1.25, 2.0}) {
    const auto p = benign_manifold(a);
    EXPECT_TRUE(std::isfinite(p.size_mu)) << a;
    EXPECT_TRUE(std::isfinite(p.ipd_mean)) << a;
    EXPECT_TRUE(std::isfinite(p.packets)) << a;
    EXPECT_GE(p.ipd_mean, 0.002);
    EXPECT_LE(p.size_mu, 1460.0);
  }
}

TEST(Benign, ManifoldIsMonotone) {
  const auto slow = benign_manifold(0.1);
  const auto fast = benign_manifold(0.9);
  EXPECT_LT(slow.size_mu, fast.size_mu);
  EXPECT_GT(slow.ipd_mean, fast.ipd_mean);
  EXPECT_LT(slow.packets, fast.packets);
}

TEST(Benign, GeneratesRequestedFlowsAllBenign) {
  ml::Rng rng(3);
  BenignConfig cfg;
  cfg.flows = 200;
  const auto specs = benign_flows(cfg, rng);
  EXPECT_EQ(specs.size(), 200u);
  for (const auto& s : specs) {
    EXPECT_FALSE(s.malicious);
    EXPECT_GE(s.packets, 2u);
  }
}

TEST(Attacks, AllFifteenGenerate) {
  ml::Rng rng(4);
  AttackConfig cfg;
  cfg.flows = 20;
  EXPECT_EQ(all_attacks().size(), 15u);
  for (const auto atk : all_attacks()) {
    const Trace t = attack_trace(atk, cfg, rng);
    EXPECT_GT(t.size(), 0u) << attack_name(atk);
    for (const auto& p : t.packets) EXPECT_TRUE(p.malicious);
  }
}

TEST(Attacks, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto atk : all_attacks()) names.insert(attack_name(atk));
  EXPECT_EQ(names.size(), 15u);
}

TEST(Attacks, RouterTransformSlowsAndDecrementsTtl) {
  ml::Rng rng(5);
  FlowSpec s;
  s.ttl = 64;
  s.ipd_mean = 1e-4;
  s.ipd_jitter_sigma = 0.05;
  s.packets = 100;
  apply_router_transform(s, rng, 2e-3);
  EXPECT_EQ(s.ttl, 63);
  EXPECT_GE(s.ipd_mean, 2e-3);  // rate limit floor
  EXPECT_LT(s.packets, 100u);   // upstream filtering
}

TEST(Adversarial, LowRateScalesIpd) {
  ml::Rng rng(6);
  AttackConfig cfg;
  cfg.flows = 10;
  auto specs = attack_flows(AttackType::kUdpDdos, cfg, rng);
  const double before = specs[0].ipd_mean;
  apply_low_rate(specs, 100.0);
  EXPECT_NEAR(specs[0].ipd_mean, before * 100.0, 1e-12);
}

TEST(Adversarial, PoisonAddsFraction) {
  ml::Rng rng(7);
  BenignConfig bcfg;
  bcfg.flows = 100;
  const auto benign = benign_flows(bcfg, rng);
  AttackConfig acfg;
  const auto poisoned = poison_training_flows(benign, AttackType::kMirai, 0.1, acfg, rng);
  EXPECT_EQ(poisoned.size(), 110u);
  std::size_t mal = 0;
  std::set<std::uint32_t> ids;
  for (const auto& s : poisoned) {
    mal += s.malicious ? 1 : 0;
    ids.insert(s.flow_id);
  }
  EXPECT_EQ(mal, 10u);
  EXPECT_EQ(ids.size(), poisoned.size());  // flow ids unique after poisoning
}

TEST(Adversarial, EvasionInsertsChaff) {
  ml::Rng rng(8);
  AttackConfig cfg;
  cfg.flows = 5;
  EvasionConfig ev;
  ev.chaff_per_packet = 2;
  const Trace padded = evasion_trace(AttackType::kTcpDdos, cfg, ev, rng);

  ml::Rng rng2(8);
  const Trace plain = attack_trace(AttackType::kTcpDdos, cfg, rng2);
  // 1 real : 2 chaff -> 3x the packet count for identical specs.
  EXPECT_EQ(padded.size(), plain.size() * 3);
  for (const auto& p : padded.packets) EXPECT_TRUE(p.malicious);
}

TEST(Adversarial, EvasionRaisesMeanSize) {
  // TCP DDoS packets are 40-60 B; chaff ~N(500, 280) raises the flow mean.
  ml::Rng rng(9);
  AttackConfig cfg;
  cfg.flows = 10;
  EvasionConfig ev;
  const Trace padded = evasion_trace(AttackType::kTcpDdos, cfg, ev, rng);
  double mean = 0.0;
  for (const auto& p : padded.packets) mean += p.length;
  mean /= static_cast<double>(padded.size());
  EXPECT_GT(mean, 150.0);
}

}  // namespace
}  // namespace iguard::traffic
