# Empty compiler generated dependencies file for bench_b1_throughput_latency.
# This may be replaced when dependencies are built.
