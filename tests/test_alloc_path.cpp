// Zero-allocation packet-path invariant: once flows are warmed up
// (classified or mid-epoch), Pipeline::process must not touch the heap on
// the red / brown / purple steady-state paths — quantisation goes through
// stack buffers (Quantizer::quantize_into) and the compiled match engine
// never allocates. This is the only TU in iguard_tests that may include
// alloc_counter.hpp (it replaces the global operator new).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "daemon/daemon.hpp"
#include "harness/alloc_counter.hpp"
#include "ml/compiled_forest.hpp"
#include "switchsim/pipeline.hpp"

namespace iguard::switchsim {
namespace {

traffic::Packet mk(double ts, std::uint16_t len, std::uint32_t src, std::uint16_t sport,
                   bool mal = false) {
  traffic::Packet p;
  p.ts = ts;
  p.ft = {src, 0x0A0000FFu, sport, 443, traffic::kProtoTcp};
  p.length = len;
  p.malicious = mal;
  return p;
}

class AllocPathTest : public ::testing::Test {
 protected:
  AllocPathTest() {
    // FL whitelist admitting only small-packet flows (feature 5 = min size),
    // so the trace produces both benign (purple) and malicious (red) flows.
    ml::Matrix fake(2, kSwitchFlFeatures);
    for (std::size_t j = 0; j < kSwitchFlFeatures; ++j) {
      fake(0, j) = 0.0;
      fake(1, j) = 1e6;
    }
    fl_quant_.fit(fake);
    std::vector<rules::FieldRange> box(kSwitchFlFeatures, {0, fl_quant_.domain_max()});
    box[5] = {0, fl_quant_.quantize_value(5, 600.0)};
    fl_.tree_count = 1;
    fl_.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});

    // PL whitelist over {dst_port, proto, length, TTL} so the brown path
    // exercises a real per-packet rule lookup, not the no-PL early-out.
    ml::Matrix fake_pl(2, 4);
    for (std::size_t j = 0; j < 4; ++j) {
      fake_pl(0, j) = 0.0;
      fake_pl(1, j) = 65535.0;
    }
    pl_quant_.fit(fake_pl);
    pl_.tree_count = 1;
    pl_.tables.emplace_back(std::vector<rules::RangeRule>{
        {std::vector<rules::FieldRange>(4, {0, pl_quant_.domain_max()}), 0, 0}});
  }

  DeployedModel model() const {
    DeployedModel dm;
    dm.fl_tables = &fl_;
    dm.fl_quantizer = &fl_quant_;
    dm.pl_tables = &pl_;
    dm.pl_quantizer = &pl_quant_;
    return dm;
  }

  rules::Quantizer fl_quant_{16}, pl_quant_{16};
  core::VoteWhitelist fl_, pl_;
};

TEST_F(AllocPathTest, SteadyStatePacketsAllocateNothing) {
  if (!harness::alloc_counting_active()) {
    GTEST_SKIP() << "sanitizer build owns the allocator";
  }
  PipelineConfig cfg;
  cfg.packet_threshold_n = 4;
  cfg.idle_timeout_delta = 1e6;  // no timeouts during the probe
  cfg.record_labels = false;     // per-packet vectors off (the 200 MB knob)
  cfg.match_engine = MatchEngine::kCompiled;
  const auto dm = model();
  Pipeline pipe(cfg, dm);
  SimStats st;

  // Warm-up: classify one benign flow (-> purple thereafter), one malicious
  // flow (-> blacklist install -> red thereafter), and start a long-lived
  // flow that stays below the packet threshold (-> brown on every packet).
  double ts = 0.0;
  for (int i = 0; i < 4; ++i) pipe.process(mk(ts += 0.001, 100, 1, 1000), st);
  for (int i = 0; i < 4; ++i) pipe.process(mk(ts += 0.001, 1400, 2, 2000, true), st);
  pipe.process(mk(ts += 0.001, 100, 3, 3000), st);
  ASSERT_EQ(st.flows_classified, 2u);
  ASSERT_EQ(pipe.blacklist().size(), 1u);

  // Steady state: purple + red traffic only, zero heap traffic.
  const std::size_t before = harness::alloc_count();
  for (int i = 0; i < 5000; ++i) {
    pipe.process(mk(ts += 0.0001, 100, 1, 1000), st);        // purple
    pipe.process(mk(ts += 0.0001, 1400, 2, 2000, true), st); // red
  }
  const std::size_t delta = harness::alloc_count() - before;
  EXPECT_EQ(delta, 0u) << "steady-state process() allocated " << delta << " times";
  EXPECT_EQ(st.path(Path::kPurple), 5000u);
  EXPECT_EQ(st.path(Path::kRed), 5000u);
}

TEST_F(AllocPathTest, BrownPathAllocatesNothing) {
  if (!harness::alloc_counting_active()) {
    GTEST_SKIP() << "sanitizer build owns the allocator";
  }
  PipelineConfig cfg;
  cfg.packet_threshold_n = 1u << 30;  // never finalise: every packet brown
  cfg.idle_timeout_delta = 1e6;
  cfg.record_labels = false;
  const auto dm = model();
  Pipeline pipe(cfg, dm);
  SimStats st;
  double ts = 0.0;
  pipe.process(mk(ts += 0.001, 100, 7, 7000), st);  // slot claim
  const std::size_t before = harness::alloc_count();
  for (int i = 0; i < 5000; ++i) pipe.process(mk(ts += 0.0001, 100, 7, 7000), st);
  EXPECT_EQ(harness::alloc_count() - before, 0u);
  EXPECT_EQ(st.path(Path::kBrown), 5001u);
}

TEST_F(AllocPathTest, SteadyStateStaysAllocationFreeWithMetricsEnabled) {
  if (!harness::alloc_counting_active()) {
    GTEST_SKIP() << "sanitizer build owns the allocator";
  }
  // The observability layer (DESIGN.md §4d) registers instruments at
  // construction; per packet it is counter increments, a gauge store, and a
  // histogram bucket increment — the zero-allocation invariant must hold
  // with metrics on.
  obs::Registry metrics;
  PipelineConfig cfg;
  cfg.packet_threshold_n = 4;
  cfg.idle_timeout_delta = 1e6;
  cfg.record_labels = false;
  cfg.match_engine = MatchEngine::kCompiled;
  cfg.metrics = &metrics;
  const auto dm = model();
  Pipeline pipe(cfg, dm);
  SimStats st;
  double ts = 0.0;
  for (int i = 0; i < 4; ++i) pipe.process(mk(ts += 0.001, 100, 1, 1000), st);
  for (int i = 0; i < 4; ++i) pipe.process(mk(ts += 0.001, 1400, 2, 2000, true), st);
  pipe.process(mk(ts += 0.001, 100, 3, 3000), st);  // flush the pending install
  ASSERT_EQ(st.flows_classified, 2u);
  ASSERT_EQ(pipe.blacklist().size(), 1u);

  const std::size_t before = harness::alloc_count();
  for (int i = 0; i < 5000; ++i) {
    pipe.process(mk(ts += 0.0001, 100, 1, 1000), st);        // purple
    pipe.process(mk(ts += 0.0001, 1400, 2, 2000, true), st); // red
  }
  const std::size_t delta = harness::alloc_count() - before;
  EXPECT_EQ(delta, 0u) << "metrics-on steady state allocated " << delta << " times";

#if !defined(IGUARD_OBS_OFF)  // instruments compiled out: nothing to snapshot
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.scalars.at("pipeline.path.purple.packets"),
            static_cast<double>(st.path(Path::kPurple)));
  EXPECT_EQ(snap.scalars.at("pipeline.path.red.packets"),
            static_cast<double>(st.path(Path::kRed)));
#endif
}

TEST_F(AllocPathTest, SwapEnabledSteadyStateAllocatesNothing) {
  if (!harness::alloc_counting_active()) {
    GTEST_SKIP() << "sanitizer build owns the allocator";
  }
  // With the model-swap loop on, every packet additionally pins the current
  // ModelBundle through the hazard-slot protocol (core/model_swap.hpp). On
  // paths with no flow finalisation (purple/red/brown) no mirrors are
  // emitted and no publish is due, so the pin must be the only extra work —
  // two atomic ops, zero heap traffic.
  PipelineConfig cfg;
  cfg.packet_threshold_n = 4;
  cfg.idle_timeout_delta = 1e6;
  cfg.record_labels = false;
  cfg.match_engine = MatchEngine::kCompiled;
  cfg.swap.enabled = true;
  cfg.swap.drift.enabled = false;
  cfg.swap.publish_after_extensions = 0;  // no publishes during the probe
  cfg.swap.recent_capacity = 16;
  const auto dm = model();
  Pipeline pipe(cfg, dm);
  SimStats st;
  double ts = 0.0;
  for (int i = 0; i < 4; ++i) pipe.process(mk(ts += 0.001, 100, 1, 1000), st);
  for (int i = 0; i < 4; ++i) pipe.process(mk(ts += 0.001, 1400, 2, 2000, true), st);
  pipe.process(mk(ts += 0.001, 100, 3, 3000), st);
  ASSERT_EQ(st.flows_classified, 2u);

  const std::size_t before = harness::alloc_count();
  for (int i = 0; i < 5000; ++i) {
    pipe.process(mk(ts += 0.0001, 100, 1, 1000), st);        // purple
    pipe.process(mk(ts += 0.0001, 1400, 2, 2000, true), st); // red
  }
  const std::size_t delta = harness::alloc_count() - before;
  EXPECT_EQ(delta, 0u) << "swap-enabled steady state allocated " << delta << " times";
  ASSERT_NE(pipe.swap_loop(), nullptr);
  EXPECT_EQ(pipe.swap_loop()->handle().version(), 1u);
}

TEST_F(AllocPathTest, BatchedSteadyStateAllocatesNothing) {
  if (!harness::alloc_counting_active()) {
    GTEST_SKIP() << "sanitizer build owns the allocator";
  }
  // The batched path stages PL hints through member buffers sized on first
  // use; after one warm-up batch, process_batch must be as heap-silent as
  // the scalar loop — columnar quantisation, the batched whitelist vote,
  // and the per-packet state machine all run on preallocated storage.
  PipelineConfig cfg;
  cfg.packet_threshold_n = 4;
  cfg.idle_timeout_delta = 1e6;
  cfg.record_labels = false;
  cfg.match_engine = MatchEngine::kCompiled;
  cfg.batch_size = 32;
  const auto dm = model();
  Pipeline pipe(cfg, dm);
  SimStats st;
  double ts = 0.0;
  std::vector<traffic::Packet> batch;
  // Warm-up: classify a benign and a malicious flow, then run one batch so
  // the staging buffers grow to their steady-state size.
  for (int i = 0; i < 4; ++i) pipe.process(mk(ts += 0.001, 100, 1, 1000), st);
  for (int i = 0; i < 4; ++i) pipe.process(mk(ts += 0.001, 1400, 2, 2000, true), st);
  ASSERT_EQ(st.flows_classified, 2u);
  for (int i = 0; i < 32; ++i) {
    batch.push_back(mk(ts += 0.0001, 100, static_cast<std::uint32_t>(20 + i % 4),
                       static_cast<std::uint16_t>(5000 + i % 4)));
  }
  pipe.process_batch(batch, st);

  const std::size_t before = harness::alloc_count();
  for (int round = 0; round < 300; ++round) {
    for (int i = 0; i < 32; ++i) {
      // Brown traffic on warm sub-threshold flows plus red on the
      // blacklisted one: every batched steady-state path.
      batch[static_cast<std::size_t>(i)] =
          i % 8 == 7 ? mk(ts += 0.0001, 1400, 2, 2000, true)
                     : mk(ts += 0.0001, 100, static_cast<std::uint32_t>(20 + i % 4),
                          static_cast<std::uint16_t>(5000 + i % 4));
    }
    pipe.process_batch(batch, st);
  }
  const std::size_t delta = harness::alloc_count() - before;
  EXPECT_EQ(delta, 0u) << "batched steady state allocated " << delta << " times";
  EXPECT_GT(st.path(Path::kRed), 0u);
  EXPECT_GT(st.path(Path::kBrown), 0u);
}

TEST_F(AllocPathTest, ForestAndTableBatchKernelsAllocateNothing) {
  if (!harness::alloc_counting_active()) {
    GTEST_SKIP() << "sanitizer build owns the allocator";
  }
  // The compiled-forest score/vote kernels and the batched rule lookups are
  // the primitives under the batched pipeline; they must be allocation-free
  // on their own, not just as observed through process_batch.
  core::QuantizedTree qt;
  qt.nodes.resize(3);
  qt.nodes[0] = {0, 500, 1, 2, 0.0};
  qt.nodes[1] = {-1, 0, -1, -1, 0.0};
  qt.nodes[2] = {-1, 0, -1, -1, 1.0};
  ml::CompiledForest cf;
  for (int t = 0; t < 5; ++t) cf.add_tree(qt.nodes, qt.root);

  const std::size_t n = 128;
  std::vector<std::uint32_t> keys(n * 4);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<std::uint32_t>((i * 131) % 1000);
  }
  std::vector<double> scores(n);
  std::vector<std::int64_t> scores_q16(n);
  std::vector<int> votes(n);
  std::vector<std::uint8_t> any(n);
  const core::CompiledVoteWhitelist comp(fl_);

  std::vector<std::uint32_t> fl_keys(n * kSwitchFlFeatures, 1);
  std::vector<int> fl_votes(n);
  const std::size_t before = harness::alloc_count();
  for (int round = 0; round < 50; ++round) {
    cf.score_batch(keys, 4, scores);
    cf.score_batch_q16(keys, 4, scores_q16);
    cf.predict_majority_batch(keys, 4, votes);
    comp.tables[0].matches_any_batch(fl_keys, kSwitchFlFeatures, any);
    comp.classify_batch(fl_keys, kSwitchFlFeatures, fl_votes);
  }
  EXPECT_EQ(harness::alloc_count() - before, 0u);
}

TEST_F(AllocPathTest, DaemonDrainIsAllocationFreeOnceWarm) {
  if (!harness::alloc_counting_active()) {
    GTEST_SKIP() << "sanitizer build owns the allocator";
  }
  // The serving daemon's consumer packet path (ring pop -> shard_of ->
  // Pipeline::process -> alert cadence check) extends the zero-allocation
  // invariant to the daemon loop: once the first replay pass has warmed
  // every flow, drain_some() must be heap-silent. The producer side is
  // allowed to allocate per *batch* (reader results), never per packet, so
  // the probe brackets only the drain calls.
  traffic::Trace t;
  double ts = 0.0;
  for (int i = 0; i < 8; ++i) {
    for (int f = 0; f < 8; ++f) {
      const bool mal = f % 3 == 0;
      t.packets.push_back(mk(ts += 0.0005, mal ? 1400 : 100,
                             static_cast<std::uint32_t>(10 + f),
                             static_cast<std::uint16_t>(1000 + f), mal));
    }
  }
  const std::string path = ::testing::TempDir() + "alloc_daemon_trace.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << io::trace_to_csv(t);
  }

  daemon::DaemonConfig cfg;
  cfg.source.path = path;
  cfg.source.loops = 2;
  cfg.ring_capacity = 4096;  // holds a full pass: pump never drains inline
  cfg.pipeline.packet_threshold_n = 4;
  cfg.pipeline.idle_timeout_delta = 1e9;
  daemon::Daemon d(cfg, model());

  // Pass 1 (uncounted): every flow classifies — benign to purple, the
  // malicious ones through blacklist installs to red.
  while (d.stats().loops_completed < 1) {
    d.pump_once();
    d.drain_some(static_cast<std::size_t>(-1));
  }

  // Pass 2: the same flows replayed warm; only the drains are counted.
  std::size_t counted = 0, allocs = 0;
  for (;;) {
    const daemon::Daemon::PumpStatus st = d.pump_once();
    const std::size_t before = harness::alloc_count();
    counted += d.drain_some(static_cast<std::size_t>(-1));
    allocs += harness::alloc_count() - before;
    if (st == daemon::Daemon::PumpStatus::kDone) break;
  }
  EXPECT_GT(counted, 0u);
  EXPECT_EQ(allocs, 0u) << "daemon drain allocated " << allocs << " times";

  d.finalize();
  EXPECT_EQ(daemon::audit_daemon_conservation(d.stats()), "");
  std::remove(path.c_str());
}

TEST_F(AllocPathTest, RecordLabelsOnIsTheOnlySteadyStateAllocator) {
  if (!harness::alloc_counting_active()) {
    GTEST_SKIP() << "sanitizer build owns the allocator";
  }
  // Sanity check on the probe itself: with record_labels on, the pred/truth
  // vectors grow and allocations do happen (amortised doubling).
  PipelineConfig cfg;
  cfg.packet_threshold_n = 1u << 30;
  cfg.record_labels = true;
  Pipeline pipe(cfg, model());
  SimStats st;
  double ts = 0.0;
  const std::size_t before = harness::alloc_count();
  for (int i = 0; i < 5000; ++i) pipe.process(mk(ts += 0.0001, 100, 9, 9000), st);
  EXPECT_GT(harness::alloc_count() - before, 0u);
}

}  // namespace
}  // namespace iguard::switchsim
