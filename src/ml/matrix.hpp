// Dense row-major matrix used as the universal dataset / parameter container
// throughout the library. Deliberately minimal: the models in this repo work
// on at most a few tens of features and a few hundred thousand rows, so a
// cache-friendly contiguous buffer plus a handful of BLAS-1/2 style kernels
// is all that is needed (no external BLAS dependency).
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <vector>

namespace iguard::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init) {
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& r : init) {
      if (r.size() != cols_) throw std::invalid_argument("ragged initializer");
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<double> flat() { return data_; }
  std::span<const double> flat() const { return data_; }

  /// Append one row (must match cols(), or set cols on first append).
  void push_row(std::span<const double> v) {
    if (rows_ == 0 && cols_ == 0) cols_ = v.size();
    if (v.size() != cols_) throw std::invalid_argument("row width mismatch");
    data_.insert(data_.end(), v.begin(), v.end());
    ++rows_;
  }

  /// Copy of the selected rows, in the given order.
  Matrix gather(std::span<const std::size_t> idx) const {
    Matrix out(idx.size(), cols_);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      auto src = row(idx[i]);
      std::copy(src.begin(), src.end(), out.row(i).begin());
    }
    return out;
  }

  void clear() {
    rows_ = 0;
    cols_ = 0;
    data_.clear();
  }

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- small vector kernels ---------------------------------------------------

/// dst += a * x  (axpy)
inline void axpy(double a, std::span<const double> x, std::span<double> dst) {
  assert(x.size() == dst.size());
  for (std::size_t i = 0; i < x.size(); ++i) dst[i] += a * x[i];
}

inline double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// Squared Euclidean distance.
inline double sq_dist(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace iguard::ml
