// RMT (Tofino-1-style) resource model. Capacities follow the publicly
// documented ballpark of a Tofino-1 pipe: 12 match-action stages; per stage
// 24 TCAM blocks of 512 x 44 bit entries, 80 SRAM blocks of 1024 x 128 bit
// words, 4 stateful ALUs, and 32 VLIW action-instruction slots. The model
// charges a deployed iGuard/iForest program for:
//   * TCAM  — whitelist rules after range->ternary expansion, at the key
//             width the rule set needs (wide keys consume multiple blocks);
//   * SRAM  — stateful flow storage (double hash tables), exact-match
//             blacklist entries, and table overheads;
//   * sALU  — one per register the per-packet path updates;
//   * VLIW  — action instruction slots of the pipeline's tables;
//   * stages — the dependency chain length of the Fig. 4 pipeline.
// This reproduces the *comparison* of the paper's Table 1 (iGuard's extra
// stopping criterion => fewer/coarser leaves => fewer TCAM entries), not
// the authors' exact compiler output.
#pragma once

#include <cstddef>

#include "core/whitelist.hpp"
#include "rules/range_rule.hpp"

namespace iguard::switchsim {

struct TofinoBudget {
  std::size_t stages = 12;
  std::size_t tcam_blocks_per_stage = 24;   // 512 entries x 44 bits each
  std::size_t tcam_entries_per_block = 512;
  std::size_t tcam_bits_per_entry = 44;
  std::size_t sram_blocks_per_stage = 80;   // 1024 words x 128 bits each
  std::size_t sram_words_per_block = 1024;
  std::size_t sram_bits_per_word = 128;
  std::size_t salus_per_stage = 4;
  std::size_t vliw_slots_per_stage = 32;

  double tcam_bits_total() const {
    return static_cast<double>(stages * tcam_blocks_per_stage * tcam_entries_per_block *
                               tcam_bits_per_entry);
  }
  double sram_bits_total() const {
    return static_cast<double>(stages * sram_blocks_per_stage * sram_words_per_block *
                               sram_bits_per_word);
  }
  double salus_total() const { return static_cast<double>(stages * salus_per_stage); }
  double vliw_total() const { return static_cast<double>(stages * vliw_slots_per_stage); }
};

/// What a compiled deployment asks of the switch.
struct DeploymentSpec {
  // Whitelist vote-table sets (one rule table per tree) and field widths.
  const core::VoteWhitelist* fl_rules = nullptr;
  unsigned fl_field_bits = 16;
  const core::VoteWhitelist* pl_rules = nullptr;
  unsigned pl_field_bits = 16;
  // Stateful storage sizing.
  std::size_t flow_slots = 4096;        // per hash table; two tables total
  std::size_t blacklist_capacity = 4096;
  // Per-packet register updates (sALUs) of the Fig. 4 pipeline, after
  // pairing 32-bit quantities into 64-bit registers the way a P4 compiler
  // would: flow signature; pkt-count+label; total size; sum-sq size;
  // min/max size; first+last timestamp; sum IPD; sum-sq IPD; min/max IPD.
  std::size_t stateful_registers = 9;
  // Action slots: parser/forward/drop/mirror/digest plus per-table actions.
  std::size_t vliw_slots = 30;
  std::size_t pipeline_stages = 12;
};

struct ResourceUsage {
  double tcam_frac = 0.0;
  double sram_frac = 0.0;
  double salu_frac = 0.0;
  double vliw_frac = 0.0;
  std::size_t stages = 0;
  std::size_t tcam_entries = 0;   // expanded entry count (diagnostics)
  double sram_bits = 0.0;

  /// Scalar memory-footprint measure rho of §4.2.1 (mean of the fractions).
  double rho() const { return (tcam_frac + sram_frac + salu_frac + vliw_frac) / 4.0; }
};

ResourceUsage estimate_resources(const DeploymentSpec& spec, const TofinoBudget& budget = {});

}  // namespace iguard::switchsim
