// Flat structure-of-arrays forest kernel — the AOT-compiled evaluation form
// of a quantised tree ensemble (ROADMAP item 2; the C++ equivalent of the
// AESS-challenge Q15 iForest export). A pointer-chasing tree walk touches a
// scattered ~48-byte node per level; the compiled form keeps each tree's
// nodes in level order across four parallel arrays — int16 feature index,
// uint32 quantised threshold, two int32 *relative* child offsets, and a leaf
// payload (double plus a Q16.16 fixed-point copy for integer-only kernels) —
// so a descent is `i += child[2i + (key[f] >= thr)]` with every hot field in
// a dense, prefetch-friendly stripe and no virtual dispatch anywhere.
//
// Trees are added from any quantised node type (core::QuantizedTree is the
// canonical source; see core/forest_compile.hpp for the front-ends), and the
// flattened walk visits exactly the same leaves: payload_at() is bit-exact
// with the source tree's scalar walk, which is what the compiled-forest
// property suite asserts. Batched entry points (score_batch and friends)
// evaluate N keys per call with a tree-major loop so the node arrays stay
// cache-resident across the whole batch.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace iguard::ml {

/// Q16.16 fixed-point encoding used by the integer-only kernels. Rounds to
/// nearest; |v| must fit 15 integer bits (forest path lengths and 0/1 vote
/// labels do, with room to spare).
inline std::int32_t to_q16(double v) {
  return static_cast<std::int32_t>(v * 65536.0 + (v >= 0 ? 0.5 : -0.5));
}
inline double from_q16(std::int32_t q) { return static_cast<double>(q) / 65536.0; }

class CompiledForest {
 public:
  /// Widest key the batched kernels accept (FL = 13, PL = 4).
  static constexpr std::size_t kMaxFields = 64;

  CompiledForest() = default;

  /// Flatten one source tree into the SoA arrays (level-order). NodeT needs
  /// members `feature` (< 0 marks a leaf), `level` (quantised split
  /// threshold; go left iff key[feature] < level), `left`/`right` (child
  /// indexes into `nodes`) and `payload` (leaf score/label). The walk over
  /// the flattened copy visits the same leaf as the source walk for every
  /// key, so payloads — and any aggregate over them — are bit-identical.
  template <class NodeT>
  void add_tree(const std::vector<NodeT>& nodes, int root) {
    if (nodes.empty()) throw std::invalid_argument("CompiledForest: empty tree");
    tree_root_.push_back(static_cast<std::uint32_t>(feature_.size()));
    // Level-order (BFS) emission: children always land after their parent,
    // so both child offsets are positive and bounded by the tree size.
    std::vector<int> order;           // source index, in emission order
    std::vector<std::int32_t> slot(nodes.size(), -1);  // source -> flat slot
    order.push_back(root);
    slot[static_cast<std::size_t>(root)] =
        static_cast<std::int32_t>(feature_.size());
    for (std::size_t head = 0; head < order.size(); ++head) {
      const NodeT& n = nodes[static_cast<std::size_t>(order[head])];
      if (n.feature >= 0) {
        for (const int c : {n.left, n.right}) {
          // The child's flat slot is wherever the BFS queue will emit it:
          // base (nodes already flattened from earlier trees) + queue length.
          slot[static_cast<std::size_t>(c)] =
              static_cast<std::int32_t>(feature_.size() + order.size());
          order.push_back(c);
        }
      }
    }
    // Second pass: emit in BFS order, recording relative child offsets.
    for (std::size_t k = 0; k < order.size(); ++k) {
      const NodeT& n = nodes[static_cast<std::size_t>(order[k])];
      const std::int32_t self = slot[static_cast<std::size_t>(order[k])];
      if (n.feature >= 0) {
        if (n.feature > 0x7FFF) throw std::invalid_argument("CompiledForest: feature > int16");
        feature_.push_back(static_cast<std::int16_t>(n.feature));
        threshold_.push_back(n.level);
        child_.push_back(slot[static_cast<std::size_t>(n.left)] - self);
        child_.push_back(slot[static_cast<std::size_t>(n.right)] - self);
        payload_.push_back(0.0);
        payload_q16_.push_back(0);
      } else {
        feature_.push_back(-1);
        threshold_.push_back(0);
        child_.push_back(0);
        child_.push_back(0);
        payload_.push_back(n.payload);
        payload_q16_.push_back(to_q16(n.payload));
      }
    }
  }

  std::size_t tree_count() const { return tree_root_.size(); }
  std::size_t node_count() const { return feature_.size(); }
  bool empty() const { return tree_root_.empty(); }

  /// Scalar walk of one tree: the flattened twin of QuantizedTree's
  /// payload_at (bit-exact — same leaf, same stored double). No allocation.
  double payload_at(std::size_t tree, std::span<const std::uint32_t> key) const {
    return payload_[walk(tree_root_[tree], key)];
  }

  /// Sum of payload_at over all trees, accumulated in tree order (matches a
  /// scalar loop over the source trees exactly). No allocation.
  double payload_sum(std::span<const std::uint32_t> key) const {
    double acc = 0.0;
    for (const std::uint32_t r : tree_root_) acc += payload_[walk(r, key)];
    return acc;
  }

  /// Integer-only twin of payload_sum: Q16.16 leaf payloads summed in
  /// int64. Deterministic (each leaf's Q16 value is fixed at compile time)
  /// and exactly equal between scalar and batched evaluation.
  std::int64_t payload_sum_q16(std::span<const std::uint32_t> key) const {
    std::int64_t acc = 0;
    for (const std::uint32_t r : tree_root_) acc += payload_q16_[walk(r, key)];
    return acc;
  }

  /// Strict-majority vote for distilled forests (payloads are 0/1 leaf
  /// labels): 1 = malicious iff 2 * sum > tree_count. Matches the guided
  /// forest's vote at every quantised point by construction.
  int predict_majority(std::span<const std::uint32_t> key) const {
    return 2 * payload_sum_q16(key) >
                   static_cast<std::int64_t>(tree_count()) * 65536
               ? 1
               : 0;
  }

  /// Batched scoring: `keys` holds n row-major quantised keys of `width`
  /// fields; out[i] = payload_sum(key_i). Tree-major inner loop: one tree's
  /// node stripe services the entire batch before the next tree is touched.
  /// Bit-exact with n scalar payload_sum calls; no allocation.
  void score_batch(std::span<const std::uint32_t> keys, std::size_t width,
                   std::span<double> out) const;

  /// Integer-only batched scoring (Q16.16 sums). Bit-exact with scalar
  /// payload_sum_q16; no allocation.
  void score_batch_q16(std::span<const std::uint32_t> keys, std::size_t width,
                       std::span<std::int64_t> out) const;

  /// Batched majority vote (distilled forests): out[i] =
  /// predict_majority(key_i). No allocation.
  void predict_majority_batch(std::span<const std::uint32_t> keys, std::size_t width,
                              std::span<int> out) const;

  // Raw SoA access (tests assert the layout invariants; P4 emission and
  // resource accounting can size register arrays from these).
  std::span<const std::int16_t> features() const { return feature_; }
  std::span<const std::uint32_t> thresholds() const { return threshold_; }
  std::span<const std::int32_t> children() const { return child_; }
  std::span<const double> payloads() const { return payload_; }
  std::span<const std::int32_t> payloads_q16() const { return payload_q16_; }
  std::span<const std::uint32_t> roots() const { return tree_root_; }

 private:
  /// Branch-light iterative descent: two loads and an add per level, no
  /// pointer chasing. Returns the leaf's flat node index.
  std::size_t walk(std::uint32_t root, std::span<const std::uint32_t> key) const {
    std::size_t i = root;
    std::int16_t f = feature_[i];
    while (f >= 0) {
      const std::size_t go_right =
          key[static_cast<std::size_t>(f)] >= threshold_[i] ? 1u : 0u;
      i += static_cast<std::size_t>(child_[2 * i + go_right]);
      f = feature_[i];
    }
    return i;
  }

  // One entry per node, all trees concatenated, level-order per tree.
  std::vector<std::int16_t> feature_;     // -1 = leaf
  std::vector<std::uint32_t> threshold_;  // quantised split level
  std::vector<std::int32_t> child_;       // 2 per node: relative offsets
  std::vector<double> payload_;           // leaf score/label (0 on splits)
  std::vector<std::int32_t> payload_q16_; // Q16.16 copy for integer kernels
  std::vector<std::uint32_t> tree_root_;  // flat index of each tree's root
};

}  // namespace iguard::ml
