#include "harness/cpu_lab.hpp"

#include <algorithm>
#include <stdexcept>

#include "eval/protocol.hpp"
#include "ml/parallel.hpp"
#include "trafficgen/benign.hpp"

namespace iguard::harness {

namespace {

/// Score every row of x with `det`, fanning out across a pool when the
/// detector's scoring path is race-free (the AE/iForest baselines are; the
/// others keep per-call scratch and run sequentially).
std::vector<double> score_rows(ml::AnomalyDetector& det, const ml::Matrix& x,
                               std::size_t num_threads) {
  std::vector<double> s(x.rows());
  if (det.thread_safe_score() && num_threads != 1) {
    ml::ThreadPool pool(ml::resolve_threads(num_threads));
    pool.parallel_for(x.rows(), [&](std::size_t i) { s[i] = det.score(x.row(i)); });
  } else {
    for (std::size_t i = 0; i < x.rows(); ++i) s[i] = det.score(x.row(i));
  }
  return s;
}

}  // namespace

CpuLab::CpuLab(CpuLabConfig cfg) : cfg_(std::move(cfg)), rng_(cfg_.seed) {
  traffic::BenignConfig bcfg;
  bcfg.flows = cfg_.benign_flows;
  const traffic::Trace benign = traffic::benign_trace(bcfg, rng_);

  features::ExtractorConfig fcfg;
  fcfg.set = cfg_.feature_set;
  const auto ds = features::extract_flows(benign, fcfg);

  // Benign-only split: train / val / test (fixed for every attack).
  auto idx = rng_.sample_without_replacement(ds.x.rows(), ds.x.rows());
  const std::size_t n_test =
      static_cast<std::size_t>(cfg_.benign_test_fraction * static_cast<double>(ds.x.rows()));
  const std::size_t n_rest = ds.x.rows() - n_test;
  const std::size_t n_val =
      static_cast<std::size_t>(cfg_.val_fraction * static_cast<double>(n_rest));
  const std::size_t n_train = n_rest - n_val;
  train_x_ = ds.x.gather({idx.data(), n_train});
  val_benign_ = ds.x.gather({idx.data() + n_train, n_val});
  test_benign_ = ds.x.gather({idx.data() + n_train + n_val, n_test});

  // Benign-only models, shared across attacks.
  teacher_.fit(train_x_, cfg_.teacher, rng_);
  iforest_ = ml::IsolationForest(cfg_.iforest);
  iforest_.fit(train_x_, rng_);
}

ml::Matrix CpuLab::attack_features(traffic::AttackType type) const {
  traffic::AttackConfig acfg;
  acfg.flows = cfg_.attack_flows;
  // Derive a per-attack deterministic seed so every attack's traffic is
  // reproducible independent of call order.
  ml::Rng arng(cfg_.seed ^ (0x9E37u + 131u * static_cast<std::uint64_t>(type)));
  const traffic::Trace t = traffic::attack_trace(type, acfg, arng);
  features::ExtractorConfig fcfg;
  fcfg.set = cfg_.feature_set;
  return features::extract_flows(t, fcfg).x;
}

AttackSplit CpuLab::make_attack_split(traffic::AttackType type) const {
  return make_attack_split(type, attack_features(type));
}

AttackSplit CpuLab::make_attack_split(traffic::AttackType type,
                                      const ml::Matrix& attack_rows) const {
  AttackSplit s;
  s.type = type;
  s.val_x = val_benign_;
  s.test_x = test_benign_;
  s.val_y.assign(val_benign_.rows(), 0);
  s.test_y.assign(test_benign_.rows(), 0);

  const double f = cfg_.attack_fraction;
  auto count_for = [f](std::size_t base) {
    return static_cast<std::size_t>(f / (1.0 - f) * static_cast<double>(base));
  };
  std::size_t a_val = count_for(val_benign_.rows());
  std::size_t a_test = count_for(test_benign_.rows());
  ml::Rng arng(cfg_.seed ^ (0x51C6u + 977u * static_cast<std::uint64_t>(type)));
  auto aidx = arng.sample_without_replacement(attack_rows.rows(), attack_rows.rows());
  if (a_val + a_test > aidx.size()) {
    const double scale =
        static_cast<double>(aidx.size()) / static_cast<double>(a_val + a_test);
    a_val = static_cast<std::size_t>(static_cast<double>(a_val) * scale);
    a_test = aidx.size() - a_val;
  }
  for (std::size_t i = 0; i < a_val; ++i) {
    s.val_x.push_row(attack_rows.row(aidx[i]));
    s.val_y.push_back(1);
  }
  for (std::size_t i = 0; i < a_test; ++i) {
    s.test_x.push_row(attack_rows.row(aidx[a_val + i]));
    s.test_y.push_back(1);
  }
  return s;
}

eval::DetectionMetrics CpuLab::evaluate_detector(ml::AnomalyDetector& det,
                                                 const AttackSplit& split) const {
  const std::size_t nt = cfg_.forest.num_threads;
  const auto val_scores = score_rows(det, split.val_x, nt);
  det.set_threshold(eval::best_f1_threshold(split.val_y, val_scores));

  const auto scores = score_rows(det, split.test_x, nt);
  std::vector<int> pred(split.test_x.rows());
  for (std::size_t i = 0; i < split.test_x.rows(); ++i) {
    pred[i] = scores[i] > det.threshold() ? 1 : 0;
  }
  return eval::evaluate(split.test_y, pred, scores);
}

std::vector<double> CpuLab::calibrate_teacher(const AttackSplit& split) const {
  // One batched (parallel) scoring pass over validation; per-member
  // thresholds come from columns of the error matrix.
  const ml::Matrix errs =
      teacher_.reconstruction_errors(split.val_x, cfg_.forest.num_threads);
  std::vector<double> base(teacher_.size());
  std::vector<double> s(split.val_x.rows());
  for (std::size_t u = 0; u < teacher_.size(); ++u) {
    for (std::size_t i = 0; i < errs.rows(); ++i) s[i] = errs(i, u);
    base[u] = eval::best_f1_threshold(split.val_y, s);
  }
  return base;
}

eval::DetectionMetrics CpuLab::evaluate_teacher(const AttackSplit& split,
                                                std::span<const double> base_t) const {
  for (std::size_t u = 0; u < teacher_.size(); ++u)
    teacher_.set_member_threshold(u, base_t[u]);
  const ml::Matrix errs =
      teacher_.reconstruction_errors(split.test_x, cfg_.forest.num_threads);
  std::vector<double> scores(split.test_x.rows());
  std::vector<int> pred(split.test_x.rows());
  for (std::size_t i = 0; i < split.test_x.rows(); ++i) {
    scores[i] = errs(i, 0);
    pred[i] = teacher_.vote_from_errors(errs.row(i));
  }
  return eval::evaluate(split.test_y, pred, scores);
}

IGuardOutcome CpuLab::train_iguard(const AttackSplit& split,
                                   std::span<const double> base_t) const {
  IGuardOutcome out;
  core::IGuardConfig gcfg;
  gcfg.teacher = cfg_.teacher;
  gcfg.forest = cfg_.forest;

  double best_val = -1.0;
  for (double scale : cfg_.scale_grid) {
    for (std::size_t u = 0; u < teacher_.size(); ++u)
      teacher_.set_member_threshold(u, base_t[u] * scale);
    auto cand = std::make_unique<core::IGuard>(gcfg);
    ml::Rng crng(cfg_.seed ^ 0x16A11u ^ static_cast<std::uint64_t>(scale * 1000.0));
    cand->fit_with_teacher(train_x_, ml::Matrix{}, teacher_, crng);
    std::vector<int> vp(split.val_x.rows());
    {
      ml::ThreadPool pool(ml::resolve_threads(cfg_.forest.num_threads));
      pool.parallel_for(split.val_x.rows(), [&](std::size_t i) {
        vp[i] = cand->predict_flow_model(split.val_x.row(i));
      });
    }
    const double f1 = eval::macro_f1(split.val_y, vp);
    if (f1 > best_val) {
      best_val = f1;
      out.scale = scale;
      out.guard = std::move(cand);
    }
  }
  // Restore calibrated thresholds on the shared teacher.
  for (std::size_t u = 0; u < teacher_.size(); ++u)
    teacher_.set_member_threshold(u, base_t[u]);

  // Test metrics: model (soft = vote fraction) and deployed rules. Tree
  // votes and rule-table matches are pure reads, so rows score in parallel.
  std::vector<double> sc(split.test_x.rows());
  std::vector<int> pm(split.test_x.rows()), pr(split.test_x.rows());
  {
    ml::ThreadPool pool(ml::resolve_threads(cfg_.forest.num_threads));
    pool.parallel_for(split.test_x.rows(), [&](std::size_t i) {
      sc[i] = out.guard->vote_fraction(split.test_x.row(i));
      pm[i] = out.guard->predict_flow_model(split.test_x.row(i));
      pr[i] = out.guard->predict_flow(split.test_x.row(i));
    });
  }
  out.model = eval::evaluate(split.test_y, pm, sc);
  std::vector<double> rs(pr.begin(), pr.end());
  out.rules = eval::evaluate(split.test_y, pr, rs);
  out.consistency = out.guard->consistency(split.test_x);
  return out;
}

}  // namespace iguard::harness
