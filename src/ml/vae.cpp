#include "ml/vae.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace iguard::ml {

void Vae::fit(const Matrix& benign, Rng& rng) {
  if (benign.rows() == 0) throw std::invalid_argument("Vae::fit: empty data");
  const std::size_t m = benign.cols();
  const std::size_t L = cfg_.latent;
  Matrix z = scaler_.fit_transform(benign);

  {
    std::vector<std::size_t> dims{m};
    std::vector<Activation> acts;
    for (std::size_t h : cfg_.encoder_hidden) {
      dims.push_back(h);
      acts.push_back(Activation::kRelu);
    }
    dims.push_back(2 * L);
    acts.push_back(Activation::kLinear);
    encoder_ = Mlp(dims, acts, rng);
  }
  {
    std::vector<std::size_t> dims{L};
    std::vector<Activation> acts;
    for (std::size_t h : cfg_.decoder_hidden) {
      dims.push_back(h);
      acts.push_back(Activation::kRelu);
    }
    dims.push_back(m);
    acts.push_back(Activation::kLinear);
    decoder_ = Mlp(dims, acts, rng);
  }

  std::vector<std::size_t> order(z.rows());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> lat(L), eps(L), dy(m), dz, dlat(2 * L), dx;

  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng.shuffle(std::span<std::size_t>(order));
    double total = 0.0;
    for (std::size_t start = 0; start < order.size(); start += cfg_.batch_size) {
      const std::size_t len = std::min(cfg_.batch_size, order.size() - start);
      for (std::size_t b = 0; b < len; ++b) {
        auto x = z.row(order[start + b]);
        const auto& enc = encoder_.forward(x);  // [mu | logvar]
        for (std::size_t j = 0; j < L; ++j) {
          eps[j] = rng.normal();
          const double logvar = std::clamp(enc[L + j], -8.0, 8.0);
          lat[j] = enc[j] + std::exp(0.5 * logvar) * eps[j];
        }
        const auto& y = decoder_.forward(lat);

        double recon = 0.0;
        for (std::size_t j = 0; j < m; ++j) {
          const double e = y[j] - x[j];
          recon += e * e;
          dy[j] = 2.0 * e / static_cast<double>(m);
        }
        recon /= static_cast<double>(m);
        double kl = 0.0;
        for (std::size_t j = 0; j < L; ++j) {
          const double logvar = std::clamp(enc[L + j], -8.0, 8.0);
          kl += -0.5 * (1.0 + logvar - enc[j] * enc[j] - std::exp(logvar));
        }
        total += recon + cfg_.beta * kl;

        decoder_.backward(dy, dz);  // dz = dL/dz (latent)
        for (std::size_t j = 0; j < L; ++j) {
          const double logvar = std::clamp(enc[L + j], -8.0, 8.0);
          dlat[j] = dz[j] + cfg_.beta * enc[j];  // dmu
          dlat[L + j] = dz[j] * eps[j] * 0.5 * std::exp(0.5 * logvar) +
                        cfg_.beta * 0.5 * (std::exp(logvar) - 1.0);  // dlogvar
        }
        encoder_.backward(dlat, dx);
      }
      decoder_.step(cfg_.learning_rate, len);
      encoder_.step(cfg_.learning_rate, len);
    }
    final_loss_ = total / static_cast<double>(z.rows());
  }

  std::vector<double> errors(benign.rows());
  for (std::size_t i = 0; i < benign.rows(); ++i) errors[i] = reconstruction_error(benign.row(i));
  std::sort(errors.begin(), errors.end());
  const std::size_t qi = std::min(
      errors.size() - 1,
      static_cast<std::size_t>(cfg_.threshold_quantile * static_cast<double>(errors.size())));
  threshold_ = errors[qi];
}

double Vae::reconstruction_error(std::span<const double> x) {
  if (!scaler_.fitted()) throw std::logic_error("Vae: not fitted");
  const std::size_t L = cfg_.latent;
  zin_.resize(x.size());
  scaler_.transform_row(x, zin_);
  const auto& enc = encoder_.forward(zin_);
  zlat_.assign(enc.begin(), enc.begin() + static_cast<std::ptrdiff_t>(L));
  const auto& y = decoder_.forward(zlat_);
  double s = 0.0;
  for (std::size_t j = 0; j < y.size(); ++j) {
    const double d = y[j] - zin_[j];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(y.size()));
}

}  // namespace iguard::ml
