file(REMOVE_RECURSE
  "CMakeFiles/iguard_ml.dir/autoencoder.cpp.o"
  "CMakeFiles/iguard_ml.dir/autoencoder.cpp.o.d"
  "CMakeFiles/iguard_ml.dir/iforest.cpp.o"
  "CMakeFiles/iguard_ml.dir/iforest.cpp.o.d"
  "CMakeFiles/iguard_ml.dir/knn.cpp.o"
  "CMakeFiles/iguard_ml.dir/knn.cpp.o.d"
  "CMakeFiles/iguard_ml.dir/nn.cpp.o"
  "CMakeFiles/iguard_ml.dir/nn.cpp.o.d"
  "CMakeFiles/iguard_ml.dir/pca.cpp.o"
  "CMakeFiles/iguard_ml.dir/pca.cpp.o.d"
  "CMakeFiles/iguard_ml.dir/scaler.cpp.o"
  "CMakeFiles/iguard_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/iguard_ml.dir/vae.cpp.o"
  "CMakeFiles/iguard_ml.dir/vae.cpp.o.d"
  "CMakeFiles/iguard_ml.dir/xmeans.cpp.o"
  "CMakeFiles/iguard_ml.dir/xmeans.cpp.o.d"
  "libiguard_ml.a"
  "libiguard_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iguard_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
