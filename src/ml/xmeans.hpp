// X-means anomaly detector (Fig. 10 candidate; cf. Feng et al. 2022 which
// pairs X-means with iForest). X-means (Pelleg & Moore, 2000) runs k-means
// and recursively splits clusters while the Bayesian Information Criterion
// improves, learning k automatically. Anomaly score of x = Euclidean
// distance to the nearest learned centroid divided by that cluster's RMS
// radius, so tight and loose clusters are comparable.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/detector.hpp"
#include "ml/scaler.hpp"

namespace iguard::ml {

/// Plain Lloyd k-means with k-means++ seeding (exposed for tests).
struct KMeansResult {
  Matrix centroids;                  // k x m
  std::vector<std::size_t> assign;   // n
  double inertia = 0.0;              // sum of squared distances
};
KMeansResult kmeans(const Matrix& x, std::size_t k, Rng& rng, std::size_t max_iter = 50);

/// BIC of a spherical-Gaussian mixture fit (Pelleg & Moore formulation).
double kmeans_bic(const Matrix& x, const KMeansResult& fit);

struct XMeansConfig {
  std::size_t k_min = 2;
  std::size_t k_max = 16;
  double threshold_quantile = 0.98;
};

class XMeans : public AnomalyDetector {
 public:
  explicit XMeans(XMeansConfig cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& benign, Rng& rng) override;
  double score(std::span<const double> x) override;
  double threshold() const override { return threshold_; }
  void set_threshold(double t) override { threshold_ = t; }
  std::string name() const override { return "xmeans"; }

  std::size_t cluster_count() const { return centroids_.rows(); }

 private:
  XMeansConfig cfg_;
  StandardScaler scaler_;
  Matrix centroids_;
  std::vector<double> radius_;  // RMS distance of members to their centroid
  double threshold_ = 0.0;
  std::vector<double> z_;
};

}  // namespace iguard::ml
