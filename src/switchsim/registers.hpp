// Stateful flow storage: two register tables indexed by two independent
// hashes of the bidirectional flow signature (HorusEye's bi-hash + double
// hash table scheme, §3.3.1). A flow lives in whichever table had a free or
// matching slot first; when both candidate slots are occupied by other
// flows the access reports a collision and the pipeline takes the orange
// path of Fig. 4.
#pragma once

#include <cstddef>
#include <vector>

#include "switchsim/flow_state.hpp"
#include "trafficgen/packet.hpp"

namespace iguard::switchsim {

class FlowStore {
 public:
  explicit FlowStore(std::size_t slots_per_table, std::uint64_t seed = 0x5117c4);

  struct Access {
    IntFlowState* state = nullptr;  // resident slot (matching, fresh, or the
                                    // colliding occupant, by case)
    bool found = false;             // slot already held this flow
    bool inserted = false;          // empty slot claimed for this flow
    bool collision = false;         // both candidate slots occupied by others
  };

  /// Look up (or claim a slot for) the flow with the given 5-tuple.
  Access access(const traffic::FiveTuple& ft);

  /// Read-only lookup (no slot claiming): the resident state for this flow,
  /// or nullptr if it is not tracked.
  const IntFlowState* find(const traffic::FiveTuple& ft) const;

  /// Signature used for slot ownership checks.
  std::uint64_t signature(const traffic::FiveTuple& ft) const;

  void clear_slot(IntFlowState& st) { st = IntFlowState{}; }

  /// Visit every occupied slot (table 1 then table 2, slot order) — the
  /// register sweep a restarted controller performs to rebuild its view.
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& s : table1_)
      if (!s.empty()) f(s);
    for (const auto& s : table2_)
      if (!s.empty()) f(s);
  }

  std::size_t slots_per_table() const { return table1_.size(); }
  std::size_t occupied() const;

 private:
  std::vector<IntFlowState> table1_, table2_;
  std::uint64_t seed1_, seed2_, sig_seed_;
};

}  // namespace iguard::switchsim
