// Timing and throughput model (App. B.1). Latency of an RMT pipeline is the
// stage count times the per-stage traversal time; throughput depends on the
// architecture: iGuard decides entirely in the data plane (full line rate
// minus the small mirror/digest overhead), while control-plane-assisted
// designs (HorusEye-style) must detour suspicious traffic through a
// CPU-bound detector, capping that share at the control path's capacity.
#pragma once

#include <cstddef>

namespace iguard::switchsim {

struct TimingConfig {
  double per_stage_ns = 44.4;        // Tofino-1 ballpark stage traversal
  std::size_t stages = 12;
  double line_rate_gbps = 40.0;      // the testbed's 40 Gbps link
  double control_plane_gbps = 3.8;   // CPU-side detection capacity
};

/// End-to-end pipeline latency for one packet, nanoseconds.
double pipeline_latency_ns(const TimingConfig& cfg);

struct ThroughputReport {
  double gbps = 0.0;
  double detour_fraction = 0.0;  // share of traffic leaving the fast path
};

/// iGuard: everything decided at line rate; only truncated mirrors/digests
/// leave the data plane (`mirror_byte_fraction` of offered load).
ThroughputReport all_dataplane_throughput(const TimingConfig& cfg,
                                          double mirror_byte_fraction);

/// HorusEye-style: `suspicious_byte_fraction` of offered load needs the
/// control-plane autoencoder; that share is capped by control_plane_gbps.
ThroughputReport control_assisted_throughput(const TimingConfig& cfg,
                                             double suspicious_byte_fraction);

}  // namespace iguard::switchsim
