// AOT model compilation front-ends (DESIGN.md §4h): lower the offline-side
// models — the distilled guided forest, the PL conventional iForest, and the
// AE ensemble's decision thresholds — into the flat integer-only artifacts
// of ml/compiled_forest.hpp. Lowering goes through the existing
// quantize_tree machinery (core/whitelist.hpp), so a compiled forest agrees
// with the quantised reference trees at every quantised point: the guided
// forest's benign-leaf support boxes arrive already encoded as guard-split
// chains, and the conventional iForest's leaves carry depth + c(size)
// payloads. Compilation is a control-plane operation; the resulting
// CompiledForest is immutable and rides inside core::ModelBundle so it
// versions and hitless-swaps with the rest of the deployed artifacts.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ae_ensemble.hpp"
#include "core/guided_iforest.hpp"
#include "core/whitelist.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/iforest.hpp"
#include "rules/quantize.hpp"

namespace iguard::core {

/// Flatten already-quantised trees (the common back half of the two
/// model-specific front-ends below).
ml::CompiledForest compile_forest(const std::vector<QuantizedTree>& trees);

/// Distilled guided forest -> flat vote kernel. Leaf payloads are the 0/1
/// distilled labels with the benign support boxes lowered to guard splits,
/// so predict_majority matches the forest's whitelist-semantics vote at
/// every quantised point.
ml::CompiledForest compile_forest(const GuidedIsolationForest& forest,
                                  const rules::Quantizer& q);

/// Conventional iForest (the PL model's early-packet detector) -> flat
/// path-length kernel. payload_sum(key) is the summed E[h] numerator; pair
/// it with path_threshold_from_score for classification.
ml::CompiledForest compile_forest(const ml::IsolationForest& forest,
                                  const rules::Quantizer& q);

/// AE ensemble decision thresholds T_u lowered to Q16.16 fixed point — the
/// integer constants a switch-resident comparator would hold. Index u
/// matches AeEnsemble::member_threshold(u).
std::vector<std::int32_t> quantize_ae_thresholds(const AeEnsemble& teacher);

}  // namespace iguard::core
