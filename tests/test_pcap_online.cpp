// Tests for the pcap I/O round trip and the online whitelist updater.
#include <gtest/gtest.h>

#include <sstream>

#include "core/online_update.hpp"
#include "trafficgen/attacks.hpp"
#include "trafficgen/benign.hpp"
#include "trafficgen/pcap_io.hpp"

namespace iguard {
namespace {

// --- pcap ---------------------------------------------------------------

TEST(PcapIo, RoundTripPreservesHeadersAndTiming) {
  ml::Rng rng(5);
  traffic::BenignConfig cfg;
  cfg.flows = 50;
  const auto original = traffic::benign_trace(cfg, rng);

  std::stringstream buf;
  traffic::write_pcap(buf, original);
  const auto parsed = traffic::read_pcap(buf);

  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto& a = original.packets[i];
    const auto& b = parsed.packets[i];
    EXPECT_EQ(b.ft, a.ft) << i;
    EXPECT_EQ(b.ttl, a.ttl) << i;
    // Tiny packets are padded up to the minimal header stack on the wire.
    EXPECT_EQ(b.length, std::max<std::uint16_t>(a.length, 28)) << i;
    EXPECT_NEAR(b.ts, a.ts, 2e-6) << i;  // microsecond container resolution
  }
}

TEST(PcapIo, RejectsBadMagic) {
  std::stringstream buf;
  buf.write("\x12\x34\x56\x78garbagegarbagegarbage", 28);
  EXPECT_THROW(traffic::read_pcap(buf), std::runtime_error);
}

TEST(PcapIo, FileRoundTrip) {
  ml::Rng rng(6);
  traffic::AttackConfig cfg;
  cfg.flows = 10;
  const auto t = traffic::attack_trace(traffic::AttackType::kMirai, cfg, rng);
  const std::string path = "/tmp/iguard_pcap_test.pcap";
  traffic::write_pcap_file(path, t);
  const auto parsed = traffic::read_pcap_file(path);
  EXPECT_EQ(parsed.size(), t.size());
  // pcap carries no ground truth.
  for (const auto& p : parsed.packets) EXPECT_FALSE(p.malicious);
}

TEST(PcapIo, MissingFileThrows) {
  EXPECT_THROW(traffic::read_pcap_file("/nonexistent/x.pcap"), std::runtime_error);
}

// --- online updater -------------------------------------------------------

core::VoteWhitelist make_whitelist() {
  core::VoteWhitelist wl;
  wl.tree_count = 3;
  // Three tables around the same region; table 2's box is narrower, so a
  // borderline benign key is majority-benign but misses table 2.
  for (std::uint32_t hi : {100u, 100u, 80u}) {
    wl.tables.emplace_back(std::vector<rules::RangeRule>{
        {std::vector<rules::FieldRange>{{10, hi}, {10, hi}}, 0, 0}});
  }
  return wl;
}

TEST(WhitelistUpdater, ExtendsOnlyMissingTables) {
  auto wl = make_whitelist();
  core::WhitelistUpdater upd(wl, {.max_extension_per_field = 15, .max_updates = 100});
  const std::uint32_t key[2] = {90, 90};  // inside tables 0/1, 10 outside table 2
  EXPECT_EQ(wl.classify(key), 0);         // already majority benign
  EXPECT_EQ(upd.observe_benign(key), 1u); // table 2 extended
  EXPECT_EQ(wl.tables[2].rules()[0].fields[0].hi, 90u);
  EXPECT_TRUE(wl.tables[2].match(key).has_value());
  EXPECT_EQ(upd.extensions_applied(), 1u);
}

TEST(WhitelistUpdater, BudgetBlocksLargeJumps) {
  auto wl = make_whitelist();
  core::WhitelistUpdater upd(wl, {.max_extension_per_field = 5, .max_updates = 100});
  const std::uint32_t key[2] = {90, 90};  // gap of 10 > budget 5 for table 2
  EXPECT_EQ(upd.observe_benign(key), 0u);
  EXPECT_EQ(wl.tables[2].rules()[0].fields[0].hi, 80u);  // untouched
}

TEST(WhitelistUpdater, FullyCoveredKeysCountedNotModified) {
  auto wl = make_whitelist();
  core::WhitelistUpdater upd(wl);
  const std::uint32_t key[2] = {50, 50};
  EXPECT_EQ(upd.observe_benign(key), 0u);
  EXPECT_EQ(upd.keys_fully_covered(), 1u);
  EXPECT_EQ(upd.keys_seen(), 1u);
}

TEST(WhitelistUpdater, MaxUpdatesIsRespected) {
  auto wl = make_whitelist();
  core::WhitelistUpdater upd(wl, {.max_extension_per_field = 1000, .max_updates = 1});
  const std::uint32_t k1[2] = {90, 90};
  const std::uint32_t k2[2] = {5, 5};
  EXPECT_EQ(upd.observe_benign(k1), 1u);  // uses the single allowed update
  const auto before = wl.tables[0].rules()[0];
  EXPECT_EQ(upd.observe_benign(k2), 0u);  // budget exhausted
  EXPECT_EQ(wl.tables[0].rules()[0].fields[0].lo, before.fields[0].lo);
}

TEST(WhitelistUpdater, BudgetExhaustionIsObservable) {
  // Operators must be able to see the safety valve closing: once
  // max_updates extensions have been applied, budget_exhausted() flips and
  // every further would-be extension is tallied, not silently swallowed.
  auto wl = make_whitelist();
  core::WhitelistUpdater upd(wl, {.max_extension_per_field = 1000, .max_updates = 1});
  EXPECT_FALSE(upd.budget_exhausted());
  EXPECT_EQ(upd.rejected_by_budget(), 0u);
  const std::uint32_t k1[2] = {90, 90};
  EXPECT_EQ(upd.observe_benign(k1), 1u);  // spends the whole budget
  EXPECT_TRUE(upd.budget_exhausted());
  const std::uint32_t k2[2] = {5, 5};  // misses all 3 tables
  EXPECT_EQ(upd.observe_benign(k2), 0u);
  EXPECT_EQ(upd.rejected_by_budget(), 3u);  // one refusal per missing table
  EXPECT_EQ(upd.observe_benign(k2), 0u);
  EXPECT_EQ(upd.rejected_by_budget(), 6u);  // keeps counting while frozen
  EXPECT_EQ(upd.extensions_applied(), 1u);
}

TEST(WhitelistUpdater, InadmissibleTablesAreNotCountedAsBudgetRejections) {
  // rejected_by_budget must mean "the budget valve alone refused this
  // extension". A table whose nearest rule is out of per-field reach would
  // never have been extended no matter the budget, so counting it would
  // overstate the drift signal the swap controller consumes.
  auto wl = make_whitelist();
  core::WhitelistUpdater upd(wl, {.max_extension_per_field = 5, .max_updates = 1});
  const std::uint32_t k1[2] = {84, 84};  // gap 4 to table 2: admissible
  EXPECT_EQ(upd.observe_benign(k1), 1u);  // spends the whole budget
  ASSERT_TRUE(upd.budget_exhausted());
  const std::uint32_t k2[2] = {95, 95};  // tables 0/1 match; table 2 gap 11 > 5
  EXPECT_EQ(upd.observe_benign(k2), 0u);
  EXPECT_EQ(upd.rejected_by_budget(), 0u);  // inadmissible, NOT a budget refusal
  const std::uint32_t k3[2] = {88, 88};  // table 2 gap 4: admissible, refused
  EXPECT_EQ(upd.observe_benign(k3), 0u);
  EXPECT_EQ(upd.rejected_by_budget(), 1u);
}

TEST(WhitelistUpdater, RepeatedObservationsConverge) {
  auto wl = make_whitelist();
  core::WhitelistUpdater upd(wl, {.max_extension_per_field = 15, .max_updates = 100});
  const std::uint32_t key[2] = {90, 90};
  upd.observe_benign(key);
  EXPECT_EQ(upd.observe_benign(key), 0u);  // second pass: fully covered
  EXPECT_EQ(upd.keys_fully_covered(), 1u);
}

}  // namespace
}  // namespace iguard
