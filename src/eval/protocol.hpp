// The paper's data protocol (§4): benign data is split into train and test
// (per HorusEye); the training part is further split train/validation 4:1;
// validation and test each receive 20% attack traffic (one attack at a
// time). The best hyperparameter configuration is chosen on validation and
// final numbers are reported on test.
#pragma once

#include <vector>

#include "ml/matrix.hpp"
#include "ml/rng.hpp"

namespace iguard::eval {

struct ProtocolConfig {
  double benign_test_fraction = 0.30;  // benign -> test
  double val_fraction = 0.20;          // remaining benign -> validation (4:1)
  /// Attack rows added to val/test, as a fraction of that set's total size
  /// (the paper's "20% attack traffic").
  double attack_fraction = 0.20;
};

struct SplitData {
  ml::Matrix train_x;  // benign-only training pool (unlabeled by assumption)
  ml::Matrix val_x;
  std::vector<int> val_y;
  ml::Matrix test_x;
  std::vector<int> test_y;
};

/// Assemble a split from benign and attack feature matrices. Benign rows are
/// shuffled and partitioned disjointly; attack rows are likewise disjoint
/// between validation and test.
SplitData make_split(const ml::Matrix& benign, const ml::Matrix& attack,
                     const ProtocolConfig& cfg, ml::Rng& rng);

/// Append extra rows to the training pool (training-set poisoning).
void poison_training(SplitData& split, const ml::Matrix& poison_rows);

}  // namespace iguard::eval
