#include "core/pl_model.hpp"

namespace iguard::core {

void PlModel::fit(const ml::Matrix& benign_pl, ml::Rng& rng) {
  forest_ = ml::IsolationForest(cfg_.forest);
  forest_.fit(benign_pl, rng);
  quantizer_ = rules::Quantizer(cfg_.quantizer_bits);
  quantizer_.fit(benign_pl);
  WhitelistConfig wcfg = cfg_.whitelist;
  if (cfg_.clip_to_support) wcfg.clip = support_clip(benign_pl, quantizer_, cfg_.support_trim);
  whitelist_ = compile_per_tree(forest_, quantizer_, wcfg);
}

int PlModel::classify(std::span<const double> pl_features) const {
  const auto key = quantizer_.quantize(pl_features);
  return whitelist_.classify(key);
}

}  // namespace iguard::core
