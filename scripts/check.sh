#!/usr/bin/env bash
# Full verification sweep: build + ctest plain, then under each sanitizer.
# Usage: scripts/check.sh [--fast]
#   --fast   plain build/test only (skip the sanitizer matrix)
set -euo pipefail

cd "$(dirname "$0")/.."
GENERATOR_ARGS=()
command -v ninja >/dev/null 2>&1 && GENERATOR_ARGS=(-G Ninja)
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_suite() {
  local name="$1" sanitize="$2"
  local dir="build-check-${name}"
  echo "=== ${name} (IGUARD_SANITIZE='${sanitize}') ==="
  cmake -B "${dir}" -S . "${GENERATOR_ARGS[@]}" -DIGUARD_SANITIZE="${sanitize}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

run_suite plain ""
if [[ "${1:-}" != "--fast" ]]; then
  run_suite ubsan undefined
  run_suite asan address
  run_suite tsan thread
fi
echo "=== all checks passed ==="
