// Generators for the 15 attack traffic classes evaluated in the paper
// (datasets [8, 14, 15, 23, 26]): IoT botnets (Mirai, Aidra, Bashlite),
// volumetric floods (UDP/TCP/HTTP DDoS), reconnaissance (OS/service/port
// scans), stealthy exfiltration (data theft, keylogging), and the "router"
// variants where attack traffic traverses a rate-limiting/NAT gateway before
// the observation point (TTL decrement, queueing jitter, rate clamp) —
// pulling it closer to benign statistics, hence harder.
//
// Each attack draws most per-flow statistics from within the *ranges* benign
// traffic occupies but breaks the benign joint size/rate/length manifold
// (benign.hpp), so axis-aligned isolation splits struggle (Fig. 2) while
// reconstruction-error models do not — the paper's central observation.
#pragma once

#include <string>
#include <vector>

#include "ml/rng.hpp"
#include "trafficgen/flowspec.hpp"

namespace iguard::traffic {

enum class AttackType {
  kMirai,
  kAidra,
  kBashlite,
  kUdpDdos,
  kTcpDdos,
  kHttpDdos,
  kOsScan,
  kServiceScan,
  kDataTheft,
  kKeylogging,
  kMiraiRouterFilter,
  kOsScanRouter,
  kPortScanRouter,
  kTcpDdosRouter,
  kUdpDdosRouter,
};

/// All 15 attacks, in the paper's reporting order (Figs. 5/8 + router set).
std::vector<AttackType> all_attacks();
/// The 5 headline attacks of Figs. 2, 5, 6.
std::vector<AttackType> headline_attacks();

std::string attack_name(AttackType a);

struct AttackConfig {
  std::size_t flows = 250;
  double horizon = 600.0;
  std::uint32_t attacker_count = 8;
};

/// Draw attack flow specs for one attack class.
std::vector<FlowSpec> attack_flows(AttackType type, const AttackConfig& cfg, ml::Rng& rng);

/// Convenience: specs -> packets.
Trace attack_trace(AttackType type, const AttackConfig& cfg, ml::Rng& rng);

/// Router/NAT gateway transform applied by the *router variants: decrements
/// TTL, adds queueing jitter, and clamps the packet rate (min mean IPD).
void apply_router_transform(FlowSpec& s, ml::Rng& rng, double min_ipd = 2e-3);

}  // namespace iguard::traffic
