#include "rules/compiled_table.hpp"

#include <algorithm>
#include <bit>

namespace iguard::rules {

namespace {

constexpr std::uint64_t kDomainEnd = 1ull << 32;  // one past the largest key

/// Widest key the AND sweep handles on the stack; real tables are 4 (PL) or
/// 13 (FL) fields wide. Wider rules fall back to the linear scan.
constexpr std::size_t kMaxFields = 64;

/// Keys per batched inner block: bounds the stack scratch (row pointers are
/// kChunk × kMaxBatchWidth) and keeps per-key cursors in L1.
constexpr std::size_t kChunk = 64;

}  // namespace

void CompiledRuleTable::compile(const std::vector<RangeRule>& sorted_rules) {
  rules_ = sorted_rules;
  groups_.clear();

  // Group rule indices by width, preserving priority order within a group.
  for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
    const std::size_t w = rules_[ri].fields.size();
    auto it = std::find_if(groups_.begin(), groups_.end(),
                           [w](const WidthGroup& g) { return g.width == w; });
    if (it == groups_.end()) {
      groups_.push_back(WidthGroup{w, 0, {}, {}});
      it = std::prev(groups_.end());
    }
    it->to_global.push_back(static_cast<std::uint32_t>(ri));
  }
  std::sort(groups_.begin(), groups_.end(),
            [](const WidthGroup& a, const WidthGroup& b) { return a.width < b.width; });

  for (auto& g : groups_) {
    const std::size_t n = g.to_global.size();
    g.words = (n + 63) / 64;
    g.fields.resize(g.width);
    if (g.width > kMaxFields) continue;  // match_index falls back to the scan
    for (std::size_t f = 0; f < g.width; ++f) {
      FieldIndex& fi = g.fields[f];
      // Breakpoints: every rule's lo and hi+1 (the first value past the
      // range). Between consecutive breakpoints the covering set is
      // constant. Collected in 64-bit (hi+1 can be 2^32), narrowed below
      // once the one out-of-domain candidate is dropped.
      std::vector<std::uint64_t> bounds;
      bounds.push_back(0);
      for (const std::uint32_t gi : g.to_global) {
        const FieldRange& r = rules_[gi].fields[f];
        if (r.empty()) continue;  // matches nothing: never sets a bit
        bounds.push_back(r.lo);
        bounds.push_back(static_cast<std::uint64_t>(r.hi) + 1);
      }
      std::sort(bounds.begin(), bounds.end());
      bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
      if (bounds.back() >= kDomainEnd) bounds.pop_back();  // hi = 2^32-1
      fi.bounds.assign(bounds.begin(), bounds.end());

      fi.masks.assign(fi.bounds.size() * g.words, 0);
      for (std::size_t li = 0; li < n; ++li) {
        const FieldRange& r = rules_[g.to_global[li]].fields[f];
        if (r.empty()) continue;
        // Intervals are either fully inside or fully outside [lo, hi]; the
        // covered ones start at bound == lo and end before the bound > hi.
        const auto first = std::lower_bound(fi.bounds.begin(), fi.bounds.end(), r.lo);
        const auto last = std::upper_bound(first, fi.bounds.end(), r.hi);
        const std::uint64_t bit = 1ull << (li % 64);
        const std::size_t word = li / 64;
        for (auto it = first; it != last; ++it) {
          const std::size_t iv = static_cast<std::size_t>(it - fi.bounds.begin());
          fi.masks[iv * g.words + word] |= bit;
        }
      }
      // Coverage flags: an interval with an all-zero mask row can reject a
      // lookup after one binary search, before any AND work.
      fi.covered.assign(fi.bounds.size(), 0);
      for (std::size_t iv = 0; iv < fi.bounds.size(); ++iv) {
        for (std::size_t w = 0; w < g.words; ++w) {
          if (fi.masks[iv * g.words + w] != 0) {
            fi.covered[iv] = 1;
            break;
          }
        }
      }
    }
  }
}

int CompiledRuleTable::match_index(std::span<const std::uint32_t> key) const {
  for (const auto& g : groups_) {
    if (g.width != key.size()) continue;
    if (g.width == 0) return static_cast<int>(g.to_global[0]);  // empty conjunction
    if (g.width > kMaxFields) {
      for (const std::uint32_t gi : g.to_global) {
        if (rules_[gi].matches(key)) return static_cast<int>(gi);
      }
      return -1;
    }
    // One binary search per field resolves the interval whose mask row
    // describes exactly the rules covering key[f] on that field.
    const std::uint64_t* rows[kMaxFields];
    for (std::size_t f = 0; f < g.width; ++f) {
      const FieldIndex& fi = g.fields[f];
      const auto it = std::upper_bound(fi.bounds.begin(), fi.bounds.end(), key[f]);
      const std::size_t iv = static_cast<std::size_t>(it - fi.bounds.begin()) - 1;
      if (fi.covered[iv] == 0) return -1;  // no rule covers key[f] here
      rows[f] = fi.masks.data() + iv * g.words;
    }
    // Word-wise intersection, low rule indices first: the first set bit is
    // the highest-priority match (the TCAM priority encoder).
    for (std::size_t w = 0; w < g.words; ++w) {
      std::uint64_t acc = rows[0][w];
      for (std::size_t f = 1; f < g.width && acc != 0; ++f) acc &= rows[f][w];
      if (acc != 0) {
        const std::size_t local = w * 64 + static_cast<std::size_t>(std::countr_zero(acc));
        return static_cast<int>(g.to_global[local]);
      }
    }
    return -1;
  }
  return -1;
}

void CompiledRuleTable::match_index_batch(std::span<const std::uint32_t> keys,
                                          std::size_t width, std::span<int> out,
                                          const std::uint8_t* skip) const {
  const std::size_t n = out.size();
  if (keys.size() < n * width) return;  // malformed: leave out untouched
  const WidthGroup* grp = nullptr;
  for (const auto& g : groups_) {
    if (g.width == width) {
      grp = &g;
      break;
    }
  }
  if (grp == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      if (skip == nullptr || skip[i] == 0) out[i] = -1;
    }
    return;
  }
  const WidthGroup& g = *grp;
  if (width == 0 || width > kMaxBatchWidth) {
    // Degenerate or too wide for the stack scratch: per-key scalar lookups
    // (still bit-exact; kMaxBatchWidth covers the FL=13 / PL=4 deployments).
    for (std::size_t i = 0; i < n; ++i) {
      if (skip == nullptr || skip[i] == 0) {
        out[i] = match_index(keys.subspan(i * width, width));
      }
    }
    return;
  }
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t m = std::min(kChunk, n - base);
    const std::uint64_t* rows[kChunk * kMaxBatchWidth];
    std::uint8_t dead[kChunk];
    // Field-major interval resolution: field f's bounds array is reused by
    // every key of the chunk before the next field is touched, which is
    // where the batched path amortises the binary-search cache traffic.
    for (std::size_t i = 0; i < m; ++i) {
      dead[i] = (skip != nullptr && skip[base + i] != 0) ? 2 : 0;
    }
    for (std::size_t f = 0; f < width; ++f) {
      const FieldIndex& fi = g.fields[f];
      const std::uint32_t* b = fi.bounds.data();
      const std::size_t bn = fi.bounds.size();
      for (std::size_t i = 0; i < m; ++i) {
        if (dead[i] != 0) continue;
        const std::uint32_t v = keys[(base + i) * width + f];
        const std::size_t iv =
            static_cast<std::size_t>(std::upper_bound(b, b + bn, v) - b) - 1;
        if (fi.covered[iv] == 0) {
          dead[i] = 1;  // provable miss: skip this key's remaining fields
          continue;
        }
        rows[i * width + f] = fi.masks.data() + iv * g.words;
      }
    }
    // Per-key AND sweep, identical to the scalar priority encoder.
    for (std::size_t i = 0; i < m; ++i) {
      if (dead[i] == 2) continue;  // caller-skipped: leave out untouched
      if (dead[i] == 1) {
        out[base + i] = -1;
        continue;
      }
      const std::uint64_t* const* r = rows + i * width;
      int found = -1;
      for (std::size_t w = 0; w < g.words; ++w) {
        std::uint64_t acc = r[0][w];
        for (std::size_t f = 1; f < width && acc != 0; ++f) acc &= r[f][w];
        if (acc != 0) {
          const std::size_t local =
              w * 64 + static_cast<std::size_t>(std::countr_zero(acc));
          found = static_cast<int>(g.to_global[local]);
          break;
        }
      }
      out[base + i] = found;
    }
  }
}

void CompiledRuleTable::matches_any_batch(std::span<const std::uint32_t> keys,
                                          std::size_t width, std::span<std::uint8_t> out,
                                          const std::uint8_t* skip) const {
  const std::size_t n = out.size();
  if (keys.size() < n * width) return;
  const WidthGroup* grp = nullptr;
  for (const auto& g : groups_) {
    if (g.width == width) {
      grp = &g;
      break;
    }
  }
  if (grp == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      if (skip == nullptr || skip[i] == 0) out[i] = 0;
    }
    return;
  }
  const WidthGroup& g = *grp;
  if (width == 0 || width > kMaxBatchWidth) {
    for (std::size_t i = 0; i < n; ++i) {
      if (skip == nullptr || skip[i] == 0) {
        out[i] = matches_any(keys.subspan(i * width, width)) ? 1 : 0;
      }
    }
    return;
  }
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t m = std::min(kChunk, n - base);
    const std::uint64_t* rows[kChunk * kMaxBatchWidth];
    std::uint8_t dead[kChunk];
    for (std::size_t i = 0; i < m; ++i) {
      dead[i] = (skip != nullptr && skip[base + i] != 0) ? 2 : 0;
    }
    for (std::size_t f = 0; f < width; ++f) {
      const FieldIndex& fi = g.fields[f];
      const std::uint32_t* b = fi.bounds.data();
      const std::size_t bn = fi.bounds.size();
      for (std::size_t i = 0; i < m; ++i) {
        if (dead[i] != 0) continue;
        const std::uint32_t v = keys[(base + i) * width + f];
        const std::size_t iv =
            static_cast<std::size_t>(std::upper_bound(b, b + bn, v) - b) - 1;
        if (fi.covered[iv] == 0) {
          dead[i] = 1;
          continue;
        }
        rows[i * width + f] = fi.masks.data() + iv * g.words;
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (dead[i] == 2) continue;
      if (dead[i] == 1) {
        out[base + i] = 0;
        continue;
      }
      const std::uint64_t* const* r = rows + i * width;
      std::uint8_t hit = 0;
      for (std::size_t w = 0; w < g.words && hit == 0; ++w) {
        std::uint64_t acc = r[0][w];
        for (std::size_t f = 1; f < width && acc != 0; ++f) acc &= r[f][w];
        hit = acc != 0 ? 1 : 0;
      }
      out[base + i] = hit;
    }
  }
}

void CompiledRuleTable::classify_batch(std::span<const std::uint32_t> keys, std::size_t width,
                                       std::span<int> out) const {
  match_index_batch(keys, width, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = out[i] >= 0 ? rules_[static_cast<std::size_t>(out[i])].label : 1;
  }
}

}  // namespace iguard::rules
