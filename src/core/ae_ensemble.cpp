#include "core/ae_ensemble.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace iguard::core {

void AeEnsemble::fit(const ml::Matrix& benign, const AeEnsembleConfig& cfg, ml::Rng& rng) {
  if (cfg.ensemble_size == 0) throw std::invalid_argument("AeEnsemble: r must be >= 1");
  aes_.clear();
  thresholds_.clear();
  for (std::size_t u = 0; u < cfg.ensemble_size; ++u) {
    auto ae = std::make_unique<ml::Autoencoder>(cfg.base);
    ml::Rng child = rng.fork();
    ae->fit(benign, child);
    thresholds_.push_back(ae->threshold() * cfg.threshold_scale);
    aes_.push_back(std::move(ae));
  }
  weights_.assign(aes_.size(), 1.0 / static_cast<double>(aes_.size()));
}

double AeEnsemble::reconstruction_error(std::size_t u, std::span<const double> x) const {
  return aes_.at(u)->reconstruction_error(x);
}

int AeEnsemble::predict(std::span<const double> x) const {
  double vote = 0.0;
  for (std::size_t u = 0; u < aes_.size(); ++u) {
    if (reconstruction_error(u, x) > thresholds_[u]) vote += weights_[u];
  }
  return vote > 0.5 ? 1 : 0;
}

int AeEnsemble::vote_from_errors(std::span<const double> per_member_errors) const {
  if (per_member_errors.size() != aes_.size()) {
    throw std::invalid_argument("vote_from_errors: size mismatch");
  }
  double vote = 0.0;
  for (std::size_t u = 0; u < aes_.size(); ++u) {
    if (per_member_errors[u] > thresholds_[u]) vote += weights_[u];
  }
  return vote > 0.5 ? 1 : 0;
}

void AeEnsemble::set_weights(std::vector<double> w) {
  if (w.size() != aes_.size()) throw std::invalid_argument("set_weights: size mismatch");
  const double sum = std::accumulate(w.begin(), w.end(), 0.0);
  if (std::abs(sum - 1.0) > 1e-6) throw std::invalid_argument("set_weights: must sum to 1");
  weights_ = std::move(w);
}

}  // namespace iguard::core
