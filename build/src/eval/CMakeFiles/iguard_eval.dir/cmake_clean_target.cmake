file(REMOVE_RECURSE
  "libiguard_eval.a"
)
