#include "eval/protocol.hpp"

#include <algorithm>
#include <stdexcept>

namespace iguard::eval {

namespace {
// attack_count such that attack_count = f * (base + attack_count).
std::size_t attack_count_for(std::size_t base, double fraction) {
  if (fraction <= 0.0 || fraction >= 1.0) return 0;
  return static_cast<std::size_t>(fraction / (1.0 - fraction) * static_cast<double>(base));
}
}  // namespace

SplitData make_split(const ml::Matrix& benign, const ml::Matrix& attack,
                     const ProtocolConfig& cfg, ml::Rng& rng) {
  if (benign.rows() < 10) throw std::invalid_argument("make_split: too little benign data");

  auto bidx = rng.sample_without_replacement(benign.rows(), benign.rows());  // shuffle
  const std::size_t n_test =
      static_cast<std::size_t>(cfg.benign_test_fraction * static_cast<double>(benign.rows()));
  const std::size_t n_rest = benign.rows() - n_test;
  const std::size_t n_val = static_cast<std::size_t>(cfg.val_fraction * static_cast<double>(n_rest));
  const std::size_t n_train = n_rest - n_val;

  SplitData out;
  out.train_x = benign.gather({bidx.data(), n_train});
  out.val_x = benign.gather({bidx.data() + n_train, n_val});
  out.test_x = benign.gather({bidx.data() + n_train + n_val, n_test});
  out.val_y.assign(out.val_x.rows(), 0);
  out.test_y.assign(out.test_x.rows(), 0);

  // Disjoint attack portions for validation and test.
  auto aidx = rng.sample_without_replacement(attack.rows(), attack.rows());
  std::size_t a_val = attack_count_for(n_val, cfg.attack_fraction);
  std::size_t a_test = attack_count_for(n_test, cfg.attack_fraction);
  if (a_val + a_test > attack.rows()) {
    // Not enough attack rows: scale both portions down proportionally.
    const double scale = static_cast<double>(attack.rows()) /
                         static_cast<double>(std::max<std::size_t>(a_val + a_test, 1));
    a_val = static_cast<std::size_t>(static_cast<double>(a_val) * scale);
    a_test = attack.rows() - a_val;
  }
  for (std::size_t i = 0; i < a_val; ++i) {
    out.val_x.push_row(attack.row(aidx[i]));
    out.val_y.push_back(1);
  }
  for (std::size_t i = 0; i < a_test; ++i) {
    out.test_x.push_row(attack.row(aidx[a_val + i]));
    out.test_y.push_back(1);
  }
  return out;
}

void poison_training(SplitData& split, const ml::Matrix& poison_rows) {
  for (std::size_t i = 0; i < poison_rows.rows(); ++i) {
    split.train_x.push_row(poison_rows.row(i));
  }
}

}  // namespace iguard::eval
