// Reproduces Table 1: average switch resource consumption across all 15
// attacks for iGuard vs the previous iForest data-plane implementation.
// Both systems compile to whitelist rules through the same range->ternary
// machinery and share the same stateful-storage pipeline, so SRAM/sALU/VLIW
// and stage usage are near-identical; the comparison that matters is TCAM,
// where iGuard's extra stopping criterion (skewed nodes stop growing) means
// fewer, coarser leaves and fewer expanded ternary entries.
//
// Paper reference (avg across 15 attacks):
//          TCAM    SRAM    sALUs   VLIWs  Stages
// iForest  16.47%  11.55%  19.59%  7.75%  12
// iGuard   13.34%  11.51%  19.62%  7.79%  12
#include <iostream>

#include "eval/report.hpp"
#include "harness/testbed_lab.hpp"

using namespace iguard;

int main() {
  harness::TestbedLab lab{harness::TestbedLabConfig{}};

  switchsim::ResourceUsage ig_sum{}, if_sum{};
  std::size_t ig_stages = 0, if_stages = 0;
  std::size_t n = 0;
  eval::Table per_attack({"attack", "iGuard TCAM", "iForest TCAM", "iGuard rules",
                          "iForest rules"});

  for (const auto atk : traffic::all_attacks()) {
    const auto out = lab.run_attack(atk);
    ig_sum.tcam_frac += out.iguard_res.tcam_frac;
    ig_sum.sram_frac += out.iguard_res.sram_frac;
    ig_sum.salu_frac += out.iguard_res.salu_frac;
    ig_sum.vliw_frac += out.iguard_res.vliw_frac;
    ig_stages = std::max(ig_stages, out.iguard_res.stages);
    if_sum.tcam_frac += out.iforest_res.tcam_frac;
    if_sum.sram_frac += out.iforest_res.sram_frac;
    if_sum.salu_frac += out.iforest_res.salu_frac;
    if_sum.vliw_frac += out.iforest_res.vliw_frac;
    if_stages = std::max(if_stages, out.iforest_res.stages);
    ++n;
    per_attack.add_row({traffic::attack_name(atk), eval::Table::pct(out.iguard_res.tcam_frac),
                        eval::Table::pct(out.iforest_res.tcam_frac),
                        std::to_string(out.iguard_fl_rules),
                        std::to_string(out.iforest_fl_rules)});
  }
  const double inv = 1.0 / static_cast<double>(n);

  per_attack.print(std::cout, "Per-attack TCAM and rule counts");

  eval::Table table({"system", "TCAM", "SRAM", "sALUs", "VLIWs", "Stages"});
  table.add_row({"iForest [15]", eval::Table::pct(if_sum.tcam_frac * inv),
                 eval::Table::pct(if_sum.sram_frac * inv), eval::Table::pct(if_sum.salu_frac * inv),
                 eval::Table::pct(if_sum.vliw_frac * inv), std::to_string(if_stages)});
  table.add_row({"iGuard", eval::Table::pct(ig_sum.tcam_frac * inv),
                 eval::Table::pct(ig_sum.sram_frac * inv), eval::Table::pct(ig_sum.salu_frac * inv),
                 eval::Table::pct(ig_sum.vliw_frac * inv), std::to_string(ig_stages)});
  std::cout << "\n";
  table.print(std::cout, "Table 1: average switch resource consumption (15 attacks)");
  std::cout << "\nShape to match: iGuard TCAM < iForest TCAM; all other columns ~equal;\n"
               "both systems fit the 12-stage pipeline.\n";
  table.write_csv("table1_resources.csv");
  return 0;
}
