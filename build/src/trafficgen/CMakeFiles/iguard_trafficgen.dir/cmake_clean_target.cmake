file(REMOVE_RECURSE
  "libiguard_trafficgen.a"
)
