#include "switchsim/tables.hpp"

#include <algorithm>

namespace iguard::switchsim {

bool BlacklistTable::contains(const traffic::FiveTuple& ft) {
  const auto it = entries_.find(key(ft));
  if (it == entries_.end()) return false;
  if (policy_ == EvictionPolicy::kLru) touch(it->first);
  return true;
}

void BlacklistTable::touch(std::uint64_t k) {
  entries_[k] = ++clock_;
}

void BlacklistTable::install(const traffic::FiveTuple& ft) {
  if (capacity_ == 0) return;
  const std::uint64_t k = key(ft);
  if (entries_.contains(k)) {
    if (policy_ == EvictionPolicy::kLru) touch(k);
    return;
  }
  if (entries_.size() >= capacity_) {
    if (policy_ == EvictionPolicy::kFifo) {
      while (!order_.empty() && !entries_.contains(order_.front())) order_.pop_front();
      if (!order_.empty()) {
        entries_.erase(order_.front());
        order_.pop_front();
        ++evictions_;
      }
    } else {
      auto victim = std::min_element(entries_.begin(), entries_.end(),
                                     [](const auto& a, const auto& b) {
                                       return a.second < b.second;
                                     });
      if (victim != entries_.end()) {
        entries_.erase(victim);
        ++evictions_;
      }
    }
  }
  entries_[k] = ++clock_;
  // The install-order deque exists only for FIFO eviction; LRU finds its
  // victim by stamp. Pushing under LRU would grow the deque one entry per
  // install for the lifetime of the table without ever draining it.
  if (policy_ == EvictionPolicy::kFifo) order_.push_back(k);
}

void Controller::on_digest(const Digest& d) {
  ++digests_;
  bytes_ += Digest::kBytes;
  if (d.label == 1) {
    blacklist_->install(d.ft);
    ++installs_;
  }
}

}  // namespace iguard::switchsim
