// P4-16 code generation: emit the Tofino-style program a compiled iGuard
// deployment corresponds to — parser, the stateful registers of Fig. 4, one
// range-match whitelist table per tree with a match-count vote, the PL
// early-packet tables, the blacklist, and digest generation. The output is
// the *artifact* the paper ships (its GitHub repo is a P4 program); here it
// is generated from the trained model so rules and program always agree.
//
// The emitted dialect is v1model-flavoured P4-16 (portable, no vendor
// externs), with the Tofino-specific pieces (mirroring, digests) kept to
// standard-library constructs; it is meant for inspection and for driving
// table-entry generation, not for compiling against a proprietary SDE.
#pragma once

#include <string>

#include "core/iguard.hpp"
#include "switchsim/pipeline.hpp"

namespace iguard::switchsim {

struct P4EmitOptions {
  std::string program_name = "iguard";
  std::size_t flow_slots = 4096;
  std::size_t blacklist_capacity = 4096;
  std::size_t packet_threshold_n = 32;
  std::uint32_t idle_timeout_us = 10'000'000;
};

/// The P4-16 program skeleton for the given deployment (tables sized from
/// the compiled whitelists; field widths from the quantisers).
std::string emit_p4_program(const DeployedModel& model, const P4EmitOptions& opts = {});

/// Control-plane table entries: one line per rule, in a P4Runtime-like
/// text form `table_add <table> <action> <ranges...> => <prio>`.
std::string emit_table_entries(const DeployedModel& model);

}  // namespace iguard::switchsim
