#include "eval/report.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace iguard::eval {

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) throw std::invalid_argument("Table: cell count mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << 100.0 * v << "%";
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  if (!title.empty()) os << "== " << title << " ==\n";
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    }
    os << "\n";
  };
  line(headers_);
  std::string sep;
  for (std::size_t c = 0; c < headers_.size(); ++c) sep += std::string(width[c], '-') + "  ";
  os << sep << "\n";
  for (const auto& row : rows_) line(row);
  os.flush();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("Table: cannot open " + path);
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::string v = cells[c];
      if (v.find(',') != std::string::npos) v = "\"" + v + "\"";
      f << v << (c + 1 < cells.size() ? "," : "");
    }
    f << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace iguard::eval
