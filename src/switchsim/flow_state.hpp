// Integer per-flow state — the registers a Tofino data plane can actually
// keep (§3.3.1). Timestamps and IPDs are microseconds; sizes are bytes; all
// arithmetic is integer with saturation, and derived features (means,
// variances) use integer division, modelling the precision the switch
// loses versus the float pipeline. The same finalisation is used both by
// the data-plane simulator and by the offline extractor that produces the
// testbed *training* matrices, so rules always match what the switch
// computes.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "features/flow_features.hpp"
#include "trafficgen/packet.hpp"

namespace iguard::switchsim {

constexpr std::size_t kSwitchFlFeatures = 13;

/// Seconds -> integer microseconds, clamped at zero. The ONE conversion both
/// the data-plane pipeline and the offline training extractor must share: a
/// raw `static_cast<uint64_t>(ts * 1e6)` on a negative timestamp is UB and
/// in practice wraps to a huge value that force-fires the idle timeout,
/// skewing deployed epoch boundaries away from what the rules were trained
/// on. Capture timestamps can legitimately go negative (clock steps, pcap
/// offsets), so the clamp is load-bearing, not defensive.
inline std::uint64_t to_us(double ts) {
  return static_cast<std::uint64_t>(std::max(0.0, ts) * 1e6);
}

struct IntFlowState {
  std::uint64_t sig = 0;  // bi-hash flow signature; 0 = empty slot
  /// Flow-key registers: the 5-tuple the slot was claimed with, as carried
  /// in the digest. Lets a restarted controller rebuild blacklist rules
  /// from resident state (faults.hpp recovery sweep).
  traffic::FiveTuple ft;
  std::uint32_t pkt_count = 0;
  std::uint64_t total_size = 0;
  std::uint64_t sum_sq_size = 0;
  std::uint32_t min_size = 0;
  std::uint32_t max_size = 0;
  std::uint64_t first_ts_us = 0;
  std::uint64_t last_ts_us = 0;
  std::uint64_t sum_ipd_us = 0;
  std::uint64_t sum_sq_ipd_us = 0;  // saturating
  std::uint32_t min_ipd_us = 0;
  std::uint32_t max_ipd_us = 0;
  std::int8_t label = -1;  // flow label storage: -1 = unclassified
  bool truth_malicious = false;  // ground truth (evaluation only)

  bool empty() const { return sig == 0; }

  /// Register update for one packet (IPD clamped to ~67 s so the squared
  /// accumulator cannot overflow within any packet-threshold window).
  void update(const traffic::Packet& p, std::uint64_t flow_sig);

  /// Clear the feature registers but keep the flow label (the paper keeps
  /// flow-label storage separate from FL-feature storage).
  void clear_features();

  /// Integer-derived 13 FL features, index-aligned with
  /// features::feature_names(kSwitch13). Durations/IPDs are in seconds
  /// (converted from integer microseconds at the end).
  std::array<double, kSwitchFlFeatures> finalize() const;
};

/// Offline switch-like extraction: exact (collision-free) bidirectional
/// keying but *integer* arithmetic and the same truncation semantics the
/// data plane applies — emit at the n-th packet or after idle > delta.
/// This is how the testbed experiments build their training matrices.
features::FlowDataset extract_switch_features(const traffic::Trace& trace,
                                              std::size_t packet_threshold_n,
                                              double idle_timeout_delta_s,
                                              std::size_t min_packets = 2);

}  // namespace iguard::switchsim
