#include "trafficgen/attacks.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace iguard::traffic {

std::vector<AttackType> all_attacks() {
  return {AttackType::kMirai,        AttackType::kAidra,
          AttackType::kBashlite,     AttackType::kUdpDdos,
          AttackType::kTcpDdos,      AttackType::kHttpDdos,
          AttackType::kOsScan,       AttackType::kServiceScan,
          AttackType::kDataTheft,    AttackType::kKeylogging,
          AttackType::kMiraiRouterFilter, AttackType::kOsScanRouter,
          AttackType::kPortScanRouter,    AttackType::kTcpDdosRouter,
          AttackType::kUdpDdosRouter};
}

std::vector<AttackType> headline_attacks() {
  return {AttackType::kAidra, AttackType::kMirai, AttackType::kBashlite,
          AttackType::kUdpDdos, AttackType::kOsScan};
}

std::string attack_name(AttackType a) {
  switch (a) {
    case AttackType::kMirai: return "Mirai";
    case AttackType::kAidra: return "Aidra";
    case AttackType::kBashlite: return "Bashlite";
    case AttackType::kUdpDdos: return "UDP DDoS";
    case AttackType::kTcpDdos: return "TCP DDoS";
    case AttackType::kHttpDdos: return "HTTP DDoS";
    case AttackType::kOsScan: return "OS scan";
    case AttackType::kServiceScan: return "Service scan";
    case AttackType::kDataTheft: return "Data theft";
    case AttackType::kKeylogging: return "Keylogging";
    case AttackType::kMiraiRouterFilter: return "Mirai router filter";
    case AttackType::kOsScanRouter: return "OS scan router";
    case AttackType::kPortScanRouter: return "Port scan router";
    case AttackType::kTcpDdosRouter: return "TCP DDoS router";
    case AttackType::kUdpDdosRouter: return "UDP DDoS router";
  }
  throw std::invalid_argument("unknown attack");
}

void apply_router_transform(FlowSpec& s, ml::Rng& rng, double min_ipd) {
  s.ttl = static_cast<std::uint8_t>(std::max(1, static_cast<int>(s.ttl) - 1));
  // Rate limiting: the gateway clamps the mean rate and adds queueing jitter.
  s.ipd_mean = std::max(s.ipd_mean * rng.uniform(0.9, 1.4), min_ipd);
  s.ipd_jitter_sigma = std::min(1.2, s.ipd_jitter_sigma + rng.uniform(0.15, 0.35));
  // Some packets are dropped/filtered upstream.
  s.packets = std::max<std::size_t>(1, static_cast<std::size_t>(
                                           static_cast<double>(s.packets) * rng.uniform(0.5, 0.9)));
}

namespace {

FiveTuple attacker_tuple(const AttackConfig& cfg, ml::Rng& rng, std::uint16_t dst_port,
                         std::uint8_t proto) {
  FiveTuple ft;
  ft.src_ip = 0x0A000000u | (1 + static_cast<std::uint32_t>(rng.index(cfg.attacker_count)));
  ft.dst_ip = 0xC0A80100u | static_cast<std::uint32_t>(1 + rng.index(24));
  ft.src_port = static_cast<std::uint16_t>(rng.integer(1024, 65535));
  ft.dst_port = dst_port;
  ft.proto = proto;
  return ft;
}

// Base spec for one flow of the given attack. The comments note which benign
// manifold relationship each attack breaks.
FlowSpec base_spec(AttackType type, const AttackConfig& cfg, ml::Rng& rng) {
  FlowSpec s;
  s.malicious = true;
  s.ttl = 64;
  switch (type) {
    case AttackType::kMirai:
    case AttackType::kMiraiRouterFilter:
      // Telnet brute force: small packets but far faster than any benign
      // small-packet (sensor) flow.
      s.ft = attacker_tuple(cfg, rng, rng.bernoulli(0.7) ? 23 : 2323, kProtoTcp);
      s.packets = 3 + rng.index(10);
      s.size_mu = rng.uniform(60.0, 95.0);
      s.size_sigma = rng.uniform(1.0, 5.0);
      s.ipd_mean = rng.uniform(0.05, 0.30);
      s.ipd_jitter_sigma = 0.15;
      s.ttl = static_cast<std::uint8_t>(rng.integer(48, 128));
      s.first_flag = TcpFlag::kSyn;
      break;
    case AttackType::kAidra:
      s.ft = attacker_tuple(cfg, rng, 23, kProtoTcp);
      s.packets = 2 + rng.index(5);
      s.size_mu = rng.uniform(54.0, 74.0);
      s.size_sigma = rng.uniform(0.5, 3.0);
      s.ipd_mean = rng.uniform(0.10, 0.50);
      s.ipd_jitter_sigma = 0.20;
      s.ttl = static_cast<std::uint8_t>(rng.integer(40, 200));
      s.first_flag = TcpFlag::kSyn;
      break;
    case AttackType::kBashlite:
      s.ft = attacker_tuple(cfg, rng, rng.bernoulli(0.5) ? 23 : 80, kProtoTcp);
      s.packets = 8 + rng.index(18);
      s.size_mu = rng.uniform(80.0, 150.0);
      s.size_sigma = rng.uniform(2.0, 8.0);
      s.ipd_mean = rng.uniform(0.02, 0.20);
      s.ipd_jitter_sigma = 0.25;
      s.first_flag = TcpFlag::kSyn;
      break;
    case AttackType::kUdpDdos:
    case AttackType::kUdpDdosRouter:
      // Flood: camera-like size and rate but constant sizes (no variance)
      // and a packet budget beyond any benign flow at that size.
      s.ft = attacker_tuple(cfg, rng, static_cast<std::uint16_t>(rng.integer(1024, 65535)),
                            kProtoUdp);
      s.packets = 120 + rng.index(380);
      s.size_mu = rng.bernoulli(0.5) ? 512.0 : 1024.0;
      s.size_sigma = rng.uniform(0.0, 2.0);
      s.ipd_mean = rng.uniform(1e-4, 1e-3);
      s.ipd_jitter_sigma = 0.05;
      s.ttl = static_cast<std::uint8_t>(rng.integer(32, 255));
      break;
    case AttackType::kTcpDdos:
    case AttackType::kTcpDdosRouter:
      // SYN flood: minimum-size segments at camera rate (benign small
      // packets are slow; benign fast flows are large).
      s.ft = attacker_tuple(cfg, rng, rng.bernoulli(0.6) ? 80 : 443, kProtoTcp);
      s.packets = 80 + rng.index(320);
      s.size_mu = rng.uniform(40.0, 60.0);
      s.size_sigma = rng.uniform(0.0, 1.5);
      s.ipd_mean = rng.uniform(1e-4, 1e-3);
      s.ipd_jitter_sigma = 0.05;
      s.ttl = static_cast<std::uint8_t>(rng.integer(32, 255));
      s.first_flag = TcpFlag::kSyn;
      break;
    case AttackType::kHttpDdos:
      // GET flood: medium requests at streaming rate — in-range marginals,
      // off-manifold jointly.
      s.ft = attacker_tuple(cfg, rng, rng.bernoulli(0.7) ? 80 : 443, kProtoTcp);
      s.packets = 40 + rng.index(210);
      s.size_mu = rng.uniform(250.0, 450.0);
      s.size_sigma = rng.uniform(3.0, 15.0);
      s.ipd_mean = rng.uniform(1e-3, 1e-2);
      s.ipd_jitter_sigma = 0.20;
      s.first_flag = TcpFlag::kSyn;
      break;
    case AttackType::kOsScan:
    case AttackType::kOsScanRouter:
      // Fingerprinting probes: tiny packets, odd TTLs, quick succession.
      s.ft = attacker_tuple(cfg, rng, static_cast<std::uint16_t>(rng.integer(1, 1024)),
                            kProtoTcp);
      s.packets = 5 + rng.index(25);
      s.size_mu = rng.uniform(44.0, 64.0);
      s.size_sigma = rng.uniform(0.5, 4.0);
      s.ipd_mean = rng.uniform(1e-3, 5e-2);
      s.ipd_jitter_sigma = 0.30;
      s.ttl = static_cast<std::uint8_t>(rng.integer(37, 255));
      s.first_flag = TcpFlag::kSyn;
      break;
    case AttackType::kServiceScan:
      s.ft = attacker_tuple(cfg, rng, static_cast<std::uint16_t>(rng.integer(1, 10000)),
                            rng.bernoulli(0.5) ? kProtoTcp : kProtoUdp);
      s.packets = 10 + rng.index(50);
      s.size_mu = rng.uniform(48.0, 90.0);
      s.size_sigma = rng.uniform(1.0, 6.0);
      s.ipd_mean = rng.uniform(5e-3, 1e-1);
      s.ipd_jitter_sigma = 0.35;
      s.ttl = static_cast<std::uint8_t>(rng.integer(37, 255));
      s.first_flag = s.ft.proto == kProtoTcp ? TcpFlag::kSyn : TcpFlag::kNone;
      break;
    case AttackType::kDataTheft:
      // Exfiltration: deliberately camera-like (large, fast, long) but with
      // MTU-pinned sizes and machine-steady pacing — the subtlest attack.
      s.ft = attacker_tuple(cfg, rng, 443, kProtoTcp);
      s.packets = 150 + rng.index(500);
      s.size_mu = rng.uniform(1250.0, 1400.0);
      s.size_sigma = rng.uniform(1.0, 6.0);
      s.ipd_mean = rng.uniform(4e-3, 3e-2);
      s.ipd_jitter_sigma = 0.08;
      s.first_flag = TcpFlag::kSyn;
      break;
    case AttackType::kKeylogging:
      // Beaconing exfil: sensor-like size & rate but flows persist far
      // longer than any telemetry burst.
      s.ft = attacker_tuple(cfg, rng, 443, kProtoTcp);
      s.packets = 40 + rng.index(160);
      s.size_mu = rng.uniform(70.0, 120.0);
      s.size_sigma = rng.uniform(1.0, 5.0);
      s.ipd_mean = rng.uniform(0.5, 3.0);
      s.ipd_jitter_sigma = 0.18;
      s.first_flag = TcpFlag::kSyn;
      break;
    case AttackType::kPortScanRouter:
      // Sequential port sweep (per-destination flows), behind the gateway.
      s.ft = attacker_tuple(cfg, rng, static_cast<std::uint16_t>(rng.integer(1, 49152)),
                            kProtoTcp);
      s.packets = 2 + rng.index(7);
      s.size_mu = rng.uniform(40.0, 60.0);
      s.size_sigma = rng.uniform(0.0, 2.0);
      s.ipd_mean = rng.uniform(1e-2, 1e-1);
      s.ipd_jitter_sigma = 0.25;
      s.ttl = static_cast<std::uint8_t>(rng.integer(40, 128));
      s.first_flag = TcpFlag::kSyn;
      break;
  }
  return s;
}

bool is_router_variant(AttackType type) {
  switch (type) {
    case AttackType::kMiraiRouterFilter:
    case AttackType::kOsScanRouter:
    case AttackType::kPortScanRouter:
    case AttackType::kTcpDdosRouter:
    case AttackType::kUdpDdosRouter:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<FlowSpec> attack_flows(AttackType type, const AttackConfig& cfg, ml::Rng& rng) {
  std::vector<FlowSpec> specs;
  specs.reserve(cfg.flows);
  for (std::size_t i = 0; i < cfg.flows; ++i) {
    FlowSpec s = base_spec(type, cfg, rng);
    if (is_router_variant(type)) apply_router_transform(s, rng);
    s.start = rng.uniform(0.0, cfg.horizon);
    s.flow_id = static_cast<std::uint32_t>(i);
    specs.push_back(s);
  }
  return specs;
}

Trace attack_trace(AttackType type, const AttackConfig& cfg, ml::Rng& rng) {
  auto specs = attack_flows(type, cfg, rng);
  return emit_packets(specs, rng);
}

}  // namespace iguard::traffic
