// Public façade of the iGuard system (Fig. 1's control-plane pipeline):
// train the autoencoder teacher on benign flow features, grow the guided
// iForest, distil leaf labels, compile whitelist rules, and (optionally)
// train the early-packet PL model. Offers both inference views:
//   * model view  — the distilled forest's majority vote (the CPU
//     experiments of §4.1), with a soft vote fraction for AUC curves;
//   * deployed view — quantised feature key matched against the compiled
//     whitelist rule table (what actually runs in the switch, §4.2).
#pragma once

#include <optional>

#include "core/ae_ensemble.hpp"
#include "core/guided_iforest.hpp"
#include "core/pl_model.hpp"
#include "core/whitelist.hpp"
#include "rules/rule_table.hpp"

namespace iguard::core {

struct IGuardConfig {
  AeEnsembleConfig teacher{};
  GuidedForestConfig forest{};
  unsigned quantizer_bits = 16;
  WhitelistConfig whitelist{};
  PlModelConfig pl{};
};

class IGuard {
 public:
  explicit IGuard(IGuardConfig cfg = {}) : cfg_(std::move(cfg)) {}

  /// Full training pipeline on benign flow-level features. `benign_pl` may
  /// be empty to skip the early-packet model (CPU experiments don't use it).
  void fit(const ml::Matrix& benign_fl, const ml::Matrix& benign_pl, ml::Rng& rng);

  /// Reuse an externally trained teacher (lets experiments share one AE
  /// ensemble across grid-search points — the expensive part).
  void fit_with_teacher(const ml::Matrix& benign_fl, const ml::Matrix& benign_pl,
                        const AeEnsemble& teacher, ml::Rng& rng);

  // --- model view ---
  int predict_flow_model(std::span<const double> fl) const { return forest_.predict(fl); }
  double vote_fraction(std::span<const double> fl) const { return forest_.vote_fraction(fl); }

  // --- deployed (rules) view: per-tree vote tables ---
  int predict_flow(std::span<const double> fl) const;
  int predict_packet(std::span<const double> pl) const;

  /// Consistency C of §3.2.3: fraction of samples where the whitelist rules
  /// and the distilled forest agree.
  double consistency(const ml::Matrix& samples) const;

  const AeEnsemble& teacher() const { return *teacher_; }
  const GuidedIsolationForest& forest() const { return forest_; }
  const rules::Quantizer& quantizer() const { return quantizer_; }
  const VoteWhitelist& whitelist() const { return whitelist_; }
  const PlModel& pl_model() const { return pl_; }
  bool has_pl_model() const { return pl_.fitted(); }
  const IGuardConfig& config() const { return cfg_; }

 private:
  IGuardConfig cfg_;
  std::optional<AeEnsemble> owned_teacher_;
  const AeEnsemble* teacher_ = nullptr;
  GuidedIsolationForest forest_{GuidedForestConfig{}};
  rules::Quantizer quantizer_;
  VoteWhitelist whitelist_;
  PlModel pl_{PlModelConfig{}};
};

}  // namespace iguard::core
