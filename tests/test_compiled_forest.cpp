// AOT compiled-forest property suite (DESIGN.md §4h): the flat SoA kernel
// must be a bit-exact drop-in for the quantised reference trees — same leaf,
// same stored payload, same tree-order aggregation — scalar and batched, in
// double and in Q16.16.
#include "ml/compiled_forest.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/ae_ensemble.hpp"
#include "core/forest_compile.hpp"
#include "core/guided_iforest.hpp"
#include "core/whitelist.hpp"
#include "ml/iforest.hpp"
#include "ml/rng.hpp"
#include "rules/quantize.hpp"

namespace iguard::core {
namespace {

// Small trained system shared across the suite (same recipe as the
// whitelist suite: 3-D benign manifold, tiny AE teacher, 5-tree forest).
class CompiledForestTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new ml::Rng(61);
    train_ = new ml::Matrix(0, 3);
    for (int i = 0; i < 1200; ++i) {
      const double a = rng_->uniform();
      const double row[3] = {a + rng_->normal(0, 0.05), 2.0 * a + rng_->normal(0, 0.05),
                             1.0 - a + rng_->normal(0, 0.05)};
      train_->push_row(row);
    }
    teacher_ = new AeEnsemble();
    AeEnsembleConfig tcfg;
    tcfg.ensemble_size = 2;
    tcfg.base.encoder_hidden = {6, 2};
    tcfg.base.epochs = 50;
    teacher_->fit(*train_, tcfg, *rng_);

    forest_ = new GuidedIsolationForest{GuidedForestConfig{.num_trees = 5}};
    forest_->fit(*train_, *teacher_, *rng_);

    quant_ = new rules::Quantizer(12);
    quant_->fit(*train_);

    qtrees_ = new std::vector<QuantizedTree>();
    for (const auto& t : forest_->trees()) qtrees_->push_back(quantize_tree(t, *quant_));
  }
  static void TearDownTestSuite() {
    delete qtrees_;
    delete quant_;
    delete forest_;
    delete teacher_;
    delete train_;
    delete rng_;
  }

  static std::vector<std::uint32_t> random_key(ml::Rng& rng, std::size_t width,
                                               std::uint32_t domain) {
    std::vector<std::uint32_t> key(width);
    for (auto& v : key) v = static_cast<std::uint32_t>(rng.integer(0, domain));
    return key;
  }

  static ml::Rng* rng_;
  static ml::Matrix* train_;
  static AeEnsemble* teacher_;
  static GuidedIsolationForest* forest_;
  static rules::Quantizer* quant_;
  static std::vector<QuantizedTree>* qtrees_;
};
ml::Rng* CompiledForestTest::rng_ = nullptr;
ml::Matrix* CompiledForestTest::train_ = nullptr;
AeEnsemble* CompiledForestTest::teacher_ = nullptr;
GuidedIsolationForest* CompiledForestTest::forest_ = nullptr;
rules::Quantizer* CompiledForestTest::quant_ = nullptr;
std::vector<QuantizedTree>* CompiledForestTest::qtrees_ = nullptr;

TEST_F(CompiledForestTest, FlattenedWalkBitExactWithQuantizedTrees) {
  const ml::CompiledForest cf = compile_forest(*qtrees_);
  ASSERT_EQ(cf.tree_count(), qtrees_->size());
  std::size_t nodes = 0;
  for (const auto& qt : *qtrees_) nodes += qt.nodes.size();
  EXPECT_EQ(cf.node_count(), nodes);

  ml::Rng probe(3);
  const std::uint32_t domain = quant_->domain_max();
  for (int k = 0; k < 2000; ++k) {
    const auto key = random_key(probe, 3, domain + 8);  // past-domain keys too
    double sum = 0.0;
    for (std::size_t t = 0; t < qtrees_->size(); ++t) {
      const double want = (*qtrees_)[t].payload_at(key);
      ASSERT_EQ(cf.payload_at(t, key), want);  // exact: same stored double
      sum += want;
    }
    ASSERT_EQ(cf.payload_sum(key), sum);  // tree-order accumulation
  }
}

TEST_F(CompiledForestTest, BatchKernelsBitExactWithScalar) {
  const ml::CompiledForest cf = compile_forest(*forest_, *quant_);
  ml::Rng probe(9);
  const std::uint32_t domain = quant_->domain_max();
  // Batch sizes straddling the kernel's internal chunk (64).
  for (const std::size_t n : {1u, 7u, 64u, 65u, 200u}) {
    std::vector<std::uint32_t> keys(n * 3);
    for (auto& v : keys) v = static_cast<std::uint32_t>(probe.integer(0, domain + 8));
    std::vector<double> scores(n);
    std::vector<std::int64_t> scores_q16(n);
    std::vector<int> votes(n);
    cf.score_batch(keys, 3, scores);
    cf.score_batch_q16(keys, 3, scores_q16);
    cf.predict_majority_batch(keys, 3, votes);
    for (std::size_t i = 0; i < n; ++i) {
      const std::span<const std::uint32_t> key(keys.data() + i * 3, 3);
      ASSERT_EQ(scores[i], cf.payload_sum(key));
      ASSERT_EQ(scores_q16[i], cf.payload_sum_q16(key));
      ASSERT_EQ(votes[i], cf.predict_majority(key));
    }
  }
}

TEST_F(CompiledForestTest, MajorityVoteMatchesQuantizedLabelSum) {
  // Guided leaves carry 0/1 labels, exact in Q16: the integer vote must
  // reproduce "malicious iff 2 * label_sum > tree_count" everywhere.
  const ml::CompiledForest cf = compile_forest(*forest_, *quant_);
  ml::Rng probe(17);
  const std::uint32_t domain = quant_->domain_max();
  for (int k = 0; k < 2000; ++k) {
    const auto key = random_key(probe, 3, domain + 8);
    double sum = 0.0;
    for (const auto& qt : *qtrees_) sum += qt.payload_at(key);
    const int want = 2.0 * sum > static_cast<double>(qtrees_->size()) ? 1 : 0;
    ASSERT_EQ(cf.predict_majority(key), want);
  }
}

TEST_F(CompiledForestTest, ConventionalForestPathLengthsExact) {
  ml::IsolationForest iforest;
  ml::Rng rng(29);
  iforest.fit(*train_, rng);
  std::vector<QuantizedTree> qtrees;
  for (const auto& t : iforest.trees()) qtrees.push_back(quantize_tree(t, *quant_));
  const ml::CompiledForest cf = compile_forest(iforest, *quant_);
  ASSERT_EQ(cf.tree_count(), iforest.trees().size());
  ml::Rng probe(31);
  const std::uint32_t domain = quant_->domain_max();
  for (int k = 0; k < 1000; ++k) {
    const auto key = random_key(probe, 3, domain + 8);
    double sum = 0.0;
    for (const auto& qt : qtrees) sum += qt.payload_at(key);
    ASSERT_EQ(cf.payload_sum(key), sum);
  }
}

TEST_F(CompiledForestTest, LevelOrderLayoutInvariants) {
  const ml::CompiledForest cf = compile_forest(*qtrees_);
  const auto roots = cf.roots();
  const auto feats = cf.features();
  const auto kids = cf.children();
  for (std::size_t t = 0; t < roots.size(); ++t) {
    const std::size_t lo = roots[t];
    const std::size_t hi = t + 1 < roots.size() ? roots[t + 1] : cf.node_count();
    ASSERT_LT(lo, hi);  // roots ascend; every tree owns at least one node
    for (std::size_t i = lo; i < hi; ++i) {
      if (feats[i] >= 0) {
        // Level order: children land strictly after their parent, within
        // the same tree's stripe.
        for (const std::int32_t off : {kids[2 * i], kids[2 * i + 1]}) {
          ASSERT_GT(off, 0);
          ASSERT_LT(i + static_cast<std::size_t>(off), hi);
        }
      } else {
        ASSERT_EQ(kids[2 * i], 0);
        ASSERT_EQ(kids[2 * i + 1], 0);
      }
    }
  }
  // Q16 payloads are the rounded fixed-point image of the doubles.
  const auto pay = cf.payloads();
  const auto pay16 = cf.payloads_q16();
  for (std::size_t i = 0; i < cf.node_count(); ++i) {
    ASSERT_EQ(pay16[i], ml::to_q16(pay[i]));
  }
}

TEST_F(CompiledForestTest, AeThresholdsQuantizedPerMember) {
  const auto t = quantize_ae_thresholds(*teacher_);
  ASSERT_EQ(t.size(), teacher_->size());
  for (std::size_t u = 0; u < t.size(); ++u) {
    ASSERT_EQ(t[u], ml::to_q16(teacher_->member_threshold(u)));
    ASSERT_NEAR(ml::from_q16(t[u]), teacher_->member_threshold(u), 1.0 / 65536.0);
  }
}

TEST(CompiledForest, RejectsMalformedInput) {
  ml::CompiledForest cf;
  EXPECT_TRUE(cf.empty());
  EXPECT_THROW(cf.add_tree(std::vector<QuantizedNode>{}, 0), std::invalid_argument);
  std::vector<QuantizedNode> leaf(1);
  leaf[0].payload = 1.0;
  cf.add_tree(leaf, 0);
  std::vector<double> out(1);
  std::vector<std::uint32_t> keys(2);
  EXPECT_THROW(cf.score_batch(keys, 0, out), std::invalid_argument);
  EXPECT_THROW(cf.score_batch(keys, 65, out), std::invalid_argument);
  EXPECT_THROW(cf.score_batch(std::span<const std::uint32_t>(keys.data(), 1), 2, out),
               std::invalid_argument);
}

}  // namespace
}  // namespace iguard::core
