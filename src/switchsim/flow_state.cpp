#include "switchsim/flow_state.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace iguard::switchsim {

namespace {
constexpr std::uint64_t kMaxIpdUs = 1ull << 26;  // ~67 s clamp

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  return a > std::numeric_limits<std::uint64_t>::max() - b
             ? std::numeric_limits<std::uint64_t>::max()
             : a + b;
}
}  // namespace

void IntFlowState::update(const traffic::Packet& p, std::uint64_t flow_sig) {
  const std::uint64_t now = to_us(p.ts);
  const std::uint32_t size = p.length;
  if (pkt_count == 0) {
    sig = flow_sig;
    ft = p.ft;
    first_ts_us = now;
    min_size = max_size = size;
  } else {
    const std::uint64_t gap = std::min(now > last_ts_us ? now - last_ts_us : 0, kMaxIpdUs);
    const std::uint32_t gap32 = static_cast<std::uint32_t>(gap);
    if (pkt_count == 1) {
      min_ipd_us = max_ipd_us = gap32;
    } else {
      min_ipd_us = std::min(min_ipd_us, gap32);
      max_ipd_us = std::max(max_ipd_us, gap32);
    }
    sum_ipd_us = saturating_add(sum_ipd_us, gap);
    sum_sq_ipd_us = saturating_add(sum_sq_ipd_us, gap * gap);
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  total_size += size;
  sum_sq_size = saturating_add(sum_sq_size, static_cast<std::uint64_t>(size) * size);
  last_ts_us = now;
  truth_malicious = truth_malicious || p.malicious;
  ++pkt_count;
}

void IntFlowState::clear_features() {
  const std::int8_t keep_label = label;
  const std::uint64_t keep_sig = sig;
  const traffic::FiveTuple keep_ft = ft;
  *this = IntFlowState{};
  label = keep_label;
  sig = keep_sig;
  ft = keep_ft;
}

std::array<double, kSwitchFlFeatures> IntFlowState::finalize() const {
  const std::uint64_t n = std::max<std::uint32_t>(pkt_count, 1);
  const std::uint64_t gaps = pkt_count > 1 ? pkt_count - 1 : 1;

  // Integer division first — the precision a switch pipeline would have.
  const std::uint64_t mean_size = total_size / n;
  const std::uint64_t mean_sq_size = sum_sq_size / n;
  const std::uint64_t var_size =
      mean_sq_size > mean_size * mean_size ? mean_sq_size - mean_size * mean_size : 0;
  const std::uint64_t mean_ipd = sum_ipd_us / gaps;
  const std::uint64_t mean_sq_ipd = sum_sq_ipd_us / gaps;
  const std::uint64_t var_ipd =
      mean_sq_ipd > mean_ipd * mean_ipd ? mean_sq_ipd - mean_ipd * mean_ipd : 0;
  const std::uint64_t duration_us = last_ts_us > first_ts_us ? last_ts_us - first_ts_us : 0;

  const double us = 1e-6, us2 = 1e-12;
  return {static_cast<double>(pkt_count),
          static_cast<double>(total_size),
          static_cast<double>(mean_size),
          std::sqrt(static_cast<double>(var_size)),
          static_cast<double>(var_size),
          static_cast<double>(min_size),
          static_cast<double>(max_size),
          static_cast<double>(mean_ipd) * us,
          pkt_count > 1 ? static_cast<double>(min_ipd_us) * us : 0.0,
          static_cast<double>(var_ipd) * us2,
          std::sqrt(static_cast<double>(var_ipd)) * us,
          pkt_count > 1 ? static_cast<double>(max_ipd_us) * us : 0.0,
          static_cast<double>(duration_us) * us};
}

features::FlowDataset extract_switch_features(const traffic::Trace& trace,
                                              std::size_t packet_threshold_n,
                                              double idle_timeout_delta_s,
                                              std::size_t min_packets) {
  struct KeyHash {
    std::size_t operator()(const traffic::FiveTuple& ft) const {
      return static_cast<std::size_t>(traffic::bihash(ft));
    }
  };
  struct KeyEq {
    bool operator()(const traffic::FiveTuple& a, const traffic::FiveTuple& b) const {
      return a == b || a == b.reversed();
    }
  };
  std::unordered_map<traffic::FiveTuple, IntFlowState, KeyHash, KeyEq> table;

  features::FlowDataset out;
  out.x = ml::Matrix(0, kSwitchFlFeatures);
  auto emit = [&](const IntFlowState& st) {
    if (st.pkt_count < min_packets) return;
    const auto f = st.finalize();
    out.x.push_row(f);
    out.labels.push_back(st.truth_malicious ? 1 : 0);
  };

  const std::uint64_t delta_us = to_us(idle_timeout_delta_s);
  for (const auto& p : trace.packets) {
    auto& st = table[p.ft];
    const std::uint64_t now = to_us(p.ts);
    if (delta_us > 0 && st.pkt_count > 0 && now > st.last_ts_us &&
        now - st.last_ts_us > delta_us) {
      emit(st);
      st = IntFlowState{};
    }
    st.update(p, traffic::bihash(p.ft));
    if (packet_threshold_n > 0 && st.pkt_count >= packet_threshold_n) {
      emit(st);
      st = IntFlowState{};
    }
  }
  for (const auto& [ft, st] : table) emit(st);
  return out;
}

}  // namespace iguard::switchsim
