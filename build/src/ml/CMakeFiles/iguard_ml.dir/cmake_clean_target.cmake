file(REMOVE_RECURSE
  "libiguard_ml.a"
)
