# Empty dependencies file for iot_campus.
# This may be replaced when dependencies are built.
