#include "harness/testbed_lab.hpp"

#include <algorithm>
#include <limits>

#include "eval/gridsearch.hpp"
#include "io/ingest.hpp"
#include "switchsim/flow_state.hpp"
#include "trafficgen/benign.hpp"

namespace iguard::harness {

namespace {
// Flow-level validation rows for one attack trace under switch extraction.
ml::Matrix switch_fl(const traffic::Trace& t, const TestbedLabConfig& cfg) {
  return switchsim::extract_switch_features(t, cfg.packet_threshold_n, cfg.idle_timeout_delta)
      .x;
}
}  // namespace

TestbedLab::TestbedLab(TestbedLabConfig cfg) : cfg_(std::move(cfg)) {
  ml::Rng rng(cfg_.seed);
  traffic::BenignConfig bcfg;
  bcfg.flows = cfg_.benign_train_flows;
  traffic::Trace train_trace = traffic::benign_trace(bcfg, rng);
  if (cfg_.poison_fraction > 0.0) {
    // Black-box poisoning: the attacker slips unlabeled attack flows into
    // the capture every model trains on (Table 2).
    traffic::AttackConfig pcfg;
    pcfg.flows = static_cast<std::size_t>(cfg_.poison_fraction *
                                          static_cast<double>(cfg_.benign_train_flows));
    traffic::Trace poison = traffic::attack_trace(cfg_.poison_type, pcfg, rng);
    for (auto& p : poison.packets) p.malicious = false;  // unlabeled to the victim
    std::vector<traffic::Trace> parts;
    parts.push_back(std::move(train_trace));
    parts.push_back(std::move(poison));
    train_trace = traffic::merge_traces(std::move(parts));
  }
  bcfg.flows = cfg_.benign_val_flows;
  benign_val_trace_ = traffic::benign_trace(bcfg, rng);
  bcfg.flows = cfg_.benign_test_flows;
  benign_test_trace_ = traffic::benign_trace(bcfg, rng);

  train_fl_ = switch_fl(train_trace, cfg_);
  train_pl_ = features::extract_packet_features(train_trace).x;
  val_benign_fl_ = switch_fl(benign_val_trace_, cfg_);

  teacher_.fit(train_fl_, cfg_.teacher, rng);
  for (const auto& fcfg : cfg_.iforest_grid) {
    iforests_.emplace_back(fcfg);
    iforests_.back().fit(train_fl_, rng);
  }
  fl_quantizer_ = rules::Quantizer(16);
  fl_quantizer_.fit(train_fl_);
}

traffic::Trace TestbedLab::make_attack_trace(traffic::AttackType type,
                                             std::uint64_t salt) const {
  traffic::AttackConfig acfg;
  acfg.flows = cfg_.attack_flows;
  ml::Rng arng(cfg_.seed ^ salt ^ (0xA77Au + 31u * static_cast<std::uint64_t>(type)));
  return traffic::attack_trace(type, acfg, arng);
}

TestbedOutcome TestbedLab::run_attack(traffic::AttackType type) const {
  return run_with_traces(make_attack_trace(type, 0x1111), make_attack_trace(type, 0x2222));
}

switchsim::DeployedModel Deployment::iguard_model() const {
  switchsim::DeployedModel dm;
  dm.fl_tables = &guard->whitelist();
  dm.fl_quantizer = &guard->quantizer();
  dm.pl_tables = guard->has_pl_model() ? &guard->pl_model().whitelist() : nullptr;
  dm.pl_quantizer = guard->has_pl_model() ? &guard->pl_model().quantizer() : nullptr;
  return dm;
}

switchsim::DeployedModel Deployment::iforest_model() const {
  switchsim::DeployedModel dm;
  dm.fl_tables = &iforest_rules;
  dm.fl_quantizer = fl_quantizer;
  return dm;
}

Deployment TestbedLab::deploy_attack(traffic::AttackType type) const {
  return deploy_with_traces(make_attack_trace(type, 0x1111), make_attack_trace(type, 0x2222));
}

Deployment TestbedLab::deploy_with_traces(const traffic::Trace& attack_val,
                                          const traffic::Trace& attack_test) const {
  Deployment dep;

  // --- validation split (flow level, switch features) ----------------------
  ml::Matrix val_x = val_benign_fl_;
  std::vector<int> val_y(val_benign_fl_.rows(), 0);
  const ml::Matrix attack_val_fl = switch_fl(attack_val, cfg_);
  // 20% attack share (as many as available, matching the paper's protocol).
  const std::size_t want = static_cast<std::size_t>(0.25 * static_cast<double>(val_x.rows()));
  for (std::size_t i = 0; i < std::min(want, attack_val_fl.rows()); ++i) {
    val_x.push_row(attack_val_fl.row(i));
    val_y.push_back(1);
  }

  // --- teacher calibration + iGuard selection by §4.2.1 reward -------------
  std::vector<double> base_t(teacher_.size());
  {
    std::vector<double> s(val_x.rows());
    for (std::size_t u = 0; u < teacher_.size(); ++u) {
      for (std::size_t i = 0; i < val_x.rows(); ++i)
        s[i] = teacher_.reconstruction_error(u, val_x.row(i));
      base_t[u] = eval::best_f1_threshold(val_y, s);
    }
  }
  core::IGuardConfig gcfg;
  gcfg.teacher = cfg_.teacher;
  gcfg.forest = cfg_.forest;
  gcfg.pl = cfg_.pl;
  // Deployments install one entry per leaf (unmerged): the controller
  // updates whitelist rules incrementally from benign traffic (Fig. 1,
  // step 12), which needs leaf-granularity entries. Matching semantics are
  // unchanged; only the Table 1 entry counts reflect it.
  gcfg.whitelist.merge_adjacent = false;
  gcfg.pl.whitelist.merge_adjacent = false;

  std::unique_ptr<core::IGuard> guard;
  double best_reward = -std::numeric_limits<double>::infinity();
  for (double scale : cfg_.scale_grid) {
    for (std::size_t u = 0; u < teacher_.size(); ++u)
      teacher_.set_member_threshold(u, base_t[u] * scale);
    auto cand = std::make_unique<core::IGuard>(gcfg);
    ml::Rng crng(cfg_.seed ^ 0x7E57u ^ static_cast<std::uint64_t>(scale * 1000.0));
    cand->fit_with_teacher(train_fl_, train_pl_, teacher_, crng);

    std::vector<int> vp(val_x.rows());
    std::vector<double> vs(val_x.rows());
    for (std::size_t i = 0; i < val_x.rows(); ++i) {
      vp[i] = cand->predict_flow(val_x.row(i));
      vs[i] = cand->vote_fraction(val_x.row(i));
    }
    const auto m = eval::evaluate(val_y, vp, vs);
    switchsim::DeploymentSpec spec;
    spec.fl_rules = &cand->whitelist();
    spec.pl_rules = &cand->pl_model().whitelist();
    spec.flow_slots = cfg_.pipe.flow_slots;
    spec.blacklist_capacity = cfg_.pipe.blacklist_capacity;
    const double rho = switchsim::estimate_resources(spec).rho();
    const double reward =
        eval::deployment_reward(m.macro_f1, m.pr_auc, m.roc_auc, rho, cfg_.reward_alpha);
    if (reward > best_reward) {
      best_reward = reward;
      dep.selected_scale = scale;
      guard = std::move(cand);
    }
  }
  for (std::size_t u = 0; u < teacher_.size(); ++u)
    teacher_.set_member_threshold(u, base_t[u]);

  // --- baseline iForest: calibrate, compile, reward-select (§4.2.1) --------
  core::WhitelistConfig baseline_wl;
  baseline_wl.clip = core::support_clip(train_fl_, fl_quantizer_, 0.0);
  baseline_wl.merge_adjacent = false;  // leaf-granularity entries (see above)
  core::VoteWhitelist baseline_compiled;
  double baseline_best = -std::numeric_limits<double>::infinity();
  for (const auto& candidate : iforests_) {
    ml::IsolationForest model = candidate;  // copy; threshold is per-attack
    std::vector<double> s(val_x.rows());
    for (std::size_t i = 0; i < val_x.rows(); ++i) s[i] = model.anomaly_score(val_x.row(i));
    model.set_threshold(eval::best_f1_threshold(val_y, s));

    core::VoteWhitelist compiled = core::compile_per_tree(model, fl_quantizer_, baseline_wl);
    switchsim::DeploymentSpec spec;
    spec.fl_rules = &compiled;
    spec.flow_slots = cfg_.pipe.flow_slots;
    spec.blacklist_capacity = cfg_.pipe.blacklist_capacity;
    const auto res = switchsim::estimate_resources(spec);
    if (res.tcam_frac > cfg_.max_tcam_fraction) continue;  // does not fit

    std::vector<int> vp(val_x.rows());
    std::vector<double> vs(val_x.rows());
    for (std::size_t i = 0; i < val_x.rows(); ++i) {
      const auto key = fl_quantizer_.quantize(val_x.row(i));
      vp[i] = compiled.classify(key);
      vs[i] = compiled.malicious_vote_fraction(key);
    }
    const auto m = eval::evaluate(val_y, vp, vs);
    const double reward =
        eval::deployment_reward(m.macro_f1, m.pr_auc, m.roc_auc, res.rho(), cfg_.reward_alpha);
    if (reward > baseline_best) {
      baseline_best = reward;
      baseline_compiled = std::move(compiled);
    }
  }

  // --- package the deployment ----------------------------------------------
  {
    std::vector<traffic::Trace> parts;
    parts.push_back(benign_test_trace_);
    parts.push_back(attack_test);
    dep.test_trace = traffic::merge_traces(std::move(parts));
  }
  dep.guard = std::move(guard);
  dep.iforest_rules = std::move(baseline_compiled);
  dep.fl_quantizer = &fl_quantizer_;
  return dep;
}

TestbedOutcome TestbedLab::run_with_traces(const traffic::Trace& attack_val,
                                           const traffic::Trace& attack_test) const {
  Deployment dep = deploy_with_traces(attack_val, attack_test);
  // Replay input crosses the hardened ingest boundary: anything a generator
  // or future file loader hands us is validated, with invalid packets
  // quarantined instead of reaching the pipeline. Valid traces pass through
  // untouched, so faithful runs stay byte-identical.
  {
    io::IngestResult ingest = io::ingest_trace(dep.test_trace);
    dep.test_trace = std::move(ingest.trace);
  }
  TestbedOutcome out;
  out.selected_scale = dep.selected_scale;
  for (const auto& p : dep.test_trace.packets) out.offered_bytes += p.length;
  out.trace_duration_s = dep.test_trace.duration();

  switchsim::Pipeline pipe_iguard(cfg_.pipe, dep.iguard_model());
  switchsim::Pipeline pipe_iforest(cfg_.pipe, dep.iforest_model());
  out.iguard_stats = pipe_iguard.run(dep.test_trace);
  out.iforest_stats = pipe_iforest.run(dep.test_trace);

  auto packet_metrics = [](const switchsim::SimStats& st) {
    std::vector<int> truth(st.truth.begin(), st.truth.end());
    std::vector<int> pred(st.pred.begin(), st.pred.end());
    std::vector<double> score(st.pred.begin(), st.pred.end());
    return eval::evaluate(truth, pred, score);
  };
  out.iguard = packet_metrics(out.iguard_stats);
  out.iforest = packet_metrics(out.iforest_stats);

  // --- resources (Table 1) --------------------------------------------------
  {
    switchsim::DeploymentSpec spec;
    spec.fl_rules = &dep.guard->whitelist();
    spec.pl_rules = &dep.guard->pl_model().whitelist();
    spec.flow_slots = cfg_.pipe.flow_slots;
    spec.blacklist_capacity = cfg_.pipe.blacklist_capacity;
    spec.vliw_slots = 31;  // + early-packet table action vs the baseline
    out.iguard_res = switchsim::estimate_resources(spec);
    out.iguard_fl_rules = dep.guard->whitelist().total_rules();
  }
  {
    switchsim::DeploymentSpec spec;
    spec.fl_rules = &dep.iforest_rules;
    spec.flow_slots = cfg_.pipe.flow_slots;
    spec.blacklist_capacity = cfg_.pipe.blacklist_capacity;
    out.iforest_res = switchsim::estimate_resources(spec);
    out.iforest_fl_rules = dep.iforest_rules.total_rules();
  }
  return out;
}

}  // namespace iguard::harness
