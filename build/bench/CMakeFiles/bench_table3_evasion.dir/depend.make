# Empty dependencies file for bench_table3_evasion.
# This may be replaced when dependencies are built.
