file(REMOVE_RECURSE
  "CMakeFiles/iguard_harness.dir/cpu_lab.cpp.o"
  "CMakeFiles/iguard_harness.dir/cpu_lab.cpp.o.d"
  "CMakeFiles/iguard_harness.dir/testbed_lab.cpp.o"
  "CMakeFiles/iguard_harness.dir/testbed_lab.cpp.o.d"
  "libiguard_harness.a"
  "libiguard_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iguard_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
