// Fuzz target: io::TraceReader on arbitrary bytes, auto-detected format.
// The hardened-ingest contract under attack:
//   - never throws, never crashes, never trips a sanitizer;
//   - conservation: offered == accepted + quarantined (per category);
//   - the emitted trace holds exactly `accepted` packets, every one schema-
//     clean, with monotone non-negative timestamps;
//   - the quarantine ring never exceeds its capacity.
// Violations abort() so the driver (or libFuzzer) flags the input.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "io/ingest.hpp"

namespace {

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_trace_reader: invariant violated: %s\n", what);
    std::abort();
  }
}

void run(std::string_view bytes, iguard::io::TraceFormat fmt) {
  iguard::io::TraceReaderConfig cfg;
  cfg.format = fmt;
  cfg.limits.max_record_bytes = 1 << 16;
  cfg.limits.quarantine_capacity = 8;
  const iguard::io::TraceReader reader(cfg);
  const iguard::io::IngestResult r = reader.read_buffer(bytes);

  check(r.stats.conserved(), "offered != accepted + quarantined");
  check(r.trace.size() == r.stats.accepted, "trace size != accepted");
  check(r.quarantine.size() <= cfg.limits.quarantine_capacity, "quarantine over capacity");
  double prev = 0.0;
  for (const auto& p : r.trace.packets) {
    check(iguard::io::packet_violation(p).empty(), "schema-dirty packet accepted");
    check(p.ts >= prev, "timestamps not monotone");
    prev = p.ts;
  }
  if (!r.container_ok) {
    check(r.stats.by_category[static_cast<std::size_t>(
              iguard::io::IngestErrorCategory::kContainer)] > 0,
          "container failure without kContainer accounting");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  run(bytes, iguard::io::TraceFormat::kAuto);
  // Force both parsers over the same bytes: auto-detection must not be the
  // only thing standing between a parser and input it cannot survive.
  run(bytes, iguard::io::TraceFormat::kCsv);
  run(bytes, iguard::io::TraceFormat::kPcap);
  return 0;
}
