// Early-packet protection (§3.3.1, "Early packets are ignored"): flow-level
// features only become reliable after n packets, so a *conventional* iForest
// is trained on the packet-level (PL) features of flows' first packets
// {dst_port, proto, length, TTL}, compiled to whitelist rules through the
// same path-length machinery, and those rules guard packets 1..n-1 (the
// brown path of Fig. 4) until the FL verdict is available.
#pragma once

#include "core/whitelist.hpp"
#include "ml/iforest.hpp"
#include "rules/quantize.hpp"
#include "rules/rule_table.hpp"

namespace iguard::core {

struct PlModelConfig {
  ml::IsolationForestConfig forest{.num_trees = 5, .subsample = 32, .contamination = 0.04};
  unsigned quantizer_bits = 16;
  WhitelistConfig whitelist{};
  /// Clip compiled rules to the benign training support (a whitelist must
  /// not admit, say, destination ports no benign flow ever used). The trim
  /// makes the 4-dim PL support robust to training-set poisoning (Table 2).
  bool clip_to_support = true;
  double support_trim = 0.02;
};

class PlModel {
 public:
  explicit PlModel(PlModelConfig cfg = {}) : cfg_(cfg) {}

  /// Train on benign early-packet PL feature rows and compile rules.
  void fit(const ml::Matrix& benign_pl, ml::Rng& rng);

  bool fitted() const { return quantizer_.fitted(); }

  /// Whitelist verdict on one packet's PL features: 0 benign, 1 malicious.
  int classify(std::span<const double> pl_features) const;

  const VoteWhitelist& whitelist() const { return whitelist_; }
  const rules::Quantizer& quantizer() const { return quantizer_; }
  const ml::IsolationForest& forest() const { return forest_; }

 private:
  PlModelConfig cfg_;
  ml::IsolationForest forest_{ml::IsolationForestConfig{}};
  rules::Quantizer quantizer_;
  VoteWhitelist whitelist_;
};

}  // namespace iguard::core
