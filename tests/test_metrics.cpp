#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace iguard::eval {
namespace {

TEST(Confusion, CountsCells) {
  const std::vector<int> truth = {1, 1, 0, 0, 1, 0};
  const std::vector<int> pred = {1, 0, 0, 1, 1, 0};
  const Confusion c = confusion(truth, pred);
  EXPECT_EQ(c.tp, 2u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 2u);
  EXPECT_NEAR(c.accuracy(), 4.0 / 6.0, 1e-12);
}

TEST(MacroF1, PerfectPrediction) {
  const std::vector<int> t = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(macro_f1(t, t), 1.0);
}

TEST(MacroF1, HandComputed) {
  // tp=2 fn=1 fp=1 tn=2: F1(1) = 2*2/(4+1+1)=2/3; F1(0) = 2*2/(4+1+1)=2/3.
  const std::vector<int> truth = {1, 1, 0, 0, 1, 0};
  const std::vector<int> pred = {1, 0, 0, 1, 1, 0};
  EXPECT_NEAR(macro_f1(truth, pred), 2.0 / 3.0, 1e-12);
}

TEST(MacroF1, AllOnePredictionPenalisesOtherClass) {
  const std::vector<int> truth = {1, 1, 0, 0};
  const std::vector<int> pred = {1, 1, 1, 1};
  // F1(1) = 2*2/(4+2) = 2/3, F1(0) = 0 -> macro 1/3.
  EXPECT_NEAR(macro_f1(truth, pred), 1.0 / 3.0, 1e-12);
}

TEST(RocAuc, PerfectSeparation) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<double> score = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(roc_auc(truth, score), 1.0);
}

TEST(RocAuc, ReversedScoresGiveZero) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<double> score = {0.9, 0.8, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(roc_auc(truth, score), 0.0);
}

TEST(RocAuc, ConstantScoresGiveHalf) {
  const std::vector<int> truth = {0, 1, 0, 1};
  const std::vector<double> score = {0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(roc_auc(truth, score), 0.5);
}

TEST(RocAuc, HandComputedWithTie) {
  // scores: pos {0.8, 0.5}, neg {0.5, 0.2}. Pairs: (0.8>0.5)=1, (0.8>0.2)=1,
  // (0.5=0.5)=0.5, (0.5>0.2)=1 -> AUC = 3.5/4.
  const std::vector<int> truth = {1, 1, 0, 0};
  const std::vector<double> score = {0.8, 0.5, 0.5, 0.2};
  EXPECT_NEAR(roc_auc(truth, score), 3.5 / 4.0, 1e-12);
}

TEST(RocAuc, InvariantToMonotoneTransform) {
  const std::vector<int> truth = {0, 1, 0, 1, 1, 0, 1, 0};
  std::vector<double> score = {0.1, 0.7, 0.3, 0.9, 0.6, 0.2, 0.4, 0.5};
  const double base = roc_auc(truth, score);
  for (auto& s : score) s = std::exp(3.0 * s);  // strictly increasing
  EXPECT_NEAR(roc_auc(truth, score), base, 1e-12);
}

TEST(PrAuc, PerfectSeparation) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<double> score = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(pr_auc(truth, score), 1.0);
}

TEST(PrAuc, NoPositivesIsZero) {
  const std::vector<int> truth = {0, 0, 0};
  const std::vector<double> score = {0.1, 0.2, 0.3};
  EXPECT_DOUBLE_EQ(pr_auc(truth, score), 0.0);
}

TEST(PrAuc, HandComputed) {
  // Ranking desc: (0.9,pos) (0.8,neg) (0.7,pos) (0.1,neg).
  // AP = 1/2*(1/1) + 1/2*(2/3) = 0.8333...
  const std::vector<int> truth = {1, 0, 1, 0};
  const std::vector<double> score = {0.9, 0.8, 0.7, 0.1};
  EXPECT_NEAR(pr_auc(truth, score), (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(EvaluateScores, ThresholdSplitsPredictions) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<double> score = {0.1, 0.4, 0.6, 0.9};
  const auto m = evaluate_scores(truth, score, 0.5);
  EXPECT_DOUBLE_EQ(m.macro_f1, 1.0);
  EXPECT_DOUBLE_EQ(m.roc_auc, 1.0);
  EXPECT_DOUBLE_EQ(m.pr_auc, 1.0);
}

TEST(Metrics, SizeMismatchThrows) {
  const std::vector<int> truth = {0, 1};
  const std::vector<double> score = {0.1};
  EXPECT_THROW(roc_auc(truth, score), std::invalid_argument);
  EXPECT_THROW(pr_auc(truth, score), std::invalid_argument);
}

}  // namespace
}  // namespace iguard::eval
