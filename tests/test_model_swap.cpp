// core/model_swap.hpp: versioned bundles, the hazard-slot publication
// protocol, windowed drift detection, and the rebuilders — plus the
// regression test for the stale compiled-whitelist skew the subsystem
// exists to remove (a PR 3 compiled engine could disagree with the linear
// tables after an in-place online update).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/model_swap.hpp"
#include "core/online_update.hpp"

namespace iguard::core {
namespace {

/// Three 2-field tables around the same region; table 2 is narrower, so a
/// borderline benign key is majority-benign but misses table 2 (same shape
/// as the online-update tests).
VoteWhitelist make_whitelist() {
  VoteWhitelist wl;
  wl.tree_count = 3;
  for (std::uint32_t hi : {100u, 100u, 80u}) {
    wl.tables.emplace_back(std::vector<rules::RangeRule>{
        {std::vector<rules::FieldRange>{{10, hi}, {10, hi}}, 0, 0}});
  }
  return wl;
}

std::shared_ptr<const ModelBundle> bundle_v(std::uint64_t version) {
  return build_bundle(version, make_whitelist(), rules::Quantizer{16});
}

// --- ModelBundle / build_bundle -------------------------------------------

TEST(ModelBundle, BuildCompilesEnginesInAgreement) {
  const auto b = bundle_v(1);
  EXPECT_EQ(b->version, 1u);
  EXPECT_FALSE(b->has_pl());
  for (std::uint32_t x : {0u, 10u, 50u, 80u, 90u, 100u, 120u}) {
    for (std::uint32_t y : {0u, 50u, 90u, 120u}) {
      const std::uint32_t key[2] = {x, y};
      EXPECT_EQ(b->fl_compiled.classify(key), b->fl.classify(key)) << x << "," << y;
    }
  }
}

TEST(ModelBundle, PlStageCompiledWhenPresent) {
  const auto b = build_bundle(3, make_whitelist(), rules::Quantizer{16}, make_whitelist(),
                              rules::Quantizer{16});
  EXPECT_TRUE(b->has_pl());
  const std::uint32_t key[2] = {50, 50};
  EXPECT_EQ(b->pl_compiled.classify(key), b->pl.classify(key));
}

// --- ModelHandle -----------------------------------------------------------

TEST(ModelHandle, PinReturnsCurrentAndPublishSwaps) {
  ModelHandle h(bundle_v(1));
  const std::size_t r = h.register_reader();
  EXPECT_EQ(h.version(), 1u);
  EXPECT_EQ(h.pin(r)->version, 1u);
  EXPECT_EQ(h.publish(bundle_v(2)), 2u);
  EXPECT_EQ(h.swaps(), 1u);
  EXPECT_EQ(h.pin(r)->version, 2u);
  EXPECT_EQ(h.collect(), 1u);  // reader moved past v1
  EXPECT_EQ(h.retired_pending(), 0u);
}

TEST(ModelHandle, PublishRequiresIncreasingVersion) {
  ModelHandle h(bundle_v(2));
  EXPECT_THROW(h.publish(bundle_v(2)), std::invalid_argument);
  EXPECT_THROW(h.publish(bundle_v(1)), std::invalid_argument);
  EXPECT_THROW(h.publish(nullptr), std::invalid_argument);
}

TEST(ModelHandle, StickyPinKeepsRetiredVersionAlive) {
  ModelHandle h(bundle_v(1));
  const std::size_t r = h.register_reader();
  const ModelBundle* pinned = h.pin(r);
  h.publish(bundle_v(2));
  // The reader has not re-pinned: v1 must survive collect() and stay
  // dereferenceable (this is the hitless-swap guarantee).
  EXPECT_EQ(h.collect(), 0u);
  EXPECT_EQ(h.retired_pending(), 1u);
  EXPECT_EQ(pinned->version, 1u);
  EXPECT_EQ(h.pin(r)->version, 2u);
  EXPECT_EQ(h.collect(), 1u);
}

TEST(ModelHandle, QuiesceReleasesThePin) {
  ModelHandle h(bundle_v(1));
  const std::size_t r = h.register_reader();
  h.pin(r);
  h.publish(bundle_v(2));
  h.quiesce(r);
  EXPECT_EQ(h.collect(), 1u);
  // Re-pinning after quiesce is allowed.
  EXPECT_EQ(h.pin(r)->version, 2u);
}

TEST(ModelHandle, ManyReadersEachHoldTheirOwnPin) {
  ModelHandle h(bundle_v(1));
  const std::size_t r0 = h.register_reader();
  const std::size_t r1 = h.register_reader();
  h.pin(r0);
  h.pin(r1);
  h.publish(bundle_v(2));
  h.pin(r0);                   // r0 moves on, r1 still guards v1
  EXPECT_EQ(h.collect(), 0u);
  h.pin(r1);
  EXPECT_EQ(h.collect(), 1u);
}

TEST(ModelHandle, ConcurrentReadersNeverSeeAFreedBundle) {
  ModelHandle h(bundle_v(1));
  constexpr int kReaders = 4;
  std::vector<std::size_t> slots;
  for (int i = 0; i < kReaders; ++i) slots.push_back(h.register_reader());
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> max_seen{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kReaders; ++i) {
    threads.emplace_back([&, i] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const ModelBundle* b = h.pin(slots[i]);
        // Dereference under the pin: versions must be monotone per reader
        // and the tables always consistent with the bundle's version.
        const std::uint64_t v = b->version;
        ASSERT_GE(v, last);
        ASSERT_EQ(b->fl.tree_count, 3u);
        last = v;
        std::uint64_t m = max_seen.load(std::memory_order_relaxed);
        while (v > m && !max_seen.compare_exchange_weak(m, v)) {
        }
      }
      h.quiesce(slots[i]);
    });
  }
  for (std::uint64_t v = 2; v <= 64; ++v) {
    h.publish(bundle_v(v));
    h.collect();
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  while (h.retired_pending() > 0) h.collect();
  EXPECT_EQ(h.version(), 64u);
  EXPECT_GE(max_seen.load(), 2u);  // readers observed at least one swap
}

// --- DriftDetector ---------------------------------------------------------

TEST(DriftDetector, CalibratesThenFiresOnMissRate) {
  DriftConfig cfg;
  cfg.window = 4;
  cfg.baseline_windows = 1;
  cfg.miss_rate_margin = 0.10;
  DriftDetector d(cfg);
  // Baseline window: fully covered traffic.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(d.observe(0.0, true, 0), DriftSignal::kNone);
  }
  EXPECT_TRUE(d.calibrated());
  EXPECT_DOUBLE_EQ(d.baseline_miss_rate(), 0.0);
  // Drifted window: every key misses a third of the tables.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(d.observe(1.0 / 3.0, false, 0), DriftSignal::kNone);
  }
  EXPECT_EQ(d.observe(1.0 / 3.0, false, 0), DriftSignal::kMissRate);
  EXPECT_EQ(d.fires(), 1u);
  EXPECT_DOUBLE_EQ(d.last_window_miss_rate(), 1.0);
}

TEST(DriftDetector, FiresOnVoteShiftWhenMissRateIsStable) {
  DriftConfig cfg;
  cfg.window = 4;
  cfg.vote_shift = 0.08;
  DriftDetector d(cfg);
  // Baseline: all keys miss one of three tables (miss rate 1.0, vote 1/3).
  for (int i = 0; i < 4; ++i) d.observe(1.0 / 3.0, false, 0);
  ASSERT_TRUE(d.calibrated());
  // Vote share shifts to 2/3 while the miss rate stays saturated at 1.0:
  // the miss-rate rule cannot fire (1.0 is not above 1.0 + margin), the
  // score-distribution shift must.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(d.observe(2.0 / 3.0, false, 0), DriftSignal::kNone);
  EXPECT_EQ(d.observe(2.0 / 3.0, false, 0), DriftSignal::kVoteShift);
}

TEST(DriftDetector, FiresOnRejectedByBudgetSlope) {
  DriftConfig cfg;
  cfg.window = 4;
  cfg.rejected_slope = 4;
  DriftDetector d(cfg);
  for (int i = 0; i < 4; ++i) d.observe(0.0, true, 0);  // calibrate
  // Budget-valve pressure: rejected grows by 4 within one window while the
  // whitelist still covers everything it sees.
  d.observe(0.0, true, 1);
  d.observe(0.0, true, 2);
  d.observe(0.0, true, 3);
  EXPECT_EQ(d.observe(0.0, true, 4), DriftSignal::kRejectedSlope);
}

TEST(DriftDetector, ResetRecalibratesAndHonoursCooldown) {
  DriftConfig cfg;
  cfg.window = 2;
  cfg.cooldown_windows = 1;
  cfg.miss_rate_margin = 0.10;
  DriftDetector d(cfg);
  d.reset();  // as the swap loop does after a publish
  // Cooldown window: extreme values must be ignored entirely.
  EXPECT_EQ(d.observe(1.0, false, 0), DriftSignal::kNone);
  EXPECT_EQ(d.observe(1.0, false, 0), DriftSignal::kNone);
  EXPECT_FALSE(d.calibrated());
  // Next window calibrates the baseline (post-swap normal: no misses).
  d.observe(0.0, true, 0);
  d.observe(0.0, true, 0);
  EXPECT_TRUE(d.calibrated());
  // And a drifted window now fires against the fresh baseline.
  d.observe(1.0, false, 0);
  EXPECT_EQ(d.observe(1.0, false, 0), DriftSignal::kMissRate);
}

TEST(DriftDetector, DisabledDetectorNeverFires) {
  DriftConfig cfg;
  cfg.enabled = false;
  cfg.window = 1;
  DriftDetector d(cfg);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(d.observe(1.0, false, 100), DriftSignal::kNone);
  EXPECT_EQ(d.windows_closed(), 0u);
}

// --- the stale compiled-whitelist skew (regression) ------------------------

TEST(ModelSwapRegression, InPlaceUpdateSkewsCompiledEngineVersionedSwapDoesNot) {
  // Single-tree whitelist: [10,80]^2. The borderline benign key {90,90}
  // misses it until an online extension stretches the rule.
  VoteWhitelist wl;
  wl.tree_count = 1;
  wl.tables.emplace_back(std::vector<rules::RangeRule>{
      {std::vector<rules::FieldRange>{{10, 80}, {10, 80}}, 0, 0}});
  const std::uint32_t key[2] = {90, 90};

  // Pre-fix deployment shape: compile once (as Pipeline construction did),
  // then let the updater mutate the linear tables in place. The compiled
  // engine is a snapshot — it cannot observe the mutation, and the two
  // engines now disagree on the extended key. This is the bug.
  CompiledVoteWhitelist compiled_once(wl);
  WhitelistUpdater upd(wl, {.max_extension_per_field = 15, .max_updates = 100});
  EXPECT_EQ(upd.observe_benign(key), 1u);
  EXPECT_EQ(wl.classify(key), 0);             // linear tables learned the key
  EXPECT_EQ(compiled_once.classify(key), 1);  // stale snapshot still rejects it

  // Fixed path: updates land in a staging copy, and a *versioned* bundle is
  // built from it — tables and compiled engine are rebuilt together, so no
  // observer can ever see them disagree.
  ModelHandle h(build_bundle(1, VoteWhitelist{wl.tables, 1}, rules::Quantizer{16}));
  const std::size_t r = h.register_reader();
  VoteWhitelist staging = h.current()->fl;
  RebuildInput in;
  in.current = h.current();
  in.staging_fl = &staging;
  in.new_version = 2;
  h.publish(recompile_rebuilder()(in));
  const ModelBundle* b = h.pin(r);
  EXPECT_EQ(b->version, 2u);
  EXPECT_EQ(b->fl.classify(key), b->fl_compiled.classify(key));
  EXPECT_EQ(b->fl_compiled.classify(key), 0);
}

// --- rebuilders ------------------------------------------------------------

TEST(Rebuilders, RecompileAdoptsStagingAndCarriesQuantizers) {
  ModelHandle h(bundle_v(1));
  VoteWhitelist staging = h.current()->fl;
  WhitelistUpdater upd(staging, {.max_extension_per_field = 15, .max_updates = 100});
  const std::uint32_t key[2] = {90, 90};
  upd.observe_benign(key);  // stretches staging table 2 to cover {90,90}
  RebuildInput in;
  in.current = h.current();
  in.staging_fl = &staging;
  in.new_version = 2;
  const auto b = recompile_rebuilder()(in);
  EXPECT_EQ(b->version, 2u);
  EXPECT_EQ(b->fl_compiled.classify(key), 0);
  EXPECT_EQ(b->fl.classify(key), 0);
  EXPECT_EQ(b->fl_q.field_count(), in.current->fl_q.field_count());
}

TEST(Rebuilders, DistillFallsBackToRecompileBelowMinRows) {
  AeEnsemble teacher;  // never consulted on the fallback path
  ModelHandle h(bundle_v(1));
  VoteWhitelist staging = h.current()->fl;
  WhitelistUpdater upd(staging, {.max_extension_per_field = 15, .max_updates = 100});
  const std::uint32_t key[2] = {90, 90};
  upd.observe_benign(key);
  ml::Matrix recent(0, 2);  // nothing retained
  RebuildInput in;
  in.current = h.current();
  in.staging_fl = &staging;
  in.recent = &recent;
  in.new_version = 2;
  const auto b = distill_rebuilder(teacher, {}, {}, 64, 7)(in);
  EXPECT_EQ(b->version, 2u);
  EXPECT_EQ(b->fl_compiled.classify(key), 0);  // staging extension adopted
}

TEST(Rebuilders, DistillRefitsForestOnRecentRowsDeterministically) {
  // 2-D benign manifold (y = x); a light AE teacher suffices — the point
  // here is the plumbing (fit under the deployed quantizer, robust clip to
  // the recent rows, per-tree compile), not detection quality.
  ml::Rng rng(17);
  ml::Matrix recent(0, 2);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.normal(0.0, 1.0);
    const double row[2] = {x, x + rng.normal(0.0, 0.1)};
    recent.push_row(row);
  }
  AeEnsemble teacher;
  AeEnsembleConfig tc;
  tc.ensemble_size = 1;
  tc.base.encoder_hidden = {4, 1};
  tc.base.epochs = 20;
  teacher.fit(recent, tc, rng);

  rules::Quantizer q{16};
  ml::Matrix span(2, 2);
  span(0, 0) = -6.0; span(0, 1) = -6.0;
  span(1, 0) = 6.0; span(1, 1) = 6.0;
  q.fit(span);
  VoteWhitelist initial;
  initial.tree_count = 1;
  initial.tables.emplace_back(std::vector<rules::RangeRule>{
      {std::vector<rules::FieldRange>{{0, q.domain_max()}, {0, q.domain_max()}}, 0, 0}});
  ModelHandle h(build_bundle(1, std::move(initial), q));
  VoteWhitelist staging = h.current()->fl;
  RebuildInput in;
  in.current = h.current();
  in.staging_fl = &staging;
  in.recent = &recent;
  in.new_version = 2;
  GuidedForestConfig fc;
  fc.num_trees = 3;
  fc.subsample = 128;
  fc.augment = 32;
  auto rebuild = distill_rebuilder(teacher, fc, {}, 64, 7);
  const auto a = rebuild(in);
  const auto b = rebuild(in);
  ASSERT_EQ(a->version, 2u);
  ASSERT_EQ(a->fl.tables.size(), 3u);  // genuinely refit, not the fallback
  // Bit-identical across invocations: the seed + version fix the RNG.
  ASSERT_EQ(b->fl.tables.size(), a->fl.tables.size());
  for (std::size_t t = 0; t < a->fl.tables.size(); ++t) {
    EXPECT_EQ(b->fl.tables[t].rules(), a->fl.tables[t].rules()) << "table " << t;
  }
  // Compiled engine agrees with the refit tables everywhere we probe.
  ml::Rng probe(99);
  for (int i = 0; i < 200; ++i) {
    const double x[2] = {probe.uniform(-6.0, 6.0), probe.uniform(-6.0, 6.0)};
    const auto key = q.quantize(x);
    EXPECT_EQ(a->fl_compiled.classify(key), a->fl.classify(key));
  }
}

}  // namespace
}  // namespace iguard::core
