#include "daemon/source.hpp"

#include <cerrno>
#include <unistd.h>

#include "trafficgen/pcap_io.hpp"

namespace iguard::daemon {

namespace {

std::uint32_t le32(const std::string& s, std::size_t at) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[at])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[at + 1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[at + 2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[at + 3])) << 24;
}

}  // namespace

FileTail::~FileTail() {
  if (f_ != nullptr) std::fclose(f_);
}

bool FileTail::open(const std::string& path) {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
  f_ = std::fopen(path.c_str(), "rb");
  if (f_ == nullptr) {
    error_ = "cannot open " + path;
    return false;
  }
  error_.clear();
  return true;
}

std::size_t FileTail::read_some(std::string& out, std::size_t max_bytes) {
  if (f_ == nullptr || max_bytes == 0) return 0;
  // The EOF flag on a FILE* is sticky; clear it so follow mode picks up
  // bytes appended after a previous short read.
  std::clearerr(f_);
  const std::size_t old = out.size();
  out.resize(old + max_bytes);
  const std::size_t n = std::fread(out.data() + old, 1, max_bytes, f_);
  out.resize(old + n);
  return n;
}

void FileTail::rewind() {
  if (f_ != nullptr) {
    std::fseek(f_, 0, SEEK_SET);
    std::clearerr(f_);
  }
}

std::size_t FdSource::read_some(std::string& out, std::size_t max_bytes) {
  if (fd_ < 0 || eof_ || max_bytes == 0) return 0;
  const std::size_t old = out.size();
  out.resize(old + max_bytes);
  const ssize_t n = ::read(fd_, out.data() + old, max_bytes);
  if (n > 0) {
    out.resize(old + static_cast<std::size_t>(n));
    return static_cast<std::size_t>(n);
  }
  out.resize(old);
  if (n == 0) {
    eof_ = true;  // peer closed / end of stdin
  } else if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
    eof_ = true;  // hard read error ends the source; the framer flushes
  }
  return 0;
}

void RecordFramer::feed(std::string_view bytes) { pending_.append(bytes); }

bool RecordFramer::detect() {
  if (wire_ != Wire::kUnknown) return true;
  if (pending_.size() < 4) return false;
  if (le32(pending_, 0) == traffic::kPcapMagicLE) {
    if (pending_.size() < traffic::kPcapGlobalHeaderLen) return false;
    wire_ = Wire::kPcap;
    header_.assign(pending_, 0, traffic::kPcapGlobalHeaderLen);
    cursor_ = traffic::kPcapGlobalHeaderLen;
    return true;
  }
  // Anything without the little-endian pcap magic frames as CSV — the same
  // fallback TraceReader's auto-detection applies, so a genuinely damaged
  // container reaches the reader and is accounted there, not guessed at
  // here. The header is the first complete line.
  const std::size_t eol = pending_.find('\n');
  if (eol == std::string::npos) return false;
  wire_ = Wire::kCsv;
  header_.assign(pending_, 0, eol + 1);
  cursor_ = eol + 1;
  return true;
}

void RecordFramer::compact() {
  if (cursor_ > (1u << 16) && cursor_ * 2 > pending_.size()) {
    pending_.erase(0, cursor_);
    cursor_ = 0;
  }
}

std::size_t RecordFramer::take_batch(std::string& out, std::size_t max_records) {
  out.clear();
  if (fatal_ || !detect()) return 0;
  std::size_t n = 0;
  std::size_t end = cursor_;
  if (wire_ == Wire::kCsv) {
    while (n < max_records) {
      const std::size_t eol = pending_.find('\n', end);
      if (eol == std::string::npos) break;
      end = eol + 1;
      ++n;
    }
  } else {
    while (n < max_records) {
      if (pending_.size() - end < traffic::kPcapRecordHeaderLen) break;
      const std::uint32_t incl = le32(pending_, end + 8);
      if (incl > max_record_bytes_) {
        // An untrusted length beyond the ingest limit: advancing by it
        // would desynchronise every later record boundary. Stop framing;
        // take_tail() hands the residue to the reader for accounting.
        fatal_ = true;
        break;
      }
      const std::size_t total = traffic::kPcapRecordHeaderLen + incl;
      if (pending_.size() - end < total) break;
      end += total;
      ++n;
    }
  }
  if (n == 0) return 0;
  out.reserve(header_.size() + (end - cursor_));
  out.append(header_);
  out.append(pending_, cursor_, end - cursor_);
  cursor_ = end;
  compact();
  return n;
}

std::size_t RecordFramer::take_tail(std::string& out) {
  out.clear();
  const std::size_t rest = pending_.size() - cursor_;
  if (rest > 0) {
    if (wire_ != Wire::kUnknown) out.append(header_);
    out.append(pending_, cursor_, rest);
  }
  pending_.clear();
  cursor_ = 0;
  return out.size();
}

void RecordFramer::reset() {
  wire_ = Wire::kUnknown;
  fatal_ = false;
  header_.clear();
  pending_.clear();
  cursor_ = 0;
}

}  // namespace iguard::daemon
