#include "core/ae_ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/parallel.hpp"

namespace iguard::core {

void AeEnsemble::fit(const ml::Matrix& benign, const AeEnsembleConfig& cfg, ml::Rng& rng) {
  if (cfg.ensemble_size == 0) throw std::invalid_argument("AeEnsemble: r must be >= 1");
  aes_.clear();
  thresholds_.clear();
  // Fork all member RNGs sequentially first: the forks consume the parent
  // stream in a fixed order, so training the members in parallel afterwards
  // produces bit-identical ensembles at every thread count.
  std::vector<ml::Rng> children;
  children.reserve(cfg.ensemble_size);
  for (std::size_t u = 0; u < cfg.ensemble_size; ++u) children.push_back(rng.fork());

  aes_.resize(cfg.ensemble_size);
  thresholds_.assign(cfg.ensemble_size, 0.0);
  ml::ThreadPool pool(std::min(ml::resolve_threads(cfg.num_threads), cfg.ensemble_size));
  pool.parallel_for(cfg.ensemble_size, [&](std::size_t u) {
    auto ae = std::make_unique<ml::Autoencoder>(cfg.base);
    ae->fit(benign, children[u]);
    thresholds_[u] = ae->threshold() * cfg.threshold_scale;
    aes_[u] = std::move(ae);
  });
  weights_.assign(aes_.size(), 1.0 / static_cast<double>(aes_.size()));
}

double AeEnsemble::reconstruction_error(std::size_t u, std::span<const double> x) const {
  return aes_.at(u)->reconstruction_error(x);
}

ml::Matrix AeEnsemble::reconstruction_errors(const ml::Matrix& x,
                                             std::size_t num_threads) const {
  ml::Matrix out(x.rows(), aes_.size());
  ml::ThreadPool pool(ml::resolve_threads(num_threads));
  pool.parallel_for(x.rows(), [&](std::size_t i) {
    auto row = out.row(i);
    for (std::size_t u = 0; u < aes_.size(); ++u) {
      row[u] = aes_[u]->reconstruction_error(x.row(i));
    }
  });
  return out;
}

std::vector<int> AeEnsemble::predict_batch(const ml::Matrix& x,
                                           std::size_t num_threads) const {
  std::vector<int> out(x.rows(), 0);
  ml::ThreadPool pool(ml::resolve_threads(num_threads));
  pool.parallel_for(x.rows(), [&](std::size_t i) { out[i] = predict(x.row(i)); });
  return out;
}

int AeEnsemble::predict(std::span<const double> x) const {
  double vote = 0.0;
  for (std::size_t u = 0; u < aes_.size(); ++u) {
    if (reconstruction_error(u, x) > thresholds_[u]) vote += weights_[u];
  }
  return vote > 0.5 ? 1 : 0;
}

int AeEnsemble::vote_from_errors(std::span<const double> per_member_errors) const {
  if (per_member_errors.size() != aes_.size()) {
    throw std::invalid_argument("vote_from_errors: size mismatch");
  }
  double vote = 0.0;
  for (std::size_t u = 0; u < aes_.size(); ++u) {
    if (per_member_errors[u] > thresholds_[u]) vote += weights_[u];
  }
  return vote > 0.5 ? 1 : 0;
}

void AeEnsemble::set_weights(std::vector<double> w) {
  if (w.size() != aes_.size()) throw std::invalid_argument("set_weights: size mismatch");
  const double sum = std::accumulate(w.begin(), w.end(), 0.0);
  if (std::abs(sum - 1.0) > 1e-6) throw std::invalid_argument("set_weights: must sum to 1");
  weights_ = std::move(w);
}

}  // namespace iguard::core
