// Plain-text table and CSV reporting for the benchmark harnesses, so every
// bench binary prints the same rows/series the paper's tables and figures
// report and optionally persists them for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace iguard::eval {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells);
  /// Convenience: format doubles to the given precision.
  static std::string num(double v, int precision = 3);
  static std::string pct(double v, int precision = 2);  // 0.1234 -> "12.34%"

  void print(std::ostream& os, const std::string& title = "") const;
  void write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace iguard::eval
