file(REMOVE_RECURSE
  "CMakeFiles/bench_b1_throughput_latency.dir/bench_b1_throughput_latency.cpp.o"
  "CMakeFiles/bench_b1_throughput_latency.dir/bench_b1_throughput_latency.cpp.o.d"
  "bench_b1_throughput_latency"
  "bench_b1_throughput_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b1_throughput_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
