#include "ml/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace iguard::ml {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.uniform() == b.uniform() ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(3.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, NormalZeroStddevReturnsMean) {
  Rng r(1);
  EXPECT_DOUBLE_EQ(r.normal(5.0, 0.0), 5.0);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng r(3);
  auto idx = r.sample_without_replacement(100, 40);
  EXPECT_EQ(idx.size(), 40u);
  std::set<std::size_t> s(idx.begin(), idx.end());
  EXPECT_EQ(s.size(), 40u);
  for (std::size_t v : idx) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementClampsToN) {
  Rng r(3);
  auto idx = r.sample_without_replacement(5, 50);
  EXPECT_EQ(idx.size(), 5u);
  std::set<std::size_t> s(idx.begin(), idx.end());
  EXPECT_EQ(s.size(), 5u);
}

TEST(Rng, IndexInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.index(7), 7u);
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(5), b(5);
  Rng fa = a.fork(), fb = b.fork();
  EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
}

}  // namespace
}  // namespace iguard::ml
