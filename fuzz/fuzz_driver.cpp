// Standalone fuzz driver. The container ships GCC only, so libFuzzer's
// -fsanitize=fuzzer runtime is unavailable; each target still exports the
// canonical LLVMFuzzerTestOneInput entry point (link it under clang and you
// get a real coverage-guided fuzzer for free), and this driver supplies the
// main(): replay every file in the committed seed corpus, then run a
// seeded, deterministic mutation loop over those seeds. Determinism makes
// the smoke gate reproducible — a CI failure is re-runnable byte-for-byte
// with the printed seed.
//
// Usage: <target> [--iters N] [--seed S] <corpus file or dir>...
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

// Local splitmix64 so the driver has zero library dependencies.
std::uint64_t mix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::vector<std::uint8_t> bytes;
  if (!f) return bytes;
  f.seekg(0, std::ios::end);
  bytes.resize(static_cast<std::size_t>(f.tellg()));
  f.seekg(0);
  f.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

/// One deterministic mutation pass: 1-8 edits drawn from flip / truncate /
/// extend / splice — the classic structure-unaware repertoire.
std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& seed, std::uint64_t& rng) {
  std::vector<std::uint8_t> m = seed;
  const std::uint64_t edits = 1 + mix(rng) % 8;
  for (std::uint64_t e = 0; e < edits; ++e) {
    switch (mix(rng) % 4) {
      case 0:  // flip one byte
        if (!m.empty()) m[mix(rng) % m.size()] ^= static_cast<std::uint8_t>(1 + mix(rng) % 255);
        break;
      case 1:  // truncate
        if (!m.empty()) m.resize(mix(rng) % m.size());
        break;
      case 2: {  // append noise
        const std::uint64_t n = 1 + mix(rng) % 16;
        for (std::uint64_t i = 0; i < n; ++i) m.push_back(static_cast<std::uint8_t>(mix(rng)));
        break;
      }
      case 3: {  // duplicate an internal chunk (grows duplication/reorder damage)
        if (m.size() >= 2) {
          const std::size_t at = mix(rng) % m.size();
          const std::size_t len = 1 + mix(rng) % (m.size() - at);
          std::vector<std::uint8_t> chunk(m.begin() + static_cast<std::ptrdiff_t>(at),
                                          m.begin() + static_cast<std::ptrdiff_t>(at + len));
          m.insert(m.begin() + static_cast<std::ptrdiff_t>(at), chunk.begin(), chunk.end());
        }
        break;
      }
    }
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iters = 0;
  std::uint64_t seed = 1;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      paths.emplace_back(argv[i]);
    }
  }

  std::vector<std::vector<std::uint8_t>> corpus;
  for (const auto& p : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      std::vector<std::string> files;
      for (const auto& e : std::filesystem::directory_iterator(p)) {
        if (e.is_regular_file()) files.push_back(e.path().string());
      }
      std::sort(files.begin(), files.end());  // deterministic order
      for (const auto& f : files) corpus.push_back(read_file(f));
    } else {
      corpus.push_back(read_file(p));
    }
  }
  if (corpus.empty()) corpus.push_back({});  // always probe the empty input

  for (const auto& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::uint64_t rng = seed;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::vector<std::uint8_t> m = mutate(corpus[i % corpus.size()], rng);
    LLVMFuzzerTestOneInput(m.data(), m.size());
  }
  std::printf("fuzz: %zu corpus inputs + %llu mutated iterations (seed %llu): ok\n",
              corpus.size(), static_cast<unsigned long long>(iters),
              static_cast<unsigned long long>(seed));
  return 0;
}
