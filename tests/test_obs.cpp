// Observability layer (DESIGN.md §4d): registry semantics, hand-computed
// histogram buckets, snapshot export determinism (non-"timing." keys must be
// byte-identical across identical runs), the diff helper, and the SimStats
// accounting invariants the instruments are supposed to mirror.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ml/rng.hpp"
#include "obs/metrics.hpp"
#include "switchsim/replay.hpp"

namespace iguard {
namespace {

using obs::MetricsSnapshot;
using obs::Registry;

// Under -DIGUARD_OBS_OFF the record bodies compile away and registries stay
// empty by design; tests that assert recorded values skip themselves. The
// SimStats invariants (and the rest of the suite) still run.
#if defined(IGUARD_OBS_OFF)
#define IGUARD_SKIP_IF_OBS_OFF() \
  GTEST_SKIP() << "built with IGUARD_OBS_OFF: instruments compiled out"
#else
#define IGUARD_SKIP_IF_OBS_OFF() (void)0
#endif

TEST(ObsRegistry, CounterGetOrCreateSharesStorage) {
  IGUARD_SKIP_IF_OBS_OFF();
  Registry reg;
  obs::Counter a = reg.counter("pkts");
  obs::Counter b = reg.counter("pkts");  // same name -> same instrument
  a.inc();
  b.inc(4);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(reg.counter("other").value(), 0u);
}

TEST(ObsRegistry, DisabledRegistryHandsOutInactiveHandles) {
  Registry reg(obs::ObsConfig{false});
  EXPECT_FALSE(reg.enabled());
  obs::Counter c = reg.counter("pkts");
  obs::Gauge g = reg.gauge("occ");
  c.inc(3);
  g.set(7.0);
  EXPECT_FALSE(c.active());
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_TRUE(reg.snapshot().scalars.empty());
}

TEST(ObsHistogram, BucketsMatchHandComputedCounts) {
  IGUARD_SKIP_IF_OBS_OFF();
  Registry reg;
  const double bounds[] = {10.0, 100.0, 1000.0};
  obs::Histogram h = reg.histogram("lat", bounds);
  // Bucket i holds values <= bounds[i] (first matching bound); the last
  // bucket is the overflow. Hand-placed: b0 <- {5, 10}, b1 <- {50, 100},
  // b2 <- {101, 1000}, b3 (overflow) <- {5000}.
  for (const double v : {5.0, 10.0, 50.0, 100.0, 101.0, 1000.0, 5000.0}) h.record(v);
  ASSERT_EQ(h.bucket_count(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0 + 10.0 + 50.0 + 100.0 + 101.0 + 1000.0 + 5000.0);

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.scalars.at("lat.count"), 7.0);
  EXPECT_EQ(snap.scalars.at("lat.min"), 5.0);
  EXPECT_EQ(snap.scalars.at("lat.max"), 5000.0);
  EXPECT_EQ(snap.scalars.at("lat.b00"), 2.0);
  EXPECT_EQ(snap.scalars.at("lat.b03"), 1.0);
}

TEST(ObsSeries, SamplesOnCadenceAndDropsWhenFull) {
  IGUARD_SKIP_IF_OBS_OFF();
  Registry reg;
  obs::Series s = reg.series("backlog", /*capacity=*/3, /*every_n=*/2);
  for (int i = 1; i <= 10; ++i) s.observe(static_cast<double>(i));
  // Events 2, 4, 6 sampled; 8 and 10 dropped (capacity 3).
  EXPECT_EQ(s.events(), 10u);
  EXPECT_EQ(s.size(), 3u);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.scalars.at("backlog.dropped"), 2.0);
  const auto& rows = snap.series.at("backlog");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::pair<std::uint64_t, double>{2, 2.0}));
  EXPECT_EQ(rows[2], (std::pair<std::uint64_t, double>{6, 6.0}));
}

TEST(ObsSnapshot, DiffSubtractsScalars) {
  IGUARD_SKIP_IF_OBS_OFF();
  Registry reg;
  obs::Counter c = reg.counter("pkts");
  c.inc(10);
  const MetricsSnapshot before = reg.snapshot();
  c.inc(32);
  reg.counter("late").inc(1);  // key absent from `before`: diffs against 0
  const MetricsSnapshot delta = obs::diff(before, reg.snapshot());
  EXPECT_EQ(delta.scalars.at("pkts"), 32.0);
  EXPECT_EQ(delta.scalars.at("late"), 1.0);
}

TEST(ObsSnapshot, ExportsAreDeterministicallyOrdered) {
  IGUARD_SKIP_IF_OBS_OFF();
  Registry reg;
  reg.counter("z.last").inc(2);
  reg.counter("a.first").inc(1);
  reg.gauge("m.mid").set(0.25);
  const std::string json = obs::to_json(reg.snapshot());
  const std::string csv = obs::to_csv(reg.snapshot());
  EXPECT_LT(json.find("a.first"), json.find("m.mid"));
  EXPECT_LT(json.find("m.mid"), json.find("z.last"));
  EXPECT_LT(csv.find("a.first"), csv.find("z.last"));
  EXPECT_NE(json.find("\"a.first\": 1"), std::string::npos);
  EXPECT_NE(csv.find("scalar,m.mid,,0.25"), std::string::npos);
}

// --- pipeline-level determinism + SimStats invariants ---------------------

/// Same synthetic deployment the replay tests use: one FL rule admitting
/// small-packet (benign) flows.
class ObsReplayTest : public ::testing::Test {
 protected:
  ObsReplayTest() {
    ml::Matrix fake(2, switchsim::kSwitchFlFeatures);
    for (std::size_t j = 0; j < switchsim::kSwitchFlFeatures; ++j) {
      fake(0, j) = 0.0;
      fake(1, j) = 1e6;
    }
    quant_.fit(fake);
    wl_.tree_count = 1;
    std::vector<rules::FieldRange> box(switchsim::kSwitchFlFeatures, {0, quant_.domain_max()});
    box[5] = {0, quant_.quantize_value(5, 600.0)};  // feature 5 = min size
    wl_.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});
  }

  switchsim::DeployedModel model() const {
    switchsim::DeployedModel dm;
    dm.fl_tables = &wl_;
    dm.fl_quantizer = &quant_;
    return dm;
  }

  traffic::Trace make_trace(std::size_t flows, std::size_t packets_per_flow) const {
    ml::Rng rng(7);
    traffic::Trace t;
    for (std::size_t f = 0; f < flows; ++f) {
      const bool mal = f % 3 == 0;
      traffic::FiveTuple ft{0x0A000000u + static_cast<std::uint32_t>(f),
                            0x0B000000u + static_cast<std::uint32_t>(f % 7),
                            static_cast<std::uint16_t>(1024 + f), 443, traffic::kProtoTcp};
      for (std::size_t i = 0; i < packets_per_flow; ++i) {
        traffic::Packet p;
        p.ts = 0.001 * static_cast<double>(f) + 0.05 * static_cast<double>(i) +
               rng.uniform(0.0, 0.0005);
        p.ft = i % 2 == 0 ? ft : ft.reversed();
        p.length = mal ? static_cast<std::uint16_t>(1200 + rng.index(200))
                       : static_cast<std::uint16_t>(80 + rng.index(60));
        p.malicious = mal;
        t.packets.push_back(p);
      }
    }
    t.sort_by_time();
    return t;
  }

  rules::Quantizer quant_{16};
  core::VoteWhitelist wl_;
};

/// Strip wall-clock keys: everything else must be a pure function of the
/// seeded workload.
MetricsSnapshot without_timing(MetricsSnapshot s) {
  for (auto it = s.scalars.begin(); it != s.scalars.end();) {
    it = it->first.rfind("timing.", 0) == 0 ? s.scalars.erase(it) : std::next(it);
  }
  for (auto it = s.series.begin(); it != s.series.end();) {
    it = it->first.rfind("timing.", 0) == 0 ? s.series.erase(it) : std::next(it);
  }
  return s;
}

TEST_F(ObsReplayTest, NonTimingKeysByteIdenticalAcrossIdenticalRuns) {
  IGUARD_SKIP_IF_OBS_OFF();
  const auto trace = make_trace(60, 8);
  const auto dm = model();
  auto run_once = [&](std::size_t num_threads) {
    Registry reg;
    switchsim::PipelineConfig cfg;
    cfg.packet_threshold_n = 4;
    cfg.control.control_latency_s = 1e-3;
    cfg.control.channel_capacity = 32;
    cfg.metrics = &reg;
    switchsim::ReplayConfig rc;
    rc.shards = 4;
    rc.num_threads = num_threads;
    (void)switchsim::replay_sharded(trace, cfg, dm, rc);
    return obs::to_json(without_timing(reg.snapshot()));
  };
  const std::string a = run_once(1);
  const std::string b = run_once(1);
  const std::string c = run_once(4);  // thread count must not matter either
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_NE(a.find("pipeline.shard0.path.brown.packets"), std::string::npos);
  EXPECT_NE(a.find("pipeline.shard3.control.digests"), std::string::npos);
}

TEST_F(ObsReplayTest, PathCountersMatchSimStats) {
  IGUARD_SKIP_IF_OBS_OFF();
  const auto trace = make_trace(40, 8);
  const auto dm = model();
  Registry reg;
  switchsim::PipelineConfig cfg;
  cfg.packet_threshold_n = 4;
  cfg.metrics = &reg;
  switchsim::Pipeline pipe(cfg, dm);
  const auto st = pipe.run(trace);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.scalars.at("pipeline.path.red.packets"),
            static_cast<double>(st.path(switchsim::Path::kRed)));
  EXPECT_EQ(snap.scalars.at("pipeline.path.brown.packets"),
            static_cast<double>(st.path(switchsim::Path::kBrown)));
  EXPECT_EQ(snap.scalars.at("pipeline.path.blue.packets"),
            static_cast<double>(st.path(switchsim::Path::kBlue)));
  EXPECT_EQ(snap.scalars.at("pipeline.control.digests"),
            static_cast<double>(pipe.controller().digests_received()));
  EXPECT_EQ(snap.scalars.at("pipeline.control.installs"),
            static_cast<double>(pipe.controller().rules_installed()));
  EXPECT_EQ(snap.scalars.at("pipeline.leaked_packets"),
            static_cast<double>(st.faults.leaked_packets));
  // Per-path latency histograms recorded one sample per packet.
  double timing_count = 0.0;
  for (const char* path : {"red", "brown", "blue", "orange", "purple", "green"}) {
    timing_count +=
        snap.scalars.at("timing.pipeline.process_ns." + std::string(path) + ".count");
  }
  EXPECT_EQ(timing_count, static_cast<double>(st.packets));
}

TEST_F(ObsReplayTest, SimStatsInvariantsAcrossConfigMatrix) {
  const auto trace = make_trace(50, 8);
  const auto dm = model();
  switchsim::FaultConfig faulty;
  faulty.digest_loss_rate = 0.1;
  faulty.install_failure_rate = 0.2;
  faulty.crashes = {{0.05, 0.1}};
  for (const auto& faults : {switchsim::FaultConfig{}, faulty}) {
    for (const auto policy :
         {switchsim::EvictionPolicy::kFifo, switchsim::EvictionPolicy::kLru}) {
      for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        switchsim::PipelineConfig cfg;
        cfg.packet_threshold_n = 4;
        cfg.eviction = policy;
        cfg.blacklist_capacity = 8;  // force evictions
        cfg.control.control_latency_s = 1e-3;
        cfg.control.faults = faults;
        switchsim::ReplayConfig rc;
        rc.shards = shards;
        const auto out = switchsim::replay_sharded(trace, cfg, dm, rc);
        const std::string ctx = "shards=" + std::to_string(shards);

        // path_count sums to packets, and the confusion cells partition them.
        std::size_t path_sum = 0;
        for (const auto c : out.stats.path_count) path_sum += c;
        EXPECT_EQ(path_sum, out.stats.packets) << ctx;
        EXPECT_EQ(out.stats.tp + out.stats.fp + out.stats.tn + out.stats.fn,
                  out.stats.packets)
            << ctx;
        EXPECT_EQ(out.stats.packets, trace.size()) << ctx;

        // merge_stats over the per-shard parts must reproduce the merged
        // totals for every shared counter (pred/truth are re-interleaved by
        // replay_sharded, so compare the counter fields).
        const auto remerged = switchsim::merge_stats(out.per_shard);
        EXPECT_EQ(remerged.path_count, out.stats.path_count) << ctx;
        EXPECT_EQ(remerged.packets, out.stats.packets) << ctx;
        EXPECT_EQ(remerged.flows_classified, out.stats.flows_classified) << ctx;
        EXPECT_EQ(remerged.faults.install_attempts, out.stats.faults.install_attempts)
            << ctx;
        EXPECT_EQ(remerged.faults.leaked_packets, out.stats.faults.leaked_packets) << ctx;
        EXPECT_EQ(remerged.tp, out.stats.tp) << ctx;
        EXPECT_EQ(remerged.fn, out.stats.fn) << ctx;

        // One shard is definitionally a single pipeline: totals must equal a
        // plain Pipeline::run over the same trace, field for field.
        if (shards == 1) {
          switchsim::Pipeline single(cfg, dm);
          const auto ss = single.run(trace);
          EXPECT_EQ(ss.path_count, out.stats.path_count) << ctx;
          EXPECT_EQ(ss.flows_classified, out.stats.flows_classified) << ctx;
          EXPECT_EQ(ss.dropped, out.stats.dropped) << ctx;
          EXPECT_EQ(ss.tp, out.stats.tp) << ctx;
          EXPECT_EQ(ss.fp, out.stats.fp) << ctx;
          EXPECT_EQ(ss.tn, out.stats.tn) << ctx;
          EXPECT_EQ(ss.fn, out.stats.fn) << ctx;
          EXPECT_EQ(ss.pred, out.stats.pred) << ctx;
          EXPECT_EQ(ss.faults.leaked_packets, out.stats.faults.leaked_packets) << ctx;
        }
      }
    }
  }
}

}  // namespace
}  // namespace iguard
