
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/quantize.cpp" "src/rules/CMakeFiles/iguard_rules.dir/quantize.cpp.o" "gcc" "src/rules/CMakeFiles/iguard_rules.dir/quantize.cpp.o.d"
  "/root/repo/src/rules/range_rule.cpp" "src/rules/CMakeFiles/iguard_rules.dir/range_rule.cpp.o" "gcc" "src/rules/CMakeFiles/iguard_rules.dir/range_rule.cpp.o.d"
  "/root/repo/src/rules/rule_table.cpp" "src/rules/CMakeFiles/iguard_rules.dir/rule_table.cpp.o" "gcc" "src/rules/CMakeFiles/iguard_rules.dir/rule_table.cpp.o.d"
  "/root/repo/src/rules/ternary.cpp" "src/rules/CMakeFiles/iguard_rules.dir/ternary.cpp.o" "gcc" "src/rules/CMakeFiles/iguard_rules.dir/ternary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/iguard_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
