#include "rules/ternary.hpp"

#include <stdexcept>

namespace iguard::rules {

namespace {
std::uint64_t domain_size(unsigned bits) { return 1ull << bits; }

// Iterate the maximal aligned blocks covering [lo, hi]; calls f(start, size).
template <typename F>
void for_each_block(std::uint64_t lo, std::uint64_t hi, unsigned bits, F&& f) {
  if (bits == 0 || bits > 32) throw std::invalid_argument("bits must be in [1,32]");
  if (lo > hi || hi >= domain_size(bits)) throw std::invalid_argument("bad range");
  while (lo <= hi) {
    // Largest power-of-two block starting at lo...
    std::uint64_t size = lo == 0 ? domain_size(bits) : (lo & ~(lo - 1));
    // ...that still fits inside [lo, hi].
    while (lo + size - 1 > hi) size >>= 1;
    f(lo, size);
    lo += size;
    if (lo == 0) break;  // wrapped past the domain top
  }
}
}  // namespace

std::vector<TernaryMatch> expand_range(std::uint32_t lo, std::uint32_t hi, unsigned bits) {
  std::vector<TernaryMatch> out;
  const std::uint32_t full = bits >= 32 ? 0xFFFFFFFFu : static_cast<std::uint32_t>(domain_size(bits) - 1);
  for_each_block(lo, hi, bits, [&](std::uint64_t start, std::uint64_t size) {
    TernaryMatch t;
    t.mask = full & ~static_cast<std::uint32_t>(size - 1);
    t.value = static_cast<std::uint32_t>(start) & t.mask;
    out.push_back(t);
  });
  return out;
}

std::size_t expansion_count(std::uint32_t lo, std::uint32_t hi, unsigned bits) {
  std::size_t n = 0;
  for_each_block(lo, hi, bits, [&](std::uint64_t, std::uint64_t) { ++n; });
  return n;
}

std::size_t tcam_entries(const RangeRule& rule, unsigned bits) {
  std::size_t product = 1;
  for (const auto& f : rule.fields) {
    if (f.empty()) return 0;
    product *= expansion_count(f.lo, f.hi, bits);
  }
  return product;
}

std::size_t tcam_entries(const std::vector<RangeRule>& rules, unsigned bits) {
  std::size_t total = 0;
  for (const auto& r : rules) total += tcam_entries(r, bits);
  return total;
}

}  // namespace iguard::rules
