#include "switchsim/timing.hpp"

#include <algorithm>

namespace iguard::switchsim {

double pipeline_latency_ns(const TimingConfig& cfg) {
  return cfg.per_stage_ns * static_cast<double>(cfg.stages);
}

ThroughputReport all_dataplane_throughput(const TimingConfig& cfg,
                                          double mirror_byte_fraction) {
  ThroughputReport r;
  r.detour_fraction = std::clamp(mirror_byte_fraction, 0.0, 1.0);
  r.gbps = cfg.line_rate_gbps * (1.0 - r.detour_fraction);
  return r;
}

ThroughputReport control_assisted_throughput(const TimingConfig& cfg,
                                             double suspicious_byte_fraction) {
  ThroughputReport r;
  r.detour_fraction = std::clamp(suspicious_byte_fraction, 0.0, 1.0);
  const double fast = cfg.line_rate_gbps * (1.0 - r.detour_fraction);
  const double slow =
      std::min(cfg.line_rate_gbps * r.detour_fraction, cfg.control_plane_gbps);
  r.gbps = fast + slow;
  return r;
}

}  // namespace iguard::switchsim
