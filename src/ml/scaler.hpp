// Feature scaling. Every detector in this repo (autoencoders in particular)
// is trained on standardised or min-max-normalised features; the switch
// pipeline instead uses the integer quantisation in src/rules/quantize.hpp.
#pragma once

#include <vector>

#include "ml/matrix.hpp"

namespace iguard::ml {

/// z = (x - mean) / std, per column. Columns with zero variance map to 0.
class StandardScaler {
 public:
  void fit(const Matrix& x);
  Matrix transform(const Matrix& x) const;
  void transform_row(std::span<const double> in, std::span<double> out) const;
  Matrix inverse_transform(const Matrix& z) const;
  Matrix fit_transform(const Matrix& x) {
    fit(x);
    return transform(x);
  }

  bool fitted() const { return !mean_.empty(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

/// z = (x - min) / (max - min), clamped to [0, 1] on transform.
class MinMaxScaler {
 public:
  void fit(const Matrix& x);
  Matrix transform(const Matrix& x) const;
  void transform_row(std::span<const double> in, std::span<double> out) const;
  Matrix fit_transform(const Matrix& x) {
    fit(x);
    return transform(x);
  }

  bool fitted() const { return !min_.empty(); }
  const std::vector<double>& min() const { return min_; }
  const std::vector<double>& max() const { return max_; }

 private:
  std::vector<double> min_;
  std::vector<double> max_;
};

}  // namespace iguard::ml
