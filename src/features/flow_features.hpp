// Flow-level (FL) feature extraction. The switch-extractable set matches the
// 13 features of §4.2 (after [44]): per-flow packet count; total / mean /
// std / var / min / max packet size; mean / min / var / std / max
// inter-packet delay; and flow duration. The extended CPU set adds
// statistics a Tofino pipeline cannot compute (order statistics of sizes and
// IPDs, plus port/proto context) standing in for Magnifier's richer feature
// view — exactly why the paper's CPU numbers exceed its testbed numbers.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>
#include <vector>

#include "ml/matrix.hpp"
#include "trafficgen/packet.hpp"

namespace iguard::features {

enum class FeatureSet {
  kSwitch13,     // the 13 data-plane extractable FL features
  kCpuExtended,  // + percentile and context features (control-plane only)
};

constexpr std::size_t kSwitchFeatureCount = 13;
constexpr std::size_t kCpuFeatureCount = 19;

std::size_t feature_count(FeatureSet set);
/// Human-readable names, index-aligned with extracted vectors.
std::vector<std::string_view> feature_names(FeatureSet set);

/// Streaming per-flow accumulators (the float/offline variant; the switch
/// simulator maintains the integer analogue in registers).
struct FlowStats {
  std::size_t count = 0;
  double total_size = 0.0;
  double sum_sq_size = 0.0;
  double min_size = 0.0;
  double max_size = 0.0;
  double sum_ipd = 0.0;
  double sum_sq_ipd = 0.0;
  double min_ipd = 0.0;
  double max_ipd = 0.0;
  double first_ts = 0.0;
  double last_ts = 0.0;
  // CPU-extended only: raw samples for order statistics.
  std::vector<double> sizes;
  std::vector<double> ipds;
  // Context of the first packet.
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;
  // Ground truth: true if any contributing packet was malicious.
  bool malicious = false;

  void add(const traffic::Packet& p, bool keep_samples);
};

/// Finalise accumulators into a feature vector of feature_count(set) values.
std::vector<double> finalize_features(const FlowStats& st, FeatureSet set);

struct ExtractorConfig {
  FeatureSet set = FeatureSet::kCpuExtended;
  /// Emit (and reset) a flow record once it reaches this many packets;
  /// 0 = unlimited (whole-flow features, the CPU experiments' setting).
  std::size_t packet_threshold = 0;  // the paper's n
  /// Emit (and reset) when a flow is idle longer than this; 0 = never.
  double idle_timeout = 0.0;  // the paper's delta, seconds
  /// Drop records with fewer than this many packets (unreliable stats).
  std::size_t min_packets = 2;
};

struct FlowDataset {
  ml::Matrix x;             // one row per emitted flow record
  std::vector<int> labels;  // ground truth: 1 = malicious
};

/// Offline extraction over a full trace with exact (bidirectional) flow
/// keying. Truncation semantics mirror the data plane: a record is emitted
/// at the packet threshold or on idle timeout, then state resets and the
/// same 5-tuple may emit again.
FlowDataset extract_flows(const traffic::Trace& trace, const ExtractorConfig& cfg);

/// Packet-level (PL) features of §3.3: {dst_port, proto, length, TTL} for
/// the first `early_packets` packets of each flow (early-packet protection).
FlowDataset extract_packet_features(const traffic::Trace& trace, std::size_t early_packets = 3);

constexpr std::size_t kPacketFeatureCount = 4;
std::vector<std::string_view> packet_feature_names();

}  // namespace iguard::features
