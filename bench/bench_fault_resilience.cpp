// Control-plane fault resilience (extends the App. B.2 story told by
// bench_b2_control_plane): how much per-packet detection does iGuard lose
// when the digest channel is slow, lossy, undersized, or the controller
// crashes outright? One deployment is trained once, then replayed through
// the pipeline under a sweep of control-plane configurations — install
// latency 0-100 ms, digest loss 0-20 %, bounded channel capacities, and
// controller outages — under both blacklist eviction policies. Everything
// is seeded: the same build produces a bit-identical fault_resilience.csv.
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "harness/testbed_lab.hpp"
#include "obs/metrics.hpp"

using namespace iguard;

namespace {

struct Scenario {
  std::string label;
  double latency_s = 0.0;
  double loss_rate = 0.0;
  std::size_t channel_capacity = 0;  // 0 = unbounded
  double crash_start_s = 0.0;
  double crash_duration_s = 0.0;
  std::size_t flow_slots = 0;  // 0 = deployment default
};

double packet_recall(const switchsim::SimStats& st) {
  std::size_t tp = 0, fn = 0;
  for (std::size_t i = 0; i < st.truth.size(); ++i) {
    if (st.truth[i] != 1) continue;
    if (st.pred[i] == 1)
      ++tp;
    else
      ++fn;
  }
  return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
}

}  // namespace

int main() {
  harness::TestbedLabConfig lab_cfg;
  harness::TestbedLab lab{lab_cfg};
  const auto atk = traffic::AttackType::kMirai;
  std::cout << "training one deployment (" << traffic::attack_name(atk)
            << "), then replaying it under degraded control planes...\n\n";
  const harness::Deployment dep = lab.deploy_attack(atk);
  const double trace_end = dep.test_trace.empty() ? 0.0 : dep.test_trace.packets.back().ts;

  std::vector<Scenario> scenarios;
  scenarios.push_back({"baseline (lockstep-equivalent)"});
  for (const double ms : {1.0, 10.0, 50.0, 100.0})
    scenarios.push_back({"latency " + eval::Table::num(ms, 0) + " ms", ms * 1e-3});
  for (const double loss : {0.05, 0.10, 0.20})
    scenarios.push_back(
        {"digest loss " + eval::Table::num(loss * 100.0, 0) + " %", 1e-3, loss});
  for (const std::size_t cap : {256u, 64u, 16u})
    scenarios.push_back({"channel cap " + std::to_string(cap), 1e-3, 0.0, cap});
  // Outages centred mid-trace, growing to a quarter of the replay.
  for (const double frac : {0.05, 0.25})
    scenarios.push_back({"crash " + eval::Table::num(frac * 100.0, 0) + "% of trace", 1e-3,
                         0.0, 0, 0.4 * trace_end, frac * trace_end});
  scenarios.push_back({"compound (10ms, 10% loss, cap 64, crash)", 10e-3, 0.10, 64,
                       0.4 * trace_end, 0.05 * trace_end});
  // With the default register budget every classified flow keeps its label
  // resident, so the purple path masks lost installs. Shrinking the flow
  // tables forces evictions: once a flow's registers are reclaimed, the
  // blacklist is the only memory of the verdict and control-plane faults
  // become visible as leaked packets / lost recall.
  scenarios.push_back({"tight registers (512 slots)", 1e-3, 0.0, 0, 0.0, 0.0, 512});
  scenarios.push_back({"tight registers (64 slots)", 1e-3, 0.0, 0, 0.0, 0.0, 64});
  scenarios.push_back({"tight registers (64) + 20% loss", 1e-3, 0.20, 0, 0.0, 0.0, 64});

  eval::Table t({"scenario", "policy", "latency_ms", "loss_pct", "channel_cap", "crash_s",
                 "recall", "macro_f1", "leaked_frac", "red_path", "installs", "chan_drops",
                 "inj_drops", "backlog_hwm", "dead_letters", "recovery_installs"});
  // Per-stage observability breakdown (DESIGN.md §4d) for the compound
  // scenario under each eviction policy: path counters, occupancy gauges,
  // install latency histogram and the sampled backlog series. Written as a
  // separate artifact with "timing." keys stripped, so it is bit-identical
  // run to run like the CSV.
  obs::Registry obs_reg;
  for (const auto policy : {switchsim::EvictionPolicy::kFifo, switchsim::EvictionPolicy::kLru}) {
    const std::string pname = policy == switchsim::EvictionPolicy::kFifo ? "fifo" : "lru";
    for (const auto& sc : scenarios) {
      switchsim::PipelineConfig pipe_cfg = lab.config().pipe;
      pipe_cfg.eviction = policy;
      if (sc.flow_slots != 0) pipe_cfg.flow_slots = sc.flow_slots;
      pipe_cfg.control.control_latency_s = sc.latency_s;
      pipe_cfg.control.channel_capacity = sc.channel_capacity;
      pipe_cfg.control.faults.seed = lab.config().seed;
      pipe_cfg.control.faults.digest_loss_rate = sc.loss_rate;
      if (sc.crash_duration_s > 0.0)
        pipe_cfg.control.faults.crashes = {{sc.crash_start_s, sc.crash_duration_s}};
      if (sc.label.rfind("compound", 0) == 0) {
        pipe_cfg.metrics = &obs_reg;
        pipe_cfg.metrics_prefix = "pipeline." + pname;
      }

      switchsim::Pipeline pipe(pipe_cfg, dep.iguard_model());
      const auto st = pipe.run(dep.test_trace);
      std::vector<int> truth(st.truth.begin(), st.truth.end());
      std::vector<int> pred(st.pred.begin(), st.pred.end());
      std::vector<double> score(st.pred.begin(), st.pred.end());
      const auto m = eval::evaluate(truth, pred, score);
      const double leaked_frac =
          st.packets == 0 ? 0.0
                          : static_cast<double>(st.faults.leaked_packets) /
                                static_cast<double>(st.packets);
      t.add_row({sc.label, pname, eval::Table::num(sc.latency_s * 1e3, 1),
                 eval::Table::num(sc.loss_rate * 100.0, 1),
                 std::to_string(sc.channel_capacity), eval::Table::num(sc.crash_duration_s, 2),
                 eval::Table::num(packet_recall(st), 4), eval::Table::num(m.macro_f1, 4),
                 eval::Table::num(leaked_frac, 6),
                 std::to_string(st.path(switchsim::Path::kRed)),
                 std::to_string(pipe.controller().rules_installed()),
                 std::to_string(st.faults.channel_overflow_drops),
                 std::to_string(st.faults.injected_digest_drops),
                 std::to_string(st.faults.backlog_hwm), std::to_string(st.faults.dead_letters),
                 std::to_string(st.faults.recovery_installs)});
    }
  }
  t.print(std::cout, "Control-plane fault resilience (one deployment, degraded replays)");
  t.write_csv("fault_resilience.csv");

  obs_reg.gauge("host.hardware_threads")
      .set(static_cast<double>(std::thread::hardware_concurrency()));
  obs::MetricsSnapshot snap = obs_reg.snapshot();
  for (auto it = snap.scalars.begin(); it != snap.scalars.end();) {
    it = it->first.rfind("timing.", 0) == 0 ? snap.scalars.erase(it) : std::next(it);
  }
  std::ofstream of("fault_resilience_obs.json");
  of << obs::to_json(snap);

  std::cout << "\nwrote fault_resilience.csv (" << t.rows()
            << " scenarios) and fault_resilience_obs.json\n";
  return 0;
}
