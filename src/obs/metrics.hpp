// Allocation-free observability layer (DESIGN.md §4d): a registry of named
// counters, gauges, fixed-bucket histograms, and bounded time series whose
// hot-path record operation is a relaxed atomic increment into storage
// preallocated at registration time. Instruments are obtained (get-or-create,
// mutex-protected) before the hot loop; the returned handles are trivially
// copyable pointer wrappers that no-op when the registry is disabled
// (ObsConfig::enabled = false), when the handle is default-constructed, or
// when the whole layer is compiled out with -DIGUARD_OBS_OFF.
//
// Determinism policy: every wall-clock-derived instrument is named under the
// "timing." namespace. All other keys are pure functions of the (seeded)
// workload, so two identical runs export byte-identical non-"timing." keys —
// the property scripts/check.sh --obs-smoke gates on. Writers of a given
// instrument should be single-threaded where byte-reproducible floating
// sums matter (sharded replay registers per-shard instruments for exactly
// this reason); the atomics only make concurrent use well-defined.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace iguard::obs {

struct ObsConfig {
  /// Runtime switch: a disabled registry hands out inactive handles, so the
  /// instrumented hot path pays one null check per record operation.
  bool enabled = true;
};

namespace detail {

/// Lock-free relaxed max/min update for doubles (histogram extrema).
inline void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
inline void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur > v && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
inline void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

struct CounterData {
  std::string name;
  std::atomic<std::uint64_t> value{0};
};

struct GaugeData {
  std::string name;
  std::atomic<double> value{0.0};
};

struct HistogramData {
  std::string name;
  std::vector<double> bounds;  // ascending upper bounds; overflow bucket implied
  std::vector<std::atomic<std::uint64_t>> buckets;  // bounds.size() + 1
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{0.0};
  std::atomic<double> max{0.0};

  void record(double v) {
    // Branchless-enough upper_bound over a preallocated bounds array; a
    // value lands in the first bucket whose upper bound is >= v.
    std::size_t lo = 0, hi = bounds.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (bounds[mid] < v)
        lo = mid + 1;
      else
        hi = mid;
    }
    buckets[lo].fetch_add(1, std::memory_order_relaxed);
    if (count.fetch_add(1, std::memory_order_relaxed) == 0) {
      min.store(v, std::memory_order_relaxed);
      max.store(v, std::memory_order_relaxed);
    } else {
      atomic_min(min, v);
      atomic_max(max, v);
    }
    atomic_add(sum, v);
  }
};

struct SeriesData {
  /// One preallocated sample slot. `event` doubles as the publish flag:
  /// observe() stores the value first, then the (always nonzero) event index
  /// with release — a snapshot that acquires a nonzero event is guaranteed a
  /// fully written value, and skips slots still being filled. Without this
  /// protocol a live scrape (the daemon's /metrics thread) could tear-read a
  /// slot the serving thread is mid-write on.
  struct Slot {
    std::atomic<std::uint64_t> event{0};  // 0 = not yet published
    std::atomic<double> value{0.0};
  };

  std::string name;
  std::uint64_t every_n = 1;
  std::vector<Slot> samples;  // preallocated
  std::atomic<std::uint64_t> events{0};
  std::atomic<std::uint64_t> write_idx{0};
  std::atomic<std::uint64_t> dropped{0};

  void observe(double v) {
    const std::uint64_t n = events.fetch_add(1, std::memory_order_relaxed) + 1;
    if (every_n == 0 || n % every_n != 0) return;
    const std::uint64_t i = write_idx.fetch_add(1, std::memory_order_relaxed);
    if (i < samples.size()) {
      samples[i].value.store(v, std::memory_order_relaxed);
      samples[i].event.store(n, std::memory_order_release);
    } else {
      dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
};

}  // namespace detail

/// Monotonic counter. inc() is one relaxed atomic add.
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) {
#if !defined(IGUARD_OBS_OFF)
    if (d_ != nullptr) d_->value.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  std::uint64_t value() const {
    return d_ != nullptr ? d_->value.load(std::memory_order_relaxed) : 0;
  }
  bool active() const { return d_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(detail::CounterData* d) : d_(d) {}
  detail::CounterData* d_ = nullptr;
};

/// Last-write-wins gauge (occupancy, ratios). set() is one relaxed store.
class Gauge {
 public:
  Gauge() = default;

  void set(double v) {
#if !defined(IGUARD_OBS_OFF)
    if (d_ != nullptr) d_->value.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  double value() const {
    return d_ != nullptr ? d_->value.load(std::memory_order_relaxed) : 0.0;
  }
  bool active() const { return d_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeData* d) : d_(d) {}
  detail::GaugeData* d_ = nullptr;
};

/// Fixed-bucket histogram: bounds are frozen at registration, record() is a
/// binary search over the preallocated bounds plus bucket/count/sum updates —
/// no allocation, ever.
class Histogram {
 public:
  Histogram() = default;

  void record(double v) {
#if !defined(IGUARD_OBS_OFF)
    if (d_ != nullptr) d_->record(v);
#else
    (void)v;
#endif
  }
  std::uint64_t count() const {
    return d_ != nullptr ? d_->count.load(std::memory_order_relaxed) : 0;
  }
  double sum() const { return d_ != nullptr ? d_->sum.load(std::memory_order_relaxed) : 0.0; }
  std::size_t bucket_count() const { return d_ != nullptr ? d_->buckets.size() : 0; }
  std::uint64_t bucket(std::size_t i) const {
    return d_ != nullptr && i < d_->buckets.size()
               ? d_->buckets[i].load(std::memory_order_relaxed)
               : 0;
  }
  bool active() const { return d_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramData* d) : d_(d) {}
  detail::HistogramData* d_ = nullptr;
};

/// Bounded time series sampled on an event-count cadence: every `every_n`-th
/// observe() stores (event index, value) into a preallocated slot; once the
/// capacity is exhausted further samples are counted as dropped instead of
/// reallocating.
class Series {
 public:
  Series() = default;

  void observe(double v) {
#if !defined(IGUARD_OBS_OFF)
    if (d_ != nullptr) d_->observe(v);
#else
    (void)v;
#endif
  }
  std::uint64_t events() const {
    return d_ != nullptr ? d_->events.load(std::memory_order_relaxed) : 0;
  }
  std::uint64_t size() const {
    if (d_ == nullptr) return 0;
    const std::uint64_t w = d_->write_idx.load(std::memory_order_relaxed);
    return w < d_->samples.size() ? w : d_->samples.size();
  }
  bool active() const { return d_ != nullptr; }

 private:
  friend class Registry;
  explicit Series(detail::SeriesData* d) : d_(d) {}
  detail::SeriesData* d_ = nullptr;
};

/// Point-in-time view of a registry: flattened scalar keys (sorted by the
/// std::map) plus the sampled series. Counters and histogram bucket counts
/// are integral-valued doubles; to_json/to_csv print those without a
/// fraction, so exports are byte-stable for identical values.
struct MetricsSnapshot {
  std::map<std::string, double> scalars;
  std::map<std::string, std::vector<std::pair<std::uint64_t, double>>> series;
};

/// after - before, scalar-wise (keys only in `after` diff against zero).
/// Series are taken from `after` unchanged.
MetricsSnapshot diff(const MetricsSnapshot& before, const MetricsSnapshot& after);

/// Copy of `s` with every scalar/series key that starts with any of
/// `prefixes` removed. How comparison gates carve a snapshot down to the
/// deterministic subtree they assert on (e.g. drop "timing." and the fleet
/// controller's own namespace when checking N=1 single-switch parity).
MetricsSnapshot without_prefixes(const MetricsSnapshot& s,
                                 std::span<const std::string_view> prefixes);

/// Deterministic exports: stable key order (sorted), fixed precision
/// (integral values print as integers, everything else as %.9g).
std::string to_json(const MetricsSnapshot& s);
std::string to_csv(const MetricsSnapshot& s);

/// Prometheus text exposition (text format 0.0.4 subset) of a snapshot: a
/// `# TYPE <name> untyped` line then `<name> <value>` per scalar, and one
/// labelled sample per retained series row (`<name>{event="<idx>"} <value>`).
/// Names are `iguard_` + the key with every character outside
/// [a-zA-Z0-9_:] mapped to '_', so "timing.*" keys surface as
/// `iguard_timing_*` and scrape gates can strip those lines the way the
/// JSON gates strip the "timing." prefix. Rendering is byte-deterministic:
/// sorted keys (map order) and the same fixed-precision value formatting as
/// to_json.
std::string to_prometheus(const MetricsSnapshot& s);

/// Default log-spaced nanosecond bounds for wall-clock latency histograms.
std::span<const double> default_latency_bounds_ns();
/// Default bounds (seconds) for simulated control-plane install latency.
std::span<const double> default_install_latency_bounds_s();

/// Instrument registry. Registration (get-or-create by full name) allocates
/// and takes a mutex — do it at construction time, not per packet. Handles
/// stay valid for the registry's lifetime; instrument storage never moves.
class Registry {
 public:
  explicit Registry(ObsConfig cfg = {}) : cfg_(cfg) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  bool enabled() const {
#if defined(IGUARD_OBS_OFF)
    return false;
#else
    return cfg_.enabled;
#endif
  }

  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `bounds` must be ascending; they are copied at registration. A second
  /// get with the same name returns the existing instrument (bounds of the
  /// first registration win).
  Histogram histogram(std::string_view name, std::span<const double> bounds);
  Series series(std::string_view name, std::size_t capacity, std::uint64_t every_n);

  /// Flatten every instrument into sorted scalar keys:
  ///   counter  ->  <name>
  ///   gauge    ->  <name>
  ///   histogram->  <name>.count / .sum / .min / .max / .b<i> (bucket counts)
  ///   series   ->  <name>.events / .dropped  + the sampled (index, value) rows
  MetricsSnapshot snapshot() const;

 private:
  ObsConfig cfg_;
  mutable std::mutex mu_;
  // Deques-of-nodes via unique_ptr: pointers handed to instruments stay
  // stable regardless of later registrations.
  std::vector<std::unique_ptr<detail::CounterData>> counters_;
  std::vector<std::unique_ptr<detail::GaugeData>> gauges_;
  std::vector<std::unique_ptr<detail::HistogramData>> histograms_;
  std::vector<std::unique_ptr<detail::SeriesData>> series_;
};

/// RAII steady-clock scope timer: records elapsed nanoseconds into a
/// histogram on destruction (or into the histogram chosen by set()), and
/// costs nothing when the histogram handle is inactive.
class ScopeTimerNs {
 public:
  explicit ScopeTimerNs(Histogram h);
  ~ScopeTimerNs();
  ScopeTimerNs(const ScopeTimerNs&) = delete;
  ScopeTimerNs& operator=(const ScopeTimerNs&) = delete;

  /// Re-target the destination histogram (e.g. once the packet's execution
  /// path is known). An inactive histogram cancels the record.
  void set(Histogram h) { h_ = h; }

 private:
  Histogram h_;
  std::uint64_t t0_ = 0;
};

}  // namespace iguard::obs
