#include "core/guided_iforest.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "ml/parallel.hpp"

namespace iguard::core {

namespace {

struct Box {
  std::vector<double> lo, hi;
};

// Bounding box of the given training rows — the "feature ranges associated
// with the node" of §3.2.1. Augmenting inside the *data's* box (rather than
// the full split cell) concentrates the synthetic probes on the interior
// holes of the benign distribution, which is where malicious structure
// hides; the exterior is malicious by construction (no whitelist match).
Box data_box(const ml::Matrix& train, std::span<const std::size_t> rows) {
  const std::size_t m = train.cols();
  Box b{std::vector<double>(m, std::numeric_limits<double>::infinity()),
        std::vector<double>(m, -std::numeric_limits<double>::infinity())};
  for (std::size_t r : rows) {
    auto x = train.row(r);
    for (std::size_t j = 0; j < m; ++j) {
      b.lo[j] = std::min(b.lo[j], x[j]);
      b.hi[j] = std::max(b.hi[j], x[j]);
    }
  }
  return b;
}

double entropy(double pr) {
  if (pr <= 0.0 || pr >= 1.0) return 0.0;
  return -pr * std::log2(pr) - (1.0 - pr) * std::log2(1.0 - pr);
}

// X_aug ~ features_range: normal around the box midpoint with sd equal to
// the quartile range of a uniform draw over the box, (hi - lo)/2, clipped to
// the box (§3.2.1 footnote 7).
void augment_box(const Box& box, std::size_t k, ml::Rng& rng, ml::Matrix& out) {
  const std::size_t m = box.lo.size();
  std::vector<double> row(m);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double mid = 0.5 * (box.lo[j] + box.hi[j]);
      const double sd = 0.5 * (box.hi[j] - box.lo[j]);
      row[j] = std::clamp(rng.normal(mid, sd), box.lo[j], box.hi[j]);
    }
    out.push_row(row);
  }
}

struct BuildContext {
  const ml::Matrix& train;
  const AeEnsemble& teacher;
  const GuidedForestConfig& cfg;
  ml::Rng& rng;
  int height_cap;
};

// Recursive teacher-guided node expansion. `rows` indexes ctx.train.
int build_node(BuildContext& ctx, std::vector<GuidedNode>& nodes,
               std::vector<std::size_t> rows, int depth) {
  const int self = static_cast<int>(nodes.size());
  nodes.push_back({});
  nodes[self].depth = depth;
  nodes[self].train_count = rows.size();

  if (rows.size() <= 1 || depth >= ctx.height_cap) return self;

  const std::size_t m = ctx.train.cols();
  const Box box = data_box(ctx.train, rows);

  // X_decision = X_node U X_aug, with teacher labels.
  ml::Matrix decision(0, m);
  for (std::size_t r : rows) decision.push_row(ctx.train.row(r));
  augment_box(box, ctx.cfg.augment, ctx.rng, decision);
  const std::size_t n = decision.rows();
  std::vector<int> lab(n);
  std::size_t mal = 0;
  for (std::size_t i = 0; i < n; ++i) {
    lab[i] = ctx.teacher.predict(decision.row(i));
    mal += static_cast<std::size_t>(lab[i]);
  }
  const std::size_t ben = n - mal;

  // Stopping criterion 3: the node is already heavily skewed to one class.
  const double ratio = static_cast<double>(std::min(mal, ben)) /
                       static_cast<double>(std::max<std::size_t>(std::max(mal, ben), 1));
  if (ratio < ctx.cfg.tau_split) return self;

  const double h_node = entropy(static_cast<double>(mal) / static_cast<double>(n));

  // Search candidate (q, p): quantile-spaced values of each feature over
  // X_decision; maximise information gain (Eq. 4).
  double best_gain = -1.0;
  int best_q = -1;
  double best_p = 0.0;
  std::vector<double> vals(n);
  std::vector<std::size_t> order(n);
  for (std::size_t q = 0; q < m; ++q) {
    for (std::size_t i = 0; i < n; ++i) vals[i] = decision(i, q);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return vals[a] < vals[b]; });
    const std::size_t cands = std::max<std::size_t>(1, ctx.cfg.candidates_per_feature);
    for (std::size_t c = 1; c <= cands; ++c) {
      const std::size_t pos = c * n / (cands + 1);
      if (pos == 0 || pos >= n) continue;
      const double a = vals[order[pos - 1]];
      const double b = vals[order[pos]];
      if (!(b > a)) continue;
      const double p = 0.5 * (a + b);
      std::size_t nl = 0, mal_l = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (vals[i] < p) {
          ++nl;
          mal_l += static_cast<std::size_t>(lab[i]);
        }
      }
      if (nl == 0 || nl == n) continue;
      const std::size_t nr = n - nl;
      const std::size_t mal_r = mal - mal_l;
      const double wl = static_cast<double>(nl) / static_cast<double>(n);
      const double h_children =
          wl * entropy(static_cast<double>(mal_l) / static_cast<double>(nl)) +
          (1.0 - wl) * entropy(static_cast<double>(mal_r) / static_cast<double>(nr));
      const double gain = h_node - h_children;
      if (gain > best_gain) {
        best_gain = gain;
        best_q = static_cast<int>(q);
        best_p = p;
      }
    }
  }
  if (best_q < 0 || best_gain <= 0.0) return self;  // no informative split

  // Children receive only the real samples (X_node filtered by the split);
  // augmentation is redrawn from each child's own data box.
  std::vector<std::size_t> left_rows, right_rows;
  for (std::size_t r : rows) {
    (ctx.train(r, static_cast<std::size_t>(best_q)) < best_p ? left_rows : right_rows)
        .push_back(r);
  }
  rows.clear();
  rows.shrink_to_fit();

  nodes[self].feature = best_q;
  nodes[self].threshold = best_p;
  const int l = build_node(ctx, nodes, std::move(left_rows), depth + 1);
  const int r = build_node(ctx, nodes, std::move(right_rows), depth + 1);
  nodes[self].left = l;
  nodes[self].right = r;
  return self;
}

// Split-cell boxes (clipped to the root data box) for leaves that no
// training sample reaches — their feature range is the cell itself.
void collect_cell_boxes(const std::vector<GuidedNode>& nodes, int idx, Box box,
                        std::vector<Box>& out) {
  const auto& nd = nodes[static_cast<std::size_t>(idx)];
  if (nd.feature < 0) {
    out[static_cast<std::size_t>(idx)] = std::move(box);
    return;
  }
  Box lbox = box, rbox = std::move(box);
  const auto f = static_cast<std::size_t>(nd.feature);
  lbox.hi[f] = std::min(lbox.hi[f], nd.threshold);
  rbox.lo[f] = std::max(rbox.lo[f], nd.threshold);
  collect_cell_boxes(nodes, nd.left, std::move(lbox), out);
  collect_cell_boxes(nodes, nd.right, std::move(rbox), out);
}

}  // namespace

int GuidedTree::leaf_index(std::span<const double> x) const {
  int i = 0;
  while (nodes[static_cast<std::size_t>(i)].feature >= 0) {
    const auto& n = nodes[static_cast<std::size_t>(i)];
    i = x[static_cast<std::size_t>(n.feature)] < n.threshold ? n.left : n.right;
  }
  return i;
}

std::size_t GuidedTree::leaf_count() const {
  std::size_t c = 0;
  for (const auto& n : nodes) c += n.feature < 0 ? 1 : 0;
  return c;
}

int GuidedTree::vote(std::span<const double> x) const {
  const auto& leaf = nodes[static_cast<std::size_t>(leaf_index(x))];
  if (leaf.label == 1) return 1;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j] < leaf.box_lo[j] || x[j] > leaf.box_hi[j]) return 1;
  }
  return 0;
}

void GuidedIsolationForest::fit(const ml::Matrix& train, const AeEnsemble& teacher,
                                ml::Rng& rng) {
  if (train.rows() == 0) throw std::invalid_argument("GuidedIsolationForest: empty data");
  if (teacher.size() == 0) throw std::invalid_argument("GuidedIsolationForest: untrained teacher");
  const std::size_t m = train.cols();
  const std::size_t psi = std::min(cfg_.subsample, train.rows());
  const int height_cap =
      static_cast<int>(std::ceil(std::log2(std::max<double>(2.0, static_cast<double>(psi)))));

  feat_min_.assign(m, std::numeric_limits<double>::infinity());
  feat_max_.assign(m, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < train.rows(); ++i) {
    auto r = train.row(i);
    for (std::size_t j = 0; j < m; ++j) {
      feat_min_[j] = std::min(feat_min_[j], r[j]);
      feat_max_[j] = std::max(feat_max_[j], r[j]);
    }
  }

  // One root seed from the caller's stream; every randomised task below
  // derives its own independent stream from (phase seed, task index). Tasks
  // therefore depend only on their index and on immutable shared inputs —
  // the fitted forest is bit-identical at every thread count.
  const std::uint64_t root_seed = rng.engine()();
  const std::uint64_t grow_seed = ml::mix64(root_seed ^ 0x67726f77ull);     // "grow"
  const std::uint64_t distill_seed = ml::mix64(root_seed ^ 0x64697374ull);  // "dist"
  ml::ThreadPool pool(ml::resolve_threads(cfg_.num_threads));

  // --- Training: teacher-guided growth (§3.2.1), one task per tree --------
  trees_.assign(cfg_.num_trees, {});
  pool.parallel_for(cfg_.num_trees, [&](std::size_t t) {
    ml::Rng tree_rng = ml::task_rng(grow_seed, t);
    auto rows = tree_rng.sample_without_replacement(train.rows(), psi);
    BuildContext ctx{train, teacher, cfg_, tree_rng, height_cap};
    build_node(ctx, trees_[t].nodes, std::move(rows), 0);
  });

  // --- Knowledge distillation (§3.2.2) ------------------------------------
  // Per-tree preparation (routing + split cells), one task per tree …
  const std::size_t r = teacher.size();
  const double inf = std::numeric_limits<double>::infinity();
  struct TreeAux {
    std::vector<std::vector<std::size_t>> leaf_rows;  // train rows per leaf
    std::vector<Box> cell_boxes;                      // split cell per node
  };
  std::vector<TreeAux> aux(trees_.size());
  pool.parallel_for(trees_.size(), [&](std::size_t t) {
    const GuidedTree& tree = trees_[t];
    aux[t].leaf_rows.resize(tree.nodes.size());
    for (std::size_t i = 0; i < train.rows(); ++i) {
      aux[t].leaf_rows[static_cast<std::size_t>(tree.leaf_index(train.row(i)))].push_back(i);
    }
    aux[t].cell_boxes.resize(tree.nodes.size());
    collect_cell_boxes(tree.nodes, 0,
                       Box{std::vector<double>(m, -inf), std::vector<double>(m, inf)},
                       aux[t].cell_boxes);
  });

  // … then one scoring task per (tree, leaf): this AE-inference loop over
  // X_leaf U X_aug dominates fit() wall time. Each task writes only its own
  // leaf node and reads only const state, so no synchronisation is needed.
  struct LeafTask {
    std::uint32_t tree, node;
  };
  std::vector<LeafTask> leaves;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    for (std::size_t li = 0; li < trees_[t].nodes.size(); ++li) {
      if (trees_[t].nodes[li].feature < 0) {
        leaves.push_back({static_cast<std::uint32_t>(t), static_cast<std::uint32_t>(li)});
      }
    }
  }
  pool.parallel_for(leaves.size(), [&](std::size_t k) {
    const std::size_t t = leaves[k].tree;
    const std::size_t li = leaves[k].node;
    auto& node = trees_[t].nodes[li];
    const auto& leaf_rows = aux[t].leaf_rows[li];
    const auto& cell_boxes = aux[t].cell_boxes;
    // Stream keyed by (tree, leaf) — not by k — so it does not depend on
    // how the task list happened to be flattened.
    ml::Rng leaf_rng =
        ml::task_rng(distill_seed, (static_cast<std::uint64_t>(t) << 32) | li);

    auto finite_cell = [&] {
      Box b = cell_boxes[li];
      for (std::size_t j = 0; j < m; ++j) {
        b.lo[j] = std::max(b.lo[j], feat_min_[j]);
        b.hi[j] = std::min(b.hi[j], feat_max_[j]);
        if (b.lo[j] > b.hi[j]) b.lo[j] = b.hi[j];  // cell fully outside data
      }
      return b;
    };

    // X_leaf U X_aug; X_aug ~ features_range(leaf): the routed samples'
    // bounding box when the leaf holds data, else the leaf's split cell.
    ml::Matrix pts(0, m);
    for (std::size_t row : leaf_rows) pts.push_row(train.row(row));
    const Box box = leaf_rows.size() > 1 ? data_box(train, leaf_rows) : finite_cell();
    augment_box(box, cfg_.augment, leaf_rng, pts);

    node.leaf_re.assign(r, 0.0);
    for (std::size_t i = 0; i < pts.rows(); ++i) {
      for (std::size_t u = 0; u < r; ++u) {
        node.leaf_re[u] += teacher.reconstruction_error(u, pts.row(i));
      }
    }
    for (auto& v : node.leaf_re) v /= static_cast<double>(pts.rows());
    node.label = teacher.vote_from_errors(node.leaf_re);

    // Benign support hypercube: routed samples' bounding box inflated by
    // the margin (plus a small absolute slack so zero-span dimensions
    // still generalise), clipped to the leaf's split cell. Empty leaves
    // keep the whole cell as their box (their label already covers it).
    node.box_lo.assign(m, 0.0);
    node.box_hi.assign(m, 0.0);
    if (leaf_rows.size() > 1) {
      const Box data = data_box(train, leaf_rows);
      for (std::size_t j = 0; j < m; ++j) {
        const double span = data.hi[j] - data.lo[j];
        const double slack =
            cfg_.box_margin * span + 0.005 * (feat_max_[j] - feat_min_[j]);
        node.box_lo[j] = std::max(data.lo[j] - slack, cell_boxes[li].lo[j]);
        node.box_hi[j] = std::min(data.hi[j] + slack, cell_boxes[li].hi[j]);
      }
    } else {
      node.box_lo = cell_boxes[li].lo;
      node.box_hi = cell_boxes[li].hi;
    }
  });
}

int GuidedIsolationForest::predict(std::span<const double> x) const {
  return 2.0 * vote_fraction(x) > 1.0 ? 1 : 0;
}

double GuidedIsolationForest::vote_fraction(std::span<const double> x) const {
  if (trees_.empty()) throw std::logic_error("GuidedIsolationForest: not fitted");
  std::size_t mal = 0;
  for (const auto& t : trees_) mal += static_cast<std::size_t>(t.vote(x));
  return static_cast<double>(mal) / static_cast<double>(trees_.size());
}

}  // namespace iguard::core
