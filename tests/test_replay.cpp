#include <gtest/gtest.h>

#include "ml/rng.hpp"
#include "switchsim/replay.hpp"

namespace iguard::switchsim {
namespace {

/// Synthetic mixed trace: `flows` bidirectional flows, ~8 packets each,
/// interleaved in time. Malicious flows send large packets so the min-size
/// feature separates the classes crisply after quantisation.
traffic::Trace make_trace(std::size_t flows, std::size_t packets_per_flow, ml::Rng& rng) {
  traffic::Trace t;
  for (std::size_t f = 0; f < flows; ++f) {
    const bool mal = f % 3 == 0;
    traffic::FiveTuple ft{0x0A000000u + static_cast<std::uint32_t>(f),
                          0x0B000000u + static_cast<std::uint32_t>(f % 7),
                          static_cast<std::uint16_t>(1024 + f), 443, traffic::kProtoTcp};
    for (std::size_t i = 0; i < packets_per_flow; ++i) {
      traffic::Packet p;
      p.ts = 0.001 * static_cast<double>(f) + 0.05 * static_cast<double>(i) +
             rng.uniform(0.0, 0.0005);
      p.ft = i % 2 == 0 ? ft : ft.reversed();  // both directions
      p.length = mal ? static_cast<std::uint16_t>(1200 + rng.index(200))
                     : static_cast<std::uint16_t>(80 + rng.index(60));
      p.malicious = mal;
      t.packets.push_back(p);
    }
  }
  t.sort_by_time();
  return t;
}

class ReplayTest : public ::testing::Test {
 protected:
  ReplayTest() {
    ml::Matrix fake(2, kSwitchFlFeatures);
    for (std::size_t j = 0; j < kSwitchFlFeatures; ++j) {
      fake(0, j) = 0.0;
      fake(1, j) = 1e6;
    }
    quant_.fit(fake);
    // One tree whose only rule admits flows with min packet size below the
    // quantised level of ~600 B: benign flows match, attack flows do not.
    wl_.tree_count = 1;
    std::vector<rules::FieldRange> box(kSwitchFlFeatures, {0, quant_.domain_max()});
    box[5] = {0, quant_.quantize_value(5, 600.0)};  // feature 5 = min size
    wl_.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});
  }

  DeployedModel model() const {
    DeployedModel dm;
    dm.fl_tables = &wl_;
    dm.fl_quantizer = &quant_;
    return dm;
  }

  PipelineConfig pipe_cfg() const {
    PipelineConfig cfg;
    cfg.packet_threshold_n = 4;
    cfg.idle_timeout_delta = 10.0;
    return cfg;
  }

  rules::Quantizer quant_{16};
  core::VoteWhitelist wl_;
};

TEST_F(ReplayTest, ShardOfIsDirectionInvariant) {
  ml::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    traffic::FiveTuple ft{static_cast<std::uint32_t>(rng.integer(1, 1 << 30)),
                          static_cast<std::uint32_t>(rng.integer(1, 1 << 30)),
                          static_cast<std::uint16_t>(rng.integer(1, 65535)),
                          static_cast<std::uint16_t>(rng.integer(1, 65535)),
                          traffic::kProtoUdp};
    for (std::size_t k : {2u, 4u, 8u}) {
      EXPECT_EQ(shard_of(ft, k), shard_of(ft.reversed(), k));
    }
  }
}

TEST_F(ReplayTest, ShardTraceIsFlowDisjointAndOrderPreserving) {
  ml::Rng rng(7);
  const auto trace = make_trace(60, 8, rng);
  ReplayConfig rc;
  rc.shards = 4;
  const auto parts = shard_trace(trace, rc);
  std::size_t total = 0;
  for (std::size_t s = 0; s < parts.size(); ++s) {
    total += parts[s].size();
    double prev = -1.0;
    for (const auto& p : parts[s].packets) {
      EXPECT_EQ(shard_of(p.ft, rc.shards, rc.shard_seed), s);
      EXPECT_GE(p.ts, prev);  // stable partition keeps time order
      prev = p.ts;
    }
  }
  EXPECT_EQ(total, trace.size());
}

TEST_F(ReplayTest, ShardedAggregateEqualsSequentialPerShardSum) {
  // The parallel K-shard replay must equal running the K per-shard pipelines
  // one after another and summing their stats — shard isolation is exact.
  ml::Rng rng(11);
  const auto trace = make_trace(80, 8, rng);
  const auto dm = model();
  ReplayConfig rc;
  rc.shards = 4;

  const auto parallel = replay_sharded(trace, pipe_cfg(), dm, rc);

  const auto parts = shard_trace(trace, rc);
  std::vector<SimStats> seq(parts.size());
  for (std::size_t s = 0; s < parts.size(); ++s) {
    Pipeline pipe(pipe_cfg(), dm);
    seq[s] = pipe.run(parts[s]);
  }
  const SimStats want = merge_stats(seq);

  EXPECT_EQ(parallel.stats.packets, want.packets);
  EXPECT_EQ(parallel.stats.dropped, want.dropped);
  EXPECT_EQ(parallel.stats.flows_classified, want.flows_classified);
  EXPECT_EQ(parallel.stats.blacklist_hits, want.blacklist_hits);
  EXPECT_EQ(parallel.stats.collisions, want.collisions);
  EXPECT_EQ(parallel.stats.path_count, want.path_count);
  EXPECT_EQ(parallel.stats.tp, want.tp);
  EXPECT_EQ(parallel.stats.fp, want.fp);
  EXPECT_EQ(parallel.stats.tn, want.tn);
  EXPECT_EQ(parallel.stats.fn, want.fn);
  for (std::size_t s = 0; s < parts.size(); ++s) {
    EXPECT_EQ(parallel.per_shard[s].pred, seq[s].pred);
    EXPECT_EQ(parallel.per_shard[s].truth, seq[s].truth);
  }
}

TEST_F(ReplayTest, BitIdenticalAcrossThreadCounts) {
  ml::Rng rng(13);
  const auto trace = make_trace(100, 8, rng);
  const auto dm = model();
  ReplayConfig rc;
  rc.shards = 8;
  rc.num_threads = 1;
  const auto a = replay_sharded(trace, pipe_cfg(), dm, rc);
  rc.num_threads = 8;
  const auto b = replay_sharded(trace, pipe_cfg(), dm, rc);
  EXPECT_EQ(a.stats.pred, b.stats.pred);
  EXPECT_EQ(a.stats.truth, b.stats.truth);
  EXPECT_EQ(a.stats.packets, b.stats.packets);
  EXPECT_EQ(a.stats.dropped, b.stats.dropped);
  EXPECT_EQ(a.stats.path_count, b.stats.path_count);
  EXPECT_EQ(a.stats.faults.leaked_packets, b.stats.faults.leaked_packets);
}

TEST_F(ReplayTest, MergedLabelsFollowOriginalTraceOrder) {
  // pred/truth from the sharded replay must line up with the input trace
  // packet-for-packet: truth is an input, so it must round-trip exactly.
  ml::Rng rng(17);
  const auto trace = make_trace(50, 6, rng);
  ReplayConfig rc;
  rc.shards = 4;
  const auto out = replay_sharded(trace, pipe_cfg(), model(), rc);
  ASSERT_EQ(out.stats.truth.size(), trace.size());
  ASSERT_EQ(out.stats.pred.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(out.stats.truth[i], trace.packets[i].malicious ? 1 : 0);
  }
}

TEST_F(ReplayTest, SingleShardMatchesPlainPipelineRun) {
  ml::Rng rng(19);
  const auto trace = make_trace(40, 8, rng);
  const auto dm = model();
  const auto sharded = replay_sharded(trace, pipe_cfg(), dm, ReplayConfig{});
  Pipeline pipe(pipe_cfg(), dm);
  const auto plain = pipe.run(trace);
  EXPECT_EQ(sharded.stats.pred, plain.pred);
  EXPECT_EQ(sharded.stats.truth, plain.truth);
  EXPECT_EQ(sharded.stats.dropped, plain.dropped);
  EXPECT_EQ(sharded.stats.path_count, plain.path_count);
}

TEST_F(ReplayTest, RecordLabelsOffKeepsConfusionCounts) {
  ml::Rng rng(23);
  const auto trace = make_trace(60, 8, rng);
  const auto dm = model();
  PipelineConfig on = pipe_cfg();
  PipelineConfig off = pipe_cfg();
  off.record_labels = false;

  Pipeline pipe_on(on, dm);
  Pipeline pipe_off(off, dm);
  const auto a = pipe_on.run(trace);
  const auto b = pipe_off.run(trace);

  EXPECT_TRUE(b.pred.empty());
  EXPECT_TRUE(b.truth.empty());
  EXPECT_EQ(a.tp, b.tp);
  EXPECT_EQ(a.fp, b.fp);
  EXPECT_EQ(a.tn, b.tn);
  EXPECT_EQ(a.fn, b.fn);
  EXPECT_EQ(a.tp + a.fp + a.tn + a.fn, a.packets);
  // The recorded vectors and the counters tell the same story.
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;
  for (std::size_t i = 0; i < a.pred.size(); ++i) {
    if (a.pred[i] && a.truth[i]) ++tp;
    else if (a.pred[i]) ++fp;
    else if (a.truth[i]) ++fn;
    else ++tn;
  }
  EXPECT_EQ(a.tp, tp);
  EXPECT_EQ(a.fp, fp);
  EXPECT_EQ(a.tn, tn);
  EXPECT_EQ(a.fn, fn);
}

TEST_F(ReplayTest, SharedPrecompiledTablesMatchOwnCompilation) {
  // A DeployedModel carrying pre-compiled whitelists (compile once, share
  // across shard pipelines) must replay bit-identically to pipelines that
  // compile their own copies.
  ml::Rng rng(31);
  const auto trace = make_trace(80, 8, rng);
  const auto own = model();
  DeployedModel shared = model();
  const core::CompiledVoteWhitelist fl_compiled(wl_);
  shared.fl_compiled = &fl_compiled;

  ReplayConfig rc;
  rc.shards = 4;
  const auto a = replay_sharded(trace, pipe_cfg(), own, rc);
  const auto b = replay_sharded(trace, pipe_cfg(), shared, rc);
  EXPECT_EQ(a.stats.pred, b.stats.pred);
  EXPECT_EQ(a.stats.dropped, b.stats.dropped);
  EXPECT_EQ(a.stats.path_count, b.stats.path_count);
  EXPECT_EQ(a.stats.flows_classified, b.stats.flows_classified);
}

TEST_F(ReplayTest, LinearAndCompiledEnginesAgreeOnReplay) {
  ml::Rng rng(29);
  const auto trace = make_trace(80, 8, rng);
  const auto dm = model();
  PipelineConfig lin = pipe_cfg();
  lin.match_engine = MatchEngine::kLinear;
  PipelineConfig comp = pipe_cfg();
  comp.match_engine = MatchEngine::kCompiled;
  Pipeline a(lin, dm), b(comp, dm);
  const auto sa = a.run(trace);
  const auto sb = b.run(trace);
  EXPECT_EQ(sa.pred, sb.pred);
  EXPECT_EQ(sa.dropped, sb.dropped);
  EXPECT_EQ(sa.path_count, sb.path_count);
  EXPECT_EQ(sa.flows_classified, sb.flows_classified);
}

// --- model-swap determinism matrix ------------------------------------------

/// Three-table vote whitelist over min packet size (feature 5): two broad
/// tables admit up to ~900 B, one narrow table only up to ~300 B. Early
/// benign traffic (~100 B) is covered by all three; drifted benign traffic
/// (~700 B) stays majority-benign but misses the narrow table on every
/// mirror — the sustained-miss regime the drift detector fires on.
core::VoteWhitelist swap_whitelist(const rules::Quantizer& q) {
  core::VoteWhitelist wl;
  wl.tree_count = 3;
  for (double cap : {900.0, 900.0, 300.0}) {
    std::vector<rules::FieldRange> box(kSwitchFlFeatures, {0, q.domain_max()});
    box[5] = {0, q.quantize_value(5, cap)};
    wl.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});
  }
  return wl;
}

/// Benign traffic whose packet size migrates mid-trace (small -> ~700 B),
/// with malicious large-packet flows mixed in throughout.
traffic::Trace drift_trace(std::size_t flows, std::size_t packets_per_flow, ml::Rng& rng) {
  traffic::Trace t;
  for (std::size_t f = 0; f < flows; ++f) {
    const bool mal = f % 5 == 0;
    const bool drifted = f >= flows / 2;  // late flows carry the new profile
    traffic::FiveTuple ft{0x0A000000u + static_cast<std::uint32_t>(f),
                          0x0B000000u + static_cast<std::uint32_t>(f % 7),
                          static_cast<std::uint16_t>(1024 + f), 443, traffic::kProtoTcp};
    for (std::size_t i = 0; i < packets_per_flow; ++i) {
      traffic::Packet p;
      p.ts = 0.001 * static_cast<double>(f) + 0.05 * static_cast<double>(i) +
             rng.uniform(0.0, 0.0005);
      p.ft = i % 2 == 0 ? ft : ft.reversed();
      if (mal) {
        p.length = static_cast<std::uint16_t>(1200 + rng.index(200));
      } else if (drifted) {
        p.length = static_cast<std::uint16_t>(650 + rng.index(100));
      } else {
        p.length = static_cast<std::uint16_t>(80 + rng.index(60));
      }
      p.malicious = mal;
      t.packets.push_back(p);
    }
  }
  t.sort_by_time();
  return t;
}

PipelineConfig swap_pipe_cfg(bool enable_swap) {
  PipelineConfig cfg;
  cfg.packet_threshold_n = 4;
  cfg.idle_timeout_delta = 10.0;
  cfg.swap.enabled = enable_swap;
  cfg.swap.drift.window = 16;
  cfg.swap.drift.baseline_windows = 1;
  cfg.swap.drift.miss_rate_margin = 0.10;
  // A ~400 B size jump is ~25 quantised levels: out of per-field reach, so
  // the updater cannot absorb the drift and the miss rate must fire.
  cfg.swap.update.max_extension_per_field = 8;
  cfg.swap.publish_after_extensions = 0;  // drift is the only trigger
  cfg.swap.recent_capacity = 512;
  return cfg;
}

TEST_F(ReplayTest, DriftTriggeredSwapsAreBitIdenticalAcrossShardAndThreadCounts) {
  ml::Rng rng(31);
  const auto trace = drift_trace(400, 8, rng);
  rules::Quantizer q = quant_;
  const auto wl = swap_whitelist(q);
  DeployedModel dm;
  dm.fl_tables = &wl;
  dm.fl_quantizer = &q;
  const auto cfg = swap_pipe_cfg(true);

  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    ReplayConfig rc;
    rc.shards = k;
    rc.num_threads = 1;
    const auto a = replay_sharded(trace, cfg, dm, rc);
    rc.num_threads = k;
    const auto b = replay_sharded(trace, cfg, dm, rc);
    EXPECT_EQ(a.stats.pred, b.stats.pred) << "shards=" << k;
    EXPECT_EQ(a.stats.truth, b.stats.truth) << "shards=" << k;
    EXPECT_EQ(a.stats.path_count, b.stats.path_count) << "shards=" << k;
    EXPECT_EQ(a.stats.tp, b.stats.tp) << "shards=" << k;
    EXPECT_EQ(a.stats.fn, b.stats.fn) << "shards=" << k;
    EXPECT_EQ(a.stats.swap.publishes, b.stats.swap.publishes) << "shards=" << k;
    EXPECT_EQ(a.stats.swap.drift_fires, b.stats.swap.drift_fires) << "shards=" << k;
    EXPECT_EQ(a.stats.swap.mirrors_applied, b.stats.swap.mirrors_applied) << "shards=" << k;
    EXPECT_EQ(a.stats.swap.extensions_applied, b.stats.swap.extensions_applied)
        << "shards=" << k;
    EXPECT_EQ(a.stats.swap.final_version, b.stats.swap.final_version) << "shards=" << k;
    EXPECT_EQ(a.stats.faults.mirrors_enqueued, b.stats.faults.mirrors_enqueued)
        << "shards=" << k;
    EXPECT_EQ(a.stats.faults.mirrors_delivered, b.stats.faults.mirrors_delivered)
        << "shards=" << k;
    if (k == 1) {
      // The workload genuinely drifts: the single-shard run must swap.
      EXPECT_GE(a.stats.swap.publishes, 1u);
      EXPECT_GE(a.stats.swap.drift_fires, 1u);
      EXPECT_GT(a.stats.swap.final_version, 1u);
    }
    // Hitless accounting at every shard count: every packet took exactly one
    // path and produced exactly one confusion entry.
    std::size_t paths = 0;
    for (const auto c : a.stats.path_count) paths += c;
    EXPECT_EQ(paths, a.stats.packets) << "shards=" << k;
    EXPECT_EQ(a.stats.tp + a.stats.fp + a.stats.tn + a.stats.fn, a.stats.packets)
        << "shards=" << k;
  }
}

TEST_F(ReplayTest, SwapLoopWithoutTriggersIsByteIdenticalToDisabled) {
  // With the loop enabled but no trigger armed (drift off, no extension
  // threshold), mirrors flow and staging learns — but nothing publishes, so
  // every data-plane observable must match a swap-disabled run exactly.
  ml::Rng rng(37);
  const auto trace = drift_trace(150, 8, rng);
  rules::Quantizer q = quant_;
  const auto wl = swap_whitelist(q);
  DeployedModel dm;
  dm.fl_tables = &wl;
  dm.fl_quantizer = &q;
  auto on = swap_pipe_cfg(true);
  on.swap.drift.enabled = false;
  const auto off = swap_pipe_cfg(false);

  Pipeline pa(on, dm), pb(off, dm);
  const auto a = pa.run(trace);
  const auto b = pb.run(trace);
  EXPECT_EQ(a.pred, b.pred);
  EXPECT_EQ(a.truth, b.truth);
  EXPECT_EQ(a.path_count, b.path_count);
  EXPECT_EQ(a.tp, b.tp);
  EXPECT_EQ(a.fp, b.fp);
  EXPECT_EQ(a.tn, b.tn);
  EXPECT_EQ(a.fn, b.fn);
  EXPECT_EQ(a.green_mirrors, b.green_mirrors);
  EXPECT_EQ(a.benign_feature_mirrors, b.benign_feature_mirrors);
  EXPECT_EQ(a.faults.leaked_packets, b.faults.leaked_packets);
  // The loop was live (mirrors transported and consumed), just never fired.
  EXPECT_EQ(a.swap.publishes, 0u);
  EXPECT_EQ(a.swap.final_version, 1u);
  EXPECT_GT(a.swap.mirrors_applied, 0u);
  EXPECT_EQ(a.swap.mirrors_applied, a.faults.mirrors_delivered);
  EXPECT_EQ(b.swap.final_version, 0u);  // loop off: all-zero stats
}

TEST_F(ReplayTest, SwapLatencyRunsLoseNoPacketsAndRetireEveryVersion) {
  ml::Rng rng(41);
  const auto trace = drift_trace(300, 8, rng);
  rules::Quantizer q = quant_;
  const auto wl = swap_whitelist(q);
  DeployedModel dm;
  dm.fl_tables = &wl;
  dm.fl_quantizer = &q;
  auto cfg = swap_pipe_cfg(true);
  cfg.swap.swap_latency_s = 0.02;  // publish visibly later than the trigger
  ReplayConfig rc;
  rc.shards = 4;
  const auto out = replay_sharded(trace, cfg, dm, rc);

  std::size_t paths = 0;
  for (const auto c : out.stats.path_count) paths += c;
  EXPECT_EQ(paths, out.stats.packets);
  EXPECT_EQ(out.stats.packets, trace.size());
  EXPECT_EQ(out.stats.tp + out.stats.fp + out.stats.tn + out.stats.fn, out.stats.packets);
  EXPECT_GE(out.stats.swap.publishes, 1u);
  for (const auto& s : out.per_shard) {
    // Each publish retires exactly one version and every retired version is
    // reclaimed by end of run — no leaked bundles, no dangling readers.
    EXPECT_EQ(s.swap.bundles_retired, s.swap.publishes);
    EXPECT_EQ(s.swap.final_version, 1u + s.swap.publishes);
    // Every emitted mirror is accounted for: delivered or counted lost.
    EXPECT_EQ(s.faults.mirrors_delivered + s.faults.mirrors_lost, s.benign_feature_mirrors);
    EXPECT_EQ(s.swap.mirrors_applied, s.faults.mirrors_delivered);
  }
}

}  // namespace
}  // namespace iguard::switchsim
