// Reproduces Appendix B.2: control-plane overhead. Whenever the data plane
// determines a flow's class it sends a digest carrying the 13 B five-tuple
// plus a 1-bit label; control-plane-assisted designs additionally ship ~52 B
// of flow-level features per digest so the CPU-side model can re-classify.
// The paper normalises to 50k digests per 30 s window: iGuard ~21 KBps vs
// ~110 KBps (5.2x). We report both that normalisation and the digest rate
// actually measured in the pipeline replay.
#include <iostream>

#include "eval/report.hpp"
#include "harness/testbed_lab.hpp"

using namespace iguard;

int main() {
  constexpr double kDigestBytes = 13.125;  // 13 B 5-tuple + 1-bit label
  constexpr double kFeatureBytes = 52.0;   // extra FL features per digest
  constexpr double kWindowDigests = 50000.0;
  constexpr double kWindowSeconds = 30.0;

  const double iguard_kbps = kWindowDigests * kDigestBytes / kWindowSeconds / 1000.0;
  const double prior_kbps =
      kWindowDigests * (kDigestBytes + kFeatureBytes) / kWindowSeconds / 1000.0;

  eval::Table norm({"design", "bytes/digest", "KBps @ 50k/30s"});
  norm.add_row({"iGuard (5-tuple + label)", eval::Table::num(kDigestBytes, 3),
                eval::Table::num(iguard_kbps, 1)});
  norm.add_row({"prior work (+FL features)", eval::Table::num(kDigestBytes + kFeatureBytes, 3),
                eval::Table::num(prior_kbps, 1)});
  norm.print(std::cout, "App. B.2: normalised control-plane overhead");
  std::cout << "ratio: " << eval::Table::num(prior_kbps / iguard_kbps, 2)
            << "x   (paper: 21 KBps vs 110 KBps, 5.2x)\n\n";

  // Measured digest traffic from actual replays.
  harness::TestbedLab lab{harness::TestbedLabConfig{}};
  eval::Table meas({"attack", "digests", "digest KBps (measured)", "blacklist installs"});
  for (const auto atk : traffic::headline_attacks()) {
    const auto out = lab.run_attack(atk);
    const double secs = std::max(1e-9, out.trace_duration_s);
    const double kbps = static_cast<double>(out.iguard_stats.flows_classified) * kDigestBytes /
                        secs / 1000.0;
    // Controller counters live inside the pipeline; SimStats keeps the
    // flow-classification count which equals the digest count by design.
    meas.add_row({traffic::attack_name(atk),
                  std::to_string(out.iguard_stats.flows_classified),
                  eval::Table::num(kbps, 3),
                  std::to_string(out.iguard_stats.path(switchsim::Path::kRed))});
  }
  meas.print(std::cout, "Measured digest traffic in the replay (5 headline attacks)");
  meas.write_csv("b2_control_plane.csv");
  return 0;
}
