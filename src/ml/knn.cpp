#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace iguard::ml {

void KnnDetector::fit(const Matrix& benign, Rng& rng) {
  if (benign.rows() == 0) throw std::invalid_argument("KnnDetector::fit: empty data");
  Matrix z = scaler_.fit_transform(benign);
  if (z.rows() > cfg_.max_reference) {
    auto idx = rng.sample_without_replacement(z.rows(), cfg_.max_reference);
    ref_ = z.gather(idx);
  } else {
    ref_ = std::move(z);
  }

  // Threshold on leave-self-out scores of the (unsubsampled) training data.
  std::vector<double> scores(benign.rows());
  for (std::size_t i = 0; i < benign.rows(); ++i) scores[i] = score(benign.row(i));
  std::sort(scores.begin(), scores.end());
  const std::size_t qi = std::min(
      scores.size() - 1,
      static_cast<std::size_t>(cfg_.threshold_quantile * static_cast<double>(scores.size())));
  threshold_ = scores[qi];
}

double KnnDetector::score(std::span<const double> x) {
  if (!scaler_.fitted()) throw std::logic_error("KnnDetector: not fitted");
  z_.resize(x.size());
  scaler_.transform_row(x, z_);
  const std::size_t n = ref_.rows();
  const std::size_t k = std::min(cfg_.k, n);
  dists_.resize(n);
  for (std::size_t i = 0; i < n; ++i) dists_[i] = sq_dist(ref_.row(i), z_);
  std::nth_element(dists_.begin(), dists_.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   dists_.end());
  double mean = 0.0;
  for (std::size_t i = 0; i < k; ++i) mean += std::sqrt(dists_[i]);
  return mean / static_cast<double>(k);
}

}  // namespace iguard::ml
