// Whitelist rule generation (§3.2.3). The paper forms "iForest hypercubes"
// from the Cartesian product of all leaf feature boundaries, labels each
// hypercube with the distilled iForest (every interior point shares the
// label), merges adjacent same-label hypercubes, and installs the label-0
// (benign) hypercubes as whitelist rules.
//
// Enumerating the raw Cartesian grid is infeasible for 13 features, so we
// enumerate only *reachable* regions with a tree-product sweep: intersect
// the t trees' leaf boxes recursively in quantised integer space, carrying a
// partial aggregate (vote count, or path-length sum for the conventional
// iForest baseline) and pruning subtrees whose final label is already
// decided. The result is an exact partition of feature space that agrees
// with the forest at every quantised point.
//
// Both iGuard's labelled forest (majority vote) and the conventional
// iForest baseline (expected-path-length threshold, as HorusEye deploys it)
// compile through the same machinery, which is what makes the Table 1
// TCAM comparison apples-to-apples.
#pragma once

#include <cstdint>
#include <vector>

#include "core/guided_iforest.hpp"
#include "ml/iforest.hpp"
#include "ml/rng.hpp"
#include "rules/compiled_table.hpp"
#include "rules/quantize.hpp"
#include "rules/rule_table.hpp"
#include "rules/range_rule.hpp"

namespace iguard::core {

/// A tree with integer split levels: go left iff key[feature] < level.
/// Leaves carry a payload: 0/1 label (iGuard) or path length (baseline).
struct QuantizedNode {
  int feature = -1;
  std::uint32_t level = 0;
  int left = -1;
  int right = -1;
  double payload = 0.0;
};

struct QuantizedTree {
  std::vector<QuantizedNode> nodes;
  int root = 0;

  double payload_at(std::span<const std::uint32_t> key) const;
  double min_payload() const;
  double max_payload() const;
};

/// Quantise a distilled guided tree (payload = leaf label).
QuantizedTree quantize_tree(const GuidedTree& tree, const rules::Quantizer& q);
/// Quantise a conventional iTree (payload = depth + c(leaf.size)).
QuantizedTree quantize_tree(const ml::ITree& tree, const rules::Quantizer& q);

struct WhitelistConfig {
  /// Abort if the sweep produces more than this many regions (explosion
  /// guard; iGuard's extra stopping criterion keeps real counts far lower).
  std::size_t max_regions = 2'000'000;
  /// Work cap on sweep node visits (bounds compile time, not just output).
  std::size_t max_steps = 30'000'000;
  bool merge_adjacent = true;
  /// Optional per-field clip applied to every benign rule (quantised
  /// levels). A whitelist must not admit feature values outside the benign
  /// training support — split cells at the domain edge otherwise extend to
  /// values no benign flow ever produced (e.g. destination ports below any
  /// benign service port). Empty = no clipping.
  std::vector<rules::FieldRange> clip;
};

struct WhitelistResult {
  std::vector<rules::RangeRule> rules;  // label-0 hypercubes (merged)
  std::size_t regions_total = 0;
  std::size_t regions_benign = 0;
  std::size_t rules_before_merge = 0;
};

/// Compile iGuard's distilled forest: region label = strict-majority vote.
WhitelistResult compile_majority(const GuidedIsolationForest& forest,
                                 const rules::Quantizer& q,
                                 const WhitelistConfig& cfg = {});

/// Compile the conventional-iForest baseline: region label = 1 (malicious)
/// iff the summed path length < num_trees * expected_path_threshold.
WhitelistResult compile_pathlength(const ml::IsolationForest& forest,
                                   const rules::Quantizer& q,
                                   const WhitelistConfig& cfg = {});

/// E[h] threshold equivalent to an anomaly-score threshold s:
/// score = 2^(-E/c(psi)) > s  <=>  E < -c(psi) * log2(s).
double path_threshold_from_score(double score_threshold, std::size_t psi);

/// Quantised bounding box of the data rows (per-field [q(lo), q(hi)]) — the
/// support clip for WhitelistConfig::clip. `trim` discards that fraction of
/// each tail before taking the extremes (robust support estimation: a small
/// poisoned minority in the capture must not widen the whitelist support).
std::vector<rules::FieldRange> support_clip(const ml::Matrix& data, const rules::Quantizer& q,
                                            double trim = 0.02);

/// How forest whitelists actually deploy on an RMT switch: one rule table
/// per tree plus a match counter — a packet's key gathers one benign vote
/// per table that matches, and the flow is benign iff benign votes reach a
/// strict majority. TCAM cost is the *sum* of per-tree rule counts (linear
/// in t), unlike the single-table tree-product whose rule count multiplies.
struct VoteWhitelist {
  std::vector<rules::RuleTable> tables;  // one per tree
  std::size_t tree_count = 0;

  /// 0 = benign (majority of tables match), 1 = malicious.
  int classify(std::span<const std::uint32_t> key) const;
  /// Fraction of tables *not* matching (malicious vote share).
  double malicious_vote_fraction(std::span<const std::uint32_t> key) const;
  std::size_t total_rules() const;
  const std::vector<rules::RangeRule>& tree_rules(std::size_t t) const {
    return tables[t].rules();
  }
  /// All rules concatenated (resource accounting).
  std::vector<rules::RangeRule> flattened() const;
};

/// VoteWhitelist pre-compiled through the interval-bitmap match engine
/// (rules/compiled_table.hpp): same vote semantics, but each per-tree lookup
/// is O(fields log rules) instead of O(rules × fields) and performs no heap
/// allocation — the engine the pipeline simulator runs at replay time.
struct CompiledVoteWhitelist {
  std::vector<rules::CompiledRuleTable> tables;  // one per tree
  std::size_t tree_count = 0;

  CompiledVoteWhitelist() = default;
  explicit CompiledVoteWhitelist(const VoteWhitelist& wl);

  /// 0 = benign (majority of tables match), 1 = malicious — bit-identical
  /// to VoteWhitelist::classify. Stops consulting tables once the vote is
  /// decided (benign majority reached, or unreachable by the remainder).
  int classify(std::span<const std::uint32_t> key) const;
  /// Fraction of tables *not* matching (malicious vote share).
  double malicious_vote_fraction(std::span<const std::uint32_t> key) const;

  /// Batched vote: `keys` holds out.size() row-major keys of `width` fields;
  /// out[i] = classify(key_i), bit-identical. Each table's batched lookup
  /// amortises its interval searches across the batch, and keys whose vote
  /// is already decided are skip-masked out of later tables. No heap
  /// allocation.
  void classify_batch(std::span<const std::uint32_t> keys, std::size_t width,
                      std::span<int> out) const;
};

/// Per-tree compilation of iGuard's distilled forest: tree t's table holds
/// its benign leaves' support boxes (merged, clipped).
VoteWhitelist compile_per_tree(const GuidedIsolationForest& forest,
                               const rules::Quantizer& q, const WhitelistConfig& cfg = {});

/// Per-tree compilation of the conventional-iForest baseline: tree t's
/// table holds the cells of leaves whose path length clears the threshold
/// (HorusEye-style deployment).
VoteWhitelist compile_per_tree(const ml::IsolationForest& forest, const rules::Quantizer& q,
                               const WhitelistConfig& cfg = {});

/// The paper's literal hypercube labeller: draw a random interior point of
/// each region and ask the forest (used in tests to cross-check the exact
/// vote-count labels; must agree everywhere).
int sample_label_majority(const GuidedIsolationForest& forest, const rules::Quantizer& q,
                          const rules::RangeRule& region, ml::Rng& rng);

}  // namespace iguard::core
