#include "trafficgen/pcap_io.hpp"

#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace iguard::traffic {

namespace {

constexpr std::uint32_t kPcapMagic = 0xA1B2C3D4;  // little-endian, microseconds
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::size_t kEthLen = 14;
constexpr std::size_t kIpv4Len = 20;
constexpr std::size_t kL4Len = 8;  // enough for UDP header / TCP ports+seq
constexpr std::size_t kMinFrame = kEthLen + kIpv4Len + kL4Len;

template <typename T>
void put(std::string& buf, T v) {
  char tmp[sizeof(T)];
  std::memcpy(tmp, &v, sizeof(T));
  buf.append(tmp, sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  char tmp[sizeof(T)];
  if (!is.read(tmp, sizeof(T))) throw std::runtime_error("pcap: truncated stream");
  T v;
  std::memcpy(&v, tmp, sizeof(T));
  return v;
}

std::uint16_t to_be16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}
std::uint32_t to_be32(std::uint32_t v) {
  return ((v & 0xFFu) << 24) | ((v & 0xFF00u) << 8) | ((v >> 8) & 0xFF00u) | (v >> 24);
}

}  // namespace

void write_pcap(std::ostream& os, const Trace& trace) {
  std::string buf;
  put<std::uint32_t>(buf, kPcapMagic);
  put<std::uint16_t>(buf, 2);  // version 2.4
  put<std::uint16_t>(buf, 4);
  put<std::int32_t>(buf, 0);   // thiszone
  put<std::uint32_t>(buf, 0);  // sigfigs
  put<std::uint32_t>(buf, 65535);
  put<std::uint32_t>(buf, kLinkTypeEthernet);

  for (const auto& p : trace.packets) {
    const std::size_t ip_len = std::max<std::size_t>(p.length, kIpv4Len + kL4Len);
    const std::size_t frame_len = kEthLen + ip_len;
    const auto ts_sec = static_cast<std::uint32_t>(p.ts);
    const auto ts_usec =
        static_cast<std::uint32_t>(std::llround((p.ts - std::floor(p.ts)) * 1e6)) % 1000000u;

    put<std::uint32_t>(buf, ts_sec);
    put<std::uint32_t>(buf, ts_usec);
    // Capture only the headers (snap), record the true frame length.
    put<std::uint32_t>(buf, static_cast<std::uint32_t>(kMinFrame));
    put<std::uint32_t>(buf, static_cast<std::uint32_t>(frame_len));

    // Ethernet: zero MACs, ethertype 0x0800.
    buf.append(12, '\0');
    put<std::uint16_t>(buf, to_be16(0x0800));
    // IPv4 header.
    buf.push_back(0x45);  // version 4, IHL 5
    buf.push_back(0);     // DSCP
    put<std::uint16_t>(buf, to_be16(static_cast<std::uint16_t>(ip_len)));
    put<std::uint16_t>(buf, 0);  // id
    put<std::uint16_t>(buf, 0);  // flags/frag
    buf.push_back(static_cast<char>(p.ttl));
    buf.push_back(static_cast<char>(p.ft.proto));
    put<std::uint16_t>(buf, 0);  // checksum (not validated by the reader)
    put<std::uint32_t>(buf, to_be32(p.ft.src_ip));
    put<std::uint32_t>(buf, to_be32(p.ft.dst_ip));
    // L4 (first 8 bytes: ports + length/seq stub).
    put<std::uint16_t>(buf, to_be16(p.ft.src_port));
    put<std::uint16_t>(buf, to_be16(p.ft.dst_port));
    put<std::uint32_t>(buf, 0);
  }
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

void write_pcap_file(const std::string& path, const Trace& trace) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("pcap: cannot open " + path);
  write_pcap(f, trace);
}

PcapRecordStatus parse_pcap_record(std::uint32_t ts_sec, std::uint32_t ts_usec,
                                   std::uint32_t orig_len, std::string_view frame,
                                   Packet& out) {
  if (ts_usec > 999999u) return PcapRecordStatus::kBadTimestamp;
  if (frame.size() < kMinFrame) return PcapRecordStatus::kTruncated;

  const auto* d = reinterpret_cast<const unsigned char*>(frame.data());
  const std::uint16_t ethertype = static_cast<std::uint16_t>(d[12] << 8 | d[13]);
  if (ethertype != 0x0800) return PcapRecordStatus::kNotIpv4;
  const unsigned char ihl = d[kEthLen] & 0x0F;
  if ((d[kEthLen] >> 4) != 4 || ihl < 5) return PcapRecordStatus::kBadIpv4Header;
  const std::size_t l4_off = kEthLen + 4u * ihl;
  if (frame.size() < l4_off + 4) return PcapRecordStatus::kTruncated;

  Packet p;
  p.ts = static_cast<double>(ts_sec) + static_cast<double>(ts_usec) * 1e-6;
  p.length = static_cast<std::uint16_t>(d[kEthLen + 2] << 8 | d[kEthLen + 3]);
  if (p.length == 0) {
    // Fallback to the record header's original length, minus the Ethernet
    // framing — clamped so a sub-Ethernet runt cannot underflow into a huge
    // bogus length (the old reader wrapped here).
    const std::uint32_t ip_len = orig_len > kEthLen ? orig_len - kEthLen : 0;
    p.length = static_cast<std::uint16_t>(std::min<std::uint32_t>(ip_len, 0xFFFFu));
  }
  if (p.length == 0) return PcapRecordStatus::kBadLength;
  p.ttl = d[kEthLen + 8];
  p.ft.proto = d[kEthLen + 9];
  if (p.ft.proto != kProtoTcp && p.ft.proto != kProtoUdp && p.ft.proto != kProtoIcmp) {
    return PcapRecordStatus::kUnsupportedProto;
  }
  p.ft.src_ip = static_cast<std::uint32_t>(d[kEthLen + 12] << 24 | d[kEthLen + 13] << 16 |
                                           d[kEthLen + 14] << 8 | d[kEthLen + 15]);
  p.ft.dst_ip = static_cast<std::uint32_t>(d[kEthLen + 16] << 24 | d[kEthLen + 17] << 16 |
                                           d[kEthLen + 18] << 8 | d[kEthLen + 19]);
  if (p.ft.proto == kProtoTcp || p.ft.proto == kProtoUdp) {
    p.ft.src_port = static_cast<std::uint16_t>(d[l4_off] << 8 | d[l4_off + 1]);
    p.ft.dst_port = static_cast<std::uint16_t>(d[l4_off + 2] << 8 | d[l4_off + 3]);
  }
  out = p;
  return PcapRecordStatus::kOk;
}

Trace read_pcap(std::istream& is) {
  const auto magic = get<std::uint32_t>(is);
  if (magic != kPcapMagic) throw std::runtime_error("pcap: unsupported magic/endianness");
  get<std::uint16_t>(is);  // version major
  get<std::uint16_t>(is);  // version minor
  get<std::int32_t>(is);
  get<std::uint32_t>(is);
  get<std::uint32_t>(is);  // snaplen
  const auto link = get<std::uint32_t>(is);
  if (link != kLinkTypeEthernet) throw std::runtime_error("pcap: not Ethernet link type");

  Trace out;
  while (is.peek() != std::char_traits<char>::eof()) {
    const auto ts_sec = get<std::uint32_t>(is);
    const auto ts_usec = get<std::uint32_t>(is);
    const auto incl = get<std::uint32_t>(is);
    const auto orig = get<std::uint32_t>(is);
    if (incl > 1u << 20) throw std::runtime_error("pcap: absurd record length");
    std::string frame(incl, '\0');
    if (!is.read(frame.data(), incl)) throw std::runtime_error("pcap: truncated record");

    Packet p;
    // Legacy semantics: records the strict parser rejects are skipped (the
    // hardened io::TraceReader quarantines them with per-category counters
    // instead). kBadTimestamp is tolerated here for bug-compatibility with
    // captures whose usec field overflows; the packet keeps the raw value.
    const auto status = parse_pcap_record(ts_sec, ts_usec % 1000000u, orig, frame, p);
    if (status != PcapRecordStatus::kOk) continue;
    out.packets.push_back(p);
  }
  return out;
}

Trace read_pcap_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("pcap: cannot open " + path);
  return read_pcap(f);
}

}  // namespace iguard::traffic
