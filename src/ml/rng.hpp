// Deterministic random-number utility shared by every stochastic component
// (traffic generation, sub-sampling, tree building, NN initialisation).
// All experiments seed explicitly so results are reproducible run-to-run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <span>
#include <vector>

namespace iguard::ml {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1f0e57u) : eng_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(eng_);
  }

  /// Gaussian sample.
  double normal(double mean = 0.0, double stddev = 1.0) {
    if (stddev <= 0.0) return mean;
    return std::normal_distribution<double>(mean, stddev)(eng_);
  }

  /// Exponential inter-arrival with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(eng_);
  }

  /// Uniform integer in [0, n).
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(eng_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t integer(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(eng_);
  }

  bool bernoulli(double p) { return std::bernoulli_distribution(p)(eng_); }

  /// Poisson draw with the given mean.
  std::size_t poisson(double mean) {
    return std::poisson_distribution<std::size_t>(mean)(eng_);
  }

  /// k distinct indices sampled uniformly from [0, n) (k clamped to n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k) {
    k = std::min(k, n);
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    // Partial Fisher-Yates: only the first k draws are needed.
    for (std::size_t i = 0; i < k; ++i) {
      std::swap(idx[i], idx[i + index(n - i)]);
    }
    idx.resize(k);
    return idx;
  }

  template <typename T>
  void shuffle(std::span<T> v) {
    std::shuffle(v.begin(), v.end(), eng_);
  }

  /// Fork an independent child stream (stable given call order).
  Rng fork() { return Rng(eng_() ^ 0x9e3779b97f4a7c15ull); }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

}  // namespace iguard::ml
