#include "rules/rule_table.hpp"

#include <algorithm>

namespace iguard::rules {

void RuleTable::set_rules(std::vector<RangeRule> rules) {
  rules_ = std::move(rules);
  std::stable_sort(rules_.begin(), rules_.end(),
                   [](const RangeRule& a, const RangeRule& b) { return a.priority < b.priority; });
}

void RuleTable::add_rule(RangeRule rule) {
  auto pos = std::upper_bound(
      rules_.begin(), rules_.end(), rule,
      [](const RangeRule& a, const RangeRule& b) { return a.priority < b.priority; });
  rules_.insert(pos, std::move(rule));
}

std::optional<RangeRule> RuleTable::match(std::span<const std::uint32_t> key) const {
  for (const auto& r : rules_) {
    if (r.matches(key)) return r;
  }
  return std::nullopt;
}

int RuleTable::classify(std::span<const std::uint32_t> key) const {
  const auto m = match(key);
  return m ? m->label : 1;
}

}  // namespace iguard::rules
