// Black-box adversarial workloads of the paper's Tables 2 and 3:
//  * low-rate:  the attacker throttles a flood to 1/factor of its rate,
//               hiding the volumetric signature (Table 2, "1/100");
//  * poison:    a fraction of attack flows is slipped, unlabeled, into the
//               benign training capture, corrupting every model trained on
//               it (Table 2, "Mirai 2% / 10%");
//  * evasion:   for every real attack packet the attacker interleaves r
//               benign-mimicking chaff packets in the same flow, diluting
//               the flow-level statistics toward benign (Table 3, "1:2",
//               "1:4").
#pragma once

#include <vector>

#include "ml/rng.hpp"
#include "trafficgen/attacks.hpp"
#include "trafficgen/flowspec.hpp"

namespace iguard::traffic {

/// Throttle: mean packet rate divided by `factor` (IPD multiplied).
void apply_low_rate(std::vector<FlowSpec>& specs, double factor);

/// Training-set poisoning: returns benign specs plus `fraction` * |benign|
/// attack flows drawn with the given attack generator. The returned specs
/// keep their ground-truth `malicious` bit (evaluation may inspect it) but
/// training code treats the whole set as "benign capture".
std::vector<FlowSpec> poison_training_flows(const std::vector<FlowSpec>& benign,
                                            AttackType type, double fraction,
                                            const AttackConfig& cfg, ml::Rng& rng);

struct EvasionConfig {
  /// Chaff packets inserted per real attack packet (the paper's 1:r).
  std::size_t chaff_per_packet = 2;
  /// Chaff size distribution: benign mid-manifold traffic.
  double chaff_size_mu = 500.0;
  double chaff_size_sigma = 280.0;
};

/// Emit packets for evasion-padded attack flows: each flow interleaves
/// benign-mimicking chaff between its attack packets (same 5-tuple, so the
/// flow-level statistics blend). All packets keep malicious=true ground
/// truth — the flow *is* the attack.
Trace evasion_trace(AttackType type, const AttackConfig& cfg, const EvasionConfig& ev,
                    ml::Rng& rng);

}  // namespace iguard::traffic
