// iGuard's novel iForest (§3.2): trees are grown by *information gain*
// against labels supplied by a trained autoencoder ensemble, instead of
// random (feature, value) cuts.
//
// Node expansion (§3.2.1): at every node, augment the node's samples with k
// synthetic points drawn from the node's feature box (normal around the box
// midpoint, sd = quartile range), label X_decision = X_node U X_aug with the
// AE ensemble, then choose the split (q*, p*) maximising entropy loss
// (Eqs. 1-4). Stopping (any of): |X_node| <= 1, height >= ceil(log2 Psi),
// or min/max AE-class ratio < tau_split (node already pure enough).
//
// Knowledge distillation (§3.2.2): route the training set through every
// tree, augment each leaf with k box samples, embed the expected per-member
// reconstruction error (Eq. 5) and threshold-vote it into a 0/1 leaf label
// (Eq. 6). Inference is a majority vote of leaf labels across the t trees.
#pragma once

#include <vector>

#include "core/ae_ensemble.hpp"
#include "ml/matrix.hpp"
#include "ml/rng.hpp"

namespace iguard::core {

struct GuidedForestConfig {
  std::size_t num_trees = 5;      // t
  std::size_t subsample = 1024;   // Psi (also sets the height cap log2(Psi))
  std::size_t augment = 192;      // k, per node / per leaf
  double tau_split = 1e-2;        // sample-split stopping threshold
  /// Split-candidate cap per feature (quantile-spaced over X_decision);
  /// bounds the (q, p) search the paper describes as exhaustive.
  std::size_t candidates_per_feature = 16;
  /// Benign leaf hypercubes are the leaf samples' bounding boxes inflated by
  /// this fraction of their span per side (generalisation slack); a point in
  /// a benign leaf's *cell* but outside its *box* is off the benign support
  /// and votes malicious — whitelist semantics (Fig. 3c).
  double box_margin = 0.10;
  /// Worker threads for fit(): per-tree guided growth and per-leaf
  /// distillation scoring run in parallel (0 = hardware concurrency).
  /// Every tree/leaf draws from an RNG stream derived deterministically
  /// from the root seed and its own index, so the fitted model is
  /// bit-identical at every thread count.
  std::size_t num_threads = 1;
};

struct GuidedNode {
  int feature = -1;         // -1 => leaf
  double threshold = 0.0;   // split: go left iff x[feature] < threshold
  int left = -1;
  int right = -1;
  int depth = 0;
  int label = 0;            // leaf label, set by distillation
  std::size_t train_count = 0;  // training samples that reached this node
  /// Expected reconstruction error per AE member (Eq. 5), leaves only;
  /// retained for diagnostics and the score() soft output.
  std::vector<double> leaf_re;
  /// Benign support hypercube of this leaf (leaves only): the routed
  /// training samples' bounding box + margin, clipped to the leaf cell.
  std::vector<double> box_lo, box_hi;
};

struct GuidedTree {
  std::vector<GuidedNode> nodes;

  int leaf_index(std::span<const double> x) const;
  std::size_t leaf_count() const;

  /// Tree vote for x: the leaf's label, except that a point outside a
  /// benign leaf's support box votes malicious (whitelist semantics).
  int vote(std::span<const double> x) const;
};

class GuidedIsolationForest {
 public:
  explicit GuidedIsolationForest(GuidedForestConfig cfg = {}) : cfg_(cfg) {}

  /// Train trees (teacher-guided growth) and distil leaf labels. `train` is
  /// the (nominally benign) training set; the teacher tells the trees where
  /// inside and around it malicious structure lives. Draws one root seed
  /// from `rng` and derives an independent stream per tree (growth) and per
  /// leaf (distillation); with cfg.num_threads > 1 those tasks run on a
  /// thread pool without changing the fitted model.
  void fit(const ml::Matrix& train, const AeEnsemble& teacher, ml::Rng& rng);

  /// Majority vote across trees: 1 = malicious (strict majority).
  int predict(std::span<const double> x) const;
  /// Fraction of trees voting malicious — a soft score in [0,1] for AUC
  /// computation (the hardware deployment only uses the 0/1 vote).
  double vote_fraction(std::span<const double> x) const;

  const std::vector<GuidedTree>& trees() const { return trees_; }
  const GuidedForestConfig& config() const { return cfg_; }

  /// Per-feature box of the training data (rule compilation needs it).
  const std::vector<double>& feature_min() const { return feat_min_; }
  const std::vector<double>& feature_max() const { return feat_max_; }

 private:
  GuidedForestConfig cfg_;
  std::vector<GuidedTree> trees_;
  std::vector<double> feat_min_, feat_max_;
};

}  // namespace iguard::core
