#include <gtest/gtest.h>

#include "ml/rng.hpp"
#include "switchsim/replay.hpp"

namespace iguard::switchsim {
namespace {

/// Synthetic mixed trace: `flows` bidirectional flows, ~8 packets each,
/// interleaved in time. Malicious flows send large packets so the min-size
/// feature separates the classes crisply after quantisation.
traffic::Trace make_trace(std::size_t flows, std::size_t packets_per_flow, ml::Rng& rng) {
  traffic::Trace t;
  for (std::size_t f = 0; f < flows; ++f) {
    const bool mal = f % 3 == 0;
    traffic::FiveTuple ft{0x0A000000u + static_cast<std::uint32_t>(f),
                          0x0B000000u + static_cast<std::uint32_t>(f % 7),
                          static_cast<std::uint16_t>(1024 + f), 443, traffic::kProtoTcp};
    for (std::size_t i = 0; i < packets_per_flow; ++i) {
      traffic::Packet p;
      p.ts = 0.001 * static_cast<double>(f) + 0.05 * static_cast<double>(i) +
             rng.uniform(0.0, 0.0005);
      p.ft = i % 2 == 0 ? ft : ft.reversed();  // both directions
      p.length = mal ? static_cast<std::uint16_t>(1200 + rng.index(200))
                     : static_cast<std::uint16_t>(80 + rng.index(60));
      p.malicious = mal;
      t.packets.push_back(p);
    }
  }
  t.sort_by_time();
  return t;
}

class ReplayTest : public ::testing::Test {
 protected:
  ReplayTest() {
    ml::Matrix fake(2, kSwitchFlFeatures);
    for (std::size_t j = 0; j < kSwitchFlFeatures; ++j) {
      fake(0, j) = 0.0;
      fake(1, j) = 1e6;
    }
    quant_.fit(fake);
    // One tree whose only rule admits flows with min packet size below the
    // quantised level of ~600 B: benign flows match, attack flows do not.
    wl_.tree_count = 1;
    std::vector<rules::FieldRange> box(kSwitchFlFeatures, {0, quant_.domain_max()});
    box[5] = {0, quant_.quantize_value(5, 600.0)};  // feature 5 = min size
    wl_.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});
  }

  DeployedModel model() const {
    DeployedModel dm;
    dm.fl_tables = &wl_;
    dm.fl_quantizer = &quant_;
    return dm;
  }

  PipelineConfig pipe_cfg() const {
    PipelineConfig cfg;
    cfg.packet_threshold_n = 4;
    cfg.idle_timeout_delta = 10.0;
    return cfg;
  }

  rules::Quantizer quant_{16};
  core::VoteWhitelist wl_;
};

TEST_F(ReplayTest, ShardOfIsDirectionInvariant) {
  ml::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    traffic::FiveTuple ft{static_cast<std::uint32_t>(rng.integer(1, 1 << 30)),
                          static_cast<std::uint32_t>(rng.integer(1, 1 << 30)),
                          static_cast<std::uint16_t>(rng.integer(1, 65535)),
                          static_cast<std::uint16_t>(rng.integer(1, 65535)),
                          traffic::kProtoUdp};
    for (std::size_t k : {2u, 4u, 8u}) {
      EXPECT_EQ(shard_of(ft, k), shard_of(ft.reversed(), k));
    }
  }
}

TEST_F(ReplayTest, ShardTraceIsFlowDisjointAndOrderPreserving) {
  ml::Rng rng(7);
  const auto trace = make_trace(60, 8, rng);
  ReplayConfig rc;
  rc.shards = 4;
  const auto parts = shard_trace(trace, rc);
  std::size_t total = 0;
  for (std::size_t s = 0; s < parts.size(); ++s) {
    total += parts[s].size();
    double prev = -1.0;
    for (const auto& p : parts[s].packets) {
      EXPECT_EQ(shard_of(p.ft, rc.shards, rc.shard_seed), s);
      EXPECT_GE(p.ts, prev);  // stable partition keeps time order
      prev = p.ts;
    }
  }
  EXPECT_EQ(total, trace.size());
}

TEST_F(ReplayTest, ShardedAggregateEqualsSequentialPerShardSum) {
  // The parallel K-shard replay must equal running the K per-shard pipelines
  // one after another and summing their stats — shard isolation is exact.
  ml::Rng rng(11);
  const auto trace = make_trace(80, 8, rng);
  const auto dm = model();
  ReplayConfig rc;
  rc.shards = 4;

  const auto parallel = replay_sharded(trace, pipe_cfg(), dm, rc);

  const auto parts = shard_trace(trace, rc);
  std::vector<SimStats> seq(parts.size());
  for (std::size_t s = 0; s < parts.size(); ++s) {
    Pipeline pipe(pipe_cfg(), dm);
    seq[s] = pipe.run(parts[s]);
  }
  const SimStats want = merge_stats(seq);

  EXPECT_EQ(parallel.stats.packets, want.packets);
  EXPECT_EQ(parallel.stats.dropped, want.dropped);
  EXPECT_EQ(parallel.stats.flows_classified, want.flows_classified);
  EXPECT_EQ(parallel.stats.blacklist_hits, want.blacklist_hits);
  EXPECT_EQ(parallel.stats.collisions, want.collisions);
  EXPECT_EQ(parallel.stats.path_count, want.path_count);
  EXPECT_EQ(parallel.stats.tp, want.tp);
  EXPECT_EQ(parallel.stats.fp, want.fp);
  EXPECT_EQ(parallel.stats.tn, want.tn);
  EXPECT_EQ(parallel.stats.fn, want.fn);
  for (std::size_t s = 0; s < parts.size(); ++s) {
    EXPECT_EQ(parallel.per_shard[s].pred, seq[s].pred);
    EXPECT_EQ(parallel.per_shard[s].truth, seq[s].truth);
  }
}

TEST_F(ReplayTest, BitIdenticalAcrossThreadCounts) {
  ml::Rng rng(13);
  const auto trace = make_trace(100, 8, rng);
  const auto dm = model();
  ReplayConfig rc;
  rc.shards = 8;
  rc.num_threads = 1;
  const auto a = replay_sharded(trace, pipe_cfg(), dm, rc);
  rc.num_threads = 8;
  const auto b = replay_sharded(trace, pipe_cfg(), dm, rc);
  EXPECT_EQ(a.stats.pred, b.stats.pred);
  EXPECT_EQ(a.stats.truth, b.stats.truth);
  EXPECT_EQ(a.stats.packets, b.stats.packets);
  EXPECT_EQ(a.stats.dropped, b.stats.dropped);
  EXPECT_EQ(a.stats.path_count, b.stats.path_count);
  EXPECT_EQ(a.stats.faults.leaked_packets, b.stats.faults.leaked_packets);
}

TEST_F(ReplayTest, MergedLabelsFollowOriginalTraceOrder) {
  // pred/truth from the sharded replay must line up with the input trace
  // packet-for-packet: truth is an input, so it must round-trip exactly.
  ml::Rng rng(17);
  const auto trace = make_trace(50, 6, rng);
  ReplayConfig rc;
  rc.shards = 4;
  const auto out = replay_sharded(trace, pipe_cfg(), model(), rc);
  ASSERT_EQ(out.stats.truth.size(), trace.size());
  ASSERT_EQ(out.stats.pred.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(out.stats.truth[i], trace.packets[i].malicious ? 1 : 0);
  }
}

TEST_F(ReplayTest, SingleShardMatchesPlainPipelineRun) {
  ml::Rng rng(19);
  const auto trace = make_trace(40, 8, rng);
  const auto dm = model();
  const auto sharded = replay_sharded(trace, pipe_cfg(), dm, ReplayConfig{});
  Pipeline pipe(pipe_cfg(), dm);
  const auto plain = pipe.run(trace);
  EXPECT_EQ(sharded.stats.pred, plain.pred);
  EXPECT_EQ(sharded.stats.truth, plain.truth);
  EXPECT_EQ(sharded.stats.dropped, plain.dropped);
  EXPECT_EQ(sharded.stats.path_count, plain.path_count);
}

TEST_F(ReplayTest, RecordLabelsOffKeepsConfusionCounts) {
  ml::Rng rng(23);
  const auto trace = make_trace(60, 8, rng);
  const auto dm = model();
  PipelineConfig on = pipe_cfg();
  PipelineConfig off = pipe_cfg();
  off.record_labels = false;

  Pipeline pipe_on(on, dm);
  Pipeline pipe_off(off, dm);
  const auto a = pipe_on.run(trace);
  const auto b = pipe_off.run(trace);

  EXPECT_TRUE(b.pred.empty());
  EXPECT_TRUE(b.truth.empty());
  EXPECT_EQ(a.tp, b.tp);
  EXPECT_EQ(a.fp, b.fp);
  EXPECT_EQ(a.tn, b.tn);
  EXPECT_EQ(a.fn, b.fn);
  EXPECT_EQ(a.tp + a.fp + a.tn + a.fn, a.packets);
  // The recorded vectors and the counters tell the same story.
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;
  for (std::size_t i = 0; i < a.pred.size(); ++i) {
    if (a.pred[i] && a.truth[i]) ++tp;
    else if (a.pred[i]) ++fp;
    else if (a.truth[i]) ++fn;
    else ++tn;
  }
  EXPECT_EQ(a.tp, tp);
  EXPECT_EQ(a.fp, fp);
  EXPECT_EQ(a.tn, tn);
  EXPECT_EQ(a.fn, fn);
}

TEST_F(ReplayTest, SharedPrecompiledTablesMatchOwnCompilation) {
  // A DeployedModel carrying pre-compiled whitelists (compile once, share
  // across shard pipelines) must replay bit-identically to pipelines that
  // compile their own copies.
  ml::Rng rng(31);
  const auto trace = make_trace(80, 8, rng);
  const auto own = model();
  DeployedModel shared = model();
  const core::CompiledVoteWhitelist fl_compiled(wl_);
  shared.fl_compiled = &fl_compiled;

  ReplayConfig rc;
  rc.shards = 4;
  const auto a = replay_sharded(trace, pipe_cfg(), own, rc);
  const auto b = replay_sharded(trace, pipe_cfg(), shared, rc);
  EXPECT_EQ(a.stats.pred, b.stats.pred);
  EXPECT_EQ(a.stats.dropped, b.stats.dropped);
  EXPECT_EQ(a.stats.path_count, b.stats.path_count);
  EXPECT_EQ(a.stats.flows_classified, b.stats.flows_classified);
}

TEST_F(ReplayTest, LinearAndCompiledEnginesAgreeOnReplay) {
  ml::Rng rng(29);
  const auto trace = make_trace(80, 8, rng);
  const auto dm = model();
  PipelineConfig lin = pipe_cfg();
  lin.match_engine = MatchEngine::kLinear;
  PipelineConfig comp = pipe_cfg();
  comp.match_engine = MatchEngine::kCompiled;
  Pipeline a(lin, dm), b(comp, dm);
  const auto sa = a.run(trace);
  const auto sb = b.run(trace);
  EXPECT_EQ(sa.pred, sb.pred);
  EXPECT_EQ(sa.dropped, sb.dropped);
  EXPECT_EQ(sa.path_count, sb.path_count);
  EXPECT_EQ(sa.flows_classified, sb.flows_classified);
}

}  // namespace
}  // namespace iguard::switchsim
