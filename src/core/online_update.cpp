#include "core/online_update.hpp"

#include <limits>

namespace iguard::core {

namespace {

// Distance of v to the closed interval [lo, hi] in levels (0 if inside).
std::uint64_t gap(std::uint32_t v, const rules::FieldRange& f) {
  if (v < f.lo) return f.lo - v;
  if (v > f.hi) return v - f.hi;
  return 0;
}

}  // namespace

std::size_t WhitelistUpdater::observe_benign(std::span<const std::uint32_t> key) {
  ++keys_seen_;
  std::size_t extended = 0;
  bool all_covered = true;

  for (auto& table : wl_->tables) {
    if (table.match(key).has_value()) continue;
    all_covered = false;

    // Nearest rule by total gap, admissible only if every per-field gap
    // fits the extension budget. The admissibility scan runs BEFORE the
    // update-budget check: a table with no admissible nearest rule would
    // never have been extended, so counting it as rejected_by_budget would
    // overstate the drift signal the swap controller consumes.
    std::size_t best = table.size();
    std::uint64_t best_total = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t r = 0; r < table.size(); ++r) {
      const auto& rule = table.rules()[r];
      std::uint64_t total = 0;
      bool admissible = true;
      for (std::size_t j = 0; j < key.size() && admissible; ++j) {
        const std::uint64_t g = gap(key[j], rule.fields[j]);
        admissible = g <= cfg_.max_extension_per_field;
        total += g;
      }
      if (admissible && total < best_total) {
        best_total = total;
        best = r;
      }
    }
    if (best == table.size()) continue;  // nothing close enough: leave table
    if (extensions_ >= cfg_.max_updates) {
      ++rejected_by_budget_;  // a genuinely refused admissible extension
      continue;
    }

    // Stretch the chosen rule in place (RuleTable keeps priority order;
    // field mutation does not change priorities).
    rules::RangeRule updated = table.rules()[best];
    for (std::size_t j = 0; j < key.size(); ++j) {
      if (key[j] < updated.fields[j].lo) updated.fields[j].lo = key[j];
      if (key[j] > updated.fields[j].hi) updated.fields[j].hi = key[j];
    }
    auto rules = table.rules();
    rules[best] = updated;
    table.set_rules(std::move(rules));
    ++extensions_;
    ++extended;
  }

  if (all_covered) ++fully_covered_;
  return extended;
}

}  // namespace iguard::core
