#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "ml/rng.hpp"
#include "rules/quantize.hpp"
#include "rules/range_rule.hpp"
#include "rules/rule_table.hpp"
#include "rules/ternary.hpp"

namespace iguard::rules {
namespace {

TEST(FieldRange, ContainsAndEmpty) {
  const FieldRange r{10, 20};
  EXPECT_TRUE(r.contains(10));
  EXPECT_TRUE(r.contains(20));
  EXPECT_FALSE(r.contains(9));
  EXPECT_FALSE(r.contains(21));
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE((FieldRange{5, 4}).empty());
}

TEST(RangeRule, MatchesConjunction) {
  RangeRule r{{{0, 10}, {5, 5}}, 0, 0};
  const std::uint32_t hit[] = {3, 5};
  const std::uint32_t miss1[] = {11, 5};
  const std::uint32_t miss2[] = {3, 6};
  EXPECT_TRUE(r.matches(hit));
  EXPECT_FALSE(r.matches(miss1));
  EXPECT_FALSE(r.matches(miss2));
}

TEST(MergeRules, AdjacentOnOneField) {
  RangeRule a{{{0, 9}, {0, 5}}, 0, 0};
  RangeRule b{{{10, 20}, {0, 5}}, 0, 0};
  auto merged = merge_rules({a, b});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].fields[0], (FieldRange{0, 20}));
}

TEST(MergeRules, DifferentLabelsDontMerge) {
  RangeRule a{{{0, 9}}, 0, 0};
  RangeRule b{{{10, 20}}, 1, 0};
  EXPECT_EQ(merge_rules({a, b}).size(), 2u);
}

TEST(MergeRules, DisjointOnTwoFieldsDontMerge) {
  RangeRule a{{{0, 9}, {0, 5}}, 0, 0};
  RangeRule b{{{10, 20}, {6, 9}}, 0, 0};
  EXPECT_EQ(merge_rules({a, b}).size(), 2u);
}

TEST(MergeRules, CascadesToFixpoint) {
  std::vector<RangeRule> rules;
  for (std::uint32_t i = 0; i < 8; ++i) rules.push_back({{{i * 10, i * 10 + 9}}, 0, 0});
  auto merged = merge_rules(rules);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].fields[0], (FieldRange{0, 79}));
}

// Property: the ternary expansion covers exactly [lo, hi] — every value in
// the range matches exactly one prefix, every value outside matches none.
class ExpandRangeProperty : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(ExpandRangeProperty, CoversExactly) {
  const auto [lo, hi] = GetParam();
  const unsigned bits = 10;
  const auto cover = expand_range(lo, hi, bits);
  EXPECT_EQ(cover.size(), expansion_count(lo, hi, bits));
  for (std::uint32_t v = 0; v < (1u << bits); ++v) {
    std::size_t matches = 0;
    for (const auto& t : cover) matches += t.matches(v) ? 1 : 0;
    const bool inside = lo <= v && v <= hi;
    EXPECT_EQ(matches, inside ? 1u : 0u) << "value " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, ExpandRangeProperty,
    ::testing::Values(std::pair<std::uint32_t, std::uint32_t>{0, 1023},   // full domain
                      std::pair<std::uint32_t, std::uint32_t>{0, 0},      // single point
                      std::pair<std::uint32_t, std::uint32_t>{1023, 1023},
                      std::pair<std::uint32_t, std::uint32_t>{1, 1022},   // worst case
                      std::pair<std::uint32_t, std::uint32_t>{512, 1023},
                      std::pair<std::uint32_t, std::uint32_t>{100, 611},
                      std::pair<std::uint32_t, std::uint32_t>{333, 333}));

TEST(ExpandRange, FullDomainIsOnePrefix) {
  EXPECT_EQ(expansion_count(0, 1023, 10), 1u);
}

TEST(ExpandRange, WorstCaseBound) {
  // Classic bound: a w-bit range expands to at most 2w - 2 prefixes.
  const unsigned bits = 12;
  EXPECT_LE(expansion_count(1, (1u << bits) - 2, bits), 2u * bits - 2);
}

TEST(ExpandRange, BadRangeThrows) {
  EXPECT_THROW(expansion_count(5, 4, 10), std::invalid_argument);
  EXPECT_THROW(expansion_count(0, 1 << 11, 10), std::invalid_argument);
}

TEST(TcamEntries, CrossProduct) {
  RangeRule r{{{1, 6}, {0, 3}}, 0, 0};  // [1,6] in 3 bits -> {1, 2-3, 4-5, 6} = 4
  EXPECT_EQ(expansion_count(1, 6, 3), 4u);
  EXPECT_EQ(expansion_count(0, 3, 3), 1u);
  EXPECT_EQ(tcam_entries(r, 3), 4u);
}

TEST(Quantizer, RoundTripMonotone) {
  ml::Matrix x{{0.0}, {50.0}, {100.0}};
  Quantizer q(8);
  q.fit(x);
  const std::uint32_t a = q.quantize_value(0, 10.0);
  const std::uint32_t b = q.quantize_value(0, 60.0);
  const std::uint32_t c = q.quantize_value(0, 90.0);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  // dequantize returns a value in the right neighbourhood.
  EXPECT_NEAR(q.dequantize(0, b), 60.0, 5.0);
}

TEST(Quantizer, ClampsOutOfSpan) {
  ml::Matrix x{{0.0}, {100.0}};
  Quantizer q(8);
  q.fit(x);
  EXPECT_EQ(q.quantize_value(0, -1000.0), 0u);
  EXPECT_EQ(q.quantize_value(0, 1000.0), q.domain_max());
}

TEST(Quantizer, NanMapsToLowestLevel) {
  // Regression: NaN used to fall through both clamps into an undefined
  // float->int cast; it must map deterministically instead.
  ml::Matrix x{{0.0}, {100.0}};
  Quantizer q(8);
  q.fit(x);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(q.quantize_value(0, nan), 0u);
  const std::vector<double> row{nan};
  EXPECT_EQ(q.quantize(row)[0], 0u);
}

TEST(Quantizer, BatchColumnarBitExactWithPerKey) {
  // quantize_batch_into / quantize_rows_into only hoist the span constants;
  // per element they must equal quantize_value / quantize_into exactly —
  // including NaN, clamped, and boundary inputs — or the batched pipeline
  // would diverge from the scalar reference.
  ml::Matrix fit(2, 4);
  for (std::size_t j = 0; j < 4; ++j) {
    fit(0, j) = -7.5 * static_cast<double>(j + 1);
    fit(1, j) = 200.0 + 13.0 * static_cast<double>(j);
  }
  for (const unsigned bits : {8u, 12u, 16u}) {
    Quantizer q(bits);
    q.fit(fit);
    ml::Rng rng(0xBA7C9ull + bits);
    const std::size_t n = 137;
    std::vector<double> rows(n * 4);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      switch (rng.index(8)) {
        case 0: rows[i] = std::numeric_limits<double>::quiet_NaN(); break;
        case 1: rows[i] = -1e9; break;  // clamps to 0
        case 2: rows[i] = 1e9; break;   // clamps to domain_max
        default: rows[i] = rng.uniform(-30.0, 300.0);
      }
    }
    std::vector<std::uint32_t> got(n * 4, 0xAAAAAAAAu);
    q.quantize_rows_into(rows, got);
    std::vector<std::uint32_t> want(4);
    for (std::size_t i = 0; i < n; ++i) {
      q.quantize_into(std::span<const double>(rows.data() + i * 4, 4), want);
      for (std::size_t j = 0; j < 4; ++j) ASSERT_EQ(got[i * 4 + j], want[j]);
    }
    // Columnar single-field variant against quantize_value.
    std::vector<double> col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = rows[i * 4 + 2];
    std::vector<std::uint32_t> colq(n, 0xAAAAAAAAu);
    q.quantize_batch_into(2, col, colq);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(colq[i], q.quantize_value(2, col[i]));
  }
  // Malformed row buffers are rejected, not silently truncated.
  Quantizer q(8);
  q.fit(fit);
  std::vector<double> bad(5);
  std::vector<std::uint32_t> out(5);
  EXPECT_THROW(q.quantize_rows_into(bad, out), std::invalid_argument);
}

TEST(Quantizer, QuantizePreservesOrderOfSamples) {
  ml::Rng rng(3);
  ml::Matrix x(100, 2);
  for (auto& v : x.flat()) v = rng.uniform(-50.0, 50.0);
  Quantizer q(16);
  q.fit(x);
  for (int trial = 0; trial < 200; ++trial) {
    const double a = rng.uniform(-50.0, 50.0);
    const double b = rng.uniform(-50.0, 50.0);
    if (a <= b) {
      EXPECT_LE(q.quantize_value(0, a), q.quantize_value(0, b));
    }
  }
}

TEST(RuleTable, PriorityOrderWins) {
  RangeRule low_prio{{{0, 100}}, 1, 5};
  RangeRule high_prio{{{0, 50}}, 0, 1};
  RuleTable t({low_prio, high_prio});
  const std::uint32_t key1[] = {25};
  const std::uint32_t key2[] = {75};
  EXPECT_EQ(t.classify(key1), 0);  // high-priority benign rule matches first
  EXPECT_EQ(t.classify(key2), 1);
}

TEST(RuleTable, NoMatchDefaultsMalicious) {
  RuleTable t({RangeRule{{{0, 10}}, 0, 0}});
  const std::uint32_t key[] = {50};
  EXPECT_EQ(t.classify(key), 1);
  EXPECT_FALSE(t.match(key).has_value());
}

TEST(RuleTable, AddRuleKeepsOrder) {
  RuleTable t;
  t.add_rule({{{0, 10}}, 1, 2});
  t.add_rule({{{0, 10}}, 0, 1});
  const std::uint32_t key[] = {5};
  EXPECT_EQ(t.classify(key), 0);
}

}  // namespace
}  // namespace iguard::rules
