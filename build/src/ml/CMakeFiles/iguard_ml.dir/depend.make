# Empty dependencies file for iguard_ml.
# This may be replaced when dependencies are built.
