// Blacklist exact-match table and the control-plane controller. The
// controller receives digests from the data plane whenever a flow's class is
// determined (13 B five-tuple + 1-bit label, App. B.2), installs a blacklist
// rule for malicious flows, and evicts old rules FIFO or LRU when the table
// is full (§3.3.2).
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_map>

#include "trafficgen/packet.hpp"

namespace iguard::switchsim {

enum class EvictionPolicy { kFifo, kLru };

class BlacklistTable {
 public:
  explicit BlacklistTable(std::size_t capacity, EvictionPolicy policy = EvictionPolicy::kFifo)
      : capacity_(capacity), policy_(policy) {}

  /// True if the 5-tuple (either direction) is blacklisted. LRU mode
  /// refreshes recency on hit.
  bool contains(const traffic::FiveTuple& ft);

  /// Install a rule; evicts the oldest/least-recently-used entry when full.
  void install(const traffic::FiveTuple& ft);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t evictions() const { return evictions_; }
  /// FIFO bookkeeping queue length (0 under LRU); exposed so tests can
  /// assert the queue stays bounded by the live entry count.
  std::size_t order_queue_size() const { return order_.size(); }

 private:
  std::uint64_t key(const traffic::FiveTuple& ft) const { return traffic::bihash(ft, 0xB1AC); }
  void touch(std::uint64_t k);

  std::size_t capacity_;
  EvictionPolicy policy_;
  std::unordered_map<std::uint64_t, std::uint64_t> entries_;  // key -> stamp
  std::deque<std::uint64_t> order_;                           // install/use order
  std::uint64_t clock_ = 0;
  std::size_t evictions_ = 0;
};

/// One digest message (data plane -> controller).
struct Digest {
  traffic::FiveTuple ft;
  int label = 0;

  /// Wire size: 13 B 5-tuple + 1 B carrying the 1-bit label (App. B.2).
  static constexpr std::size_t kBytes = 14;
};

/// Control-plane counterpart: consumes digests, maintains the blacklist.
class Controller {
 public:
  explicit Controller(BlacklistTable& blacklist) : blacklist_(&blacklist) {}

  void on_digest(const Digest& d);

  std::size_t digests_received() const { return digests_; }
  std::size_t bytes_received() const { return bytes_; }
  std::size_t rules_installed() const { return installs_; }

 private:
  BlacklistTable* blacklist_;
  std::size_t digests_ = 0;
  std::size_t bytes_ = 0;
  std::size_t installs_ = 0;
};

}  // namespace iguard::switchsim
