// Common interface for the unsupervised anomaly detectors compared in the
// paper's Fig. 10 (kNN, PCA, iForest, X-means, VAE, Magnifier). Every model
// is fit on benign-only data and emits a scalar anomaly score where *higher
// means more anomalous*; a per-model threshold turns the score into a label.
#pragma once

#include <span>
#include <string>

#include "ml/matrix.hpp"
#include "ml/rng.hpp"

namespace iguard::ml {

class AnomalyDetector {
 public:
  virtual ~AnomalyDetector() = default;

  /// Train on benign-only samples.
  virtual void fit(const Matrix& benign, Rng& rng) = 0;

  /// Anomaly score for one sample; higher = more anomalous.
  virtual double score(std::span<const double> x) = 0;

  /// True when concurrent score() calls on one fitted detector are
  /// race-free. Defaults to false; detectors whose scoring path carries no
  /// mutable state opt in, and batch evaluators may then fan scoring out
  /// across a thread pool.
  virtual bool thread_safe_score() const { return false; }

  /// Decision threshold on score(); callers may recalibrate on validation.
  virtual double threshold() const = 0;
  virtual void set_threshold(double t) = 0;

  /// 1 = malicious/anomalous, 0 = benign.
  int predict(std::span<const double> x) { return score(x) > threshold() ? 1 : 0; }

  virtual std::string name() const = 0;
};

}  // namespace iguard::ml
