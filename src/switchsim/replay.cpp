#include "switchsim/replay.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>

#include "ml/parallel.hpp"

namespace iguard::switchsim {

std::string validate_config(const ReplayConfig& cfg) {
  if (cfg.shards == 0) return "shards: must be >= 1 (got 0)";
  return {};
}

namespace {

void throw_if_invalid(const ReplayConfig& cfg) {
  if (const std::string err = validate_config(cfg); !err.empty()) {
    const std::size_t colon = err.find(':');
    throw ConfigError("ReplayConfig", err.substr(0, colon),
                      colon == std::string::npos ? err : err.substr(colon + 2));
  }
}

}  // namespace

std::size_t shard_of(const traffic::FiveTuple& ft, std::size_t shards, std::uint64_t seed) {
  if (shards <= 1) return 0;
  return static_cast<std::size_t>(traffic::bihash(ft, seed) % shards);
}

std::vector<traffic::Trace> shard_trace(const traffic::Trace& trace, const ReplayConfig& cfg) {
  throw_if_invalid(cfg);
  const std::size_t k = cfg.shards;
  std::vector<traffic::Trace> parts(k);
  for (const auto& p : trace.packets) {
    parts[shard_of(p.ft, k, cfg.shard_seed)].packets.push_back(p);
  }
  return parts;
}

SimStats merge_stats(const std::vector<SimStats>& parts) {
  SimStats out;
  for (const auto& s : parts) {
    for (std::size_t i = 0; i < out.path_count.size(); ++i) out.path_count[i] += s.path_count[i];
    out.green_mirrors += s.green_mirrors;
    out.packets += s.packets;
    out.dropped += s.dropped;
    out.blacklist_hits += s.blacklist_hits;
    out.collisions += s.collisions;
    out.flows_classified += s.flows_classified;
    out.benign_feature_mirrors += s.benign_feature_mirrors;
    out.tp += s.tp;
    out.fp += s.fp;
    out.tn += s.tn;
    out.fn += s.fn;
    out.faults.digests_received += s.faults.digests_received;
    out.faults.digests_delivered += s.faults.digests_delivered;
    out.faults.channel_overflow_drops += s.faults.channel_overflow_drops;
    out.faults.mirror_overflow_drops += s.faults.mirror_overflow_drops;
    out.faults.injected_digest_drops += s.faults.injected_digest_drops;
    out.faults.delayed_digests += s.faults.delayed_digests;
    // High-water marks of independent channels: the sum bounds the fleet's
    // aggregate backlog (each shard peaks at a different time).
    out.faults.backlog_hwm += s.faults.backlog_hwm;
    out.faults.install_attempts += s.faults.install_attempts;
    out.faults.installs_applied += s.faults.installs_applied;
    out.faults.install_failures += s.faults.install_failures;
    out.faults.install_retries += s.faults.install_retries;
    out.faults.dead_letters += s.faults.dead_letters;
    out.faults.crashes += s.faults.crashes;
    out.faults.digests_lost_to_crash += s.faults.digests_lost_to_crash;
    out.faults.retry_installs_lost_to_crash += s.faults.retry_installs_lost_to_crash;
    out.faults.recovery_installs += s.faults.recovery_installs;
    out.faults.leaked_packets += s.faults.leaked_packets;
    out.faults.mirrors_enqueued += s.faults.mirrors_enqueued;
    out.faults.mirrors_delivered += s.faults.mirrors_delivered;
    out.faults.mirrors_lost += s.faults.mirrors_lost;
    out.faults.delayed_mirrors += s.faults.delayed_mirrors;
    out.swap.mirrors_applied += s.swap.mirrors_applied;
    out.swap.extensions_applied += s.swap.extensions_applied;
    out.swap.rejected_by_budget += s.swap.rejected_by_budget;
    out.swap.drift_fires += s.swap.drift_fires;
    out.swap.drift_miss_rate += s.swap.drift_miss_rate;
    out.swap.drift_vote_shift += s.swap.drift_vote_shift;
    out.swap.drift_rejected_slope += s.swap.drift_rejected_slope;
    out.swap.rebuilds += s.swap.rebuilds;
    out.swap.operator_requests += s.swap.operator_requests;
    out.swap.incremental_publishes += s.swap.incremental_publishes;
    out.swap.publishes += s.swap.publishes;
    out.swap.publishes_deferred_by_crash += s.swap.publishes_deferred_by_crash;
    out.swap.coalesced_triggers += s.swap.coalesced_triggers;
    out.swap.bundles_retired += s.swap.bundles_retired;
    // Each shard swaps independently; the fleet's "version" is the furthest
    // any shard got.
    out.swap.final_version = std::max(out.swap.final_version, s.swap.final_version);
    out.pred.insert(out.pred.end(), s.pred.begin(), s.pred.end());
    out.truth.insert(out.truth.end(), s.truth.begin(), s.truth.end());
  }
  return out;
}

ShardedReplayResult replay_sharded(const traffic::Trace& trace, const PipelineConfig& cfg,
                                   const DeployedModel& model, const ReplayConfig& rcfg) {
  throw_if_invalid(rcfg);
  const std::size_t k = rcfg.shards;
  std::vector<traffic::Trace> parts(k);
  std::vector<std::uint32_t> shard_of_packet;
  shard_of_packet.reserve(trace.size());
  for (const auto& p : trace.packets) {
    const std::size_t s = shard_of(p.ft, k, rcfg.shard_seed);
    shard_of_packet.push_back(static_cast<std::uint32_t>(s));
    parts[s].packets.push_back(p);
  }

  ShardedReplayResult out;
  out.per_shard.resize(k);
  std::vector<SimStats>& shard_stats = out.per_shard;

  // Observability (DESIGN.md §4d): each shard gets its own instrument
  // namespace ("<prefix>.shard3.*") so concurrent pipelines never share an
  // instrument and every non-"timing." key stays byte-deterministic. Shard
  // wall times land under "timing." — wall clock is the one thing that may
  // differ run to run.
  const bool obs_on = cfg.metrics != nullptr && cfg.metrics->enabled();
  const bool clone_cfgs = obs_on || rcfg.capture_digests;
  std::vector<PipelineConfig> shard_cfgs;
  std::vector<obs::Gauge> shard_wall_ns(k);
  obs::Gauge imbalance;
  if (clone_cfgs) shard_cfgs.assign(k, cfg);
  if (obs_on) {
    for (std::size_t s = 0; s < k; ++s) {
      const std::string sp = cfg.metrics_prefix + ".shard" + std::to_string(s);
      shard_cfgs[s].metrics_prefix = sp;
      shard_wall_ns[s] = cfg.metrics->gauge("timing." + sp + ".wall_ns");
    }
    imbalance = cfg.metrics->gauge("timing." + cfg.metrics_prefix + ".shard_imbalance");
  }
  // Digest capture: one tap vector per shard (preallocated before the
  // parallel loop, so the pointers stay stable), merged below.
  std::vector<std::vector<TimedDigest>> shard_digests(rcfg.capture_digests ? k : 0);
  if (rcfg.capture_digests) {
    for (std::size_t s = 0; s < k; ++s) shard_cfgs[s].control.digest_tap = &shard_digests[s];
  }

  // One thread per shard is plenty: each task is a full sequential replay.
  ml::ThreadPool pool(std::min(ml::resolve_threads(rcfg.num_threads), k));
  if (obs_on) pool.set_metrics(cfg.metrics, cfg.metrics_prefix + ".pool");
  std::vector<double> wall_ns(k, 0.0);
  pool.parallel_for(k, [&](std::size_t s) {
    const auto t0 = std::chrono::steady_clock::now();
    Pipeline pipe(clone_cfgs ? shard_cfgs[s] : cfg, model);
    shard_stats[s] = pipe.run(parts[s]);
    if (obs_on) {
      wall_ns[s] = static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                           std::chrono::steady_clock::now() - t0)
                                           .count());
      shard_wall_ns[s].set(wall_ns[s]);
    }
  });
  if (obs_on) {
    // Imbalance ratio: slowest shard over mean shard wall time (1.0 = even).
    const double sum = std::accumulate(wall_ns.begin(), wall_ns.end(), 0.0);
    const double mx = *std::max_element(wall_ns.begin(), wall_ns.end());
    imbalance.set(sum > 0.0 ? mx * static_cast<double>(k) / sum : 0.0);
  }

  out.stats = merge_stats(shard_stats);
  if (rcfg.capture_digests) {
    // K-way merge of the per-shard taps. Each shard's log is already in
    // nondecreasing timestamp order (packets are processed in trace order
    // within a shard); strict less-than keeps the lowest shard index on
    // ties, so the merged stream is deterministic.
    std::size_t total = 0;
    for (const auto& v : shard_digests) total += v.size();
    out.digests.reserve(total);
    std::vector<std::size_t> cursor(k, 0);
    while (out.digests.size() < total) {
      std::size_t best = k;
      for (std::size_t s = 0; s < k; ++s) {
        if (cursor[s] >= shard_digests[s].size()) continue;
        if (best == k || shard_digests[s][cursor[s]].ts < shard_digests[best][cursor[best]].ts) {
          best = s;
        }
      }
      out.digests.push_back(shard_digests[best][cursor[best]++]);
    }
  }
  if (cfg.record_labels) {
    // Re-interleave the per-shard label streams into original trace order:
    // walk the trace, taking each packet's verdict from the front of its
    // shard's stream (each shard preserved its sub-trace order).
    out.stats.pred.clear();
    out.stats.truth.clear();
    out.stats.pred.reserve(trace.size());
    out.stats.truth.reserve(trace.size());
    std::vector<std::size_t> next(k, 0);
    for (const std::uint32_t s : shard_of_packet) {
      const std::size_t i = next[s]++;
      out.stats.pred.push_back(shard_stats[s].pred[i]);
      out.stats.truth.push_back(shard_stats[s].truth[i]);
    }
  }
  return out;
}

}  // namespace iguard::switchsim
