file(REMOVE_RECURSE
  "libiguard_harness.a"
)
