// Streaming byte sources for the serving daemon (DESIGN.md §4i). A source
// hands the daemon raw bytes in chunks; the RecordFramer cuts the byte
// stream into *complete* records so every batch handed to the strict
// TraceReader is a well-formed sub-container (stream header + whole
// records) — a record split across two reads must never reach the reader as
// two half-records, or the quarantine accounting would charge the source
// with corruption it did not commit.
//
// Trust boundary: the framer parses only what framing requires (the CSV
// line separator; the pcap global header length and each record's incl_len
// field). Everything else — field validation, schema bounds, timestamp
// sanitising — stays in io::TraceReader. An unframeable stream (a pcap
// record claiming an absurd length) is a *fatal* source error: the framer
// stops, the residue is flushed to the reader (which quarantines it), and
// the daemon raises a container alert instead of guessing at record
// boundaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace iguard::daemon {

/// Incremental reader over a growing (or static) file: read_some() appends
/// the next chunk after the last read offset, so follow mode sees bytes
/// appended by another process. rewind() restarts the pass (looped replay).
class FileTail {
 public:
  FileTail() = default;
  ~FileTail();
  FileTail(const FileTail&) = delete;
  FileTail& operator=(const FileTail&) = delete;

  /// False when the file cannot be opened (error(), not an exception).
  bool open(const std::string& path);
  /// Append up to `max_bytes` to `out`; returns bytes read (0 = at EOF for
  /// now — more may appear later in follow mode).
  std::size_t read_some(std::string& out, std::size_t max_bytes);
  /// Restart the pass from offset 0 (looped replay of a finite file).
  void rewind();
  bool is_open() const { return f_ != nullptr; }
  const std::string& error() const { return error_; }

 private:
  std::FILE* f_ = nullptr;
  std::string error_;
};

/// Chunked reader over an existing descriptor (stdin, a connected replay
/// socket). The fd is borrowed, not owned; EOF is sticky (a closed peer or
/// stdin end-of-stream finishes the source — there is no rewind).
class FdSource {
 public:
  FdSource() = default;
  explicit FdSource(int fd) : fd_(fd) {}

  /// Append up to `max_bytes`; returns bytes read. 0 with eof() false means
  /// "nothing right now" (interrupted read); 0 with eof() true is the end.
  std::size_t read_some(std::string& out, std::size_t max_bytes);
  bool eof() const { return eof_; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  bool eof_ = false;
};

/// Cuts a byte stream into reader-ready batches. Wire format is detected
/// from the first bytes (pcap magic vs CSV, mirroring TraceReader's
/// auto-detection); each take_batch() output is `stream header + complete
/// records`, so the reader can parse it stand-alone.
class RecordFramer {
 public:
  enum class Wire : std::uint8_t { kUnknown = 0, kCsv, kPcap };

  /// `max_record_bytes` mirrors IngestLimits::max_record_bytes: a pcap
  /// record header claiming more than this is unframeable (fatal).
  explicit RecordFramer(std::size_t max_record_bytes) : max_record_bytes_(max_record_bytes) {}

  void feed(std::string_view bytes);

  /// Move up to `max_records` complete records — prefixed with the stream
  /// header — into `out` (cleared first). Returns the record count; 0 means
  /// nothing complete yet (out left empty).
  std::size_t take_batch(std::string& out, std::size_t max_records);

  /// End-of-stream flush: whatever is pending (header fragments, a partial
  /// record) goes to `out` verbatim for the reader to account. Returns the
  /// byte count.
  std::size_t take_tail(std::string& out);

  /// Start a new pass (looped replay): wire re-detection, header expected
  /// again. Pending bytes are discarded — call take_tail() first.
  void reset();

  Wire wire() const { return wire_; }
  /// Set when the stream cannot be framed further (oversized pcap record).
  bool fatal() const { return fatal_; }
  std::size_t pending_bytes() const { return pending_.size() - cursor_; }

 private:
  bool detect();       // fix wire_ + capture header once enough bytes arrived
  void compact();      // drop consumed prefix when it dominates the buffer

  std::size_t max_record_bytes_;
  Wire wire_ = Wire::kUnknown;
  bool fatal_ = false;
  std::string header_;   // CSV header line (with '\n') or 24-byte pcap header
  std::string pending_;  // undelivered bytes; consumed prefix tracked by cursor_
  std::size_t cursor_ = 0;
};

}  // namespace iguard::daemon
