// Tests for the Fig. 10 candidate detectors: PCA, kNN, X-means, VAE, and
// the Jacobi eigen-solver / k-means primitives underneath them.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/knn.hpp"
#include "ml/pca.hpp"
#include "ml/vae.hpp"
#include "ml/xmeans.hpp"

namespace iguard::ml {
namespace {

Matrix line_cloud(std::size_t n, Rng& rng) {
  // Points near the line y = 2x in 2-D: one dominant principal direction.
  Matrix x(0, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng.normal(0.0, 1.0);
    const double row[2] = {t + rng.normal(0.0, 0.05), 2.0 * t + rng.normal(0.0, 0.05)};
    x.push_row(row);
  }
  return x;
}

TEST(JacobiEigen, DiagonalisesKnownMatrix) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix m{{2.0, 1.0}, {1.0, 2.0}};
  const auto e = jacobi_eigen(m);
  ASSERT_EQ(e.values.size(), 2u);
  EXPECT_NEAR(e.values[0], 3.0, 1e-9);
  EXPECT_NEAR(e.values[1], 1.0, 1e-9);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(e.vectors(0, 0)), std::sqrt(0.5), 1e-9);
  EXPECT_NEAR(std::abs(e.vectors(0, 1)), std::sqrt(0.5), 1e-9);
}

TEST(JacobiEigen, VectorsAreOrthonormal) {
  Matrix m{{4.0, 1.0, 0.5}, {1.0, 3.0, 0.2}, {0.5, 0.2, 2.0}};
  const auto e = jacobi_eigen(m);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const double d = dot(e.vectors.row(i), e.vectors.row(j));
      EXPECT_NEAR(d, i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(JacobiEigen, NonSquareThrows) {
  Matrix m(2, 3);
  EXPECT_THROW(jacobi_eigen(m), std::invalid_argument);
}

TEST(PcaDetector, FlagsOffSubspacePoints) {
  Rng rng(4);
  Matrix x = line_cloud(600, rng);
  PcaDetector det;
  det.fit(x, rng);
  EXPECT_GE(det.components(), 1u);
  const double on_line[2] = {0.5, 1.0};
  const double off_line[2] = {0.5, -1.0};
  EXPECT_GT(det.score(off_line), det.score(on_line) + 0.5);
  EXPECT_EQ(det.predict(off_line), 1);
  EXPECT_EQ(det.predict(on_line), 0);
}

TEST(PcaDetector, VarianceBudgetControlsComponents) {
  Rng rng(5);
  Matrix x = line_cloud(400, rng);
  PcaDetector tight({.variance_to_keep = 0.50, .threshold_quantile = 0.98});
  PcaDetector loose({.variance_to_keep = 0.9999, .threshold_quantile = 0.98});
  tight.fit(x, rng);
  loose.fit(x, rng);
  EXPECT_LE(tight.components(), loose.components());
}

TEST(KnnDetector, FarPointScoresHigher) {
  Rng rng(6);
  Matrix x = line_cloud(500, rng);
  KnnDetector det;
  det.fit(x, rng);
  const double near_pt[2] = {0.2, 0.4};
  const double far_pt[2] = {6.0, -6.0};
  EXPECT_GT(det.score(far_pt), det.score(near_pt));
  EXPECT_EQ(det.predict(far_pt), 1);
}

TEST(KnnDetector, ReferenceSubsampling) {
  Rng rng(7);
  Matrix x = line_cloud(500, rng);
  KnnDetector det({.k = 5, .max_reference = 100, .threshold_quantile = 0.98});
  det.fit(x, rng);
  EXPECT_EQ(det.reference_size(), 100u);
}

TEST(KMeans, RecoversSeparatedClusters) {
  Rng rng(8);
  Matrix x(0, 2);
  for (int i = 0; i < 100; ++i) {
    const double a[2] = {rng.normal(0.0, 0.2), rng.normal(0.0, 0.2)};
    x.push_row(a);
    const double b[2] = {rng.normal(10.0, 0.2), rng.normal(10.0, 0.2)};
    x.push_row(b);
  }
  const auto fit = kmeans(x, 2, rng);
  ASSERT_EQ(fit.centroids.rows(), 2u);
  // One centroid near (0,0), the other near (10,10), in either order.
  const double c0 = fit.centroids(0, 0) + fit.centroids(0, 1);
  const double c1 = fit.centroids(1, 0) + fit.centroids(1, 1);
  EXPECT_NEAR(std::min(c0, c1), 0.0, 1.0);
  EXPECT_NEAR(std::max(c0, c1), 20.0, 1.0);
  EXPECT_LT(fit.inertia / static_cast<double>(x.rows()), 0.5);
}

TEST(KMeansBic, PrefersTwoClustersForTwoBlobs) {
  Rng rng(9);
  Matrix x(0, 2);
  for (int i = 0; i < 150; ++i) {
    const double a[2] = {rng.normal(0.0, 0.3), rng.normal(0.0, 0.3)};
    x.push_row(a);
    const double b[2] = {rng.normal(8.0, 0.3), rng.normal(8.0, 0.3)};
    x.push_row(b);
  }
  const auto one = kmeans(x, 1, rng);
  const auto two = kmeans(x, 2, rng);
  EXPECT_GT(kmeans_bic(x, two), kmeans_bic(x, one));
}

TEST(XMeans, LearnsClusterCountAndScores) {
  Rng rng(10);
  Matrix x(0, 2);
  for (int i = 0; i < 150; ++i) {
    const double a[2] = {rng.normal(0.0, 0.3), rng.normal(0.0, 0.3)};
    x.push_row(a);
    const double b[2] = {rng.normal(8.0, 0.3), rng.normal(0.0, 0.3)};
    x.push_row(b);
    const double c[2] = {rng.normal(4.0, 0.3), rng.normal(7.0, 0.3)};
    x.push_row(c);
  }
  XMeans det({.k_min = 2, .k_max = 12, .threshold_quantile = 0.98});
  det.fit(x, rng);
  EXPECT_GE(det.cluster_count(), 3u);
  const double inside[2] = {0.0, 0.0};
  const double outside[2] = {20.0, -20.0};
  EXPECT_GT(det.score(outside), det.score(inside));
  EXPECT_EQ(det.predict(outside), 1);
}

TEST(Vae, TrainsAndSeparates) {
  Rng rng(11);
  Matrix x = line_cloud(600, rng);
  Vae det([] {
    VaeConfig c;
    c.encoder_hidden = {8};
    c.latent = 2;
    c.decoder_hidden = {8};
    c.epochs = 60;
    return c;
  }());
  det.fit(x, rng);
  const double on_line[2] = {0.5, 1.0};
  const double off_line[2] = {1.0, -2.0};
  EXPECT_GT(det.score(off_line), det.score(on_line));
}

TEST(Detectors, UnfittedThrow) {
  PcaDetector pca;
  KnnDetector knn;
  XMeans xm;
  Vae vae;
  const double p[2] = {0.0, 0.0};
  EXPECT_THROW(pca.score(p), std::logic_error);
  EXPECT_THROW(knn.score(p), std::logic_error);
  EXPECT_THROW(xm.score(p), std::logic_error);
  EXPECT_THROW(vae.score(p), std::logic_error);
}

TEST(Detectors, NamesAreDistinct) {
  PcaDetector pca;
  KnnDetector knn;
  XMeans xm;
  Vae vae;
  EXPECT_NE(pca.name(), knn.name());
  EXPECT_NE(xm.name(), vae.name());
}

}  // namespace
}  // namespace iguard::ml
