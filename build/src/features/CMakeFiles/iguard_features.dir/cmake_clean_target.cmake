file(REMOVE_RECURSE
  "libiguard_features.a"
)
