# Empty compiler generated dependencies file for iguard_switchsim.
# This may be replaced when dependencies are built.
