// The switch-side half of the adaptive model-swap loop (DESIGN.md §4e;
// ROADMAP item 1). Delivered benign mirrors feed three consumers in one
// pass: the online whitelist updater (staging extensions, never the live
// tables), the windowed drift detector, and a bounded ring of recent benign
// feature rows for re-distillation. When enough extensions accumulate — or
// a drift signal fires — the loop builds the next immutable ModelBundle off
// the hot path, schedules its publication swap_latency_s later on the
// controller's event clock (deferred past any crash window: a down
// controller cannot program tables), and the pipeline picks the new version
// up with one pin() at the next packet. Everything is event-counted and
// seeded, so drift-triggered swaps replay bit-identically at any shard
// count.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/model_swap.hpp"
#include "core/online_update.hpp"
#include "ml/matrix.hpp"
#include "obs/metrics.hpp"
#include "switchsim/faults.hpp"

namespace iguard::switchsim {

struct SwapConfig {
  /// Master switch. Off by default: the pipeline then emits no mirrors and
  /// registers no swap instruments, keeping default-path runs byte-identical
  /// to earlier versions.
  bool enabled = false;
  core::OnlineUpdateConfig update{};
  core::DriftConfig drift{};
  /// Publish an incremental (recompile) version once this many online
  /// extensions have accumulated since the last publish; 0 = only drift
  /// signals trigger publishes.
  std::size_t publish_after_extensions = 64;
  /// Simulated build+program time: trigger -> new version visible. Models
  /// the background rebuild without needing a wall clock.
  double swap_latency_s = 0.0;
  /// Benign FL feature rows retained for re-distillation (ring buffer).
  std::size_t recent_capacity = 2048;
  /// Produces drift-triggered versions; empty => recompile_rebuilder().
  core::ModelRebuilder rebuilder;
};

/// Per-run swap accounting, merged field-wise across shards like FaultStats.
struct SwapStats {
  std::size_t mirrors_applied = 0;       // delivered mirrors consumed
  std::size_t extensions_applied = 0;    // staged rule stretches
  std::size_t rejected_by_budget = 0;    // admissible but refused (valve shut)
  std::size_t drift_fires = 0;
  std::size_t drift_miss_rate = 0;
  std::size_t drift_vote_shift = 0;
  std::size_t drift_rejected_slope = 0;
  std::size_t rebuilds = 0;              // drift-triggered rebuilder runs
  std::size_t operator_requests = 0;     // request_publish calls (config reload)
  std::size_t incremental_publishes = 0; // extension-threshold recompiles
  std::size_t publishes = 0;             // versions made live (all kinds)
  std::size_t publishes_deferred_by_crash = 0;
  std::size_t coalesced_triggers = 0;    // absorbed while one was in flight
  std::size_t bundles_retired = 0;       // reclaimed after last reader moved on
  std::uint64_t final_version = 0;       // live version at end of run (0 = loop off)

  bool operator==(const SwapStats&) const = default;
};

/// Owns the ModelHandle, the staging whitelist, the drift detector, and the
/// single in-flight pending publish for one pipeline. Implements
/// WhitelistUpdateSink so the controller can hand it delivered mirrors on
/// the event clock.
class SwapLoop final : public WhitelistUpdateSink {
 public:
  SwapLoop(const SwapConfig& cfg, std::shared_ptr<const core::ModelBundle> initial,
           Controller& ctl, obs::Registry* metrics, const std::string& metrics_prefix);

  /// Pin the current bundle without advancing anything (construction time).
  const core::ModelBundle* pin_current();

  /// Hot path, once per packet: make a due pending publish live, then pin.
  /// Allocation-free when nothing is due (two atomic ops).
  const core::ModelBundle* advance_and_pin(double now_ts_s);

  /// WhitelistUpdateSink: one delivered benign mirror (event-clocked).
  void on_benign_mirror(const BenignMirror& m, double deliver_ts_s) override;

  /// Operator-triggered rebuild+publish (config reload, SIGHUP): stage the
  /// next version through the same pending-publish path a drift fire takes —
  /// built by the configured rebuilder, due swap_latency_s after `ts_s` on
  /// the event clock, deferred past crash windows, coalesced if a publish is
  /// already in flight. The swap stays hitless: in-flight packets keep their
  /// pinned bundle, and the pipeline picks the new version up at its next
  /// pin.
  void request_publish(double ts_s);

  /// End-of-run drain: publish anything still pending (its due time has
  /// arrived from the run's perspective), release the pin, reclaim retired
  /// versions.
  void finish();

  SwapStats stats() const;
  const core::ModelHandle& handle() const { return handle_; }
  const core::VoteWhitelist& staging_fl() const { return staging_fl_; }
  const core::DriftDetector& drift() const { return drift_; }

 private:
  void trigger_publish(bool drift_triggered, double ts_s);
  void on_published();

  SwapConfig cfg_;
  Controller* ctl_;
  core::ModelHandle handle_;
  std::size_t reader_;
  /// Live tables are immutable; online extensions land here and reach the
  /// data plane only via the next published version.
  core::VoteWhitelist staging_fl_;
  core::WhitelistUpdater updater_;
  core::DriftDetector drift_;
  /// Ring of recent benign FL rows (physical order; content is a
  /// deterministic function of the mirror stream).
  ml::Matrix recent_;
  std::size_t recent_rows_ = 0;
  std::size_t recent_next_ = 0;
  std::size_t extensions_at_last_publish_ = 0;
  std::uint64_t next_version_;
  struct Pending {
    std::shared_ptr<const core::ModelBundle> bundle;
    double due_ts = 0.0;
    bool drift_triggered = false;
  };
  std::optional<Pending> pending_;
  bool needs_collect_ = false;
  SwapStats stats_;
  // Last updater totals forwarded to the monotone obs counters.
  std::size_t obs_extensions_seen_ = 0;
  std::size_t obs_rejected_seen_ = 0;
  struct Obs {
    obs::Gauge version;
    obs::Counter publishes;
    obs::Counter drift_fires;
    obs::Counter extensions;
    obs::Counter rejected;
    obs::Counter mirrors;
    obs::Series miss_rate;  // sampled once per drift window
  } obs_;
};

}  // namespace iguard::switchsim
