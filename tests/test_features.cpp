#include "features/flow_features.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace iguard::features {
namespace {

traffic::Packet mk(double ts, std::uint16_t len, bool mal = false) {
  traffic::Packet p;
  p.ts = ts;
  p.ft = {0x0A000001, 0x0A000002, 1000, 80, traffic::kProtoTcp};
  p.length = len;
  p.ttl = 64;
  p.malicious = mal;
  return p;
}

TEST(FeatureNames, CountsMatch) {
  EXPECT_EQ(feature_names(FeatureSet::kSwitch13).size(), kSwitchFeatureCount);
  EXPECT_EQ(feature_names(FeatureSet::kCpuExtended).size(), kCpuFeatureCount);
  EXPECT_EQ(feature_count(FeatureSet::kSwitch13), 13u);
  EXPECT_EQ(feature_count(FeatureSet::kCpuExtended), 19u);
}

TEST(FlowStats, HandComputedFeatures) {
  // Packets: sizes 100, 200, 300 at t = 0, 1, 3.
  FlowStats st;
  st.add(mk(0.0, 100), true);
  st.add(mk(1.0, 200), true);
  st.add(mk(3.0, 300), true);
  const auto f = finalize_features(st, FeatureSet::kSwitch13);
  EXPECT_DOUBLE_EQ(f[0], 3.0);     // pkt_count
  EXPECT_DOUBLE_EQ(f[1], 600.0);   // total_size
  EXPECT_DOUBLE_EQ(f[2], 200.0);   // mean_size
  // var = (100^2+200^2+300^2)/3 - 200^2 = 46666.7 - 40000
  EXPECT_NEAR(f[4], 20000.0 / 3.0, 1e-9);
  EXPECT_NEAR(f[3], std::sqrt(20000.0 / 3.0), 1e-9);
  EXPECT_DOUBLE_EQ(f[5], 100.0);   // min
  EXPECT_DOUBLE_EQ(f[6], 300.0);   // max
  EXPECT_DOUBLE_EQ(f[7], 1.5);     // mean ipd of {1, 2}
  EXPECT_DOUBLE_EQ(f[8], 1.0);     // min ipd
  EXPECT_NEAR(f[9], 0.25, 1e-12);  // var ipd
  EXPECT_DOUBLE_EQ(f[11], 2.0);    // max ipd
  EXPECT_DOUBLE_EQ(f[12], 3.0);    // duration
}

TEST(FlowStats, SinglePacketHasZeroIpdStats) {
  FlowStats st;
  st.add(mk(5.0, 77), false);
  const auto f = finalize_features(st, FeatureSet::kSwitch13);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[7], 0.0);
  EXPECT_DOUBLE_EQ(f[12], 0.0);
}

TEST(FlowStats, CpuExtendedPercentilesAndContext) {
  FlowStats st;
  st.add(mk(0.0, 100), true);
  st.add(mk(1.0, 200), true);
  st.add(mk(2.0, 300), true);
  st.add(mk(3.0, 400), true);
  const auto f = finalize_features(st, FeatureSet::kCpuExtended);
  ASSERT_EQ(f.size(), kCpuFeatureCount);
  EXPECT_NEAR(f[13], 175.0, 1e-9);  // size p25 of {100,200,300,400}
  EXPECT_NEAR(f[14], 325.0, 1e-9);  // size p75
  EXPECT_DOUBLE_EQ(f[17], 80.0);    // dst_port
  EXPECT_DOUBLE_EQ(f[18], 6.0);     // proto
}

TEST(FlowStats, PortProtoIndependentOfFirstPacketDirection) {
  // Regression: flows are keyed bidirectionally, so whichever side speaks
  // first must not change the dst_port/proto features.
  auto fwd = mk(0.0, 100);
  auto rev = fwd;
  rev.ft = fwd.ft.reversed();

  FlowStats a;  // client (src_port 1000) speaks first
  a.add(fwd, true);
  a.add(rev, true);
  FlowStats b;  // server (port 80) speaks first
  b.add(rev, true);
  b.add(fwd, true);
  EXPECT_EQ(a.dst_port, b.dst_port);
  EXPECT_EQ(a.proto, b.proto);

  const auto fa = finalize_features(a, FeatureSet::kCpuExtended);
  const auto fb = finalize_features(b, FeatureSet::kCpuExtended);
  EXPECT_DOUBLE_EQ(fa[17], fb[17]);  // dst_port
  EXPECT_DOUBLE_EQ(fa[18], fb[18]);  // proto
}

TEST(Extract, BidirectionalPacketsShareOneFlow) {
  traffic::Trace t;
  t.packets.push_back(mk(0.0, 100));
  auto rev = mk(0.5, 150);
  rev.ft = rev.ft.reversed();
  t.packets.push_back(rev);
  t.packets.push_back(mk(1.0, 200));
  ExtractorConfig cfg;
  const auto ds = extract_flows(t, cfg);
  ASSERT_EQ(ds.x.rows(), 1u);
  EXPECT_DOUBLE_EQ(ds.x(0, 0), 3.0);  // all three packets aggregated
}

TEST(Extract, PacketThresholdSplitsFlow) {
  traffic::Trace t;
  for (int i = 0; i < 10; ++i) t.packets.push_back(mk(0.1 * i, 100));
  ExtractorConfig cfg;
  cfg.packet_threshold = 4;
  cfg.min_packets = 2;
  const auto ds = extract_flows(t, cfg);
  // 10 packets -> records of 4, 4, and residual 2.
  ASSERT_EQ(ds.x.rows(), 3u);
  EXPECT_DOUBLE_EQ(ds.x(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(ds.x(2, 0), 2.0);
}

TEST(Extract, IdleTimeoutSplitsFlow) {
  traffic::Trace t;
  t.packets.push_back(mk(0.0, 100));
  t.packets.push_back(mk(0.5, 100));
  t.packets.push_back(mk(100.0, 100));  // long idle gap
  t.packets.push_back(mk(100.5, 100));
  ExtractorConfig cfg;
  cfg.idle_timeout = 10.0;
  const auto ds = extract_flows(t, cfg);
  ASSERT_EQ(ds.x.rows(), 2u);
  EXPECT_DOUBLE_EQ(ds.x(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(ds.x(1, 0), 2.0);
}

TEST(Extract, MinPacketsFilters) {
  traffic::Trace t;
  t.packets.push_back(mk(0.0, 100));
  ExtractorConfig cfg;
  cfg.min_packets = 2;
  EXPECT_EQ(extract_flows(t, cfg).x.rows(), 0u);
}

TEST(Extract, MaliciousLabelPropagates) {
  traffic::Trace t;
  t.packets.push_back(mk(0.0, 100, false));
  t.packets.push_back(mk(1.0, 100, true));  // one bad packet taints the flow
  ExtractorConfig cfg;
  const auto ds = extract_flows(t, cfg);
  ASSERT_EQ(ds.labels.size(), 1u);
  EXPECT_EQ(ds.labels[0], 1);
}

TEST(PacketFeatures, EarlyPacketsOnly) {
  traffic::Trace t;
  for (int i = 0; i < 10; ++i) t.packets.push_back(mk(0.1 * i, 100));
  const auto ds = extract_packet_features(t, 3);
  ASSERT_EQ(ds.x.rows(), 3u);
  EXPECT_EQ(ds.x.cols(), kPacketFeatureCount);
  EXPECT_DOUBLE_EQ(ds.x(0, 0), 80.0);  // dst_port
  EXPECT_DOUBLE_EQ(ds.x(0, 1), 6.0);   // proto
  EXPECT_DOUBLE_EQ(ds.x(0, 2), 100.0); // length
  EXPECT_DOUBLE_EQ(ds.x(0, 3), 64.0);  // ttl
}

}  // namespace
}  // namespace iguard::features
