#include "ml/nn.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace iguard::ml {
namespace {

TEST(Activation, Values) {
  EXPECT_DOUBLE_EQ(apply_activation(Activation::kLinear, -2.0), -2.0);
  EXPECT_DOUBLE_EQ(apply_activation(Activation::kRelu, -2.0), 0.0);
  EXPECT_DOUBLE_EQ(apply_activation(Activation::kRelu, 3.0), 3.0);
  EXPECT_NEAR(apply_activation(Activation::kSigmoid, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(apply_activation(Activation::kTanh, 0.0), 0.0, 1e-12);
}

// Numerical check: grad-from-output matches finite differences of f.
TEST(Activation, GradMatchesFiniteDifference) {
  const double eps = 1e-6;
  for (Activation a : {Activation::kLinear, Activation::kSigmoid, Activation::kTanh}) {
    for (double z : {-1.5, -0.3, 0.2, 1.1}) {
      const double y = apply_activation(a, z);
      const double num =
          (apply_activation(a, z + eps) - apply_activation(a, z - eps)) / (2.0 * eps);
      EXPECT_NEAR(activation_grad_from_output(a, y), num, 1e-5);
    }
  }
}

TEST(DenseLayer, ForwardComputesAffine) {
  Rng rng(1);
  DenseLayer layer(2, 1, Activation::kLinear, rng);
  std::vector<double> y;
  const double x[] = {1.0, 2.0};
  layer.forward(x, y);
  const double expect = layer.weights()(0, 0) * 1.0 + layer.weights()(0, 1) * 2.0;
  EXPECT_NEAR(y[0], expect, 1e-12);
}

TEST(DenseLayer, BadInputWidthThrows) {
  Rng rng(1);
  DenseLayer layer(3, 2, Activation::kRelu, rng);
  std::vector<double> y;
  const double x[] = {1.0};
  EXPECT_THROW(layer.forward(x, y), std::invalid_argument);
}

// Gradient check for a small MLP: analytic dL/dx vs finite differences.
TEST(Mlp, GradientCheckInputGrad) {
  Rng rng(3);
  const std::size_t dims[] = {3, 4, 2};
  const Activation acts[] = {Activation::kTanh, Activation::kLinear};
  Mlp net(dims, acts, rng);

  std::vector<double> x = {0.3, -0.7, 0.9};
  const std::vector<double> target = {0.5, -0.2};

  auto loss_at = [&](const std::vector<double>& in) {
    const auto& y = net.forward(in);
    double l = 0.0;
    for (std::size_t j = 0; j < y.size(); ++j) l += (y[j] - target[j]) * (y[j] - target[j]);
    return l / static_cast<double>(y.size());
  };

  const auto& y = net.forward(x);
  std::vector<double> dout(y.size());
  for (std::size_t j = 0; j < y.size(); ++j)
    dout[j] = 2.0 * (y[j] - target[j]) / static_cast<double>(y.size());
  std::vector<double> dx;
  net.backward(dout, dx);

  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double num = (loss_at(xp) - loss_at(xm)) / (2.0 * eps);
    EXPECT_NEAR(dx[i], num, 1e-5) << "input " << i;
  }
}

TEST(Mlp, LearnsLinearMap) {
  Rng rng(5);
  const std::size_t dims[] = {2, 8, 1};
  const Activation acts[] = {Activation::kTanh, Activation::kLinear};
  Mlp net(dims, acts, rng);

  // y = 2a - b over a grid.
  Matrix x(0, 2), t(0, 1);
  for (double a = -1.0; a <= 1.0; a += 0.2) {
    for (double b = -1.0; b <= 1.0; b += 0.2) {
      const double row[] = {a, b};
      x.push_row(row);
      const double yr[] = {2.0 * a - b};
      t.push_row(yr);
    }
  }
  const double final_loss = net.fit(x, t, 300, 16, 5e-3, rng);
  EXPECT_LT(final_loss, 5e-3);
}

TEST(Mlp, DimsActsMismatchThrows) {
  Rng rng(1);
  const std::size_t dims[] = {2, 3};
  const Activation acts[] = {Activation::kRelu, Activation::kRelu};
  EXPECT_THROW(Mlp(dims, acts, rng), std::invalid_argument);
}

}  // namespace
}  // namespace iguard::ml
