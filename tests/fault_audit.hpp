// Conservation-audit assertions shared by the fault-injection and fleet
// tests (and, in library form, by bench_fleet's gates): every packet,
// digest, mirror, and install op must be accounted for exactly once. The
// checks themselves live in switchsim/fleet.{hpp,cpp} so the benches can
// reuse them without linking gtest; these wrappers just turn the first
// violated identity into a readable assertion failure.
#pragma once

#include <gtest/gtest.h>

#include "switchsim/fleet.hpp"

namespace iguard::switchsim {

inline ::testing::AssertionResult AuditSimConservation(const SimStats& stats) {
  const std::string err = audit_sim_conservation(stats);
  if (err.empty()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << err;
}

inline ::testing::AssertionResult AuditFleetConservation(const FleetResult& result,
                                                         std::size_t injected_packets) {
  const std::string err = audit_fleet_conservation(result, injected_packets);
  if (err.empty()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << err;
}

}  // namespace iguard::switchsim
