// Pipeline-level bit-exactness of the batched packet path (ISSUE 9).
//
// PipelineConfig::batch_size stages packets through columnar quantisation
// and one batched whitelist vote per batch, then feeds the precomputed PL
// hints into the unchanged sequential state machine. These properties pin
// the contract: SimStats (member-wise, pred/truth included) is identical to
// the scalar reference at every batch size, for both match engines, with a
// PL stage deployed or absent, across ragged tails, and under drift-driven
// model swaps at 1/2/4/8 shards — a swap mid-batch must invalidate the
// remaining hints, never reuse verdicts from a retired model version.
#include <gtest/gtest.h>

#include <vector>

#include "ml/rng.hpp"
#include "switchsim/replay.hpp"

namespace iguard::switchsim {
namespace {

/// Mixed bidirectional trace; malicious flows send large packets so the
/// min-size FL feature separates classes, and TTLs vary so the PL stage
/// sees non-degenerate early-packet keys.
traffic::Trace batch_trace(std::size_t flows, std::size_t packets_per_flow, ml::Rng& rng) {
  traffic::Trace t;
  for (std::size_t f = 0; f < flows; ++f) {
    const bool mal = f % 3 == 0;
    traffic::FiveTuple ft{0x0A000000u + static_cast<std::uint32_t>(f),
                          0x0B000000u + static_cast<std::uint32_t>(f % 7),
                          static_cast<std::uint16_t>(1024 + f), 443, traffic::kProtoTcp};
    for (std::size_t i = 0; i < packets_per_flow; ++i) {
      traffic::Packet p;
      p.ts = 0.001 * static_cast<double>(f) + 0.05 * static_cast<double>(i) +
             rng.uniform(0.0, 0.0005);
      p.ft = i % 2 == 0 ? ft : ft.reversed();
      p.length = mal ? static_cast<std::uint16_t>(1200 + rng.index(200))
                     : static_cast<std::uint16_t>(80 + rng.index(60));
      p.ttl = static_cast<std::uint8_t>(32 + rng.index(96));
      p.malicious = mal;
      t.packets.push_back(p);
    }
  }
  t.sort_by_time();
  return t;
}

class BatchPipelineTest : public ::testing::Test {
 protected:
  BatchPipelineTest() {
    // FL: 13-feature quantiser; one tree admitting min packet size <~600 B.
    ml::Matrix fl_fit(2, kSwitchFlFeatures);
    for (std::size_t j = 0; j < kSwitchFlFeatures; ++j) {
      fl_fit(0, j) = 0.0;
      fl_fit(1, j) = 1e6;
    }
    fl_q_.fit(fl_fit);
    fl_wl_.tree_count = 1;
    std::vector<rules::FieldRange> box(kSwitchFlFeatures, {0, fl_q_.domain_max()});
    box[5] = {0, fl_q_.quantize_value(5, 600.0)};
    fl_wl_.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});

    // PL: 4-field {dst_port, proto, length, ttl} quantiser; a 3-tree vote
    // over packet length (two broad tables, one narrow) so the batched
    // majority vote is exercised with a real tie-breaking threshold.
    ml::Matrix pl_fit(2, 4);
    pl_fit(0, 0) = 0.0;
    pl_fit(1, 0) = 65535.0;
    pl_fit(0, 1) = 0.0;
    pl_fit(1, 1) = 255.0;
    pl_fit(0, 2) = 0.0;
    pl_fit(1, 2) = 1600.0;
    pl_fit(0, 3) = 0.0;
    pl_fit(1, 3) = 255.0;
    pl_q_.fit(pl_fit);
    pl_wl_.tree_count = 3;
    for (const double cap : {900.0, 900.0, 300.0}) {
      std::vector<rules::FieldRange> pbox(4, {0, pl_q_.domain_max()});
      pbox[2] = {0, pl_q_.quantize_value(2, cap)};
      pl_wl_.tables.emplace_back(std::vector<rules::RangeRule>{{pbox, 0, 0}});
    }
  }

  DeployedModel model(bool with_pl) const {
    DeployedModel dm;
    dm.fl_tables = &fl_wl_;
    dm.fl_quantizer = &fl_q_;
    if (with_pl) {
      dm.pl_tables = &pl_wl_;
      dm.pl_quantizer = &pl_q_;
    }
    return dm;
  }

  /// Small flow store so two-way collisions (orange path, PL verdicts) occur;
  /// small n so blue finalisations install blacklist entries (red path).
  PipelineConfig pipe_cfg(std::size_t batch) const {
    PipelineConfig cfg;
    cfg.packet_threshold_n = 4;
    cfg.idle_timeout_delta = 10.0;
    cfg.flow_slots = 16;
    cfg.batch_size = batch;
    return cfg;
  }

  rules::Quantizer fl_q_{16};
  rules::Quantizer pl_q_{12};
  core::VoteWhitelist fl_wl_;
  core::VoteWhitelist pl_wl_;
};

TEST_F(BatchPipelineTest, BatchedRunBitIdenticalToScalarForBothEngines) {
  ml::Rng rng(41);
  const auto trace = batch_trace(120, 8, rng);
  const auto dm = model(true);
  for (const auto engine : {MatchEngine::kLinear, MatchEngine::kCompiled}) {
    PipelineConfig ref_cfg = pipe_cfg(0);
    ref_cfg.match_engine = engine;
    const auto ref = Pipeline(ref_cfg, dm).run(trace);
    // The workload must cover the paths the hints feed (brown/orange) plus
    // the red fast path, or the property would be vacuous.
    EXPECT_GT(ref.path(Path::kBrown), 0u);
    EXPECT_GT(ref.path(Path::kOrange), 0u);
    EXPECT_GT(ref.path(Path::kRed), 0u);
    for (const std::size_t batch : {8u, 32u, 128u}) {
      PipelineConfig cfg = pipe_cfg(batch);
      cfg.match_engine = engine;
      const auto got = Pipeline(cfg, dm).run(trace);
      EXPECT_TRUE(got == ref) << "engine=" << static_cast<int>(engine) << " batch=" << batch;
    }
  }
}

TEST_F(BatchPipelineTest, BatchedRunWithoutPlStageMatchesScalar) {
  // No PL stage deployed: every hint is the constant 0 — the batched run
  // must still be member-wise identical, not merely agree on verdicts.
  ml::Rng rng(43);
  const auto trace = batch_trace(60, 8, rng);
  const auto dm = model(false);
  const auto ref = Pipeline(pipe_cfg(0), dm).run(trace);
  const auto got = Pipeline(pipe_cfg(32), dm).run(trace);
  EXPECT_TRUE(got == ref);
}

TEST_F(BatchPipelineTest, RaggedTailAndOddBatchSizesAreExact) {
  // Trace length 60*8=480; batch sizes that do not divide it force a short
  // final batch, and batch_size=1 must collapse to the scalar path.
  ml::Rng rng(47);
  const auto trace = batch_trace(60, 8, rng);
  const auto dm = model(true);
  const auto ref = Pipeline(pipe_cfg(0), dm).run(trace);
  for (const std::size_t batch : {1u, 3u, 7u, 129u, 481u}) {
    const auto got = Pipeline(pipe_cfg(batch), dm).run(trace);
    EXPECT_TRUE(got == ref) << "batch=" << batch;
  }
}

TEST_F(BatchPipelineTest, ProcessBatchSpansMatchSequentialProcess) {
  // Driving process_batch directly with caller-chosen span boundaries (not
  // via run()) equals per-packet process() on the same pipeline state.
  ml::Rng rng(53);
  const auto trace = batch_trace(40, 8, rng);
  const auto dm = model(true);
  PipelineConfig cfg = pipe_cfg(0);
  Pipeline a(cfg, dm), b(cfg, dm);
  SimStats sa, sb;
  for (const auto& p : trace.packets) a.process(p, sa);
  const std::span<const traffic::Packet> all(trace.packets);
  std::size_t base = 0;
  std::size_t step = 1;
  while (base < all.size()) {  // 1, 2, 3, ... ragged span walk
    const std::size_t take = std::min(step++, all.size() - base);
    b.process_batch(all.subspan(base, take), sb);
    base += take;
  }
  b.process_batch({}, sb);  // empty span is a no-op
  EXPECT_TRUE(sa == sb);
}

// --- swap-under-drift: batched hints must never outlive a model version ----

/// Benign traffic whose packet size migrates mid-trace (small -> ~700 B),
/// the sustained-miss regime the drift detector fires on.
traffic::Trace drift_trace(std::size_t flows, std::size_t packets_per_flow, ml::Rng& rng) {
  traffic::Trace t;
  for (std::size_t f = 0; f < flows; ++f) {
    const bool mal = f % 5 == 0;
    const bool drifted = f >= flows / 2;
    traffic::FiveTuple ft{0x0A000000u + static_cast<std::uint32_t>(f),
                          0x0B000000u + static_cast<std::uint32_t>(f % 7),
                          static_cast<std::uint16_t>(1024 + f), 443, traffic::kProtoTcp};
    for (std::size_t i = 0; i < packets_per_flow; ++i) {
      traffic::Packet p;
      p.ts = 0.001 * static_cast<double>(f) + 0.05 * static_cast<double>(i) +
             rng.uniform(0.0, 0.0005);
      p.ft = i % 2 == 0 ? ft : ft.reversed();
      if (mal) {
        p.length = static_cast<std::uint16_t>(1200 + rng.index(200));
      } else if (drifted) {
        p.length = static_cast<std::uint16_t>(650 + rng.index(100));
      } else {
        p.length = static_cast<std::uint16_t>(80 + rng.index(60));
      }
      p.ttl = static_cast<std::uint8_t>(32 + rng.index(96));
      p.malicious = mal;
      t.packets.push_back(p);
    }
  }
  t.sort_by_time();
  return t;
}

/// Three-table FL vote where drifted-benign misses the narrow table on
/// every mirror; swap fires on the miss-rate drift signal only.
core::VoteWhitelist swap_whitelist(const rules::Quantizer& q) {
  core::VoteWhitelist wl;
  wl.tree_count = 3;
  for (const double cap : {900.0, 900.0, 300.0}) {
    std::vector<rules::FieldRange> box(kSwitchFlFeatures, {0, q.domain_max()});
    box[5] = {0, q.quantize_value(5, cap)};
    wl.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});
  }
  return wl;
}

TEST_F(BatchPipelineTest, SwapUnderDriftBatchedMatchesScalarAcrossShardCounts) {
  ml::Rng rng(59);
  const auto trace = drift_trace(400, 8, rng);
  const auto wl = swap_whitelist(fl_q_);
  DeployedModel dm;
  dm.fl_tables = &wl;
  dm.fl_quantizer = &fl_q_;
  dm.pl_tables = &pl_wl_;
  dm.pl_quantizer = &pl_q_;

  PipelineConfig base;
  base.packet_threshold_n = 4;
  base.idle_timeout_delta = 10.0;
  base.swap.enabled = true;
  base.swap.drift.window = 16;
  base.swap.drift.baseline_windows = 1;
  base.swap.drift.miss_rate_margin = 0.10;
  base.swap.update.max_extension_per_field = 8;
  base.swap.publish_after_extensions = 0;  // drift is the only trigger
  base.swap.recent_capacity = 512;

  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    ReplayConfig rc;
    rc.shards = k;
    rc.num_threads = k;
    PipelineConfig scalar = base;
    scalar.batch_size = 0;
    PipelineConfig batched = base;
    batched.batch_size = 32;
    const auto a = replay_sharded(trace, scalar, dm, rc);
    const auto b = replay_sharded(trace, batched, dm, rc);
    EXPECT_TRUE(a.stats == b.stats) << "shards=" << k;
    if (k == 1) {
      // The workload genuinely drifts and swaps mid-run, so the batched path
      // really does cross a model-version boundary with hints in flight.
      EXPECT_GE(a.stats.swap.publishes, 1u);
      EXPECT_GT(a.stats.swap.final_version, 1u);
    }
  }
}

}  // namespace
}  // namespace iguard::switchsim
