#include "switchsim/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace iguard::switchsim {

namespace {
void count(SimStats& s, Path p) { ++s.path_count[static_cast<std::size_t>(p)]; }

/// PL whitelist width: {dst_port, proto, length, TTL}.
constexpr std::size_t kPlFeatures = 4;

constexpr const char* kPathNames[6] = {"red", "brown", "blue", "orange", "purple", "green"};
}  // namespace

Pipeline::Pipeline(const PipelineConfig& cfg, const DeployedModel& model)
    : cfg_(cfg),
      model_(model),
      store_(cfg.flow_slots),
      blacklist_(cfg.blacklist_capacity, cfg.eviction),
      controller_(blacklist_, cfg.control, &store_, cfg.metrics,
                  cfg.metrics_prefix + ".control") {
  if (model_.fl_tables == nullptr || model_.fl_quantizer == nullptr) {
    throw std::invalid_argument("Pipeline: FL rules are mandatory");
  }
  if (cfg_.metrics != nullptr && cfg_.metrics->enabled()) {
    obs_.enabled = true;
    const std::string& p = cfg_.metrics_prefix;
    for (std::size_t i = 0; i < 6; ++i) {
      obs_.path_packets[i] = cfg_.metrics->counter(p + ".path." + kPathNames[i] + ".packets");
      obs_.path_ns[i] = cfg_.metrics->histogram(
          "timing." + p + ".process_ns." + kPathNames[i], obs::default_latency_bounds_ns());
    }
    obs_.flow_occupancy = cfg_.metrics->gauge(p + ".flow_store.occupancy");
    obs_.blacklist_occupancy = cfg_.metrics->gauge(p + ".blacklist.occupancy");
    obs_.blacklist_evictions = cfg_.metrics->counter(p + ".blacklist.evictions");
    obs_.leaked_packets = cfg_.metrics->counter(p + ".leaked_packets");
  }
  if (cfg_.swap.enabled) {
    // Snapshot the deployed model into version 1 of the swap loop's handle:
    // published bundles own their tables, so online updates can never mutate
    // what the data plane is reading (the stale compiled-whitelist skew).
    core::VoteWhitelist pl =
        model_.pl_tables != nullptr ? *model_.pl_tables : core::VoteWhitelist{};
    rules::Quantizer pl_q =
        model_.pl_quantizer != nullptr ? *model_.pl_quantizer : rules::Quantizer{16};
    auto initial = core::build_bundle(1, *model_.fl_tables, *model_.fl_quantizer,
                                      std::move(pl), std::move(pl_q));
    swap_ = std::make_unique<SwapLoop>(cfg_.swap, std::move(initial), controller_,
                                       cfg_.metrics, cfg_.metrics_prefix);
    controller_.set_update_sink(swap_.get());
    bind_bundle(swap_->pin_current());
  } else if (cfg_.match_engine == MatchEngine::kCompiled) {
    if (model_.fl_compiled != nullptr) {
      fl_engine_ = model_.fl_compiled;
    } else {
      fl_owned_ = core::CompiledVoteWhitelist(*model_.fl_tables);
      fl_engine_ = &fl_owned_;
    }
    if (model_.pl_compiled != nullptr) {
      pl_engine_ = model_.pl_compiled;
    } else if (model_.pl_tables != nullptr) {
      pl_owned_ = core::CompiledVoteWhitelist(*model_.pl_tables);
      pl_engine_ = &pl_owned_;
    }
  }
}

void Pipeline::bind_bundle(const core::ModelBundle* b) {
  bound_ = b;
  model_.fl_tables = &b->fl;
  model_.fl_quantizer = &b->fl_q;
  model_.pl_tables = b->has_pl() ? &b->pl : nullptr;
  model_.pl_quantizer = b->has_pl() ? &b->pl_q : nullptr;
  fl_engine_ = &b->fl_compiled;
  pl_engine_ = b->has_pl() ? &b->pl_compiled : nullptr;
  // Any precomputed batch hints now describe a retired version.
  hints_stale_ = true;
}

int Pipeline::classify_pl(const traffic::Packet& p) const {
  if (model_.pl_tables == nullptr || model_.pl_quantizer == nullptr) return 0;
  const double f[kPlFeatures] = {static_cast<double>(p.ft.dst_port),
                                 static_cast<double>(p.ft.proto),
                                 static_cast<double>(p.length), static_cast<double>(p.ttl)};
  std::array<std::uint32_t, kPlFeatures> key;
  model_.pl_quantizer->quantize_into(f, key);
  return cfg_.match_engine == MatchEngine::kCompiled ? pl_engine_->classify(key)
                                                     : model_.pl_tables->classify(key);
}

void Pipeline::finalize_flow(const traffic::Packet& p, std::uint64_t flow_key, IntFlowState& st,
                             SimStats& stats) {
  const auto f = st.finalize();
  std::array<std::uint32_t, kSwitchFlFeatures> key;
  model_.fl_quantizer->quantize_into(f, key);
  const int label = cfg_.match_engine == MatchEngine::kCompiled
                        ? fl_engine_->classify(key)
                        : model_.fl_tables->classify(key);
  st.label = static_cast<std::int8_t>(label);
  ++stats.flows_classified;
  // Digest (5-tuple + label) regardless of match outcome (§2, step 10a),
  // stamped with the triggering packet's timestamp: the install becomes
  // visible only once the control plane catches up (faults.hpp).
  controller_.on_digest({p.ft, label}, p.ts);
  if (label == 1) malicious_classified_.insert(flow_key);
  if (label == 0) {
    // Egress mirror of benign FL features to the CPU for whitelist updates.
    ++stats.benign_feature_mirrors;
    if (swap_ != nullptr) {
      BenignMirror m;
      m.key = key;
      for (std::size_t j = 0; j < kSwitchFlFeatures; ++j) m.features[j] = f[j];
      controller_.on_benign_mirror(m, p.ts);
    }
  }
  st.clear_features();
  // Mirror to loopback to commit the label (green path, simulated inline).
  // Mirrors are copies, not packets of their own: tracked separately so
  // path_count still sums to exactly stats.packets.
  ++stats.green_mirrors;
}

void Pipeline::compute_pl_hints(std::span<const traffic::Packet> pkts, std::size_t from) {
  const std::size_t n = pkts.size();
  if (model_.pl_tables == nullptr || model_.pl_quantizer == nullptr) {
    // No early-packet stage deployed: classify_pl answers 0 for everything.
    std::fill(batch_hints_.begin() + static_cast<std::ptrdiff_t>(from),
              batch_hints_.begin() + static_cast<std::ptrdiff_t>(n), 0);
    return;
  }
  for (std::size_t i = from; i < n; ++i) {
    const traffic::Packet& p = pkts[i];
    double* row = batch_rows_.data() + i * kPlFeatures;
    row[0] = static_cast<double>(p.ft.dst_port);
    row[1] = static_cast<double>(p.ft.proto);
    row[2] = static_cast<double>(p.length);
    row[3] = static_cast<double>(p.ttl);
  }
  const std::size_t m = n - from;
  model_.pl_quantizer->quantize_rows_into(
      std::span<const double>(batch_rows_.data() + from * kPlFeatures, m * kPlFeatures),
      std::span<std::uint32_t>(batch_keys_.data() + from * kPlFeatures, m * kPlFeatures));
  if (cfg_.match_engine == MatchEngine::kCompiled) {
    pl_engine_->classify_batch(
        std::span<const std::uint32_t>(batch_keys_.data() + from * kPlFeatures,
                                       m * kPlFeatures),
        kPlFeatures, std::span<int>(batch_hints_.data() + from, m));
  } else {
    for (std::size_t i = from; i < n; ++i) {
      batch_hints_[i] = model_.pl_tables->classify(
          std::span<const std::uint32_t>(batch_keys_.data() + i * kPlFeatures, kPlFeatures));
    }
  }
}

void Pipeline::process_batch(std::span<const traffic::Packet> pkts, SimStats& stats) {
  const std::size_t n = pkts.size();
  if (n == 0) return;
  if (batch_rows_.size() < n * kPlFeatures) {
    // One-time growth to the largest batch seen; steady state reuses it.
    batch_rows_.resize(n * kPlFeatures);
    batch_keys_.resize(n * kPlFeatures);
    batch_hints_.resize(n);
  }
  compute_pl_hints(pkts, 0);
  hints_stale_ = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (hints_stale_) {
      // A swap rebound the model mid-batch (packet i-1, or i itself via the
      // scalar fallback inside process_hinted): re-derive the remaining
      // hints from the now-live version before trusting any of them.
      compute_pl_hints(pkts, i);
      hints_stale_ = false;
    }
    process_hinted(pkts[i], stats, batch_hints_[i]);
  }
}

int Pipeline::process(const traffic::Packet& p, SimStats& stats) {
  return process_hinted(p, stats, -1);
}

int Pipeline::process_hinted(const traffic::Packet& p, SimStats& stats, int pl_hint) {
  // Latency scope for the per-path histograms: t0 is captured up front (the
  // handle is active iff a registry is attached) and the destination is
  // re-targeted once the packet's path is known.
  obs::ScopeTimerNs timer(obs_.path_ns[0]);
  // Apply control-plane work due by this packet's time before the lookup:
  // with zero latency and no faults this is exactly the lockstep model (an
  // install triggered by packet i has always only affected packets > i).
  controller_.advance_to(p.ts);
  if (swap_ != nullptr) {
    // Hitless pickup: publish anything due by now, then pin. Rebinding only
    // happens on a version change, so the steady state is two atomic ops.
    const core::ModelBundle* b = swap_->advance_and_pin(p.ts);
    if (b != bound_) bind_bundle(b);
  }
  ++stats.packets;
  const std::uint8_t truth = p.malicious ? 1 : 0;
  if (cfg_.record_labels) stats.truth.push_back(truth);
  // The one bidirectional flow key this packet needs: blacklist lookup,
  // malicious-classified marking, and the leak check all share it.
  const std::uint64_t flow_key = BlacklistTable::flow_key(p.ft);
  // The precomputed PL verdict is usable only if no swap rebound the model
  // since the batch's hints were derived (including the rebind just above).
  const auto pl_verdict = [&] {
    return pl_hint >= 0 && !hints_stale_ ? pl_hint : classify_pl(p);
  };
  int verdict = 0;
  Path path = Path::kRed;

  if (blacklist_.contains_key(flow_key)) {
    // --- red -----------------------------------------------------------
    count(stats, Path::kRed);
    ++stats.blacklist_hits;
    verdict = 1;
  } else {
    auto acc = store_.access(p.ft);
    if (acc.inserted) ++slots_claimed_;
    if (acc.collision) {
      // --- orange --------------------------------------------------------
      count(stats, Path::kOrange);
      path = Path::kOrange;
      ++stats.collisions;
      IntFlowState& resident = *acc.state;
      if (resident.label >= 0) {
        // Resident flow already classified: reclaim the slot for this flow.
        store_.clear_slot(resident);
        resident.update(p, store_.signature(p.ft));
        ++stats.green_mirrors;  // loopback mirror re-initialises flow ID
      }
      verdict = pl_verdict();
    } else {
      IntFlowState& st = *acc.state;
      if (acc.found && st.label >= 0) {
        // --- purple --------------------------------------------------------
        count(stats, Path::kPurple);
        path = Path::kPurple;
        verdict = st.label;
      } else {
        // Shared seconds->µs clamp (flow_state.hpp). The raw cast this code
        // used before was UB for negative timestamps: they wrapped to huge
        // values that force-fired the idle timeout and skewed deployment
        // epochs away from the training extractor's.
        const std::uint64_t now_us = to_us(p.ts);
        const std::uint64_t delta_us = to_us(cfg_.idle_timeout_delta);
        const bool timed_out = cfg_.idle_timeout_delta > 0.0 && st.pkt_count > 0 &&
                               now_us > st.last_ts_us && now_us - st.last_ts_us > delta_us;
        if (timed_out) {
          // --- blue (timeout flavour) --------------------------------------
          // The idle flow is finalised with what it had; the triggering
          // packet then seeds the fresh feature epoch — exactly what
          // extract_switch_features does on timeout, so deployed flows see
          // the same features the FL rules were trained on. The packet
          // itself still gets a PL verdict (its FL epoch just began).
          count(stats, Path::kBlue);
          path = Path::kBlue;
          finalize_flow(p, flow_key, st, stats);
          st.update(p, store_.signature(p.ft));
          verdict = pl_verdict();
        } else {
          st.update(p, store_.signature(p.ft));
          if (cfg_.packet_threshold_n > 0 && st.pkt_count >= cfg_.packet_threshold_n) {
            // --- blue (n-th packet) ----------------------------------------
            count(stats, Path::kBlue);
            path = Path::kBlue;
            finalize_flow(p, flow_key, st, stats);
            verdict = st.label;
          } else {
            // --- brown -----------------------------------------------------
            count(stats, Path::kBrown);
            path = Path::kBrown;
            verdict = pl_verdict();
          }
        }
      }
    }
  }

  if (cfg_.record_labels) stats.pred.push_back(static_cast<std::uint8_t>(verdict));
  if (verdict == 1) {
    ++(truth ? stats.tp : stats.fp);
    ++stats.dropped;
  } else {
    ++(truth ? stats.fn : stats.tn);
    if (malicious_classified_.contains(flow_key)) {
      // Detection already happened for this flow but enforcement has not
      // landed (install in flight, lost, or the flow label was evicted).
      ++stats.faults.leaked_packets;
      obs_.leaked_packets.inc();
    }
  }
  if (obs_.enabled) {
    const std::size_t pi = static_cast<std::size_t>(path);
    obs_.path_packets[pi].inc();
    obs_.flow_occupancy.set(static_cast<double>(slots_claimed_));
    obs_.blacklist_occupancy.set(static_cast<double>(blacklist_.size()));
    const std::size_t ev = blacklist_.evictions();
    if (ev != last_evictions_) {
      obs_.blacklist_evictions.inc(ev - last_evictions_);
      last_evictions_ = ev;
    }
    timer.set(obs_.path_ns[pi]);
  }
  return verdict;
}

SimStats Pipeline::run(const traffic::Trace& trace) {
  SimStats stats;
  if (cfg_.record_labels) {
    stats.pred.reserve(trace.size());
    stats.truth.reserve(trace.size());
  }
  if (cfg_.batch_size > 1) {
    const std::span<const traffic::Packet> all(trace.packets);
    for (std::size_t base = 0; base < all.size(); base += cfg_.batch_size) {
      process_batch(all.subspan(base, std::min(cfg_.batch_size, all.size() - base)), stats);
    }
  } else {
    for (const auto& p : trace.packets) process(p, stats);
  }
  finish_stream(stats);
  return stats;
}

void Pipeline::finish_stream(SimStats& stats) {
  controller_.flush();
  if (swap_ != nullptr) {
    // The flush above may have delivered late mirrors that triggered one
    // more publish; finish() makes it live and reclaims retired versions.
    swap_->finish();
    bind_bundle(swap_->handle().current());
    stats.swap = swap_->stats();
  }
  const std::size_t leaked = stats.faults.leaked_packets;
  stats.faults = controller_.fault_stats();
  stats.faults.leaked_packets = leaked;
}

bool Pipeline::request_model_publish(double ts_s) {
  if (swap_ == nullptr) return false;
  swap_->request_publish(ts_s);
  return true;
}

}  // namespace iguard::switchsim
