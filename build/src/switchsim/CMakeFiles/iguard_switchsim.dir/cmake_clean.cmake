file(REMOVE_RECURSE
  "CMakeFiles/iguard_switchsim.dir/flow_state.cpp.o"
  "CMakeFiles/iguard_switchsim.dir/flow_state.cpp.o.d"
  "CMakeFiles/iguard_switchsim.dir/p4_emit.cpp.o"
  "CMakeFiles/iguard_switchsim.dir/p4_emit.cpp.o.d"
  "CMakeFiles/iguard_switchsim.dir/pipeline.cpp.o"
  "CMakeFiles/iguard_switchsim.dir/pipeline.cpp.o.d"
  "CMakeFiles/iguard_switchsim.dir/registers.cpp.o"
  "CMakeFiles/iguard_switchsim.dir/registers.cpp.o.d"
  "CMakeFiles/iguard_switchsim.dir/resources.cpp.o"
  "CMakeFiles/iguard_switchsim.dir/resources.cpp.o.d"
  "CMakeFiles/iguard_switchsim.dir/tables.cpp.o"
  "CMakeFiles/iguard_switchsim.dir/tables.cpp.o.d"
  "CMakeFiles/iguard_switchsim.dir/timing.cpp.o"
  "CMakeFiles/iguard_switchsim.dir/timing.cpp.o.d"
  "libiguard_switchsim.a"
  "libiguard_switchsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iguard_switchsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
