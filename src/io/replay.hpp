// Hardened replay entry points: the composition every packet source is
// meant to flow through (DESIGN.md §4g) —
//
//   bytes -> [chaos mangler] -> TraceReader -> OverloadGate -> replay_sharded
//
// with one conservation audit spanning the whole chain: every offered
// record is accounted for exactly once as admitted-and-replayed, shed, or
// quarantined. With chaos and overload off, the hardened path is
// byte-identical to the plain replay of the same trace — the parity gate
// bench_ingest and scripts/check.sh --ingest-smoke enforce.
#pragma once

#include <string>
#include <string_view>

#include "io/chaos.hpp"
#include "io/ingest.hpp"
#include "io/overload.hpp"
#include "switchsim/fleet.hpp"
#include "switchsim/replay.hpp"

namespace iguard::io {

struct IngestReplayConfig {
  TraceReaderConfig reader;
  OverloadConfig overload;
  /// Ingest-domain fault programme (record/batch/burst fields; the
  /// control-plane fields ride along untouched into the pipeline's own
  /// config, not here). Applied to the serialized CSV before the reader.
  switchsim::FaultConfig chaos;
  std::size_t chaos_batch_records = 64;
};

struct IngestReplayResult {
  IngestStats ingest;
  QuarantineRing quarantine;
  bool container_ok = true;
  std::string container_error;
  OverloadStats overload;
  ChaosStats chaos;
  bool chaos_applied = false;  // true when the mangler actually ran
  switchsim::ShardedReplayResult replay;
};

/// Untrusted-bytes entry: mangle (if chaos enabled), read, shed, replay.
IngestReplayResult ingest_replay_sharded(std::string_view trace_bytes,
                                         const IngestReplayConfig& icfg,
                                         const switchsim::PipelineConfig& cfg,
                                         const switchsim::DeployedModel& model,
                                         const switchsim::ReplayConfig& rcfg = {});

/// In-memory entry: with chaos enabled the trace is serialized to CSV so
/// the mangler attacks real bytes; otherwise the trace goes through the
/// validation boundary (ingest_trace) directly — which leaves a valid,
/// time-sorted trace untouched, preserving byte-identity with the plain
/// replay.
IngestReplayResult ingest_replay_sharded(const traffic::Trace& trace,
                                         const IngestReplayConfig& icfg,
                                         const switchsim::PipelineConfig& cfg,
                                         const switchsim::DeployedModel& model,
                                         const switchsim::ReplayConfig& rcfg = {});

/// Fleet-scale variant: same ingest chain in front of replay_fleet.
struct IngestFleetResult {
  IngestStats ingest;
  QuarantineRing quarantine;
  bool container_ok = true;
  std::string container_error;
  OverloadStats overload;
  ChaosStats chaos;
  bool chaos_applied = false;
  switchsim::FleetResult fleet;
};
IngestFleetResult ingest_replay_fleet(const traffic::Trace& trace,
                                      const IngestReplayConfig& icfg,
                                      const switchsim::PipelineConfig& cfg,
                                      const switchsim::DeployedModel& model,
                                      const switchsim::FleetConfig& fcfg = {});

/// Whole-chain conservation audit. Empty string = every identity holds:
///   ingest.conserved()                          (offered == accepted + quarantined)
///   overload.conserved()                        (offered == admitted + shed)
///   overload.offered == ingest.accepted         (nothing lost between stages)
///   replayed packets  == overload.admitted      (pipeline saw every admit)
///   chaos records_out == ingest.offered         (when the mangler ran)
/// plus switchsim::audit_sim_conservation on the replay stats.
std::string audit_ingest_conservation(const IngestReplayResult& r);
std::string audit_ingest_conservation(const IngestFleetResult& r);

}  // namespace iguard::io
