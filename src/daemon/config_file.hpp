// iguardd config files (DESIGN.md §4i): a flat `key = value` format with
// `#` comments, one knob per line. The parser only *stages* values into a
// DaemonConfig — daemon::validate_config() (and the reload structural diff)
// stays the single authority on what is legal, so a config file cannot
// express a state the programmatic API would reject.
//
//   # serve a looped trace with overload control
//   source.path = traces/campus.csv
//   source.loops = 0              # forever
//   shards = 2
//   overload.enabled = true
//   overload.drain_rate_pps = 50000
//   overload.policy = flow_hash
//   pipeline.swap.enabled = true
#pragma once

#include <string>
#include <string_view>

#include "daemon/daemon.hpp"

namespace iguard::daemon {

/// Apply `key = value` lines from `text` on top of `out` (so defaults and
/// flag overrides survive unless the file sets them). Returns empty on
/// success, otherwise "line N: problem" for the first bad line — unknown
/// keys are errors, not warnings, so a typo cannot silently revert a knob
/// to its default.
std::string parse_config_text(std::string_view text, DaemonConfig& out);

/// parse_config_text over the contents of `path`; "cannot open" errors are
/// reported the same way (returned, never thrown).
std::string load_config_file(const std::string& path, DaemonConfig& out);

}  // namespace iguard::daemon
