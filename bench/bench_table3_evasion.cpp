// Reproduces Table 3: black-box evasion attacks on the switch testbed. The
// attacker interleaves benign-mimicking chaff packets with the real flood
// packets (1 real : r chaff), diluting every flow-level statistic toward
// benign. Per-packet metrics from the pipeline replay. Paper's shape:
// iGuard remains strong (70-100% F1) while the iForest baseline collapses
// (improvements of roughly 30-80 points).
#include <iostream>

#include "eval/report.hpp"
#include "harness/testbed_lab.hpp"
#include "trafficgen/adversarial.hpp"

using namespace iguard;

namespace {
std::string fmt(const eval::DetectionMetrics& m) {
  return eval::Table::pct(m.macro_f1) + "/" + eval::Table::pct(m.roc_auc) + "/" +
         eval::Table::pct(m.pr_auc);
}
}  // namespace

int main() {
  harness::TestbedLab lab{harness::TestbedLabConfig{}};
  eval::Table table({"scenario", "iForest [15] (F1/ROC/PR)", "iGuard (F1/ROC/PR)"});

  for (std::size_t chaff : {2u, 4u}) {
    for (auto type : {traffic::AttackType::kUdpDdos, traffic::AttackType::kTcpDdos}) {
      traffic::AttackConfig acfg;
      acfg.flows = lab.config().attack_flows;
      traffic::EvasionConfig ev;
      ev.chaff_per_packet = chaff;
      ml::Rng r1(lab.config().seed ^ (0xE5A5u + chaff));
      ml::Rng r2(lab.config().seed ^ (0x35A5u + chaff));
      const auto val = traffic::evasion_trace(type, acfg, ev, r1);
      const auto test = traffic::evasion_trace(type, acfg, ev, r2);
      const auto out = lab.run_with_traces(val, test);
      table.add_row({"Evasion (" + traffic::attack_name(type) + " 1:" + std::to_string(chaff) +
                         ")",
                     fmt(out.iforest), fmt(out.iguard)});
    }
  }

  table.print(std::cout, "Table 3: black-box evasion adversarial attacks");
  std::cout << "\nPaper reference rows:\n"
               "  Evasion (UDPDDoS 1:2): iForest 33.33/34.45/20.51  iGuard 72.23/78.85/70.51\n"
               "  Evasion (TCPDDoS 1:2): iForest 38.83/39.68/20.00  iGuard 100/100/100\n"
               "  Evasion (UDPDDoS 1:4): iForest 40.52/41.11/28.87  iGuard 72.12/77.55/68.82\n"
               "  Evasion (TCPDDoS 1:4): iForest 42.26/42.62/19.20  iGuard 87.23/81.43/68.39\n";
  table.write_csv("table3_evasion.csv");
  return 0;
}
