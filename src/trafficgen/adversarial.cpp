#include "trafficgen/adversarial.hpp"

#include <algorithm>
#include <cmath>

namespace iguard::traffic {

void apply_low_rate(std::vector<FlowSpec>& specs, double factor) {
  for (auto& s : specs) {
    s.ipd_mean *= factor;
    // A throttled flood also sends fewer packets inside the capture window.
    s.packets = std::max<std::size_t>(
        2, static_cast<std::size_t>(static_cast<double>(s.packets) / std::sqrt(factor)));
  }
}

std::vector<FlowSpec> poison_training_flows(const std::vector<FlowSpec>& benign,
                                            AttackType type, double fraction,
                                            const AttackConfig& cfg, ml::Rng& rng) {
  std::vector<FlowSpec> out = benign;
  AttackConfig pcfg = cfg;
  pcfg.flows = static_cast<std::size_t>(fraction * static_cast<double>(benign.size()));
  auto poison = attack_flows(type, pcfg, rng);
  std::uint32_t next_id = static_cast<std::uint32_t>(benign.size());
  for (auto& s : poison) {
    s.flow_id = next_id++;
    out.push_back(s);
  }
  return out;
}

Trace evasion_trace(AttackType type, const AttackConfig& cfg, const EvasionConfig& ev,
                    ml::Rng& rng) {
  auto specs = attack_flows(type, cfg, rng);
  Trace out;
  for (const auto& s : specs) {
    double t = s.start;
    for (std::size_t i = 0; i < s.packets; ++i) {
      // The gap the attack would have used, now shared by 1 + r packets.
      const double jitter = s.ipd_jitter_sigma > 0.0
                                ? std::exp(s.ipd_jitter_sigma * rng.normal() -
                                           0.5 * s.ipd_jitter_sigma * s.ipd_jitter_sigma)
                                : 1.0;
      const double gap = std::max(1e-7, s.ipd_mean * jitter);
      const double sub_gap = gap / static_cast<double>(1 + ev.chaff_per_packet);

      Packet p;
      p.ft = s.ft;
      p.ttl = s.ttl;
      p.malicious = true;
      p.flow_id = s.flow_id;

      p.ts = t;
      p.length = static_cast<std::uint16_t>(
          std::clamp(rng.normal(s.size_mu, s.size_sigma), 40.0, 1500.0));
      p.flags = (i == 0) ? s.first_flag
                         : (s.ft.proto == kProtoTcp ? TcpFlag::kAck : TcpFlag::kNone);
      out.packets.push_back(p);

      for (std::size_t c = 0; c < ev.chaff_per_packet; ++c) {
        Packet chaff = p;
        chaff.ts = t + sub_gap * static_cast<double>(c + 1);
        chaff.length = static_cast<std::uint16_t>(
            std::clamp(rng.normal(ev.chaff_size_mu, ev.chaff_size_sigma), 40.0, 1500.0));
        chaff.flags = s.ft.proto == kProtoTcp ? TcpFlag::kAck : TcpFlag::kNone;
        out.packets.push_back(chaff);
      }
      t += gap;
    }
  }
  out.sort_by_time();
  return out;
}

}  // namespace iguard::traffic
