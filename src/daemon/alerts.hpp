// Line-delimited alert stream for the serving daemon (DESIGN.md §4i): a
// bounded, preallocated ring of POD alert records plus per-kind running
// totals. Alerts are emitted as *deltas at flush points* — the daemon scans
// its counters every few packets/batches and emits one record per counter
// that moved — so the sum of alert counts per kind equals the corresponding
// stats total exactly (the conservation property the exposition tests gate
// on), while a burst of ten thousand installs costs a handful of records,
// not ten thousand.
//
// emit() takes a small mutex but never allocates: the ring is sized at
// construction and overwrites the oldest record once full (counted as
// dropped; totals keep accumulating). Text rendering happens off the packet
// path — at scrape, flush, or shutdown.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace iguard::daemon {

enum class AlertKind : std::uint8_t {
  kBlacklistInstall = 0,  // controller installed blacklist rules
  kSwapPublish,           // a new model bundle version went live
  kQuarantine,            // ingest quarantined malformed records
  kShed,                  // overload gate shed packets
  kReload,                // config reload applied (count = 1) or rejected (count = 0)
  kContainer,             // source container damage (bad magic, unframeable)
};
inline constexpr std::size_t kAlertKinds = 6;

/// Stable lowercase name ("blacklist_install", ...): the `kind=` field of
/// the rendered line and the metrics key suffix.
std::string_view alert_kind_name(AlertKind k);

struct AlertRecord {
  std::uint64_t seq = 0;   // 1-based emission order, survives ring wrap
  AlertKind kind = AlertKind::kBlacklistInstall;
  double ts = 0.0;         // event time (packet timestamp domain)
  std::uint64_t count = 0; // events coalesced into this record
  std::uint32_t shard = 0; // originating shard (0 for producer-side kinds)
  std::uint64_t version = 0;  // model version (kSwapPublish/kReload), else 0
};

class AlertLog {
 public:
  explicit AlertLog(std::size_t capacity);

  /// Record one alert; O(1), allocation-free, oldest-overwrite once full.
  void emit(AlertKind kind, double ts, std::uint64_t count, std::uint32_t shard = 0,
            std::uint64_t version = 0);

  std::uint64_t emitted() const;                 // records ever emitted
  std::uint64_t dropped() const;                 // overwritten by ring wrap
  std::uint64_t total(AlertKind kind) const;     // sum of counts, survives wrap
  std::size_t capacity() const { return cap_; }

  /// Oldest-retained-first copy of the ring (for tests and JSON-ish dumps).
  void snapshot(std::vector<AlertRecord>& out) const;

  /// Line-delimited text, oldest retained first:
  ///   seq=12 ts=3.25 kind=swap_publish shard=0 count=1 version=2
  /// ts prints %.17g (bit-exact round-trip, same policy as trace_to_csv);
  /// byte-deterministic for a deterministic run.
  std::string render() const;

 private:
  std::size_t cap_;
  mutable std::mutex mu_;
  std::vector<AlertRecord> ring_;  // sized cap_ up front
  std::size_t next_ = 0;           // ring write cursor
  std::uint64_t emitted_ = 0;
  std::uint64_t totals_[kAlertKinds] = {};
};

}  // namespace iguard::daemon
