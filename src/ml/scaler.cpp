#include "ml/scaler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace iguard::ml {

void StandardScaler::fit(const Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("StandardScaler: empty matrix");
  const std::size_t n = x.rows(), m = x.cols();
  mean_.assign(m, 0.0);
  std_.assign(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    auto r = x.row(i);
    for (std::size_t j = 0; j < m; ++j) mean_[j] += r[j];
  }
  for (auto& v : mean_) v /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto r = x.row(i);
    for (std::size_t j = 0; j < m; ++j) {
      const double d = r[j] - mean_[j];
      std_[j] += d * d;
    }
  }
  for (auto& v : std_) v = std::sqrt(v / static_cast<double>(n));
}

void StandardScaler::transform_row(std::span<const double> in, std::span<double> out) const {
  for (std::size_t j = 0; j < in.size(); ++j) {
    out[j] = std_[j] > 0.0 ? (in[j] - mean_[j]) / std_[j] : 0.0;
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  if (x.cols() != mean_.size()) throw std::invalid_argument("StandardScaler: width mismatch");
  Matrix z(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) transform_row(x.row(i), z.row(i));
  return z;
}

Matrix StandardScaler::inverse_transform(const Matrix& z) const {
  if (z.cols() != mean_.size()) throw std::invalid_argument("StandardScaler: width mismatch");
  Matrix x(z.rows(), z.cols());
  for (std::size_t i = 0; i < z.rows(); ++i) {
    auto zi = z.row(i);
    auto xi = x.row(i);
    for (std::size_t j = 0; j < z.cols(); ++j) xi[j] = zi[j] * std_[j] + mean_[j];
  }
  return x;
}

void MinMaxScaler::fit(const Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("MinMaxScaler: empty matrix");
  const std::size_t m = x.cols();
  min_.assign(m, std::numeric_limits<double>::infinity());
  max_.assign(m, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto r = x.row(i);
    for (std::size_t j = 0; j < m; ++j) {
      min_[j] = std::min(min_[j], r[j]);
      max_[j] = std::max(max_[j], r[j]);
    }
  }
}

void MinMaxScaler::transform_row(std::span<const double> in, std::span<double> out) const {
  for (std::size_t j = 0; j < in.size(); ++j) {
    const double span = max_[j] - min_[j];
    const double z = span > 0.0 ? (in[j] - min_[j]) / span : 0.0;
    out[j] = std::clamp(z, 0.0, 1.0);
  }
}

Matrix MinMaxScaler::transform(const Matrix& x) const {
  if (x.cols() != min_.size()) throw std::invalid_argument("MinMaxScaler: width mismatch");
  Matrix z(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) transform_row(x.row(i), z.row(i));
  return z;
}

}  // namespace iguard::ml
