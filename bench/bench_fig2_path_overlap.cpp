// Reproduces Fig. 2 (+ Fig. 7): the motivation study. For every attack, fit
// a conventional iForest on benign training flows and plot the distribution
// of *expected path lengths* E[h(x)] for benign vs malicious test samples.
// The paper's claim: the two distributions overlap heavily, so path length
// is not an adequate decision statistic. We print a text histogram per
// attack plus the histogram-intersection overlap coefficient (1 = total
// overlap) and save the raw series to CSV for plotting.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <vector>

#include "eval/report.hpp"
#include "harness/cpu_lab.hpp"

using namespace iguard;

namespace {

constexpr int kBins = 24;

struct Overlap {
  double coefficient = 0.0;
  std::vector<double> benign_hist, attack_hist;
  double lo = 0.0, hi = 0.0;
};

Overlap histogram_overlap(const std::vector<double>& benign, const std::vector<double>& attack) {
  Overlap o;
  o.lo = std::min(*std::min_element(benign.begin(), benign.end()),
                  *std::min_element(attack.begin(), attack.end()));
  o.hi = std::max(*std::max_element(benign.begin(), benign.end()),
                  *std::max_element(attack.begin(), attack.end()));
  const double width = std::max(1e-9, o.hi - o.lo);
  o.benign_hist.assign(kBins, 0.0);
  o.attack_hist.assign(kBins, 0.0);
  for (double v : benign) {
    const int b = std::min(kBins - 1, static_cast<int>((v - o.lo) / width * kBins));
    o.benign_hist[static_cast<std::size_t>(b)] += 1.0 / static_cast<double>(benign.size());
  }
  for (double v : attack) {
    const int b = std::min(kBins - 1, static_cast<int>((v - o.lo) / width * kBins));
    o.attack_hist[static_cast<std::size_t>(b)] += 1.0 / static_cast<double>(attack.size());
  }
  for (int b = 0; b < kBins; ++b) {
    o.coefficient += std::min(o.benign_hist[static_cast<std::size_t>(b)],
                              o.attack_hist[static_cast<std::size_t>(b)]);
  }
  return o;
}

std::string bar(double frac, int width = 30) {
  return std::string(static_cast<std::size_t>(std::round(frac * width)), '#');
}

}  // namespace

int main() {
  harness::CpuLab lab{harness::CpuLabConfig{}};

  eval::Table summary({"attack", "E[h] benign (mean)", "E[h] attack (mean)", "overlap coeff"});
  std::ofstream csv("fig2_fig7_path_lengths.csv");
  csv << "attack,label,expected_path_length\n";

  for (const auto atk : traffic::all_attacks()) {
    const auto split = lab.make_attack_split(atk);
    std::vector<double> benign_e, attack_e;
    for (std::size_t i = 0; i < split.test_x.rows(); ++i) {
      const double e = lab.iforest().expected_path_length(split.test_x.row(i));
      (split.test_y[i] == 1 ? attack_e : benign_e).push_back(e);
      csv << traffic::attack_name(atk) << "," << split.test_y[i] << "," << e << "\n";
    }
    const Overlap o = histogram_overlap(benign_e, attack_e);

    const double mb =
        std::accumulate(benign_e.begin(), benign_e.end(), 0.0) / static_cast<double>(benign_e.size());
    const double ma =
        std::accumulate(attack_e.begin(), attack_e.end(), 0.0) / static_cast<double>(attack_e.size());
    summary.add_row({traffic::attack_name(atk), eval::Table::num(mb, 2),
                     eval::Table::num(ma, 2), eval::Table::num(o.coefficient, 3)});

    // Text rendition of the Fig. 2 panel for this attack.
    std::cout << "--- " << traffic::attack_name(atk) << " (E[h] in [" << eval::Table::num(o.lo, 2)
              << ", " << eval::Table::num(o.hi, 2) << "])\n";
    for (int b = 0; b < kBins; b += 2) {
      std::cout << "  benign |" << bar(o.benign_hist[static_cast<std::size_t>(b)]) << "\n"
                << "  attack |" << bar(o.attack_hist[static_cast<std::size_t>(b)]) << "\n";
    }
  }

  std::cout << "\n";
  summary.print(std::cout, "Fig. 2 + Fig. 7: expected-path-length overlap (iForest)");
  std::cout << "\nPaper's takeaway: benign and malicious path-length distributions overlap\n"
               "significantly for every attack; a nonzero overlap coefficient across all 15\n"
               "attacks reproduces that motivation.\n";
  return 0;
}
