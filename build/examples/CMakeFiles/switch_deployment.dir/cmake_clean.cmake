file(REMOVE_RECURSE
  "CMakeFiles/switch_deployment.dir/switch_deployment.cpp.o"
  "CMakeFiles/switch_deployment.dir/switch_deployment.cpp.o.d"
  "switch_deployment"
  "switch_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
