#include "core/forest_compile.hpp"

namespace iguard::core {

ml::CompiledForest compile_forest(const std::vector<QuantizedTree>& trees) {
  ml::CompiledForest out;
  for (const auto& t : trees) out.add_tree(t.nodes, t.root);
  return out;
}

ml::CompiledForest compile_forest(const GuidedIsolationForest& forest,
                                  const rules::Quantizer& q) {
  std::vector<QuantizedTree> qtrees;
  qtrees.reserve(forest.trees().size());
  for (const auto& t : forest.trees()) qtrees.push_back(quantize_tree(t, q));
  return compile_forest(qtrees);
}

ml::CompiledForest compile_forest(const ml::IsolationForest& forest,
                                  const rules::Quantizer& q) {
  std::vector<QuantizedTree> qtrees;
  qtrees.reserve(forest.trees().size());
  for (const auto& t : forest.trees()) qtrees.push_back(quantize_tree(t, q));
  return compile_forest(qtrees);
}

std::vector<std::int32_t> quantize_ae_thresholds(const AeEnsemble& teacher) {
  std::vector<std::int32_t> out;
  out.reserve(teacher.size());
  for (std::size_t u = 0; u < teacher.size(); ++u) {
    out.push_back(ml::to_q16(teacher.member_threshold(u)));
  }
  return out;
}

}  // namespace iguard::core
