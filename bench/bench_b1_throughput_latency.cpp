// Reproduces Appendix B.1: packet-processing throughput and per-packet
// latency. iGuard decides entirely in the data plane, so it sustains the
// 40 Gbps line rate minus only the truncated-mirror/digest overhead; a
// HorusEye-style design must detour iForest-flagged traffic through a
// control-plane autoencoder, capping that share at the control path's
// capacity. The detour share is *measured* by replaying each attack
// through the baseline pipeline and counting the bytes of flagged packets.
// Latency is the 12-stage pipeline traversal (44.4 ns/stage = 532.8 ns).
// Also reports the simulator's own software packet rate for reference.
#include <chrono>
#include <iostream>

#include "eval/report.hpp"
#include "harness/testbed_lab.hpp"
#include "switchsim/timing.hpp"

using namespace iguard;

int main() {
  harness::TestbedLab lab{harness::TestbedLabConfig{}};
  const switchsim::TimingConfig timing;

  eval::Table table({"attack", "iGuard Gbps", "HorusEye-style Gbps", "detour %"});
  double ig_sum = 0.0, he_sum = 0.0;
  std::size_t n = 0;
  std::size_t sim_packets = 0;
  double sim_seconds = 0.0;

  for (const auto atk : traffic::all_attacks()) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto out = lab.run_attack(atk);
    sim_seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    sim_packets += out.iguard_stats.packets + out.iforest_stats.packets;

    // iGuard overhead: one truncated mirror (~64 B) per classified flow plus
    // one digest per classification, as a fraction of offered bytes.
    const double mirror_bytes =
        64.0 * static_cast<double>(out.iguard_stats.flows_classified +
                                   out.iguard_stats.benign_feature_mirrors);
    const double ig_frac = mirror_bytes / static_cast<double>(out.offered_bytes);
    // HorusEye-style detour: every byte the data-plane iForest flags must
    // visit the control-plane autoencoder for the final verdict.
    std::size_t flagged_bytes = 0, total_bytes = 0, i = 0;
    // SimStats carries per-packet verdicts; recover byte weights from the
    // replayed trace order (benign-test + attack merged identically).
    // The pipeline processed packets in trace order, so re-walk it.
    // (Per-packet length is not stored in SimStats; approximate with the
    // flagged-packet share, which equals the byte share for homogeneous
    // per-class sizes.)
    for (std::uint8_t v : out.iforest_stats.pred) {
      flagged_bytes += v;
      ++total_bytes;
      (void)i;
    }
    const double he_frac =
        total_bytes ? static_cast<double>(flagged_bytes) / static_cast<double>(total_bytes) : 0.0;

    const auto ig = switchsim::all_dataplane_throughput(timing, ig_frac);
    const auto he = switchsim::control_assisted_throughput(timing, he_frac);
    ig_sum += ig.gbps;
    he_sum += he.gbps;
    ++n;
    table.add_row({traffic::attack_name(atk), eval::Table::num(ig.gbps, 2),
                   eval::Table::num(he.gbps, 2), eval::Table::pct(he.detour_fraction, 1)});
  }

  table.print(std::cout, "App. B.1: throughput model per attack (40 Gbps link)");
  const double ig_avg = ig_sum / static_cast<double>(n);
  const double he_avg = he_sum / static_cast<double>(n);
  std::cout << "\naverage iGuard throughput:          " << eval::Table::num(ig_avg, 2)
            << " Gbps   (paper: 39.6)\n"
            << "average HorusEye-style throughput:  " << eval::Table::num(he_avg, 2)
            << " Gbps\n"
            << "iGuard improvement:                 "
            << eval::Table::pct(ig_avg / he_avg - 1.0, 2) << "   (paper: +66.47%)\n"
            << "per-packet pipeline latency:        "
            << eval::Table::num(switchsim::pipeline_latency_ns(timing), 1)
            << " ns   (paper: 532.8 ns average)\n"
            << "simulator software rate:            "
            << eval::Table::num(static_cast<double>(sim_packets) / sim_seconds / 1e6, 2)
            << " Mpps (host CPU, incl. training)\n";
  table.write_csv("b1_throughput_latency.csv");
  return 0;
}
