// Behavioural model of iGuard's data plane (Fig. 4): per packet, the
// pipeline consults the blacklist, the double-hashed flow storage, and the
// whitelist rule tables, and takes one of the six execution paths the paper
// colour-codes. The controller is asynchronous and event-clocked (see
// faults.hpp): digests enter a bounded channel stamped with the packet's
// timestamp, installs land at digest_ts + control_latency, and a seeded
// fault injector can degrade the channel. The default ControlPlaneConfig
// (zero latency, no faults) reproduces the old lockstep model bit for bit.
//
//   red    — 5-tuple blacklisted: drop immediately.
//   brown  — tracked flow, packets 1..n-1, no timeout: update registers,
//            verdict from the PL (early-packet) whitelist.
//   blue   — n-th packet or idle timeout: finalise FL features, match the
//            FL whitelist, store the flow label, digest to the controller,
//            clear feature registers, mirror to loopback.
//   orange — both hash ways occupied by other flows: if the resident is
//            already classified, evict and re-initialise with this packet;
//            either way this packet gets a PL verdict.
//   purple — flow label already 0/1: early per-packet decision.
//   green  — the loopback-mirrored copy (simulated synchronously when blue
//            or orange mirror; counted so path statistics match Fig. 4).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/whitelist.hpp"
#include "obs/metrics.hpp"
#include "rules/quantize.hpp"
#include "switchsim/faults.hpp"
#include "switchsim/registers.hpp"
#include "switchsim/swap_loop.hpp"
#include "switchsim/tables.hpp"

namespace iguard::switchsim {

/// Rule tables + quantisers a trained model deploys onto the switch. Each
/// whitelist is a per-tree table set with a match-count vote (how forest
/// models fit RMT hardware; see core::VoteWhitelist).
struct DeployedModel {
  const core::VoteWhitelist* fl_tables = nullptr;
  const rules::Quantizer* fl_quantizer = nullptr;  // over the 13 FL features
  const core::VoteWhitelist* pl_tables = nullptr;  // optional early-packet rules
  const rules::Quantizer* pl_quantizer = nullptr;
  /// Optional pre-compiled interval-bitmap engines for the two whitelists.
  /// Compilation is a control-plane operation (like TCAM programming): doing
  /// it once here and sharing the read-only result lets sharded replay spin
  /// up K pipelines without K redundant compilations. When null and the
  /// match engine is kCompiled, each Pipeline compiles its own copy.
  const core::CompiledVoteWhitelist* fl_compiled = nullptr;
  const core::CompiledVoteWhitelist* pl_compiled = nullptr;
};

/// Whitelist lookup strategy. Both are bit-identical (the property tests
/// assert so); kCompiled is the interval-bitmap engine of
/// rules/compiled_table.hpp — O(fields log rules) per lookup and
/// allocation-free, which is what lets replay run at line rate.
enum class MatchEngine { kLinear, kCompiled };

struct PipelineConfig {
  std::size_t packet_threshold_n = 32;  // the paper's n
  double idle_timeout_delta = 10.0;     // the paper's delta, seconds
  std::size_t flow_slots = 4096;        // per hash table
  std::size_t blacklist_capacity = 4096;
  EvictionPolicy eviction = EvictionPolicy::kFifo;
  MatchEngine match_engine = MatchEngine::kCompiled;
  /// Record per-packet pred/truth vectors in SimStats. The confusion
  /// counters (tp/fp/tn/fn) accumulate either way; turning this off keeps
  /// a 100M-packet replay from holding ~200 MB of per-packet labels.
  bool record_labels = true;
  /// Packets staged per batch by run()/process_batch(). 0 or 1 keeps the
  /// scalar per-packet path (the reference). Larger values precompute each
  /// batch's PL verdicts up front — columnar quantisation plus one batched
  /// whitelist vote per batch instead of per-packet scalar lookups — then
  /// feed the sequential per-packet state machine the precomputed hints.
  /// Verdicts are bit-identical at any batch size (the PL verdict is a pure
  /// function of the packet and the bound model; a mid-batch model swap
  /// invalidates and recomputes the remaining hints). Staging buffers are
  /// sized once, so the steady state allocates nothing per packet.
  std::size_t batch_size = 0;
  /// Control-channel model; defaults are lockstep-equivalent (zero install
  /// latency, unbounded channel, every fault disabled).
  ControlPlaneConfig control{};
  /// Optional observability sink (DESIGN.md §4d). When set, the pipeline
  /// registers per-path packet counters, per-path process() latency
  /// histograms (under "timing."), flow-store/blacklist occupancy gauges,
  /// and control-plane instruments — all allocation-free on the hot path.
  /// The caller owns the registry; it must outlive the pipeline.
  obs::Registry* metrics = nullptr;
  /// Namespace prefix for this pipeline's instruments; sharded replay
  /// rewrites it per shard ("pipeline.shard3") so concurrent pipelines
  /// never share an instrument and non-timing keys stay deterministic.
  std::string metrics_prefix = "pipeline";
  /// Adaptive model-swap loop (swap_loop.hpp). Disabled by default; when
  /// enabled the deployed model is snapshotted into version 1 of a
  /// core::ModelHandle, benign FL mirrors are delivered to the loop through
  /// the control channel, and published versions are picked up hitlessly
  /// with one pin() per packet.
  SwapConfig swap{};
};

enum class Path : std::size_t { kRed = 0, kBrown, kBlue, kOrange, kPurple, kGreen };

struct SimStats {
  /// Execution path taken by each packet; sums to `packets` exactly (the
  /// green loopback mirror is a copy of a blue/orange packet, so it is
  /// tracked in `green_mirrors` instead of here and path_count[kGreen]
  /// stays 0).
  std::array<std::size_t, 6> path_count{};
  /// Loopback mirror copies generated by blue finalisations and orange
  /// slot reclaims (Fig. 4's green path).
  std::size_t green_mirrors = 0;
  std::size_t packets = 0;
  std::size_t dropped = 0;
  std::size_t blacklist_hits = 0;
  std::size_t collisions = 0;
  std::size_t flows_classified = 0;
  std::size_t benign_feature_mirrors = 0;  // egress mirror for rule updates
  /// Model-swap accounting (swap_loop.hpp); all-zero when the loop is off.
  SwapStats swap;
  /// Control-plane degradation accounting (faults.hpp). Channel-side
  /// counters are copied from the controller at end of run(); the
  /// leaked_packets field accumulates per packet during process().
  FaultStats faults;
  /// Per-packet confusion counts (verdict vs ground truth, malicious = 1),
  /// always accumulated — the allocation-free alternative to pred/truth for
  /// benches that only need the confusion matrix.
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;
  // Per-packet verdict (1 = dropped/malicious) and ground truth, for the
  // paper's per-packet detection metrics. Populated only when
  // PipelineConfig::record_labels is on.
  std::vector<std::uint8_t> pred;
  std::vector<std::uint8_t> truth;

  std::size_t path(Path p) const { return path_count[static_cast<std::size_t>(p)]; }

  /// Member-wise equality — what the fleet N=1 parity gate and the
  /// determinism property tests compare (pred/truth included).
  bool operator==(const SimStats&) const = default;
};

class Pipeline {
 public:
  Pipeline(const PipelineConfig& cfg, const DeployedModel& model);

  /// Process one packet; returns the verdict (1 = drop as malicious). The
  /// controller's event clock is advanced to p.ts first, so installs due by
  /// then are visible to this packet's blacklist lookup.
  int process(const traffic::Packet& p, SimStats& stats);

  /// Process a contiguous batch: PL verdicts for the whole span are
  /// precomputed through the columnar quantizer and the batched whitelist
  /// vote, then each packet runs the normal sequential state machine with
  /// its hint. Bit-identical to process() in a loop (including across model
  /// swaps mid-batch); allocation-free once the staging buffers have grown
  /// to the batch size.
  void process_batch(std::span<const traffic::Packet> pkts, SimStats& stats);

  /// Replay a whole trace (in cfg.batch_size chunks when > 1); drains the
  /// control channel at the end so the controller counters cover every
  /// digest the trace produced.
  SimStats run(const traffic::Trace& trace);

  /// End-of-stream epilogue for callers that feed packets incrementally
  /// (the serving daemon) instead of through run(): drain the control
  /// plane, make any pending model publish live, rebind the final bundle,
  /// and fold the controller/swap accounting into `stats` (preserving the
  /// per-packet leaked_packets the caller accumulated). run() itself ends
  /// with exactly this call.
  void finish_stream(SimStats& stats);

  /// Operator-triggered model rebuild+publish (config reload): stages the
  /// next bundle version through the hitless swap path at event time
  /// `ts_s`. Returns false when the swap loop is disabled.
  bool request_model_publish(double ts_s);

  /// Drain all in-flight control-plane work (see Controller::flush).
  void flush_control_plane() { controller_.flush(); }

  const Controller& controller() const { return controller_; }
  const BlacklistTable& blacklist() const { return blacklist_; }
  const FlowStore& flow_store() const { return store_; }
  /// Null unless PipelineConfig::swap.enabled.
  const SwapLoop* swap_loop() const { return swap_.get(); }

 private:
  int classify_pl(const traffic::Packet& p) const;
  /// process() with an optional precomputed PL verdict (-1 = none). The hint
  /// is trusted only while hints_stale_ is false: a swap rebind inside this
  /// very call marks the batch's hints stale and falls back to the scalar
  /// lookup, so a packet is never classified by a model it isn't bound to.
  int process_hinted(const traffic::Packet& p, SimStats& stats, int pl_hint);
  /// Fill batch_hints_[from..) with classify_pl of each packet, evaluated
  /// against the currently bound model via the columnar/batched kernels.
  void compute_pl_hints(std::span<const traffic::Packet> pkts, std::size_t from);
  void finalize_flow(const traffic::Packet& p, std::uint64_t flow_key, IntFlowState& st,
                     SimStats& stats);
  /// Re-target the model/engine pointers at a newly pinned bundle version.
  void bind_bundle(const core::ModelBundle* b);

  /// Handles into PipelineConfig::metrics; all default-inactive (no-op)
  /// when no registry is attached. Registered once at construction.
  struct Obs {
    bool enabled = false;
    std::array<obs::Counter, 6> path_packets;     // per Fig. 4 path
    std::array<obs::Histogram, 6> path_ns;        // timing.<prefix>.process_ns.*
    obs::Gauge flow_occupancy;                    // slots claimed so far
    obs::Gauge blacklist_occupancy;
    obs::Counter blacklist_evictions;
    obs::Counter leaked_packets;
  };

  PipelineConfig cfg_;
  DeployedModel model_;
  /// Interval-bitmap engines used when cfg_.match_engine == kCompiled. The
  /// engine pointers refer either to the model's shared pre-compiled tables
  /// or to the locally-owned compilations below (built at construction when
  /// the model does not share any).
  core::CompiledVoteWhitelist fl_owned_, pl_owned_;
  const core::CompiledVoteWhitelist* fl_engine_ = nullptr;
  const core::CompiledVoteWhitelist* pl_engine_ = nullptr;
  FlowStore store_;
  BlacklistTable blacklist_;
  Controller controller_;
  /// Present iff cfg_.swap.enabled; owns the versioned model handle. The
  /// currently bound bundle is tracked so process() rebinds pointers only
  /// when a pin returns a new version.
  std::unique_ptr<SwapLoop> swap_;
  const core::ModelBundle* bound_ = nullptr;
  /// Batch staging (cfg_.batch_size > 1): row-major PL feature rows, their
  /// columnar-quantised keys, and the per-packet verdict hints. Grown to the
  /// batch size on first use, reused forever after — zero steady-state
  /// allocation on the batched path.
  std::vector<double> batch_rows_;
  std::vector<std::uint32_t> batch_keys_;
  std::vector<int> batch_hints_;
  /// Set by bind_bundle: precomputed hints describe a retired model version
  /// and must be recomputed before the next packet consumes one.
  bool hints_stale_ = false;
  /// Bi-hash keys of flows the data plane has classified malicious, with
  /// which leaked packets (admitted after classification) are detected.
  std::unordered_set<std::uint64_t> malicious_classified_;
  Obs obs_;
  std::size_t slots_claimed_ = 0;      // incremental flow-store occupancy
  std::size_t last_evictions_ = 0;     // blacklist eviction delta tracking
};

}  // namespace iguard::switchsim
