// iguardd — serve a packet stream through the iGuard pipeline as a
// long-running process (DESIGN.md §4i).
//
//   iguardd --trace traces/campus.csv --loop 0 --metrics-port 9901
//   iguardd --config iguardd.conf
//   generator | iguardd --stdin --metrics-port 0
//   iguardd --gen-trace /tmp/sample.csv        # write a demo trace and exit
//
// Endpoints (127.0.0.1 only): GET /metrics (Prometheus text), GET /alerts
// (line-delimited alert log), GET /healthz. SIGTERM/SIGINT wind the serving
// loop down cleanly (gate flushed, ring drained, conservation audited);
// SIGHUP re-reads --config and hot-applies it through the hitless reload
// path. Exit status is 0 only when the end-to-end conservation audit holds.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "daemon/config_file.hpp"
#include "daemon/daemon.hpp"
#include "daemon/http.hpp"
#include "ml/rng.hpp"
#include "obs/metrics.hpp"

using namespace iguard;

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_reload = 0;

void on_stop_signal(int) { g_stop = 1; }
void on_hup_signal(int) { g_reload = 1; }

/// Mixed benign/malicious demo workload (the ingest benchmark's shape).
traffic::Trace make_demo_trace(std::size_t flows, std::size_t packets_per_flow) {
  ml::Rng rng(0x1A9E57ull);
  traffic::Trace t;
  for (std::size_t f = 0; f < flows; ++f) {
    const bool mal = f % 3 == 0;
    traffic::FiveTuple ft{0x0A000000u + static_cast<std::uint32_t>(f),
                          0x0B000000u + static_cast<std::uint32_t>(f % 13),
                          static_cast<std::uint16_t>(1024 + f % 40000), 443,
                          traffic::kProtoTcp};
    for (std::size_t i = 0; i < packets_per_flow; ++i) {
      traffic::Packet p;
      p.ts = 0.0008 * static_cast<double>(f) + 0.05 * static_cast<double>(i) +
             rng.uniform(0.0, 0.0005);
      p.ft = i % 2 == 0 ? ft : ft.reversed();
      p.length = mal ? static_cast<std::uint16_t>(1200 + rng.index(200))
                     : static_cast<std::uint16_t>(80 + rng.index(60));
      p.malicious = mal;
      t.packets.push_back(p);
    }
  }
  t.sort_by_time();
  return t;
}

/// Self-contained bootstrap model: a one-tree whitelist that flags large
/// packets, quantised over the 13 switch FL features. Owns its storage so
/// the DeployedModel's borrowed pointers stay valid for the daemon's life.
struct BootstrapModel {
  rules::Quantizer quant{16};
  core::VoteWhitelist wl;
  switchsim::DeployedModel dm;

  BootstrapModel() {
    ml::Matrix fake(2, switchsim::kSwitchFlFeatures);
    for (std::size_t j = 0; j < switchsim::kSwitchFlFeatures; ++j) {
      fake(0, j) = 0.0;
      fake(1, j) = 1e6;
    }
    quant.fit(fake);
    wl.tree_count = 1;
    std::vector<rules::FieldRange> box(switchsim::kSwitchFlFeatures, {0, quant.domain_max()});
    box[5] = {0, quant.quantize_value(5, 600.0)};
    wl.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});
    dm.fl_tables = &wl;
    dm.fl_quantizer = &quant;
  }
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--config <path>] [--trace <path>] [--stdin] [--loop N] [--follow]\n"
               "       [--shards K] [--metrics-port P] [--synchronous] [--gen-trace <path>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string trace_path;
  std::string gen_path;
  bool use_stdin = false;
  bool synchronous = false;
  bool have_loop = false, have_follow = false, have_shards = false;
  std::size_t loop_n = 1, shards_n = 1;
  bool follow_flag = false;
  int metrics_port = -1;  // -1 = no endpoint

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--config") {
      config_path = need("--config");
    } else if (a == "--trace") {
      trace_path = need("--trace");
    } else if (a == "--stdin") {
      use_stdin = true;
    } else if (a == "--loop") {
      loop_n = static_cast<std::size_t>(std::strtoull(need("--loop"), nullptr, 10));
      have_loop = true;
    } else if (a == "--follow") {
      follow_flag = true;
      have_follow = true;
    } else if (a == "--shards") {
      shards_n = static_cast<std::size_t>(std::strtoull(need("--shards"), nullptr, 10));
      have_shards = true;
    } else if (a == "--metrics-port") {
      metrics_port = static_cast<int>(std::strtol(need("--metrics-port"), nullptr, 10));
    } else if (a == "--synchronous") {
      synchronous = true;
    } else if (a == "--gen-trace") {
      gen_path = need("--gen-trace");
    } else {
      return usage(argv[0]);
    }
  }

  if (!gen_path.empty()) {
    const traffic::Trace t = make_demo_trace(120, 8);
    std::ofstream out(gen_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write " << gen_path << "\n";
      return 1;
    }
    out << io::trace_to_csv(t);
    std::cout << "wrote " << t.size() << " packets to " << gen_path << "\n";
    return 0;
  }

  obs::Registry metrics;
  daemon::DaemonConfig cfg;
  cfg.metrics = &metrics;
  // Serving defaults: a small flow threshold so short demo traces exercise
  // the FL path, and the hitless swap loop armed so SIGHUP reloads publish.
  cfg.pipeline.packet_threshold_n = 4;
  cfg.pipeline.swap.enabled = true;
  cfg.pipeline.swap.publish_after_extensions = 0;

  if (!config_path.empty()) {
    if (const std::string err = daemon::load_config_file(config_path, cfg); !err.empty()) {
      std::cerr << "config " << config_path << ": " << err << "\n";
      return 2;
    }
  }
  // Flags override the file.
  if (!trace_path.empty()) {
    cfg.source.kind = daemon::SourceConfig::Kind::kFile;
    cfg.source.path = trace_path;
  }
  if (use_stdin) {
    cfg.source.kind = daemon::SourceConfig::Kind::kFd;
    cfg.source.fd = 0;
  }
  if (have_loop) cfg.source.loops = loop_n;
  if (have_follow) cfg.source.follow = follow_flag;
  if (have_shards) cfg.shards = shards_n;

  if (const std::string err = daemon::validate_config(cfg); !err.empty()) {
    std::cerr << "config: " << err << "\n";
    return 2;
  }

  std::signal(SIGTERM, on_stop_signal);
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGHUP, on_hup_signal);
  // A scraper that disconnects mid-response (or a broken stdout pipe) must
  // surface as EPIPE on the write, not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  BootstrapModel model;
  daemon::Daemon d(cfg, model.dm);

  daemon::HttpServer http;
  if (metrics_port >= 0) {
    const std::string err =
        http.start(static_cast<std::uint16_t>(metrics_port), [&](const std::string& path) {
          daemon::HttpResponse r;
          if (path == "/metrics") {
            r.body = d.metrics_text();
          } else if (path == "/alerts") {
            r.body = d.alerts().render();
          } else if (path == "/healthz") {
            r.body = "ok\n";
          } else {
            r.status = 404;
            r.body = "not found\n";
          }
          return r;
        });
    if (!err.empty()) {
      std::cerr << "metrics endpoint: " << err << "\n";
      return 1;
    }
    std::cout << "metrics on http://127.0.0.1:" << http.port() << "/metrics\n" << std::flush;
  }

  std::atomic<bool> serving_done{false};
  std::thread server([&] {
    if (synchronous) {
      d.run_synchronous();
    } else {
      d.run();
    }
    serving_done.store(true, std::memory_order_release);
  });

  // Supervisor: translate process signals into daemon requests. With an
  // endpoint up, a finished finite source keeps the process alive serving
  // /metrics over the completed run until a stop signal arrives.
  for (;;) {
    if (g_stop != 0) {
      d.request_stop();
      break;
    }
    if (g_reload != 0) {
      g_reload = 0;
      if (config_path.empty()) {
        std::cerr << "SIGHUP ignored: no --config to re-read\n";
      } else {
        daemon::DaemonConfig next = d.config_snapshot();
        next.metrics = cfg.metrics;
        std::string err = daemon::load_config_file(config_path, next);
        if (err.empty()) err = d.request_reload(next);
        if (err.empty()) {
          std::cout << "reload accepted\n" << std::flush;
        } else {
          std::cerr << "reload rejected: " << err << "\n";
        }
      }
    }
    if (serving_done.load(std::memory_order_acquire) && metrics_port < 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  d.request_stop();
  server.join();
  http.stop();

  const daemon::DaemonStats s = d.stats();
  const std::string audit = daemon::audit_daemon_conservation(s);
  std::cout << "packets: offered=" << s.ingest.offered << " accepted=" << s.ingest.accepted
            << " quarantined=" << s.ingest.quarantined << " shed=" << s.gate.shed
            << " processed=" << s.sim.packets << " loops=" << s.loops_completed
            << " reloads=" << s.reloads_applied << "\n";
  std::cout << "alerts: emitted=" << d.alerts().emitted() << " installs="
            << d.alerts().total(daemon::AlertKind::kBlacklistInstall)
            << " publishes=" << d.alerts().total(daemon::AlertKind::kSwapPublish) << "\n";
  if (!s.container_ok) std::cout << "container error: " << s.container_error << "\n";
  if (!audit.empty()) {
    std::cerr << "conservation audit FAILED: " << audit << "\n";
    return 1;
  }
  std::cout << "conservation audit: ok\n";
  return 0;
}
