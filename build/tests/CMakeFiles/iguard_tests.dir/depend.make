# Empty dependencies file for iguard_tests.
# This may be replaced when dependencies are built.
