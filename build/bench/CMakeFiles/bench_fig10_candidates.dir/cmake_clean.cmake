file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_candidates.dir/bench_fig10_candidates.cpp.o"
  "CMakeFiles/bench_fig10_candidates.dir/bench_fig10_candidates.cpp.o.d"
  "bench_fig10_candidates"
  "bench_fig10_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
