#include "core/whitelist.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

namespace iguard::core {

namespace {

// Shared recursive machinery: sweep the product of quantised trees over the
// integer domain, carrying an aggregated payload, with early decisions.
struct Sweep {
  const std::vector<QuantizedTree>& trees;
  std::uint32_t domain_max;
  std::size_t max_regions;
  std::size_t max_steps;
  std::size_t steps = 0;

  // decide(acc, next_tree): label if already determined, else -1.
  std::function<int(double, std::size_t)> decide;
  // finalize(acc): label once all trees are consumed.
  std::function<int(double)> finalize;

  std::size_t regions_total = 0;
  std::size_t regions_benign = 0;
  std::vector<rules::RangeRule> benign;

  void emit(const std::vector<rules::FieldRange>& box, int label) {
    ++regions_total;
    if (regions_total > max_regions) {
      throw std::runtime_error("whitelist compilation: region explosion");
    }
    if (label == 0) {
      ++regions_benign;
      benign.push_back({box, 0, 0});
    }
  }

  // Advance to tree `ti` with partial aggregate `acc`.
  void next_tree(std::size_t ti, std::vector<rules::FieldRange>& box, double acc) {
    const int decided = decide(acc, ti);
    if (decided >= 0) {
      emit(box, decided);
      return;
    }
    if (ti == trees.size()) {
      emit(box, finalize(acc));
      return;
    }
    descend(ti, trees[ti].root, box, acc);
  }

  // Descend one tree, splitting the box at internal nodes where needed.
  void descend(std::size_t ti, int node, std::vector<rules::FieldRange>& box, double acc) {
    if (++steps > max_steps) {
      throw std::runtime_error("whitelist compilation: work cap exceeded");
    }
    const auto& nd = trees[ti].nodes[static_cast<std::size_t>(node)];
    if (nd.feature < 0) {
      next_tree(ti + 1, box, acc + nd.payload);
      return;
    }
    const auto f = static_cast<std::size_t>(nd.feature);
    const rules::FieldRange saved = box[f];
    // Left: key[f] < level  =>  [lo, level-1].
    if (nd.level > saved.lo) {
      box[f] = {saved.lo, std::min(saved.hi, nd.level - 1)};
      if (!box[f].empty()) descend(ti, nd.left, box, acc);
    }
    // Right: key[f] >= level  =>  [level, hi].
    if (saved.hi >= nd.level) {
      box[f] = {std::max(saved.lo, nd.level), saved.hi};
      if (!box[f].empty()) descend(ti, nd.right, box, acc);
    }
    box[f] = saved;
  }
};

// Clip benign rules to the configured support box; drops emptied rules.
void apply_clip(std::vector<rules::RangeRule>& rules, const WhitelistConfig& cfg) {
  if (cfg.clip.empty()) return;
  std::vector<rules::RangeRule> kept;
  for (auto& r : rules) {
    bool alive = true;
    for (std::size_t j = 0; j < r.fields.size() && alive; ++j) {
      r.fields[j].lo = std::max(r.fields[j].lo, cfg.clip[j].lo);
      r.fields[j].hi = std::min(r.fields[j].hi, cfg.clip[j].hi);
      alive = !r.fields[j].empty();
    }
    if (alive) kept.push_back(std::move(r));
  }
  rules = std::move(kept);
}

WhitelistResult run_sweep(Sweep& sweep, std::size_t field_count,
                          const WhitelistConfig& cfg) {
  std::vector<rules::FieldRange> full(field_count, {0, sweep.domain_max});
  sweep.next_tree(0, full, 0.0);

  WhitelistResult out;
  out.regions_total = sweep.regions_total;
  out.regions_benign = sweep.regions_benign;
  apply_clip(sweep.benign, cfg);
  out.rules_before_merge = sweep.benign.size();
  out.rules = cfg.merge_adjacent ? rules::merge_rules(std::move(sweep.benign))
                                 : std::move(sweep.benign);
  return out;
}

template <typename Node>
int quantize_nodes_impl(const std::vector<Node>& src, int idx, const rules::Quantizer& q,
                        std::vector<QuantizedNode>& dst, double payload_of_leaf,
                        const std::function<double(const Node&)>& payload) {
  const auto& n = src[static_cast<std::size_t>(idx)];
  const int self = static_cast<int>(dst.size());
  dst.push_back({});
  if (n.feature < 0) {
    dst[static_cast<std::size_t>(self)].payload = payload ? payload(n) : payload_of_leaf;
    return self;
  }
  dst[static_cast<std::size_t>(self)].feature = n.feature;
  dst[static_cast<std::size_t>(self)].level =
      q.quantize_value(static_cast<std::size_t>(n.feature), n.threshold);
  const int l = quantize_nodes_impl(src, n.left, q, dst, payload_of_leaf, payload);
  const int r = quantize_nodes_impl(src, n.right, q, dst, payload_of_leaf, payload);
  dst[static_cast<std::size_t>(self)].left = l;
  dst[static_cast<std::size_t>(self)].right = r;
  return self;
}

}  // namespace

double QuantizedTree::payload_at(std::span<const std::uint32_t> key) const {
  int i = root;
  while (nodes[static_cast<std::size_t>(i)].feature >= 0) {
    const auto& n = nodes[static_cast<std::size_t>(i)];
    i = key[static_cast<std::size_t>(n.feature)] < n.level ? n.left : n.right;
  }
  return nodes[static_cast<std::size_t>(i)].payload;
}

double QuantizedTree::min_payload() const {
  double v = std::numeric_limits<double>::infinity();
  for (const auto& n : nodes)
    if (n.feature < 0) v = std::min(v, n.payload);
  return v;
}

double QuantizedTree::max_payload() const {
  double v = -std::numeric_limits<double>::infinity();
  for (const auto& n : nodes)
    if (n.feature < 0) v = std::max(v, n.payload);
  return v;
}

namespace {

int make_qleaf(std::vector<QuantizedNode>& dst, double payload) {
  const int self = static_cast<int>(dst.size());
  dst.push_back({});
  dst[static_cast<std::size_t>(self)].payload = payload;
  return self;
}

// A benign guided leaf is a bounded support hypercube inside its split
// cell: points in the cell but outside the box are malicious. Encode the
// box as a chain of guard splits so the generic region sweep handles it.
int quantize_guided_node(const std::vector<GuidedNode>& src, int idx,
                         const rules::Quantizer& q, std::vector<QuantizedNode>& dst) {
  const auto& n = src[static_cast<std::size_t>(idx)];
  if (n.feature >= 0) {
    const int self = static_cast<int>(dst.size());
    dst.push_back({});
    dst[static_cast<std::size_t>(self)].feature = n.feature;
    dst[static_cast<std::size_t>(self)].level =
        q.quantize_value(static_cast<std::size_t>(n.feature), n.threshold);
    const int l = quantize_guided_node(src, n.left, q, dst);
    const int r = quantize_guided_node(src, n.right, q, dst);
    dst[static_cast<std::size_t>(self)].left = l;
    dst[static_cast<std::size_t>(self)].right = r;
    return self;
  }
  if (n.label == 1) return make_qleaf(dst, 1.0);

  struct Guard {
    int feature;
    std::uint32_t level;
    bool malicious_left;  // true: x < level is malicious; false: x >= level
  };
  std::vector<Guard> guards;
  for (std::size_t j = 0; j < n.box_lo.size(); ++j) {
    if (std::isfinite(n.box_lo[j])) {
      const std::uint32_t lo = q.quantize_value(j, n.box_lo[j]);
      if (lo > 0) guards.push_back({static_cast<int>(j), lo, true});
    }
    if (std::isfinite(n.box_hi[j])) {
      const std::uint32_t hi = q.quantize_value(j, n.box_hi[j]);
      if (hi < q.domain_max()) guards.push_back({static_cast<int>(j), hi + 1, false});
    }
  }
  if (guards.empty()) return make_qleaf(dst, 0.0);

  // Build the chain back-to-front: innermost target is the benign leaf.
  int next = make_qleaf(dst, 0.0);
  for (std::size_t g = guards.size(); g-- > 0;) {
    const int mal = make_qleaf(dst, 1.0);
    const int self = static_cast<int>(dst.size());
    dst.push_back({});
    dst[static_cast<std::size_t>(self)].feature = guards[g].feature;
    dst[static_cast<std::size_t>(self)].level = guards[g].level;
    dst[static_cast<std::size_t>(self)].left = guards[g].malicious_left ? mal : next;
    dst[static_cast<std::size_t>(self)].right = guards[g].malicious_left ? next : mal;
    next = self;
  }
  return next;
}

}  // namespace

QuantizedTree quantize_tree(const GuidedTree& tree, const rules::Quantizer& q) {
  QuantizedTree out;
  out.root = quantize_guided_node(tree.nodes, 0, q, out.nodes);
  return out;
}

QuantizedTree quantize_tree(const ml::ITree& tree, const rules::Quantizer& q) {
  QuantizedTree out;
  std::function<double(const ml::ITreeNode&)> payload = [](const ml::ITreeNode& n) {
    return static_cast<double>(n.depth) + ml::average_path_length(n.size);
  };
  quantize_nodes_impl<ml::ITreeNode>(tree.nodes, 0, q, out.nodes, 0.0, payload);
  return out;
}

namespace {

// Quantised benign support boxes of one tree (label-0 leaves only). Leaves
// no training sample reached have no observed benign support — a whitelist
// should not admit them, so they emit no rule (the model's majority vote
// still smooths over the rare benign flow that lands there).
std::vector<std::vector<rules::FieldRange>> benign_boxes(const GuidedTree& tree,
                                                         const rules::Quantizer& q) {
  std::vector<std::vector<rules::FieldRange>> out;
  for (const auto& n : tree.nodes) {
    if (n.feature >= 0 || n.label != 0 || n.train_count < 2) continue;
    std::vector<rules::FieldRange> box(q.field_count());
    for (std::size_t j = 0; j < q.field_count(); ++j) {
      const std::uint32_t lo =
          std::isfinite(n.box_lo[j]) ? q.quantize_value(j, n.box_lo[j]) : 0u;
      const std::uint32_t hi =
          std::isfinite(n.box_hi[j]) ? q.quantize_value(j, n.box_hi[j]) : q.domain_max();
      box[j] = {lo, hi};
    }
    out.push_back(std::move(box));
  }
  return out;
}

// a := a intersect b; returns false if empty.
bool intersect_box(std::vector<rules::FieldRange>& a,
                   const std::vector<rules::FieldRange>& b) {
  for (std::size_t j = 0; j < a.size(); ++j) {
    a[j].lo = std::max(a[j].lo, b[j].lo);
    a[j].hi = std::min(a[j].hi, b[j].hi);
    if (a[j].empty()) return false;
  }
  return true;
}

bool box_contains(const std::vector<rules::FieldRange>& outer,
                  const std::vector<rules::FieldRange>& inner) {
  for (std::size_t j = 0; j < outer.size(); ++j) {
    if (inner[j].lo < outer[j].lo || inner[j].hi > outer[j].hi) return false;
  }
  return true;
}

}  // namespace

WhitelistResult compile_majority(const GuidedIsolationForest& forest,
                                 const rules::Quantizer& q, const WhitelistConfig& cfg) {
  // A tree votes benign exactly when x lies inside one of its benign leaf
  // support boxes, so the forest's benign region is the union, over all
  // majority-sized tree subsets S, of intersections of one benign box per
  // tree in S. Whitelist rules may overlap, so emitting that union directly
  // is exact — no disjoint space partition needed.
  const std::size_t t = forest.trees().size();
  const std::size_t need = t / 2 + 1;  // strict majority
  std::vector<std::vector<std::vector<rules::FieldRange>>> boxes;
  boxes.reserve(t);
  for (const auto& tree : forest.trees()) boxes.push_back(benign_boxes(tree, q));

  WhitelistResult out;
  std::vector<rules::RangeRule> rules;

  // Enumerate tree subsets of exactly `need` members (larger supersets are
  // implied), intersecting incrementally with empty-pruning.
  std::vector<std::size_t> subset;
  auto recurse_boxes = [&](auto&& self, std::size_t depth,
                           std::vector<rules::FieldRange> acc) -> void {
    if (depth == subset.size()) {
      ++out.regions_total;
      ++out.regions_benign;
      if (out.regions_total > cfg.max_regions) {
        throw std::runtime_error("whitelist compilation: region explosion");
      }
      rules.push_back({std::move(acc), 0, 0});
      return;
    }
    for (const auto& b : boxes[subset[depth]]) {
      auto next = acc;
      if (intersect_box(next, b)) self(self, depth + 1, std::move(next));
    }
  };
  auto choose = [&](auto&& self, std::size_t start) -> void {
    if (subset.size() == need) {
      recurse_boxes(recurse_boxes, 0,
                    std::vector<rules::FieldRange>(q.field_count(),
                                                   {0u, q.domain_max()}));
      return;
    }
    for (std::size_t i = start; i < t; ++i) {
      subset.push_back(i);
      self(self, i + 1);
      subset.pop_back();
    }
  };
  if (t > 0) choose(choose, 0);

  apply_clip(rules, cfg);

  // Absorption: drop rules fully contained in another rule.
  std::vector<bool> dead(rules.size(), false);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (dead[i]) continue;
    for (std::size_t j = 0; j < rules.size(); ++j) {
      if (i == j || dead[j]) continue;
      if (box_contains(rules[i].fields, rules[j].fields)) dead[j] = true;
    }
  }
  std::vector<rules::RangeRule> kept;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (!dead[i]) kept.push_back(std::move(rules[i]));
  }
  out.rules_before_merge = kept.size();
  out.rules = cfg.merge_adjacent ? rules::merge_rules(std::move(kept)) : std::move(kept);
  return out;
}

double path_threshold_from_score(double score_threshold, std::size_t psi) {
  const double c = ml::average_path_length(psi);
  return -c * std::log2(std::clamp(score_threshold, 1e-9, 1.0 - 1e-9));
}

WhitelistResult compile_pathlength(const ml::IsolationForest& forest,
                                   const rules::Quantizer& q, const WhitelistConfig& cfg) {
  // Deployable (HorusEye-style) semantics: each leaf votes on its own —
  // malicious iff its path length (depth + c(leaf size)) is below the
  // threshold equivalent of the forest's score threshold — and the forest
  // takes a majority vote. (The exact sum-over-trees statistic is not
  // compilable: its tree product admits no early majority pruning and
  // explodes combinatorially; per-leaf thresholding is what real rule
  // deployments of iForest do, at some accuracy cost.)
  const double e_thr =
      path_threshold_from_score(forest.threshold(), forest.effective_subsample());
  std::vector<QuantizedTree> qtrees;
  qtrees.reserve(forest.trees().size());
  for (const auto& t : forest.trees()) {
    QuantizedTree qt = quantize_tree(t, q);
    for (auto& n : qt.nodes) {
      if (n.feature < 0) n.payload = n.payload < e_thr ? 1.0 : 0.0;
    }
    qtrees.push_back(std::move(qt));
  }
  const double t_count = static_cast<double>(qtrees.size());

  Sweep sweep{qtrees, q.domain_max(), cfg.max_regions, cfg.max_steps, {}, {}};
  sweep.decide = [t_count](double acc, std::size_t done) -> int {
    if (2.0 * acc > t_count) return 1;
    const double remaining = t_count - static_cast<double>(done);
    if (2.0 * (acc + remaining) <= t_count) return 0;
    return -1;
  };
  sweep.finalize = [t_count](double acc) { return 2.0 * acc > t_count ? 1 : 0; };
  return run_sweep(sweep, q.field_count(), cfg);
}

int VoteWhitelist::classify(std::span<const std::uint32_t> key) const {
  std::size_t benign = 0;
  for (const auto& t : tables) benign += t.match(key).has_value() ? 1 : 0;
  // Strict-majority-malicious (ties benign), matching the forest vote.
  return 2 * (tree_count - benign) > tree_count ? 1 : 0;
}

double VoteWhitelist::malicious_vote_fraction(std::span<const std::uint32_t> key) const {
  if (tree_count == 0) return 1.0;
  std::size_t benign = 0;
  for (const auto& t : tables) benign += t.match(key).has_value() ? 1 : 0;
  return static_cast<double>(tree_count - benign) / static_cast<double>(tree_count);
}

CompiledVoteWhitelist::CompiledVoteWhitelist(const VoteWhitelist& wl)
    : tree_count(wl.tree_count) {
  tables.reserve(wl.tables.size());
  for (const auto& t : wl.tables) tables.emplace_back(t);
}

int CompiledVoteWhitelist::classify(std::span<const std::uint32_t> key) const {
  // Benign iff benign votes reach ceil(t/2): 2*(t-b) > t  <=>  b < t/2.
  // The count is monotone, so stop as soon as the verdict is decided —
  // either the majority is reached or the remaining tables cannot reach it.
  const std::size_t need = (tree_count + 1) / 2;
  std::size_t benign = 0;
  std::size_t remaining = tables.size();
  for (const auto& t : tables) {
    --remaining;
    benign += t.matches_any(key) ? 1 : 0;
    if (benign >= need) return 0;
    if (benign + remaining < need) return 1;
  }
  // Only reachable with zero tables (ties benign, matching VoteWhitelist).
  return 2 * (tree_count - benign) > tree_count ? 1 : 0;
}

void CompiledVoteWhitelist::classify_batch(std::span<const std::uint32_t> keys,
                                           std::size_t width, std::span<int> out) const {
  constexpr std::size_t kB = 256;  // stack scratch per block
  const std::size_t n = out.size();
  if (keys.size() < n * width) return;  // malformed: leave out untouched
  if (tree_count == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const std::size_t need = (tree_count + 1) / 2;
  for (std::size_t base = 0; base < n; base += kB) {
    const std::size_t m = std::min(kB, n - base);
    std::uint16_t benign[kB];
    std::uint8_t decided[kB];
    std::uint8_t hit[kB];
    std::fill(benign, benign + m, static_cast<std::uint16_t>(0));
    std::fill(decided, decided + m, static_cast<std::uint8_t>(0));
    std::size_t undecided = m;
    for (std::size_t t = 0; t < tables.size() && undecided > 0; ++t) {
      tables[t].matches_any_batch(keys.subspan(base * width, m * width), width,
                                  std::span<std::uint8_t>(hit, m), decided);
      const std::size_t remaining = tables.size() - t - 1;
      for (std::size_t i = 0; i < m; ++i) {
        if (decided[i] != 0) continue;
        benign[i] = static_cast<std::uint16_t>(benign[i] + hit[i]);
        if (benign[i] >= need) {
          out[base + i] = 0;
          decided[i] = 1;
          --undecided;
        } else if (benign[i] + remaining < need) {
          out[base + i] = 1;
          decided[i] = 1;
          --undecided;
        }
      }
    }
  }
}

double CompiledVoteWhitelist::malicious_vote_fraction(std::span<const std::uint32_t> key) const {
  if (tree_count == 0) return 1.0;
  std::size_t benign = 0;
  for (const auto& t : tables) benign += t.matches_any(key) ? 1 : 0;
  return static_cast<double>(tree_count - benign) / static_cast<double>(tree_count);
}

std::size_t VoteWhitelist::total_rules() const {
  std::size_t n = 0;
  for (const auto& t : tables) n += t.size();
  return n;
}

std::vector<rules::RangeRule> VoteWhitelist::flattened() const {
  std::vector<rules::RangeRule> all;
  for (const auto& t : tables) {
    all.insert(all.end(), t.rules().begin(), t.rules().end());
  }
  return all;
}

namespace {
std::vector<rules::RangeRule> finish_tree_rules(std::vector<rules::RangeRule> rules,
                                                const WhitelistConfig& cfg) {
  apply_clip(rules, cfg);
  return cfg.merge_adjacent ? rules::merge_rules(std::move(rules)) : rules;
}
}  // namespace

VoteWhitelist compile_per_tree(const GuidedIsolationForest& forest,
                               const rules::Quantizer& q, const WhitelistConfig& cfg) {
  VoteWhitelist out;
  out.tree_count = forest.trees().size();
  for (const auto& tree : forest.trees()) {
    std::vector<rules::RangeRule> rules;
    for (auto& box : benign_boxes(tree, q)) rules.push_back({std::move(box), 0, 0});
    out.tables.emplace_back(finish_tree_rules(std::move(rules), cfg));
  }
  return out;
}

VoteWhitelist compile_per_tree(const ml::IsolationForest& forest, const rules::Quantizer& q,
                               const WhitelistConfig& cfg) {
  const double e_thr =
      path_threshold_from_score(forest.threshold(), forest.effective_subsample());
  VoteWhitelist out;
  out.tree_count = forest.trees().size();
  for (const auto& tree : forest.trees()) {
    const QuantizedTree qt = quantize_tree(tree, q);
    // Enumerate this one tree's benign leaf cells.
    std::vector<rules::RangeRule> rules;
    std::vector<rules::FieldRange> box(q.field_count(), {0u, q.domain_max()});
    auto walk = [&](auto&& self, int idx) -> void {
      const auto& n = qt.nodes[static_cast<std::size_t>(idx)];
      if (n.feature < 0) {
        if (n.payload >= e_thr) rules.push_back({box, 0, 0});
        return;
      }
      const auto f = static_cast<std::size_t>(n.feature);
      const rules::FieldRange saved = box[f];
      if (n.level > saved.lo) {
        box[f] = {saved.lo, std::min(saved.hi, n.level - 1)};
        if (!box[f].empty()) self(self, n.left);
      }
      if (saved.hi >= n.level) {
        box[f] = {std::max(saved.lo, n.level), saved.hi};
        if (!box[f].empty()) self(self, n.right);
      }
      box[f] = saved;
    };
    walk(walk, qt.root);
    out.tables.emplace_back(finish_tree_rules(std::move(rules), cfg));
  }
  return out;
}

std::vector<rules::FieldRange> support_clip(const ml::Matrix& data, const rules::Quantizer& q,
                                            double trim) {
  if (data.rows() == 0) return {};
  std::vector<rules::FieldRange> clip(q.field_count(), {0, 0});
  std::vector<double> col(data.rows());
  for (std::size_t j = 0; j < q.field_count(); ++j) {
    for (std::size_t i = 0; i < data.rows(); ++i) col[i] = data(i, j);
    std::sort(col.begin(), col.end());
    const std::size_t k = std::min(
        data.rows() - 1,
        static_cast<std::size_t>(trim * static_cast<double>(data.rows())));
    clip[j] = {q.quantize_value(j, col[k]), q.quantize_value(j, col[col.size() - 1 - k])};
  }
  return clip;
}

int sample_label_majority(const GuidedIsolationForest& forest, const rules::Quantizer& q,
                          const rules::RangeRule& region, ml::Rng& rng) {
  std::vector<double> x(region.fields.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    const auto& f = region.fields[j];
    const std::uint32_t level =
        f.lo + static_cast<std::uint32_t>(rng.index(static_cast<std::size_t>(f.hi - f.lo) + 1));
    x[j] = q.dequantize(j, level);
  }
  return forest.predict(x);
}

}  // namespace iguard::core
