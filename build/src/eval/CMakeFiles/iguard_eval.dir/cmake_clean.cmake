file(REMOVE_RECURSE
  "CMakeFiles/iguard_eval.dir/metrics.cpp.o"
  "CMakeFiles/iguard_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/iguard_eval.dir/protocol.cpp.o"
  "CMakeFiles/iguard_eval.dir/protocol.cpp.o.d"
  "CMakeFiles/iguard_eval.dir/report.cpp.o"
  "CMakeFiles/iguard_eval.dir/report.cpp.o.d"
  "libiguard_eval.a"
  "libiguard_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iguard_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
