
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/autoencoder.cpp" "src/ml/CMakeFiles/iguard_ml.dir/autoencoder.cpp.o" "gcc" "src/ml/CMakeFiles/iguard_ml.dir/autoencoder.cpp.o.d"
  "/root/repo/src/ml/iforest.cpp" "src/ml/CMakeFiles/iguard_ml.dir/iforest.cpp.o" "gcc" "src/ml/CMakeFiles/iguard_ml.dir/iforest.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/iguard_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/iguard_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/nn.cpp" "src/ml/CMakeFiles/iguard_ml.dir/nn.cpp.o" "gcc" "src/ml/CMakeFiles/iguard_ml.dir/nn.cpp.o.d"
  "/root/repo/src/ml/pca.cpp" "src/ml/CMakeFiles/iguard_ml.dir/pca.cpp.o" "gcc" "src/ml/CMakeFiles/iguard_ml.dir/pca.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/iguard_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/iguard_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/vae.cpp" "src/ml/CMakeFiles/iguard_ml.dir/vae.cpp.o" "gcc" "src/ml/CMakeFiles/iguard_ml.dir/vae.cpp.o.d"
  "/root/repo/src/ml/xmeans.cpp" "src/ml/CMakeFiles/iguard_ml.dir/xmeans.cpp.o" "gcc" "src/ml/CMakeFiles/iguard_ml.dir/xmeans.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
