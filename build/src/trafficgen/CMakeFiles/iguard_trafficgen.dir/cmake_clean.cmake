file(REMOVE_RECURSE
  "CMakeFiles/iguard_trafficgen.dir/adversarial.cpp.o"
  "CMakeFiles/iguard_trafficgen.dir/adversarial.cpp.o.d"
  "CMakeFiles/iguard_trafficgen.dir/attacks.cpp.o"
  "CMakeFiles/iguard_trafficgen.dir/attacks.cpp.o.d"
  "CMakeFiles/iguard_trafficgen.dir/benign.cpp.o"
  "CMakeFiles/iguard_trafficgen.dir/benign.cpp.o.d"
  "CMakeFiles/iguard_trafficgen.dir/flowspec.cpp.o"
  "CMakeFiles/iguard_trafficgen.dir/flowspec.cpp.o.d"
  "CMakeFiles/iguard_trafficgen.dir/packet.cpp.o"
  "CMakeFiles/iguard_trafficgen.dir/packet.cpp.o.d"
  "CMakeFiles/iguard_trafficgen.dir/pcap_io.cpp.o"
  "CMakeFiles/iguard_trafficgen.dir/pcap_io.cpp.o.d"
  "libiguard_trafficgen.a"
  "libiguard_trafficgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iguard_trafficgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
