// Versioned, hitless model swap (DESIGN.md §4e; ROADMAP item 1). The data
// plane must never observe a half-updated model: PR 3 made the whitelist
// match engine a compiled artifact (core::CompiledVoteWhitelist), and an
// in-place rule mutation cannot reach it — the source of the stale
// compiled-whitelist skew this subsystem removes. Instead of mutating live
// tables, the control plane builds a fresh immutable ModelBundle (tables +
// quantizers + pre-compiled engines) off the hot path, publishes it through
// an RCU-style ModelHandle with one atomic pointer store, and retires the
// previous version once no reader can still be using it. Readers pin the
// current bundle with a hazard-slot protocol that performs no heap
// allocation and no reference-count traffic — cheap enough to run per
// packet.
//
// The companion DriftDetector turns the online-update telemetry
// (whitelist-miss rate, malicious-vote share, rejected-by-budget slope)
// into windowed, event-counted drift signals: deterministic functions of
// the observation stream, never of wall clock, so drift-triggered swaps
// replay bit-identically. CyberSentinel's distillation-based switch model
// refresh (PAPERS.md) is the reference loop: detect drift, re-distil a
// guided forest on recent epochs, swap without dropping a packet.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/ae_ensemble.hpp"
#include "core/guided_iforest.hpp"
#include "core/whitelist.hpp"
#include "ml/compiled_forest.hpp"
#include "rules/quantize.hpp"

namespace iguard::core {

/// One immutable deployed-model version: everything a pipeline needs to
/// classify packets, owned by value so the bundle's lifetime alone keeps
/// every lookup structure valid. Compilation of the interval-bitmap engines
/// happens in build_bundle (a control-plane operation, like TCAM
/// programming) — never on the packet path.
struct ModelBundle {
  std::uint64_t version = 0;
  VoteWhitelist fl;
  VoteWhitelist pl;  // empty tables => deployment has no early-packet stage
  rules::Quantizer fl_q{16};
  rules::Quantizer pl_q{16};
  CompiledVoteWhitelist fl_compiled;
  CompiledVoteWhitelist pl_compiled;
  /// AOT-compiled flat forest kernel (DESIGN.md §4h) of the guided forest
  /// this bundle's FL whitelist was distilled from — the artifact batched
  /// scoring and P4 emission consume. Empty when the deployment carries
  /// rules only.
  ml::CompiledForest forest;
  /// AE teacher decision thresholds T_u in Q16.16 (forest_compile.hpp);
  /// empty when no teacher artifact rides along.
  std::vector<std::int32_t> ae_thresholds_q16;

  bool has_pl() const { return !pl.tables.empty(); }
  bool has_forest() const { return !forest.empty(); }
};

/// Assemble + compile a bundle. The whitelists are taken by value (the
/// bundle must own its rules: a published version may outlive whatever
/// staging copy produced it); both compiled engines are built here. The
/// optional forest/threshold artifacts are adopted as-is (they are already
/// compiled forms — see core/forest_compile.hpp).
std::shared_ptr<const ModelBundle> build_bundle(std::uint64_t version, VoteWhitelist fl,
                                                rules::Quantizer fl_q, VoteWhitelist pl = {},
                                                rules::Quantizer pl_q = rules::Quantizer{16},
                                                ml::CompiledForest forest = {},
                                                std::vector<std::int32_t> ae_thresholds_q16 = {});

/// Atomic publication point for ModelBundles — the epoch/RCU handle sharded
/// pipelines read per packet. Readers register once (control-plane time),
/// then pin() per packet: an acquire load of the current pointer plus one
/// hazard-slot store, allocation-free and lock-free. Writers publish() a new
/// bundle with a single pointer swap and later collect() versions no pinned
/// reader can still reference. Pins are sticky: a slot guards the version
/// it last pinned until the reader pins a newer one or quiesces, which is
/// exactly the lifetime a pipeline needs between packets.
class ModelHandle {
 public:
  static constexpr std::size_t kMaxReaders = 64;

  explicit ModelHandle(std::shared_ptr<const ModelBundle> initial);

  /// Claim a reader slot (throws past kMaxReaders). Not hot-path.
  std::size_t register_reader();

  /// Pin and return the current bundle for `reader`. The returned pointer
  /// stays valid until this reader's next pin()/quiesce(). No allocation.
  const ModelBundle* pin(std::size_t reader);

  /// Drop `reader`'s pin (e.g. end of replay); the reader may re-pin later.
  void quiesce(std::size_t reader);

  /// Make `next` the live version (its version must exceed the current
  /// one); the old version moves to the retired list until collect() proves
  /// every reader has moved past it. Returns the published version.
  std::uint64_t publish(std::shared_ptr<const ModelBundle> next);

  /// Free retired bundles older than every pinned version; returns how many
  /// were reclaimed. Safe to call from the publisher at any time.
  std::size_t collect();

  const ModelBundle* current() const { return cur_.load(std::memory_order_acquire); }
  std::uint64_t version() const { return current()->version; }
  std::uint64_t swaps() const { return swaps_.load(std::memory_order_relaxed); }
  std::size_t readers() const;
  /// Retired-but-not-yet-reclaimed versions (0 once every swap has drained).
  std::size_t retired_pending() const;

 private:
  std::atomic<const ModelBundle*> cur_;
  std::atomic<std::uint64_t> swaps_{0};
  /// Hazard slots: the bundle each registered reader may still dereference
  /// (nullptr = quiescent). Pointers, not versions: the protocol must never
  /// dereference a candidate bundle before the confirm load proves it is
  /// still live.
  std::vector<std::unique_ptr<std::atomic<const ModelBundle*>>> slots_;
  mutable std::mutex mu_;  // guards slots_ growth, live_, retired_
  std::shared_ptr<const ModelBundle> live_;
  std::vector<std::shared_ptr<const ModelBundle>> retired_;
};

/// Fleet-side model distribution (DESIGN.md §4f): compiling a model version
/// is a control-plane cost paid once per *version*, never once per device.
/// get_or_build() returns the cached bundle for `version`, invoking the
/// builder only on the first request; every device in the fleet then shares
/// the same immutable compiled tables (a ModelBundle never mutates after
/// build_bundle, so cross-thread sharing is safe). The compile/distribution
/// counters let tests and benches assert the once-per-version property.
class ModelDistributor {
 public:
  using Builder = std::function<std::shared_ptr<const ModelBundle>()>;

  /// Cached bundle for `version`, building (and caching) on first request.
  /// Throws std::invalid_argument if the builder returns null or a bundle
  /// whose version does not match the requested one.
  std::shared_ptr<const ModelBundle> get_or_build(std::uint64_t version, const Builder& build);

  std::size_t compiles() const;       // cache misses: builder invocations
  std::size_t distributions() const;  // total get_or_build calls
  std::size_t versions_cached() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const ModelBundle>>> cache_;
  std::size_t compiles_ = 0;
  std::size_t distributions_ = 0;
};

/// Which drift signal fired (kNone = window closed quietly).
enum class DriftSignal { kNone, kMissRate, kVoteShift, kRejectedSlope };

struct DriftConfig {
  bool enabled = true;
  /// Benign observations per window. Windows are event-counted, never
  /// wall-clocked, so detection is a pure function of the mirror stream.
  std::size_t window = 256;
  /// Windows averaged into the baseline after (re)calibration.
  std::size_t baseline_windows = 1;
  /// Windows ignored right after reset() (the post-swap settling period).
  std::size_t cooldown_windows = 0;
  /// Fire kMissRate when a window's whitelist-miss rate (fraction of benign
  /// keys at least one table missed) exceeds baseline + margin.
  double miss_rate_margin = 0.10;
  /// Fire kVoteShift when the window's mean malicious-vote share drifts
  /// this far from the baseline mean (score-distribution shift).
  double vote_shift = 0.08;
  /// Fire kRejectedSlope when rejected-by-budget grows at least this much
  /// within one window (the updater's safety valve is visibly closing).
  std::size_t rejected_slope = 32;
};

/// Windowed drift detection over the online-update telemetry. Feed one
/// observation per delivered benign mirror; at each window boundary the
/// detector compares the window against the calibrated baseline and reports
/// the strongest signal. After a swap, call reset() so the fresh model
/// re-calibrates instead of being judged against its predecessor's
/// baseline.
class DriftDetector {
 public:
  explicit DriftDetector(DriftConfig cfg = {}) : cfg_(cfg) {}

  /// `miss_fraction`: fraction of whitelist tables that missed this benign
  /// key (the malicious-vote share). `fully_covered`: every table matched.
  /// `rejected_total`: the updater's cumulative rejected_by_budget().
  /// Returns a signal only on the observation that closes a window.
  DriftSignal observe(double miss_fraction, bool fully_covered, std::size_t rejected_total);

  /// Recalibrate from scratch (new model version just went live).
  void reset();

  std::size_t windows_closed() const { return windows_closed_; }
  std::size_t fires() const { return fires_; }
  bool calibrated() const { return baseline_ready_; }
  double baseline_miss_rate() const { return baseline_miss_rate_; }
  double baseline_vote_share() const { return baseline_vote_; }
  double last_window_miss_rate() const { return last_miss_rate_; }
  double last_window_vote_share() const { return last_vote_; }
  const DriftConfig& config() const { return cfg_; }

 private:
  DriftConfig cfg_;
  // Current window accumulators.
  std::size_t obs_in_window_ = 0;
  std::size_t misses_in_window_ = 0;
  double vote_sum_ = 0.0;
  std::size_t rejected_at_window_start_ = 0;
  bool have_rejected_start_ = false;
  // Baseline calibration.
  bool baseline_ready_ = false;
  std::size_t baseline_accum_windows_ = 0;
  double baseline_miss_accum_ = 0.0;
  double baseline_vote_accum_ = 0.0;
  double baseline_miss_rate_ = 0.0;
  double baseline_vote_ = 0.0;
  std::size_t cooldown_left_ = 0;
  // Telemetry.
  std::size_t windows_closed_ = 0;
  std::size_t fires_ = 0;
  double last_miss_rate_ = 0.0;
  double last_vote_ = 0.0;
};

/// Everything a rebuild gets to look at. `staging_fl` is the current FL
/// whitelist plus every online extension applied since the last publish;
/// `recent` holds the most recent benign FL feature rows (bounded ring,
/// oldest-first; may be empty when the deployment does not retain rows).
struct RebuildInput {
  const ModelBundle* current = nullptr;
  const VoteWhitelist* staging_fl = nullptr;
  const ml::Matrix* recent = nullptr;
  std::uint64_t new_version = 0;
};

/// Produces the next model version. Must be deterministic in its inputs —
/// swap replay determinism rests on it.
using ModelRebuilder = std::function<std::shared_ptr<const ModelBundle>(const RebuildInput&)>;

/// Cheap default: adopt the staging whitelist (online extensions included)
/// and recompile both engines. Quantizers and the PL stage carry over.
ModelRebuilder recompile_rebuilder();

/// CyberSentinel-style refresh: re-distil a fresh guided forest on the
/// recent benign rows with the retained AE teacher (forest growth and leaf
/// distillation run on the PR 1 thread pool via cfg.num_threads), compile
/// it per-tree under the *deployed* quantizer — the feature contract the
/// switch registers already implement — and clip to the recent rows'
/// robust support. Falls back to recompile_rebuilder() semantics when
/// fewer than `min_rows` rows were retained. The teacher must outlive the
/// returned rebuilder. `seed` fixes the growth RNG so rebuilds replay
/// bit-identically.
ModelRebuilder distill_rebuilder(const AeEnsemble& teacher, GuidedForestConfig forest_cfg,
                                 WhitelistConfig whitelist_cfg, std::size_t min_rows,
                                 std::uint64_t seed);

}  // namespace iguard::core
