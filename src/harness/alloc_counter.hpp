// Heap-allocation probe for the zero-allocation packet-path invariant
// (DESIGN.md §4c): replaces the global operator new/delete with counting
// wrappers so tests and bench_throughput can assert that steady-state
// Pipeline::process performs no heap allocation.
//
// Include this header in EXACTLY ONE translation unit of a binary —
// replacement allocation functions must have a single non-inline definition
// per program. Under sanitizer builds (IGUARD_SANITIZED) the sanitizer
// runtime owns the allocator, so the replacement is compiled out and
// alloc_counting_active() reports false; callers skip the strict assertion.
#pragma once

#include <atomic>
#include <cstdlib>
#include <new>

namespace iguard::harness {

inline std::atomic<std::size_t> g_alloc_count{0};

/// Global operator-new invocations so far (monotonic; diff around a region).
inline std::size_t alloc_count() { return g_alloc_count.load(std::memory_order_relaxed); }

constexpr bool alloc_counting_active() {
#if defined(IGUARD_SANITIZED)
  return false;
#else
  return true;
#endif
}

}  // namespace iguard::harness

#if !defined(IGUARD_SANITIZED)

namespace iguard::harness::detail {

inline void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n != 0 ? n : align) != 0) throw std::bad_alloc();
  return p;
}

}  // namespace iguard::harness::detail

void* operator new(std::size_t n) { return iguard::harness::detail::counted_alloc(n); }
void* operator new[](std::size_t n) { return iguard::harness::detail::counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  iguard::harness::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  iguard::harness::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return iguard::harness::detail::counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return iguard::harness::detail::counted_alloc_aligned(n, static_cast<std::size_t>(a));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#endif  // !IGUARD_SANITIZED
