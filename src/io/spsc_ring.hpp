// Lock-free bounded single-producer/single-consumer ring (DESIGN.md §4g):
// the hand-off queue between the ingest reader thread and a sharded replay
// pipeline. Capacity is rounded up to a power of two so index wrapping is a
// mask; producer and consumer cursors live on separate cache lines so the
// two threads never false-share. try_push/try_pop never block — overload
// policy (shed vs. spin) is the caller's decision, with its own accounting
// (io/overload.hpp), not the queue's.
//
// Memory ordering is the classic SPSC pairing: each side reads its own
// cursor relaxed (it is the only writer of it), reads the opposite cursor
// acquire, and publishes its own cursor release after touching the slot.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace iguard::io {

/// Round up to the next power of two (minimum 2, so the ring always holds
/// at least one element behind the full/empty distinction).
inline std::size_t ring_capacity_for(std::size_t requested) {
  std::size_t c = 2;
  while (c < requested) c <<= 1;
  return c;
}

template <typename T>
class SpscRing {
 public:
  /// `capacity` is a lower bound; the ring allocates the next power of two.
  /// All storage is allocated here — push/pop never allocate.
  explicit SpscRing(std::size_t capacity)
      : buf_(ring_capacity_for(capacity)), mask_(buf_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side only. False = full (caller sheds or retries).
  bool try_push(T v) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) == buf_.size()) return false;
    buf_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side only. False = empty.
  bool try_pop(T& out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == h) return false;
    out = std::move(buf_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Producer side: publish end-of-stream. The release store pairs with the
  /// acquire load in closed(), so every push that happened before the close
  /// is visible to a consumer that observes closed() == true. The close is
  /// sticky — there is no reopen — which is what makes it a safe shutdown
  /// signal: a consumer that sees closed() and then drains to empty has seen
  /// every packet the producer will ever push.
  void close() { closed_.store(true, std::memory_order_release); }

  /// Consumer side. Drain protocol: on a failed try_pop, check closed();
  /// if set, one more try_pop decides — another failure means the stream is
  /// finished (nothing can be in flight past a close).
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  std::size_t capacity() const { return buf_.size(); }

  /// Racy size estimate — exact only when both sides are quiescent.
  std::size_t size_approx() const {
    return tail_.load(std::memory_order_acquire) - head_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> buf_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
  alignas(64) std::atomic<bool> closed_{false};   // producer end-of-stream flag
};

}  // namespace iguard::io
