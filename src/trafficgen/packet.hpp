// Packet and trace model. A Trace is the in-memory stand-in for the PCAP
// files the paper replays with tcpreplay: a time-ordered packet sequence
// carrying exactly the header fields the feature extractors and the switch
// pipeline consume (5-tuple, length, TTL, TCP flags), plus ground-truth
// labels used only by the evaluation harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iguard::traffic {

struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;  // IPPROTO_TCP=6, UDP=17, ICMP=1

  bool operator==(const FiveTuple&) const = default;

  /// Direction-reversed tuple (for bidirectional flow keys).
  FiveTuple reversed() const { return {dst_ip, src_ip, dst_port, src_port, proto}; }

  /// Canonical orientation — the same rule bihash() uses to make both
  /// directions hash alike: the endpoint with the smaller (ip, port) pair is
  /// the source. Direction-invariant: ft.canonical() == ft.reversed().canonical().
  FiveTuple canonical() const {
    const bool fwd = src_ip < dst_ip || (src_ip == dst_ip && src_port <= dst_port);
    return fwd ? *this : reversed();
  }
};

/// 64-bit order-independent (bidirectional) hash of a 5-tuple — the paper's
/// "bi-hash": both directions of a connection index the same flow state.
std::uint64_t bihash(const FiveTuple& ft, std::uint64_t seed = 0);

/// Order-dependent hash (exact-match table keying).
std::uint64_t dirhash(const FiveTuple& ft, std::uint64_t seed = 0);

enum class TcpFlag : std::uint8_t { kNone = 0, kSyn = 1, kAck = 2, kSynAck = 3, kFin = 4, kRst = 5 };

struct Packet {
  double ts = 0.0;  // seconds since trace start
  FiveTuple ft;
  std::uint16_t length = 0;  // IP total length, bytes
  std::uint8_t ttl = 64;
  TcpFlag flags = TcpFlag::kNone;

  // Ground truth, never visible to the detectors / data plane:
  bool malicious = false;
  std::uint32_t flow_id = 0;  // generator-assigned flow index
};

struct Trace {
  std::vector<Packet> packets;

  double duration() const {
    return packets.empty() ? 0.0 : packets.back().ts - packets.front().ts;
  }
  std::size_t size() const { return packets.size(); }
  bool empty() const { return packets.empty(); }

  /// Stable-sort by timestamp (generators emit per-flow bursts).
  void sort_by_time();

  /// Append another trace's packets (no re-sort).
  void append(const Trace& other);
};

/// Interleave traces into one time-ordered trace, renumbering flow_ids so
/// they stay unique across sources.
Trace merge_traces(std::vector<Trace> parts);

constexpr std::uint8_t kProtoTcp = 6;
constexpr std::uint8_t kProtoUdp = 17;
constexpr std::uint8_t kProtoIcmp = 1;

}  // namespace iguard::traffic
