#include "features/flow_features.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace iguard::features {

std::size_t feature_count(FeatureSet set) {
  return set == FeatureSet::kSwitch13 ? kSwitchFeatureCount : kCpuFeatureCount;
}

std::vector<std::string_view> feature_names(FeatureSet set) {
  std::vector<std::string_view> names = {
      "pkt_count",  "total_size", "mean_size", "std_size", "var_size",
      "min_size",   "max_size",   "mean_ipd",  "min_ipd",  "var_ipd",
      "std_ipd",    "max_ipd",    "duration"};
  if (set == FeatureSet::kCpuExtended) {
    names.insert(names.end(),
                 {"size_p25", "size_p75", "ipd_p25", "ipd_p75", "dst_port", "proto"});
  }
  return names;
}

std::vector<std::string_view> packet_feature_names() {
  return {"dst_port", "proto", "length", "ttl"};
}

void FlowStats::add(const traffic::Packet& p, bool keep_samples) {
  const double size = static_cast<double>(p.length);
  if (count == 0) {
    first_ts = p.ts;
    min_size = max_size = size;
    // Flows are keyed bidirectionally (bihash), so the first packet seen may
    // travel either direction; take the tuple's canonical orientation so the
    // port/proto features don't depend on which side spoke first.
    const traffic::FiveTuple canon = p.ft.canonical();
    dst_port = canon.dst_port;
    proto = canon.proto;
  } else {
    const double ipd = std::max(0.0, p.ts - last_ts);
    if (count == 1) {
      min_ipd = max_ipd = ipd;
    } else {
      min_ipd = std::min(min_ipd, ipd);
      max_ipd = std::max(max_ipd, ipd);
    }
    sum_ipd += ipd;
    sum_sq_ipd += ipd * ipd;
    if (keep_samples) ipds.push_back(ipd);
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  total_size += size;
  sum_sq_size += size * size;
  if (keep_samples) sizes.push_back(size);
  last_ts = p.ts;
  malicious = malicious || p.malicious;
  ++count;
}

namespace {
double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}
}  // namespace

std::vector<double> finalize_features(const FlowStats& st, FeatureSet set) {
  const double n = static_cast<double>(st.count);
  const double mean_size = st.count > 0 ? st.total_size / n : 0.0;
  const double var_size =
      st.count > 0 ? std::max(0.0, st.sum_sq_size / n - mean_size * mean_size) : 0.0;
  const double gaps = static_cast<double>(st.count > 1 ? st.count - 1 : 1);
  const double mean_ipd = st.count > 1 ? st.sum_ipd / gaps : 0.0;
  const double var_ipd =
      st.count > 1 ? std::max(0.0, st.sum_sq_ipd / gaps - mean_ipd * mean_ipd) : 0.0;
  const double duration = st.last_ts - st.first_ts;

  std::vector<double> f = {n,
                           st.total_size,
                           mean_size,
                           std::sqrt(var_size),
                           var_size,
                           st.min_size,
                           st.max_size,
                           mean_ipd,
                           st.count > 1 ? st.min_ipd : 0.0,
                           var_ipd,
                           std::sqrt(var_ipd),
                           st.count > 1 ? st.max_ipd : 0.0,
                           duration};
  if (set == FeatureSet::kCpuExtended) {
    f.push_back(percentile(st.sizes, 0.25));
    f.push_back(percentile(st.sizes, 0.75));
    f.push_back(percentile(st.ipds, 0.25));
    f.push_back(percentile(st.ipds, 0.75));
    f.push_back(static_cast<double>(st.dst_port));
    f.push_back(static_cast<double>(st.proto));
  }
  return f;
}

FlowDataset extract_flows(const traffic::Trace& trace, const ExtractorConfig& cfg) {
  const bool keep_samples = cfg.set == FeatureSet::kCpuExtended;
  // Exact bidirectional keying: canonicalised tuple -> running stats.
  struct KeyHash {
    std::size_t operator()(const traffic::FiveTuple& ft) const {
      return static_cast<std::size_t>(traffic::bihash(ft));
    }
  };
  struct KeyEq {
    bool operator()(const traffic::FiveTuple& a, const traffic::FiveTuple& b) const {
      return a == b || a == b.reversed();
    }
  };
  std::unordered_map<traffic::FiveTuple, FlowStats, KeyHash, KeyEq> table;

  FlowDataset out;
  out.x = ml::Matrix(0, feature_count(cfg.set));
  auto emit = [&](const FlowStats& st) {
    if (st.count < cfg.min_packets) return;
    out.x.push_row(finalize_features(st, cfg.set));
    out.labels.push_back(st.malicious ? 1 : 0);
  };

  for (const auto& p : trace.packets) {
    auto& st = table[p.ft];
    if (cfg.idle_timeout > 0.0 && st.count > 0 && p.ts - st.last_ts > cfg.idle_timeout) {
      emit(st);
      st = FlowStats{};
    }
    st.add(p, keep_samples);
    if (cfg.packet_threshold > 0 && st.count >= cfg.packet_threshold) {
      emit(st);
      st = FlowStats{};
    }
  }
  for (const auto& [ft, st] : table) emit(st);
  return out;
}

FlowDataset extract_packet_features(const traffic::Trace& trace, std::size_t early_packets) {
  struct KeyHash {
    std::size_t operator()(const traffic::FiveTuple& ft) const {
      return static_cast<std::size_t>(traffic::bihash(ft));
    }
  };
  struct KeyEq {
    bool operator()(const traffic::FiveTuple& a, const traffic::FiveTuple& b) const {
      return a == b || a == b.reversed();
    }
  };
  std::unordered_map<traffic::FiveTuple, std::size_t, KeyHash, KeyEq> seen;

  FlowDataset out;
  out.x = ml::Matrix(0, kPacketFeatureCount);
  for (const auto& p : trace.packets) {
    std::size_t& n = seen[p.ft];
    if (n < early_packets) {
      const double row[kPacketFeatureCount] = {
          static_cast<double>(p.ft.dst_port), static_cast<double>(p.ft.proto),
          static_cast<double>(p.length), static_cast<double>(p.ttl)};
      out.x.push_row(row);
      out.labels.push_back(p.malicious ? 1 : 0);
    }
    ++n;
  }
  return out;
}

}  // namespace iguard::features
