// Ablation study of iGuard's design choices (DESIGN.md §4) on one CPU
// experiment (Mirai + UDP DDoS + Keylogging):
//   (a) full iGuard (teacher-guided growth + distillation + support boxes);
//   (b) no guided growth — conventional random iTree splits, but the same
//       distillation and support boxes (isolates the value of §3.2.1);
//   (c) no tau_split stopping — trees grow to the height cap regardless of
//       purity (isolates the rule-count/TCAM saving of the extra criterion);
//   (d) no support boxes — leaves label their whole split cell (isolates
//       the bounded-hypercube whitelist semantics of Fig. 3c).
// Ablation (d) reuses the library's cell-sweep compiler; (b) swaps the
// growth routine via a degenerate teacher threshold for the split search.
#include <iostream>

#include "eval/report.hpp"
#include "harness/cpu_lab.hpp"

using namespace iguard;

namespace {

struct Variant {
  std::string name;
  core::GuidedForestConfig forest;
  bool use_boxes = true;
};

eval::DetectionMetrics eval_forest(const core::GuidedIsolationForest& f, bool use_boxes,
                                   const harness::AttackSplit& split) {
  std::vector<int> pred(split.test_x.rows());
  std::vector<double> score(split.test_x.rows());
  for (std::size_t i = 0; i < split.test_x.rows(); ++i) {
    auto x = split.test_x.row(i);
    if (use_boxes) {
      score[i] = f.vote_fraction(x);
    } else {
      // Cell semantics: the leaf's label applies to the whole split cell.
      std::size_t mal = 0;
      for (const auto& t : f.trees()) {
        mal += static_cast<std::size_t>(
            t.nodes[static_cast<std::size_t>(t.leaf_index(x))].label);
      }
      score[i] = static_cast<double>(mal) / static_cast<double>(f.trees().size());
    }
    pred[i] = 2.0 * score[i] > 1.0 ? 1 : 0;
  }
  return eval::evaluate(split.test_y, pred, score);
}

}  // namespace

int main() {
  harness::CpuLabConfig cfg;
  cfg.teacher.num_threads = 0;  // 0 = hardware concurrency
  cfg.forest.num_threads = 0;
  harness::CpuLab lab{cfg};

  std::vector<Variant> variants;
  variants.push_back({"full iGuard", {}, true});
  {
    core::GuidedForestConfig no_guidance{};
    no_guidance.candidates_per_feature = 1;  // degenerate split search: the
    // single median candidate approximates unguided (random-cut) growth
    // while keeping the same stopping rules and distillation.
    variants.push_back({"(b) weak guidance", no_guidance, true});
  }
  {
    core::GuidedForestConfig no_stop{};
    no_stop.tau_split = 0.0;  // never stop on purity: grow to the cap
    variants.push_back({"(c) no tau_split stop", no_stop, true});
  }
  variants.push_back({"(d) cell labels (no boxes)", {}, false});

  eval::Table table({"attack", "variant", "macro F1", "ROC AUC", "PR AUC", "leaves/tree"});
  for (const auto atk : {traffic::AttackType::kMirai, traffic::AttackType::kUdpDdos,
                         traffic::AttackType::kKeylogging}) {
    const auto split = lab.make_attack_split(atk);
    const auto base_t = lab.calibrate_teacher(split);

    for (const auto& v : variants) {
      // Train at a fixed representative threshold scale (1.2) so the
      // comparison isolates the structural choice, not the T grid.
      auto& teacher = lab.mutable_teacher();
      for (std::size_t u = 0; u < teacher.size(); ++u)
        teacher.set_member_threshold(u, base_t[u] * 1.2);
      core::GuidedIsolationForest forest{v.forest};
      ml::Rng rng(99);
      forest.fit(lab.train_x(), teacher, rng);

      const auto m = eval_forest(forest, v.use_boxes, split);
      double leaves = 0.0;
      for (const auto& t : forest.trees()) leaves += static_cast<double>(t.leaf_count());
      leaves /= static_cast<double>(forest.trees().size());
      table.add_row({traffic::attack_name(atk), v.name, eval::Table::num(m.macro_f1),
                     eval::Table::num(m.roc_auc), eval::Table::num(m.pr_auc),
                     eval::Table::num(leaves, 1)});
      for (std::size_t u = 0; u < teacher.size(); ++u)
        teacher.set_member_threshold(u, base_t[u]);
    }
  }

  table.print(std::cout, "Ablation: iGuard design choices");
  std::cout << "\nExpected shape: (b) and (d) lose detection quality (guidance finds the\n"
               "malicious holes; support boxes catch what cells whitewash); (c) keeps\n"
               "accuracy but grows more leaves per tree => more whitelist rules/TCAM —\n"
               "the saving Table 1 attributes to the extra stopping criterion.\n";
  table.write_csv("ablation.csv");
  return 0;
}
