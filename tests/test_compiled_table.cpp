#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/whitelist.hpp"
#include "ml/rng.hpp"
#include "rules/compiled_table.hpp"
#include "rules/rule_table.hpp"

namespace iguard::rules {
namespace {

/// Reference first-match index: the linear scan the compiled engine must
/// reproduce bit for bit.
int linear_match_index(const RuleTable& t, std::span<const std::uint32_t> key) {
  for (std::size_t i = 0; i < t.rules().size(); ++i) {
    if (t.rules()[i].matches(key)) return static_cast<int>(i);
  }
  return -1;
}

void expect_equivalent(const RuleTable& lin, const CompiledRuleTable& comp,
                       std::span<const std::uint32_t> key) {
  const int want = linear_match_index(lin, key);
  ASSERT_EQ(comp.match_index(key), want);
  ASSERT_EQ(comp.classify(key), lin.classify(key));
  const auto m_lin = lin.match(key);
  const auto m_comp = comp.match(key);
  ASSERT_EQ(m_comp.has_value(), m_lin.has_value());
  if (m_lin) {
    ASSERT_EQ(*m_comp, *m_lin);
  }
}

/// Random rule over `width` fields drawn from a small domain so overlaps,
/// adjacency, duplicates, and empties all occur often.
RangeRule random_rule(ml::Rng& rng, std::size_t width, std::uint32_t domain) {
  RangeRule r;
  r.fields.resize(width);
  for (auto& f : r.fields) {
    switch (rng.index(10)) {
      case 0:  // full domain
        f = {0, domain};
        break;
      case 1:  // empty (lo > hi): must match nothing
        f = {domain / 2 + 1, domain / 2};
        break;
      case 2: {  // point
        const auto v = static_cast<std::uint32_t>(rng.integer(0, domain));
        f = {v, v};
        break;
      }
      default: {
        const auto a = static_cast<std::uint32_t>(rng.integer(0, domain));
        const auto b = static_cast<std::uint32_t>(rng.integer(0, domain));
        f = {std::min(a, b), std::max(a, b)};
      }
    }
  }
  r.label = static_cast<int>(rng.index(2));
  r.priority = static_cast<int>(rng.index(5));  // duplicate priorities likely
  return r;
}

TEST(CompiledRuleTable, PropertyEquivalentToLinearScan) {
  ml::Rng rng(0xC0117ull);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t width = 1 + rng.index(5);
    const std::uint32_t domain = trial % 2 == 0 ? 15u : 255u;
    const std::size_t n_rules = rng.index(40);
    std::vector<RangeRule> rules;
    for (std::size_t i = 0; i < n_rules; ++i) rules.push_back(random_rule(rng, width, domain));

    const RuleTable lin(rules);
    const CompiledRuleTable comp(rules);
    ASSERT_EQ(comp.size(), lin.size());
    ASSERT_EQ(comp.rules(), lin.rules());  // same priority-stable order

    std::vector<std::uint32_t> key(width);
    // Random keys, including out-of-domain values.
    for (int k = 0; k < 50; ++k) {
      for (auto& v : key) v = static_cast<std::uint32_t>(rng.integer(0, 2 * domain));
      expect_equivalent(lin, comp, key);
    }
    // Endpoint-adjacent keys: perturb a random rule's corner, where
    // off-by-one interval bugs live.
    for (int k = 0; k < 50 && !rules.empty(); ++k) {
      const auto& r = rules[rng.index(rules.size())];
      for (std::size_t f = 0; f < width; ++f) {
        const std::uint32_t base = rng.index(2) == 0 ? r.fields[f].lo : r.fields[f].hi;
        const std::int64_t jitter = rng.integer(-1, 1);
        key[f] = static_cast<std::uint32_t>(
            std::max<std::int64_t>(0, static_cast<std::int64_t>(base) + jitter));
      }
      expect_equivalent(lin, comp, key);
    }
  }
}

TEST(CompiledRuleTable, ManyRulesCrossWordBoundaries) {
  // >2 mask words with interleaved priorities: the first set bit of the
  // word sweep must match the scan even when the winner is in word 2.
  ml::Rng rng(0x77AB1Eull);
  std::vector<RangeRule> rules;
  for (int i = 0; i < 150; ++i) rules.push_back(random_rule(rng, 3, 31));
  const RuleTable lin(rules);
  const CompiledRuleTable comp(rules);
  std::vector<std::uint32_t> key(3);
  for (int k = 0; k < 500; ++k) {
    for (auto& v : key) v = static_cast<std::uint32_t>(rng.integer(0, 40));
    expect_equivalent(lin, comp, key);
  }
}

TEST(CompiledRuleTable, MixedWidthsMatchOnlyOwnWidth) {
  std::vector<RangeRule> rules{
      {{{0, 10}}, 0, 0},            // width 1
      {{{0, 10}, {0, 10}}, 1, 1},   // width 2
      {{}, 0, 2},                   // width 0: matches the empty key
  };
  const RuleTable lin(rules);
  const CompiledRuleTable comp(rules);
  const std::uint32_t k1[] = {5};
  const std::uint32_t k2[] = {5, 5};
  const std::uint32_t k3[] = {5, 5, 5};
  expect_equivalent(lin, comp, k1);
  expect_equivalent(lin, comp, k2);
  expect_equivalent(lin, comp, k3);
  expect_equivalent(lin, comp, std::span<const std::uint32_t>{});
}

TEST(CompiledRuleTable, DomainEdgeRanges) {
  // hi = 2^32-1 exercises the hi+1 breakpoint at the end of the domain.
  const std::uint32_t max = 0xFFFFFFFFu;
  std::vector<RangeRule> rules{
      {{{max - 1, max}}, 0, 1},
      {{{0, 0}}, 0, 0},
  };
  const RuleTable lin(rules);
  const CompiledRuleTable comp(rules);
  for (const std::uint32_t v : {0u, 1u, max - 2, max - 1, max}) {
    const std::uint32_t key[] = {v};
    expect_equivalent(lin, comp, key);
  }
}

TEST(CompiledRuleTable, BatchPropertyBitExactWithScalar) {
  // The batched entry points must reproduce per-key scalar lookups exactly:
  // random tables, batch sizes straddling the internal 64-key chunk, keys
  // spanning in-domain / out-of-domain / endpoint-adjacent values.
  ml::Rng rng(0xBA7C4ull);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t width = 1 + rng.index(5);
    const std::uint32_t domain = trial % 2 == 0 ? 15u : 255u;
    const std::size_t n_rules = rng.index(90);  // >64 rules crosses mask words
    std::vector<RangeRule> rules;
    for (std::size_t i = 0; i < n_rules; ++i) rules.push_back(random_rule(rng, width, domain));
    const CompiledRuleTable comp(rules);

    const std::size_t n = 1 + rng.index(150);
    std::vector<std::uint32_t> keys(n * width);
    for (auto& v : keys) v = static_cast<std::uint32_t>(rng.integer(0, 2 * domain));
    std::vector<int> got_idx(n, -7);
    std::vector<std::uint8_t> got_any(n, 7);
    std::vector<int> got_cls(n, -7);
    comp.match_index_batch(keys, width, got_idx);
    comp.matches_any_batch(keys, width, got_any);
    comp.classify_batch(keys, width, got_cls);
    for (std::size_t i = 0; i < n; ++i) {
      const std::span<const std::uint32_t> key(keys.data() + i * width, width);
      ASSERT_EQ(got_idx[i], comp.match_index(key));
      ASSERT_EQ(got_any[i], comp.matches_any(key) ? 1 : 0);
      ASSERT_EQ(got_cls[i], comp.classify(key));
    }

    // Skip mask: marked keys must be left untouched, unmarked ones exact.
    std::vector<std::uint8_t> skip(n);
    for (auto& s : skip) s = static_cast<std::uint8_t>(rng.index(2));
    std::vector<int> skipped_idx(n, -7);
    std::vector<std::uint8_t> skipped_any(n, 7);
    comp.match_index_batch(keys, width, skipped_idx, skip.data());
    comp.matches_any_batch(keys, width, skipped_any, skip.data());
    for (std::size_t i = 0; i < n; ++i) {
      const std::span<const std::uint32_t> key(keys.data() + i * width, width);
      ASSERT_EQ(skipped_idx[i], skip[i] != 0 ? -7 : comp.match_index(key));
      ASSERT_EQ(skipped_any[i], skip[i] != 0 ? 7 : (comp.matches_any(key) ? 1 : 0));
    }
  }
}

TEST(CompiledRuleTable, BatchNoGroupAndWideWidthFallbacks) {
  // Width with no rule group: every out slot is a miss. Width past
  // kMaxBatchWidth: the per-key scalar fallback must still be exact.
  std::vector<RangeRule> rules{{{{0, 10}, {0, 10}}, 0, 0}};
  const CompiledRuleTable comp(rules);
  std::vector<std::uint32_t> k3(9, 5);
  std::vector<int> idx(3, -7);
  comp.match_index_batch(k3, 3, idx);
  EXPECT_EQ(idx, (std::vector<int>{-1, -1, -1}));

  const std::size_t wide = CompiledRuleTable::kMaxBatchWidth + 3;
  std::vector<RangeRule> wide_rules{{std::vector<FieldRange>(wide, FieldRange{2, 8}), 0, 0}};
  const CompiledRuleTable wcomp(wide_rules);
  std::vector<std::uint32_t> wkeys(2 * wide, 5);
  wkeys[wide] = 100;  // second key misses
  std::vector<int> widx(2, -7);
  wcomp.match_index_batch(wkeys, wide, widx);
  EXPECT_EQ(widx[0], 0);
  EXPECT_EQ(widx[1], -1);
  std::vector<int> wcls(2, -7);
  wcomp.classify_batch(wkeys, wide, wcls);
  EXPECT_EQ(wcls[0], 0);
  EXPECT_EQ(wcls[1], 1);
}

TEST(CompiledVoteWhitelist, BatchVoteBitExactWithScalar) {
  ml::Rng rng(0xB07E5ull);
  for (const std::size_t trees : {1u, 2u, 5u, 8u}) {
    core::VoteWhitelist wl;
    wl.tree_count = trees;
    for (std::size_t t = 0; t < trees; ++t) {
      std::vector<RangeRule> rules;
      const std::size_t n = 1 + rng.index(20);
      for (std::size_t i = 0; i < n; ++i) rules.push_back(random_rule(rng, 4, 31));
      wl.tables.emplace_back(std::move(rules));
    }
    const core::CompiledVoteWhitelist comp(wl);
    // Batch sizes straddling the vote kernel's 256-key block.
    for (const std::size_t n : {1u, 64u, 255u, 256u, 300u}) {
      std::vector<std::uint32_t> keys(n * 4);
      for (auto& v : keys) v = static_cast<std::uint32_t>(rng.integer(0, 40));
      std::vector<int> got(n, -7);
      comp.classify_batch(keys, 4, got);
      for (std::size_t i = 0; i < n; ++i) {
        const std::span<const std::uint32_t> key(keys.data() + i * 4, 4);
        ASSERT_EQ(got[i], wl.classify(key));
      }
    }
  }
}

TEST(CompiledRuleTable, EmptyTableMatchesNothing) {
  const CompiledRuleTable comp{RuleTable{}};
  const std::uint32_t key[] = {0, 1};
  EXPECT_EQ(comp.match_index(key), -1);
  EXPECT_EQ(comp.classify(key), 1);  // no-match defaults to malicious
}

TEST(CompiledVoteWhitelist, VoteIdenticalToLinear) {
  ml::Rng rng(0x70735ull);
  core::VoteWhitelist wl;
  wl.tree_count = 5;
  for (std::size_t t = 0; t < 5; ++t) {
    std::vector<RangeRule> rules;
    const std::size_t n = 1 + rng.index(20);
    for (std::size_t i = 0; i < n; ++i) rules.push_back(random_rule(rng, 4, 31));
    wl.tables.emplace_back(std::move(rules));
  }
  const core::CompiledVoteWhitelist comp(wl);
  std::vector<std::uint32_t> key(4);
  for (int k = 0; k < 1000; ++k) {
    for (auto& v : key) v = static_cast<std::uint32_t>(rng.integer(0, 40));
    ASSERT_EQ(comp.classify(key), wl.classify(key));
    ASSERT_DOUBLE_EQ(comp.malicious_vote_fraction(key), wl.malicious_vote_fraction(key));
  }
}

TEST(Quantizer, QuantizeIntoMatchesQuantize) {
  ml::Matrix fake(2, 13);
  for (std::size_t j = 0; j < 13; ++j) {
    fake(0, j) = -3.0 * static_cast<double>(j);
    fake(1, j) = 100.0 + static_cast<double>(j);
  }
  Quantizer q(16);
  q.fit(fake);
  ml::Rng rng(0x9143ull);
  std::array<double, 13> x;
  std::array<std::uint32_t, 13> buf;
  for (int k = 0; k < 100; ++k) {
    for (auto& v : x) v = rng.uniform(-50.0, 150.0);
    q.quantize_into(x, buf);
    const auto ref = q.quantize(x);
    for (std::size_t j = 0; j < 13; ++j) ASSERT_EQ(buf[j], ref[j]);
  }
  std::array<std::uint32_t, 5> small;
  EXPECT_THROW(q.quantize_into(x, small), std::invalid_argument);
}

}  // namespace
}  // namespace iguard::rules
