# Empty compiler generated dependencies file for iguard_trafficgen.
# This may be replaced when dependencies are built.
