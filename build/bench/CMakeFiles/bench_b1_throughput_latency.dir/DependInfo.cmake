
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_b1_throughput_latency.cpp" "bench/CMakeFiles/bench_b1_throughput_latency.dir/bench_b1_throughput_latency.cpp.o" "gcc" "bench/CMakeFiles/bench_b1_throughput_latency.dir/bench_b1_throughput_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/iguard_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/iguard_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/switchsim/CMakeFiles/iguard_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/iguard_core.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/iguard_features.dir/DependInfo.cmake"
  "/root/repo/build/src/trafficgen/CMakeFiles/iguard_trafficgen.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/iguard_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/iguard_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
