# Empty dependencies file for iguard_features.
# This may be replaced when dependencies are built.
