#include "ml/autoencoder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace iguard::ml {

void Autoencoder::fit(const Matrix& benign, Rng& rng) {
  if (benign.rows() == 0) throw std::invalid_argument("Autoencoder::fit: empty data");
  const std::size_t m = benign.cols();
  Matrix z = scaler_.fit_transform(benign);

  std::vector<std::size_t> dims;
  std::vector<Activation> acts;
  dims.push_back(m);
  for (std::size_t i = 0; i < cfg_.encoder_hidden.size(); ++i) {
    dims.push_back(cfg_.encoder_hidden[i]);
    // tanh at the bottleneck: a narrow ReLU code can die wholesale (all
    // units stuck at 0), which flatlines the whole autoencoder.
    const bool bottleneck = i + 1 == cfg_.encoder_hidden.size();
    acts.push_back(bottleneck ? Activation::kTanh : Activation::kRelu);
  }
  for (std::size_t h : cfg_.decoder_hidden) {
    dims.push_back(h);
    acts.push_back(Activation::kRelu);
  }
  dims.push_back(m);
  acts.push_back(Activation::kLinear);  // reconstruct standardised values
  net_ = Mlp(dims, acts, rng);

  final_loss_ = net_.fit(z, z, cfg_.epochs, cfg_.batch_size, cfg_.learning_rate, rng);

  // T_u = quantile of benign training reconstruction errors.
  std::vector<double> errors(benign.rows());
  for (std::size_t i = 0; i < benign.rows(); ++i) {
    errors[i] = reconstruction_error(benign.row(i));
  }
  std::sort(errors.begin(), errors.end());
  const double q = std::clamp(cfg_.threshold_quantile, 0.0, 1.0);
  const std::size_t k =
      std::min(errors.size() - 1, static_cast<std::size_t>(q * static_cast<double>(errors.size())));
  threshold_ = errors[k];
}

double Autoencoder::reconstruction_error(std::span<const double> x) const {
  if (!scaler_.fitted()) throw std::logic_error("Autoencoder: not fitted");
  // Thread-local scratch: no allocation on the hot path, no shared mutable
  // state — the distillation and batch-scoring loops call this from many
  // threads on one const autoencoder.
  thread_local std::vector<double> scaled, out, scratch;
  scaled.resize(x.size());
  scaler_.transform_row(x, scaled);
  net_.forward_const(scaled, out, scratch);
  double s = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double d = out[i] - scaled[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(out.size()));
}

AutoencoderConfig magnifier_config(std::size_t epochs) {
  AutoencoderConfig cfg;
  cfg.encoder_hidden = {32, 16, 4};
  cfg.decoder_hidden = {};  // asymmetric: 4 -> m directly
  cfg.epochs = epochs;
  cfg.label = "magnifier";
  return cfg;
}

AutoencoderConfig testbed_autoencoder_config(std::size_t epochs) {
  AutoencoderConfig cfg;
  cfg.encoder_hidden = {16, 8, 3};
  cfg.decoder_hidden = {};
  cfg.epochs = epochs;
  cfg.label = "testbed-ae";
  return cfg;
}

}  // namespace iguard::ml
