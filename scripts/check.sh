#!/usr/bin/env bash
# Full verification sweep: build + ctest plain, then under each sanitizer.
# Usage: scripts/check.sh [--fast|--bench-smoke|--obs-smoke|--swap-smoke|--fleet-smoke|--ingest-smoke|--fuzz-smoke|--daemon-smoke|--csv-drift]
#   --fast         plain build/test only (skip the sanitizer matrix)
#   --bench-smoke  Release build + bench_throughput --smoke: fails if the
#                  compiled match engine diverges from the linear scan, if
#                  sharded replay is non-deterministic, if the steady-state
#                  packet path allocates, or if the JSON artifact is malformed
#   --obs-smoke    Release build + examples/switch_deployment twice: fails if
#                  any non-timing.* key of the observability snapshot differs
#                  between the two identical runs (DESIGN.md §4d determinism)
#   --swap-smoke   Release build + bench_model_swap --smoke twice: fails on
#                  any swap-gate violation (non-determinism, data-plane
#                  perturbation, packet/mirror loss, no publish, steady-state
#                  allocations) or if the swap.* observability snapshot is
#                  not byte-identical across the two runs (DESIGN.md §4e)
#   --fleet-smoke  Release build + bench_fleet --smoke twice: fails on any
#                  fleet-gate violation (N=1 faults-off fleet diverging from
#                  the single-switch sharded replay, thread-count
#                  non-determinism, conservation-audit failure) or if any
#                  non-timing key of BENCH_fleet.json / the fleet
#                  observability snapshot differs between the two identical
#                  runs (DESIGN.md §4f)
#   --ingest-smoke Release build + bench_ingest --smoke twice: fails on any
#                  ingest-gate violation (hardened chain diverging from plain
#                  replay, thread-count non-determinism, conservation-audit
#                  failure, ring opacity) or if any non-timing key of
#                  BENCH_ingest.json / the ingest observability snapshot
#                  differs between the two identical runs (DESIGN.md §4g)
#   --fuzz-smoke   Build the TraceReader and digest-decode fuzz targets under
#                  ASan then UBSan; each replays its committed seed corpus
#                  plus seeded mutations and aborts on any crash, sanitizer
#                  report, or conservation violation
#   --daemon-smoke Release build + iguardd against a bundled looped trace:
#                  scrapes /metrics twice after the finite replay completes
#                  and fails unless the non-timing exposition is
#                  byte-identical, the alert stream carries installs, and
#                  SIGTERM drains cleanly (conservation audit ok, exit 0);
#                  then repeats the serve-and-drain run under ASan
#   --csv-drift    Release build + regenerate the committed fig*/table*/b*
#                  CSVs in a scratch dir: fails if any regenerated CSV
#                  differs from the committed copy (stale-artifact gate)
set -euo pipefail

cd "$(dirname "$0")/.."
GENERATOR_ARGS=()
command -v ninja >/dev/null 2>&1 && GENERATOR_ARGS=(-G Ninja)
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_suite() {
  local name="$1" sanitize="$2"
  local dir="build-check-${name}"
  echo "=== ${name} (IGUARD_SANITIZE='${sanitize}') ==="
  cmake -B "${dir}" -S . "${GENERATOR_ARGS[@]}" -DIGUARD_SANITIZE="${sanitize}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

# Shard/fleet sweeps on a 1-core container measure overhead, not scaling:
# the determinism gates still hold, but throughput numbers are meaningless.
# Every bench JSON artifact records hardware_threads so consumers can tell.
warn_if_single_core() {
  if [[ "${JOBS}" -le 1 ]]; then
    echo "WARNING: only 1 hardware thread detected — shard/fleet sweep" >&2
    echo "WARNING: throughput numbers measure overhead, not parallel scaling" >&2
  fi
}

bench_smoke() {
  local dir="build-check-bench"
  echo "=== bench-smoke (Release) ==="
  warn_if_single_core
  cmake -B "${dir}" -S . "${GENERATOR_ARGS[@]}" \
    -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "${dir}" -j "${JOBS}" --target bench_throughput
  local out="${dir}/BENCH_pipeline_smoke.json"
  # The bench itself exits non-zero on engine divergence, non-deterministic
  # sharding, or steady-state allocations — the drift gates.
  "${dir}/bench/bench_throughput" --smoke --out "${out}"
  # Artifact sanity: well-formed JSON with the verdict fields present and
  # the two engines in agreement.
  python3 - "${out}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    j = json.load(f)
for key in ("configs", "speedup_compiled_vs_linear", "speedup_batched_vs_scalar",
            "forest_kernel", "steady_state_allocs_per_packet",
            "compiled_equals_linear", "batched_equals_scalar",
            "sharded_deterministic"):
    assert key in j, f"BENCH_pipeline json missing {key!r}"
assert j["compiled_equals_linear"] is True, "engine verdicts diverge"
assert j["batched_equals_scalar"] is True, "batched staging diverges from scalar"
assert j["sharded_deterministic"] is True, "sharded replay non-deterministic"
assert j["steady_state_allocs_per_packet"] == 0, "steady-state path allocates"
assert j["forest_kernel"]["bit_exact"] is True, "compiled-forest kernels diverge"
engines = {c["engine"] for c in j["configs"]}
assert engines == {"linear", "compiled", "compiled-batched"}, f"unexpected engines {engines}"
assert all("batch_size" in c for c in j["configs"]), "config missing batch_size"
print("bench-smoke artifact OK:", sys.argv[1])
EOF
}

perf_gate() {
  local dir="build-check-bench"
  echo "=== perf-gate (Release) ==="
  warn_if_single_core
  release_build bench_throughput
  local fresh="${dir}/BENCH_pipeline_fresh.json"
  "${dir}/bench/bench_throughput" --out "${fresh}" >/dev/null
  # Compare the fresh ns/packet of every compiled config against the
  # committed BENCH_pipeline.json baseline: >25% regression on any compiled
  # path fails the gate. On a 1-core host throughput numbers measure
  # overhead, not the engine (see warn_if_single_core), so the gate only
  # warns there. The compiled-forest kernel must also hold its acceptance
  # ratio: batched keys/sec >= 2x the compiled single-thread pipeline rate.
  local enforce=1
  [[ "${JOBS}" -le 1 ]] && enforce=0
  python3 - "BENCH_pipeline.json" "${fresh}" "${enforce}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    fresh = json.load(f)
enforce = sys.argv[3] == "1"
def key(c):
    return (c["engine"], c["shards"], c.get("batch_size", 0))
baseline = {key(c): c for c in base["configs"]}
failures = []
for c in fresh["configs"]:
    if c["engine"] == "linear":
        continue  # the gate covers the compiled paths only
    b = baseline.get(key(c))
    if b is None:
        continue  # new config with no committed baseline yet
    ratio = c["ns_per_packet"] / b["ns_per_packet"]
    tag = f'{c["engine"]} shards={c["shards"]} batch={c.get("batch_size", 0)}'
    print(f'{tag}: {b["ns_per_packet"]:.0f} -> {c["ns_per_packet"]:.0f} ns/pkt '
          f'({(ratio - 1) * 100:+.1f}%)')
    if ratio > 1.25:
        failures.append(tag)
fk = fresh.get("forest_kernel", {})
ratio2x = fk.get("batched_vs_pipeline_baseline", 0.0)
print(f'forest kernel: batched {fk.get("compiled_batched_keys_per_sec", 0):.3g} keys/s '
      f'= {ratio2x:.2f}x the compiled single-thread pipeline baseline')
if ratio2x < 2.0:
    failures.append("forest_kernel batched < 2x pipeline baseline")
if failures:
    msg = "PERF REGRESSION: " + "; ".join(failures)
    if enforce:
        raise SystemExit(msg)
    print("WARNING (1-core host, gate advisory):", msg)
else:
    print("perf-gate OK: no compiled path regressed >25%")
EOF
}

release_build() {
  local dir="build-check-bench"
  cmake -B "${dir}" -S . "${GENERATOR_ARGS[@]}" \
    -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "${dir}" -j "${JOBS}" --target "$@"
}

obs_smoke() {
  local dir="build-check-bench"
  echo "=== obs-smoke (Release) ==="
  release_build switch_deployment
  local a="${dir}/obs-run-a" b="${dir}/obs-run-b"
  rm -rf "${a}" "${b}"
  mkdir -p "${a}" "${b}"
  (cd "${a}" && ../examples/switch_deployment >/dev/null)
  (cd "${b}" && ../examples/switch_deployment >/dev/null)
  # Wall-clock measurements live under timing.* by policy (DESIGN.md §4d);
  # every other key must be byte-identical across identical runs.
  python3 - "${a}/switch_deployment_obs.json" "${b}/switch_deployment_obs.json" <<'EOF'
import json, sys
def non_timing(path):
    with open(path) as f:
        j = json.load(f)
    j["scalars"] = {k: v for k, v in j["scalars"].items() if not k.startswith("timing.")}
    j["series"] = {k: v for k, v in j.get("series", {}).items() if not k.startswith("timing.")}
    return json.dumps(j, sort_keys=True)
a, b = non_timing(sys.argv[1]), non_timing(sys.argv[2])
assert '"pipeline.' in a, "snapshot has no pipeline instruments"
assert a == b, "non-timing snapshot keys differ between identical runs"
print("obs-smoke OK: non-timing snapshot byte-identical across runs")
EOF
}

swap_smoke() {
  local dir="build-check-bench"
  echo "=== swap-smoke (Release) ==="
  release_build bench_model_swap
  local a="${dir}/swap-run-a" b="${dir}/swap-run-b"
  rm -rf "${a}" "${b}"
  mkdir -p "${a}" "${b}"
  # The bench itself exits non-zero on any swap-gate violation; run it twice
  # so the observability artifact can be compared across identical runs.
  (cd "${a}" && ../bench/bench_model_swap --smoke --out BENCH_model_swap_smoke.json)
  (cd "${b}" && ../bench/bench_model_swap --smoke --out BENCH_model_swap_smoke.json >/dev/null)
  # Artifact sanity: verdict fields present and true.
  python3 - "${a}/BENCH_model_swap_smoke.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    j = json.load(f)
for key in ("drift_run", "swap_overhead_ns_per_packet",
            "steady_state_allocs_per_packet", "swap_deterministic",
            "hitless_noop_equivalent", "no_packet_loss", "drift_swapped"):
    assert key in j, f"BENCH_model_swap json missing {key!r}"
assert j["swap_deterministic"] is True, "swap replay non-deterministic"
assert j["hitless_noop_equivalent"] is True, "un-triggered loop perturbed the data plane"
assert j["no_packet_loss"] is True, "packet/mirror accounting does not balance"
assert j["drift_swapped"] is True, "drifting workload never published"
assert j["steady_state_allocs_per_packet"] == 0, "swap-enabled steady state allocates"
assert j["drift_run"]["final_version"] == 1 + j["drift_run"]["publishes"], \
    "version clock out of step with publishes"
print("swap-smoke artifact OK:", sys.argv[1])
EOF
  # Swap metrics obey the §4d policy: wall-clock under timing.*, everything
  # else byte-deterministic — including the swap.* counters and the
  # drift miss-rate series published by the swap loop.
  python3 - "${a}/BENCH_model_swap_obs.json" "${b}/BENCH_model_swap_obs.json" <<'EOF'
import json, sys
def non_timing(path):
    with open(path) as f:
        j = json.load(f)
    j["scalars"] = {k: v for k, v in j["scalars"].items() if not k.startswith("timing.")}
    j["series"] = {k: v for k, v in j.get("series", {}).items() if not k.startswith("timing.")}
    return json.dumps(j, sort_keys=True)
a, b = non_timing(sys.argv[1]), non_timing(sys.argv[2])
assert '.swap.' in a, "snapshot has no swap-loop instruments"
assert a == b, "non-timing swap snapshot keys differ between identical runs"
print("swap-smoke OK: non-timing swap snapshot byte-identical across runs")
EOF
}

fleet_smoke() {
  local dir="build-check-bench"
  echo "=== fleet-smoke (Release) ==="
  warn_if_single_core
  release_build bench_fleet
  local a="${dir}/fleet-run-a" b="${dir}/fleet-run-b"
  rm -rf "${a}" "${b}"
  mkdir -p "${a}" "${b}"
  # The bench itself exits non-zero on any fleet-gate violation (N=1
  # divergence, thread-count non-determinism, conservation failure); run it
  # twice so both artifacts can be compared across identical runs.
  (cd "${a}" && ../bench/bench_fleet --smoke --out BENCH_fleet_smoke.json)
  (cd "${b}" && ../bench/bench_fleet --smoke --out BENCH_fleet_smoke.json >/dev/null)
  # Artifact sanity: verdict fields present and true, and every key outside
  # the top-level "timing" object byte-identical between the two runs.
  python3 - "${a}/BENCH_fleet_smoke.json" "${b}/BENCH_fleet_smoke.json" <<'EOF'
import json, sys
def load(path):
    with open(path) as f:
        return json.load(f)
a, b = load(sys.argv[1]), load(sys.argv[2])
for key in ("hardware_threads", "cells", "n1_equivalent",
            "fleet_deterministic", "conserved", "timing"):
    assert key in a, f"BENCH_fleet json missing {key!r}"
assert a["n1_equivalent"] is True, "N=1 fleet diverges from sharded replay"
assert a["fleet_deterministic"] is True, "fleet replay non-deterministic"
assert a["conserved"] is True, "fleet conservation audit failed"
assert len(a["cells"]) > 0, "fleet sweep produced no cells"
sa = json.dumps({k: v for k, v in a.items() if k != "timing"}, sort_keys=True)
sb = json.dumps({k: v for k, v in b.items() if k != "timing"}, sort_keys=True)
assert sa == sb, "non-timing BENCH_fleet keys differ between identical runs"
print("fleet-smoke artifact OK:", sys.argv[1])
EOF
  # Fleet metrics obey the §4d policy: wall-clock under timing.*, everything
  # else byte-deterministic — including the fleet.* aggregates, per-device
  # control gauges, and the backlog / devices-degraded series.
  python3 - "${a}/BENCH_fleet_obs.json" "${b}/BENCH_fleet_obs.json" <<'EOF'
import json, sys
def non_timing(path):
    with open(path) as f:
        j = json.load(f)
    j["scalars"] = {k: v for k, v in j["scalars"].items() if not k.startswith("timing.")}
    j["series"] = {k: v for k, v in j.get("series", {}).items() if not k.startswith("timing.")}
    return json.dumps(j, sort_keys=True)
a, b = non_timing(sys.argv[1]), non_timing(sys.argv[2])
assert '.fleet.' in a, "snapshot has no fleet instruments"
assert 'host.hardware_threads' in a, "snapshot missing host.hardware_threads"
assert a == b, "non-timing fleet snapshot keys differ between identical runs"
print("fleet-smoke OK: non-timing fleet snapshot byte-identical across runs")
EOF
}

ingest_smoke() {
  local dir="build-check-bench"
  echo "=== ingest-smoke (Release) ==="
  warn_if_single_core
  release_build bench_ingest
  local a="${dir}/ingest-run-a" b="${dir}/ingest-run-b"
  rm -rf "${a}" "${b}"
  mkdir -p "${a}" "${b}"
  # The bench itself exits non-zero on any ingest-gate violation (hardened
  # chain diverging from plain replay, thread-count non-determinism in a
  # chaos x shed x shard cell, conservation failure, ring opacity); run it
  # twice so both artifacts can be compared across identical runs.
  (cd "${a}" && ../bench/bench_ingest --smoke --out BENCH_ingest_smoke.json)
  (cd "${b}" && ../bench/bench_ingest --smoke --out BENCH_ingest_smoke.json >/dev/null)
  # Artifact sanity: verdict fields present and true, and every key outside
  # the top-level "timing" object byte-identical between the two runs.
  python3 - "${a}/BENCH_ingest_smoke.json" "${b}/BENCH_ingest_smoke.json" <<'EOF'
import json, sys
def load(path):
    with open(path) as f:
        return json.load(f)
a, b = load(sys.argv[1]), load(sys.argv[2])
for key in ("hardware_threads", "cells", "passthrough_parity",
            "ring_transparent", "deterministic", "conserved", "timing"):
    assert key in a, f"BENCH_ingest json missing {key!r}"
assert a["passthrough_parity"] is True, "hardened chain diverges from plain replay"
assert a["ring_transparent"] is True, "SPSC ring pump altered the packet stream"
assert a["deterministic"] is True, "ingest replay non-deterministic across threads"
assert a["conserved"] is True, "ingest conservation audit failed"
assert len(a["cells"]) > 0, "ingest sweep produced no cells"
for c in a["cells"]:
    assert c["offered"] == c["accepted"] + c["quarantined"], \
        f"cell {c['chaos']}/{c['policy']}/{c['shards']}: offered != accepted + quarantined"
    assert c["accepted"] == c["admitted"] + c["shed"], \
        f"cell {c['chaos']}/{c['policy']}/{c['shards']}: accepted != admitted + shed"
    assert c["admitted"] == c["replayed"], \
        f"cell {c['chaos']}/{c['policy']}/{c['shards']}: admitted != replayed"
sa = json.dumps({k: v for k, v in a.items() if k != "timing"}, sort_keys=True)
sb = json.dumps({k: v for k, v in b.items() if k != "timing"}, sort_keys=True)
assert sa == sb, "non-timing BENCH_ingest keys differ between identical runs"
print("ingest-smoke artifact OK:", sys.argv[1])
EOF
  # Ingest metrics obey the §4d policy: wall-clock under timing.*, everything
  # else byte-deterministic — including the ingest.* counters routed into the
  # instrumented run's observability snapshot.
  python3 - "${a}/BENCH_ingest_obs.json" "${b}/BENCH_ingest_obs.json" <<'EOF'
import json, sys
def non_timing(path):
    with open(path) as f:
        j = json.load(f)
    j["scalars"] = {k: v for k, v in j["scalars"].items() if not k.startswith("timing.")}
    j["series"] = {k: v for k, v in j.get("series", {}).items() if not k.startswith("timing.")}
    return json.dumps(j, sort_keys=True)
a, b = non_timing(sys.argv[1]), non_timing(sys.argv[2])
assert 'ingest.' in a, "snapshot has no ingest instruments"
assert 'host.hardware_threads' in a, "snapshot missing host.hardware_threads"
assert a == b, "non-timing ingest snapshot keys differ between identical runs"
print("ingest-smoke OK: non-timing ingest snapshot byte-identical across runs")
EOF
}

fuzz_smoke() {
  echo "=== fuzz-smoke (ASan + UBSan) ==="
  # Fuzz the untrusted-input parsers under both sanitizers, one at a time
  # (they cannot be combined with the cmake cache wiring). Each target
  # replays its committed seed corpus and then runs seeded deterministic
  # mutations; any crash, sanitizer report, or conservation violation
  # aborts.
  local san
  for san in address undefined; do
    local dir="build-check-fuzz-${san}"
    echo "--- fuzz targets under ${san} sanitizer ---"
    cmake -B "${dir}" -S . "${GENERATOR_ARGS[@]}" -DIGUARD_SANITIZE="${san}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    cmake --build "${dir}" -j "${JOBS}" --target fuzz_trace_reader fuzz_digest_decode
    "${dir}/fuzz/fuzz_trace_reader" --iters 2048 --seed 7 fuzz/corpus/trace_reader
    "${dir}/fuzz/fuzz_digest_decode" --iters 2048 --seed 7 fuzz/corpus/digest
  done
}

daemon_smoke() {
  local dir="build-check-bench"
  echo "=== daemon-smoke (Release) ==="
  release_build iguardd
  local work="${dir}/daemon-smoke"
  rm -rf "${work}"
  mkdir -p "${work}"
  "${dir}/src/daemon/iguardd" --gen-trace "${work}/trace.csv"
  python3 - "${dir}/src/daemon/iguardd" "${work}/trace.csv" <<'EOF'
import re, signal, subprocess, sys, time, urllib.request

binary, trace = sys.argv[1], sys.argv[2]
proc = subprocess.Popen(
    [binary, "--trace", trace, "--loop", "3", "--shards", "2", "--metrics-port", "0"],
    stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
line = proc.stdout.readline()
m = re.search(r"127\.0\.0\.1:(\d+)/metrics", line)
assert m, f"no endpoint line: {line!r}"
url = f"http://127.0.0.1:{m.group(1)}"

def scrape(path="/metrics"):
    with urllib.request.urlopen(url + path, timeout=5) as r:
        return r.read().decode()

def non_timing(text):
    return "\n".join(l for l in text.splitlines() if "iguard_timing_" not in l)

# Wait for the finite replay to finish; the endpoint outlives it so the
# completed run's state can be scraped at rest.
deadline = time.time() + 60
while time.time() < deadline:
    if "iguard_daemon_loops 3\n" in scrape():
        break
    time.sleep(0.1)
else:
    proc.kill()
    raise SystemExit("daemon never completed 3 loops")

a, b = scrape(), scrape()
assert non_timing(a) == non_timing(b), "non-timing exposition differs between scrapes"
assert "iguard_daemon_pushed" in a, "daemon counters missing from exposition"
assert "iguard_daemon_ingest_offered" in a, "ingest counters missing from exposition"
alerts = scrape("/alerts")
assert "kind=blacklist_install" in alerts, f"no install alerts:\n{alerts[:400]}"
assert scrape("/healthz") == "ok\n", "healthz not ok"

proc.send_signal(signal.SIGTERM)
out, _ = proc.communicate(timeout=30)
assert proc.returncode == 0, f"iguardd exited {proc.returncode}:\n{out}"
assert "conservation audit: ok" in out, f"no clean audit:\n{out}"
print("daemon-smoke OK: deterministic exposition, alert stream, clean SIGTERM drain")
EOF
  # The same serve-and-drain loop must be clean under ASan.
  local asan_dir="build-check-daemon-asan"
  cmake -B "${asan_dir}" -S . "${GENERATOR_ARGS[@]}" -DIGUARD_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${asan_dir}" -j "${JOBS}" --target iguardd
  "${asan_dir}/src/daemon/iguardd" --trace "${work}/trace.csv" --loop 2 --shards 2 \
    | grep -q "conservation audit: ok"
  echo "daemon-smoke OK under ASan"
}

# The committed paper artifacts regenerated by --csv-drift, with the bench
# that writes each. ablation.csv / consistency.csv are sweep-style artifacts
# outside the fig*/table*/b* set and are not gated.
CSV_BENCHES=(
  "fig2_fig7_path_lengths.csv:bench_fig2_path_overlap"
  "fig5_fig8_cpu_detection.csv:bench_fig5_cpu_detection"
  "fig6_fig9_testbed_detection.csv:bench_fig6_testbed_detection"
  "fig10_candidates.csv:bench_fig10_candidates"
  "table1_resources.csv:bench_table1_resources"
  "table2_adversarial.csv:bench_table2_adversarial"
  "b1_throughput_latency.csv:bench_b1_throughput_latency"
  "b2_control_plane.csv:bench_b2_control_plane"
)

csv_drift() {
  local dir="build-check-bench"
  echo "=== csv-drift (Release) ==="
  local targets=()
  for entry in "${CSV_BENCHES[@]}"; do targets+=("${entry#*:}"); done
  release_build "${targets[@]}"
  local work="${dir}/csv-drift"
  rm -rf "${work}"
  mkdir -p "${work}"
  local drift=0
  for entry in "${CSV_BENCHES[@]}"; do
    local csv="${entry%%:*}" bench="${entry#*:}"
    (cd "${work}" && "../bench/${bench}" >/dev/null)
    if diff -u "${csv}" "${work}/${csv}"; then
      echo "ok: ${csv}"
    else
      echo "DRIFT: ${csv} (regenerate with ${bench} and commit)"
      drift=1
    fi
  done
  [[ "${drift}" == 0 ]] || { echo "=== csv drift detected ==="; exit 1; }
}

if [[ "${1:-}" == "--bench-smoke" ]]; then
  bench_smoke
  echo "=== bench smoke passed ==="
  exit 0
fi
if [[ "${1:-}" == "--perf-gate" ]]; then
  perf_gate
  echo "=== perf gate passed ==="
  exit 0
fi
if [[ "${1:-}" == "--obs-smoke" ]]; then
  obs_smoke
  echo "=== obs smoke passed ==="
  exit 0
fi
if [[ "${1:-}" == "--swap-smoke" ]]; then
  swap_smoke
  echo "=== swap smoke passed ==="
  exit 0
fi
if [[ "${1:-}" == "--fleet-smoke" ]]; then
  fleet_smoke
  echo "=== fleet smoke passed ==="
  exit 0
fi
if [[ "${1:-}" == "--ingest-smoke" ]]; then
  ingest_smoke
  echo "=== ingest smoke passed ==="
  exit 0
fi
if [[ "${1:-}" == "--fuzz-smoke" ]]; then
  fuzz_smoke
  echo "=== fuzz smoke passed ==="
  exit 0
fi
if [[ "${1:-}" == "--daemon-smoke" ]]; then
  daemon_smoke
  echo "=== daemon smoke passed ==="
  exit 0
fi
if [[ "${1:-}" == "--csv-drift" ]]; then
  csv_drift
  echo "=== csv drift gate passed ==="
  exit 0
fi

run_suite plain ""
if [[ "${1:-}" != "--fast" ]]; then
  run_suite ubsan undefined
  run_suite asan address
  run_suite tsan thread
fi
echo "=== all checks passed ==="
