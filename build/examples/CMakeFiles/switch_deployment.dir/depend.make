# Empty dependencies file for switch_deployment.
# This may be replaced when dependencies are built.
