// The parallelism layer (ml/parallel.hpp) and its central promise: training
// and scoring results are bit-identical at every thread count, because each
// task draws from an RNG stream that is a pure function of (seed, index).
#include "ml/parallel.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/ae_ensemble.hpp"
#include "core/guided_iforest.hpp"

namespace iguard {
namespace {

TEST(ResolveThreads, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(ml::resolve_threads(0), 1u);
  EXPECT_EQ(ml::resolve_threads(1), 1u);
  EXPECT_EQ(ml::resolve_threads(3), 3u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ml::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr std::size_t n = 10000;
  std::vector<int> hits(n, 0);  // each task owns its own element: no race
  pool.parallel_for(n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ml::ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> hits(17, 0);
    pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(ThreadPool, EmptyAndSingleTaskRunInline) {
  ml::ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "no tasks expected"; });
  int calls = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, RethrowsFirstTaskException) {
  ml::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i % 7 == 0) throw std::runtime_error("task failed");
                                 }),
               std::runtime_error);
  // The pool survives a throwing job.
  std::vector<int> hits(8, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(TaskRng, StreamsAreStableAndDecorrelated) {
  // Same (seed, index) -> same stream, regardless of when it is created.
  ml::Rng a = ml::task_rng(42, 7);
  ml::Rng b = ml::task_rng(42, 7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.engine()(), b.engine()());
  // Adjacent indices give unrelated first draws.
  ml::Rng c = ml::task_rng(42, 8);
  EXPECT_NE(ml::task_rng(42, 7).engine()(), c.engine()());
}

// --- bit-identical fits across thread counts ---------------------------------

// Small 2-D benign manifold (y = x) shared by the determinism tests.
ml::Matrix manifold(std::size_t rows, std::uint64_t seed) {
  ml::Rng rng(seed);
  ml::Matrix x(0, 2);
  for (std::size_t i = 0; i < rows; ++i) {
    const double t = rng.normal(0.0, 1.0);
    const double row[2] = {t, t + rng.normal(0.0, 0.1)};
    x.push_row(row);
  }
  return x;
}

core::AeEnsembleConfig small_teacher_config(std::size_t num_threads) {
  core::AeEnsembleConfig cfg;
  cfg.ensemble_size = 2;
  cfg.base.encoder_hidden = {4, 1};
  cfg.base.epochs = 15;
  cfg.num_threads = num_threads;
  return cfg;
}

TEST(ParallelDeterminism, AeEnsembleFitMatchesSequential) {
  const ml::Matrix train = manifold(300, 11);
  core::AeEnsemble seq, par;
  {
    ml::Rng rng(5);
    seq.fit(train, small_teacher_config(1), rng);
  }
  {
    ml::Rng rng(5);
    par.fit(train, small_teacher_config(4), rng);
  }
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t u = 0; u < seq.size(); ++u) {
    EXPECT_EQ(seq.member_threshold(u), par.member_threshold(u));
    for (std::size_t i = 0; i < train.rows(); i += 37) {
      EXPECT_EQ(seq.reconstruction_error(u, train.row(i)),
                par.reconstruction_error(u, train.row(i)));
    }
  }
}

TEST(ParallelDeterminism, BatchedScoringMatchesPerRow) {
  const ml::Matrix train = manifold(300, 11);
  core::AeEnsemble ens;
  ml::Rng rng(5);
  ens.fit(train, small_teacher_config(1), rng);

  const ml::Matrix probe = manifold(64, 99);
  const ml::Matrix e1 = ens.reconstruction_errors(probe, 1);
  const ml::Matrix e4 = ens.reconstruction_errors(probe, 4);
  const auto p4 = ens.predict_batch(probe, 4);
  ASSERT_EQ(e1.rows(), probe.rows());
  ASSERT_EQ(e1.cols(), ens.size());
  for (std::size_t i = 0; i < probe.rows(); ++i) {
    for (std::size_t u = 0; u < ens.size(); ++u) {
      EXPECT_EQ(e1(i, u), ens.reconstruction_error(u, probe.row(i)));
      EXPECT_EQ(e1(i, u), e4(i, u));
    }
    EXPECT_EQ(p4[i], ens.predict(probe.row(i)));
  }
}

TEST(ParallelDeterminism, GuidedForestFitIsThreadCountInvariant) {
  const ml::Matrix train = manifold(500, 11);
  core::AeEnsemble teacher;
  {
    ml::Rng rng(5);
    teacher.fit(train, small_teacher_config(1), rng);
  }

  core::GuidedForestConfig base;
  base.num_trees = 4;
  base.subsample = 128;
  base.augment = 32;

  auto fit_with = [&](std::size_t threads) {
    core::GuidedForestConfig cfg = base;
    cfg.num_threads = threads;
    core::GuidedIsolationForest f(cfg);
    ml::Rng rng(99);
    f.fit(train, teacher, rng);
    return f;
  };
  const auto f1 = fit_with(1);
  const auto f8 = fit_with(8);

  ASSERT_EQ(f1.trees().size(), f8.trees().size());
  for (std::size_t t = 0; t < f1.trees().size(); ++t) {
    const auto& na = f1.trees()[t].nodes;
    const auto& nb = f8.trees()[t].nodes;
    ASSERT_EQ(na.size(), nb.size()) << "tree " << t;
    for (std::size_t i = 0; i < na.size(); ++i) {
      SCOPED_TRACE("tree " + std::to_string(t) + " node " + std::to_string(i));
      EXPECT_EQ(na[i].feature, nb[i].feature);
      EXPECT_EQ(na[i].threshold, nb[i].threshold);  // bit-identical, not NEAR
      EXPECT_EQ(na[i].left, nb[i].left);
      EXPECT_EQ(na[i].right, nb[i].right);
      EXPECT_EQ(na[i].depth, nb[i].depth);
      EXPECT_EQ(na[i].label, nb[i].label);
      EXPECT_EQ(na[i].train_count, nb[i].train_count);
      EXPECT_EQ(na[i].leaf_re, nb[i].leaf_re);
      EXPECT_EQ(na[i].box_lo, nb[i].box_lo);
      EXPECT_EQ(na[i].box_hi, nb[i].box_hi);
    }
  }
  EXPECT_EQ(f1.feature_min(), f8.feature_min());
  EXPECT_EQ(f1.feature_max(), f8.feature_max());
}

}  // namespace
}  // namespace iguard
