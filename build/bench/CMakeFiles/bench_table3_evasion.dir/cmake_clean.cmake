file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_evasion.dir/bench_table3_evasion.cpp.o"
  "CMakeFiles/bench_table3_evasion.dir/bench_table3_evasion.cpp.o.d"
  "bench_table3_evasion"
  "bench_table3_evasion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_evasion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
