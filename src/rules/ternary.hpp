// Range -> ternary (prefix) expansion. TCAMs match value/mask entries, not
// ranges, so each integer range is covered by a minimal set of aligned
// power-of-two blocks (prefixes); a multi-field range rule expands to the
// cross product of its per-field covers. The expansion count is what the
// RMT resource model charges against the TCAM budget — and why iGuard's
// fewer/coarser leaves translate into the lower TCAM use of Table 1.
#pragma once

#include <cstdint>
#include <vector>

#include "rules/range_rule.hpp"

namespace iguard::rules {

/// One TCAM word per field: matches v iff (v & mask) == value.
struct TernaryMatch {
  std::uint32_t value = 0;
  std::uint32_t mask = 0;

  bool matches(std::uint32_t v) const { return (v & mask) == value; }
  bool operator==(const TernaryMatch&) const = default;
};

/// Minimal prefix cover of [lo, hi] within a `bits`-wide domain.
std::vector<TernaryMatch> expand_range(std::uint32_t lo, std::uint32_t hi, unsigned bits);

/// Number of prefixes expand_range would produce (no allocation).
std::size_t expansion_count(std::uint32_t lo, std::uint32_t hi, unsigned bits);

/// TCAM entries consumed by one multi-field range rule (cross product).
std::size_t tcam_entries(const RangeRule& rule, unsigned bits);

/// Total TCAM entries for a rule set.
std::size_t tcam_entries(const std::vector<RangeRule>& rules, unsigned bits);

}  // namespace iguard::rules
