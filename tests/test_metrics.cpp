#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "ml/rng.hpp"

namespace iguard::eval {
namespace {

TEST(Confusion, CountsCells) {
  const std::vector<int> truth = {1, 1, 0, 0, 1, 0};
  const std::vector<int> pred = {1, 0, 0, 1, 1, 0};
  const Confusion c = confusion(truth, pred);
  EXPECT_EQ(c.tp, 2u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 2u);
  EXPECT_NEAR(c.accuracy(), 4.0 / 6.0, 1e-12);
}

TEST(MacroF1, PerfectPrediction) {
  const std::vector<int> t = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(macro_f1(t, t), 1.0);
}

TEST(MacroF1, HandComputed) {
  // tp=2 fn=1 fp=1 tn=2: F1(1) = 2*2/(4+1+1)=2/3; F1(0) = 2*2/(4+1+1)=2/3.
  const std::vector<int> truth = {1, 1, 0, 0, 1, 0};
  const std::vector<int> pred = {1, 0, 0, 1, 1, 0};
  EXPECT_NEAR(macro_f1(truth, pred), 2.0 / 3.0, 1e-12);
}

TEST(MacroF1, AllOnePredictionPenalisesOtherClass) {
  const std::vector<int> truth = {1, 1, 0, 0};
  const std::vector<int> pred = {1, 1, 1, 1};
  // F1(1) = 2*2/(4+2) = 2/3, F1(0) = 0 -> macro 1/3.
  EXPECT_NEAR(macro_f1(truth, pred), 1.0 / 3.0, 1e-12);
}

TEST(RocAuc, PerfectSeparation) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<double> score = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(roc_auc(truth, score), 1.0);
}

TEST(RocAuc, ReversedScoresGiveZero) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<double> score = {0.9, 0.8, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(roc_auc(truth, score), 0.0);
}

TEST(RocAuc, ConstantScoresGiveHalf) {
  const std::vector<int> truth = {0, 1, 0, 1};
  const std::vector<double> score = {0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(roc_auc(truth, score), 0.5);
}

TEST(RocAuc, HandComputedWithTie) {
  // scores: pos {0.8, 0.5}, neg {0.5, 0.2}. Pairs: (0.8>0.5)=1, (0.8>0.2)=1,
  // (0.5=0.5)=0.5, (0.5>0.2)=1 -> AUC = 3.5/4.
  const std::vector<int> truth = {1, 1, 0, 0};
  const std::vector<double> score = {0.8, 0.5, 0.5, 0.2};
  EXPECT_NEAR(roc_auc(truth, score), 3.5 / 4.0, 1e-12);
}

TEST(RocAuc, InvariantToMonotoneTransform) {
  const std::vector<int> truth = {0, 1, 0, 1, 1, 0, 1, 0};
  std::vector<double> score = {0.1, 0.7, 0.3, 0.9, 0.6, 0.2, 0.4, 0.5};
  const double base = roc_auc(truth, score);
  for (auto& s : score) s = std::exp(3.0 * s);  // strictly increasing
  EXPECT_NEAR(roc_auc(truth, score), base, 1e-12);
}

TEST(PrAuc, PerfectSeparation) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<double> score = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(pr_auc(truth, score), 1.0);
}

TEST(PrAuc, NoPositivesIsZero) {
  const std::vector<int> truth = {0, 0, 0};
  const std::vector<double> score = {0.1, 0.2, 0.3};
  EXPECT_DOUBLE_EQ(pr_auc(truth, score), 0.0);
}

TEST(PrAuc, HandComputed) {
  // Ranking desc: (0.9,pos) (0.8,neg) (0.7,pos) (0.1,neg).
  // AP = 1/2*(1/1) + 1/2*(2/3) = 0.8333...
  const std::vector<int> truth = {1, 0, 1, 0};
  const std::vector<double> score = {0.9, 0.8, 0.7, 0.1};
  EXPECT_NEAR(pr_auc(truth, score), (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(EvaluateScores, ThresholdSplitsPredictions) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<double> score = {0.1, 0.4, 0.6, 0.9};
  const auto m = evaluate_scores(truth, score, 0.5);
  EXPECT_DOUBLE_EQ(m.macro_f1, 1.0);
  EXPECT_DOUBLE_EQ(m.roc_auc, 1.0);
  EXPECT_DOUBLE_EQ(m.pr_auc, 1.0);
}

TEST(Metrics, SizeMismatchThrows) {
  const std::vector<int> truth = {0, 1};
  const std::vector<double> score = {0.1};
  EXPECT_THROW(roc_auc(truth, score), std::invalid_argument);
  EXPECT_THROW(pr_auc(truth, score), std::invalid_argument);
}

// --- best_f1_threshold: O(n log n) sweep vs the original O(n*d) scan ------

/// The pre-optimisation implementation, kept verbatim as the reference: for
/// every candidate threshold it re-labels all n samples and recomputes
/// macro-F1 from scratch. The production sweep must match it bit for bit.
double best_f1_threshold_reference(std::span<const int> truth, std::span<const double> score) {
  std::vector<double> s(score.begin(), score.end());
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());

  std::vector<int> pred(truth.size());
  double best_thr = s.front() - 1.0;
  double best = -1.0;
  auto try_thr = [&](double thr) {
    for (std::size_t i = 0; i < truth.size(); ++i) pred[i] = score[i] > thr ? 1 : 0;
    const double f1 = macro_f1(truth, pred);
    if (f1 > best) {
      best = f1;
      best_thr = thr;
    }
  };
  try_thr(s.front() - 1.0);
  for (std::size_t i = 0; i + 1 < s.size(); ++i) try_thr(0.5 * (s[i] + s[i + 1]));
  try_thr(s.back() + 1.0);
  return best_thr;
}

TEST(BestF1Threshold, HandComputedSeparation) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<double> score = {0.1, 0.4, 0.6, 0.9};
  const double thr = best_f1_threshold(truth, score);
  EXPECT_DOUBLE_EQ(thr, 0.5);  // midpoint of the separating gap
  EXPECT_DOUBLE_EQ(evaluate_scores(truth, score, thr).macro_f1, 1.0);
}

TEST(BestF1Threshold, MatchesReferenceOnRandomizedInputs) {
  ml::Rng rng(0xF1F1u);
  std::size_t cases = 0;
  // Sweep sizes, class skews, and score distributions — including heavy
  // ties (few distinct quantised levels), negative scores, huge-magnitude
  // scores where `min - 1.0 == min` in double arithmetic (the FP edge the
  // sweep pointer must replicate), and single-class labels.
  for (int rep = 0; rep < 300; ++rep) {
    for (const int dist : {0, 1, 2, 3}) {
      const std::size_t n = 1 + rng.index(40);
      std::vector<int> truth(n);
      std::vector<double> score(n);
      const double pos_rate = rng.uniform(0.0, 1.0);
      for (std::size_t i = 0; i < n; ++i) {
        truth[i] = rng.uniform(0.0, 1.0) < pos_rate ? 1 : 0;
        switch (dist) {
          case 0:  // continuous, mildly class-separated
            score[i] = rng.uniform(0.0, 1.0) + 0.3 * truth[i];
            break;
          case 1:  // heavy ties: 4 distinct levels
            score[i] = static_cast<double>(rng.index(4));
            break;
          case 2:  // negative and positive
            score[i] = rng.uniform(-5.0, 5.0);
            break;
          default:  // huge magnitudes: min - 1.0 rounds back to min
            score[i] = 1e300 * (1.0 + 0.5 * static_cast<double>(rng.index(3)));
            break;
        }
      }
      const double fast = best_f1_threshold(truth, score);
      const double ref = best_f1_threshold_reference(truth, score);
      ASSERT_EQ(fast, ref) << "case " << cases << " dist " << dist << " n " << n;
      ++cases;
    }
  }
  EXPECT_GE(cases, 1000u);
}

}  // namespace
}  // namespace iguard::eval
