#include "ml/xmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace iguard::ml {

KMeansResult kmeans(const Matrix& x, std::size_t k, Rng& rng, std::size_t max_iter) {
  const std::size_t n = x.rows(), m = x.cols();
  if (n == 0 || k == 0) throw std::invalid_argument("kmeans: empty input");
  k = std::min(k, n);

  // k-means++ seeding.
  KMeansResult res;
  res.centroids = Matrix(k, m);
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  std::size_t first = rng.index(n);
  std::copy(x.row(first).begin(), x.row(first).end(), res.centroids.row(0).begin());
  for (std::size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], sq_dist(x.row(i), res.centroids.row(c - 1)));
      total += d2[i];
    }
    double pick = rng.uniform(0.0, total > 0.0 ? total : 1.0);
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      pick -= d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    std::copy(x.row(chosen).begin(), x.row(chosen).end(), res.centroids.row(c).begin());
  }

  res.assign.assign(n, 0);
  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best = 0;
      double bd = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = sq_dist(x.row(i), res.centroids.row(c));
        if (d < bd) {
          bd = d;
          best = c;
        }
      }
      if (res.assign[i] != best) {
        res.assign[i] = best;
        changed = true;
      }
    }
    Matrix sums(k, m);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      axpy(1.0, x.row(i), sums.row(res.assign[i]));
      ++counts[res.assign[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep old centroid for empty clusters
      auto cr = res.centroids.row(c);
      auto sr = sums.row(c);
      for (std::size_t j = 0; j < m; ++j) cr[j] = sr[j] / static_cast<double>(counts[c]);
    }
    if (!changed && iter > 0) break;
  }

  res.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    res.inertia += sq_dist(x.row(i), res.centroids.row(res.assign[i]));
  }
  return res;
}

double kmeans_bic(const Matrix& x, const KMeansResult& fit) {
  const double n = static_cast<double>(x.rows());
  const double m = static_cast<double>(x.cols());
  const double k = static_cast<double>(fit.centroids.rows());
  if (x.rows() <= fit.centroids.rows()) return -std::numeric_limits<double>::infinity();

  // MLE of the shared spherical variance.
  const double variance = std::max(fit.inertia / (m * (n - k)), 1e-12);

  std::vector<std::size_t> counts(fit.centroids.rows(), 0);
  for (std::size_t a : fit.assign) ++counts[a];

  double loglik = 0.0;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    const double nc = static_cast<double>(counts[c]);
    if (nc <= 0.0) continue;
    loglik += nc * std::log(nc / n) - nc * m / 2.0 * std::log(2.0 * M_PI * variance) -
              (nc - 1.0) * m / 2.0;
  }
  const double params = k * (m + 1.0);
  return loglik - params / 2.0 * std::log(n);
}

void XMeans::fit(const Matrix& benign, Rng& rng) {
  if (benign.rows() < 4) throw std::invalid_argument("XMeans::fit: too few rows");
  Matrix z = scaler_.fit_transform(benign);
  const std::size_t n = z.rows(), m = z.cols();

  KMeansResult current = kmeans(z, cfg_.k_min, rng);
  bool improved = true;
  while (improved && current.centroids.rows() < cfg_.k_max) {
    improved = false;
    Matrix next_centroids;
    // Try to split each cluster in two; keep the split when local BIC says so.
    for (std::size_t c = 0; c < current.centroids.rows(); ++c) {
      std::vector<std::size_t> members;
      for (std::size_t i = 0; i < n; ++i)
        if (current.assign[i] == c) members.push_back(i);
      if (members.size() < 4) {
        if (next_centroids.cols() == 0) next_centroids = Matrix(0, m);
        next_centroids.push_row(current.centroids.row(c));
        continue;
      }
      Matrix local = z.gather(members);
      KMeansResult one;
      one.centroids = Matrix(0, m);
      one.centroids.push_row(current.centroids.row(c));
      one.assign.assign(members.size(), 0);
      one.inertia = 0.0;
      for (std::size_t i = 0; i < members.size(); ++i)
        one.inertia += sq_dist(local.row(i), one.centroids.row(0));
      KMeansResult two = kmeans(local, 2, rng);
      if (next_centroids.cols() == 0) next_centroids = Matrix(0, m);
      if (two.centroids.rows() == 2 && kmeans_bic(local, two) > kmeans_bic(local, one)) {
        next_centroids.push_row(two.centroids.row(0));
        next_centroids.push_row(two.centroids.row(1));
        improved = true;
      } else {
        next_centroids.push_row(current.centroids.row(c));
      }
    }
    if (improved) {
      // Re-run global k-means seeded implicitly by the new k.
      current = kmeans(z, std::min<std::size_t>(next_centroids.rows(), cfg_.k_max), rng);
    }
  }

  centroids_ = current.centroids;
  radius_.assign(centroids_.rows(), 0.0);
  std::vector<std::size_t> counts(centroids_.rows(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    radius_[current.assign[i]] += sq_dist(z.row(i), centroids_.row(current.assign[i]));
    ++counts[current.assign[i]];
  }
  for (std::size_t c = 0; c < radius_.size(); ++c) {
    radius_[c] = counts[c] > 0 ? std::sqrt(radius_[c] / static_cast<double>(counts[c])) : 1.0;
    radius_[c] = std::max(radius_[c], 1e-6);
  }

  std::vector<double> scores(benign.rows());
  for (std::size_t i = 0; i < benign.rows(); ++i) scores[i] = score(benign.row(i));
  std::sort(scores.begin(), scores.end());
  const std::size_t qi = std::min(
      scores.size() - 1,
      static_cast<std::size_t>(cfg_.threshold_quantile * static_cast<double>(scores.size())));
  threshold_ = scores[qi];
}

double XMeans::score(std::span<const double> x) {
  if (!scaler_.fitted()) throw std::logic_error("XMeans: not fitted");
  z_.resize(x.size());
  scaler_.transform_row(x, z_);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids_.rows(); ++c) {
    best = std::min(best, std::sqrt(sq_dist(centroids_.row(c), z_)) / radius_[c]);
  }
  return best;
}

}  // namespace iguard::ml
