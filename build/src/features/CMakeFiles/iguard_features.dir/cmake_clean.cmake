file(REMOVE_RECURSE
  "CMakeFiles/iguard_features.dir/flow_features.cpp.o"
  "CMakeFiles/iguard_features.dir/flow_features.cpp.o.d"
  "libiguard_features.a"
  "libiguard_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iguard_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
