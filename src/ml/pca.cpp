#include "ml/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace iguard::ml {

SymmetricEigen jacobi_eigen(const Matrix& sym, std::size_t max_sweeps) {
  if (sym.rows() != sym.cols()) throw std::invalid_argument("jacobi_eigen: not square");
  const std::size_t n = sym.rows();
  Matrix a = sym;
  Matrix v(n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    if (off < 1e-20) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(a(p, q)) < 1e-15) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return a(i, i) > a(j, j); });

  SymmetricEigen out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    out.values[r] = a(order[r], order[r]);
    for (std::size_t k = 0; k < n; ++k) out.vectors(r, k) = v(k, order[r]);
  }
  return out;
}

void PcaDetector::fit(const Matrix& benign, Rng& /*rng*/) {
  if (benign.rows() < 2) throw std::invalid_argument("PcaDetector::fit: need >= 2 rows");
  Matrix z = scaler_.fit_transform(benign);
  const std::size_t n = z.rows(), m = z.cols();

  Matrix cov(m, m);
  for (std::size_t i = 0; i < n; ++i) {
    auto r = z.row(i);
    for (std::size_t a = 0; a < m; ++a)
      for (std::size_t b = a; b < m; ++b) cov(a, b) += r[a] * r[b];
  }
  for (std::size_t a = 0; a < m; ++a)
    for (std::size_t b = a; b < m; ++b) {
      cov(a, b) /= static_cast<double>(n - 1);
      cov(b, a) = cov(a, b);
    }

  auto eig = jacobi_eigen(cov);
  const double total = std::accumulate(eig.values.begin(), eig.values.end(), 0.0,
                                       [](double s, double v) { return s + std::max(v, 0.0); });
  double kept = 0.0;
  std::size_t k = 0;
  while (k < m && (total <= 0.0 || kept / total < cfg_.variance_to_keep)) {
    kept += std::max(eig.values[k], 0.0);
    ++k;
  }
  k = std::max<std::size_t>(k, 1);

  components_ = Matrix(k, m);
  for (std::size_t r = 0; r < k; ++r) {
    auto src = eig.vectors.row(r);
    std::copy(src.begin(), src.end(), components_.row(r).begin());
  }

  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) scores[i] = score(benign.row(i));
  std::sort(scores.begin(), scores.end());
  const std::size_t qi = std::min(
      scores.size() - 1,
      static_cast<std::size_t>(cfg_.threshold_quantile * static_cast<double>(scores.size())));
  threshold_ = scores[qi];
}

double PcaDetector::score(std::span<const double> x) {
  if (!scaler_.fitted()) throw std::logic_error("PcaDetector: not fitted");
  const std::size_t m = x.size(), k = components_.rows();
  z_.resize(m);
  scaler_.transform_row(x, z_);
  proj_.assign(m, 0.0);
  for (std::size_t r = 0; r < k; ++r) {
    const double coeff = dot(components_.row(r), z_);
    axpy(coeff, components_.row(r), proj_);
  }
  double resid = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    const double d = z_[j] - proj_[j];
    resid += d * d;
  }
  return std::sqrt(resid);
}

}  // namespace iguard::ml
