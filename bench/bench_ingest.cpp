// Hardened-ingest benchmark and robustness gate (DESIGN.md §4g): drives the
// full ingest chain — chaos mangler -> TraceReader -> overload gate ->
// sharded replay — across a chaos x shed-policy x shard-count sweep, and
// exits non-zero when any gate fails:
//
//   1. pass-through parity — hardening on with chaos and overload off is
//      byte-identical to the plain sharded replay (full SimStats equality
//      plus obs non-"timing." key parity), both for the in-memory trace and
//      for its CSV round trip through the untrusted-bytes entry;
//   2. determinism        — every sweep cell is bit-identical between
//      replay worker thread counts 1 and 4 (replay stats, ingest, chaos,
//      and overload accounting);
//   3. conservation       — in every cell, every offered record is
//      accounted for exactly once: accepted-and-replayed, shed, or
//      quarantined (audit_ingest_conservation);
//   4. ring transparency  — pumping the trace through the SPSC ring
//      preserves content and order exactly (pushed == popped).
//
// Per-cell accounting lands in BENCH_ingest.json; wall-clock throughput
// under the top-level "timing" object, which scripts/check.sh
// --ingest-smoke strips before comparing two runs byte for byte. Also
// writes BENCH_ingest_obs.json (ingest.* counters next to the replay's
// pipeline metrics).
//
//   bench_ingest [--smoke] [--out <path>]
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/replay.hpp"
#include "ml/rng.hpp"
#include "obs/metrics.hpp"

using namespace iguard;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Mixed benign/malicious workload (bench_fleet's churn shape): enough
/// distinct flows that flow-hash shedding bites, enough rate that a finite
/// drain saturates.
traffic::Trace make_trace(std::size_t flows, std::size_t packets_per_flow, ml::Rng& rng) {
  traffic::Trace t;
  for (std::size_t f = 0; f < flows; ++f) {
    const bool mal = f % 3 == 0;
    traffic::FiveTuple ft{0x0A000000u + static_cast<std::uint32_t>(f),
                          0x0B000000u + static_cast<std::uint32_t>(f % 13),
                          static_cast<std::uint16_t>(1024 + f % 40000), 443,
                          traffic::kProtoTcp};
    for (std::size_t i = 0; i < packets_per_flow; ++i) {
      traffic::Packet p;
      p.ts = 0.0008 * static_cast<double>(f) + 0.05 * static_cast<double>(i) +
             rng.uniform(0.0, 0.0005);
      p.ft = i % 2 == 0 ? ft : ft.reversed();
      p.length = mal ? static_cast<std::uint16_t>(1200 + rng.index(200))
                     : static_cast<std::uint16_t>(80 + rng.index(60));
      p.malicious = mal;
      t.packets.push_back(p);
    }
  }
  t.sort_by_time();
  return t;
}

switchsim::PipelineConfig pipe_cfg() {
  switchsim::PipelineConfig cfg;
  cfg.packet_threshold_n = 4;
  cfg.idle_timeout_delta = 10.0;
  return cfg;
}

struct ChaosProfile {
  const char* name;
  switchsim::FaultConfig faults;
};

std::vector<ChaosProfile> chaos_profiles() {
  switchsim::FaultConfig off;  // defaults: everything off

  switchsim::FaultConfig mangled;
  mangled.record_truncate_rate = 0.05;
  mangled.record_corrupt_rate = 0.05;
  mangled.batch_duplicate_rate = 0.10;
  mangled.batch_reorder_rate = 0.10;

  switchsim::FaultConfig burst = mangled;
  burst.record_truncate_rate = 0.02;
  burst.record_corrupt_rate = 0.02;
  burst.bursts.push_back({0.05, 0.25, 3.0});
  burst.bursts.push_back({0.40, 0.10, 2.0});

  return {{"off", off}, {"mangled", mangled}, {"burst", burst}};
}

struct ShedProfile {
  const char* name;
  io::OverloadConfig overload;
};

std::vector<ShedProfile> shed_profiles(double offered_pps) {
  io::OverloadConfig off;  // disabled: pass-through

  io::OverloadConfig newest;
  newest.enabled = true;
  newest.queue_capacity = 64;
  newest.drain_rate_pps = offered_pps * 0.4;  // force saturation
  newest.policy = io::ShedPolicy::kDropNewest;

  io::OverloadConfig oldest = newest;
  oldest.policy = io::ShedPolicy::kDropOldest;

  io::OverloadConfig flow = newest;
  flow.policy = io::ShedPolicy::kFlowHash;
  flow.flow_shed_fraction = 0.5;

  return {{"off", off}, {"drop_newest", newest}, {"drop_oldest", oldest}, {"flow_hash", flow}};
}

std::string json_bool(bool b) { return b ? "true" : "false"; }

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_ingest.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
    else {
      std::cerr << "usage: bench_ingest [--smoke] [--out <path>]\n";
      return 2;
    }
  }

  // --- workload -------------------------------------------------------------
  ml::Rng rng(0x1A9E57ull);
  const std::size_t flows = smoke ? 90 : 360;
  const traffic::Trace trace = make_trace(flows, 8, rng);
  const double span_s = trace.packets.back().ts - trace.packets.front().ts;
  const double offered_pps = static_cast<double>(trace.size()) / span_s;

  ml::Matrix fake(2, switchsim::kSwitchFlFeatures);
  for (std::size_t j = 0; j < switchsim::kSwitchFlFeatures; ++j) {
    fake(0, j) = 0.0;
    fake(1, j) = 1e6;
  }
  rules::Quantizer quant{16};
  quant.fit(fake);
  core::VoteWhitelist wl;
  wl.tree_count = 1;
  std::vector<rules::FieldRange> box(switchsim::kSwitchFlFeatures, {0, quant.domain_max()});
  box[5] = {0, quant.quantize_value(5, 600.0)};
  wl.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});
  switchsim::DeployedModel dm;
  dm.fl_tables = &wl;
  dm.fl_quantizer = &quant;

  // --- gate 1: hardening on, chaos/overload off == plain replay -------------
  bool passthrough_parity = true;
  {
    switchsim::ReplayConfig rc;
    rc.shards = 2;
    obs::Registry reg_plain, reg_hard;
    auto cfg = pipe_cfg();
    cfg.metrics = &reg_plain;
    const auto plain = switchsim::replay_sharded(trace, cfg, dm, rc);

    cfg.metrics = &reg_hard;
    io::IngestReplayConfig icfg;
    icfg.reader.metrics = &reg_hard;
    const auto hard = io::ingest_replay_sharded(trace, icfg, cfg, dm, rc);

    const std::string_view plain_drop[] = {"timing."};
    const std::string_view hard_drop[] = {"timing.", "ingest."};
    const auto a = obs::without_prefixes(reg_plain.snapshot(), plain_drop);
    const auto b = obs::without_prefixes(reg_hard.snapshot(), hard_drop);
    passthrough_parity = hard.replay.stats == plain.stats && a.scalars == b.scalars &&
                         a.series == b.series && hard.ingest.quarantined == 0 &&
                         hard.ingest.timestamps_clamped == 0 &&
                         hard.ingest.accepted == trace.size();

    // The untrusted-bytes entry over the CSV round trip must land on the
    // exact same replay (%.17g timestamps make the round trip bit-exact).
    io::IngestReplayConfig bcfg;
    const auto bytes = io::ingest_replay_sharded(io::trace_to_csv(trace), bcfg,
                                                 pipe_cfg(), dm, rc);
    passthrough_parity = passthrough_parity && bytes.replay.stats == plain.stats &&
                         bytes.ingest.quarantined == 0;
  }

  // --- gate 4: SPSC ring preserves content and order ------------------------
  bool ring_transparent = true;
  {
    io::RingPumpStats rp;
    const traffic::Trace pumped = io::pump_through_ring(trace, 64, rp);
    ring_transparent = rp.pushed == rp.popped && rp.pushed == trace.size() &&
                       io::trace_to_csv(pumped) == io::trace_to_csv(trace);
  }

  // --- gates 2+3 + sweep: chaos x shed policy x shards ----------------------
  bool deterministic = true;
  bool conserved = true;
  const auto chaos = chaos_profiles();
  const auto sheds = shed_profiles(offered_pps);
  const std::vector<std::size_t> shard_counts =
      smoke ? std::vector<std::size_t>{1, 2, 4} : std::vector<std::size_t>{1, 2, 4, 8};
  std::ostringstream cells, timing;
  bool first_cell = true;
  const auto t_sweep0 = std::chrono::steady_clock::now();
  for (const auto& cp : chaos) {
    for (const auto& sp : sheds) {
      for (const std::size_t shards : shard_counts) {
        io::IngestReplayConfig icfg;
        icfg.chaos = cp.faults;
        icfg.overload = sp.overload;
        icfg.chaos_batch_records = 32;
        switchsim::ReplayConfig rc;
        rc.shards = shards;
        rc.num_threads = 1;
        const auto t0 = std::chrono::steady_clock::now();
        const auto a = io::ingest_replay_sharded(trace, icfg, pipe_cfg(), dm, rc);
        const double wall_s = seconds_since(t0);
        rc.num_threads = 4;
        const auto b = io::ingest_replay_sharded(trace, icfg, pipe_cfg(), dm, rc);

        if (!(a.replay.stats == b.replay.stats && a.ingest == b.ingest &&
              a.overload == b.overload && a.chaos == b.chaos)) {
          deterministic = false;
          std::cerr << "DETERMINISM VIOLATION (chaos=" << cp.name << " shed=" << sp.name
                    << " shards=" << shards << ")\n";
        }
        const std::string err = io::audit_ingest_conservation(a);
        if (!err.empty()) {
          conserved = false;
          std::cerr << "CONSERVATION VIOLATION (chaos=" << cp.name << " shed=" << sp.name
                    << " shards=" << shards << "): " << err << "\n";
        }

        const char* sep = first_cell ? "\n" : ",\n";
        first_cell = false;
        cells << sep << "    {\"chaos\": \"" << cp.name << "\", \"policy\": \"" << sp.name
              << "\", \"shards\": " << shards << ", \"offered\": " << a.ingest.offered
              << ", \"accepted\": " << a.ingest.accepted
              << ", \"quarantined\": " << a.ingest.quarantined
              << ", \"timestamps_clamped\": " << a.ingest.timestamps_clamped
              << ", \"truncated\": "
              << a.ingest.by_category[static_cast<std::size_t>(
                     io::IngestErrorCategory::kTruncated)]
              << ", \"bad_field\": "
              << a.ingest.by_category[static_cast<std::size_t>(
                     io::IngestErrorCategory::kBadField)]
              << ", \"range_violation\": "
              << a.ingest.by_category[static_cast<std::size_t>(
                     io::IngestErrorCategory::kRangeViolation)]
              << ", \"unsupported\": "
              << a.ingest.by_category[static_cast<std::size_t>(
                     io::IngestErrorCategory::kUnsupported)]
              << ", \"shed\": " << a.overload.shed
              << ", \"shed_newest\": " << a.overload.shed_newest
              << ", \"shed_oldest\": " << a.overload.shed_oldest
              << ", \"shed_flow_hash\": " << a.overload.shed_flow_hash
              << ", \"queue_hwm\": " << a.overload.queue_hwm
              << ", \"admitted\": " << a.overload.admitted
              << ", \"replayed\": " << a.replay.stats.packets
              << ", \"burst_copies\": " << a.chaos.burst_copies
              << ", \"batches_duplicated\": " << a.chaos.batches_duplicated
              << ", \"batches_reordered\": " << a.chaos.batches_reordered << "}";
        timing << sep << "    {\"chaos\": \"" << cp.name << "\", \"policy\": \"" << sp.name
               << "\", \"shards\": " << shards << ", \"wall_s\": " << wall_s
               << ", \"packets_per_wall_sec\": "
               << (wall_s > 0.0 ? static_cast<double>(a.ingest.offered) / wall_s : 0.0)
               << "}";
      }
    }
  }
  const double sweep_wall_s = seconds_since(t_sweep0);

  // --- observability artifact -----------------------------------------------
  // One instrumented chaos+overload run: ingest.* counters land next to the
  // replay's pipeline metrics. check.sh --ingest-smoke asserts non-"timing."
  // keys are byte-identical across two runs.
  {
    obs::Registry reg;
    auto ocfg = pipe_cfg();
    ocfg.metrics = &reg;
    io::IngestReplayConfig icfg;
    icfg.chaos = chaos[1].faults;
    icfg.overload = sheds[3].overload;
    icfg.reader.metrics = &reg;
    switchsim::ReplayConfig rc;
    rc.shards = 2;
    (void)io::ingest_replay_sharded(trace, icfg, ocfg, dm, rc);
    reg.gauge("host.hardware_threads")
        .set(static_cast<double>(std::thread::hardware_concurrency()));
    std::ofstream of("BENCH_ingest_obs.json");
    of << obs::to_json(reg.snapshot());
  }

  // --- report ---------------------------------------------------------------
  std::ostringstream js;
  js << "{\n"
     << "  \"smoke\": " << json_bool(smoke) << ",\n"
     << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
     << "  \"trace_packets\": " << trace.size() << ",\n"
     << "  \"offered_pps\": " << offered_pps << ",\n"
     << "  \"passthrough_parity\": " << json_bool(passthrough_parity) << ",\n"
     << "  \"ring_transparent\": " << json_bool(ring_transparent) << ",\n"
     << "  \"deterministic\": " << json_bool(deterministic) << ",\n"
     << "  \"conserved\": " << json_bool(conserved) << ",\n"
     << "  \"cells\": [" << cells.str() << "\n  ],\n"
     << "  \"timing\": {\n    \"sweep_wall_s\": " << sweep_wall_s << ",\n    \"cells\": ["
     << timing.str() << "\n  ]}\n"
     << "}\n";

  std::ofstream f(out_path);
  f << js.str();
  f.close();
  std::cout << js.str();

  if (!passthrough_parity) {
    std::cerr << "FAIL: hardened pass-through diverges from plain sharded replay\n";
    return 1;
  }
  if (!ring_transparent) {
    std::cerr << "FAIL: SPSC ring pump altered the packet stream\n";
    return 1;
  }
  if (!deterministic) {
    std::cerr << "FAIL: ingest chain not bit-identical across thread counts\n";
    return 1;
  }
  if (!conserved) {
    std::cerr << "FAIL: ingest conservation audit failed in at least one cell\n";
    return 1;
  }
  return 0;
}
