file(REMOVE_RECURSE
  "CMakeFiles/iguard_rules.dir/quantize.cpp.o"
  "CMakeFiles/iguard_rules.dir/quantize.cpp.o.d"
  "CMakeFiles/iguard_rules.dir/range_rule.cpp.o"
  "CMakeFiles/iguard_rules.dir/range_rule.cpp.o.d"
  "CMakeFiles/iguard_rules.dir/rule_table.cpp.o"
  "CMakeFiles/iguard_rules.dir/rule_table.cpp.o.d"
  "CMakeFiles/iguard_rules.dir/ternary.cpp.o"
  "CMakeFiles/iguard_rules.dir/ternary.cpp.o.d"
  "libiguard_rules.a"
  "libiguard_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iguard_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
