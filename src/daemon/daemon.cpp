#include "daemon/daemon.hpp"

#include <chrono>
#include <cmath>
#include <thread>

namespace iguard::daemon {

namespace {

void accumulate(io::OverloadStats& into, const io::OverloadStats& s) {
  into.offered += s.offered;
  into.admitted += s.admitted;
  into.shed += s.shed;
  into.shed_newest += s.shed_newest;
  into.shed_oldest += s.shed_oldest;
  into.shed_flow_hash += s.shed_flow_hash;
  into.queue_hwm = std::max(into.queue_hwm, s.queue_hwm);
}

/// First structural difference between the running config and a reload
/// candidate, or empty when everything that differs is hot-appliable
/// (overload.*, source pacing fields, alert cadence). Structural fields
/// shape preallocated state — shards, rings, pipelines, the reader — and
/// changing them needs a restart, not a reload.
std::string reload_incompatibility(const DaemonConfig& cur, const DaemonConfig& next) {
  const auto changed = [](const char* field) {
    return std::string(field) + ": changed by reload (restart required)";
  };
  if (next.shards != cur.shards) return changed("shards");
  if (next.shard_seed != cur.shard_seed) return changed("shard_seed");
  if (next.ring_capacity != cur.ring_capacity) return changed("ring_capacity");
  if (next.alert_capacity != cur.alert_capacity) return changed("alert_capacity");
  if (next.metrics != cur.metrics) return changed("metrics");
  if (next.metrics_prefix != cur.metrics_prefix) return changed("metrics_prefix");
  if (next.source.kind != cur.source.kind) return changed("source.kind");
  if (next.source.path != cur.source.path) return changed("source.path");
  if (next.source.fd != cur.source.fd) return changed("source.fd");
  const auto& rd = next.reader;
  const auto& rc = cur.reader;
  if (rd.format != rc.format) return changed("reader.format");
  if (rd.clamp_timestamps != rc.clamp_timestamps) return changed("reader.clamp_timestamps");
  if (rd.limits.max_record_bytes != rc.limits.max_record_bytes)
    return changed("reader.limits.max_record_bytes");
  if (rd.limits.max_records != rc.limits.max_records) return changed("reader.limits.max_records");
  const auto& pn = next.pipeline;
  const auto& pc = cur.pipeline;
  if (pn.packet_threshold_n != pc.packet_threshold_n)
    return changed("pipeline.packet_threshold_n");
  if (pn.idle_timeout_delta != pc.idle_timeout_delta)
    return changed("pipeline.idle_timeout_delta");
  if (pn.flow_slots != pc.flow_slots) return changed("pipeline.flow_slots");
  if (pn.blacklist_capacity != pc.blacklist_capacity)
    return changed("pipeline.blacklist_capacity");
  if (pn.eviction != pc.eviction) return changed("pipeline.eviction");
  if (pn.match_engine != pc.match_engine) return changed("pipeline.match_engine");
  if (pn.batch_size != pc.batch_size) return changed("pipeline.batch_size");
  if (pn.swap.enabled != pc.swap.enabled) return changed("pipeline.swap.enabled");
  if (pn.swap.publish_after_extensions != pc.swap.publish_after_extensions)
    return changed("pipeline.swap.publish_after_extensions");
  if (pn.swap.swap_latency_s != pc.swap.swap_latency_s)
    return changed("pipeline.swap.swap_latency_s");
  if (pn.swap.recent_capacity != pc.swap.recent_capacity)
    return changed("pipeline.swap.recent_capacity");
  const auto& cn = pn.control;
  const auto& cc = pc.control;
  if (cn.control_latency_s != cc.control_latency_s)
    return changed("pipeline.control.control_latency_s");
  if (cn.channel_capacity != cc.channel_capacity)
    return changed("pipeline.control.channel_capacity");
  if (cn.max_install_retries != cc.max_install_retries)
    return changed("pipeline.control.max_install_retries");
  if (cn.retry_backoff_s != cc.retry_backoff_s)
    return changed("pipeline.control.retry_backoff_s");
  if (cn.retry_backoff_cap_s != cc.retry_backoff_cap_s)
    return changed("pipeline.control.retry_backoff_cap_s");
  if (cn.faults.digest_loss_rate != cc.faults.digest_loss_rate ||
      cn.faults.digest_delay_rate != cc.faults.digest_delay_rate ||
      cn.faults.install_failure_rate != cc.faults.install_failure_rate ||
      cn.faults.crashes.size() != cc.faults.crashes.size() ||
      cn.faults.bursts.size() != cc.faults.bursts.size()) {
    return changed("pipeline.control.faults");
  }
  return {};
}

}  // namespace

std::string validate_config(const DaemonConfig& cfg) {
  if (cfg.shards == 0) return "shards: must be >= 1 (got 0)";
  if (cfg.ring_capacity < 2) {
    return "ring_capacity: must be >= 2 (got " + std::to_string(cfg.ring_capacity) + ")";
  }
  if (cfg.max_batch_records == 0) return "max_batch_records: must be >= 1 (got 0)";
  if (cfg.alert_check_every == 0) return "alert_check_every: must be >= 1 (got 0)";
  if (cfg.alert_capacity == 0) return "alert_capacity: must be >= 1 (got 0)";
  if (cfg.source.kind == SourceConfig::Kind::kFile && cfg.source.path.empty()) {
    return "source.path: must be set for a file source";
  }
  if (cfg.source.kind == SourceConfig::Kind::kFd && cfg.source.fd < 0) {
    return "source.fd: must be a valid descriptor (got " + std::to_string(cfg.source.fd) + ")";
  }
  if (cfg.source.chunk_bytes == 0) return "source.chunk_bytes: must be >= 1 (got 0)";
  if (std::isnan(cfg.source.loop_gap_s) || std::isinf(cfg.source.loop_gap_s) ||
      cfg.source.loop_gap_s < 0.0) {
    return "source.loop_gap_s: must be finite and >= 0 (got " +
           std::to_string(cfg.source.loop_gap_s) + ")";
  }
  if (cfg.source.follow && cfg.source.kind != SourceConfig::Kind::kFile) {
    return "source.follow: only a file source can be followed";
  }
  if (cfg.source.follow && cfg.source.loops != 1) {
    return "source.follow: cannot combine follow with looped replay";
  }
  if (std::string err = io::validate_config(cfg.overload); !err.empty()) {
    return "overload." + err;
  }
  if (std::string err = switchsim::validate_config(cfg.pipeline.control); !err.empty()) {
    return "pipeline.control." + err;
  }
  return {};
}

std::string audit_daemon_conservation(const DaemonStats& s) {
  const auto mismatch = [](const char* what, std::uint64_t a, std::uint64_t b) {
    return std::string(what) + " (" + std::to_string(a) + " != " + std::to_string(b) + ")";
  };
  if (!s.ingest.conserved()) {
    return mismatch("ingest offered != accepted + quarantined", s.ingest.offered,
                    s.ingest.accepted + s.ingest.quarantined);
  }
  if (s.gate.offered != s.ingest.accepted) {
    return mismatch("gate offered != ingest accepted", s.gate.offered, s.ingest.accepted);
  }
  if (!s.gate.conserved()) {
    return mismatch("gate offered != admitted + shed", s.gate.offered,
                    s.gate.admitted + s.gate.shed);
  }
  if (s.pushed != s.gate.admitted) {
    return mismatch("ring pushed != gate admitted", s.pushed, s.gate.admitted);
  }
  if (s.popped != s.pushed) return mismatch("ring popped != pushed", s.popped, s.pushed);
  if (s.sim.packets != s.popped) {
    return mismatch("pipeline packets != popped", s.sim.packets, s.popped);
  }
  return {};
}

Daemon::Daemon(const DaemonConfig& cfg, const switchsim::DeployedModel& model)
    : cfg_(cfg),
      model_(&model),
      framer_(cfg.reader.limits.max_record_bytes),
      ring_(cfg.ring_capacity),
      alerts_(cfg.alert_capacity),
      quarantine_(cfg.reader.limits.quarantine_capacity,
                  cfg.reader.limits.quarantine_snippet_bytes) {
  if (const std::string err = validate_config(cfg_); !err.empty()) {
    const std::size_t colon = err.find(':');
    throw switchsim::ConfigError("DaemonConfig", err.substr(0, colon),
                                 colon == std::string::npos ? err : err.substr(colon + 2));
  }
  if (cfg_.source.kind == SourceConfig::Kind::kFile) {
    if (!file_.open(cfg_.source.path)) {
      throw switchsim::ConfigError("DaemonConfig", "source.path", file_.error());
    }
  } else {
    fd_ = FdSource(cfg_.source.fd);
  }

  cfg_.reader.metrics = cfg_.metrics;
  cfg_.reader.metrics_prefix = cfg_.metrics_prefix + ".ingest";
  reader_ = std::make_unique<io::TraceReader>(cfg_.reader);
  gate_ = std::make_unique<io::OverloadGate>(cfg_.overload);

  // A serving daemon must not grow per-packet label vectors without bound.
  cfg_.pipeline.record_labels = false;
  pipelines_.reserve(cfg_.shards);
  sim_.resize(cfg_.shards);
  alert_installs_seen_.assign(cfg_.shards, 0);
  alert_publishes_seen_.assign(cfg_.shards, 0);
  for (std::size_t k = 0; k < cfg_.shards; ++k) {
    switchsim::PipelineConfig pc = cfg_.pipeline;
    pc.metrics = cfg_.metrics;
    pc.metrics_prefix = cfg_.metrics_prefix + ".shard" + std::to_string(k);
    pipelines_.push_back(std::make_unique<switchsim::Pipeline>(pc, *model_));
  }

  admit_buf_.reserve(cfg_.overload.queue_capacity + 1024);
  io_buf_.reserve(cfg_.source.chunk_bytes);

  if (cfg_.metrics != nullptr && cfg_.metrics->enabled()) {
    const std::string& p = cfg_.metrics_prefix;
    obs_.pushed = cfg_.metrics->counter(p + ".pushed");
    obs_.popped = cfg_.metrics->counter(p + ".popped");
    obs_.batches = cfg_.metrics->counter(p + ".batches");
    obs_.loops = cfg_.metrics->counter(p + ".loops");
    obs_.reloads = cfg_.metrics->counter(p + ".reloads");
    obs_.alerts_emitted = cfg_.metrics->counter(p + ".alerts");
  }
}

Daemon::~Daemon() = default;

void Daemon::offer_packet(const traffic::Packet& p) {
  traffic::Packet q = p;
  q.ts += time_offset_;
  // The reader clamps within one batch; the stream-level clamp covers
  // regressions across batch (and loop) boundaries so the pipelines' event
  // clocks never run backwards.
  if (q.ts < producer_ts_) {
    q.ts = producer_ts_;
    ++stats_.cross_batch_clamped;
  } else {
    producer_ts_ = q.ts;
  }
  gate_->offer(q, admit_buf_);
}

void Daemon::push_admitted() {
  for (const auto& p : admit_buf_) {
    while (!ring_.try_push(p)) {
      if (inline_drain_) {
        drain_some(ring_.capacity() / 2);
      } else {
        std::this_thread::yield();  // threaded mode: the consumer is draining
      }
    }
    ++stats_.pushed;
    obs_.pushed.inc();
  }
  admit_buf_.clear();
}

void Daemon::producer_alert_scan() {
  const std::uint64_t q = stats_.ingest.quarantined;
  if (q > alert_quarantined_seen_) {
    alerts_.emit(AlertKind::kQuarantine, producer_ts_, q - alert_quarantined_seen_);
    alert_quarantined_seen_ = q;
    obs_.alerts_emitted.inc();
  }
  const std::uint64_t shed = gate_base_.shed + gate_->stats().shed;
  if (shed > alert_shed_seen_) {
    alerts_.emit(AlertKind::kShed, producer_ts_, shed - alert_shed_seen_);
    alert_shed_seen_ = shed;
    obs_.alerts_emitted.inc();
  }
}

void Daemon::ingest_batch(std::string& bytes) {
  if (bytes.empty()) return;
  ++stats_.batches;
  obs_.batches.inc();
  io::IngestResult r = reader_->read_buffer(bytes);
  bytes.clear();
  stats_.ingest.offered += r.stats.offered;
  stats_.ingest.accepted += r.stats.accepted;
  stats_.ingest.quarantined += r.stats.quarantined;
  for (std::size_t i = 0; i < io::kIngestCategories; ++i) {
    stats_.ingest.by_category[i] += r.stats.by_category[i];
  }
  stats_.ingest.timestamps_clamped += r.stats.timestamps_clamped;
  for (std::size_t i = 0; i < r.quarantine.size(); ++i) {
    const io::IngestError& e = r.quarantine[i];
    quarantine_.push(e.category, e.record_index, e.detail, e.snippet);
  }
  if (!r.container_ok && stats_.container_ok) {
    stats_.container_ok = false;
    stats_.container_error = r.container_error;
    alerts_.emit(AlertKind::kContainer, producer_ts_, 1);
    obs_.alerts_emitted.inc();
  }
  for (const auto& p : r.trace.packets) offer_packet(p);
  push_admitted();
  producer_alert_scan();
}

void Daemon::finish_producer() {
  if (producer_done_.load(std::memory_order_relaxed)) return;
  if (framer_.pending_bytes() > 0 && framer_.take_tail(batch_buf_) > 0) {
    ingest_batch(batch_buf_);
  }
  gate_->flush(admit_buf_);
  push_admitted();
  producer_alert_scan();
  ring_.close();
  producer_done_.store(true, std::memory_order_release);
}

bool Daemon::next_loop_or_finish() {
  ++stats_.loops_completed;
  obs_.loops.inc();
  if (cfg_.source.kind == SourceConfig::Kind::kFile && !stop_.load(std::memory_order_relaxed)) {
    const bool more =
        cfg_.source.loops == 0 || stats_.loops_completed < cfg_.source.loops;
    if (more) {
      file_.rewind();
      framer_.reset();
      // Shift the next pass past everything already offered; packets within
      // a pass carry their native (relative) stamps on top of the offset,
      // so the served stream stays monotone without any per-pass clamping.
      time_offset_ = producer_ts_ + cfg_.source.loop_gap_s;
      return true;
    }
  }
  finish_producer();
  return false;
}

Daemon::PumpStatus Daemon::pump_once() {
  if (producer_done_.load(std::memory_order_relaxed)) return PumpStatus::kDone;
  apply_pending_gate_reload();
  if (stop_.load(std::memory_order_relaxed)) {
    finish_producer();
    return PumpStatus::kDone;
  }

  std::size_t n = 0;
  bool at_end = false;
  if (cfg_.source.kind == SourceConfig::Kind::kFile) {
    n = file_.read_some(io_buf_, cfg_.source.chunk_bytes);
    at_end = n == 0;
  } else {
    n = fd_.read_some(io_buf_, cfg_.source.chunk_bytes);
    at_end = fd_.eof();
  }

  if (n > 0) {
    framer_.feed(io_buf_);
    io_buf_.clear();
    while (framer_.take_batch(batch_buf_, cfg_.max_batch_records) > 0) {
      ingest_batch(batch_buf_);
    }
    if (framer_.fatal()) {
      // Unframeable stream: hand the residue to the reader for accounting,
      // raise a container alert, and end the source — guessing at record
      // boundaries would charge the source with phantom records.
      if (framer_.take_tail(batch_buf_) > 0) ingest_batch(batch_buf_);
      if (stats_.container_ok) {
        stats_.container_ok = false;
        stats_.container_error = "unframeable stream: record length over limit";
      }
      alerts_.emit(AlertKind::kContainer, producer_ts_, 1);
      obs_.alerts_emitted.inc();
      finish_producer();
      return PumpStatus::kDone;
    }
    return PumpStatus::kProgress;
  }

  if (!at_end) return PumpStatus::kIdle;          // fd: interrupted read
  if (cfg_.source.kind == SourceConfig::Kind::kFile && cfg_.source.follow &&
      !stop_.load(std::memory_order_relaxed)) {
    return PumpStatus::kIdle;                     // tail -f: wait for appends
  }
  // End of a finite pass: a trailing unterminated record is still a record.
  if (framer_.take_tail(batch_buf_) > 0) ingest_batch(batch_buf_);
  return next_loop_or_finish() ? PumpStatus::kProgress : PumpStatus::kDone;
}

std::size_t Daemon::drain_some(std::size_t max_packets) {
  apply_pending_model_reload();
  std::size_t done = 0;
  traffic::Packet p;
  while (done < max_packets && ring_.try_pop(p)) {
    ++stats_.popped;
    obs_.popped.inc();
    consumer_ts_ = p.ts;
    const std::size_t k =
        cfg_.shards == 1 ? 0 : switchsim::shard_of(p.ft, cfg_.shards, cfg_.shard_seed);
    pipelines_[k]->process(p, sim_[k]);
    ++done;
    if (++since_alert_scan_ >= cfg_.alert_check_every) consumer_alert_scan();
  }
  return done;
}

void Daemon::consumer_alert_scan() {
  since_alert_scan_ = 0;
  for (std::size_t k = 0; k < cfg_.shards; ++k) {
    const std::uint64_t installs = pipelines_[k]->controller().rules_installed();
    if (installs > alert_installs_seen_[k]) {
      alerts_.emit(AlertKind::kBlacklistInstall, consumer_ts_,
                   installs - alert_installs_seen_[k], static_cast<std::uint32_t>(k));
      alert_installs_seen_[k] = installs;
      obs_.alerts_emitted.inc();
    }
    const switchsim::SwapLoop* loop = pipelines_[k]->swap_loop();
    if (loop != nullptr) {
      const std::uint64_t pubs = loop->stats().publishes;
      if (pubs > alert_publishes_seen_[k]) {
        // Versions are published in sequence starting from the snapshot's
        // version 1, so the live version after `pubs` publishes is 1 + pubs.
        alerts_.emit(AlertKind::kSwapPublish, consumer_ts_, pubs - alert_publishes_seen_[k],
                     static_cast<std::uint32_t>(k), 1 + pubs);
        alert_publishes_seen_[k] = pubs;
        obs_.alerts_emitted.inc();
      }
    }
  }
}

void Daemon::apply_pending_gate_reload() {
  if (!reload_gate_pending_.exchange(false, std::memory_order_acq_rel)) return;
  io::OverloadConfig oc;
  SourceConfig sc;
  std::size_t max_batch = cfg_.max_batch_records;
  {
    const std::lock_guard<std::mutex> lock(reload_mu_);
    if (pending_reload_ == nullptr) return;
    oc = pending_reload_->overload;
    sc = pending_reload_->source;
    max_batch = pending_reload_->max_batch_records;
  }
  // Retire the old gate without losing a packet: its queue is flushed into
  // the ring (counted admitted), its stats fold into the cumulative base.
  // The flush/push runs unlocked — inline drain can re-enter reload_mu_ via
  // apply_pending_model_reload; only the swap and cfg_ writes need the lock
  // (config_snapshot()/stats() read them from other threads).
  gate_->flush(admit_buf_);
  push_admitted();
  const std::lock_guard<std::mutex> lock(reload_mu_);
  accumulate(gate_base_, gate_->stats());
  gate_ = std::make_unique<io::OverloadGate>(oc);
  cfg_.overload = oc;
  // Producer-owned pacing knobs are hot-appliable; source identity is not
  // (reload_incompatibility rejects that).
  cfg_.source.loops = sc.loops;
  cfg_.source.follow = sc.follow;
  cfg_.source.loop_gap_s = sc.loop_gap_s;
  cfg_.source.chunk_bytes = sc.chunk_bytes;
  cfg_.max_batch_records = max_batch;
}

void Daemon::apply_pending_model_reload() {
  if (!reload_model_pending_.exchange(false, std::memory_order_acq_rel)) return;
  {
    const std::lock_guard<std::mutex> lock(reload_mu_);
    if (pending_reload_ != nullptr) cfg_.alert_check_every = pending_reload_->alert_check_every;
  }
  // Route the model half through each shard's hitless swap loop: the next
  // bundle version is built off the hot path and becomes live at the
  // pipelines' next pin, swap_latency_s later on the event clock. In-flight
  // packets keep the version they pinned — no packet is lost or reclassified
  // mid-flight.
  for (auto& p : pipelines_) p->request_model_publish(consumer_ts_);
  ++stats_.reloads_applied;
  obs_.reloads.inc();
  alerts_.emit(AlertKind::kReload, consumer_ts_, 1, 0, 0);
  obs_.alerts_emitted.inc();
}

std::string Daemon::request_reload(const DaemonConfig& next) {
  std::string err = validate_config(next);
  if (err.empty() && producer_done_.load(std::memory_order_acquire)) {
    // Nothing will ever reach the reload safe points again: the producer
    // stopped pumping and run() has drained. Accepting would stage halves
    // that are silently never applied.
    err = "source: finished (restart required to reload)";
  }
  if (err.empty()) err = reload_incompatibility(config_snapshot(), next);
  if (!err.empty()) {
    {
      const std::lock_guard<std::mutex> lock(reload_mu_);
      ++stats_.reloads_rejected;
    }
    alerts_.emit(AlertKind::kReload, 0.0, 0, 0, 0);
    obs_.alerts_emitted.inc();
    return err;
  }
  {
    const std::lock_guard<std::mutex> lock(reload_mu_);
    pending_reload_ = std::make_unique<DaemonConfig>(next);
  }
  reload_gate_pending_.store(true, std::memory_order_release);
  reload_model_pending_.store(true, std::memory_order_release);
  return {};
}

void Daemon::request_stop() { stop_.store(true, std::memory_order_relaxed); }

void Daemon::finalize() {
  if (finalized_) return;
  if (!producer_done_.load(std::memory_order_relaxed)) finish_producer();
  while (drain_some(1024) > 0) {
  }
  consumer_alert_scan();
  for (std::size_t k = 0; k < cfg_.shards; ++k) pipelines_[k]->finish_stream(sim_[k]);
  consumer_alert_scan();  // publishes made live by the end-of-stream drain
  stats_.sim = switchsim::merge_stats(sim_);
  finalized_ = true;
}

void Daemon::run() {
  inline_drain_ = false;
  std::thread producer([this] {
    for (;;) {
      const PumpStatus st = pump_once();
      if (st == PumpStatus::kDone) break;
      if (st == PumpStatus::kIdle) {
        if (stop_.load(std::memory_order_relaxed)) {
          finish_producer();
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
  });

  for (;;) {
    if (drain_some(4096) > 0) continue;
    if (ring_.closed()) {
      // close() is stored after the final push; one more pop pass after
      // observing it cannot miss a packet.
      if (drain_some(1) == 0) break;
      continue;
    }
    std::this_thread::yield();
  }
  producer.join();
  inline_drain_ = true;
  finalize();
}

void Daemon::run_synchronous() {
  for (;;) {
    const PumpStatus st = pump_once();
    drain_some(static_cast<std::size_t>(-1));
    if (st == PumpStatus::kDone) break;
    if (st == PumpStatus::kIdle) {
      if (stop_.load(std::memory_order_relaxed)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  finalize();
}

DaemonStats Daemon::stats() const {
  DaemonStats s = stats_;
  {
    // The gate unique_ptr is swapped by apply_pending_gate_reload under this
    // lock; reading it unlocked would be a use-after-free, not merely the
    // documented best-effort racy counter read.
    const std::lock_guard<std::mutex> lock(reload_mu_);
    s.gate = gate_base_;
    accumulate(s.gate, gate_->stats());
  }
  if (!finalized_) s.sim = switchsim::merge_stats(sim_);
  return s;
}

DaemonConfig Daemon::config_snapshot() const {
  const std::lock_guard<std::mutex> lock(reload_mu_);
  return cfg_;
}

std::string Daemon::metrics_text() const {
  if (cfg_.metrics == nullptr) return {};
  return obs::to_prometheus(cfg_.metrics->snapshot());
}

}  // namespace iguard::daemon
