// Fleet-scale deployment benchmark and robustness gate (DESIGN.md §4f):
// replays one deployment across simulated switch fleets of growing size
// under per-device failure domains, and enforces the fleet simulator's
// correctness contract. It exits non-zero when any gate fails:
//
//   1. N=1 equivalence     — one device with fleet faults off is
//      byte-identical to the single-switch sharded replay (full SimStats
//      equality plus obs non-"timing." key parity);
//   2. fleet determinism   — a faulty 4-device fleet is bit-identical at
//      worker thread counts 1 and 4 (stats, per-device control accounting,
//      fleet aggregates);
//   3. conservation        — in every sweep cell, every packet, digest,
//      and install op is accounted for exactly once
//      (audit_fleet_conservation).
//
// The sweep crosses fleet size x flow churn x fault profile and records
// install throughput, backlog high-water marks, dead letters, staleness,
// and leaked packets per cell into BENCH_fleet.json. Event-time rates are
// deterministic; wall-clock rates live under the top-level "timing" object,
// which scripts/check.sh --fleet-smoke strips before comparing two runs
// byte for byte. Also writes BENCH_fleet_obs.json (fleet.* counters,
// per-device gauges, backlog/devices-degraded series).
//
//   bench_fleet [--smoke] [--out <path>]
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ml/rng.hpp"
#include "obs/metrics.hpp"
#include "switchsim/fleet.hpp"

using namespace iguard;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Mixed trace with a tunable flow-churn profile: the same packet budget is
/// spent on few long flows (low churn: few rule installs, heavy dedup) or
/// many short ones (high churn: a fresh install intent per malicious flow).
traffic::Trace churn_trace(std::size_t flows, std::size_t packets_per_flow, ml::Rng& rng) {
  traffic::Trace t;
  for (std::size_t f = 0; f < flows; ++f) {
    const bool mal = f % 3 == 0;
    traffic::FiveTuple ft{0x0A000000u + static_cast<std::uint32_t>(f),
                          0x0B000000u + static_cast<std::uint32_t>(f % 13),
                          static_cast<std::uint16_t>(1024 + f % 40000), 443,
                          traffic::kProtoTcp};
    for (std::size_t i = 0; i < packets_per_flow; ++i) {
      traffic::Packet p;
      p.ts = 0.0008 * static_cast<double>(f) + 0.05 * static_cast<double>(i) +
             rng.uniform(0.0, 0.0005);
      p.ft = i % 2 == 0 ? ft : ft.reversed();
      p.length = mal ? static_cast<std::uint16_t>(1200 + rng.index(200))
                     : static_cast<std::uint16_t>(80 + rng.index(60));
      p.malicious = mal;
      t.packets.push_back(p);
    }
  }
  t.sort_by_time();
  return t;
}

switchsim::PipelineConfig pipe_cfg() {
  switchsim::PipelineConfig cfg;
  cfg.packet_threshold_n = 4;
  cfg.idle_timeout_delta = 10.0;
  return cfg;
}

struct Profile {
  const char* name;
  switchsim::FleetFaultConfig faults;
};

std::vector<Profile> fault_profiles() {
  switchsim::FleetFaultConfig clean;  // defaults: everything off

  switchsim::FleetFaultConfig faulty;
  faulty.digest_loss_rate = 0.05;
  faulty.install_failure_rate = 0.1;
  faulty.crash_rate = 0.15;
  faulty.crash_duration_s = 0.08;
  faulty.partition_rate = 0.1;
  faulty.partition_duration_s = 0.08;
  faulty.check_interval_s = 0.05;

  switchsim::FleetFaultConfig partition;  // dark-heavy: long link outages
  partition.partition_rate = 0.1;
  partition.partition_duration_s = 0.12;
  partition.check_interval_s = 0.05;

  return {{"clean", clean}, {"faulty", faulty}, {"partition", partition}};
}

switchsim::FleetControllerConfig sweep_control() {
  switchsim::FleetControllerConfig cc;
  cc.batch_size = 4;
  cc.install_latency_s = 0.002;
  cc.install_failure_rate = 0.05;
  cc.max_install_retries = 3;
  cc.retry_backoff_s = 0.002;
  cc.retry_backoff_cap_s = 0.01;
  cc.install_queue_capacity = 8;
  return cc;
}

std::string json_bool(bool b) { return b ? "true" : "false"; }

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
    else {
      std::cerr << "usage: bench_fleet [--smoke] [--out <path>]\n";
      return 2;
    }
  }

  // --- workload -------------------------------------------------------------
  ml::Rng rng(0xF17Eull);
  const std::size_t base_flows = smoke ? 90 : 450;
  struct Churn {
    const char* name;
    traffic::Trace trace;
  };
  std::vector<Churn> churns;
  churns.push_back({"low", churn_trace(base_flows, 12, rng)});
  churns.push_back({"high", churn_trace(base_flows * 3, 4, rng)});

  ml::Matrix fake(2, switchsim::kSwitchFlFeatures);
  for (std::size_t j = 0; j < switchsim::kSwitchFlFeatures; ++j) {
    fake(0, j) = 0.0;
    fake(1, j) = 1e6;
  }
  rules::Quantizer quant{16};
  quant.fit(fake);
  core::VoteWhitelist wl;
  wl.tree_count = 1;
  std::vector<rules::FieldRange> box(switchsim::kSwitchFlFeatures, {0, quant.domain_max()});
  box[5] = {0, quant.quantize_value(5, 600.0)};
  wl.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});
  switchsim::DeployedModel dm;
  dm.fl_tables = &wl;
  dm.fl_quantizer = &quant;

  const auto profiles = fault_profiles();
  const auto& parity_trace = churns[0].trace;

  // --- gate 1: N=1, faults off == single-switch sharded replay --------------
  bool n1_equivalent = true;
  {
    switchsim::ReplayConfig rc;
    rc.shards = 2;
    obs::Registry reg_sharded, reg_fleet;
    auto cfg = pipe_cfg();
    cfg.metrics = &reg_sharded;
    const auto sharded = switchsim::replay_sharded(parity_trace, cfg, dm, rc);
    cfg.metrics = &reg_fleet;
    switchsim::FleetConfig fc;
    fc.devices = 1;
    fc.replay = rc;
    const auto fleet = switchsim::replay_fleet(parity_trace, cfg, dm, fc);
    const std::string fleet_ns = cfg.metrics_prefix + ".fleet";
    const std::string_view base_drop[] = {"timing."};
    const std::string_view fleet_drop[] = {"timing.", fleet_ns};
    const auto a = obs::without_prefixes(reg_sharded.snapshot(), base_drop);
    const auto b = obs::without_prefixes(reg_fleet.snapshot(), fleet_drop);
    n1_equivalent = fleet.stats == sharded.stats && a.scalars == b.scalars &&
                    a.series == b.series && fleet.stats.packets == parity_trace.size();
  }

  // --- gate 2: faulty fleet bit-identical across worker thread counts -------
  bool fleet_deterministic = true;
  {
    switchsim::FleetConfig fc;
    fc.devices = 4;
    fc.replay.shards = 2;
    fc.faults = profiles[1].faults;
    fc.control = sweep_control();
    fc.num_threads = 1;
    fc.replay.num_threads = 1;
    const auto a = switchsim::replay_fleet(parity_trace, pipe_cfg(), dm, fc);
    fc.num_threads = 4;
    fc.replay.num_threads = 4;
    const auto b = switchsim::replay_fleet(parity_trace, pipe_cfg(), dm, fc);
    fleet_deterministic = a.stats == b.stats && a.fleet == b.fleet &&
                          a.device_control == b.device_control;
  }

  // --- gate 3 + sweep: fleet size x churn x fault profile -------------------
  bool conserved = true;
  const std::vector<std::size_t> fleet_sizes =
      smoke ? std::vector<std::size_t>{1, 2, 4} : std::vector<std::size_t>{1, 2, 4, 8};
  std::ostringstream cells, timing;
  bool first_cell = true;
  const auto t_sweep0 = std::chrono::steady_clock::now();
  for (const auto& churn : churns) {
    const double span_s =
        churn.trace.empty() ? 1.0 : churn.trace.packets.back().ts - churn.trace.packets[0].ts;
    for (const auto& prof : profiles) {
      for (const std::size_t devices : fleet_sizes) {
        switchsim::FleetConfig fc;
        fc.devices = devices;
        fc.replay.shards = 2;
        fc.faults = prof.faults;
        fc.control = sweep_control();
        const auto t0 = std::chrono::steady_clock::now();
        const auto out = switchsim::replay_fleet(churn.trace, pipe_cfg(), dm, fc);
        const double wall_s = seconds_since(t0);
        const std::string err = switchsim::audit_fleet_conservation(out, churn.trace.size());
        if (!err.empty()) {
          conserved = false;
          std::cerr << "CONSERVATION VIOLATION (churn=" << churn.name
                    << " profile=" << prof.name << " devices=" << devices << "): " << err
                    << "\n";
        }
        const auto& fl = out.fleet;
        std::size_t catchups = 0, backpressure = 0, queue_hwm = 0;
        for (const auto& dc : out.device_control) {
          catchups += dc.catchup_installs;
          backpressure += dc.backpressure_drops;
          queue_hwm = std::max(queue_hwm, dc.queue_hwm);
        }
        const char* sep = first_cell ? "\n" : ",\n";
        first_cell = false;
        cells << sep << "    {\"churn\": \"" << churn.name << "\", \"profile\": \""
              << prof.name << "\", \"devices\": " << devices
              << ", \"packets\": " << out.stats.packets
              << ", \"digests\": " << fl.digests_observed
              << ", \"digests_lost_dark\": " << fl.digests_lost_dark
              << ", \"install_intents\": " << fl.install_intents
              << ", \"dedup_suppressed\": " << fl.dedup_suppressed
              << ", \"installs_applied\": " << fl.installs_applied
              << ", \"installs_per_trace_sec\": "
              << static_cast<double>(fl.installs_applied) / span_s
              << ", \"dead_letters\": " << fl.dead_letters
              << ", \"backpressure_drops\": " << backpressure
              << ", \"catchup_installs\": " << catchups
              << ", \"backlog_hwm\": " << fl.backlog_hwm
              << ", \"device_queue_hwm\": " << queue_hwm
              << ", \"devices_degraded_hwm\": " << fl.devices_degraded_hwm
              << ", \"staleness_hwm_s\": " << fl.staleness_hwm_s
              << ", \"leaked_packets\": " << out.stats.faults.leaked_packets << "}";
        timing << sep << "    {\"churn\": \"" << churn.name << "\", \"profile\": \""
               << prof.name << "\", \"devices\": " << devices << ", \"wall_s\": " << wall_s
               << ", \"installs_per_wall_sec\": "
               << (wall_s > 0.0 ? static_cast<double>(fl.installs_applied) / wall_s : 0.0)
               << "}";
      }
    }
  }
  const double sweep_wall_s = seconds_since(t_sweep0);

  // --- observability artifact -----------------------------------------------
  // One instrumented faulty 2-device fleet; fleet.* aggregates, per-device
  // gauges, and the backlog / devices-degraded series land next to the
  // per-device pipeline metrics. check.sh --fleet-smoke asserts non-"timing."
  // keys are byte-identical across two runs.
  {
    obs::Registry reg;
    auto ocfg = pipe_cfg();
    ocfg.metrics = &reg;
    switchsim::FleetConfig fc;
    fc.devices = 2;
    fc.replay.shards = 2;
    fc.faults = profiles[1].faults;
    fc.control = sweep_control();
    (void)switchsim::replay_fleet(parity_trace, ocfg, dm, fc);
    reg.gauge("host.hardware_threads")
        .set(static_cast<double>(std::thread::hardware_concurrency()));
    std::ofstream of("BENCH_fleet_obs.json");
    of << obs::to_json(reg.snapshot());
  }

  // --- report ---------------------------------------------------------------
  std::ostringstream js;
  js << "{\n"
     << "  \"smoke\": " << json_bool(smoke) << ",\n"
     << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
     << "  \"low_churn_packets\": " << churns[0].trace.size() << ",\n"
     << "  \"high_churn_packets\": " << churns[1].trace.size() << ",\n"
     << "  \"n1_equivalent\": " << json_bool(n1_equivalent) << ",\n"
     << "  \"fleet_deterministic\": " << json_bool(fleet_deterministic) << ",\n"
     << "  \"conserved\": " << json_bool(conserved) << ",\n"
     << "  \"cells\": [" << cells.str() << "\n  ],\n"
     << "  \"timing\": {\n    \"sweep_wall_s\": " << sweep_wall_s << ",\n    \"cells\": ["
     << timing.str() << "\n  ]}\n"
     << "}\n";

  std::ofstream f(out_path);
  f << js.str();
  f.close();
  std::cout << js.str();

  if (!n1_equivalent) {
    std::cerr << "FAIL: N=1 faults-off fleet diverges from single-switch sharded replay\n";
    return 1;
  }
  if (!fleet_deterministic) {
    std::cerr << "FAIL: faulty fleet is not bit-identical across worker thread counts\n";
    return 1;
  }
  if (!conserved) {
    std::cerr << "FAIL: fleet conservation audit failed in at least one sweep cell\n";
    return 1;
  }
  return 0;
}
