#include "core/guided_iforest.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/ae_ensemble.hpp"
#include "eval/metrics.hpp"

namespace iguard::core {
namespace {

// Shared fixture: a 2-D benign manifold (y = x) with an AE-ensemble teacher
// trained on it; anomalies live on the anti-diagonal.
class GuidedForestTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new ml::Rng(17);
    train_ = new ml::Matrix(0, 2);
    for (int i = 0; i < 1500; ++i) {
      const double x = rng_->normal(0.0, 1.0);
      const double row[2] = {x, x + rng_->normal(0.0, 0.1)};
      train_->push_row(row);
    }
    teacher_ = new AeEnsemble();
    AeEnsembleConfig cfg;
    cfg.ensemble_size = 2;
    // Bottleneck of 1: the AE must compress onto the 1-D manifold, so
    // off-manifold points reconstruct poorly (a 2-D latent could learn the
    // identity and give the growth phase nothing to work with).
    cfg.base.encoder_hidden = {8, 1};
    cfg.base.epochs = 80;
    teacher_->fit(*train_, cfg, *rng_);

    // Calibrate member thresholds on a small labelled validation set, as
    // the experiment protocol does (otherwise the default 98%-quantile
    // thresholds give the growth phase no entropy signal to split on).
    ml::Matrix val(0, 2);
    std::vector<int> vy;
    for (int i = 0; i < 150; ++i) {
      const double t = rng_->normal(0.0, 1.0);
      const double on[2] = {t, t + rng_->normal(0.0, 0.1)};
      val.push_row(on);
      vy.push_back(0);
      if (i % 3 == 0) {
        double off[2] = {t, -t};
        if (std::abs(off[1] - off[0]) < 0.6) off[1] += off[1] > off[0] ? 0.6 : -0.6;
        val.push_row(off);
        vy.push_back(1);
      }
    }
    for (std::size_t u = 0; u < teacher_->size(); ++u) {
      std::vector<double> s(val.rows());
      for (std::size_t i = 0; i < val.rows(); ++i)
        s[i] = teacher_->reconstruction_error(u, val.row(i));
      teacher_->set_member_threshold(u, eval::best_f1_threshold(vy, s));
    }
  }
  static void TearDownTestSuite() {
    delete teacher_;
    delete train_;
    delete rng_;
    teacher_ = nullptr;
    train_ = nullptr;
    rng_ = nullptr;
  }

  static ml::Rng* rng_;
  static ml::Matrix* train_;
  static AeEnsemble* teacher_;
};
ml::Rng* GuidedForestTest::rng_ = nullptr;
ml::Matrix* GuidedForestTest::train_ = nullptr;
AeEnsemble* GuidedForestTest::teacher_ = nullptr;

TEST_F(GuidedForestTest, TrainsRequestedTreeCount) {
  GuidedForestConfig cfg;
  cfg.num_trees = 3;
  cfg.subsample = 256;
  cfg.augment = 64;
  GuidedIsolationForest f{cfg};
  ml::Rng rng(1);
  f.fit(*train_, *teacher_, rng);
  EXPECT_EQ(f.trees().size(), 3u);
  for (const auto& t : f.trees()) EXPECT_GE(t.leaf_count(), 1u);
}

TEST_F(GuidedForestTest, DepthRespectsHeightCap) {
  GuidedForestConfig cfg;
  cfg.num_trees = 2;
  cfg.subsample = 128;  // cap = 7
  GuidedIsolationForest f{cfg};
  ml::Rng rng(2);
  f.fit(*train_, *teacher_, rng);
  for (const auto& t : f.trees()) {
    for (const auto& n : t.nodes) EXPECT_LE(n.depth, 7);
  }
}

TEST_F(GuidedForestTest, LeavesCarryDistilledState) {
  GuidedForestConfig cfg;
  cfg.num_trees = 2;
  cfg.subsample = 256;
  GuidedIsolationForest f{cfg};
  ml::Rng rng(3);
  f.fit(*train_, *teacher_, rng);
  for (const auto& t : f.trees()) {
    for (const auto& n : t.nodes) {
      if (n.feature >= 0) continue;
      EXPECT_EQ(n.leaf_re.size(), teacher_->size());      // Eq. 5 embedded
      EXPECT_TRUE(n.label == 0 || n.label == 1);          // Eq. 6 label
      EXPECT_EQ(n.box_lo.size(), train_->cols());         // support box
      for (std::size_t j = 0; j < n.box_lo.size(); ++j) {
        EXPECT_LE(n.box_lo[j], n.box_hi[j]);
      }
    }
  }
}

TEST_F(GuidedForestTest, StudentTracksTeacherAndAcceptsBenign) {
  // The distilled forest is a student: it cannot beat its teacher, but it
  // must (a) keep accepting fresh on-manifold traffic and (b) flag at least
  // as much off-manifold traffic as the teacher does (the support boxes can
  // only add detections on top of the teacher's labels).
  GuidedForestConfig cfg;
  GuidedIsolationForest f{cfg};
  ml::Rng rng(4);
  f.fit(*train_, *teacher_, rng);
  ml::Rng probe(99);
  std::size_t benign_ok = 0, forest_catch = 0, teacher_catch = 0, n = 0;
  for (int i = 0; i < 200; ++i) {
    const double x = probe.normal(0.0, 0.8);
    const double on[2] = {x, x + probe.normal(0.0, 0.1)};
    double off[2] = {x, -x};
    if (std::abs(off[1] - on[0]) < 0.6) off[1] += off[1] > x ? 0.6 : -0.6;
    benign_ok += f.predict(on) == 0 ? 1 : 0;
    forest_catch += static_cast<std::size_t>(f.predict(off));
    teacher_catch += static_cast<std::size_t>(teacher_->predict(off));
    ++n;
  }
  EXPECT_GT(static_cast<double>(benign_ok) / static_cast<double>(n), 0.8);
  // Axis-aligned leaves cannot carve a diagonal hole exactly (the paper's
  // "Challenge" paragraph), so the student undershoots a perfect teacher
  // here — but it must catch a clearly non-trivial share, and never more
  // than the teacher-guided structure allows.
  EXPECT_GT(forest_catch, n / 15);
  EXPECT_LE(forest_catch, teacher_catch);
}

TEST_F(GuidedForestTest, VoteFractionConsistentWithPredict) {
  GuidedForestConfig cfg;
  cfg.num_trees = 5;
  GuidedIsolationForest f{cfg};
  ml::Rng rng(5);
  f.fit(*train_, *teacher_, rng);
  ml::Rng probe(42);
  for (int i = 0; i < 100; ++i) {
    const double p[2] = {probe.uniform(-4, 4), probe.uniform(-4, 4)};
    const double v = f.vote_fraction(p);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    EXPECT_EQ(f.predict(p), 2.0 * v > 1.0 ? 1 : 0);
  }
}

TEST_F(GuidedForestTest, PointOutsideAllBenignBoxesIsMalicious) {
  GuidedForestConfig cfg;
  GuidedIsolationForest f{cfg};
  ml::Rng rng(6);
  f.fit(*train_, *teacher_, rng);
  // Far outside the training support in every dimension.
  const double far[2] = {50.0, -50.0};
  EXPECT_EQ(f.predict(far), 1);
  EXPECT_DOUBLE_EQ(f.vote_fraction(far), 1.0);
}

TEST_F(GuidedForestTest, FeatureRangeAccessorsMatchData) {
  GuidedForestConfig cfg;
  cfg.num_trees = 1;
  GuidedIsolationForest f{cfg};
  ml::Rng rng(7);
  f.fit(*train_, *teacher_, rng);
  ASSERT_EQ(f.feature_min().size(), 2u);
  double lo = 1e18, hi = -1e18;
  for (std::size_t i = 0; i < train_->rows(); ++i) {
    lo = std::min(lo, (*train_)(i, 0));
    hi = std::max(hi, (*train_)(i, 0));
  }
  EXPECT_DOUBLE_EQ(f.feature_min()[0], lo);
  EXPECT_DOUBLE_EQ(f.feature_max()[0], hi);
}

TEST_F(GuidedForestTest, EmptyInputsThrow) {
  GuidedIsolationForest f{GuidedForestConfig{}};
  ml::Rng rng(8);
  ml::Matrix empty;
  EXPECT_THROW(f.fit(empty, *teacher_, rng), std::invalid_argument);
  AeEnsemble untrained;
  EXPECT_THROW(f.fit(*train_, untrained, rng), std::invalid_argument);
  EXPECT_THROW(f.predict(std::vector<double>{0.0, 0.0}), std::logic_error);
}

TEST(AeEnsembleTest, WeightedVoteSemantics) {
  // Two members with controlled thresholds: vote passes 0.5 only when the
  // weighted sum of firing members exceeds it.
  ml::Rng rng(1);
  ml::Matrix train(0, 2);
  for (int i = 0; i < 400; ++i) {
    const double row[2] = {rng.normal(), rng.normal()};
    train.push_row(row);
  }
  AeEnsemble ens;
  AeEnsembleConfig cfg;
  cfg.ensemble_size = 2;
  cfg.base.encoder_hidden = {4, 2};
  cfg.base.epochs = 20;
  ens.fit(train, cfg, rng);

  const std::vector<double> errs_high = {1e9, 1e9};
  const std::vector<double> errs_low = {0.0, 0.0};
  EXPECT_EQ(ens.vote_from_errors(errs_high), 1);
  EXPECT_EQ(ens.vote_from_errors(errs_low), 0);
  // One member over threshold with uniform weights: 0.5 vote, not > 0.5.
  const std::vector<double> errs_split = {1e9, 0.0};
  EXPECT_EQ(ens.vote_from_errors(errs_split), 0);
  // Reweight so the firing member carries 0.6.
  ens.set_weights({0.6, 0.4});
  EXPECT_EQ(ens.vote_from_errors(errs_split), 1);
}

TEST(AeEnsembleTest, SetWeightsValidation) {
  ml::Rng rng(2);
  ml::Matrix train(0, 1);
  for (int i = 0; i < 100; ++i) {
    const double row[1] = {rng.normal()};
    train.push_row(row);
  }
  AeEnsemble ens;
  AeEnsembleConfig cfg;
  cfg.ensemble_size = 2;
  cfg.base.encoder_hidden = {2};
  cfg.base.epochs = 5;
  ens.fit(train, cfg, rng);
  EXPECT_THROW(ens.set_weights({1.0}), std::invalid_argument);
  EXPECT_THROW(ens.set_weights({0.9, 0.9}), std::invalid_argument);
  EXPECT_NO_THROW(ens.set_weights({0.3, 0.7}));
}

}  // namespace
}  // namespace iguard::core
