#include "switchsim/swap_loop.hpp"

#include <algorithm>
#include <utility>

namespace iguard::switchsim {

SwapLoop::SwapLoop(const SwapConfig& cfg, std::shared_ptr<const core::ModelBundle> initial,
                   Controller& ctl, obs::Registry* metrics, const std::string& metrics_prefix)
    : cfg_(cfg),
      ctl_(&ctl),
      handle_(std::move(initial)),
      reader_(handle_.register_reader()),
      staging_fl_(handle_.current()->fl),
      updater_(staging_fl_, cfg_.update),
      drift_(cfg_.drift),
      next_version_(handle_.version() + 1) {
  if (cfg_.recent_capacity > 0) {
    recent_ = ml::Matrix(cfg_.recent_capacity, kSwitchFlFeatures);
  }
  if (metrics != nullptr && metrics->enabled()) {
    const std::string p = metrics_prefix + ".swap";
    obs_.version = metrics->gauge(p + ".version");
    obs_.publishes = metrics->counter(p + ".publishes");
    obs_.drift_fires = metrics->counter(p + ".drift_fires");
    obs_.extensions = metrics->counter(p + ".extensions");
    obs_.rejected = metrics->counter(p + ".rejected_by_budget");
    obs_.mirrors = metrics->counter(p + ".mirrors");
    obs_.miss_rate =
        metrics->series(p + ".miss_rate", 4096, std::max<std::size_t>(cfg_.drift.window, 1));
    obs_.version.set(static_cast<double>(handle_.version()));
  }
}

const core::ModelBundle* SwapLoop::pin_current() { return handle_.pin(reader_); }

const core::ModelBundle* SwapLoop::advance_and_pin(double now_ts_s) {
  if (pending_.has_value() && pending_->due_ts <= now_ts_s) {
    const bool drift_triggered = pending_->drift_triggered;
    handle_.publish(std::move(pending_->bundle));
    pending_.reset();
    if (!drift_triggered) ++stats_.incremental_publishes;
    on_published();
  }
  const core::ModelBundle* b = handle_.pin(reader_);
  if (needs_collect_) {
    // The pin above moved this reader past the retired version, so the
    // collect right after a swap reclaims it; the flag keeps the mutex off
    // the steady-state path.
    stats_.bundles_retired += handle_.collect();
    if (handle_.retired_pending() == 0) needs_collect_ = false;
  }
  return b;
}

void SwapLoop::on_benign_mirror(const BenignMirror& m, double deliver_ts_s) {
  ++stats_.mirrors_applied;
  obs_.mirrors.inc();

  // Residual miss profile of the *staging* whitelist (live rules + all
  // extensions staged so far): while the updater keeps up, misses vanish as
  // they are learned; sustained misses mean the extension budget no longer
  // absorbs the drift — exactly the regime the detector must catch.
  const double miss_fraction = staging_fl_.malicious_vote_fraction(m.key);
  const bool fully_covered = miss_fraction == 0.0;
  updater_.observe_benign(m.key);

  if (recent_.rows() > 0) {
    auto dst = recent_.row(recent_next_);
    std::copy(m.features.begin(), m.features.end(), dst.begin());
    recent_next_ = (recent_next_ + 1) % recent_.rows();
    recent_rows_ = std::min(recent_rows_ + 1, recent_.rows());
  }

  if (updater_.extensions_applied() > obs_extensions_seen_) {
    obs_.extensions.inc(updater_.extensions_applied() - obs_extensions_seen_);
    obs_extensions_seen_ = updater_.extensions_applied();
  }
  if (updater_.rejected_by_budget() > obs_rejected_seen_) {
    obs_.rejected.inc(updater_.rejected_by_budget() - obs_rejected_seen_);
    obs_rejected_seen_ = updater_.rejected_by_budget();
  }
  obs_.miss_rate.observe(miss_fraction);

  const core::DriftSignal signal =
      drift_.observe(miss_fraction, fully_covered, updater_.rejected_by_budget());
  if (signal != core::DriftSignal::kNone) {
    ++stats_.drift_fires;
    obs_.drift_fires.inc();
    switch (signal) {
      case core::DriftSignal::kMissRate: ++stats_.drift_miss_rate; break;
      case core::DriftSignal::kVoteShift: ++stats_.drift_vote_shift; break;
      case core::DriftSignal::kRejectedSlope: ++stats_.drift_rejected_slope; break;
      case core::DriftSignal::kNone: break;
    }
    trigger_publish(/*drift_triggered=*/true, deliver_ts_s);
    return;
  }
  if (cfg_.publish_after_extensions > 0 &&
      updater_.extensions_applied() - extensions_at_last_publish_ >=
          cfg_.publish_after_extensions) {
    trigger_publish(/*drift_triggered=*/false, deliver_ts_s);
  }
}

void SwapLoop::request_publish(double ts_s) {
  ++stats_.operator_requests;
  // An operator request runs the configured rebuilder (like a drift fire):
  // a reload wants the staged extensions and retained rows folded into the
  // next version, not just a recompile of the live tables.
  trigger_publish(/*drift_triggered=*/true, ts_s);
}

void SwapLoop::trigger_publish(bool drift_triggered, double ts_s) {
  if (pending_.has_value()) {
    // One version in flight at a time; the pending publish will already
    // carry every staging extension applied up to its build below.
    ++stats_.coalesced_triggers;
    return;
  }
  // Compact oldest-first snapshot of the retained rows (the ring's physical
  // order rotates; the rebuild must see a reproducible row order).
  ml::Matrix snapshot;
  if (recent_rows_ > 0) {
    snapshot = ml::Matrix(recent_rows_, recent_.cols());
    const std::size_t start = recent_rows_ == recent_.rows() ? recent_next_ : 0;
    for (std::size_t i = 0; i < recent_rows_; ++i) {
      auto src = recent_.row((start + i) % recent_.rows());
      std::copy(src.begin(), src.end(), snapshot.row(i).begin());
    }
  }
  core::RebuildInput in;
  in.current = handle_.current();
  in.staging_fl = &staging_fl_;
  in.recent = &snapshot;
  in.new_version = next_version_++;
  std::shared_ptr<const core::ModelBundle> bundle;
  if (drift_triggered) {
    ++stats_.rebuilds;
    bundle = cfg_.rebuilder ? cfg_.rebuilder(in) : core::recompile_rebuilder()(in);
  } else {
    bundle = core::recompile_rebuilder()(in);
  }
  // Publication lands swap_latency_s later on the event clock — and never
  // inside a crash window: a down controller cannot program tables, so the
  // swap is deferred to the window's end (counted).
  double due = ts_s + cfg_.swap_latency_s;
  const double up = ctl_->up_after(due);
  if (up > due) {
    ++stats_.publishes_deferred_by_crash;
    due = up;
  }
  pending_ = Pending{std::move(bundle), due, drift_triggered};
}

void SwapLoop::on_published() {
  ++stats_.publishes;
  obs_.publishes.inc();
  // Re-seat staging on the new live version: extensions staged after the
  // pending build are superseded by the fresh model (drift rebuilds) or
  // already included (incremental recompiles re-trigger quickly anyway).
  staging_fl_ = handle_.current()->fl;
  extensions_at_last_publish_ = updater_.extensions_applied();
  drift_.reset();
  needs_collect_ = true;
  obs_.version.set(static_cast<double>(handle_.version()));
}

void SwapLoop::finish() {
  if (pending_.has_value()) {
    const bool drift_triggered = pending_->drift_triggered;
    handle_.publish(std::move(pending_->bundle));
    pending_.reset();
    if (!drift_triggered) ++stats_.incremental_publishes;
    on_published();
  }
  handle_.quiesce(reader_);
  stats_.bundles_retired += handle_.collect();
  needs_collect_ = false;
}

SwapStats SwapLoop::stats() const {
  SwapStats out = stats_;
  out.extensions_applied = updater_.extensions_applied();
  out.rejected_by_budget = updater_.rejected_by_budget();
  out.final_version = handle_.version();
  return out;
}

}  // namespace iguard::switchsim
