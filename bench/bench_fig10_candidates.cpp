// Reproduces Fig. 10 (Appendix A): the candidate study for the model that
// guides iForest training and knowledge distillation. Compares macro F1 of
// kNN, PCA, conventional iForest, X-means, a VAE, and the Magnifier-style
// asymmetric autoencoder across all 15 attacks (thresholds tuned on the
// validation split, as in the paper). Expected shape: Magnifier (and VAE
// close behind) dominate, justifying Magnifier as iGuard's teacher.
#include <iostream>
#include <memory>

#include "eval/report.hpp"
#include "harness/cpu_lab.hpp"
#include "ml/autoencoder.hpp"
#include "ml/knn.hpp"
#include "ml/pca.hpp"
#include "ml/vae.hpp"
#include "ml/xmeans.hpp"

using namespace iguard;

int main() {
  harness::CpuLab lab{harness::CpuLabConfig{}};

  // Candidates, each fit once on the shared benign training set.
  std::vector<std::unique_ptr<ml::AnomalyDetector>> models;
  models.push_back(std::make_unique<ml::KnnDetector>());
  models.push_back(std::make_unique<ml::PcaDetector>());
  models.push_back(std::make_unique<ml::IsolationForest>(
      ml::IsolationForestConfig{.num_trees = 100, .subsample = 256, .contamination = 0.05}));
  models.push_back(std::make_unique<ml::XMeans>());
  models.push_back(std::make_unique<ml::Vae>());
  models.push_back(std::make_unique<ml::Autoencoder>(ml::magnifier_config()));

  ml::Rng rng(7);
  for (auto& m : models) m->fit(lab.train_x(), rng);

  std::vector<std::string> headers{"attack"};
  for (const auto& m : models) headers.push_back(m->name());
  eval::Table table(headers);

  std::vector<double> totals(models.size(), 0.0);
  std::vector<double> wins(models.size(), 0.0);
  const auto attacks = traffic::all_attacks();
  for (const auto atk : attacks) {
    const auto split = lab.make_attack_split(atk);
    std::vector<std::string> row{traffic::attack_name(atk)};
    double best = -1.0;
    std::size_t best_m = 0;
    for (std::size_t mi = 0; mi < models.size(); ++mi) {
      const auto metrics = lab.evaluate_detector(*models[mi], split);
      row.push_back(eval::Table::num(metrics.macro_f1));
      totals[mi] += metrics.macro_f1;
      if (metrics.macro_f1 > best) {
        best = metrics.macro_f1;
        best_m = mi;
      }
    }
    wins[best_m] += 1.0;
    table.add_row(std::move(row));
  }

  std::vector<std::string> avg{"Average"};
  for (double t : totals) avg.push_back(eval::Table::num(t / static_cast<double>(attacks.size())));
  table.add_row(std::move(avg));

  table.print(std::cout, "Fig. 10: teacher-candidate macro F1 across 15 attacks");
  std::cout << "\nwins per model:";
  for (std::size_t mi = 0; mi < models.size(); ++mi)
    std::cout << " " << models[mi]->name() << "=" << wins[mi];
  std::cout << "\nPaper's result: Magnifier has the best average F1 and wins all but one\n"
               "attack vs the VAE. KNOWN DEVIATION of this reproduction: on our synthetic\n"
               "traffic the proximity detectors (kNN, X-means) are stronger than on the\n"
               "paper's real captures, where benign diversity and distance concentration\n"
               "penalise them; Magnifier still clearly beats the conventional iForest and\n"
               "the threshold-free candidates, and remains the teacher iGuard uses (see\n"
               "EXPERIMENTS.md).\n";
  table.write_csv("fig10_candidates.csv");
  return 0;
}
