// Shared experiment harness for the paper's CPU experiments (§4.1, Figs. 2,
// 5, 7, 8, 10 and the adversarial Tables 2-3). One CpuLab owns the benign
// data and the benign-only-trained models (which are attack-independent);
// per-attack splits add 20% attack traffic to validation/test, calibrate
// decision thresholds on validation, and train/select iGuard per attack —
// the paper's protocol (§4).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/iguard.hpp"
#include "eval/metrics.hpp"
#include "features/flow_features.hpp"
#include "ml/detector.hpp"
#include "ml/iforest.hpp"
#include "trafficgen/attacks.hpp"

namespace iguard::harness {

struct CpuLabConfig {
  std::size_t benign_flows = 3000;
  std::size_t attack_flows = 600;
  features::FeatureSet feature_set = features::FeatureSet::kCpuExtended;
  double benign_test_fraction = 0.30;
  double val_fraction = 0.20;
  double attack_fraction = 0.20;  // attack share of val/test sets
  core::AeEnsembleConfig teacher{};
  ml::IsolationForestConfig iforest{.num_trees = 100, .subsample = 256, .contamination = 0.05};
  core::GuidedForestConfig forest{};
  /// The paper's "T" grid: multipliers on the validation-calibrated T_u.
  std::vector<double> scale_grid{0.9, 1.1, 1.3, 1.5};
  std::uint64_t seed = 2024;
};

/// Per-attack evaluation split (benign portions shared across attacks).
struct AttackSplit {
  traffic::AttackType type{};
  ml::Matrix val_x, test_x;
  std::vector<int> val_y, test_y;
};

/// Result of training + selecting iGuard for one attack.
struct IGuardOutcome {
  std::unique_ptr<core::IGuard> guard;
  double scale = 1.0;                  // selected T multiplier
  eval::DetectionMetrics model;        // distilled-forest majority vote
  eval::DetectionMetrics rules;        // deployed whitelist-rule verdicts
  double consistency = 1.0;            // §3.2.3 C on the test set
};

class CpuLab {
 public:
  explicit CpuLab(CpuLabConfig cfg);

  const ml::Matrix& train_x() const { return train_x_; }
  const core::AeEnsemble& teacher() const { return teacher_; }
  /// Mutable teacher access (thresholds are per-attack state by design).
  core::AeEnsemble& mutable_teacher() const { return teacher_; }
  const CpuLabConfig& config() const { return cfg_; }

  /// Build the val/test split for one attack (benign parts fixed).
  AttackSplit make_attack_split(traffic::AttackType type) const;
  /// Same but with caller-supplied attack feature rows (adversarial
  /// variants, Tables 2-3).
  AttackSplit make_attack_split(traffic::AttackType type, const ml::Matrix& attack_rows) const;

  /// Attack feature matrix with this lab's extractor settings.
  ml::Matrix attack_features(traffic::AttackType type) const;

  /// Calibrate `det`'s threshold on the split's validation set and evaluate
  /// on its test set. `det` must already be fit on benign training data.
  eval::DetectionMetrics evaluate_detector(ml::AnomalyDetector& det,
                                           const AttackSplit& split) const;

  /// Per-member calibrated thresholds T_u for this attack (scale 1.0).
  std::vector<double> calibrate_teacher(const AttackSplit& split) const;
  /// Teacher ensemble metrics at calibrated thresholds (the Magnifier rows
  /// of Figs. 5/8; score = member-0 reconstruction error).
  eval::DetectionMetrics evaluate_teacher(const AttackSplit& split,
                                          std::span<const double> base_t) const;

  /// Train iGuard over the T-scale grid, select on validation macro F1.
  /// NOTE: temporarily mutates the shared teacher's thresholds; restores
  /// the calibrated values afterwards.
  IGuardOutcome train_iguard(const AttackSplit& split, std::span<const double> base_t) const;

  /// The lab's conventional iForest (benign-trained, shared across attacks).
  ml::IsolationForest& iforest() { return iforest_; }
  const ml::IsolationForest& iforest() const { return iforest_; }

 private:
  CpuLabConfig cfg_;
  ml::Matrix train_x_, val_benign_, test_benign_;
  mutable core::AeEnsemble teacher_;  // thresholds recalibrated per attack
  ml::IsolationForest iforest_;
  mutable ml::Rng rng_;
};

}  // namespace iguard::harness
