#include <gtest/gtest.h>

#include "switchsim/faults.hpp"
#include "switchsim/flow_state.hpp"
#include "switchsim/pipeline.hpp"
#include "switchsim/registers.hpp"
#include "switchsim/resources.hpp"
#include "switchsim/tables.hpp"
#include "switchsim/timing.hpp"

namespace iguard::switchsim {
namespace {

traffic::Packet mk(double ts, std::uint16_t len, std::uint32_t src = 0x0A000001,
                   std::uint16_t sport = 1000, bool mal = false) {
  traffic::Packet p;
  p.ts = ts;
  p.ft = {src, 0x0A000002, sport, 80, traffic::kProtoTcp};
  p.length = len;
  p.ttl = 64;
  p.malicious = mal;
  return p;
}

// --- IntFlowState ------------------------------------------------------------

TEST(IntFlowState, MatchesFloatExtractorOnIntegerInputs) {
  // With microsecond-aligned timestamps and integer sizes, the integer
  // pipeline must agree with the float extractor on count/size features and
  // be within integer-division error on the rest.
  IntFlowState st;
  features::FlowStats fs;
  const double times[] = {0.0, 0.25, 0.75, 1.0};
  const std::uint16_t sizes[] = {100, 200, 300, 400};
  for (int i = 0; i < 4; ++i) {
    auto p = mk(times[i], sizes[i]);
    st.update(p, 1);
    fs.add(p, false);
  }
  const auto fi = st.finalize();
  const auto ff = features::finalize_features(fs, features::FeatureSet::kSwitch13);
  EXPECT_DOUBLE_EQ(fi[0], ff[0]);  // count
  EXPECT_DOUBLE_EQ(fi[1], ff[1]);  // total
  EXPECT_DOUBLE_EQ(fi[5], ff[5]);  // min
  EXPECT_DOUBLE_EQ(fi[6], ff[6]);  // max
  EXPECT_NEAR(fi[2], ff[2], 1.0);       // mean size (integer division)
  EXPECT_NEAR(fi[7], ff[7], 1e-5);      // mean ipd, seconds
  EXPECT_NEAR(fi[12], ff[12], 1e-6);    // duration
}

TEST(IntFlowState, ClearFeaturesKeepsLabelAndSig) {
  IntFlowState st;
  st.update(mk(0.0, 100), 42);
  st.label = 1;
  st.clear_features();
  EXPECT_EQ(st.pkt_count, 0u);
  EXPECT_EQ(st.label, 1);
  EXPECT_EQ(st.sig, 42u);
}

TEST(IntFlowState, SaturatingSumSquares) {
  IntFlowState st;
  auto p = mk(0.0, 1500);
  // Huge gaps to push the squared-IPD accumulator; must not wrap.
  for (int i = 0; i < 1000; ++i) {
    p.ts += 100.0;  // clamped to ~67 s internally
    st.update(p, 1);
  }
  EXPECT_GT(st.sum_sq_ipd_us, 0u);
  const auto f = st.finalize();
  for (double v : f) EXPECT_GE(v, 0.0);
}

TEST(ExtractSwitchFeatures, TruncatesAtThreshold) {
  traffic::Trace t;
  for (int i = 0; i < 20; ++i) t.packets.push_back(mk(0.1 * i, 100));
  const auto ds = extract_switch_features(t, 8, 0.0);
  ASSERT_EQ(ds.x.rows(), 3u);  // 8 + 8 + residual 4
  EXPECT_DOUBLE_EQ(ds.x(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(ds.x(2, 0), 4.0);
}

// --- FlowStore ---------------------------------------------------------------

TEST(FlowStore, InsertThenFind) {
  FlowStore store(64);
  const auto ft = mk(0.0, 100).ft;
  auto a1 = store.access(ft);
  EXPECT_TRUE(a1.inserted);
  a1.state->update(mk(0.0, 100), store.signature(ft));
  auto a2 = store.access(ft);
  EXPECT_TRUE(a2.found);
  EXPECT_EQ(a2.state, a1.state);
}

TEST(FlowStore, BidirectionalSameSlot) {
  FlowStore store(64);
  const auto fwd = mk(0.0, 100).ft;
  auto a1 = store.access(fwd);
  a1.state->update(mk(0.0, 100), store.signature(fwd));
  auto a2 = store.access(fwd.reversed());
  EXPECT_TRUE(a2.found);
  EXPECT_EQ(a2.state, a1.state);
}

TEST(FlowStore, CollisionWhenBothWaysFull) {
  FlowStore store(1);  // one slot per table: third distinct flow collides
  for (std::uint16_t sp = 1; sp <= 2; ++sp) {
    auto a = store.access(mk(0.0, 100, 0x0A000001, sp).ft);
    ASSERT_TRUE(a.inserted);
    a.state->update(mk(0.0, 100, 0x0A000001, sp), 1000 + sp);
  }
  auto c = store.access(mk(0.0, 100, 0x0A000001, 3).ft);
  EXPECT_TRUE(c.collision);
  EXPECT_EQ(store.occupied(), 2u);
}

// --- BlacklistTable / Controller ----------------------------------------------

TEST(Blacklist, InstallAndMatchBothDirections) {
  BlacklistTable bl(8);
  const auto ft = mk(0.0, 100).ft;
  EXPECT_FALSE(bl.contains(ft));
  bl.install(ft);
  EXPECT_TRUE(bl.contains(ft));
  EXPECT_TRUE(bl.contains(ft.reversed()));
}

TEST(Blacklist, FifoEviction) {
  BlacklistTable bl(2, EvictionPolicy::kFifo);
  const auto f1 = mk(0, 0, 1, 1).ft;
  const auto f2 = mk(0, 0, 2, 2).ft;
  const auto f3 = mk(0, 0, 3, 3).ft;
  bl.install(f1);
  bl.install(f2);
  bl.install(f3);  // evicts f1
  EXPECT_FALSE(bl.contains(f1));
  EXPECT_TRUE(bl.contains(f2));
  EXPECT_TRUE(bl.contains(f3));
  EXPECT_EQ(bl.evictions(), 1u);
}

TEST(Blacklist, LruEvictionRefreshesOnHit) {
  BlacklistTable bl(2, EvictionPolicy::kLru);
  const auto f1 = mk(0, 0, 1, 1).ft;
  const auto f2 = mk(0, 0, 2, 2).ft;
  const auto f3 = mk(0, 0, 3, 3).ft;
  bl.install(f1);
  bl.install(f2);
  EXPECT_TRUE(bl.contains(f1));  // refresh f1: f2 becomes LRU
  bl.install(f3);
  EXPECT_TRUE(bl.contains(f1));
  EXPECT_FALSE(bl.contains(f2));
}

TEST(Blacklist, LruInstallKeepsFifoQueueEmpty) {
  // Regression: the FIFO bookkeeping deque used to grow on every install
  // under LRU too, without ever being drained — unbounded memory on a
  // long-running table.
  BlacklistTable bl(2, EvictionPolicy::kLru);
  for (std::uint16_t i = 1; i <= 100; ++i) bl.install(mk(0, 0, i, i).ft);
  EXPECT_EQ(bl.size(), 2u);
  EXPECT_EQ(bl.order_queue_size(), 0u);
  EXPECT_EQ(bl.evictions(), 98u);
}

TEST(Blacklist, FifoQueueBoundedByLiveEntries) {
  BlacklistTable bl(2, EvictionPolicy::kFifo);
  for (std::uint16_t i = 1; i <= 100; ++i) bl.install(mk(0, 0, i, i).ft);
  EXPECT_EQ(bl.size(), 2u);
  // Evictions pop as installs push: the queue tracks live entries.
  EXPECT_EQ(bl.order_queue_size(), 2u);
}

TEST(Blacklist, FifoCompactsStaleKeysFromErase) {
  // erase() leaves withdrawn keys in the FIFO queue; the next full-table
  // install must skip them (no eviction charged) instead of evicting a
  // live entry that merely sits behind them.
  BlacklistTable bl(3, EvictionPolicy::kFifo);
  const auto f1 = mk(0, 0, 1, 1).ft;
  const auto f2 = mk(0, 0, 2, 2).ft;
  const auto f3 = mk(0, 0, 3, 3).ft;
  const auto f4 = mk(0, 0, 4, 4).ft;
  bl.install(f1);
  bl.install(f2);
  bl.install(f3);
  EXPECT_TRUE(bl.erase(f1));
  EXPECT_TRUE(bl.erase(f2));
  EXPECT_FALSE(bl.erase(f2));  // already gone
  EXPECT_EQ(bl.size(), 1u);
  EXPECT_EQ(bl.order_queue_size(), 3u);  // f1, f2 stale
  bl.install(f4);                        // room: no eviction, no compaction yet
  EXPECT_EQ(bl.evictions(), 0u);
  bl.install(f1);  // full again: compaction runs, f3 is the true oldest
  EXPECT_EQ(bl.evictions(), 0u);  // stale keys popped for free, table has room
  EXPECT_TRUE(bl.contains(f3));
  EXPECT_TRUE(bl.contains(f4));
  EXPECT_TRUE(bl.contains(f1));
  EXPECT_EQ(bl.size(), 3u);
}

TEST(Blacklist, DuplicateInstallRefreshSemantics) {
  // FIFO: re-install keeps the original eviction position. LRU: re-install
  // refreshes recency. Both report the duplicate (install() == false).
  const auto f1 = mk(0, 0, 1, 1).ft;
  const auto f2 = mk(0, 0, 2, 2).ft;
  const auto f3 = mk(0, 0, 3, 3).ft;
  {
    BlacklistTable fifo(2, EvictionPolicy::kFifo);
    EXPECT_TRUE(fifo.install(f1));
    EXPECT_TRUE(fifo.install(f2));
    EXPECT_FALSE(fifo.install(f1));  // does NOT move f1 to the back
    fifo.install(f3);                // f1 still oldest: evicted
    EXPECT_FALSE(fifo.contains(f1));
    EXPECT_TRUE(fifo.contains(f2));
  }
  {
    BlacklistTable lru(2, EvictionPolicy::kLru);
    EXPECT_TRUE(lru.install(f1));
    EXPECT_TRUE(lru.install(f2));
    EXPECT_FALSE(lru.install(f1));  // refreshes f1: f2 becomes the victim
    lru.install(f3);
    EXPECT_TRUE(lru.contains(f1));
    EXPECT_FALSE(lru.contains(f2));
  }
}

TEST(Blacklist, LruStampIndexMatchesReferenceScan) {
  // Regression for the O(log n) stamp index: replay a churny workload at
  // capacity against a reference model that finds its victim by linear
  // min-stamp scan (the old implementation), and assert the resident sets
  // stay identical after every operation.
  constexpr std::size_t kCap = 16;
  BlacklistTable bl(kCap, EvictionPolicy::kLru);
  std::unordered_map<std::uint64_t, std::uint64_t> ref;  // key -> stamp
  std::uint64_t ref_clock = 0;
  auto ref_key = [](const traffic::FiveTuple& ft) { return traffic::bihash(ft, 0xB1AC); };
  auto ref_install = [&](const traffic::FiveTuple& ft) {
    const auto k = ref_key(ft);
    if (ref.contains(k)) {
      ref[k] = ++ref_clock;
      return;
    }
    if (ref.size() >= kCap) {
      auto victim = ref.begin();
      for (auto it = ref.begin(); it != ref.end(); ++it)
        if (it->second < victim->second) victim = it;
      ref.erase(victim);
    }
    ref[k] = ++ref_clock;
  };
  auto ref_touch = [&](const traffic::FiveTuple& ft) {
    const auto it = ref.find(ref_key(ft));
    if (it != ref.end()) it->second = ++ref_clock;
  };

  SplitMix64 rng(0xC0FFEE);
  for (int op = 0; op < 5000; ++op) {
    const auto ft = mk(0, 0, static_cast<std::uint16_t>(1 + rng.next() % 64),
                       static_cast<std::uint16_t>(1 + rng.next() % 8))
                        .ft;
    if (rng.chance(0.3)) {
      const bool hit = bl.contains(ft);
      EXPECT_EQ(hit, ref.contains(ref_key(ft)));
      if (hit) ref_touch(ft);
    } else {
      bl.install(ft);
      ref_install(ft);
    }
    ASSERT_EQ(bl.size(), ref.size());
  }
  // Final resident sets identical (same victims were chosen throughout).
  for (const auto& [k, stamp] : ref) {
    (void)stamp;
    std::size_t found = 0;
    for (std::uint16_t sp = 1; sp <= 64; ++sp)
      for (std::uint16_t dp = 1; dp <= 8; ++dp)
        if (ref_key(mk(0, 0, sp, dp).ft) == k && bl.contains(mk(0, 0, sp, dp).ft)) ++found;
    EXPECT_GE(found, 1u);
  }
}

TEST(IntFlowState, OutOfOrderTimestampGapClampsToZero) {
  // A reordered packet (earlier timestamp than the last seen) must clamp
  // the inter-packet delay to 0 — no unsigned underflow into a huge IPD.
  IntFlowState st;
  st.update(mk(1.0, 100), 1);
  st.update(mk(0.5, 100), 1);  // out of order
  EXPECT_EQ(st.min_ipd_us, 0u);
  EXPECT_EQ(st.max_ipd_us, 0u);
  EXPECT_EQ(st.sum_ipd_us, 0u);
  st.update(mk(0.75, 100), 1);  // 0.25 s after the (rewound) last_ts
  EXPECT_EQ(st.max_ipd_us, 250000u);
  const auto f = st.finalize();
  for (double v : f) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1e12);  // an underflow would show up as ~1.8e13 us
  }
}

TEST(Controller, DigestAccountingAndInstall) {
  BlacklistTable bl(8);
  Controller ctl(bl);  // default config: zero latency, no faults
  const auto ft = mk(0.0, 100).ft;
  ctl.on_digest({ft, 0}, 0.0);
  ctl.advance_to(0.0);
  EXPECT_FALSE(bl.contains(ft));  // benign digest: no rule
  ctl.on_digest({ft, 1}, 0.1);
  ctl.advance_to(0.1);
  EXPECT_TRUE(bl.contains(ft));
  EXPECT_EQ(ctl.digests_received(), 2u);
  EXPECT_EQ(ctl.bytes_received(), 2u * Digest::kBytes);
  EXPECT_EQ(ctl.rules_installed(), 1u);
}

// --- Resources / timing --------------------------------------------------------

TEST(Resources, EmptySpecUsesOnlyStorage) {
  DeploymentSpec spec;
  const auto u = estimate_resources(spec);
  EXPECT_DOUBLE_EQ(u.tcam_frac, 0.0);
  EXPECT_GT(u.sram_frac, 0.0);
  EXPECT_GT(u.salu_frac, 0.0);
  EXPECT_EQ(u.stages, 12u);
}

TEST(Resources, TcamScalesWithRules) {
  core::VoteWhitelist small, large;
  small.tree_count = large.tree_count = 1;
  std::vector<rules::RangeRule> r1(10, rules::RangeRule{{{0, 5}, {0, 5}}, 0, 0});
  std::vector<rules::RangeRule> r2(100, rules::RangeRule{{{0, 5}, {0, 5}}, 0, 0});
  small.tables.emplace_back(r1);
  large.tables.emplace_back(r2);
  DeploymentSpec a, b;
  a.fl_rules = &small;
  b.fl_rules = &large;
  EXPECT_LT(estimate_resources(a).tcam_frac, estimate_resources(b).tcam_frac);
  EXPECT_NEAR(estimate_resources(b).tcam_frac / estimate_resources(a).tcam_frac, 10.0, 1e-9);
}

TEST(Timing, LatencyMatchesPaperBallpark) {
  TimingConfig cfg;
  EXPECT_NEAR(pipeline_latency_ns(cfg), 532.8, 1e-9);  // 12 x 44.4 ns
}

TEST(Timing, ThroughputModels) {
  TimingConfig cfg;
  const auto ig = all_dataplane_throughput(cfg, 0.01);
  EXPECT_NEAR(ig.gbps, 39.6, 1e-9);
  const auto he = control_assisted_throughput(cfg, 0.5);
  EXPECT_NEAR(he.gbps, 20.0 + cfg.control_plane_gbps, 1e-9);
  EXPECT_LT(he.gbps, ig.gbps);
}

// --- Pipeline paths -------------------------------------------------------------

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() {
    // Whitelist: one table accepting everything in [0, max]^13 => every
    // finalised flow is benign unless we shrink the rule.
    ml::Matrix fake(2, kSwitchFlFeatures);
    for (std::size_t j = 0; j < kSwitchFlFeatures; ++j) {
      fake(0, j) = 0.0;
      fake(1, j) = 1e6;
    }
    quant_.fit(fake);
    core::VoteWhitelist wl;
    wl.tree_count = 1;
    std::vector<rules::RangeRule> rules{
        {std::vector<rules::FieldRange>(kSwitchFlFeatures, {0, quant_.domain_max()}), 0, 0}};
    wl.tables.emplace_back(rules);
    wl_ = std::move(wl);
  }

  Pipeline make(PipelineConfig cfg) {
    DeployedModel dm;
    dm.fl_tables = &wl_;
    dm.fl_quantizer = &quant_;
    return Pipeline(cfg, dm);
  }

  rules::Quantizer quant_{16};
  core::VoteWhitelist wl_;
};

TEST_F(PipelineTest, BrownThenBlueThenPurple) {
  PipelineConfig cfg;
  cfg.packet_threshold_n = 3;
  cfg.idle_timeout_delta = 0.0;
  Pipeline pipe = make(cfg);
  SimStats st;
  pipe.process(mk(0.0, 100), st);  // brown (1st)
  pipe.process(mk(0.1, 100), st);  // brown (2nd)
  pipe.process(mk(0.2, 100), st);  // blue (3rd = n)
  pipe.process(mk(0.3, 100), st);  // purple (label stored)
  EXPECT_EQ(st.path(Path::kBrown), 2u);
  EXPECT_EQ(st.path(Path::kBlue), 1u);
  EXPECT_EQ(st.path(Path::kPurple), 1u);
  EXPECT_EQ(st.flows_classified, 1u);
  EXPECT_EQ(pipe.controller().digests_received(), 1u);
}

TEST_F(PipelineTest, TimeoutFinalisesIdleFlow) {
  PipelineConfig cfg;
  cfg.packet_threshold_n = 100;
  cfg.idle_timeout_delta = 1.0;
  Pipeline pipe = make(cfg);
  SimStats st;
  pipe.process(mk(0.0, 100), st);
  pipe.process(mk(0.1, 100), st);
  pipe.process(mk(5.0, 100), st);  // idle > 1 s: blue (timeout flavour)
  EXPECT_EQ(st.path(Path::kBlue), 1u);
  EXPECT_EQ(st.flows_classified, 1u);
}

TEST_F(PipelineTest, TimeoutSeedsFreshEpochWithTriggeringPacket) {
  // Regression: the packet that trips the idle timeout must start the next
  // feature epoch (as extract_switch_features does during training), not be
  // dropped from the registers entirely.
  PipelineConfig cfg;
  cfg.packet_threshold_n = 100;
  cfg.idle_timeout_delta = 1.0;
  Pipeline pipe = make(cfg);
  SimStats st;
  const auto trigger = mk(5.0, 321);
  pipe.process(mk(0.0, 100), st);
  pipe.process(mk(0.1, 100), st);
  pipe.process(trigger, st);  // timeout: finalise old epoch, seed new one
  const IntFlowState* flow = pipe.flow_store().find(trigger.ft);
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->pkt_count, 1u);
  EXPECT_EQ(flow->total_size, 321u);
  EXPECT_EQ(flow->last_ts_us, static_cast<std::uint64_t>(5.0 * 1e6));
}

TEST_F(PipelineTest, GreenMirrorsTrackedSeparately) {
  // Mirrors are copies of blue/orange packets; path_count must sum to the
  // packet total with the mirror volume in its own counter.
  PipelineConfig cfg;
  cfg.packet_threshold_n = 2;
  cfg.idle_timeout_delta = 0.0;
  Pipeline pipe = make(cfg);
  SimStats st;
  pipe.process(mk(0.0, 100), st);  // brown
  pipe.process(mk(0.1, 100), st);  // blue: finalise + mirror
  pipe.process(mk(0.2, 100), st);  // purple
  std::size_t paths = 0;
  for (std::size_t i = 0; i < 6; ++i) paths += st.path_count[i];
  EXPECT_EQ(paths, st.packets);
  EXPECT_EQ(st.path(Path::kGreen), 0u);
  EXPECT_EQ(st.green_mirrors, 1u);
}

TEST_F(PipelineTest, MaliciousFlowGetsBlacklisted) {
  // Shrink the whitelist so nothing matches: every classified flow is
  // malicious => digest installs a blacklist rule => red path afterwards.
  core::VoteWhitelist deny;
  deny.tree_count = 1;
  deny.tables.emplace_back(std::vector<rules::RangeRule>{});
  DeployedModel dm;
  dm.fl_tables = &deny;
  dm.fl_quantizer = &quant_;
  PipelineConfig cfg;
  cfg.packet_threshold_n = 2;
  Pipeline pipe(cfg, dm);
  SimStats st;
  pipe.process(mk(0.0, 100, 1, 1, true), st);  // brown
  pipe.process(mk(0.1, 100, 1, 1, true), st);  // blue -> malicious -> blacklist
  pipe.process(mk(0.2, 100, 1, 1, true), st);  // red
  EXPECT_EQ(st.path(Path::kRed), 1u);
  EXPECT_EQ(st.blacklist_hits, 1u);
  EXPECT_EQ(pipe.blacklist().size(), 1u);
  EXPECT_EQ(st.dropped, 2u);  // blue verdict + red
}

TEST_F(PipelineTest, CollisionTakesOrangePath) {
  PipelineConfig cfg;
  cfg.flow_slots = 1;  // force collisions with 3 distinct flows
  cfg.packet_threshold_n = 100;
  Pipeline pipe = make(cfg);
  SimStats st;
  pipe.process(mk(0.0, 100, 1, 1), st);
  pipe.process(mk(0.1, 100, 2, 2), st);
  pipe.process(mk(0.2, 100, 3, 3), st);  // both ways occupied
  EXPECT_GE(st.path(Path::kOrange), 1u);
  EXPECT_GE(st.collisions, 1u);
}

TEST_F(PipelineTest, MissingFlTablesThrows) {
  DeployedModel dm;
  dm.fl_quantizer = &quant_;
  EXPECT_THROW(Pipeline(PipelineConfig{}, dm), std::invalid_argument);
}

TEST_F(PipelineTest, PerPacketRecordsAligned) {
  PipelineConfig cfg;
  Pipeline pipe = make(cfg);
  traffic::Trace t;
  for (int i = 0; i < 50; ++i) t.packets.push_back(mk(0.01 * i, 100, 1, 1, i % 2 == 0));
  const auto st = pipe.run(t);
  EXPECT_EQ(st.packets, 50u);
  EXPECT_EQ(st.pred.size(), 50u);
  EXPECT_EQ(st.truth.size(), 50u);
}

// --- timestamp-cast train/deploy skew regression --------------------------
// The pipeline used to cast p.ts * 1e6 straight to uint64_t: a negative
// timestamp (pcap clock skew, pre-epoch captures) wrapped to a huge value
// and force-fired the idle timeout, finalising epochs the training-side
// extractor (which clamps via to_us) never saw. Both sides must share the
// same clamp.

TEST_F(PipelineTest, NegativeTimestampsDoNotForceIdleTimeout) {
  PipelineConfig cfg;
  cfg.packet_threshold_n = 0;    // threshold finalisation disabled
  cfg.idle_timeout_delta = 10.0; // only a real 10 s gap may finalise
  Pipeline pipe = make(cfg);
  SimStats st;
  // Five closely-spaced packets with negative timestamps: one live epoch,
  // nothing idle. Pre-fix, every packet after the first "timed out" (the
  // wrapped cast made now_us - last_ts_us astronomically large).
  for (int i = 0; i < 5; ++i) pipe.process(mk(-5.0 + 0.1 * i, 100), st);
  EXPECT_EQ(st.flows_classified, 0u);
  EXPECT_EQ(st.path(Path::kBlue), 0u);
  EXPECT_EQ(st.path(Path::kBrown), 5u);
}

TEST_F(PipelineTest, NegativeAndOutOfOrderEpochBoundariesMatchExtractor) {
  // Three flows, each exactly packet_threshold_n packets, with negative and
  // out-of-order timestamps. Epoch boundaries must land where the training
  // extractor puts them: one finalisation per flow, at the n-th packet.
  //
  // Classification counts alone cannot discriminate (the pre-fix pipeline
  // also happened to classify each flow once — just at the wrong packet, on
  // a truncated epoch). So the whitelist here admits only epochs whose
  // pkt_count feature is >= 3: a pipeline that finalises early produces a
  // 1- or 2-packet epoch, gets a malicious label, and shows up in fp/drops.
  rules::Quantizer quant{16};
  ml::Matrix fake(2, kSwitchFlFeatures);
  for (std::size_t j = 0; j < kSwitchFlFeatures; ++j) {
    fake(0, j) = 0.0;
    fake(1, j) = j == 0 ? 8.0 : 1e6;  // tight pkt_count range: 1 vs 3 resolve
  }
  quant.fit(fake);
  core::VoteWhitelist wl;
  wl.tree_count = 1;
  std::vector<rules::FieldRange> box(kSwitchFlFeatures, {0, quant.domain_max()});
  box[0] = {quant.quantize_value(0, 3.0), quant.domain_max()};
  wl.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});
  DeployedModel dm;
  dm.fl_tables = &wl;
  dm.fl_quantizer = &quant;

  PipelineConfig cfg;
  cfg.packet_threshold_n = 3;
  cfg.idle_timeout_delta = 10.0;
  traffic::Trace t;
  const double starts[3] = {-4.0, -0.1, 2.0};
  for (int f = 0; f < 3; ++f) {
    const auto src = static_cast<std::uint32_t>(10 + f);
    const auto sport = static_cast<std::uint16_t>(2000 + f);
    t.packets.push_back(mk(starts[f], 100, src, sport));
    t.packets.push_back(mk(starts[f] + 0.2, 100, src, sport));
    t.packets.push_back(mk(starts[f] - 0.3, 100, src, sport));  // out of order
  }
  const auto features = extract_switch_features(t, cfg.packet_threshold_n,
                                                cfg.idle_timeout_delta, 1);
  ASSERT_EQ(features.x.rows(), 3u);
  for (std::size_t r = 0; r < features.x.rows(); ++r) {
    ASSERT_EQ(features.x(r, 0), 3.0);  // every training epoch spans 3 packets
  }
  Pipeline pipe(cfg, dm);
  const auto st = pipe.run(t);
  EXPECT_EQ(st.flows_classified, features.x.rows());
  EXPECT_EQ(st.path(Path::kBlue), 3u);
  // Deployment saw the same 3-packet epochs, so the >=3-packets whitelist
  // admits every flow: no malicious verdicts, no drops, no red path.
  EXPECT_EQ(st.tp + st.fp, 0u);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_EQ(st.path(Path::kRed), 0u);
}

}  // namespace
}  // namespace iguard::switchsim
