#include "ml/scaler.hpp"

#include <gtest/gtest.h>

namespace iguard::ml {
namespace {

TEST(StandardScaler, ZeroMeanUnitVar) {
  Matrix x{{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}, {4.0, 40.0}};
  StandardScaler s;
  Matrix z = s.fit_transform(x);
  for (std::size_t j = 0; j < 2; ++j) {
    double mean = 0.0, var = 0.0;
    for (std::size_t i = 0; i < 4; ++i) mean += z(i, j);
    mean /= 4.0;
    for (std::size_t i = 0; i < 4; ++i) var += (z(i, j) - mean) * (z(i, j) - mean);
    var /= 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(var, 1.0, 1e-12);
  }
}

TEST(StandardScaler, ConstantColumnMapsToZero) {
  Matrix x{{5.0}, {5.0}, {5.0}};
  StandardScaler s;
  Matrix z = s.fit_transform(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(z(i, 0), 0.0);
}

TEST(StandardScaler, InverseRoundTrip) {
  Matrix x{{1.0, -3.0}, {4.0, 2.0}, {-2.0, 8.0}};
  StandardScaler s;
  Matrix z = s.fit_transform(x);
  Matrix back = s.inverse_transform(z);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < x.cols(); ++j) EXPECT_NEAR(back(i, j), x(i, j), 1e-10);
}

TEST(StandardScaler, WidthMismatchThrows) {
  Matrix x{{1.0, 2.0}};
  StandardScaler s;
  s.fit(x);
  Matrix bad{{1.0, 2.0, 3.0}};
  EXPECT_THROW(s.transform(bad), std::invalid_argument);
}

TEST(MinMaxScaler, MapsToUnitInterval) {
  Matrix x{{0.0, -10.0}, {5.0, 0.0}, {10.0, 10.0}};
  MinMaxScaler s;
  Matrix z = s.fit_transform(x);
  EXPECT_DOUBLE_EQ(z(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(z(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(z(1, 1), 0.5);
}

TEST(MinMaxScaler, ClampsOutOfRange) {
  Matrix x{{0.0}, {10.0}};
  MinMaxScaler s;
  s.fit(x);
  Matrix probe{{-5.0}, {15.0}};
  Matrix z = s.transform(probe);
  EXPECT_DOUBLE_EQ(z(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(z(1, 0), 1.0);
}

TEST(Scalers, EmptyFitThrows) {
  Matrix empty;
  StandardScaler a;
  MinMaxScaler b;
  EXPECT_THROW(a.fit(empty), std::invalid_argument);
  EXPECT_THROW(b.fit(empty), std::invalid_argument);
}

}  // namespace
}  // namespace iguard::ml
