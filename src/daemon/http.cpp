#include "daemon/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace iguard::daemon {

namespace {

/// Write the whole buffer, riding out EINTR / partial writes. MSG_NOSIGNAL:
/// a peer that disconnects mid-response (curl timeout, prober closing early)
/// must yield EPIPE here, not a process-killing SIGPIPE.
void write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
    } else if (n < 0 && errno != EINTR) {
      return;  // EPIPE/ECONNRESET/timeout: peer went away; nothing useful to do
    }
  }
}

/// Bound every socket op on an accepted connection so a silent or stalled
/// peer cannot pin serve_loop (and therefore stop()) forever.
void set_io_timeouts(int fd) {
  timeval tv{};
  tv.tv_sec = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

std::string HttpServer::start(std::uint16_t port, Handler handler) {
  if (listen_fd_ >= 0) return "already running";
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::string("socket: ") + std::strerror(errno);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return err;
  }
  if (::listen(fd, 8) != 0) {
    const std::string err = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return err;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) != 0) {
    const std::string err = std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return err;
  }
  port_ = ntohs(bound.sin_port);
  handler_ = std::move(handler);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
  return {};
}

void HttpServer::stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks the accept()
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::serve_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket was shut down
    }
    set_io_timeouts(conn);
    // Read until the end of the request head; the request line is all we
    // use, and it cannot span more than this bound in a legitimate scrape.
    // A receive timeout (EAGAIN) falls out of the loop: the connection gets
    // a 400 and serve_loop returns to accept() instead of blocking stop().
    std::string req;
    char buf[1024];
    while (req.size() < 8192 && req.find("\r\n") == std::string::npos) {
      const ssize_t n = ::read(conn, buf, sizeof(buf));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      req.append(buf, static_cast<std::size_t>(n));
    }

    HttpResponse resp;
    const std::size_t sp1 = req.find(' ');
    const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos : req.find(' ', sp1 + 1);
    if (req.compare(0, 4, "GET ") != 0 || sp2 == std::string::npos) {
      resp.status = 400;
      resp.body = "bad request\n";
    } else {
      resp = handler_(req.substr(sp1 + 1, sp2 - sp1 - 1));
    }
    requests_.fetch_add(1, std::memory_order_relaxed);

    const char* reason = resp.status == 200   ? "OK"
                         : resp.status == 404 ? "Not Found"
                         : resp.status == 400 ? "Bad Request"
                                              : "Internal Server Error";
    std::string head = "HTTP/1.0 " + std::to_string(resp.status) + " " + reason +
                       "\r\nContent-Type: " + resp.content_type +
                       "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                       "\r\nConnection: close\r\n\r\n";
    write_all(conn, head.data(), head.size());
    write_all(conn, resp.body.data(), resp.body.size());
    ::shutdown(conn, SHUT_WR);
    ::close(conn);
  }
}

}  // namespace iguard::daemon
