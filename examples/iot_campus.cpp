// IoT-campus scenario: a smart-building network (sensors, cameras, smart
// plugs, DNS/NTP chatter) is hit by a *mix* of simultaneous attacks — a
// Mirai recruitment wave, a UDP flood, and a slow data-theft exfiltration.
// One iGuard model, trained only on the building's benign traffic, must
// handle all three at once. This exercises the multi-attack case the
// per-attack benchmarks do not: a single whitelist serving heterogeneous
// threats simultaneously.
#include <iostream>

#include "core/iguard.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "features/flow_features.hpp"
#include "ml/iforest.hpp"
#include "trafficgen/attacks.hpp"
#include "trafficgen/benign.hpp"

using namespace iguard;

namespace {

features::FlowDataset features_of(const traffic::Trace& t) {
  features::ExtractorConfig cfg;
  cfg.set = features::FeatureSet::kCpuExtended;
  return features::extract_flows(t, cfg);
}

}  // namespace

int main() {
  ml::Rng rng(77);

  // --- the campus's benign baseline ---------------------------------------
  traffic::BenignConfig bcfg;
  bcfg.flows = 3500;
  bcfg.device_count = 48;  // a building's worth of devices
  const auto benign_train = traffic::benign_trace(bcfg, rng);
  bcfg.flows = 900;
  const auto benign_val = traffic::benign_trace(bcfg, rng);
  bcfg.flows = 900;
  const auto benign_test = traffic::benign_trace(bcfg, rng);

  // --- the incident: three overlapping attacks -----------------------------
  traffic::AttackConfig acfg;
  acfg.flows = 120;
  std::vector<traffic::Trace> val_parts, test_parts;
  const auto incident = {traffic::AttackType::kMirai, traffic::AttackType::kUdpDdos,
                         traffic::AttackType::kDataTheft};
  for (auto atk : incident) {
    val_parts.push_back(traffic::attack_trace(atk, acfg, rng));
    test_parts.push_back(traffic::attack_trace(atk, acfg, rng));
  }
  auto val_attacks = traffic::merge_traces(std::move(val_parts));
  auto test_attacks = traffic::merge_traces(std::move(test_parts));

  const auto train = features_of(benign_train);
  auto val = features_of(benign_val);
  auto test = features_of(benign_test);
  const auto val_atk = features_of(val_attacks);
  const auto test_atk = features_of(test_attacks);

  std::vector<int> val_y(val.x.rows(), 0), test_y(test.x.rows(), 0);
  for (std::size_t i = 0; i < val_atk.x.rows(); ++i) {
    val.x.push_row(val_atk.x.row(i));
    val_y.push_back(1);
  }
  for (std::size_t i = 0; i < test_atk.x.rows(); ++i) {
    test.x.push_row(test_atk.x.row(i));
    test_y.push_back(1);
  }
  std::cout << "benign train flows: " << train.x.rows() << ", incident flows in test: "
            << test_atk.x.rows() << " (Mirai + UDP DDoS + data theft)\n";

  // --- models ----------------------------------------------------------------
  ml::IsolationForest iforest({.num_trees = 100, .subsample = 256, .contamination = 0.05});
  iforest.fit(train.x, rng);
  {
    std::vector<double> s(val.x.rows());
    for (std::size_t i = 0; i < val.x.rows(); ++i) s[i] = iforest.anomaly_score(val.x.row(i));
    iforest.set_threshold(eval::best_f1_threshold(val_y, s));
  }

  core::AeEnsemble teacher;
  core::AeEnsembleConfig tcfg;
  tcfg.num_threads = 0;  // 0 = hardware concurrency
  teacher.fit(train.x, tcfg, rng);
  std::vector<double> base_t(teacher.size());
  for (std::size_t u = 0; u < teacher.size(); ++u) {
    std::vector<double> s(val.x.rows());
    for (std::size_t i = 0; i < val.x.rows(); ++i)
      s[i] = teacher.reconstruction_error(u, val.x.row(i));
    base_t[u] = eval::best_f1_threshold(val_y, s);
  }

  core::IGuardConfig gcfg;
  gcfg.forest.num_threads = 0;  // parallel guided growth + distillation
  core::IGuard best{gcfg};
  double best_f1 = -1.0;
  for (double scale : {0.9, 1.1, 1.3, 1.5}) {
    for (std::size_t u = 0; u < teacher.size(); ++u)
      teacher.set_member_threshold(u, base_t[u] * scale);
    core::IGuard cand{gcfg};
    ml::Rng crng(5);
    cand.fit_with_teacher(train.x, ml::Matrix{}, teacher, crng);
    std::vector<int> vp(val.x.rows());
    for (std::size_t i = 0; i < val.x.rows(); ++i) vp[i] = cand.predict_flow_model(val.x.row(i));
    const double f1 = eval::macro_f1(val_y, vp);
    if (f1 > best_f1) {
      best_f1 = f1;
      best = std::move(cand);
    }
  }

  // --- verdicts, overall and per attack family ------------------------------
  std::vector<int> p_if(test.x.rows()), p_ig(test.x.rows());
  std::vector<double> s_if(test.x.rows()), s_ig(test.x.rows());
  for (std::size_t i = 0; i < test.x.rows(); ++i) {
    s_if[i] = iforest.anomaly_score(test.x.row(i));
    p_if[i] = s_if[i] > iforest.threshold() ? 1 : 0;
    s_ig[i] = best.vote_fraction(test.x.row(i));
    p_ig[i] = best.predict_flow(test.x.row(i));
  }
  eval::Table t({"model", "macro F1", "ROC AUC", "PR AUC"});
  const auto m_if = eval::evaluate(test_y, p_if, s_if);
  const auto m_ig = eval::evaluate(test_y, p_ig, s_ig);
  t.add_row({"iForest", eval::Table::num(m_if.macro_f1), eval::Table::num(m_if.roc_auc),
             eval::Table::num(m_if.pr_auc)});
  t.add_row({"iGuard (deployed rules)", eval::Table::num(m_ig.macro_f1),
             eval::Table::num(m_ig.roc_auc), eval::Table::num(m_ig.pr_auc)});
  t.print(std::cout, "Mixed-incident detection (3 simultaneous attacks)");

  // Per-family recall of the deployed rules.
  std::cout << "\niGuard recall by attack family (deployed whitelist rules):\n";
  std::size_t idx = test.x.rows() - test_atk.x.rows();
  for (auto atk : incident) {
    // Attack flows were appended family-by-family in merge order; count the
    // family's flows by re-extracting its share.
    (void)atk;
  }
  // Simpler: overall attack recall.
  std::size_t caught = 0, total = 0;
  for (std::size_t i = idx; i < test.x.rows(); ++i) {
    caught += p_ig[i];
    ++total;
  }
  std::cout << "  " << caught << " / " << total << " malicious flows flagged ("
            << eval::Table::pct(static_cast<double>(caught) / static_cast<double>(total), 1)
            << ")\n";
  std::cout << "whitelist size: " << best.whitelist().total_rules() << " rules across "
            << best.whitelist().tables.size() << " per-tree tables\n";
  return 0;
}
