#include "io/overload.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>

#include "io/spsc_ring.hpp"
#include "switchsim/faults.hpp"

namespace iguard::io {

std::string_view shed_policy_name(ShedPolicy p) {
  switch (p) {
    case ShedPolicy::kDropNewest: return "drop_newest";
    case ShedPolicy::kDropOldest: return "drop_oldest";
    case ShedPolicy::kFlowHash: return "flow_hash";
  }
  return "unknown";
}

std::string validate_config(const OverloadConfig& cfg) {
  if (cfg.queue_capacity == 0) return "queue_capacity: must be >= 1 (got 0)";
  if (std::isnan(cfg.drain_rate_pps) || std::isinf(cfg.drain_rate_pps) ||
      cfg.drain_rate_pps < 0.0) {
    return "drain_rate_pps: must be finite and >= 0 (got " +
           std::to_string(cfg.drain_rate_pps) + ")";
  }
  if (std::isnan(cfg.flow_shed_fraction) || cfg.flow_shed_fraction < 0.0 ||
      cfg.flow_shed_fraction > 1.0) {
    return "flow_shed_fraction: must be in [0, 1] (got " +
           std::to_string(cfg.flow_shed_fraction) + ")";
  }
  return {};
}

OverloadGate::OverloadGate(const OverloadConfig& cfg) : cfg_(cfg) {
  if (const std::string err = validate_config(cfg_); !err.empty()) {
    const std::size_t colon = err.find(':');
    throw switchsim::ConfigError("OverloadConfig", err.substr(0, colon),
                                 colon == std::string::npos ? err : err.substr(colon + 2));
  }
}

bool OverloadGate::flow_in_shed_set(const traffic::FiveTuple& ft) const {
  if (cfg_.flow_shed_fraction <= 0.0) return false;
  if (cfg_.flow_shed_fraction >= 1.0) return true;
  return static_cast<double>(traffic::bihash(ft, cfg_.seed)) <
         cfg_.flow_shed_fraction *
             static_cast<double>(std::numeric_limits<std::uint64_t>::max());
}

void OverloadGate::drain_to(double ts_s, std::vector<traffic::Packet>& out) {
  const double elapsed = std::max(0.0, ts_s - t0_);
  const auto tokens = static_cast<std::uint64_t>(elapsed * cfg_.drain_rate_pps);
  while (drained_ < tokens && head_ < queue_.size()) {
    out.push_back(queue_[head_++]);
    ++drained_;
    ++stats_.admitted;
  }
  if (head_ == queue_.size()) {
    queue_.clear();
    head_ = 0;
  } else if (head_ > 4096 && head_ * 2 > queue_.size()) {
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

void OverloadGate::offer(const traffic::Packet& p, std::vector<traffic::Packet>& out) {
  ++stats_.offered;
  if (!cfg_.enabled || cfg_.drain_rate_pps == 0.0) {
    ++stats_.admitted;
    out.push_back(p);
    return;
  }
  if (!clock_started_) {
    clock_started_ = true;
    t0_ = p.ts;
  }
  drain_to(p.ts, out);

  if (queue_.empty()) {
    // Idle→busy edge: rebase the event clock at the start of each busy
    // period. This both forfeits tokens banked while the queue was empty
    // (an idle server must not save capacity for a later burst) and keeps
    // `elapsed * drain_rate_pps` proportional to the busy period instead of
    // the stream lifetime — against a fixed t0_ the product eventually
    // passes 2^53, where doubles stop resolving single tokens and the gate
    // silently freezes or over-admits on long horizons.
    t0_ = p.ts;
    drained_ = 0;
  }

  const std::size_t queued = queue_.size() - head_;
  if (queued < cfg_.queue_capacity) {
    queue_.push_back(p);
    stats_.queue_hwm = std::max(stats_.queue_hwm, queued + 1);
    return;
  }
  switch (cfg_.policy) {
    case ShedPolicy::kDropNewest:
      ++stats_.shed;
      ++stats_.shed_newest;
      return;
    case ShedPolicy::kDropOldest:
      ++head_;
      ++stats_.shed;
      ++stats_.shed_oldest;
      queue_.push_back(p);
      return;
    case ShedPolicy::kFlowHash:
      if (flow_in_shed_set(p.ft)) {
        ++stats_.shed;
        ++stats_.shed_flow_hash;
        return;
      }
      ++head_;
      ++stats_.shed;
      ++stats_.shed_oldest;
      queue_.push_back(p);
      return;
  }
}

void OverloadGate::flush(std::vector<traffic::Packet>& out) {
  while (head_ < queue_.size()) {
    out.push_back(queue_[head_++]);
    ++stats_.admitted;
  }
  queue_.clear();
  head_ = 0;
}

ShedResult shed_overload(const traffic::Trace& trace, const OverloadConfig& cfg) {
  OverloadGate gate(cfg);
  ShedResult r;
  r.admitted.packets.reserve(trace.size());
  for (const auto& p : trace.packets) gate.offer(p, r.admitted.packets);
  gate.flush(r.admitted.packets);
  r.stats = gate.stats();
  return r;
}

traffic::Trace pump_through_ring(const traffic::Trace& trace, std::size_t ring_capacity,
                                 RingPumpStats& stats, std::size_t produce_count) {
  SpscRing<traffic::Packet> ring(ring_capacity);
  const std::size_t to_produce = std::min(produce_count, trace.size());
  traffic::Trace out;
  out.packets.reserve(to_produce);

  std::uint64_t push_retries = 0;
  std::thread producer([&] {
    for (std::size_t i = 0; i < to_produce; ++i) {
      while (!ring.try_push(trace.packets[i])) {
        ++push_retries;  // backpressure: spin, never drop
        std::this_thread::yield();
      }
    }
    ring.close();
  });

  // Drain until the producer closes the ring and the residue is popped.
  // Keying the exit on the close signal instead of an expected count means a
  // producer that stops early (truncated source, shutdown) ends the pump
  // instead of live-locking the consumer.
  traffic::Packet p;
  for (;;) {
    if (ring.try_pop(p)) {
      out.packets.push_back(p);
      continue;
    }
    if (ring.closed()) {
      // close() is stored after the final push; re-check once after
      // observing it so that push cannot be missed.
      if (!ring.try_pop(p)) break;
      out.packets.push_back(p);
      continue;
    }
    ++stats.pop_retries;
    std::this_thread::yield();
  }
  producer.join();

  stats.pushed += to_produce;
  stats.popped += out.packets.size();
  stats.push_retries += push_retries;
  return out;
}

}  // namespace iguard::io
