file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_adversarial.dir/bench_table2_adversarial.cpp.o"
  "CMakeFiles/bench_table2_adversarial.dir/bench_table2_adversarial.cpp.o.d"
  "bench_table2_adversarial"
  "bench_table2_adversarial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
