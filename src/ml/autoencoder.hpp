// Dense autoencoders trained on benign traffic; anomaly score is the RMSE
// reconstruction error of §3.2.1:  RE(x) = sqrt(1/m * sum_i (AE(x)_i - x_i)^2)
// computed in standardised feature space. Includes a factory for the
// asymmetric "Magnifier"-style architecture of HorusEye (deep encoder,
// single-layer decoder) and for the paper's custom testbed autoencoder.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/detector.hpp"
#include "ml/nn.hpp"
#include "ml/scaler.hpp"

namespace iguard::ml {

struct AutoencoderConfig {
  /// Hidden layer widths of the encoder (last entry = bottleneck).
  std::vector<std::size_t> encoder_hidden{16, 4};
  /// Hidden layer widths of the decoder, bottleneck excluded, output layer
  /// implied. Empty = asymmetric single-layer decoder.
  std::vector<std::size_t> decoder_hidden{};
  std::size_t epochs = 40;
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;
  /// RMSE threshold T_u = this quantile of training reconstruction errors.
  double threshold_quantile = 0.98;
  std::string label = "autoencoder";
};

class Autoencoder : public AnomalyDetector {
 public:
  explicit Autoencoder(AutoencoderConfig cfg = {}) : cfg_(std::move(cfg)) {}

  void fit(const Matrix& benign, Rng& rng) override;
  double score(std::span<const double> x) override { return reconstruction_error(x); }
  bool thread_safe_score() const override { return true; }
  double threshold() const override { return threshold_; }
  void set_threshold(double t) override { threshold_ = t; }
  std::string name() const override { return cfg_.label; }

  /// RMSE reconstruction error in standardised space (RE_u in the paper).
  /// Const and race-free: concurrent calls on one fitted autoencoder are
  /// safe (scratch buffers are thread-local).
  double reconstruction_error(std::span<const double> x) const;

  /// Final-epoch training loss (diagnostics / tests).
  double final_loss() const { return final_loss_; }
  const AutoencoderConfig& config() const { return cfg_; }

 private:
  AutoencoderConfig cfg_;
  StandardScaler scaler_;
  Mlp net_;
  double threshold_ = 0.0;
  double final_loss_ = 0.0;
};

/// HorusEye's Magnifier stand-in: deep encoder m->32->16->4, shallow decoder
/// 4->m (the asymmetry is the point: cheap decode, expressive encode).
AutoencoderConfig magnifier_config(std::size_t epochs = 40);

/// The paper's custom asymmetric AE for the 13 switch-extractable FL
/// features (§4.2): smaller encoder suited to the reduced feature set.
AutoencoderConfig testbed_autoencoder_config(std::size_t epochs = 40);

}  // namespace iguard::ml
