// Minimal HTTP/1.0 text endpoint for iguardd (DESIGN.md §4i): serves the
// Prometheus exposition, the alerts stream, and a health probe over a
// loopback socket. Deliberately tiny — GET only, one connection at a time,
// Connection: close — because the daemon's observability surface is a
// handful of text documents scraped every few seconds, not a web service.
// The serving thread never touches pipeline state directly; handlers are
// closures the daemon binds over its own snapshot methods.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace iguard::daemon {

struct HttpResponse {
  int status = 200;  // 200 or 404; anything else renders as 500
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
};

/// Loopback-only (127.0.0.1) blocking HTTP server on its own thread.
class HttpServer {
 public:
  /// Called on the serving thread with the request path ("/metrics").
  using Handler = std::function<HttpResponse(const std::string& path)>;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind 127.0.0.1:`port` (0 = ephemeral; see port()) and start the accept
  /// thread. Returns empty on success, otherwise the failing syscall.
  std::string start(std::uint16_t port, Handler handler);

  /// The bound port — the ephemeral one when start() was given 0.
  std::uint16_t port() const { return port_; }

  /// Shut the listening socket down and join the thread. Idempotent.
  void stop();

  bool running() const { return listen_fd_ >= 0; }
  std::uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }

 private:
  void serve_loop();

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  Handler handler_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace iguard::daemon
