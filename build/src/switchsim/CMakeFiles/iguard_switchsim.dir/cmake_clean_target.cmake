file(REMOVE_RECURSE
  "libiguard_switchsim.a"
)
