// iguardd core (DESIGN.md §4i): the long-running serving loop that composes
// the hardened ingest chain into one process —
//
//   source (file tail / fd) → RecordFramer → io::TraceReader
//     → event-time offset (looped replay stays monotone)
//     → io::OverloadGate → io::SpscRing
//     → shard_of() → K switchsim::Pipelines (one consumer thread)
//     → obs registry (Prometheus text) + AlertLog
//
// Two execution modes share every stage: run() uses a producer thread
// (source→gate→ring) plus the calling thread as consumer (ring→pipelines);
// run_synchronous() interleaves pump_once()/drain_some() on one thread.
// Because the ring preserves order and every stage is a deterministic
// function of the packet sequence, both modes produce byte-identical
// non-timing state — the determinism tests gate exactly that.
//
// Steady-state allocation contract: the consumer packet path (try_pop →
// shard_of → Pipeline::process → alert cadence check) allocates nothing
// once warm — the alloc-probe test extends the counting-operator-new gate
// over drain_some(). The producer side allocates per *batch* (file chunk,
// reader result), never per packet, and reuses its buffers across batches.
//
// Reload: request_reload() re-validates a full DaemonConfig, rejects
// structural changes (shards, source identity, pipeline/control shape) with
// a reason, and hot-applies the rest at safe points — the producer swaps
// the overload gate between batches (the old gate's queue is flushed into
// the ring, so no packet is lost), and the consumer routes a model
// rebuild+publish through each shard's hitless swap loop. Conservation
// (`ingest.accepted == gate.offered`, `gate.offered == admitted + shed`,
// `pushed == popped == Σ shard packets`) holds across the reload;
// audit_daemon_conservation() checks the whole chain.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "daemon/alerts.hpp"
#include "daemon/source.hpp"
#include "io/ingest.hpp"
#include "io/overload.hpp"
#include "io/spsc_ring.hpp"
#include "obs/metrics.hpp"
#include "switchsim/pipeline.hpp"
#include "switchsim/replay.hpp"

namespace iguard::daemon {

struct SourceConfig {
  enum class Kind : std::uint8_t { kFile = 0, kFd };
  Kind kind = Kind::kFile;
  std::string path;  // kFile
  int fd = -1;       // kFd: borrowed descriptor (stdin, replay socket)
  /// Times a finite file is replayed end-to-end. 0 = loop forever (until
  /// request_stop); meaningful for kFile only.
  std::size_t loops = 1;
  /// kFile: keep polling for appended bytes after EOF (tail -f) instead of
  /// ending the pass. Mutually exclusive with loops != 1.
  bool follow = false;
  /// Event-time gap inserted between loop iterations when the replay wraps.
  double loop_gap_s = 0.001;
  std::size_t chunk_bytes = 64 * 1024;
};

struct DaemonConfig {
  SourceConfig source;
  io::TraceReaderConfig reader;  // metrics/prefix are overridden by the daemon
  io::OverloadConfig overload;
  /// Per-shard pipeline template; metrics_prefix is rewritten per shard
  /// ("<metrics_prefix>.shard0") and record_labels is forced off (a
  /// long-running daemon must not grow per-packet label vectors).
  switchsim::PipelineConfig pipeline;
  std::size_t shards = 1;
  std::uint64_t shard_seed = switchsim::ReplayConfig{}.shard_seed;
  std::size_t ring_capacity = 1024;
  /// Batching ceiling per reader call (records); bounds producer latency.
  std::size_t max_batch_records = 4096;
  /// Consumer-side alert/reload scan cadence, in popped packets.
  std::uint64_t alert_check_every = 256;
  std::size_t alert_capacity = 1024;
  /// Optional caller-owned registry shared by every stage (reader counters,
  /// gate counters, per-shard pipeline instruments, daemon counters).
  obs::Registry* metrics = nullptr;
  std::string metrics_prefix = "daemon";
};

/// Empty string when well-formed, otherwise "field: problem". The Daemon
/// constructor throws switchsim::ConfigError on a non-empty result.
std::string validate_config(const DaemonConfig& cfg);

struct DaemonStats {
  io::IngestStats ingest;          // cumulative over every reader batch
  /// Timestamp regressions across batch boundaries fixed by the daemon's
  /// stream-level monotone clamp (the reader clamps only within a batch).
  std::uint64_t cross_batch_clamped = 0;
  io::OverloadStats gate;          // cumulative, across gate reloads
  std::uint64_t pushed = 0;        // packets entered into the ring
  std::uint64_t popped = 0;        // packets consumed from the ring
  std::uint64_t batches = 0;       // reader calls
  std::uint64_t loops_completed = 0;
  std::uint64_t reloads_applied = 0;
  std::uint64_t reloads_rejected = 0;
  bool container_ok = true;
  std::string container_error;     // first container failure, if any
  switchsim::SimStats sim;         // merged across shards (merge_stats)

  bool operator==(const DaemonStats&) const = default;
};

/// Empty string when every conservation identity holds end to end:
///   ingest.offered == accepted + quarantined        (reader)
///   gate.offered   == ingest.accepted               (no loss reader→gate)
///   gate.offered   == admitted + shed               (gate)
///   pushed == gate.admitted, popped == pushed       (ring, after drain)
///   sim.packets == popped                           (pipelines)
/// Otherwise the first violated identity, spelled out.
std::string audit_daemon_conservation(const DaemonStats& s);

class Daemon {
 public:
  enum class PumpStatus : std::uint8_t {
    kProgress = 0,  // bytes moved
    kIdle,          // nothing right now (follow mode); caller may sleep
    kDone,          // source finished and the ring is closed
  };

  /// Throws switchsim::ConfigError on an invalid config. The model (and the
  /// registry, when set) must outlive the daemon.
  Daemon(const DaemonConfig& cfg, const switchsim::DeployedModel& model);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Producer step: poll the source once, frame, ingest, gate, push into
  /// the ring. Single-threaded callers interleave this with drain_some();
  /// run() calls it from the producer thread.
  PumpStatus pump_once();

  /// Consumer step: pop and process up to `max_packets`. Returns packets
  /// processed. Applies a pending model reload at entry (a safe point).
  std::size_t drain_some(std::size_t max_packets);

  /// Threaded serving loop: producer thread + this thread as consumer.
  /// Returns when the source finishes (finite loops / fd EOF) or after
  /// request_stop(); the gate is flushed, the ring drained, and the
  /// pipelines' end-of-stream epilogue has run.
  void run();

  /// Deterministic single-thread loop (tests, examples): alternate
  /// pump_once()/drain_some() until done, then finalize. Byte-identical
  /// non-timing state to run().
  void run_synchronous();

  /// Ask the serving loop to wind down: the producer stops reading new
  /// bytes, flushes the gate, closes the ring; the consumer drains the
  /// residue. Callable from any thread (signal-handler driven).
  void request_stop();
  bool stop_requested() const { return stop_.load(std::memory_order_relaxed); }

  /// Re-validate `next` and stage it for hot application. Returns empty on
  /// acceptance; otherwise the rejection reason (invalid config, a
  /// structural change that needs a restart, or a source that already
  /// finished — nothing would ever apply the staged halves). Callable from
  /// any thread.
  std::string request_reload(const DaemonConfig& next);

  /// End-of-stream epilogue; idempotent. run()/run_synchronous() call it —
  /// step-mode callers (pump_once/drain_some) must call it themselves once
  /// pump_once() returns kDone and drain_some() returns 0.
  void finalize();

  /// Composed stats snapshot. Exact when the daemon is quiescent (after
  /// run()/finalize()); mid-run it is a best-effort racy read.
  DaemonStats stats() const;

  const AlertLog& alerts() const { return alerts_; }
  const io::QuarantineRing& quarantine() const { return quarantine_; }
  /// Copy of the effective config, taken under the reload lock — safe to
  /// call from any thread while the serving threads hot-apply reloads.
  DaemonConfig config_snapshot() const;
  /// Prometheus text exposition of the attached registry ("" when none).
  std::string metrics_text() const;

 private:
  void ingest_batch(std::string& bytes);
  void offer_packet(const traffic::Packet& p);
  void push_admitted();
  void finish_producer();          // flush gate, push residue, close ring
  void producer_alert_scan();      // quarantine/shed deltas
  void consumer_alert_scan();      // install/publish deltas per shard
  void apply_pending_gate_reload();   // producer-side, between batches
  void apply_pending_model_reload();  // consumer-side, between packets
  bool next_loop_or_finish();      // loop bookkeeping at end of a pass

  DaemonConfig cfg_;
  const switchsim::DeployedModel* model_;

  // --- producer state -------------------------------------------------------
  FileTail file_;
  FdSource fd_;
  std::unique_ptr<io::TraceReader> reader_;
  RecordFramer framer_;
  std::unique_ptr<io::OverloadGate> gate_;
  io::OverloadStats gate_base_;    // stats of gates retired by reloads
  std::string io_buf_;             // raw source bytes (reused)
  std::string batch_buf_;          // framed batch (reused)
  std::vector<traffic::Packet> admit_buf_;  // gate output (reused)
  double time_offset_ = 0.0;       // looped-replay event-time shift
  double producer_ts_ = 0.0;       // last offered (shifted) timestamp
  /// Atomic because request_reload (any thread) reads it to reject reloads
  /// that nothing would ever apply once the source has finished.
  std::atomic<bool> producer_done_{false};
  std::uint64_t alert_quarantined_seen_ = 0;
  std::uint64_t alert_shed_seen_ = 0;

  // --- ring -----------------------------------------------------------------
  io::SpscRing<traffic::Packet> ring_;

  // --- consumer state -------------------------------------------------------
  std::vector<std::unique_ptr<switchsim::Pipeline>> pipelines_;
  std::vector<switchsim::SimStats> sim_;         // per shard
  std::vector<std::uint64_t> alert_installs_seen_;   // per shard
  std::vector<std::uint64_t> alert_publishes_seen_;  // per shard
  double consumer_ts_ = 0.0;       // last popped timestamp
  std::uint64_t since_alert_scan_ = 0;
  bool finalized_ = false;
  /// Single-thread modes drain the ring inline when a push finds it full
  /// (no separate consumer exists to make room); run() clears this before
  /// starting its producer thread and restores it after the join.
  bool inline_drain_ = true;

  // --- shared ---------------------------------------------------------------
  DaemonStats stats_;
  AlertLog alerts_;
  io::QuarantineRing quarantine_;  // persistent copy of per-batch quarantines
  std::atomic<bool> stop_{false};
  /// Guards pending_reload_, the gate_ swap (and gate_base_ fold), and the
  /// hot-applied cfg_ fields — so config_snapshot()/stats() can read them
  /// from any thread while the serving threads apply a reload. Mutable: the
  /// const snapshot accessors lock it.
  mutable std::mutex reload_mu_;
  std::unique_ptr<DaemonConfig> pending_reload_;   // staged by request_reload
  std::atomic<bool> reload_gate_pending_{false};
  std::atomic<bool> reload_model_pending_{false};
  struct DaemonObs {
    obs::Counter pushed, popped, batches, loops, reloads, alerts_emitted;
  } obs_;
};

}  // namespace iguard::daemon
