#include "io/replay.hpp"

#include <utility>

namespace iguard::io {

namespace {

struct ChainOut {
  IngestResult ing;
  OverloadStats ov;
  ChaosStats chaos;
  bool chaos_applied = false;
  traffic::Trace admitted;
};

ChainOut run_chain_bytes(std::string_view bytes, const IngestReplayConfig& icfg) {
  ChainOut c;
  std::string mangled;
  std::string_view feed = bytes;
  c.chaos_applied = icfg.chaos.ingest_any_enabled();
  if (c.chaos_applied) {
    // The mangler is CSV-domain: record = line. Pcap chaos would need its
    // own framing-aware mangler; the fuzz targets cover pcap damage instead.
    mangled = mangle_csv(bytes, icfg.chaos, icfg.chaos_batch_records, c.chaos);
    feed = mangled;
  }
  const TraceReader reader(icfg.reader);
  c.ing = reader.read_buffer(feed);
  ShedResult shed = shed_overload(c.ing.trace, icfg.overload);
  c.ov = shed.stats;
  c.admitted = std::move(shed.admitted);
  return c;
}

ChainOut run_chain_trace(const traffic::Trace& trace, const IngestReplayConfig& icfg) {
  if (icfg.chaos.ingest_any_enabled()) {
    return run_chain_bytes(trace_to_csv(trace), icfg);
  }
  ChainOut c;
  c.ing = ingest_trace(trace, icfg.reader);
  ShedResult shed = shed_overload(c.ing.trace, icfg.overload);
  c.ov = shed.stats;
  c.admitted = std::move(shed.admitted);
  return c;
}

template <typename Result>
void move_chain(ChainOut& c, Result& r) {
  r.ingest = c.ing.stats;
  r.quarantine = std::move(c.ing.quarantine);
  r.container_ok = c.ing.container_ok;
  r.container_error = std::move(c.ing.container_error);
  r.overload = c.ov;
  r.chaos = c.chaos;
  r.chaos_applied = c.chaos_applied;
}

template <typename Result>
std::string audit_chain(const Result& r, std::uint64_t replayed) {
  if (!r.ingest.conserved()) {
    return "ingest: offered " + std::to_string(r.ingest.offered) + " != accepted " +
           std::to_string(r.ingest.accepted) + " + quarantined " +
           std::to_string(r.ingest.quarantined);
  }
  if (!r.overload.conserved()) {
    return "overload: offered " + std::to_string(r.overload.offered) + " != admitted " +
           std::to_string(r.overload.admitted) + " + shed " + std::to_string(r.overload.shed);
  }
  if (r.overload.offered != r.ingest.accepted) {
    return "chain: overload.offered " + std::to_string(r.overload.offered) +
           " != ingest.accepted " + std::to_string(r.ingest.accepted);
  }
  if (replayed != r.overload.admitted) {
    return "chain: replayed packets " + std::to_string(replayed) + " != overload.admitted " +
           std::to_string(r.overload.admitted);
  }
  if (r.chaos_applied && r.chaos.records_out != r.ingest.offered) {
    return "chain: chaos.records_out " + std::to_string(r.chaos.records_out) +
           " != ingest.offered " + std::to_string(r.ingest.offered);
  }
  return {};
}

}  // namespace

IngestReplayResult ingest_replay_sharded(std::string_view trace_bytes,
                                         const IngestReplayConfig& icfg,
                                         const switchsim::PipelineConfig& cfg,
                                         const switchsim::DeployedModel& model,
                                         const switchsim::ReplayConfig& rcfg) {
  ChainOut c = run_chain_bytes(trace_bytes, icfg);
  IngestReplayResult r;
  r.replay = switchsim::replay_sharded(c.admitted, cfg, model, rcfg);
  move_chain(c, r);
  return r;
}

IngestReplayResult ingest_replay_sharded(const traffic::Trace& trace,
                                         const IngestReplayConfig& icfg,
                                         const switchsim::PipelineConfig& cfg,
                                         const switchsim::DeployedModel& model,
                                         const switchsim::ReplayConfig& rcfg) {
  ChainOut c = run_chain_trace(trace, icfg);
  IngestReplayResult r;
  r.replay = switchsim::replay_sharded(c.admitted, cfg, model, rcfg);
  move_chain(c, r);
  return r;
}

IngestFleetResult ingest_replay_fleet(const traffic::Trace& trace,
                                      const IngestReplayConfig& icfg,
                                      const switchsim::PipelineConfig& cfg,
                                      const switchsim::DeployedModel& model,
                                      const switchsim::FleetConfig& fcfg) {
  ChainOut c = run_chain_trace(trace, icfg);
  IngestFleetResult r;
  r.fleet = switchsim::replay_fleet(c.admitted, cfg, model, fcfg);
  move_chain(c, r);
  return r;
}

std::string audit_ingest_conservation(const IngestReplayResult& r) {
  if (std::string err = audit_chain(r, r.replay.stats.packets); !err.empty()) return err;
  if (std::string err = switchsim::audit_sim_conservation(r.replay.stats); !err.empty()) {
    return "replay: " + err;
  }
  return {};
}

std::string audit_ingest_conservation(const IngestFleetResult& r) {
  if (std::string err = audit_chain(r, r.fleet.stats.packets); !err.empty()) return err;
  if (std::string err =
          switchsim::audit_fleet_conservation(r.fleet, r.overload.admitted);
      !err.empty()) {
    return "fleet: " + err;
  }
  return {};
}

}  // namespace iguard::io
