// Generate the deployable switch artifact from a trained model: the P4-16
// program (parser/registers/tables/vote logic) and the control-plane table
// entries (one `table_add` per compiled whitelist rule). This mirrors the
// paper's published artifact — a P4 program plus its rule set — except that
// here both are *derived* from the trained model, so they can never drift
// out of sync with it.
//
// Usage: p4_artifact [output_dir]   (default: current directory)
#include <fstream>
#include <iostream>
#include <string>

#include "core/iguard.hpp"
#include "switchsim/flow_state.hpp"
#include "switchsim/p4_emit.hpp"
#include "trafficgen/benign.hpp"

using namespace iguard;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  ml::Rng rng(11);

  // Train a testbed-constrained model on synthetic benign traffic.
  traffic::BenignConfig bcfg;
  bcfg.flows = 2000;
  const auto trace = traffic::benign_trace(bcfg, rng);
  const std::size_t n = 32;
  const double delta = 10.0;
  const auto fl = switchsim::extract_switch_features(trace, n, delta);
  const auto pl = features::extract_packet_features(trace);

  core::IGuardConfig gcfg;
  gcfg.teacher.base = ml::testbed_autoencoder_config();
  gcfg.teacher.num_threads = 0;  // 0 = hardware concurrency
  gcfg.forest.num_threads = 0;
  core::IGuard guard(gcfg);
  guard.fit(fl.x, pl.x, rng);

  switchsim::DeployedModel dm;
  dm.fl_tables = &guard.whitelist();
  dm.fl_quantizer = &guard.quantizer();
  dm.pl_tables = &guard.pl_model().whitelist();
  dm.pl_quantizer = &guard.pl_model().quantizer();

  switchsim::P4EmitOptions opts;
  opts.packet_threshold_n = n;
  opts.idle_timeout_us = static_cast<std::uint32_t>(delta * 1e6);

  const std::string program = switchsim::emit_p4_program(dm, opts);
  const std::string entries = switchsim::emit_table_entries(dm);

  const std::string p4_path = out_dir + "/iguard_generated.p4";
  const std::string entries_path = out_dir + "/iguard_entries.txt";
  std::ofstream(p4_path) << program;
  std::ofstream(entries_path) << entries;

  std::size_t entry_lines = 0;
  for (char c : entries) entry_lines += c == '\n' ? 1 : 0;
  std::cout << "wrote " << p4_path << " (" << program.size() << " bytes)\n"
            << "wrote " << entries_path << " (" << entry_lines << " table entries: "
            << guard.whitelist().total_rules() << " FL + "
            << guard.pl_model().whitelist().total_rules() << " PL rules)\n\n"
            << "--- program head ---\n";
  std::cout << program.substr(0, 600) << "...\n";
  return 0;
}
