
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ae_ensemble.cpp" "src/core/CMakeFiles/iguard_core.dir/ae_ensemble.cpp.o" "gcc" "src/core/CMakeFiles/iguard_core.dir/ae_ensemble.cpp.o.d"
  "/root/repo/src/core/guided_iforest.cpp" "src/core/CMakeFiles/iguard_core.dir/guided_iforest.cpp.o" "gcc" "src/core/CMakeFiles/iguard_core.dir/guided_iforest.cpp.o.d"
  "/root/repo/src/core/iguard.cpp" "src/core/CMakeFiles/iguard_core.dir/iguard.cpp.o" "gcc" "src/core/CMakeFiles/iguard_core.dir/iguard.cpp.o.d"
  "/root/repo/src/core/online_update.cpp" "src/core/CMakeFiles/iguard_core.dir/online_update.cpp.o" "gcc" "src/core/CMakeFiles/iguard_core.dir/online_update.cpp.o.d"
  "/root/repo/src/core/pl_model.cpp" "src/core/CMakeFiles/iguard_core.dir/pl_model.cpp.o" "gcc" "src/core/CMakeFiles/iguard_core.dir/pl_model.cpp.o.d"
  "/root/repo/src/core/whitelist.cpp" "src/core/CMakeFiles/iguard_core.dir/whitelist.cpp.o" "gcc" "src/core/CMakeFiles/iguard_core.dir/whitelist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/iguard_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/iguard_rules.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
