
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/switchsim/flow_state.cpp" "src/switchsim/CMakeFiles/iguard_switchsim.dir/flow_state.cpp.o" "gcc" "src/switchsim/CMakeFiles/iguard_switchsim.dir/flow_state.cpp.o.d"
  "/root/repo/src/switchsim/p4_emit.cpp" "src/switchsim/CMakeFiles/iguard_switchsim.dir/p4_emit.cpp.o" "gcc" "src/switchsim/CMakeFiles/iguard_switchsim.dir/p4_emit.cpp.o.d"
  "/root/repo/src/switchsim/pipeline.cpp" "src/switchsim/CMakeFiles/iguard_switchsim.dir/pipeline.cpp.o" "gcc" "src/switchsim/CMakeFiles/iguard_switchsim.dir/pipeline.cpp.o.d"
  "/root/repo/src/switchsim/registers.cpp" "src/switchsim/CMakeFiles/iguard_switchsim.dir/registers.cpp.o" "gcc" "src/switchsim/CMakeFiles/iguard_switchsim.dir/registers.cpp.o.d"
  "/root/repo/src/switchsim/resources.cpp" "src/switchsim/CMakeFiles/iguard_switchsim.dir/resources.cpp.o" "gcc" "src/switchsim/CMakeFiles/iguard_switchsim.dir/resources.cpp.o.d"
  "/root/repo/src/switchsim/tables.cpp" "src/switchsim/CMakeFiles/iguard_switchsim.dir/tables.cpp.o" "gcc" "src/switchsim/CMakeFiles/iguard_switchsim.dir/tables.cpp.o.d"
  "/root/repo/src/switchsim/timing.cpp" "src/switchsim/CMakeFiles/iguard_switchsim.dir/timing.cpp.o" "gcc" "src/switchsim/CMakeFiles/iguard_switchsim.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/iguard_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/iguard_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/iguard_features.dir/DependInfo.cmake"
  "/root/repo/build/src/trafficgen/CMakeFiles/iguard_trafficgen.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/iguard_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
