// Fleet-scale deployment simulator (switchsim/fleet.hpp): per-device
// failure domains, graceful degradation (backpressure, stale serving,
// dead letters), deterministic recovery, N=1 parity with the single-switch
// sharded replay, and conservation of every digest and install op.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/model_swap.hpp"
#include "fault_audit.hpp"
#include "ml/rng.hpp"

namespace iguard::switchsim {
namespace {

traffic::Packet mk(double ts, std::uint16_t len, std::uint32_t src = 0x0A000001,
                   std::uint16_t sport = 1000, bool mal = false) {
  traffic::Packet p;
  p.ts = ts;
  p.ft = {src, 0x0A000002, sport, 80, traffic::kProtoTcp};
  p.length = len;
  p.ttl = 64;
  p.malicious = mal;
  return p;
}

/// Synthetic mixed trace (same shape as the replay tests): malicious flows
/// send large packets, so the min-size whitelist separates the classes.
traffic::Trace make_trace(std::size_t flows, std::size_t packets_per_flow, ml::Rng& rng) {
  traffic::Trace t;
  for (std::size_t f = 0; f < flows; ++f) {
    const bool mal = f % 3 == 0;
    traffic::FiveTuple ft{0x0A000000u + static_cast<std::uint32_t>(f),
                          0x0B000000u + static_cast<std::uint32_t>(f % 11),
                          static_cast<std::uint16_t>(1024 + f), 443, traffic::kProtoTcp};
    for (std::size_t i = 0; i < packets_per_flow; ++i) {
      traffic::Packet p;
      p.ts = 0.001 * static_cast<double>(f) + 0.05 * static_cast<double>(i) +
             rng.uniform(0.0, 0.0005);
      p.ft = i % 2 == 0 ? ft : ft.reversed();
      p.length = mal ? static_cast<std::uint16_t>(1200 + rng.index(200))
                     : static_cast<std::uint16_t>(80 + rng.index(60));
      p.malicious = mal;
      t.packets.push_back(p);
    }
  }
  t.sort_by_time();
  return t;
}

class FleetTest : public ::testing::Test {
 protected:
  FleetTest() {
    ml::Matrix fake(2, kSwitchFlFeatures);
    for (std::size_t j = 0; j < kSwitchFlFeatures; ++j) {
      fake(0, j) = 0.0;
      fake(1, j) = 1e6;
    }
    quant_.fit(fake);
    wl_.tree_count = 1;
    std::vector<rules::FieldRange> box(kSwitchFlFeatures, {0, quant_.domain_max()});
    box[5] = {0, quant_.quantize_value(5, 600.0)};  // admit small-packet flows
    wl_.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});
  }

  DeployedModel model() const {
    DeployedModel dm;
    dm.fl_tables = &wl_;
    dm.fl_quantizer = &quant_;
    return dm;
  }

  PipelineConfig pipe_cfg() const {
    PipelineConfig cfg;
    cfg.packet_threshold_n = 4;
    cfg.idle_timeout_delta = 10.0;
    return cfg;
  }

  /// Fault programme that exercises every failure-domain mechanism.
  static FleetFaultConfig faulty_profile(std::uint64_t seed) {
    FleetFaultConfig f;
    f.seed = seed;
    f.digest_loss_rate = 0.1;
    f.install_failure_rate = 0.2;
    f.crash_rate = 0.2;
    f.crash_duration_s = 0.08;
    f.partition_rate = 0.25;
    f.partition_duration_s = 0.1;
    f.check_interval_s = 0.05;
    return f;
  }

  rules::Quantizer quant_{16};
  core::VoteWhitelist wl_;
};

// --- failure-domain schedules -------------------------------------------------

TEST(FaultWindows, DeterministicWithDrawCountFixedByHorizon) {
  const auto a = generate_fault_windows(42, 0.5, 0.2, 0.1, 3.0);
  const auto b = generate_fault_windows(42, 0.5, 0.2, 0.1, 3.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].start_s, b[i].start_s);
    EXPECT_DOUBLE_EQ(a[i].duration_s, b[i].duration_s);
  }
  // rate 1 opens a window at every check step: count is fixed by the horizon.
  EXPECT_EQ(generate_fault_windows(42, 1.0, 0.2, 0.5, 2.0).size(), 5u);  // t=0,.5,1,1.5,2
  EXPECT_TRUE(generate_fault_windows(42, 0.0, 0.2, 0.1, 3.0).empty());
  EXPECT_TRUE(generate_fault_windows(42, 0.5, 0.0, 0.1, 3.0).empty());
}

TEST(DarkScheduleTest, MergesOverlappingAndAdjacentWindows) {
  const DarkSchedule s({{1.5, 1.0}, {1.0, 1.0}, {2.5, 0.5}, {5.0, 0.5}, {4.0, 0.0}});
  // [1,2) + [1.5,2.5) + [2.5,3) coalesce into [1,3); zero-length dropped.
  ASSERT_EQ(s.windows().size(), 2u);
  EXPECT_DOUBLE_EQ(s.windows()[0].start_s, 1.0);
  EXPECT_DOUBLE_EQ(s.windows()[0].end_s(), 3.0);
  EXPECT_FALSE(s.down_at(0.99));
  EXPECT_TRUE(s.down_at(1.0));
  EXPECT_TRUE(s.down_at(2.5));
  EXPECT_FALSE(s.down_at(3.0));  // half-open
  EXPECT_TRUE(s.down_at(5.2));
  EXPECT_DOUBLE_EQ(s.up_after(1.7), 3.0);
  EXPECT_DOUBLE_EQ(s.up_after(3.5), 3.5);  // already up: identity
  EXPECT_DOUBLE_EQ(s.up_after(5.0), 5.5);
}

// --- tenant partition ---------------------------------------------------------

TEST_F(FleetTest, DeviceOfIsDirectionInvariant) {
  ml::Rng rng(3);
  for (const auto mode : {TenantPartition::kFlowHash, TenantPartition::kSrcSubnet}) {
    FleetConfig fc;
    fc.devices = 5;
    fc.partition = mode;
    for (int i = 0; i < 100; ++i) {
      traffic::FiveTuple ft{static_cast<std::uint32_t>(rng.integer(1, 1 << 30)),
                            static_cast<std::uint32_t>(rng.integer(1, 1 << 30)),
                            static_cast<std::uint16_t>(rng.integer(1, 65535)),
                            static_cast<std::uint16_t>(rng.integer(1, 65535)),
                            traffic::kProtoUdp};
      const std::size_t d = device_of(ft, fc);
      EXPECT_LT(d, fc.devices);
      EXPECT_EQ(d, device_of(ft.reversed(), fc));
    }
  }
}

TEST_F(FleetTest, PartitionByTenantIsFlowDisjointAndOrderPreserving) {
  ml::Rng rng(5);
  const auto trace = make_trace(60, 6, rng);
  FleetConfig fc;
  fc.devices = 4;
  const auto parts = partition_by_tenant(trace, fc);
  ASSERT_EQ(parts.size(), 4u);
  std::size_t total = 0;
  for (std::size_t d = 0; d < parts.size(); ++d) {
    total += parts[d].size();
    double prev = -1.0;
    for (const auto& p : parts[d].packets) {
      EXPECT_EQ(device_of(p.ft, fc), d);
      EXPECT_GE(p.ts, prev);
      prev = p.ts;
    }
  }
  EXPECT_EQ(total, trace.size());
}

// --- N=1 parity ---------------------------------------------------------------

TEST_F(FleetTest, SingleDeviceFaultsOffIsByteIdenticalToShardedReplay) {
  // The fleet wrapper around one device with fleet faults off must be
  // invisible: identical SimStats (operator==, so every counter, label
  // vector, fault and swap field) and identical obs exports outside the
  // fleet controller's own namespace and "timing.".
  ml::Rng rng(7);
  const auto trace = make_trace(80, 8, rng);
  const auto dm = model();
  ReplayConfig rc;
  rc.shards = 4;

  obs::Registry reg_sharded, reg_fleet;
  PipelineConfig cfg = pipe_cfg();
  cfg.metrics = &reg_sharded;
  const auto sharded = replay_sharded(trace, cfg, dm, rc);

  cfg.metrics = &reg_fleet;
  FleetConfig fc;
  fc.devices = 1;
  fc.replay = rc;
  const auto fleet = replay_fleet(trace, cfg, dm, fc);

  EXPECT_TRUE(fleet.stats == sharded.stats);
  EXPECT_GT(fleet.stats.packets, 0u);
  EXPECT_GT(fleet.fleet.digests_observed, 0u) << "tap produced no digest stream";
  EXPECT_EQ(fleet.fleet.digests_observed, fleet.stats.faults.digests_received);

  const std::string fleet_ns = cfg.metrics_prefix + ".fleet";
  const std::string_view base_drop[] = {"timing."};
  const std::string_view fleet_drop[] = {"timing.", fleet_ns};
  const auto a = obs::without_prefixes(reg_sharded.snapshot(), base_drop);
  const auto b = obs::without_prefixes(reg_fleet.snapshot(), fleet_drop);
  EXPECT_EQ(a.scalars, b.scalars);
  EXPECT_EQ(a.series, b.series);
  EXPECT_TRUE(AuditFleetConservation(fleet, trace.size()));
}

// --- FleetController unit behaviour ------------------------------------------

TEST(FleetControllerTest, DedupsAcrossDevicesAndBatchesBySize) {
  FleetControllerConfig cc;
  cc.batch_size = 3;
  FleetController fc(cc, {FleetController::FailureDomain{}});
  const auto a = mk(0, 0, 1, 1).ft;
  const auto c = mk(0, 0, 3, 3).ft;
  const auto d = mk(0, 0, 4, 4).ft;
  fc.on_digest(0, {a, 1}, 0.0);  // intent 1: pending
  fc.on_digest(0, {a, 1}, 0.1);  // duplicate key: suppressed
  fc.on_digest(0, {mk(0, 0, 2, 2).ft, 0}, 0.2);  // benign: no intent
  fc.on_digest(0, {c, 1}, 0.3);  // intent 2: pending
  EXPECT_EQ(fc.fleet_stats().batches, 0u) << "flushed before the batch filled";
  fc.on_digest(0, {d, 1}, 0.4);  // intent 3: flush
  EXPECT_EQ(fc.fleet_stats().batches, 1u);
  fc.finish();
  const auto& st = fc.fleet_stats();
  EXPECT_EQ(st.digests_observed, 5u);
  EXPECT_EQ(st.install_intents, 3u);
  EXPECT_EQ(st.dedup_suppressed, 1u);
  EXPECT_EQ(st.benign_digests, 1u);
  EXPECT_EQ(st.installs_applied, 3u);
  EXPECT_EQ(fc.rules_resident(0), 3u);
}

TEST(FleetControllerTest, BatchIntervalFlushesPendingIntents) {
  FleetControllerConfig cc;
  cc.batch_size = 100;  // size alone would never flush
  cc.batch_interval_s = 1.0;
  FleetController fc(cc, {FleetController::FailureDomain{}});
  fc.on_digest(0, {mk(0, 0, 1, 1).ft, 1}, 0.0);
  EXPECT_EQ(fc.fleet_stats().batches, 0u);
  fc.on_digest(0, {mk(0, 0, 2, 2).ft, 1}, 1.5);  // interval elapsed: flush first
  EXPECT_EQ(fc.fleet_stats().batches, 1u);
  fc.finish();  // drains the second intent
  EXPECT_EQ(fc.fleet_stats().batches, 2u);
  EXPECT_EQ(fc.fleet_stats().installs_applied, 2u);
}

TEST(FleetControllerTest, BroadcastFansOutToEveryDeviceSourceOnlyDoesNot) {
  for (const bool broadcast : {true, false}) {
    FleetControllerConfig cc;
    cc.broadcast = broadcast;
    FleetController fc(cc, std::vector<FleetController::FailureDomain>(3));
    fc.on_digest(1, {mk(0, 0, 1, 1).ft, 1}, 0.0);
    fc.finish();
    EXPECT_EQ(fc.fleet_stats().install_ops_addressed, broadcast ? 3u : 1u);
    EXPECT_EQ(fc.rules_resident(0), broadcast ? 1u : 0u);
    EXPECT_EQ(fc.rules_resident(1), 1u);  // the source always gets the rule
    EXPECT_EQ(fc.rules_resident(2), broadcast ? 1u : 0u);
  }
}

TEST(FleetControllerTest, DarkDeviceServesStaleAndCatchesUpAtRejoin) {
  // Device 1 is dark in [1, 2): the install addressed to it is deferred to
  // the window's end (stale serving, no blocking) while device 0 applies
  // immediately; the lag shows up in the staleness high-water mark.
  FleetController::FailureDomain d0, d1;
  d1.dark = DarkSchedule({{1.0, 1.0}});
  FleetController fc({}, {d0, d1});
  fc.on_digest(0, {mk(0, 0, 1, 1).ft, 1}, 1.5);
  fc.advance_to(1.99);
  EXPECT_EQ(fc.rules_resident(0), 1u);
  EXPECT_EQ(fc.rules_resident(1), 0u) << "installed on a dark device";
  EXPECT_EQ(fc.device_stats(1).deferred_while_dark, 1u);
  fc.advance_to(2.0);
  EXPECT_EQ(fc.rules_resident(1), 1u);
  fc.finish();
  EXPECT_DOUBLE_EQ(fc.device_stats(0).staleness_hwm_s, 0.0);
  EXPECT_DOUBLE_EQ(fc.device_stats(1).staleness_hwm_s, 0.5);
  EXPECT_DOUBLE_EQ(fc.fleet_stats().staleness_hwm_s, 0.5);
  EXPECT_EQ(fc.fleet_stats().devices_degraded_hwm, 1u);
}

TEST(FleetControllerTest, InstallRetriesThenDeadLetters) {
  FleetControllerConfig cc;
  cc.install_failure_rate = 1.0;  // every attempt fails
  cc.max_install_retries = 2;
  cc.retry_backoff_s = 0.01;
  cc.retry_backoff_cap_s = 0.02;
  FleetController fc(cc, {FleetController::FailureDomain{}});
  fc.on_digest(0, {mk(0, 0, 1, 1).ft, 1}, 0.0);
  fc.finish();
  const auto& st = fc.device_stats(0);
  EXPECT_EQ(st.install_failures, 3u);  // first try + 2 retries
  EXPECT_EQ(st.install_retries, 2u);
  EXPECT_EQ(st.dead_letters, 1u);
  EXPECT_EQ(st.installs_applied, 0u);
  EXPECT_EQ(st.installs_enqueued, st.installs_applied + st.dead_letters);
  EXPECT_EQ(fc.fleet_stats().dead_letters, 1u);
  EXPECT_EQ(fc.rules_resident(0), 0u) << "no rejoin window: the rule stays missing";
}

TEST(FleetControllerTest, BackpressureDeadLettersThenRejoinResyncs) {
  // Queue capacity 1 with slow installs: the 2nd and 3rd rules are
  // backpressure-dropped into the missed set, then re-synced in one
  // coalesced catch-up when the crash window ends at t=1.
  FleetController::FailureDomain dom;
  dom.dark = DarkSchedule({{0.5, 0.5}});
  FleetControllerConfig cc;
  cc.install_queue_capacity = 1;
  cc.install_latency_s = 10.0;
  FleetController fc(cc, {dom});
  fc.on_digest(0, {mk(0, 0, 1, 1).ft, 1}, 0.0);
  fc.on_digest(0, {mk(0, 0, 2, 2).ft, 1}, 0.1);
  fc.on_digest(0, {mk(0, 0, 3, 3).ft, 1}, 0.2);
  fc.finish();
  const auto& st = fc.device_stats(0);
  EXPECT_EQ(st.installs_enqueued, 1u);
  EXPECT_EQ(st.backpressure_drops, 2u);
  EXPECT_EQ(st.catchup_installs, 2u);
  EXPECT_EQ(st.installs_applied, 1u);  // the in-flight op lands at t=10
  EXPECT_EQ(st.dead_letters, 0u);
  EXPECT_EQ(st.queue_hwm, 1u);
  EXPECT_EQ(fc.rules_resident(0), 3u) << "re-sync must leave no rule missing";
  EXPECT_EQ(fc.fleet_stats().install_ops_addressed, 3u);
  EXPECT_EQ(fc.fleet_stats().backlog_hwm, 1u);
}

// --- fleet determinism and conservation --------------------------------------

TEST_F(FleetTest, FaultyFleetIsBitIdenticalAcrossWorkerThreadCounts) {
  ml::Rng rng(11);
  const auto trace = make_trace(120, 6, rng);
  const auto dm = model();
  FleetConfig fc;
  fc.devices = 4;
  fc.replay.shards = 2;
  fc.faults = faulty_profile(0xF1EE70ull);
  fc.control.batch_size = 4;
  fc.control.install_latency_s = 0.005;
  fc.control.install_failure_rate = 0.1;
  fc.control.install_queue_capacity = 4;
  fc.control.max_install_retries = 2;

  fc.num_threads = 1;
  fc.replay.num_threads = 1;
  const auto base = replay_fleet(trace, pipe_cfg(), dm, fc);
  EXPECT_TRUE(AuditFleetConservation(base, trace.size()));
  for (const std::size_t t : {2u, 4u, 8u}) {
    fc.num_threads = t;
    fc.replay.num_threads = t;
    const auto run = replay_fleet(trace, pipe_cfg(), dm, fc);
    EXPECT_TRUE(run.stats == base.stats) << "threads=" << t;
    EXPECT_TRUE(run.fleet == base.fleet) << "threads=" << t;
    EXPECT_TRUE(run.device_control == base.device_control) << "threads=" << t;
    for (std::size_t d = 0; d < base.per_device.size(); ++d) {
      EXPECT_TRUE(run.per_device[d] == base.per_device[d]) << "threads=" << t << " dev=" << d;
    }
  }
}

TEST_F(FleetTest, RandomizedFaultSchedulesAreDeterministicAndConserved) {
  // Property (issue satellite): under randomized per-device fault schedules,
  // capped-exponential-backoff retry counts and dead-letter totals are a
  // pure function of the seed — identical on a second run — and every
  // conservation identity holds at every shard count.
  ml::Rng rng(13);
  const auto trace = make_trace(90, 6, rng);
  const auto dm = model();
  std::size_t faults_exercised = 0;
  for (const std::uint64_t seed : {3ull, 17ull, 91ull}) {
    for (const std::size_t shards : {1u, 2u, 4u}) {
      FleetConfig fc;
      fc.devices = 3;
      fc.replay.shards = shards;
      fc.faults = faulty_profile(seed);
      fc.control.install_failure_rate = 0.3;
      fc.control.max_install_retries = 3;
      fc.control.retry_backoff_s = 0.002;
      fc.control.retry_backoff_cap_s = 0.008;
      fc.control.install_queue_capacity = 2;
      fc.control.install_latency_s = 0.01;
      const auto a = replay_fleet(trace, pipe_cfg(), dm, fc);
      const auto b = replay_fleet(trace, pipe_cfg(), dm, fc);
      const std::string cell =
          "seed=" + std::to_string(seed) + " shards=" + std::to_string(shards);
      EXPECT_TRUE(a.fleet == b.fleet) << cell;
      EXPECT_TRUE(a.device_control == b.device_control) << cell;
      EXPECT_TRUE(a.stats == b.stats) << cell;
      EXPECT_TRUE(AuditFleetConservation(a, trace.size())) << cell;
      for (const auto& dc : a.device_control) {
        faults_exercised += dc.install_retries + dc.dead_letters + dc.backpressure_drops +
                            dc.deferred_while_dark + dc.digests_lost_dark;
      }
    }
  }
  EXPECT_GT(faults_exercised, 0u) << "fault programme never fired: property is vacuous";
}

TEST_F(FleetTest, ObsExportsPerDevicePrefixesAndFleetAggregates) {
  ml::Rng rng(17);
  const auto trace = make_trace(60, 6, rng);
  const auto dm = model();
  obs::Registry reg;
  PipelineConfig cfg = pipe_cfg();
  cfg.metrics = &reg;
  FleetConfig fc;
  fc.devices = 2;
  fc.replay.shards = 2;
  const auto out = replay_fleet(trace, cfg, dm, fc);
  EXPECT_TRUE(AuditFleetConservation(out, trace.size()));
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.scalars.at("pipeline.fleet.digests"),
            static_cast<double>(out.fleet.digests_observed));
  EXPECT_EQ(snap.scalars.at("pipeline.fleet.installs"),
            static_cast<double>(out.fleet.installs_applied));
  EXPECT_EQ(snap.scalars.count("pipeline.fleet.dev0.install_queue"), 1u);
  EXPECT_EQ(snap.scalars.count("pipeline.fleet.dev1.rules_resident"), 1u);
  EXPECT_EQ(snap.scalars.count("pipeline.fleet.staleness_s.count"), 1u);
  EXPECT_EQ(snap.series.count("pipeline.fleet.backlog"), 1u);
  EXPECT_EQ(snap.series.count("pipeline.fleet.devices_degraded"), 1u);
  // Each device's data-plane pipeline exports under its own prefix.
  bool dev0 = false, dev1 = false;
  for (const auto& [k, v] : snap.scalars) {
    if (k.rfind("pipeline.dev0.", 0) == 0) dev0 = true;
    if (k.rfind("pipeline.dev1.", 0) == 0) dev1 = true;
  }
  EXPECT_TRUE(dev0);
  EXPECT_TRUE(dev1);
}

// --- audits reject broken accounting -----------------------------------------

TEST(FleetAudit, DetectsViolatedIdentities) {
  SimStats s;
  EXPECT_EQ(audit_sim_conservation(s), "");  // all-zero stats are conserved
  s.packets = 1;
  EXPECT_NE(audit_sim_conservation(s), "") << "lost packet must fail the audit";

  FleetResult r;
  EXPECT_NE(audit_fleet_conservation(r, 1), "") << "missing device packets must fail";
  EXPECT_EQ(audit_fleet_conservation(r, 0), "");
}

// --- ModelDistributor ---------------------------------------------------------

TEST(ModelDistributor, CompilesOncePerVersionAndSharesTheBundle) {
  core::ModelDistributor dist;
  int builds = 0;
  const auto builder = [&builds] {
    ++builds;
    return core::build_bundle(1, core::VoteWhitelist{}, rules::Quantizer{16});
  };
  const auto a = dist.get_or_build(1, builder);
  const auto b = dist.get_or_build(1, builder);
  EXPECT_EQ(a.get(), b.get()) << "same version must share one compiled bundle";
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(dist.compiles(), 1u);
  EXPECT_EQ(dist.distributions(), 2u);
  EXPECT_EQ(dist.versions_cached(), 1u);
  const auto c = dist.get_or_build(
      2, [] { return core::build_bundle(2, core::VoteWhitelist{}, rules::Quantizer{16}); });
  EXPECT_NE(c.get(), a.get());
  EXPECT_EQ(dist.compiles(), 2u);
  EXPECT_EQ(dist.versions_cached(), 2u);
}

TEST(ModelDistributor, RejectsNullAndMismatchedBuilders) {
  core::ModelDistributor dist;
  EXPECT_THROW(dist.get_or_build(1, nullptr), std::invalid_argument);
  EXPECT_THROW(
      dist.get_or_build(
          3, [] { return core::build_bundle(4, core::VoteWhitelist{}, rules::Quantizer{16}); }),
      std::invalid_argument);
  EXPECT_EQ(dist.versions_cached(), 0u) << "failed builds must not be cached";
  EXPECT_EQ(dist.compiles(), 0u) << "failed builds must not count as compiles";
}

}  // namespace
}  // namespace iguard::switchsim
