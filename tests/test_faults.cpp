// Fault-aware control plane (switchsim/faults.hpp): event clock, bounded
// channel, install latency, retry/backoff, dead letters, crash recovery,
// and run-to-run determinism.
#include <gtest/gtest.h>

#include "fault_audit.hpp"
#include "switchsim/faults.hpp"
#include "switchsim/pipeline.hpp"

namespace iguard::switchsim {
namespace {

traffic::Packet mk(double ts, std::uint16_t len, std::uint32_t src = 0x0A000001,
                   std::uint16_t sport = 1000, bool mal = false) {
  traffic::Packet p;
  p.ts = ts;
  p.ft = {src, 0x0A000002, sport, 80, traffic::kProtoTcp};
  p.length = len;
  p.ttl = 64;
  p.malicious = mal;
  return p;
}

// --- SplitMix64 / FaultInjector ---------------------------------------------

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 1234567 (Vigna's splitmix64 test vector).
  SplitMix64 rng(1234567);
  EXPECT_EQ(rng.next(), 6457827717110365317ull);
  EXPECT_EQ(rng.next(), 3203168211198807973ull);
  EXPECT_EQ(rng.next(), 9817491932198370423ull);
}

TEST(SplitMix64, ChanceEdgeCasesConsumeNothing) {
  SplitMix64 a(42), b(42);
  EXPECT_FALSE(a.chance(0.0));
  EXPECT_TRUE(a.chance(1.0));
  // p=0 and p=1 short-circuit without consuming a draw: streams still equal.
  EXPECT_EQ(a.next(), b.next());
}

TEST(FaultInjector, StreamsAreIndependent) {
  // Enabling one fault type must not perturb another's decision sequence.
  FaultConfig only_drop;
  only_drop.digest_loss_rate = 0.5;
  FaultConfig both = only_drop;
  both.install_failure_rate = 0.5;
  FaultInjector a(only_drop), b(both);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.drop_digest(), b.drop_digest());
}

TEST(FaultInjector, CrashWindowMembership) {
  FaultConfig cfg;
  cfg.crashes = {{1.0, 0.5}, {3.0, 1.0}};
  FaultInjector inj(cfg);
  EXPECT_FALSE(inj.down_at(0.99));
  EXPECT_TRUE(inj.down_at(1.0));
  EXPECT_TRUE(inj.down_at(1.49));
  EXPECT_FALSE(inj.down_at(1.5));  // half-open window
  EXPECT_TRUE(inj.down_at(3.5));
  EXPECT_FALSE(inj.down_at(4.0));
}

// --- Controller event clock ---------------------------------------------------

TEST(AsyncController, InstallLandsAtDigestTsPlusLatency) {
  BlacklistTable bl(8);
  ControlPlaneConfig cfg;
  cfg.control_latency_s = 0.5;
  Controller ctl(bl, cfg);
  const auto ft = mk(0.0, 100).ft;
  ctl.on_digest({ft, 1}, 1.0);
  ctl.advance_to(1.4);
  EXPECT_FALSE(bl.contains(ft)) << "install visible before digest_ts + latency";
  ctl.advance_to(1.5);
  EXPECT_TRUE(bl.contains(ft));
  EXPECT_EQ(ctl.rules_installed(), 1u);
}

TEST(AsyncController, BoundedChannelDropsOverflow) {
  BlacklistTable bl(64);
  ControlPlaneConfig cfg;
  cfg.control_latency_s = 10.0;  // keep everything in flight
  cfg.channel_capacity = 3;
  Controller ctl(bl, cfg);
  for (std::uint16_t i = 1; i <= 5; ++i) ctl.on_digest({mk(0, 0, i, i).ft, 1}, 0.0);
  EXPECT_EQ(ctl.backlog(), 3u);
  EXPECT_EQ(ctl.fault_stats().channel_overflow_drops, 2u);
  EXPECT_EQ(ctl.fault_stats().backlog_hwm, 3u);
  EXPECT_EQ(ctl.digests_received(), 5u);  // channel-mouth accounting unchanged
  ctl.flush();
  EXPECT_EQ(ctl.rules_installed(), 3u);
  EXPECT_EQ(ctl.backlog(), 0u);
}

TEST(AsyncController, InjectedDigestLoss) {
  BlacklistTable bl(64);
  ControlPlaneConfig cfg;
  cfg.faults.seed = 7;
  cfg.faults.digest_loss_rate = 1.0;
  Controller ctl(bl, cfg);
  ctl.on_digest({mk(0, 0, 1, 1).ft, 1}, 0.0);
  ctl.flush();
  EXPECT_EQ(bl.size(), 0u);
  EXPECT_EQ(ctl.fault_stats().injected_digest_drops, 1u);
}

TEST(AsyncController, DelayedDigestArrivesLater) {
  BlacklistTable bl(64);
  ControlPlaneConfig cfg;
  cfg.faults.digest_delay_rate = 1.0;
  cfg.faults.digest_delay_s = 2.0;
  Controller ctl(bl, cfg);
  const auto ft = mk(0, 0, 1, 1).ft;
  ctl.on_digest({ft, 1}, 0.0);
  ctl.advance_to(1.9);
  EXPECT_FALSE(bl.contains(ft));
  ctl.advance_to(2.0);
  EXPECT_TRUE(bl.contains(ft));
  EXPECT_EQ(ctl.fault_stats().delayed_digests, 1u);
}

TEST(AsyncController, InstallRetriesThenDeadLetters) {
  BlacklistTable bl(64);
  ControlPlaneConfig cfg;
  cfg.max_install_retries = 3;
  cfg.retry_backoff_s = 0.01;
  cfg.retry_backoff_cap_s = 0.02;
  cfg.faults.install_failure_rate = 1.0;  // every attempt fails
  Controller ctl(bl, cfg);
  ctl.on_digest({mk(0, 0, 1, 1).ft, 1}, 0.0);
  ctl.flush();
  const auto& fs = ctl.fault_stats();
  EXPECT_EQ(fs.install_attempts, 4u);  // 1 first try + 3 retries
  EXPECT_EQ(fs.install_failures, 4u);
  EXPECT_EQ(fs.install_retries, 3u);
  EXPECT_EQ(fs.dead_letters, 1u);
  EXPECT_EQ(ctl.rules_installed(), 0u);
  EXPECT_EQ(bl.size(), 0u);
}

TEST(AsyncController, RetryBackoffIsCappedExponential) {
  BlacklistTable bl(64);
  ControlPlaneConfig cfg;
  cfg.max_install_retries = 8;
  cfg.retry_backoff_s = 0.010;
  cfg.retry_backoff_cap_s = 0.035;
  cfg.faults.install_failure_rate = 1.0;
  Controller ctl(bl, cfg);
  ctl.on_digest({mk(0, 0, 1, 1).ft, 1}, 0.0);
  // Backoffs: 10, 20, 35 (capped), 35, ... ms. After attempt k the next
  // retry is due at the cumulative sum; the final dead-letter lands at
  // 10 + 20 + 35*6 = 240 ms.
  ctl.advance_to(0.009);
  EXPECT_EQ(ctl.fault_stats().install_attempts, 1u);
  ctl.advance_to(0.010);
  EXPECT_EQ(ctl.fault_stats().install_attempts, 2u);
  ctl.advance_to(0.030);
  EXPECT_EQ(ctl.fault_stats().install_attempts, 3u);
  ctl.advance_to(0.065);
  EXPECT_EQ(ctl.fault_stats().install_attempts, 4u);
  ctl.flush();
  EXPECT_EQ(ctl.fault_stats().dead_letters, 1u);
}

TEST(AsyncController, BenignDigestsNeverAttemptInstalls) {
  BlacklistTable bl(64);
  ControlPlaneConfig cfg;
  cfg.faults.install_failure_rate = 1.0;
  Controller ctl(bl, cfg);
  ctl.on_digest({mk(0, 0, 1, 1).ft, 0}, 0.0);
  ctl.flush();
  EXPECT_EQ(ctl.fault_stats().install_attempts, 0u);
  EXPECT_EQ(ctl.fault_stats().dead_letters, 0u);
}

TEST(AsyncController, CrashWindowLosesDigestsAndRecoversFromFlowStore) {
  // Flow store holds a malicious-labelled resident; digests sent during the
  // outage are lost, and the restart sweep reinstalls from the registers.
  FlowStore store(16);
  const auto mal = mk(0.0, 100, 7, 7, true);
  auto acc = store.access(mal.ft);
  acc.state->update(mal, store.signature(mal.ft));
  acc.state->label = 1;

  BlacklistTable bl(64);
  ControlPlaneConfig cfg;
  cfg.faults.crashes = {{1.0, 1.0}};
  Controller ctl(bl, cfg, &store);
  ctl.on_digest({mal.ft, 1}, 1.5);  // controller down: lost
  ctl.advance_to(1.9);
  EXPECT_EQ(bl.size(), 0u);
  EXPECT_EQ(ctl.fault_stats().digests_lost_to_crash, 1u);
  ctl.advance_to(2.5);  // past the window end: restart + recovery sweep
  EXPECT_EQ(ctl.fault_stats().crashes, 1u);
  EXPECT_EQ(ctl.fault_stats().recovery_installs, 1u);
  EXPECT_TRUE(bl.contains(mal.ft));
}

TEST(AsyncController, DeliveryDuringCrashWindowIsLost) {
  // Digest sent while up, due while down: lost at delivery time.
  BlacklistTable bl(64);
  ControlPlaneConfig cfg;
  cfg.control_latency_s = 1.0;
  cfg.faults.crashes = {{1.2, 1.0}};
  Controller ctl(bl, cfg);
  const auto ft = mk(0, 0, 1, 1).ft;
  ctl.on_digest({ft, 1}, 0.5);  // due at 1.5, inside the window
  ctl.flush();
  EXPECT_FALSE(bl.contains(ft));
  EXPECT_EQ(ctl.fault_stats().digests_lost_to_crash, 1u);
}

// --- Pipeline integration -----------------------------------------------------

class FaultPipelineTest : public ::testing::Test {
 protected:
  FaultPipelineTest() {
    ml::Matrix fake(2, kSwitchFlFeatures);
    for (std::size_t j = 0; j < kSwitchFlFeatures; ++j) {
      fake(0, j) = 0.0;
      fake(1, j) = 1e6;
    }
    quant_.fit(fake);
    deny_.tree_count = 1;
    deny_.tables.emplace_back(std::vector<rules::RangeRule>{});  // match nothing
  }

  Pipeline make(PipelineConfig cfg) {
    DeployedModel dm;
    dm.fl_tables = &deny_;  // every classified flow is malicious
    dm.fl_quantizer = &quant_;
    return Pipeline(cfg, dm);
  }

  rules::Quantizer quant_{16};
  core::VoteWhitelist deny_;
};

TEST_F(FaultPipelineTest, ZeroLatencyMatchesLockstepBehaviour) {
  PipelineConfig cfg;
  cfg.packet_threshold_n = 2;
  Pipeline pipe = make(cfg);
  SimStats st;
  pipe.process(mk(0.0, 100, 1, 1, true), st);  // brown
  pipe.process(mk(0.1, 100, 1, 1, true), st);  // blue -> malicious digest
  pipe.process(mk(0.2, 100, 1, 1, true), st);  // red: install landed
  EXPECT_EQ(st.path(Path::kRed), 1u);
  EXPECT_EQ(pipe.blacklist().size(), 1u);
  const auto& fs = pipe.controller().fault_stats();
  EXPECT_EQ(fs.channel_overflow_drops, 0u);
  EXPECT_EQ(fs.injected_digest_drops, 0u);
  EXPECT_EQ(fs.dead_letters, 0u);
  EXPECT_EQ(fs.crashes, 0u);
}

TEST_F(FaultPipelineTest, InstallWindowDefersRedPath) {
  PipelineConfig cfg;
  cfg.packet_threshold_n = 2;
  cfg.control.control_latency_s = 0.25;
  Pipeline pipe = make(cfg);
  SimStats st;
  pipe.process(mk(0.0, 100, 1, 1, true), st);  // brown
  pipe.process(mk(0.1, 100, 1, 1, true), st);  // blue: digest at 0.1
  pipe.process(mk(0.2, 100, 1, 1, true), st);  // install due 0.35: purple, not red
  EXPECT_EQ(st.path(Path::kRed), 0u);
  EXPECT_EQ(st.path(Path::kPurple), 1u);
  pipe.process(mk(0.4, 100, 1, 1, true), st);  // past 0.35: red
  EXPECT_EQ(st.path(Path::kRed), 1u);
}

TEST_F(FaultPipelineTest, CrashMidTraceRecoversBlacklistFromResidentLabels) {
  // Acceptance scenario: a controller crash swallows the install; after the
  // restart the recovery sweep rebuilds the rule from the flow-label
  // register still resident in the FlowStore, and enforcement resumes.
  PipelineConfig cfg;
  cfg.packet_threshold_n = 2;
  cfg.control.faults.crashes = {{0.05, 0.5}};  // down for [0.05, 0.55)
  Pipeline pipe = make(cfg);
  SimStats st;
  pipe.process(mk(0.0, 100, 1, 1, true), st);  // brown
  pipe.process(mk(0.1, 100, 1, 1, true), st);  // blue: digest lost (down)
  pipe.process(mk(0.2, 100, 1, 1, true), st);  // purple (label), blacklist empty
  EXPECT_EQ(pipe.blacklist().size(), 0u);
  EXPECT_EQ(pipe.controller().fault_stats().digests_lost_to_crash, 1u);
  pipe.process(mk(0.6, 100, 2, 2, false), st);  // clock passes 0.55: recovery
  EXPECT_EQ(pipe.controller().fault_stats().crashes, 1u);
  EXPECT_EQ(pipe.controller().fault_stats().recovery_installs, 1u);
  EXPECT_EQ(pipe.blacklist().size(), 1u);
  pipe.process(mk(0.7, 100, 1, 1, true), st);  // red again
  EXPECT_EQ(st.path(Path::kRed), 1u);
}

TEST_F(FaultPipelineTest, LeakedPacketsCountAdmittedPostClassification) {
  // Drop every digest and give the malicious flow's slot away, so later
  // packets of the classified-malicious flow are admitted via PL verdicts:
  // each admitted packet is a leak.
  PipelineConfig cfg;
  cfg.packet_threshold_n = 2;
  cfg.flow_slots = 1;  // single slot per table: easy to evict
  cfg.control.faults.digest_loss_rate = 1.0;
  Pipeline pipe = make(cfg);
  SimStats st;
  pipe.process(mk(0.00, 100, 1, 1, true), st);  // brown
  pipe.process(mk(0.01, 100, 1, 1, true), st);  // blue: classified, digest lost
  // Two other flows evict/occupy both candidate slots of flow 1.
  pipe.process(mk(0.02, 100, 2, 2), st);
  pipe.process(mk(0.03, 100, 3, 3), st);
  pipe.process(mk(0.04, 100, 4, 4), st);
  const std::size_t red_before = st.path(Path::kRed);
  pipe.process(mk(0.05, 100, 1, 1, true), st);  // classified flow, no state left
  EXPECT_EQ(st.path(Path::kRed), red_before);  // blacklist never installed
  EXPECT_GE(st.faults.leaked_packets, 1u);
}

TEST_F(FaultPipelineTest, FaultRunsAreDeterministic) {
  PipelineConfig cfg;
  cfg.packet_threshold_n = 2;
  cfg.control.control_latency_s = 0.01;
  cfg.control.channel_capacity = 4;
  cfg.control.faults.seed = 99;
  cfg.control.faults.digest_loss_rate = 0.3;
  cfg.control.faults.digest_delay_rate = 0.2;
  cfg.control.faults.digest_delay_s = 0.05;
  cfg.control.faults.install_failure_rate = 0.25;
  cfg.control.faults.crashes = {{0.2, 0.1}};

  traffic::Trace t;
  for (int i = 0; i < 400; ++i)
    t.packets.push_back(mk(0.002 * i, 100, 1 + i % 17, static_cast<std::uint16_t>(1 + i % 5),
                           i % 3 == 0));

  const SimStats a = make(cfg).run(t);
  const SimStats b = make(cfg).run(t);
  EXPECT_TRUE(AuditSimConservation(a));
  EXPECT_EQ(a.pred, b.pred);
  EXPECT_EQ(a.path_count, b.path_count);
  EXPECT_EQ(a.faults.injected_digest_drops, b.faults.injected_digest_drops);
  EXPECT_EQ(a.faults.channel_overflow_drops, b.faults.channel_overflow_drops);
  EXPECT_EQ(a.faults.delayed_digests, b.faults.delayed_digests);
  EXPECT_EQ(a.faults.install_retries, b.faults.install_retries);
  EXPECT_EQ(a.faults.dead_letters, b.faults.dead_letters);
  EXPECT_EQ(a.faults.leaked_packets, b.faults.leaked_packets);
  EXPECT_EQ(a.faults.backlog_hwm, b.faults.backlog_hwm);

  // A different seed must be allowed to diverge in at least the drop tally
  // (0.3 loss over ~130 digests makes an identical sequence vanishingly
  // unlikely; equality here would indicate the seed is ignored).
  cfg.control.faults.seed = 100;
  const SimStats c = make(cfg).run(t);
  EXPECT_EQ(c.packets, a.packets);
}

TEST_F(FaultPipelineTest, RunDrainsChannelAtEndOfTrace) {
  PipelineConfig cfg;
  cfg.packet_threshold_n = 2;
  cfg.control.control_latency_s = 100.0;  // nothing lands during the trace
  Pipeline pipe = make(cfg);
  traffic::Trace t;
  t.packets.push_back(mk(0.0, 100, 1, 1, true));
  t.packets.push_back(mk(0.1, 100, 1, 1, true));
  const SimStats st = pipe.run(t);
  EXPECT_EQ(st.path(Path::kRed), 0u);
  // run() flushes: the deferred install is applied after the last packet.
  EXPECT_EQ(pipe.controller().rules_installed(), 1u);
  EXPECT_EQ(pipe.blacklist().size(), 1u);
  EXPECT_EQ(st.faults.backlog_hwm, 1u);
}

// --- benign-mirror channel ----------------------------------------------------

/// Test sink: records every delivered mirror with its event-clock time.
struct RecordingSink final : WhitelistUpdateSink {
  std::vector<std::pair<std::uint32_t, double>> delivered;  // (key[0], ts)
  void on_benign_mirror(const BenignMirror& m, double ts) override {
    delivered.emplace_back(m.key[0], ts);
  }
};

TEST(MirrorChannel, DeliveredAtEnqueueTsPlusLatency) {
  BlacklistTable bl(8);
  ControlPlaneConfig cfg;
  cfg.control_latency_s = 0.5;
  Controller ctl(bl, cfg);
  RecordingSink sink;
  ctl.set_update_sink(&sink);
  BenignMirror m;
  m.key[0] = 7;
  ctl.on_benign_mirror(m, 1.0);
  ctl.advance_to(1.4);
  EXPECT_TRUE(sink.delivered.empty()) << "mirror visible before latency elapsed";
  ctl.advance_to(1.5);
  ASSERT_EQ(sink.delivered.size(), 1u);
  EXPECT_EQ(sink.delivered[0].first, 7u);
  EXPECT_DOUBLE_EQ(sink.delivered[0].second, 1.5);
  EXPECT_EQ(ctl.fault_stats().mirrors_enqueued, 1u);
  EXPECT_EQ(ctl.fault_stats().mirrors_delivered, 1u);
  EXPECT_EQ(ctl.fault_stats().mirrors_lost, 0u);
}

TEST(MirrorChannel, LostWhileControllerDownAtMouthOrDelivery) {
  BlacklistTable bl(8);
  ControlPlaneConfig cfg;
  cfg.control_latency_s = 1.0;
  cfg.faults.crashes = {{1.0, 0.5}};
  Controller ctl(bl, cfg);
  RecordingSink sink;
  ctl.set_update_sink(&sink);
  BenignMirror m;
  ctl.on_benign_mirror(m, 1.2);  // enqueue inside the window: lost at the mouth
  ctl.on_benign_mirror(m, 0.3);  // due at 1.3, inside the window: lost at delivery
  ctl.on_benign_mirror(m, 0.6);  // due at 1.6, after restart: delivered
  ctl.flush();
  EXPECT_EQ(ctl.fault_stats().mirrors_lost, 2u);
  EXPECT_EQ(ctl.fault_stats().mirrors_delivered, 1u);
  ASSERT_EQ(sink.delivered.size(), 1u);
  EXPECT_DOUBLE_EQ(sink.delivered[0].second, 1.6);
}

TEST(MirrorChannel, SharesChannelCapacityWithDigests) {
  BlacklistTable bl(64);
  ControlPlaneConfig cfg;
  cfg.control_latency_s = 10.0;  // nothing drains during the enqueues
  cfg.channel_capacity = 2;
  Controller ctl(bl, cfg);
  const auto ft = mk(0, 0, 1, 1).ft;
  BenignMirror m;
  ctl.on_digest({ft, 1}, 0.0);
  ctl.on_benign_mirror(m, 0.1);  // fills the channel
  ctl.on_benign_mirror(m, 0.2);  // overflow: mirror dropped
  EXPECT_EQ(ctl.fault_stats().mirrors_lost, 1u);
  EXPECT_EQ(ctl.fault_stats().channel_overflow_drops, 1u);
  EXPECT_EQ(ctl.fault_stats().mirrors_enqueued, 1u);
}

TEST(MirrorChannel, MirrorFaultStreamsDoNotPerturbDigestDecisions) {
  // The mirror path draws loss/delay from its own splitmix64 streams: a
  // workload that starts emitting mirrors must see the exact same digest
  // fault sequence as before (this is what keeps pre-swap runs and
  // committed CSVs byte-identical when the loop is off... and digests
  // undisturbed when it is on).
  ControlPlaneConfig cfg;
  cfg.faults.digest_loss_rate = 0.5;
  BlacklistTable bl_a(64), bl_b(64);
  Controller a(bl_a, cfg), b(bl_b, cfg);
  RecordingSink sink;
  b.set_update_sink(&sink);
  BenignMirror m;
  for (int i = 0; i < 200; ++i) {
    const auto ft = mk(0, 0, static_cast<std::uint32_t>(i + 1), 1, true).ft;
    const double ts = 0.01 * i;
    a.on_digest({ft, 1}, ts);
    b.on_digest({ft, 1}, ts);
    b.on_benign_mirror(m, ts);  // interleaved mirrors on b only
  }
  a.flush();
  b.flush();
  EXPECT_EQ(a.fault_stats().injected_digest_drops, b.fault_stats().injected_digest_drops);
  EXPECT_EQ(a.rules_installed(), b.rules_installed());
  EXPECT_EQ(bl_a.size(), bl_b.size());
}

// --- swap loop under faults ---------------------------------------------------

/// Three-table whitelist over key[0] alone: two broad tables, one narrow —
/// a key of 50 is fully covered, 90 is majority-benign with one miss.
core::VoteWhitelist three_tables() {
  core::VoteWhitelist wl;
  wl.tree_count = 3;
  for (std::uint32_t hi : {100u, 100u, 80u}) {
    std::vector<rules::FieldRange> box(kSwitchFlFeatures, {0, 0xFFFFu});
    box[0] = {10, hi};
    wl.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});
  }
  return wl;
}

TEST(SwapLoopFaults, PublishDeferredPastCrashWindow) {
  BlacklistTable bl(8);
  ControlPlaneConfig ccfg;
  ccfg.faults.crashes = {{1.0, 0.5}};  // down in [1.0, 1.5)
  Controller ctl(bl, ccfg);

  SwapConfig scfg;
  scfg.enabled = true;
  scfg.drift.window = 2;
  scfg.drift.baseline_windows = 1;
  scfg.drift.miss_rate_margin = 0.10;
  scfg.update.max_extension_per_field = 0;  // updater can never absorb the miss
  scfg.publish_after_extensions = 0;
  scfg.swap_latency_s = 0.2;
  SwapLoop loop(scfg, core::build_bundle(1, three_tables(), rules::Quantizer{16}), ctl,
                nullptr, "t");

  BenignMirror covered, missing;
  covered.key.fill(1);
  covered.key[0] = 50;
  missing.key.fill(1);
  missing.key[0] = 90;
  // Baseline window: fully covered. Second window: sustained misses, firing
  // at 0.9 — the publish is due at 1.1, inside the crash window, so it must
  // slip to the window's end (a down controller cannot program tables).
  loop.on_benign_mirror(covered, 0.5);
  loop.on_benign_mirror(covered, 0.6);
  loop.on_benign_mirror(missing, 0.8);
  loop.on_benign_mirror(missing, 0.9);
  EXPECT_EQ(loop.stats().drift_fires, 1u);
  EXPECT_EQ(loop.stats().publishes_deferred_by_crash, 1u);
  EXPECT_EQ(loop.advance_and_pin(1.2)->version, 1u) << "published while controller down";
  EXPECT_EQ(loop.advance_and_pin(1.49)->version, 1u);
  EXPECT_EQ(loop.advance_and_pin(1.5)->version, 2u) << "restart must release the publish";
  loop.finish();
  EXPECT_EQ(loop.stats().publishes, 1u);
  EXPECT_EQ(loop.stats().bundles_retired, 1u);
}

TEST(SwapLoopFaults, TriggersCoalesceWhileAPublishIsInFlight) {
  BlacklistTable bl(8);
  Controller ctl(bl, {});
  SwapConfig scfg;
  scfg.enabled = true;
  scfg.drift.window = 2;
  scfg.drift.baseline_windows = 1;
  scfg.drift.cooldown_windows = 0;
  scfg.update.max_extension_per_field = 0;
  scfg.publish_after_extensions = 0;
  scfg.swap_latency_s = 100.0;  // the first publish stays in flight throughout
  SwapLoop loop(scfg, core::build_bundle(1, three_tables(), rules::Quantizer{16}), ctl,
                nullptr, "t");
  BenignMirror covered, missing;
  covered.key.fill(1);
  covered.key[0] = 50;
  missing.key.fill(1);
  missing.key[0] = 90;
  loop.on_benign_mirror(covered, 0.1);
  loop.on_benign_mirror(covered, 0.2);
  for (int i = 0; i < 8; ++i) loop.on_benign_mirror(missing, 0.3 + 0.1 * i);
  const auto st = loop.stats();
  EXPECT_GE(st.drift_fires, 2u);
  EXPECT_EQ(st.rebuilds, 1u);  // only the first trigger built a version
  EXPECT_EQ(st.coalesced_triggers, st.drift_fires - 1);
  loop.finish();  // end-of-run drain publishes the in-flight version
  EXPECT_EQ(loop.stats().publishes, 1u);
  EXPECT_EQ(loop.stats().final_version, 2u);
}

TEST_F(FaultPipelineTest, SwapGridLosesNoPacketsUnderFaultsAndEviction) {
  // fault programme x eviction policy x swap mode: in every cell, each
  // packet takes exactly one path and lands in exactly one confusion cell,
  // and every emitted mirror is delivered or counted lost — no packet and
  // no mirror is unaccounted for, swaps or not.
  ml::Matrix fake(2, kSwitchFlFeatures);
  for (std::size_t j = 0; j < kSwitchFlFeatures; ++j) {
    fake(0, j) = 0.0;
    fake(1, j) = 1e6;
  }
  rules::Quantizer q{16};
  q.fit(fake);
  core::VoteWhitelist wl;
  wl.tree_count = 3;
  for (double cap : {900.0, 900.0, 300.0}) {
    std::vector<rules::FieldRange> box(kSwitchFlFeatures, {0, q.domain_max()});
    box[5] = {0, q.quantize_value(5, cap)};
    wl.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});
  }
  DeployedModel dm;
  dm.fl_tables = &wl;
  dm.fl_quantizer = &q;

  traffic::Trace t;
  for (int i = 0; i < 600; ++i) {
    const bool mal = i % 4 == 0;
    const std::uint16_t len = mal ? 1300 : (i < 300 ? 100 : 700);
    t.packets.push_back(mk(0.002 * i, len, 1 + i % 23,
                           static_cast<std::uint16_t>(1 + i % 5), mal));
  }

  for (const bool faulty : {false, true}) {
    for (const auto ev : {EvictionPolicy::kFifo, EvictionPolicy::kLru}) {
      for (const bool swap_on : {false, true}) {
        PipelineConfig cfg;
        cfg.packet_threshold_n = 3;
        cfg.flow_slots = 16;  // force collisions/evictions
        cfg.blacklist_capacity = 8;
        cfg.eviction = ev;
        if (faulty) {
          cfg.control.control_latency_s = 0.01;
          cfg.control.channel_capacity = 8;
          cfg.control.faults.digest_loss_rate = 0.2;
          cfg.control.faults.digest_delay_rate = 0.2;
          cfg.control.faults.digest_delay_s = 0.05;
          cfg.control.faults.install_failure_rate = 0.2;
          cfg.control.faults.crashes = {{0.3, 0.2}};
        }
        cfg.swap.enabled = swap_on;
        cfg.swap.drift.window = 8;
        cfg.swap.update.max_extension_per_field = 8;
        cfg.swap.publish_after_extensions = 0;
        cfg.swap.swap_latency_s = 0.01;
        Pipeline pipe(cfg, dm);
        const SimStats st = pipe.run(t);
        const std::string cell = std::string("faulty=") + (faulty ? "1" : "0") +
                                 " ev=" + (ev == EvictionPolicy::kFifo ? "fifo" : "lru") +
                                 " swap=" + (swap_on ? "1" : "0");
        std::size_t paths = 0;
        for (const auto c : st.path_count) paths += c;
        EXPECT_EQ(paths, st.packets) << cell;
        EXPECT_EQ(st.packets, t.size()) << cell;
        EXPECT_EQ(st.tp + st.fp + st.tn + st.fn, st.packets) << cell;
        // Full channel-mouth audit: every digest delivered, injected-dropped,
        // overflowed, or crash-lost; every install applied or failed; every
        // failure retried or dead-lettered (shared with the fleet tests).
        EXPECT_TRUE(AuditSimConservation(st)) << cell;
        if (swap_on) {
          EXPECT_EQ(st.faults.mirrors_delivered + st.faults.mirrors_lost,
                    st.benign_feature_mirrors)
              << cell;
          EXPECT_EQ(st.swap.mirrors_applied, st.faults.mirrors_delivered) << cell;
          EXPECT_EQ(st.swap.final_version, 1u + st.swap.publishes) << cell;
          EXPECT_EQ(st.swap.bundles_retired, st.swap.publishes) << cell;
        } else {
          EXPECT_EQ(st.faults.mirrors_enqueued, 0u) << cell;
          EXPECT_EQ(st.swap.final_version, 0u) << cell;
        }
      }
    }
  }
}

}  // namespace
}  // namespace iguard::switchsim
