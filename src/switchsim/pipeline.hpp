// Behavioural model of iGuard's data plane (Fig. 4): per packet, the
// pipeline consults the blacklist, the double-hashed flow storage, and the
// whitelist rule tables, and takes one of the six execution paths the paper
// colour-codes. The controller runs in lockstep (digest -> blacklist
// install) — control-plane latency is modelled in timing.hpp, not by
// delaying installs here.
//
//   red    — 5-tuple blacklisted: drop immediately.
//   brown  — tracked flow, packets 1..n-1, no timeout: update registers,
//            verdict from the PL (early-packet) whitelist.
//   blue   — n-th packet or idle timeout: finalise FL features, match the
//            FL whitelist, store the flow label, digest to the controller,
//            clear feature registers, mirror to loopback.
//   orange — both hash ways occupied by other flows: if the resident is
//            already classified, evict and re-initialise with this packet;
//            either way this packet gets a PL verdict.
//   purple — flow label already 0/1: early per-packet decision.
//   green  — the loopback-mirrored copy (simulated synchronously when blue
//            or orange mirror; counted so path statistics match Fig. 4).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/whitelist.hpp"
#include "rules/quantize.hpp"
#include "switchsim/registers.hpp"
#include "switchsim/tables.hpp"

namespace iguard::switchsim {

/// Rule tables + quantisers a trained model deploys onto the switch. Each
/// whitelist is a per-tree table set with a match-count vote (how forest
/// models fit RMT hardware; see core::VoteWhitelist).
struct DeployedModel {
  const core::VoteWhitelist* fl_tables = nullptr;
  const rules::Quantizer* fl_quantizer = nullptr;  // over the 13 FL features
  const core::VoteWhitelist* pl_tables = nullptr;  // optional early-packet rules
  const rules::Quantizer* pl_quantizer = nullptr;
};

struct PipelineConfig {
  std::size_t packet_threshold_n = 32;  // the paper's n
  double idle_timeout_delta = 10.0;     // the paper's delta, seconds
  std::size_t flow_slots = 4096;        // per hash table
  std::size_t blacklist_capacity = 4096;
  EvictionPolicy eviction = EvictionPolicy::kFifo;
};

enum class Path : std::size_t { kRed = 0, kBrown, kBlue, kOrange, kPurple, kGreen };

struct SimStats {
  std::array<std::size_t, 6> path_count{};
  std::size_t packets = 0;
  std::size_t dropped = 0;
  std::size_t blacklist_hits = 0;
  std::size_t collisions = 0;
  std::size_t flows_classified = 0;
  std::size_t benign_feature_mirrors = 0;  // egress mirror for rule updates
  // Per-packet verdict (1 = dropped/malicious) and ground truth, for the
  // paper's per-packet detection metrics.
  std::vector<std::uint8_t> pred;
  std::vector<std::uint8_t> truth;

  std::size_t path(Path p) const { return path_count[static_cast<std::size_t>(p)]; }
};

class Pipeline {
 public:
  Pipeline(const PipelineConfig& cfg, const DeployedModel& model);

  /// Process one packet; returns the verdict (1 = drop as malicious).
  int process(const traffic::Packet& p, SimStats& stats);

  /// Replay a whole trace.
  SimStats run(const traffic::Trace& trace);

  const Controller& controller() const { return controller_; }
  const BlacklistTable& blacklist() const { return blacklist_; }
  const FlowStore& flow_store() const { return store_; }

 private:
  int classify_pl(const traffic::Packet& p) const;
  int classify_fl(const IntFlowState& st) const;
  void finalize_flow(const traffic::Packet& p, IntFlowState& st, SimStats& stats);

  PipelineConfig cfg_;
  DeployedModel model_;
  FlowStore store_;
  BlacklistTable blacklist_;
  Controller controller_;
};

}  // namespace iguard::switchsim
