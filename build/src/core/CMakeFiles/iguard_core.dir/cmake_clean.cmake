file(REMOVE_RECURSE
  "CMakeFiles/iguard_core.dir/ae_ensemble.cpp.o"
  "CMakeFiles/iguard_core.dir/ae_ensemble.cpp.o.d"
  "CMakeFiles/iguard_core.dir/guided_iforest.cpp.o"
  "CMakeFiles/iguard_core.dir/guided_iforest.cpp.o.d"
  "CMakeFiles/iguard_core.dir/iguard.cpp.o"
  "CMakeFiles/iguard_core.dir/iguard.cpp.o.d"
  "CMakeFiles/iguard_core.dir/online_update.cpp.o"
  "CMakeFiles/iguard_core.dir/online_update.cpp.o.d"
  "CMakeFiles/iguard_core.dir/pl_model.cpp.o"
  "CMakeFiles/iguard_core.dir/pl_model.cpp.o.d"
  "CMakeFiles/iguard_core.dir/whitelist.cpp.o"
  "CMakeFiles/iguard_core.dir/whitelist.cpp.o.d"
  "libiguard_core.a"
  "libiguard_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iguard_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
