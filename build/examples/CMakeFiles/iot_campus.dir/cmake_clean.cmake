file(REMOVE_RECURSE
  "CMakeFiles/iot_campus.dir/iot_campus.cpp.o"
  "CMakeFiles/iot_campus.dir/iot_campus.cpp.o.d"
  "iot_campus"
  "iot_campus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_campus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
