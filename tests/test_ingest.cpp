// Hardened ingest boundary (src/io, DESIGN.md §4g): strict readers on
// untrusted bytes, quarantine accounting, overload shedding, the SPSC ring,
// ingest chaos, config validation, and the conservation + determinism +
// byte-identity contracts the bench gates enforce at scale.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>

#include "fault_audit.hpp"
#include "io/replay.hpp"
#include "io/spsc_ring.hpp"
#include "ml/rng.hpp"
#include "trafficgen/pcap_io.hpp"

using namespace iguard;

namespace {

std::string header_line() { return std::string(io::kTraceCsvHeader) + "\n"; }

std::string valid_row(double ts, std::uint32_t flow = 1) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.17g,167772161,3232235777,443,51514,6,1500,64,1,0,%u\n",
                ts, flow);
  return buf;
}

traffic::Trace small_trace(std::size_t flows, std::size_t per_flow, std::uint64_t seed) {
  ml::Rng rng(seed);
  traffic::Trace t;
  for (std::size_t f = 0; f < flows; ++f) {
    traffic::FiveTuple ft{0x0A000000u + static_cast<std::uint32_t>(f), 0x0B000001u,
                          static_cast<std::uint16_t>(1024 + f), 443, traffic::kProtoTcp};
    for (std::size_t i = 0; i < per_flow; ++i) {
      traffic::Packet p;
      p.ts = 0.001 * static_cast<double>(f) + 0.02 * static_cast<double>(i) +
             rng.uniform(0.0, 0.0003);
      p.ft = ft;
      p.length = static_cast<std::uint16_t>(100 + rng.index(500));
      p.malicious = f % 3 == 0;
      t.packets.push_back(p);
    }
  }
  t.sort_by_time();
  return t;
}

/// Minimal deployed model (the bench idiom): one all-pass whitelist rule
/// over a quantizer fitted on a synthetic [0, 1e6] feature box.
struct TinyModel {
  rules::Quantizer quant{16};
  core::VoteWhitelist wl;
  switchsim::DeployedModel dm;

  TinyModel() {
    ml::Matrix fake(2, switchsim::kSwitchFlFeatures);
    for (std::size_t j = 0; j < switchsim::kSwitchFlFeatures; ++j) {
      fake(0, j) = 0.0;
      fake(1, j) = 1e6;
    }
    quant.fit(fake);
    wl.tree_count = 1;
    std::vector<rules::FieldRange> box(switchsim::kSwitchFlFeatures,
                                       {0, quant.domain_max()});
    wl.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});
    dm.fl_tables = &wl;
    dm.fl_quantizer = &quant;
  }
};

std::uint64_t cat(const io::IngestStats& s, io::IngestErrorCategory c) {
  return s.by_category[static_cast<std::size_t>(c)];
}

}  // namespace

// ---------------------------------------------------------------------------
// CSV reader

TEST(IngestCsv, ParsesValidRowsExactly) {
  const std::string csv = header_line() + valid_row(0.125) + valid_row(0.25, 2);
  const io::TraceReader reader;
  const auto r = reader.read_buffer(csv);
  ASSERT_TRUE(r.container_ok);
  ASSERT_EQ(r.stats.offered, 2u);
  ASSERT_EQ(r.stats.accepted, 2u);
  EXPECT_EQ(r.stats.quarantined, 0u);
  EXPECT_TRUE(r.stats.conserved());
  const auto& p = r.trace.packets[0];
  EXPECT_EQ(p.ts, 0.125);
  EXPECT_EQ(p.ft.src_ip, 167772161u);
  EXPECT_EQ(p.ft.dst_ip, 3232235777u);
  EXPECT_EQ(p.ft.src_port, 443);
  EXPECT_EQ(p.ft.dst_port, 51514);
  EXPECT_EQ(p.ft.proto, traffic::kProtoTcp);
  EXPECT_EQ(p.length, 1500);
  EXPECT_EQ(p.ttl, 64);
  EXPECT_EQ(p.flags, traffic::TcpFlag::kSyn);
  EXPECT_FALSE(p.malicious);
  EXPECT_EQ(p.flow_id, 1u);
}

TEST(IngestCsv, QuarantinesByCategory) {
  const std::string csv = header_line() +
                          "0.1,1,2,3\n" +                                          // short
                          "0.2,1,2,3,4,6,5,6,1,0,1,extra\n" +                      // extra
                          "zz,1,2,3,4,6,5,6,1,0,1\n" +                             // bad ts
                          "0.3,1,2,3,4,47,5,6,1,0,1\n" +                           // proto
                          "0.4,1,2,3,4,6,5,6,9,0,1\n" +                            // flags
                          "0.5,1,2,3,4,6,5,6,1,2,1\n" +                            // malicious
                          valid_row(0.6);
  const io::TraceReader reader;
  const auto r = reader.read_buffer(csv);
  EXPECT_EQ(r.stats.offered, 7u);
  EXPECT_EQ(r.stats.accepted, 1u);
  EXPECT_EQ(r.stats.quarantined, 6u);
  EXPECT_TRUE(r.stats.conserved());
  EXPECT_EQ(cat(r.stats, io::IngestErrorCategory::kTruncated), 1u);
  EXPECT_EQ(cat(r.stats, io::IngestErrorCategory::kBadField), 2u);
  EXPECT_EQ(cat(r.stats, io::IngestErrorCategory::kUnsupported), 1u);
  EXPECT_EQ(cat(r.stats, io::IngestErrorCategory::kRangeViolation), 2u);
  ASSERT_EQ(r.quarantine.size(), 6u);
  EXPECT_EQ(r.quarantine[0].category, io::IngestErrorCategory::kTruncated);
  EXPECT_EQ(r.quarantine[0].record_index, 0u);
  EXPECT_EQ(r.quarantine[0].snippet, "0.1,1,2,3");
}

TEST(IngestCsv, StrictNumericParse) {
  // from_chars strictness: leading space, '+', hex, trailing junk all fail.
  const std::string csv = header_line() +
                          "0.1, 1,2,3,4,6,5,6,1,0,1\n" +
                          "0.1,+1,2,3,4,6,5,6,1,0,1\n" +
                          "0.1,0x1,2,3,4,6,5,6,1,0,1\n" +
                          "0.1,1z,2,3,4,6,5,6,1,0,1\n" +
                          "0.1,99999999999999999999,2,3,4,6,5,6,1,0,1\n" +
                          "inf,1,2,3,4,6,5,6,1,0,1\n";
  const io::TraceReader reader;
  const auto r = reader.read_buffer(csv);
  EXPECT_EQ(r.stats.accepted, 0u);
  EXPECT_EQ(r.stats.quarantined, 6u);
  EXPECT_TRUE(r.stats.conserved());
}

TEST(IngestCsv, MissingHeaderIsContainerError) {
  const io::TraceReader reader;
  const auto r = reader.read_buffer("0.1,1,2,3,4,6,5,6,1,0,1\n");
  EXPECT_FALSE(r.container_ok);
  EXPECT_EQ(cat(r.stats, io::IngestErrorCategory::kContainer), 1u);
  EXPECT_TRUE(r.stats.conserved());
}

TEST(IngestCsv, TimestampClampingIsCountedAndMonotone) {
  const std::string csv =
      header_line() + valid_row(-1.0) + valid_row(0.5) + valid_row(0.25) + valid_row(0.75);
  const io::TraceReader reader;
  const auto r = reader.read_buffer(csv);
  ASSERT_EQ(r.stats.accepted, 4u);
  EXPECT_EQ(r.stats.timestamps_clamped, 2u);  // the -1.0 and the 0.25 regression
  EXPECT_EQ(r.trace.packets[0].ts, 0.0);
  EXPECT_EQ(r.trace.packets[2].ts, 0.5);  // clamped up to the running max
  double prev = 0.0;
  for (const auto& p : r.trace.packets) {
    EXPECT_GE(p.ts, prev);
    prev = p.ts;
  }
}

TEST(IngestCsv, StrictModeQuarantinesRegressions) {
  io::TraceReaderConfig cfg;
  cfg.clamp_timestamps = false;
  const io::TraceReader reader(cfg);
  const auto r = reader.read_buffer(header_line() + valid_row(0.5) + valid_row(0.25));
  EXPECT_EQ(r.stats.accepted, 1u);
  EXPECT_EQ(cat(r.stats, io::IngestErrorCategory::kRangeViolation), 1u);
}

TEST(IngestCsv, BudgetAndOversizeDegradeGracefully) {
  io::TraceReaderConfig cfg;
  cfg.limits.max_records = 2;
  cfg.limits.max_record_bytes = 96;
  const io::TraceReader reader(cfg);
  std::string big = valid_row(0.3);
  big.insert(big.size() - 1, std::string(80, '0'));  // blow the row budget
  const auto r =
      reader.read_buffer(header_line() + valid_row(0.1) + valid_row(0.2) + big + valid_row(0.4));
  EXPECT_EQ(r.stats.accepted, 2u);
  EXPECT_EQ(cat(r.stats, io::IngestErrorCategory::kOversized), 1u);
  EXPECT_EQ(cat(r.stats, io::IngestErrorCategory::kBudget), 1u);
  EXPECT_TRUE(r.stats.conserved());
}

TEST(IngestCsv, RoundTripIsBitExact) {
  const traffic::Trace t = small_trace(7, 5, 0xC5Full);
  const io::TraceReader reader;
  const auto r = reader.read_buffer(io::trace_to_csv(t));
  ASSERT_EQ(r.stats.accepted, t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(r.trace.packets[i].ts, t.packets[i].ts);  // %.17g: bit-exact
    EXPECT_EQ(r.trace.packets[i].ft, t.packets[i].ft);
    EXPECT_EQ(r.trace.packets[i].length, t.packets[i].length);
    EXPECT_EQ(r.trace.packets[i].flow_id, t.packets[i].flow_id);
  }
  // And the writer is the reader's inverse on its own output.
  EXPECT_EQ(io::trace_to_csv(r.trace), io::trace_to_csv(t));
}

TEST(IngestCsv, MetricsCountersMatchStats) {
  obs::Registry reg;
  io::TraceReaderConfig cfg;
  cfg.metrics = &reg;
  const io::TraceReader reader(cfg);
  const auto r = reader.read_buffer(header_line() + valid_row(0.1) + "garbage\n");
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.scalars.at("ingest.offered"), 2.0);
  EXPECT_EQ(snap.scalars.at("ingest.accepted"), 1.0);
  EXPECT_EQ(snap.scalars.at("ingest.quarantined"), 1.0);
  EXPECT_EQ(snap.scalars.at("ingest.quarantine.truncated"),
            static_cast<double>(cat(r.stats, io::IngestErrorCategory::kTruncated)));
}

// ---------------------------------------------------------------------------
// pcap reader

TEST(IngestPcap, MatchesLegacyReaderOnCleanCapture) {
  const traffic::Trace t = small_trace(5, 4, 0x9CA9ull);
  std::ostringstream os;
  traffic::write_pcap(os, t);
  const std::string bytes = os.str();

  std::istringstream is(bytes);
  const traffic::Trace legacy = traffic::read_pcap(is);

  const io::TraceReader reader;  // kAuto: magic routes to pcap
  const auto r = reader.read_buffer(bytes);
  ASSERT_TRUE(r.container_ok);
  ASSERT_EQ(r.stats.accepted, legacy.size());
  EXPECT_EQ(r.stats.quarantined, 0u);
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(r.trace.packets[i].ft, legacy.packets[i].ft);
    EXPECT_EQ(r.trace.packets[i].length, legacy.packets[i].length);
  }
}

TEST(IngestPcap, TruncatedAndBadMagic) {
  const traffic::Trace t = small_trace(2, 2, 0x7u);
  std::ostringstream os;
  traffic::write_pcap(os, t);
  std::string bytes = os.str();
  bytes.resize(bytes.size() - 7);  // cut the last record's body

  const io::TraceReader reader;
  const auto r = reader.read_buffer(bytes);
  EXPECT_TRUE(r.container_ok);
  EXPECT_EQ(r.stats.accepted, t.size() - 1);
  EXPECT_EQ(cat(r.stats, io::IngestErrorCategory::kTruncated), 1u);
  EXPECT_TRUE(r.stats.conserved());

  std::string bad = os.str();
  bad[0] = '\x42';
  const auto rb = reader.read_buffer(bad);
  // Magic no longer matches -> auto-detected as CSV -> header mismatch.
  EXPECT_FALSE(rb.container_ok);
  EXPECT_EQ(cat(rb.stats, io::IngestErrorCategory::kContainer), 1u);
}

TEST(IngestPcap, RuntOrigLenDoesNotUnderflow) {
  // IPv4 total length 0 forces the orig_len fallback; orig_len below the
  // Ethernet header must clamp to kBadLength, not wrap to ~64K.
  traffic::Packet p;
  const std::string frame = [] {
    traffic::Trace t;
    traffic::Packet q;
    q.ft = {1, 2, 3, 4, traffic::kProtoTcp};
    q.length = 100;
    t.packets.push_back(q);
    std::ostringstream os;
    traffic::write_pcap(os, t);
    const std::string bytes = os.str();
    return bytes.substr(traffic::kPcapGlobalHeaderLen + traffic::kPcapRecordHeaderLen);
  }();
  std::string zeroed = frame;
  zeroed[16] = zeroed[17] = '\0';  // IPv4 total-length field
  const auto st = traffic::parse_pcap_record(0, 0, 5, zeroed, p);
  EXPECT_EQ(st, traffic::PcapRecordStatus::kBadLength);
  const auto ok = traffic::parse_pcap_record(0, 0, 114, zeroed, p);
  EXPECT_EQ(ok, traffic::PcapRecordStatus::kOk);
  EXPECT_EQ(p.length, 100);  // orig 114 - 14 B Ethernet framing
}

// ---------------------------------------------------------------------------
// Quarantine ring

TEST(QuarantineRing, BoundedWithEvictionAccounting) {
  io::QuarantineRing ring(3, 4);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.push(io::IngestErrorCategory::kBadField, i, "d" + std::to_string(i), "abcdefgh");
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.evicted(), 2u);
  EXPECT_EQ(ring[0].record_index, 2u);  // oldest survivor
  EXPECT_EQ(ring[2].record_index, 4u);
  EXPECT_EQ(ring[0].snippet, "abcd");  // snippet budget enforced
}

// ---------------------------------------------------------------------------
// SPSC ring

TEST(SpscRing, SingleThreadedFifo) {
  io::SpscRing<int> ring(3);  // rounds up to 4
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));  // empty
}

TEST(SpscRing, ThreadedStressConservesEveryElement) {
  constexpr std::size_t kN = 200000;
  io::SpscRing<std::size_t> ring(64);
  std::thread producer([&] {
    for (std::size_t i = 0; i < kN; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::size_t expected = 0;
  std::size_t v = 0;
  while (expected < kN) {
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expected);  // order preserved, nothing lost or duplicated
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(SpscRing, PumpIsTransparent) {
  const traffic::Trace t = small_trace(11, 6, 0xF00Dull);
  io::RingPumpStats stats;
  const traffic::Trace out = io::pump_through_ring(t, 16, stats);
  EXPECT_EQ(stats.pushed, stats.popped);
  EXPECT_EQ(stats.pushed, t.size());
  EXPECT_EQ(io::trace_to_csv(out), io::trace_to_csv(t));
}

// ---------------------------------------------------------------------------
// Overload gate

TEST(Overload, DisabledAndInfiniteDrainPassThrough) {
  const traffic::Trace t = small_trace(5, 5, 0xABull);
  io::OverloadConfig cfg;  // disabled
  auto r = io::shed_overload(t, cfg);
  EXPECT_EQ(r.stats.admitted, t.size());
  EXPECT_EQ(r.stats.shed, 0u);
  EXPECT_EQ(io::trace_to_csv(r.admitted), io::trace_to_csv(t));

  cfg.enabled = true;
  cfg.drain_rate_pps = 0.0;  // infinite drain
  r = io::shed_overload(t, cfg);
  EXPECT_EQ(r.stats.admitted, t.size());
  EXPECT_EQ(io::trace_to_csv(r.admitted), io::trace_to_csv(t));
}

TEST(Overload, ShedPolicySemantics) {
  // 4 packets at the same instant, capacity 2, drain too slow to help:
  // the first two queue, the rest hit the policy.
  traffic::Trace t;
  for (int i = 0; i < 4; ++i) {
    traffic::Packet p;
    p.ts = 0.0;
    p.ft = {static_cast<std::uint32_t>(100 + i), 1, 1, 1, traffic::kProtoTcp};
    p.flow_id = static_cast<std::uint32_t>(i);
    t.packets.push_back(p);
  }
  io::OverloadConfig cfg;
  cfg.enabled = true;
  cfg.queue_capacity = 2;
  cfg.drain_rate_pps = 1.0;

  cfg.policy = io::ShedPolicy::kDropNewest;
  auto r = io::shed_overload(t, cfg);
  EXPECT_EQ(r.stats.shed_newest, 2u);
  ASSERT_EQ(r.admitted.size(), 2u);
  EXPECT_EQ(r.admitted.packets[0].flow_id, 0u);  // earliest arrivals kept
  EXPECT_EQ(r.admitted.packets[1].flow_id, 1u);

  cfg.policy = io::ShedPolicy::kDropOldest;
  r = io::shed_overload(t, cfg);
  EXPECT_EQ(r.stats.shed_oldest, 2u);
  ASSERT_EQ(r.admitted.size(), 2u);
  EXPECT_EQ(r.admitted.packets[0].flow_id, 2u);  // latest arrivals kept
  EXPECT_EQ(r.admitted.packets[1].flow_id, 3u);

  cfg.policy = io::ShedPolicy::kFlowHash;
  cfg.flow_shed_fraction = 1.0;  // every flow in the shed set
  r = io::shed_overload(t, cfg);
  EXPECT_EQ(r.stats.shed_flow_hash, 2u);
  EXPECT_EQ(r.admitted.packets[0].flow_id, 0u);  // saturation sheds arrivals only

  cfg.flow_shed_fraction = 0.0;  // nobody in the shed set -> displaces oldest
  r = io::shed_overload(t, cfg);
  EXPECT_EQ(r.stats.shed_flow_hash, 0u);
  EXPECT_EQ(r.stats.shed_oldest, 2u);
  EXPECT_TRUE(r.stats.conserved());
}

TEST(Overload, FlowHashSheddingIsFlowCoherent) {
  const traffic::Trace t = small_trace(40, 8, 0xBEEFull);
  io::OverloadConfig cfg;
  cfg.enabled = true;
  cfg.queue_capacity = 8;
  cfg.drain_rate_pps = 500.0;
  cfg.policy = io::ShedPolicy::kFlowHash;
  cfg.flow_shed_fraction = 0.5;
  const auto r = io::shed_overload(t, cfg);
  ASSERT_GT(r.stats.shed_flow_hash, 0u);
  EXPECT_TRUE(r.stats.conserved());
  // Determinism: the same trace sheds the same packets again.
  const auto r2 = io::shed_overload(t, cfg);
  EXPECT_EQ(r.stats, r2.stats);
  EXPECT_EQ(io::trace_to_csv(r.admitted), io::trace_to_csv(r2.admitted));
}

TEST(Overload, RandomScheduleConservesAtEveryShardCount) {
  TinyModel m;
  ml::Rng rng(0x5EED5ull);
  for (int round = 0; round < 3; ++round) {
    const traffic::Trace t = small_trace(20 + 7 * static_cast<std::size_t>(round), 6,
                                         0x100ull + static_cast<std::uint64_t>(round));
    io::IngestReplayConfig icfg;
    icfg.overload.enabled = true;
    icfg.overload.queue_capacity = 4 + rng.index(60);
    icfg.overload.drain_rate_pps = 100.0 + 900.0 * rng.uniform(0.0, 1.0);
    icfg.overload.policy = static_cast<io::ShedPolicy>(rng.index(3));
    icfg.chaos.record_truncate_rate = 0.03;
    icfg.chaos.record_corrupt_rate = 0.03;
    icfg.chaos.batch_duplicate_rate = 0.05;
    icfg.chaos.batch_reorder_rate = 0.05;

    io::IngestReplayResult first;
    bool have_first = false;
    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      switchsim::ReplayConfig rc;
      rc.shards = shards;
      const auto out = io::ingest_replay_sharded(t, icfg, switchsim::PipelineConfig{},
                                                 m.dm, rc);
      EXPECT_EQ(io::audit_ingest_conservation(out), "");
      EXPECT_TRUE(switchsim::AuditSimConservation(out.replay.stats));
      if (!have_first) {
        first = out;
        have_first = true;
      } else {
        // The ingest chain sits upstream of sharding: its accounting must
        // be bit-identical at every shard count.
        EXPECT_EQ(out.ingest, first.ingest);
        EXPECT_EQ(out.overload, first.overload);
        EXPECT_EQ(out.chaos, first.chaos);
        EXPECT_EQ(out.replay.stats.packets, first.replay.stats.packets);
      }
    }
  }
}

TEST(Overload, ConfigValidation) {
  io::OverloadConfig cfg;
  cfg.queue_capacity = 0;
  EXPECT_NE(io::validate_config(cfg), "");
  cfg.queue_capacity = 8;
  cfg.drain_rate_pps = std::nan("");
  EXPECT_NE(io::validate_config(cfg), "");
  cfg.drain_rate_pps = 10.0;
  cfg.flow_shed_fraction = 1.5;
  EXPECT_NE(io::validate_config(cfg), "");
  cfg.flow_shed_fraction = 0.5;
  EXPECT_EQ(io::validate_config(cfg), "");
  cfg.queue_capacity = 0;
  EXPECT_THROW(io::OverloadGate{cfg}, switchsim::ConfigError);
}

// ---------------------------------------------------------------------------
// Chaos mangler

TEST(Chaos, OffIsIdentity) {
  const std::string csv = io::trace_to_csv(small_trace(6, 4, 0x11ull));
  switchsim::FaultConfig faults;  // ingest faults all off
  io::ChaosStats stats;
  EXPECT_EQ(io::mangle_csv(csv, faults, 16, stats), csv);
}

TEST(Chaos, DeterministicAndAccounted) {
  const std::string csv = io::trace_to_csv(small_trace(30, 6, 0x22ull));
  switchsim::FaultConfig faults;
  faults.record_truncate_rate = 0.1;
  faults.record_corrupt_rate = 0.1;
  faults.batch_duplicate_rate = 0.2;
  faults.batch_reorder_rate = 0.2;
  faults.bursts.push_back({0.0, 0.05, 2.0});

  io::ChaosStats a, b;
  const std::string ma = io::mangle_csv(csv, faults, 8, a);
  const std::string mb = io::mangle_csv(csv, faults, 8, b);
  EXPECT_EQ(ma, mb);  // pure function of (csv, seed, batch size)
  EXPECT_EQ(a, b);
  EXPECT_GT(a.truncated + a.corrupted + a.batches_duplicated + a.batches_reordered, 0u);
  EXPECT_GT(a.burst_copies, 0u);
  EXPECT_EQ(a.records_in, 180u);
  // The header survives: the mangled stream still parses with conservation.
  const io::TraceReader reader;
  const auto r = reader.read_buffer(ma);
  EXPECT_TRUE(r.container_ok);
  EXPECT_EQ(r.stats.offered, a.records_out);
  EXPECT_TRUE(r.stats.conserved());
}

TEST(Chaos, IndependentStreams) {
  // Enabling batch faults must not change which records get truncated.
  const std::string csv = io::trace_to_csv(small_trace(25, 4, 0x33ull));
  switchsim::FaultConfig t_only;
  t_only.record_truncate_rate = 0.2;
  switchsim::FaultConfig both = t_only;
  both.batch_duplicate_rate = 0.3;
  io::ChaosStats sa, sb;
  (void)io::mangle_csv(csv, t_only, 8, sa);
  (void)io::mangle_csv(csv, both, 8, sb);
  EXPECT_EQ(sa.truncated, sb.truncated);
}

// ---------------------------------------------------------------------------
// Digest codec

TEST(DigestCodec, RoundTripAndRejection) {
  switchsim::Digest d;
  d.ft = {0x0A000001u, 0xC0A80101u, 443, 51514, traffic::kProtoTcp};
  d.label = 1;
  const std::string wire = io::encode_digest(d);
  ASSERT_EQ(wire.size(), switchsim::Digest::kBytes);
  switchsim::Digest back;
  ASSERT_TRUE(io::decode_digest(wire, back));
  EXPECT_EQ(back.ft, d.ft);
  EXPECT_EQ(back.label, 1);

  std::string bad = wire;
  bad[12] = 47;  // GRE
  EXPECT_FALSE(io::decode_digest(bad, back));
  bad = wire;
  bad[13] = 7;  // label out of range
  EXPECT_FALSE(io::decode_digest(bad, back));
  EXPECT_FALSE(io::decode_digest(wire.substr(0, 13), back));
}

TEST(DigestCodec, StreamConservation) {
  switchsim::Digest d;
  d.ft = {1, 2, 3, 4, traffic::kProtoUdp};
  std::string stream = io::encode_digest(d) + io::encode_digest(d);
  std::string bad = io::encode_digest(d);
  bad[12] = 99;
  stream += bad;
  stream += io::encode_digest(d).substr(0, 5);  // trailing fragment

  io::DigestDecodeStats stats;
  const auto digests = io::decode_digest_stream(stream, stats);
  EXPECT_EQ(digests.size(), 2u);
  EXPECT_EQ(stats.offered, 4u);
  EXPECT_EQ(stats.decoded, 2u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_TRUE(stats.conserved());
}

// ---------------------------------------------------------------------------
// In-memory boundary + byte-identity parity

TEST(IngestBoundary, ValidTracePassesThroughUntouched) {
  const traffic::Trace t = small_trace(9, 5, 0x44ull);
  const auto r = io::ingest_trace(t);
  EXPECT_EQ(r.stats.quarantined, 0u);
  EXPECT_EQ(r.stats.timestamps_clamped, 0u);
  EXPECT_EQ(io::trace_to_csv(r.trace), io::trace_to_csv(t));
}

TEST(IngestBoundary, DirtyPacketsQuarantined) {
  traffic::Trace t = small_trace(3, 2, 0x55ull);
  t.packets[1].ft.proto = 47;
  t.packets[3].ts = std::nan("");
  const auto r = io::ingest_trace(t);
  EXPECT_EQ(r.stats.accepted, t.size() - 2);
  EXPECT_EQ(cat(r.stats, io::IngestErrorCategory::kUnsupported), 1u);
  EXPECT_EQ(cat(r.stats, io::IngestErrorCategory::kRangeViolation), 1u);
  EXPECT_TRUE(r.stats.conserved());
}

TEST(IngestBoundary, HardenedReplayMatchesPlainReplayExactly) {
  TinyModel m;
  const traffic::Trace t = small_trace(20, 6, 0x66ull);
  switchsim::ReplayConfig rc;
  rc.shards = 2;
  const auto plain = switchsim::replay_sharded(t, switchsim::PipelineConfig{}, m.dm, rc);
  io::IngestReplayConfig icfg;  // hardening on, chaos/overload off
  const auto hard =
      io::ingest_replay_sharded(t, icfg, switchsim::PipelineConfig{}, m.dm, rc);
  EXPECT_TRUE(hard.replay.stats == plain.stats);
  // Same through the serialized untrusted-bytes entry.
  const auto bytes = io::ingest_replay_sharded(io::trace_to_csv(t), icfg,
                                               switchsim::PipelineConfig{}, m.dm, rc);
  EXPECT_TRUE(bytes.replay.stats == plain.stats);
}

TEST(IngestBoundary, FleetChainConserves) {
  TinyModel m;
  const traffic::Trace t = small_trace(15, 5, 0x77ull);
  io::IngestReplayConfig icfg;
  icfg.overload.enabled = true;
  icfg.overload.queue_capacity = 16;
  icfg.overload.drain_rate_pps = 400.0;
  icfg.chaos.record_corrupt_rate = 0.05;
  switchsim::FleetConfig fc;
  fc.devices = 2;
  fc.replay.shards = 2;
  const auto out =
      io::ingest_replay_fleet(t, icfg, switchsim::PipelineConfig{}, m.dm, fc);
  EXPECT_EQ(io::audit_ingest_conservation(out), "");
}

// ---------------------------------------------------------------------------
// Config validation at construction (switchsim structs)

TEST(ConfigValidation, ControlPlaneRejectsBadValues) {
  switchsim::BlacklistTable bl(64);
  switchsim::ControlPlaneConfig cfg;
  cfg.control_latency_s = -0.5;
  try {
    switchsim::Controller c(bl, cfg);
    FAIL() << "negative latency accepted";
  } catch (const switchsim::ConfigError& e) {
    EXPECT_EQ(e.structure(), "ControlPlaneConfig");
    EXPECT_EQ(e.field(), "control_latency_s");
  }

  cfg = {};
  cfg.faults.digest_loss_rate = 1.5;
  EXPECT_THROW(switchsim::Controller(bl, cfg), switchsim::ConfigError);
  cfg = {};
  cfg.faults.digest_delay_s = std::nan("");
  EXPECT_THROW(switchsim::Controller(bl, cfg), switchsim::ConfigError);
  cfg = {};
  cfg.retry_backoff_cap_s = cfg.retry_backoff_s / 2.0;  // inverted backoff
  EXPECT_THROW(switchsim::Controller(bl, cfg), switchsim::ConfigError);
  cfg = {};
  cfg.faults.bursts.push_back({0.0, -1.0, 2.0});  // negative burst duration
  EXPECT_THROW(switchsim::Controller(bl, cfg), switchsim::ConfigError);
  cfg = {};
  EXPECT_NO_THROW(switchsim::Controller(bl, cfg));
}

TEST(ConfigValidation, ReplayRejectsZeroShards) {
  switchsim::ReplayConfig rc;
  rc.shards = 0;
  EXPECT_NE(switchsim::validate_config(rc), "");
  const traffic::Trace t = small_trace(2, 2, 0x1ull);
  try {
    (void)switchsim::shard_trace(t, rc);
    FAIL() << "zero shards accepted";
  } catch (const switchsim::ConfigError& e) {
    EXPECT_EQ(e.structure(), "ReplayConfig");
    EXPECT_EQ(e.field(), "shards");
  }
  TinyModel m;
  EXPECT_THROW((void)switchsim::replay_sharded(t, switchsim::PipelineConfig{}, m.dm, rc),
               switchsim::ConfigError);
}

TEST(ConfigValidation, FleetRejectsBadValues) {
  switchsim::FleetConfig fc;
  fc.devices = 0;
  EXPECT_NE(switchsim::validate_config(fc), "");
  TinyModel m;
  const traffic::Trace t = small_trace(2, 2, 0x2ull);
  EXPECT_THROW((void)switchsim::replay_fleet(t, switchsim::PipelineConfig{}, m.dm, fc),
               switchsim::ConfigError);

  fc = {};
  fc.faults.crash_rate = -0.1;
  EXPECT_NE(switchsim::validate_config(fc), "");
  fc = {};
  fc.faults.check_interval_s = 0.0;
  EXPECT_NE(switchsim::validate_config(fc), "");
  fc = {};
  fc.control.batch_size = 0;
  EXPECT_NE(switchsim::validate_config(fc), "");
  fc = {};
  fc.replay.shards = 0;
  EXPECT_NE(switchsim::validate_config(fc), "");
  fc = {};
  EXPECT_EQ(switchsim::validate_config(fc), "");
}
