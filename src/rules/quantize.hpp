// Feature quantisation: maps continuous flow features onto fixed-width
// integer domains so whitelist hypercubes become integer range rules a
// match-action table can hold. Fitted per feature on the training data with
// a safety margin; values outside the fitted span clamp to the domain edge
// (a switch register can do the same with a saturating subtract/shift).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/matrix.hpp"
#include "rules/range_rule.hpp"

namespace iguard::rules {

class Quantizer {
 public:
  /// `bits` per field (<= 32); domain is [0, 2^bits - 1].
  explicit Quantizer(unsigned bits = 16) : bits_(bits) {}

  /// Fit per-feature [lo, hi] spans (with +-5% margin) from data rows.
  void fit(const ml::Matrix& x);

  unsigned bits() const { return bits_; }
  std::uint32_t domain_max() const {
    return bits_ >= 32 ? 0xFFFFFFFFu : ((1u << bits_) - 1u);
  }
  std::size_t field_count() const { return lo_.size(); }
  bool fitted() const { return !lo_.empty(); }

  /// Quantise one feature vector (clamping out-of-span values).
  std::vector<std::uint32_t> quantize(std::span<const double> x) const;

  /// Allocation-free variant: write the quantised levels into the first
  /// x.size() slots of `out` (which must be at least that large). The
  /// pipeline's per-packet path uses this with stack buffers.
  void quantize_into(std::span<const double> x, std::span<std::uint32_t> out) const;

  /// Columnar batch quantisation: quantise `v.size()` values of one field
  /// into `out` (which must be at least that large). Per-element results are
  /// identical to quantize_value(field, v[i]) — the field's span constants
  /// are merely hoisted out of the loop — so batched and per-key paths stay
  /// bit-exact. Allocation-free.
  void quantize_batch_into(std::size_t field, std::span<const double> v,
                           std::span<std::uint32_t> out) const;

  /// Row-major batch quantisation: `rows` holds n×field_count() feature
  /// rows; `out` receives the n×field_count() quantised keys in the same
  /// layout. Loops field-major internally (one quantize_batch_into per
  /// column), bit-exact with n calls to quantize_into. Allocation-free.
  void quantize_rows_into(std::span<const double> rows, std::span<std::uint32_t> out) const;

  std::uint32_t quantize_value(std::size_t field, double v) const;

  /// Inverse map of a quantised level to the centre of its bucket.
  double dequantize(std::size_t field, std::uint32_t q) const;

  /// Convert a continuous half-open box [lo_i, hi_i) per field into a closed
  /// integer FieldRange list. A split threshold p (split is q < p vs q >= p)
  /// maps left to [.., quantize(p)-1] and right to [quantize(p), ..].
  std::vector<FieldRange> to_ranges(std::span<const double> lo,
                                    std::span<const double> hi) const;

 private:
  unsigned bits_;
  std::vector<double> lo_, hi_;
};

}  // namespace iguard::rules
