# Empty dependencies file for iguard_harness.
# This may be replaced when dependencies are built.
