#include "switchsim/registers.hpp"

#include <stdexcept>

namespace iguard::switchsim {

FlowStore::FlowStore(std::size_t slots_per_table, std::uint64_t seed)
    : table1_(slots_per_table),
      table2_(slots_per_table),
      seed1_(seed ^ 0xA5A5A5A5ull),
      seed2_(seed ^ 0x3C3C3C3Cull),
      sig_seed_(seed) {
  if (slots_per_table == 0) throw std::invalid_argument("FlowStore: zero slots");
}

std::uint64_t FlowStore::signature(const traffic::FiveTuple& ft) const {
  // Never 0 (0 marks an empty slot).
  const std::uint64_t s = traffic::bihash(ft, sig_seed_);
  return s == 0 ? 1 : s;
}

FlowStore::Access FlowStore::access(const traffic::FiveTuple& ft) {
  const std::uint64_t sig = signature(ft);
  IntFlowState& s1 = table1_[static_cast<std::size_t>(traffic::bihash(ft, seed1_)) % table1_.size()];
  IntFlowState& s2 = table2_[static_cast<std::size_t>(traffic::bihash(ft, seed2_)) % table2_.size()];

  Access a;
  if (!s1.empty() && s1.sig == sig) {
    a.state = &s1;
    a.found = true;
  } else if (!s2.empty() && s2.sig == sig) {
    a.state = &s2;
    a.found = true;
  } else if (s1.empty()) {
    a.state = &s1;
    a.inserted = true;
  } else if (s2.empty()) {
    a.state = &s2;
    a.inserted = true;
  } else {
    // Both ways occupied by other flows: the primary slot is the resident
    // the orange path inspects.
    a.state = &s1;
    a.collision = true;
  }
  return a;
}

const IntFlowState* FlowStore::find(const traffic::FiveTuple& ft) const {
  const std::uint64_t sig = signature(ft);
  const IntFlowState& s1 =
      table1_[static_cast<std::size_t>(traffic::bihash(ft, seed1_)) % table1_.size()];
  const IntFlowState& s2 =
      table2_[static_cast<std::size_t>(traffic::bihash(ft, seed2_)) % table2_.size()];
  if (!s1.empty() && s1.sig == sig) return &s1;
  if (!s2.empty() && s2.sig == sig) return &s2;
  return nullptr;
}

std::size_t FlowStore::occupied() const {
  std::size_t n = 0;
  for (const auto& s : table1_) n += s.empty() ? 0 : 1;
  for (const auto& s : table2_) n += s.empty() ? 0 : 1;
  return n;
}

}  // namespace iguard::switchsim
