#include "trafficgen/packet.hpp"

#include <algorithm>

namespace iguard::traffic {

namespace {
// SplitMix64 finaliser — cheap, well-mixed 64-bit hash step.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

std::uint64_t dirhash(const FiveTuple& ft, std::uint64_t seed) {
  std::uint64_t h = mix64(seed ^ (static_cast<std::uint64_t>(ft.src_ip) << 32 | ft.dst_ip));
  h = mix64(h ^ (static_cast<std::uint64_t>(ft.src_port) << 32 |
                 static_cast<std::uint64_t>(ft.dst_port) << 16 | ft.proto));
  return h;
}

std::uint64_t bihash(const FiveTuple& ft, std::uint64_t seed) {
  // Canonicalise the direction so (a -> b) and (b -> a) hash identically.
  return dirhash(ft.canonical(), seed);
}

void Trace::sort_by_time() {
  std::stable_sort(packets.begin(), packets.end(),
                   [](const Packet& a, const Packet& b) { return a.ts < b.ts; });
}

void Trace::append(const Trace& other) {
  packets.insert(packets.end(), other.packets.begin(), other.packets.end());
}

Trace merge_traces(std::vector<Trace> parts) {
  Trace out;
  std::uint32_t flow_base = 0;
  for (auto& p : parts) {
    std::uint32_t max_id = 0;
    for (auto& pkt : p.packets) {
      pkt.flow_id += flow_base;
      max_id = std::max(max_id, pkt.flow_id);
      out.packets.push_back(pkt);
    }
    if (!p.packets.empty()) flow_base = max_id + 1;
  }
  out.sort_by_time();
  return out;
}

}  // namespace iguard::traffic
