
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trafficgen/adversarial.cpp" "src/trafficgen/CMakeFiles/iguard_trafficgen.dir/adversarial.cpp.o" "gcc" "src/trafficgen/CMakeFiles/iguard_trafficgen.dir/adversarial.cpp.o.d"
  "/root/repo/src/trafficgen/attacks.cpp" "src/trafficgen/CMakeFiles/iguard_trafficgen.dir/attacks.cpp.o" "gcc" "src/trafficgen/CMakeFiles/iguard_trafficgen.dir/attacks.cpp.o.d"
  "/root/repo/src/trafficgen/benign.cpp" "src/trafficgen/CMakeFiles/iguard_trafficgen.dir/benign.cpp.o" "gcc" "src/trafficgen/CMakeFiles/iguard_trafficgen.dir/benign.cpp.o.d"
  "/root/repo/src/trafficgen/flowspec.cpp" "src/trafficgen/CMakeFiles/iguard_trafficgen.dir/flowspec.cpp.o" "gcc" "src/trafficgen/CMakeFiles/iguard_trafficgen.dir/flowspec.cpp.o.d"
  "/root/repo/src/trafficgen/packet.cpp" "src/trafficgen/CMakeFiles/iguard_trafficgen.dir/packet.cpp.o" "gcc" "src/trafficgen/CMakeFiles/iguard_trafficgen.dir/packet.cpp.o.d"
  "/root/repo/src/trafficgen/pcap_io.cpp" "src/trafficgen/CMakeFiles/iguard_trafficgen.dir/pcap_io.cpp.o" "gcc" "src/trafficgen/CMakeFiles/iguard_trafficgen.dir/pcap_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/iguard_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
