
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_autoencoder.cpp" "tests/CMakeFiles/iguard_tests.dir/test_autoencoder.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_autoencoder.cpp.o.d"
  "/root/repo/tests/test_detectors.cpp" "tests/CMakeFiles/iguard_tests.dir/test_detectors.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_detectors.cpp.o.d"
  "/root/repo/tests/test_features.cpp" "tests/CMakeFiles/iguard_tests.dir/test_features.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_features.cpp.o.d"
  "/root/repo/tests/test_guided_iforest.cpp" "tests/CMakeFiles/iguard_tests.dir/test_guided_iforest.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_guided_iforest.cpp.o.d"
  "/root/repo/tests/test_iforest.cpp" "tests/CMakeFiles/iguard_tests.dir/test_iforest.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_iforest.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/iguard_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_matrix.cpp" "tests/CMakeFiles/iguard_tests.dir/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_matrix.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/iguard_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_nn.cpp" "tests/CMakeFiles/iguard_tests.dir/test_nn.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_nn.cpp.o.d"
  "/root/repo/tests/test_p4_emit.cpp" "tests/CMakeFiles/iguard_tests.dir/test_p4_emit.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_p4_emit.cpp.o.d"
  "/root/repo/tests/test_pcap_online.cpp" "tests/CMakeFiles/iguard_tests.dir/test_pcap_online.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_pcap_online.cpp.o.d"
  "/root/repo/tests/test_protocol.cpp" "tests/CMakeFiles/iguard_tests.dir/test_protocol.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_protocol.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/iguard_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_rules.cpp" "tests/CMakeFiles/iguard_tests.dir/test_rules.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_rules.cpp.o.d"
  "/root/repo/tests/test_scaler.cpp" "tests/CMakeFiles/iguard_tests.dir/test_scaler.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_scaler.cpp.o.d"
  "/root/repo/tests/test_switchsim.cpp" "tests/CMakeFiles/iguard_tests.dir/test_switchsim.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_switchsim.cpp.o.d"
  "/root/repo/tests/test_trafficgen.cpp" "tests/CMakeFiles/iguard_tests.dir/test_trafficgen.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_trafficgen.cpp.o.d"
  "/root/repo/tests/test_whitelist.cpp" "tests/CMakeFiles/iguard_tests.dir/test_whitelist.cpp.o" "gcc" "tests/CMakeFiles/iguard_tests.dir/test_whitelist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/iguard_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/iguard_core.dir/DependInfo.cmake"
  "/root/repo/build/src/switchsim/CMakeFiles/iguard_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/iguard_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/iguard_features.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/iguard_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/trafficgen/CMakeFiles/iguard_trafficgen.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/iguard_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
