// In-process tour of the serving daemon (DESIGN.md §4i): generate a small
// mixed trace, write it as CSV, and serve it through a Daemon in
// single-thread mode — source → framer → strict reader → overload gate →
// ring → 2 sharded pipelines — then print the Prometheus exposition, the
// alert stream, and the end-to-end conservation audit. No sockets, no
// signals: run_synchronous() is the deterministic loop the tests gate, and
// everything iguardd adds on top is signal/endpoint plumbing around the
// same object.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "daemon/daemon.hpp"
#include "ml/rng.hpp"
#include "obs/metrics.hpp"

using namespace iguard;

namespace {

traffic::Trace make_trace(std::size_t flows, std::size_t packets_per_flow) {
  ml::Rng rng(0x1A9E57ull);
  traffic::Trace t;
  for (std::size_t f = 0; f < flows; ++f) {
    const bool mal = f % 3 == 0;
    traffic::FiveTuple ft{0x0A000000u + static_cast<std::uint32_t>(f),
                          0x0B000000u + static_cast<std::uint32_t>(f % 13),
                          static_cast<std::uint16_t>(1024 + f % 40000), 443,
                          traffic::kProtoTcp};
    for (std::size_t i = 0; i < packets_per_flow; ++i) {
      traffic::Packet p;
      p.ts = 0.0008 * static_cast<double>(f) + 0.05 * static_cast<double>(i) +
             rng.uniform(0.0, 0.0005);
      p.ft = i % 2 == 0 ? ft : ft.reversed();
      p.length = mal ? static_cast<std::uint16_t>(1200 + rng.index(200))
                     : static_cast<std::uint16_t>(80 + rng.index(60));
      p.malicious = mal;
      t.packets.push_back(p);
    }
  }
  t.sort_by_time();
  return t;
}

}  // namespace

int main() {
  // --- a trace on disk, as an operator would have ---------------------------
  const traffic::Trace trace = make_trace(60, 8);
  const std::string path = "daemon_loop_trace.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << io::trace_to_csv(trace);
  }

  // --- bootstrap model (the benchmark's one-tree whitelist) -----------------
  ml::Matrix fake(2, switchsim::kSwitchFlFeatures);
  for (std::size_t j = 0; j < switchsim::kSwitchFlFeatures; ++j) {
    fake(0, j) = 0.0;
    fake(1, j) = 1e6;
  }
  rules::Quantizer quant{16};
  quant.fit(fake);
  core::VoteWhitelist wl;
  wl.tree_count = 1;
  std::vector<rules::FieldRange> box(switchsim::kSwitchFlFeatures, {0, quant.domain_max()});
  box[5] = {0, quant.quantize_value(5, 600.0)};
  wl.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});
  switchsim::DeployedModel dm;
  dm.fl_tables = &wl;
  dm.fl_quantizer = &quant;

  // --- the daemon: loop the file three times through 2 shards ---------------
  obs::Registry metrics;
  daemon::DaemonConfig cfg;
  cfg.source.path = path;
  cfg.source.loops = 3;
  cfg.shards = 2;
  cfg.pipeline.packet_threshold_n = 4;
  cfg.pipeline.swap.enabled = true;
  cfg.pipeline.swap.publish_after_extensions = 0;
  cfg.overload.enabled = true;
  cfg.overload.queue_capacity = 256;
  cfg.overload.drain_rate_pps = 100000.0;
  cfg.metrics = &metrics;

  daemon::Daemon d(cfg, dm);

  // Hot-reload mid-build is exercised by the tests; here, stage one before
  // serving so the run demonstrates the reload path end to end.
  daemon::DaemonConfig next = cfg;
  next.overload.drain_rate_pps = 250000.0;
  const std::string rejected = d.request_reload(next);
  std::cout << "reload staged: " << (rejected.empty() ? "ok" : rejected) << "\n";

  d.run_synchronous();

  const daemon::DaemonStats s = d.stats();
  std::cout << "\n== run ==\n"
            << "offered " << s.ingest.offered << ", admitted " << s.gate.admitted << ", shed "
            << s.gate.shed << ", processed " << s.sim.packets << ", loops "
            << s.loops_completed << ", reloads " << s.reloads_applied << "\n"
            << "audit: "
            << (daemon::audit_daemon_conservation(s).empty() ? "ok"
                                                             : daemon::audit_daemon_conservation(s))
            << "\n";

  std::cout << "\n== alerts ==\n" << d.alerts().render();

  std::cout << "\n== /metrics (first lines) ==\n";
  const std::string text = d.metrics_text();
  std::size_t shown = 0, at = 0;
  while (shown < 12 && at < text.size()) {
    const std::size_t eol = text.find('\n', at);
    std::cout << text.substr(at, eol - at) << "\n";
    at = eol + 1;
    ++shown;
  }
  std::remove(path.c_str());
  return 0;
}
