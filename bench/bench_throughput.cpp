// Replay-throughput benchmark for the packet-path overhaul (DESIGN.md §4c):
// replays a mixed benign+attack trace through the pipeline simulator with
// the linear-scan vs compiled interval-bitmap match engine at 1/2/4/8
// shards, and writes BENCH_pipeline.json (packets/sec, ns/packet,
// allocations/packet) so future PRs have a perf trajectory to regress
// against. Doubles as a drift gate: it exits non-zero if the two engines'
// per-packet verdicts diverge, if the sharded replay is not bit-identical
// across thread counts, or if the steady-state path allocates — which is
// how the ctest smoke entry catches match-engine regressions.
//
//   bench_throughput [--smoke] [--out <path>]
//
// --smoke shrinks the trace so the gate stays fast under sanitizers.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/forest_compile.hpp"
#include "harness/alloc_counter.hpp"
#include "ml/rng.hpp"
#include "obs/metrics.hpp"
#include "switchsim/flow_state.hpp"
#include "switchsim/replay.hpp"
#include "trafficgen/attacks.hpp"
#include "trafficgen/benign.hpp"

using namespace iguard;

namespace {

struct RunResult {
  std::string engine;
  std::size_t shards = 0;
  std::size_t batch_size = 0;  // 0/1 = scalar per-packet reference path
  double packets_per_sec = 0.0;
  double ns_per_packet = 0.0;
  double allocs_per_packet = 0.0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Per-tree whitelist with a controlled rule budget: `tables` tables of
/// `rules_per_table` hypercubes around sampled feature rows — the shape
/// compile_per_tree produces, without paying for teacher training in a
/// perf bench.
core::VoteWhitelist make_whitelist(const ml::Matrix& features, const rules::Quantizer& quant,
                                   std::size_t tables, std::size_t rules_per_table,
                                   ml::Rng& rng) {
  core::VoteWhitelist wl;
  wl.tree_count = tables;
  const std::uint32_t dmax = quant.domain_max();
  const std::uint32_t halfwidth = dmax / 6;
  for (std::size_t t = 0; t < tables; ++t) {
    std::vector<rules::RangeRule> tree_rules;
    for (std::size_t r = 0; r < rules_per_table; ++r) {
      const auto row = features.row(rng.index(features.rows()));
      std::vector<rules::FieldRange> box(features.cols());
      for (std::size_t j = 0; j < box.size(); ++j) {
        const std::uint32_t q = quant.quantize_value(j, row[j]);
        box[j] = {q > halfwidth ? q - halfwidth : 0,
                  q < dmax - halfwidth ? q + halfwidth : dmax};
      }
      tree_rules.push_back({std::move(box), 0, static_cast<int>(r)});
    }
    wl.tables.emplace_back(std::move(tree_rules));
  }
  return wl;
}

/// Synthetic deployment: `tables` x `rules_per_table` TCAM entries on BOTH
/// whitelists. The PL table is what every brown/orange packet consults, so
/// a realistic per-packet rule budget there is what makes the match-engine
/// comparison meaningful; the FL tables are hit on every finalisation.
struct SyntheticModel {
  rules::Quantizer fl_quant{16}, pl_quant{16};
  core::VoteWhitelist fl, pl;
  core::CompiledVoteWhitelist fl_compiled, pl_compiled;

  SyntheticModel(const traffic::Trace& trace, const ml::Matrix& fl_features,
                 std::size_t tables, std::size_t rules_per_table, ml::Rng& rng) {
    fl_quant.fit(fl_features);
    fl = make_whitelist(fl_features, fl_quant, tables, rules_per_table, rng);

    // PL features of sampled packets: {dst_port, proto, length, TTL}.
    const std::size_t n_pl = std::min<std::size_t>(trace.size(), 4096);
    ml::Matrix pl_features(n_pl, 4);
    for (std::size_t i = 0; i < n_pl; ++i) {
      const auto& p = trace.packets[rng.index(trace.size())];
      pl_features(i, 0) = static_cast<double>(p.ft.dst_port);
      pl_features(i, 1) = static_cast<double>(p.ft.proto);
      pl_features(i, 2) = static_cast<double>(p.length);
      pl_features(i, 3) = static_cast<double>(p.ttl);
    }
    pl_quant.fit(pl_features);
    pl = make_whitelist(pl_features, pl_quant, tables, rules_per_table, rng);

    // Compile once (a control-plane operation); every pipeline — including
    // all K shard pipelines — shares the read-only result.
    fl_compiled = core::CompiledVoteWhitelist(fl);
    pl_compiled = core::CompiledVoteWhitelist(pl);
  }

  switchsim::DeployedModel deployed() const {
    switchsim::DeployedModel dm;
    dm.fl_tables = &fl;
    dm.fl_quantizer = &fl_quant;
    dm.pl_tables = &pl;
    dm.pl_quantizer = &pl_quant;
    dm.fl_compiled = &fl_compiled;
    dm.pl_compiled = &pl_compiled;
    return dm;
  }
};

switchsim::PipelineConfig pipe_config(switchsim::MatchEngine engine, bool record_labels,
                                      std::size_t batch_size = 0) {
  switchsim::PipelineConfig cfg;
  cfg.match_engine = engine;
  cfg.record_labels = record_labels;
  cfg.batch_size = batch_size;
  // n = 8 keeps finalisations frequent, so the FL tables are exercised on a
  // meaningful share of packets rather than once per long-lived flow.
  cfg.packet_threshold_n = 8;
  return cfg;
}

RunResult measure(const std::string& name, const traffic::Trace& trace,
                  const switchsim::DeployedModel& dm, switchsim::MatchEngine engine,
                  std::size_t shards, std::size_t reps, std::size_t batch_size = 0) {
  RunResult r;
  r.engine = name;
  r.shards = shards;
  r.batch_size = batch_size;
  const std::size_t a0 = harness::alloc_count();
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t packets = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    switchsim::ReplayConfig rc;
    rc.shards = shards;
    const auto out =
        switchsim::replay_sharded(trace, pipe_config(engine, false, batch_size), dm, rc);
    packets += out.stats.packets;
  }
  const double elapsed = seconds_since(t0);
  const std::size_t allocs = harness::alloc_count() - a0;
  r.packets_per_sec = static_cast<double>(packets) / elapsed;
  r.ns_per_packet = elapsed * 1e9 / static_cast<double>(packets);
  r.allocs_per_packet = static_cast<double>(allocs) / static_cast<double>(packets);
  return r;
}

/// Steady-state probe (mirrors tests/test_alloc_path.cpp): allocations per
/// packet once every flow in play is classified — must be exactly 0.
std::size_t steady_state_allocs(const switchsim::DeployedModel& dm) {
  auto cfg = pipe_config(switchsim::MatchEngine::kCompiled, false);
  cfg.packet_threshold_n = 4;
  cfg.idle_timeout_delta = 1e6;
  switchsim::Pipeline pipe(cfg, dm);
  switchsim::SimStats st;
  traffic::Packet p;
  p.ft = {0x0A000001u, 0x0A000002u, 4242, 443, traffic::kProtoTcp};
  p.length = 120;
  double ts = 0.0;
  for (int i = 0; i < 8; ++i) {
    p.ts = (ts += 0.001);
    pipe.process(p, st);  // classify the flow: purple from here on
  }
  const std::size_t before = harness::alloc_count();
  for (int i = 0; i < 20000; ++i) {
    p.ts = (ts += 0.0001);
    pipe.process(p, st);
  }
  return harness::alloc_count() - before;
}

/// Same probe through process_batch: after the staging buffers grow to the
/// batch size once, the batched path must allocate exactly nothing.
std::size_t steady_state_allocs_batched(const switchsim::DeployedModel& dm) {
  constexpr std::size_t kBatch = 32;
  auto cfg = pipe_config(switchsim::MatchEngine::kCompiled, false, kBatch);
  cfg.packet_threshold_n = 4;
  cfg.idle_timeout_delta = 1e6;
  switchsim::Pipeline pipe(cfg, dm);
  switchsim::SimStats st;
  std::vector<traffic::Packet> batch(kBatch);
  double ts = 0.0;
  auto fill = [&] {
    for (auto& p : batch) {
      p.ft = {0x0A000001u, 0x0A000002u, 4242, 443, traffic::kProtoTcp};
      p.length = 120;
      p.ts = (ts += 0.0001);
    }
  };
  for (int i = 0; i < 4; ++i) {  // classify the flow and grow the staging
    fill();
    pipe.process_batch({batch.data(), batch.size()}, st);
  }
  const std::size_t before = harness::alloc_count();
  for (int i = 0; i < 600; ++i) {
    fill();
    pipe.process_batch({batch.data(), batch.size()}, st);
  }
  return harness::alloc_count() - before;
}

std::string json_bool(bool b) { return b ? "true" : "false"; }

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
    else {
      std::cerr << "usage: bench_throughput [--smoke] [--out <path>]\n";
      return 2;
    }
  }

  // --- workload -------------------------------------------------------------
  // Flow-rich botnet + scan mix: thousands of short flows, so most packets
  // are pre-threshold (brown -> per-packet PL match) or finalisations
  // (blue -> FL match). This is the regime where the match engine is the
  // bottleneck — long-lived flood flows would hide it behind the blacklist
  // and stored-label fast paths (red/purple), which never consult rules.
  ml::Rng rng(0xBE7CAull);
  traffic::BenignConfig bcfg;
  bcfg.flows = smoke ? 30 : 600;
  traffic::AttackConfig acfg;
  acfg.flows = smoke ? 250 : 5000;
  const traffic::Trace benign = traffic::benign_trace(bcfg, rng);
  std::vector<traffic::Trace> parts;
  parts.push_back(benign);
  parts.push_back(traffic::attack_trace(traffic::AttackType::kMirai, acfg, rng));
  parts.push_back(traffic::attack_trace(traffic::AttackType::kAidra, acfg, rng));
  parts.push_back(traffic::attack_trace(traffic::AttackType::kOsScan, acfg, rng));
  const traffic::Trace trace = traffic::merge_traces(std::move(parts));

  // Whitelists are fitted on benign flows only (as in deployment), so the
  // attack majority of the trace misses every rule — the case where the
  // linear scan pays for the full table and the interval index does not.
  const auto features = switchsim::extract_switch_features(benign, 8, 10.0);
  const std::size_t rules_per_table = 512;  // >= the 64-rule acceptance floor
  const std::size_t tables = 5;             // 2560 entries: a realistic TCAM budget
  SyntheticModel model(benign, features.x, tables, rules_per_table, rng);
  const auto dm = model.deployed();

  // --- correctness gates ----------------------------------------------------
  // 1. Engine parity: per-packet verdicts must be bit-identical.
  switchsim::Pipeline lin(pipe_config(switchsim::MatchEngine::kLinear, true), dm);
  switchsim::Pipeline comp(pipe_config(switchsim::MatchEngine::kCompiled, true), dm);
  const auto st_lin = lin.run(trace);
  const auto st_comp = comp.run(trace);
  const bool engines_agree = st_lin.pred == st_comp.pred &&
                             st_lin.path_count == st_comp.path_count &&
                             st_lin.dropped == st_comp.dropped;

  // 1b. Batch parity: the batched staging path must be member-wise identical
  //     to the scalar reference (pred/truth included), at a batch size that
  //     leaves a ragged tail on this trace.
  bool batched_equals_scalar = true;
  for (const std::size_t b : {32u, 128u}) {
    switchsim::Pipeline batched(pipe_config(switchsim::MatchEngine::kCompiled, true, b), dm);
    batched_equals_scalar = batched_equals_scalar && batched.run(trace) == st_comp;
  }

  // 2. Shard determinism: same K, different thread counts, same everything.
  switchsim::ReplayConfig det;
  det.shards = 4;
  det.num_threads = 1;
  const auto d1 = switchsim::replay_sharded(trace, pipe_config(switchsim::MatchEngine::kCompiled, true), dm, det);
  det.num_threads = 4;
  const auto d4 = switchsim::replay_sharded(trace, pipe_config(switchsim::MatchEngine::kCompiled, true), dm, det);
  const bool sharded_deterministic =
      d1.stats.pred == d4.stats.pred && d1.stats.dropped == d4.stats.dropped &&
      d1.stats.path_count == d4.stats.path_count;

  // 3. Zero-allocation steady state, scalar and batched (skipped under
  //    sanitizers, which own the allocator and make the counter blind).
  const std::size_t steady_allocs =
      harness::alloc_counting_active()
          ? steady_state_allocs(dm) + steady_state_allocs_batched(dm)
          : 0;

  // --- timing sweep ---------------------------------------------------------
  const std::size_t reps = smoke ? 1 : 3;
  std::vector<RunResult> runs;
  runs.push_back(measure("linear", trace, dm, switchsim::MatchEngine::kLinear, 1, reps));
  for (const std::size_t shards : smoke ? std::vector<std::size_t>{1, 2}
                                        : std::vector<std::size_t>{1, 2, 4, 8}) {
    runs.push_back(measure("compiled", trace, dm, switchsim::MatchEngine::kCompiled, shards, reps));
  }
  const double speedup = runs[1].packets_per_sec / runs[0].packets_per_sec;
  // Batch-size sweep on the compiled engine (batch 1 = the degenerate scalar
  // staging, the sweep's own reference), then the batched engine across the
  // shard counts — batching composes with sharding.
  for (const std::size_t b : smoke ? std::vector<std::size_t>{1, 32}
                                   : std::vector<std::size_t>{1, 8, 32, 128}) {
    runs.push_back(
        measure("compiled-batched", trace, dm, switchsim::MatchEngine::kCompiled, 1, reps, b));
  }
  double best_batched_pps = 0.0;
  std::size_t best_batch = 0;
  for (const auto& r : runs) {
    if (r.engine == "compiled-batched" && r.packets_per_sec > best_batched_pps) {
      best_batched_pps = r.packets_per_sec;
      best_batch = r.batch_size;
    }
  }
  if (!smoke) {
    for (const std::size_t shards : {2u, 4u, 8u}) {
      runs.push_back(measure("compiled-batched", trace, dm, switchsim::MatchEngine::kCompiled,
                             shards, reps, 32));
    }
  }
  // Batched-vs-scalar speedup at shards = 1: the per-core claim.
  const double batched_speedup = best_batched_pps / runs[1].packets_per_sec;

  // --- compiled-forest kernel throughput ------------------------------------
  // The AOT model path itself (DESIGN.md §4h): a conventional iForest fit on
  // the benign flow features, quantised, and lowered to the flat SoA kernel.
  // Keys are the quantised 13-field feature rows tiled to a packet-scale
  // stream. Three rates: the pointer-chasing QuantizedTree reference walk,
  // the compiled scalar walk, and the batched tree-major kernel — all three
  // produce bit-identical sums (asserted here, packet-for-packet).
  double forest_ref_kps = 0.0, forest_scalar_kps = 0.0, forest_batched_kps = 0.0;
  bool forest_bit_exact = true;
  std::size_t forest_nodes = 0;
  {
    // Deployment-scale ensemble: the switch carries `tables` trees (the
    // 5-table vote above), so the kernel is measured at the same width.
    ml::IsolationForestConfig fcfg;
    fcfg.num_trees = tables;
    ml::IsolationForest forest(fcfg);
    forest.fit(features.x, rng);
    std::vector<core::QuantizedTree> qtrees;
    for (const auto& t : forest.trees()) qtrees.push_back(core::quantize_tree(t, model.fl_quant));
    const auto compiled = core::compile_forest(qtrees);
    forest_nodes = compiled.node_count();

    const std::size_t width = features.x.cols();
    const std::size_t rows = features.x.rows();
    const std::size_t n_keys = smoke ? 4096 : 1 << 17;
    std::vector<std::uint32_t> keys(n_keys * width);
    {
      std::vector<double> row(width);
      std::vector<std::uint32_t> qrow(width);
      for (std::size_t i = 0; i < n_keys; ++i) {
        const auto src = features.x.row(i % rows);
        row.assign(src.begin(), src.end());
        model.fl_quant.quantize_into(row, qrow);
        std::copy(qrow.begin(), qrow.end(), keys.begin() + static_cast<std::ptrdiff_t>(i * width));
      }
    }
    std::vector<double> ref_out(n_keys), scalar_out(n_keys), batched_out(n_keys);
    const std::size_t kernel_reps = smoke ? 1 : 24;
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < kernel_reps; ++rep) {
      for (std::size_t i = 0; i < n_keys; ++i) {
        const std::span<const std::uint32_t> key(keys.data() + i * width, width);
        double acc = 0.0;
        for (const auto& t : qtrees) acc += t.payload_at(key);
        ref_out[i] = acc;
      }
    }
    forest_ref_kps = static_cast<double>(n_keys * kernel_reps) / seconds_since(t0);
    t0 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < kernel_reps; ++rep) {
      for (std::size_t i = 0; i < n_keys; ++i) {
        scalar_out[i] =
            compiled.payload_sum({keys.data() + i * width, width});
      }
    }
    forest_scalar_kps = static_cast<double>(n_keys * kernel_reps) / seconds_since(t0);
    t0 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < kernel_reps; ++rep) {
      compiled.score_batch(keys, width, batched_out);
    }
    forest_batched_kps = static_cast<double>(n_keys * kernel_reps) / seconds_since(t0);
    forest_bit_exact = ref_out == scalar_out && scalar_out == batched_out;
  }
  // The acceptance ratio: the batched compiled-forest path against the
  // compiled single-thread pipeline baseline (both in per-second units of
  // one packet's worth of model evaluation).
  const double forest_vs_pipeline = forest_batched_kps / runs[1].packets_per_sec;

  // --- per-stage observability breakdown ------------------------------------
  // One instrumented 2-shard replay (DESIGN.md §4d): per-path packet counts
  // and latency histograms, occupancy gauges, control-plane counters, shard
  // wall times and pool queue waits. Written as a separate artifact so the
  // gate JSON above keeps its exact schema; non-"timing." keys in it are
  // byte-deterministic (check.sh --obs-smoke asserts so).
  {
    obs::Registry reg;
    auto ocfg = pipe_config(switchsim::MatchEngine::kCompiled, false, 32);
    ocfg.metrics = &reg;
    switchsim::ReplayConfig rc;
    rc.shards = 2;
    (void)switchsim::replay_sharded(trace, ocfg, dm, rc);
    reg.gauge("host.hardware_threads")
        .set(static_cast<double>(std::thread::hardware_concurrency()));
    // Engine variant of the instrumented run, so the snapshot is
    // self-describing (1 = compiled interval-bitmap engine).
    reg.gauge("replay.batch_size").set(static_cast<double>(ocfg.batch_size));
    reg.gauge("replay.engine_compiled")
        .set(ocfg.match_engine == switchsim::MatchEngine::kCompiled ? 1.0 : 0.0);
    std::ofstream of("BENCH_pipeline_obs.json");
    of << obs::to_json(reg.snapshot());
  }

  // --- report ---------------------------------------------------------------
  std::ostringstream js;
  js << "{\n"
     << "  \"smoke\": " << json_bool(smoke) << ",\n"
     // Shard scaling is bounded by physical parallelism: on a 1-core host
     // the shard sweep measures overhead only (the determinism gate still
     // proves the sharded path correct at any thread count).
     << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
     << "  \"trace_packets\": " << trace.size() << ",\n"
     << "  \"fl_tables\": " << tables << ",\n"
     << "  \"fl_rules_per_table\": " << rules_per_table << ",\n"
     << "  \"alloc_counting_active\": " << json_bool(harness::alloc_counting_active()) << ",\n"
     << "  \"configs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    js << "    {\"engine\": \"" << r.engine << "\", \"shards\": " << r.shards
       << ", \"batch_size\": " << r.batch_size
       << ", \"packets_per_sec\": " << r.packets_per_sec
       << ", \"ns_per_packet\": " << r.ns_per_packet
       << ", \"allocs_per_packet\": " << r.allocs_per_packet << "}"
       << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  js << "  ],\n"
     << "  \"path_counts\": {\"red\": " << st_lin.path(switchsim::Path::kRed)
     << ", \"brown\": " << st_lin.path(switchsim::Path::kBrown)
     << ", \"blue\": " << st_lin.path(switchsim::Path::kBlue)
     << ", \"purple\": " << st_lin.path(switchsim::Path::kPurple)
     << ", \"orange\": " << st_lin.path(switchsim::Path::kOrange) << "},\n"
     << "  \"speedup_compiled_vs_linear\": " << speedup << ",\n"
     << "  \"speedup_batched_vs_scalar\": " << batched_speedup << ",\n"
     << "  \"best_batch_size\": " << best_batch << ",\n"
     << "  \"forest_kernel\": {\"trees\": " << tables
     << ", \"nodes\": " << forest_nodes
     << ", \"reference_keys_per_sec\": " << forest_ref_kps
     << ", \"compiled_scalar_keys_per_sec\": " << forest_scalar_kps
     << ", \"compiled_batched_keys_per_sec\": " << forest_batched_kps
     << ", \"bit_exact\": " << json_bool(forest_bit_exact)
     << ", \"batched_vs_pipeline_baseline\": " << forest_vs_pipeline << "},\n"
     << "  \"steady_state_allocs_per_packet\": " << steady_allocs << ",\n"
     << "  \"compiled_equals_linear\": " << json_bool(engines_agree) << ",\n"
     << "  \"batched_equals_scalar\": " << json_bool(batched_equals_scalar) << ",\n"
     << "  \"sharded_deterministic\": " << json_bool(sharded_deterministic) << "\n"
     << "}\n";

  std::ofstream f(out_path);
  f << js.str();
  f.close();
  std::cout << js.str();

  if (!engines_agree) {
    std::cerr << "FAIL: compiled engine verdicts diverge from the linear scan\n";
    return 1;
  }
  if (!batched_equals_scalar) {
    std::cerr << "FAIL: batched staging path diverges from the scalar reference\n";
    return 1;
  }
  if (!forest_bit_exact) {
    std::cerr << "FAIL: compiled-forest kernels diverge from the quantised reference walk\n";
    return 1;
  }
  if (!sharded_deterministic) {
    std::cerr << "FAIL: sharded replay is not bit-identical across thread counts\n";
    return 1;
  }
  if (steady_allocs != 0) {
    std::cerr << "FAIL: steady-state packet path performed " << steady_allocs
              << " heap allocations\n";
    return 1;
  }
  return 0;
}
