# Empty dependencies file for p4_artifact.
# This may be replaced when dependencies are built.
