// Online whitelist refinement — Fig. 1 step 12 / §2: "FL features from
// benign traffic may be used to update the whitelist rules table". The data
// plane mirrors the flow-level features of flows it classified benign; the
// controller uses them to *tighten the ensemble's agreement*: when the
// majority voted benign but some per-tree tables missed, the nearest rule
// of each missing table is stretched just enough to cover the observation —
// bounded by a per-field extension budget so a trickle of borderline flows
// cannot pry a table open (the same conservatism as the robust support
// clip). Keys the majority rejected are never learned from: the data plane
// does not mirror them as benign in the first place.
#pragma once

#include <cstdint>
#include <span>

#include "core/whitelist.hpp"

namespace iguard::core {

struct OnlineUpdateConfig {
  /// Max per-field stretch (quantised levels) an update may apply to a rule.
  std::uint32_t max_extension_per_field = 1300;  // ~2% of a 16-bit domain
  /// Stop updating after this many applied extensions (safety valve).
  std::size_t max_updates = 10'000;
};

class WhitelistUpdater {
 public:
  WhitelistUpdater(VoteWhitelist& whitelist, OnlineUpdateConfig cfg = {})
      : wl_(&whitelist), cfg_(cfg) {}

  /// Feed one mirrored benign observation (quantised feature key). Tables
  /// already matching are untouched; each non-matching table's nearest rule
  /// is extended iff every field's gap fits the budget. Returns the number
  /// of tables whose rules were extended.
  std::size_t observe_benign(std::span<const std::uint32_t> key);

  std::size_t keys_seen() const { return keys_seen_; }
  std::size_t keys_fully_covered() const { return fully_covered_; }
  std::size_t extensions_applied() const { return extensions_; }
  /// True once the max_updates safety valve has closed: no further rule
  /// extensions will be applied, the whitelist is frozen.
  bool budget_exhausted() const { return extensions_ >= cfg_.max_updates; }
  /// Admissible table extensions refused solely because the budget was
  /// spent — operators (and the drift detector, core/model_swap.hpp) watch
  /// this to see the valve closing. Tables with no admissible nearest rule
  /// are NOT counted: they would never have been extended regardless of
  /// budget, and counting them would overstate the drift signal.
  std::size_t rejected_by_budget() const { return rejected_by_budget_; }

 private:
  VoteWhitelist* wl_;
  OnlineUpdateConfig cfg_;
  std::size_t keys_seen_ = 0;
  std::size_t fully_covered_ = 0;
  std::size_t extensions_ = 0;
  std::size_t rejected_by_budget_ = 0;
};

}  // namespace iguard::core
