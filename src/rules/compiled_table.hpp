// Compiled rule-match engine: the bitmap-intersection model of a TCAM range
// stage. A RuleTable's priority-ordered linear scan costs O(rules × fields)
// per lookup; a real Tofino answers the same query in one pipeline pass. To
// match that asymptotically, compilation builds one interval index per field:
// the sorted range endpoints of every rule partition the 32-bit domain into
// intervals on which the covering rule set is constant, and each interval
// carries that set as a 64-bit-word bitmask (bit i = priority-sorted rule i).
// A lookup is then `fields` binary searches plus a word-wise AND sweep; the
// first set bit of the intersection is the highest-priority match — exactly
// the TCAM's priority encoder. Results are bit-identical to RuleTable by
// construction (tests/test_compiled_table.cpp property-checks this on random
// rule sets), which is what lets the pipeline swap engines freely.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "rules/rule_table.hpp"

namespace iguard::rules {

class CompiledRuleTable {
 public:
  CompiledRuleTable() = default;
  /// Compile a priority-sorted table. The source rules are copied so match()
  /// can return them and so recompilation never dangles.
  explicit CompiledRuleTable(const RuleTable& table) { compile(table.rules()); }
  explicit CompiledRuleTable(std::vector<RangeRule> rules) {
    compile(RuleTable(std::move(rules)).rules());
  }

  std::size_t size() const { return rules_.size(); }
  const std::vector<RangeRule>& rules() const { return rules_; }

  /// Index (into rules(), i.e. priority order) of the first matching rule,
  /// or -1. Performs no heap allocation.
  int match_index(std::span<const std::uint32_t> key) const;

  /// True iff any rule matches (the per-tree benign vote). No allocation.
  bool matches_any(std::span<const std::uint32_t> key) const { return match_index(key) >= 0; }

  /// Batch width above which the batched entry points fall back to per-key
  /// scalar lookups (the row-pointer scratch is stack-resident).
  static constexpr std::size_t kMaxBatchWidth = 16;

  /// Batched match: `keys` holds out.size() row-major keys of `width` fields
  /// each; out[i] = match_index(key_i). The per-field interval binary
  /// searches run field-major across the batch (one field's bounds array
  /// stays cache-resident for every key) before the per-key bitmask AND
  /// sweeps. Bit-exact with the scalar loop; no heap allocation. `skip`
  /// (optional, out.size() bytes) marks keys to leave untouched.
  void match_index_batch(std::span<const std::uint32_t> keys, std::size_t width,
                         std::span<int> out, const std::uint8_t* skip = nullptr) const;

  /// Batched any-match (the per-tree benign vote): out[i] = matches_any.
  /// Same amortisation and exactness contract as match_index_batch.
  void matches_any_batch(std::span<const std::uint32_t> keys, std::size_t width,
                         std::span<std::uint8_t> out, const std::uint8_t* skip = nullptr) const;

  /// Batched whitelist classify: matched rule's label, else 1. Bit-exact
  /// with per-key classify; no allocation.
  void classify_batch(std::span<const std::uint32_t> keys, std::size_t width,
                      std::span<int> out) const;

  /// First matching rule in priority order — same contract as
  /// RuleTable::match (copies the rule; use match_index on hot paths).
  std::optional<RangeRule> match(std::span<const std::uint32_t> key) const {
    const int i = match_index(key);
    return i >= 0 ? std::optional<RangeRule>(rules_[static_cast<std::size_t>(i)]) : std::nullopt;
  }

  /// Whitelist semantics, identical to RuleTable::classify: matched rule's
  /// label, else 1 (no-match defaults to malicious). No allocation.
  int classify(std::span<const std::uint32_t> key) const {
    const int i = match_index(key);
    return i >= 0 ? rules_[static_cast<std::size_t>(i)].label : 1;
  }

 private:
  /// Interval index for one field of one key-width group. Interval i spans
  /// [bounds[i], bounds[i+1]) (the last one extends to 2^32), and
  /// masks[i * words + w] holds bit b for every local rule 64*w + b whose
  /// range covers the whole interval. Bounds are stored as uint32 (every
  /// start point fits: the one candidate equal to 2^32 is popped during
  /// compilation) so the binary-search working set is half the size.
  /// covered[i] == 0 marks an interval no rule covers on this field — a key
  /// landing there cannot match anything, so lookups reject before touching
  /// any mask row (the common case for off-whitelist traffic).
  struct FieldIndex {
    std::vector<std::uint32_t> bounds;   // ascending interval start points
    std::vector<std::uint8_t> covered;   // per interval: any mask bit set
    std::vector<std::uint64_t> masks;    // bounds.size() rows × `words` words
  };

  /// Rules are grouped by field count: a key only ever matches rules of its
  /// own width (RangeRule::matches), and priority order within a width group
  /// is the global priority order restricted to that group.
  struct WidthGroup {
    std::size_t width = 0;
    std::size_t words = 0;
    std::vector<FieldIndex> fields;        // one per key position
    std::vector<std::uint32_t> to_global;  // local rule index -> rules_ index
  };

  void compile(const std::vector<RangeRule>& sorted_rules);

  std::vector<RangeRule> rules_;        // priority-sorted, as in RuleTable
  std::vector<WidthGroup> groups_;      // ascending width
};

}  // namespace iguard::rules
