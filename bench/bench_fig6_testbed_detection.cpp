// Reproduces Fig. 6 (5 headline attacks) and Fig. 9 (10 further attacks):
// per-packet detection performance on the switch testbed. Both systems are
// compiled to whitelist rules and replayed through the data-plane pipeline
// simulator under its constraints — 13 integer FL features truncated at
// (n, delta), 4 PL features for early packets, bi-hash double hash tables
// with collisions, and the blacklist/controller loop. Model selection uses
// the §4.2.1 reward (alpha = 0.5) balancing detection and memory footprint.
//
// Paper's shape: iGuard > iForest by 5-48% F1, 2-55.7% ROCAUC, 26-70% PRAUC,
// and testbed numbers sit below the CPU numbers of Fig. 5 (fewer features,
// integer math, truncation).
#include <iostream>

#include "eval/report.hpp"
#include "harness/testbed_lab.hpp"

using namespace iguard;

int main() {
  harness::TestbedLab lab{harness::TestbedLabConfig{}};

  eval::Table table({"attack", "model", "macro F1", "ROC AUC", "PR AUC", "FL rules"});
  double f1_lo = 1e9, f1_hi = -1e9, roc_lo = 1e9, roc_hi = -1e9, pr_lo = 1e9, pr_hi = -1e9;

  for (const auto atk : traffic::all_attacks()) {
    const auto out = lab.run_attack(atk);
    const std::string name = traffic::attack_name(atk);
    table.add_row({name, "iForest", eval::Table::num(out.iforest.macro_f1),
                   eval::Table::num(out.iforest.roc_auc), eval::Table::num(out.iforest.pr_auc),
                   std::to_string(out.iforest_fl_rules)});
    table.add_row({name, "iGuard", eval::Table::num(out.iguard.macro_f1),
                   eval::Table::num(out.iguard.roc_auc), eval::Table::num(out.iguard.pr_auc),
                   std::to_string(out.iguard_fl_rules)});
    f1_lo = std::min(f1_lo, 100.0 * (out.iguard.macro_f1 - out.iforest.macro_f1));
    f1_hi = std::max(f1_hi, 100.0 * (out.iguard.macro_f1 - out.iforest.macro_f1));
    roc_lo = std::min(roc_lo, 100.0 * (out.iguard.roc_auc - out.iforest.roc_auc));
    roc_hi = std::max(roc_hi, 100.0 * (out.iguard.roc_auc - out.iforest.roc_auc));
    pr_lo = std::min(pr_lo, 100.0 * (out.iguard.pr_auc - out.iforest.pr_auc));
    pr_hi = std::max(pr_hi, 100.0 * (out.iguard.pr_auc - out.iforest.pr_auc));
  }

  table.print(std::cout, "Fig. 6 + Fig. 9: testbed per-packet detection, 15 attacks");
  std::cout << "\niGuard vs iForest gains (percentage points):\n"
            << "  macro F1: " << eval::Table::num(f1_lo, 1) << " .. " << eval::Table::num(f1_hi, 1)
            << "   (paper: 5 .. 48.3)\n"
            << "  ROC AUC:  " << eval::Table::num(roc_lo, 1) << " .. "
            << eval::Table::num(roc_hi, 1) << "   (paper: 2 .. 55.7)\n"
            << "  PR AUC:   " << eval::Table::num(pr_lo, 1) << " .. " << eval::Table::num(pr_hi, 1)
            << "   (paper: 26 .. 70)\n";
  table.write_csv("fig6_fig9_testbed_detection.csv");
  return 0;
}
