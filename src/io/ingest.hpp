// Hardened ingest boundary (DESIGN.md §4g): every byte stream that claims to
// be a trace — CSV rows, pcap captures, digest wire records — crosses this
// layer before it reaches a pipeline. The contract is the inverse of the
// legacy loaders': malformed input NEVER throws and NEVER silently
// disappears. Each offered record is either accepted into the output trace
// or quarantined with a category, a bounded raw-byte snippet, and a counter,
// so `offered == accepted + quarantined` holds for every input, including
// adversarial garbage (the fuzz targets in fuzz/ abort if it ever does not).
//
// Timestamps are sanitised the same way the flow engine's to_us() clamp
// works (switchsim/flow_state.hpp): negative stamps clamp to zero and
// regressions clamp to the running maximum, each counted — so a hardened
// trace is monotone by construction and downstream epoch logic never sees
// time run backwards.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "switchsim/tables.hpp"
#include "trafficgen/packet.hpp"

namespace iguard::io {

/// Why a record was quarantined. Categories are coarse on purpose: they are
/// shed/alert dimensions, not a parser diagnostic (the detail string carries
/// the specifics).
enum class IngestErrorCategory : std::uint8_t {
  kTruncated = 0,    // record shorter than its format's minimum
  kBadField,         // a field failed to parse (non-numeric, wrong count)
  kRangeViolation,   // parsed fine but outside the schema's bounds
  kUnsupported,      // well-formed but outside the supported subset
  kOversized,        // record larger than IngestLimits::max_record_bytes
  kBudget,           // record beyond IngestLimits::max_records
  kContainer,        // stream-level damage (bad magic, truncated header)
};
inline constexpr std::size_t kIngestCategories = 7;

/// Stable lowercase name ("truncated", "bad_field", ...) — used as the
/// metrics key suffix and in quarantine dumps.
std::string_view category_name(IngestErrorCategory c);

/// One quarantined record.
struct IngestError {
  IngestErrorCategory category = IngestErrorCategory::kBadField;
  std::uint64_t record_index = 0;  // 0-based offered-record index
  std::string detail;              // what failed, bounded length
  std::string snippet;             // first N raw bytes of the record
};

/// Bounded ring of the most recent quarantined records: pushes beyond the
/// capacity evict the oldest entry (counted), so a garbage flood costs O(1)
/// memory — the per-category counters in IngestStats keep the totals.
class QuarantineRing {
 public:
  QuarantineRing() = default;
  explicit QuarantineRing(std::size_t capacity, std::size_t snippet_bytes)
      : capacity_(capacity), snippet_bytes_(snippet_bytes) {}

  void push(IngestErrorCategory cat, std::uint64_t record_index, std::string detail,
            std::string_view raw);

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t evicted() const { return evicted_; }
  /// Oldest-first access.
  const IngestError& operator[](std::size_t i) const {
    return ring_[(start_ + i) % ring_.size()];
  }

 private:
  std::size_t capacity_ = 64;
  std::size_t snippet_bytes_ = 64;
  std::vector<IngestError> ring_;
  std::size_t start_ = 0;  // index of the oldest entry once the ring wrapped
  std::uint64_t evicted_ = 0;
};

/// Per-component memory/volume budgets. Exceeding a budget degrades
/// gracefully: the excess is counted (kOversized / kBudget / ring eviction),
/// never allocated.
struct IngestLimits {
  std::size_t max_record_bytes = 1 << 20;  // one CSV row / pcap frame
  std::uint64_t max_records = 0;           // accepted-record cap; 0 = unlimited
  std::size_t quarantine_capacity = 64;
  std::size_t quarantine_snippet_bytes = 64;
};

/// Per-read accounting. `conserved()` is the identity every gate audits.
struct IngestStats {
  std::uint64_t offered = 0;      // records seen (well-formed or not)
  std::uint64_t accepted = 0;     // packets emitted into the trace
  std::uint64_t quarantined = 0;  // sum over by_category
  std::array<std::uint64_t, kIngestCategories> by_category{};
  std::uint64_t timestamps_clamped = 0;  // negative or non-monotone stamps fixed

  bool conserved() const;
  bool operator==(const IngestStats&) const = default;
};

enum class TraceFormat : std::uint8_t {
  kAuto = 0,  // pcap magic -> pcap, otherwise CSV
  kCsv,
  kPcap,
};

struct TraceReaderConfig {
  TraceFormat format = TraceFormat::kAuto;
  IngestLimits limits;
  /// Monotone-clamp timestamps (count each fix). When false, out-of-order
  /// stamps are quarantined as kRangeViolation instead — strict mode for
  /// sources that promise sorted input.
  bool clamp_timestamps = true;
  /// Optional caller-owned registry: offered/accepted/quarantined/clamped
  /// counters plus one counter per category under "<prefix>.".
  obs::Registry* metrics = nullptr;
  std::string metrics_prefix = "ingest";
};

/// Everything one read produced. The trace holds only accepted packets, in
/// offered order with sanitised timestamps.
struct IngestResult {
  traffic::Trace trace;
  IngestStats stats;
  QuarantineRing quarantine;
  /// False when the container itself was unusable (bad pcap magic, truncated
  /// global header): no records could even be framed. Still not an
  /// exception — stats.by_category[kContainer] counts it.
  bool container_ok = true;
  std::string container_error;
};

/// CSV schema (one packet per row, header required):
///   ts,src_ip,dst_ip,src_port,dst_port,proto,length,ttl,flags,malicious,flow_id
/// ts is seconds (printed %.17g so a write/read round-trip is bit-exact);
/// proto must be 1/6/17; flags is the TcpFlag ordinal (0..5); malicious is
/// 0/1. Parsing is std::from_chars-strict: leading '+', whitespace padding,
/// hex, or trailing junk in any field quarantines the row.
inline constexpr std::string_view kTraceCsvHeader =
    "ts,src_ip,dst_ip,src_port,dst_port,proto,length,ttl,flags,malicious,flow_id";

/// Serialise a trace in the schema above (the inverse of TraceReader's CSV
/// path for any trace that itself satisfies the schema bounds).
std::string trace_to_csv(const traffic::Trace& trace);

/// Strict, non-throwing reader for untrusted trace bytes. Construction
/// registers metrics (when attached); the read methods are safe to call on
/// arbitrary bytes and report via IngestResult only.
class TraceReader {
 public:
  explicit TraceReader(TraceReaderConfig cfg = {});

  /// Auto-detects pcap vs CSV unless cfg.format pins one.
  IngestResult read_buffer(std::string_view bytes) const;
  /// An unreadable file is a container error (kContainer), not an exception.
  IngestResult read_file(const std::string& path) const;

  const TraceReaderConfig& config() const { return cfg_; }

 private:
  IngestResult read_csv(std::string_view bytes) const;
  IngestResult read_pcap(std::string_view bytes) const;
  void count(IngestResult& r, IngestErrorCategory cat, std::uint64_t index,
             std::string detail, std::string_view raw) const;
  void finish(IngestResult& r) const;

  TraceReaderConfig cfg_;
  struct Obs {
    obs::Counter offered, accepted, quarantined, clamped;
    std::array<obs::Counter, kIngestCategories> by_category;
  };
  mutable Obs obs_;
};

/// The same boundary for traces that already live in memory (generators,
/// testbed assets): every packet is checked against the schema bounds and
/// timestamps are sanitised, with identical accounting. A valid, time-sorted
/// trace passes through byte-identical — which is what lets TestbedLab route
/// its replay input here without perturbing any published artifact.
IngestResult ingest_trace(const traffic::Trace& trace, const TraceReaderConfig& cfg = {});

/// First violated schema bound of an in-memory packet, or empty view if the
/// packet is clean. (Timestamp ordering is the trace's property, not the
/// packet's, so it is not checked here.)
std::string_view packet_violation(const traffic::Packet& p);

// ---------------------------------------------------------------------------
// Digest wire codec. The control channel's 14-byte record (switchsim
// Digest::kBytes): src_ip, dst_ip big-endian, ports big-endian, proto,
// label — exactly the five-tuple + 1-bit label of App. B.2.

void encode_digest(const switchsim::Digest& d, std::string& out);
std::string encode_digest(const switchsim::Digest& d);

/// Strict decode of exactly Digest::kBytes bytes: false on short input,
/// proto outside {1,6,17}, or label outside {0,1}.
bool decode_digest(std::string_view bytes, switchsim::Digest& out);

struct DigestDecodeStats {
  std::uint64_t offered = 0;   // whole records framed (a trailing fragment counts)
  std::uint64_t decoded = 0;
  std::uint64_t rejected = 0;  // bad proto/label, or the trailing fragment

  bool conserved() const { return offered == decoded + rejected; }
};

/// Frame a byte stream into consecutive 14-byte records and decode each.
/// Bad records are skipped with accounting; a trailing partial record is one
/// rejected offer. Never throws.
std::vector<switchsim::Digest> decode_digest_stream(std::string_view bytes,
                                                    DigestDecodeStats& stats);

}  // namespace iguard::io
