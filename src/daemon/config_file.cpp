#include "daemon/config_file.hpp"

#include <cstdio>
#include <cstdlib>

namespace iguard::daemon {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool parse_u64(std::string_view v, std::uint64_t& out) {
  if (v.empty()) return false;
  std::uint64_t acc = 0;
  for (const char c : v) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (acc > (UINT64_MAX - d) / 10) return false;
    acc = acc * 10 + d;
  }
  out = acc;
  return true;
}

bool parse_double(std::string_view v, double& out) {
  const std::string s(v);
  char* end = nullptr;
  const double x = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == s.c_str()) return false;
  out = x;
  return true;
}

bool parse_bool(std::string_view v, bool& out) {
  if (v == "true" || v == "1" || v == "on") {
    out = true;
    return true;
  }
  if (v == "false" || v == "0" || v == "off") {
    out = false;
    return true;
  }
  return false;
}

/// Apply one key=value pair; empty on success, otherwise the problem.
std::string apply(std::string_view key, std::string_view val, DaemonConfig& c) {
  const auto bad = [&](const char* want) {
    return "value '" + std::string(val) + "' for " + std::string(key) + " (want " + want + ")";
  };
  std::uint64_t u = 0;
  double d = 0.0;
  bool b = false;

  // --- source ---------------------------------------------------------------
  if (key == "source.path" || key == "trace") {
    c.source.kind = SourceConfig::Kind::kFile;
    c.source.path = std::string(val);
    return {};
  }
  if (key == "source.stdin") {
    if (!parse_bool(val, b)) return bad("bool");
    if (b) {
      c.source.kind = SourceConfig::Kind::kFd;
      c.source.fd = 0;
    }
    return {};
  }
  if (key == "source.loops") {
    if (!parse_u64(val, u)) return bad("uint");
    c.source.loops = static_cast<std::size_t>(u);
    return {};
  }
  if (key == "source.follow") {
    if (!parse_bool(val, b)) return bad("bool");
    c.source.follow = b;
    return {};
  }
  if (key == "source.loop_gap_s") {
    if (!parse_double(val, d)) return bad("double");
    c.source.loop_gap_s = d;
    return {};
  }
  if (key == "source.chunk_bytes") {
    if (!parse_u64(val, u)) return bad("uint");
    c.source.chunk_bytes = static_cast<std::size_t>(u);
    return {};
  }

  // --- reader ---------------------------------------------------------------
  if (key == "reader.format") {
    if (val == "auto") {
      c.reader.format = io::TraceFormat::kAuto;
    } else if (val == "csv") {
      c.reader.format = io::TraceFormat::kCsv;
    } else if (val == "pcap") {
      c.reader.format = io::TraceFormat::kPcap;
    } else {
      return bad("auto|csv|pcap");
    }
    return {};
  }
  if (key == "reader.clamp_timestamps") {
    if (!parse_bool(val, b)) return bad("bool");
    c.reader.clamp_timestamps = b;
    return {};
  }
  if (key == "reader.max_record_bytes") {
    if (!parse_u64(val, u)) return bad("uint");
    c.reader.limits.max_record_bytes = static_cast<std::size_t>(u);
    return {};
  }
  if (key == "reader.quarantine_capacity") {
    if (!parse_u64(val, u)) return bad("uint");
    c.reader.limits.quarantine_capacity = static_cast<std::size_t>(u);
    return {};
  }

  // --- overload gate --------------------------------------------------------
  if (key == "overload.enabled") {
    if (!parse_bool(val, b)) return bad("bool");
    c.overload.enabled = b;
    return {};
  }
  if (key == "overload.queue_capacity") {
    if (!parse_u64(val, u)) return bad("uint");
    c.overload.queue_capacity = static_cast<std::size_t>(u);
    return {};
  }
  if (key == "overload.drain_rate_pps") {
    if (!parse_double(val, d)) return bad("double");
    c.overload.drain_rate_pps = d;
    return {};
  }
  if (key == "overload.policy") {
    if (val == "drop_newest") {
      c.overload.policy = io::ShedPolicy::kDropNewest;
    } else if (val == "drop_oldest") {
      c.overload.policy = io::ShedPolicy::kDropOldest;
    } else if (val == "flow_hash") {
      c.overload.policy = io::ShedPolicy::kFlowHash;
    } else {
      return bad("drop_newest|drop_oldest|flow_hash");
    }
    return {};
  }
  if (key == "overload.seed") {
    if (!parse_u64(val, u)) return bad("uint");
    c.overload.seed = u;
    return {};
  }
  if (key == "overload.flow_shed_fraction") {
    if (!parse_double(val, d)) return bad("double");
    c.overload.flow_shed_fraction = d;
    return {};
  }

  // --- pipeline -------------------------------------------------------------
  if (key == "pipeline.packet_threshold_n") {
    if (!parse_u64(val, u)) return bad("uint");
    c.pipeline.packet_threshold_n = static_cast<std::size_t>(u);
    return {};
  }
  if (key == "pipeline.idle_timeout_delta") {
    if (!parse_double(val, d)) return bad("double");
    c.pipeline.idle_timeout_delta = d;
    return {};
  }
  if (key == "pipeline.flow_slots") {
    if (!parse_u64(val, u)) return bad("uint");
    c.pipeline.flow_slots = static_cast<std::size_t>(u);
    return {};
  }
  if (key == "pipeline.blacklist_capacity") {
    if (!parse_u64(val, u)) return bad("uint");
    c.pipeline.blacklist_capacity = static_cast<std::size_t>(u);
    return {};
  }
  if (key == "pipeline.batch_size") {
    if (!parse_u64(val, u)) return bad("uint");
    c.pipeline.batch_size = static_cast<std::size_t>(u);
    return {};
  }
  if (key == "pipeline.match_engine") {
    if (val == "linear") {
      c.pipeline.match_engine = switchsim::MatchEngine::kLinear;
    } else if (val == "compiled") {
      c.pipeline.match_engine = switchsim::MatchEngine::kCompiled;
    } else {
      return bad("linear|compiled");
    }
    return {};
  }
  if (key == "pipeline.eviction") {
    if (val == "fifo") {
      c.pipeline.eviction = switchsim::EvictionPolicy::kFifo;
    } else if (val == "lru") {
      c.pipeline.eviction = switchsim::EvictionPolicy::kLru;
    } else {
      return bad("fifo|lru");
    }
    return {};
  }
  if (key == "pipeline.control.control_latency_s") {
    if (!parse_double(val, d)) return bad("double");
    c.pipeline.control.control_latency_s = d;
    return {};
  }
  if (key == "pipeline.control.channel_capacity") {
    if (!parse_u64(val, u)) return bad("uint");
    c.pipeline.control.channel_capacity = static_cast<std::size_t>(u);
    return {};
  }
  if (key == "pipeline.swap.enabled") {
    if (!parse_bool(val, b)) return bad("bool");
    c.pipeline.swap.enabled = b;
    return {};
  }
  if (key == "pipeline.swap.publish_after_extensions") {
    if (!parse_u64(val, u)) return bad("uint");
    c.pipeline.swap.publish_after_extensions = static_cast<std::size_t>(u);
    return {};
  }
  if (key == "pipeline.swap.swap_latency_s") {
    if (!parse_double(val, d)) return bad("double");
    c.pipeline.swap.swap_latency_s = d;
    return {};
  }

  // --- daemon ---------------------------------------------------------------
  if (key == "shards") {
    if (!parse_u64(val, u)) return bad("uint");
    c.shards = static_cast<std::size_t>(u);
    return {};
  }
  if (key == "shard_seed") {
    if (!parse_u64(val, u)) return bad("uint");
    c.shard_seed = u;
    return {};
  }
  if (key == "ring_capacity") {
    if (!parse_u64(val, u)) return bad("uint");
    c.ring_capacity = static_cast<std::size_t>(u);
    return {};
  }
  if (key == "max_batch_records") {
    if (!parse_u64(val, u)) return bad("uint");
    c.max_batch_records = static_cast<std::size_t>(u);
    return {};
  }
  if (key == "alert_check_every") {
    if (!parse_u64(val, u)) return bad("uint");
    c.alert_check_every = u;
    return {};
  }
  if (key == "alert_capacity") {
    if (!parse_u64(val, u)) return bad("uint");
    c.alert_capacity = static_cast<std::size_t>(u);
    return {};
  }
  if (key == "metrics_prefix") {
    c.metrics_prefix = std::string(val);
    return {};
  }
  return "unknown key '" + std::string(key) + "'";
}

}  // namespace

std::string parse_config_text(std::string_view text, DaemonConfig& out) {
  std::size_t lineno = 0;
  while (!text.empty()) {
    ++lineno;
    const std::size_t eol = text.find('\n');
    std::string_view line = text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view{} : text.substr(eol + 1);

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return "line " + std::to_string(lineno) + ": expected key = value";
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view val = trim(line.substr(eq + 1));
    if (key.empty()) return "line " + std::to_string(lineno) + ": empty key";
    if (const std::string err = apply(key, val, out); !err.empty()) {
      return "line " + std::to_string(lineno) + ": " + err;
    }
  }
  return {};
}

std::string load_config_file(const std::string& path, DaemonConfig& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "cannot open " + path;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_config_text(text, out);
}

}  // namespace iguard::daemon
