file(REMOVE_RECURSE
  "CMakeFiles/p4_artifact.dir/p4_artifact.cpp.o"
  "CMakeFiles/p4_artifact.dir/p4_artifact.cpp.o.d"
  "p4_artifact"
  "p4_artifact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p4_artifact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
