#include "rules/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace iguard::rules {

void Quantizer::fit(const ml::Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("Quantizer::fit: empty data");
  const std::size_t m = x.cols();
  lo_.assign(m, std::numeric_limits<double>::infinity());
  hi_.assign(m, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto r = x.row(i);
    for (std::size_t j = 0; j < m; ++j) {
      lo_[j] = std::min(lo_[j], r[j]);
      hi_[j] = std::max(hi_[j], r[j]);
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    const double span = std::max(hi_[j] - lo_[j], 1e-9);
    lo_[j] -= 0.05 * span;
    hi_[j] += 0.05 * span;
  }
}

std::uint32_t Quantizer::quantize_value(std::size_t field, double v) const {
  // NaN compares false against both clamps below and would reach the
  // undefined float->int cast; map it to the lowest level deterministically.
  if (std::isnan(v)) return 0;
  const double span = hi_[field] - lo_[field];
  const double z = (v - lo_[field]) / span;
  const double scaled = z * static_cast<double>(domain_max());
  if (scaled <= 0.0) return 0;
  if (scaled >= static_cast<double>(domain_max())) return domain_max();
  return static_cast<std::uint32_t>(scaled);
}

std::vector<std::uint32_t> Quantizer::quantize(std::span<const double> x) const {
  std::vector<std::uint32_t> q(x.size());
  quantize_into(x, q);
  return q;
}

void Quantizer::quantize_into(std::span<const double> x, std::span<std::uint32_t> out) const {
  if (x.size() != lo_.size()) throw std::invalid_argument("Quantizer: width mismatch");
  if (out.size() < x.size()) throw std::invalid_argument("Quantizer: output buffer too small");
  for (std::size_t j = 0; j < x.size(); ++j) out[j] = quantize_value(j, x[j]);
}

void Quantizer::quantize_batch_into(std::size_t field, std::span<const double> v,
                                    std::span<std::uint32_t> out) const {
  if (field >= lo_.size()) throw std::invalid_argument("Quantizer: field out of range");
  if (out.size() < v.size()) throw std::invalid_argument("Quantizer: output buffer too small");
  // Same expressions as quantize_value, with the field constants hoisted:
  // ((x - lo) / span) * dmax evaluates in the identical order, so every
  // element equals quantize_value(field, v[i]) bit for bit.
  const double lo = lo_[field];
  const double span = hi_[field] - lo_[field];
  const double dmax = static_cast<double>(domain_max());
  const std::uint32_t top = domain_max();
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double x = v[i];
    if (std::isnan(x)) {
      out[i] = 0;
      continue;
    }
    const double scaled = (x - lo) / span * dmax;
    out[i] = scaled <= 0.0 ? 0u
                           : (scaled >= dmax ? top : static_cast<std::uint32_t>(scaled));
  }
}

void Quantizer::quantize_rows_into(std::span<const double> rows,
                                   std::span<std::uint32_t> out) const {
  const std::size_t m = lo_.size();
  if (m == 0) throw std::invalid_argument("Quantizer: not fitted");
  if (rows.size() % m != 0) throw std::invalid_argument("Quantizer: rows not a multiple of width");
  if (out.size() < rows.size()) throw std::invalid_argument("Quantizer: output buffer too small");
  const std::size_t n = rows.size() / m;
  // Field-major sweep: one column's constants stay in registers across all
  // n rows. Strided but bit-exact with per-row quantize_into.
  for (std::size_t j = 0; j < m; ++j) {
    const double lo = lo_[j];
    const double span = hi_[j] - lo_[j];
    const double dmax = static_cast<double>(domain_max());
    const std::uint32_t top = domain_max();
    for (std::size_t i = 0; i < n; ++i) {
      const double x = rows[i * m + j];
      if (std::isnan(x)) {
        out[i * m + j] = 0;
        continue;
      }
      const double scaled = (x - lo) / span * dmax;
      out[i * m + j] = scaled <= 0.0
                           ? 0u
                           : (scaled >= dmax ? top : static_cast<std::uint32_t>(scaled));
    }
  }
}

double Quantizer::dequantize(std::size_t field, std::uint32_t q) const {
  const double z = (static_cast<double>(q) + 0.5) / (static_cast<double>(domain_max()) + 1.0);
  return lo_[field] + z * (hi_[field] - lo_[field]);
}

std::vector<FieldRange> Quantizer::to_ranges(std::span<const double> lo,
                                             std::span<const double> hi) const {
  if (lo.size() != lo_.size() || hi.size() != lo_.size()) {
    throw std::invalid_argument("Quantizer::to_ranges: width mismatch");
  }
  std::vector<FieldRange> out(lo.size());
  for (std::size_t j = 0; j < lo.size(); ++j) {
    const bool open_lo = std::isinf(lo[j]) && lo[j] < 0.0;
    const bool open_hi = std::isinf(hi[j]) && hi[j] > 0.0;
    const std::uint32_t qlo = open_lo ? 0u : quantize_value(j, lo[j]);
    // hi is exclusive in tree-split space; the last included level is q(hi)-1
    // unless the box is unbounded above.
    std::uint32_t qhi;
    if (open_hi) {
      qhi = domain_max();
    } else {
      const std::uint32_t q = quantize_value(j, hi[j]);
      qhi = q == 0 ? 0 : q - 1;
    }
    out[j] = {qlo, std::max(qlo, qhi)};
  }
  return out;
}

}  // namespace iguard::rules
