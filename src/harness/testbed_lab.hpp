// Shared harness for the paper's testbed experiments (§4.2, Figs. 6/9,
// Tables 1-3 switch rows, App. B): everything runs under data-plane
// constraints — the 13 integer FL features truncated at (n, delta), the 4
// PL features for early packets, whitelist rules compiled into tables, and
// per-packet verdicts measured by replaying traces through the pipeline
// simulator. The conventional-iForest baseline is deployed through the
// same machinery (path-length rule compilation, as HorusEye does).
#pragma once

#include <memory>

#include "core/iguard.hpp"
#include "eval/metrics.hpp"
#include "ml/iforest.hpp"
#include "switchsim/pipeline.hpp"
#include "switchsim/resources.hpp"
#include "trafficgen/attacks.hpp"

namespace iguard::harness {

struct TestbedLabConfig {
  std::size_t benign_train_flows = 3000;
  std::size_t benign_val_flows = 700;
  std::size_t benign_test_flows = 700;
  std::size_t attack_flows = 200;
  std::size_t packet_threshold_n = 32;  // the paper's n (grid-searched there)
  double idle_timeout_delta = 10.0;     // the paper's delta (seconds)
  core::AeEnsembleConfig teacher{.ensemble_size = 3,
                                 .base = ml::testbed_autoencoder_config()};
  core::GuidedForestConfig forest{};
  /// Baseline candidates (the paper's (t, Psi) grid): the deployed config
  /// is reward-selected per §4.2.1 among those whose compiled rules fit the
  /// switch — exactly "best version under the given memory budget".
  /// Candidate sizes mirror prior work's deployed iForests (sklearn /
  /// HorusEye default Psi = 256, fully grown trees).
  /// Without a teacher, conventional iForests need larger ensembles for
  /// stable path statistics, so prior deployments ran at least as many
  /// trees as iGuard (HorusEye defaults to sklearn's Psi = 256).
  std::vector<ml::IsolationForestConfig> iforest_grid{
      {.num_trees = 5, .subsample = 256, .contamination = 0.05},
      {.num_trees = 7, .subsample = 256, .contamination = 0.05},
      {.num_trees = 5, .subsample = 512, .contamination = 0.05},
      {.num_trees = 7, .subsample = 512, .contamination = 0.05},
  };
  double max_tcam_fraction = 0.60;  // deployability ceiling for one program
  core::PlModelConfig pl{};
  std::vector<double> scale_grid{0.9, 1.1, 1.3, 1.5};
  switchsim::PipelineConfig pipe{};
  double reward_alpha = 0.5;  // §4.2.1 reward weight
  /// Training-set poisoning (Table 2): fraction of benign training flows
  /// replaced-by-addition with unlabeled attack flows of `poison_type`.
  double poison_fraction = 0.0;
  traffic::AttackType poison_type = traffic::AttackType::kMirai;
  std::uint64_t seed = 2024;
};

/// Everything one attack's testbed run produces.
struct TestbedOutcome {
  // Per-packet detection metrics from the replay (the paper's Fig. 6/9).
  eval::DetectionMetrics iguard;
  eval::DetectionMetrics iforest;
  // Switch resource usage of each deployment (Table 1).
  switchsim::ResourceUsage iguard_res;
  switchsim::ResourceUsage iforest_res;
  // Replay statistics (paths, digests, mirrors) for App. B.
  switchsim::SimStats iguard_stats;
  switchsim::SimStats iforest_stats;
  // Offered load of the replayed test trace, bytes.
  std::size_t offered_bytes = 0;
  double trace_duration_s = 0.0;
  double selected_scale = 1.0;
  std::size_t iguard_fl_rules = 0;
  std::size_t iforest_fl_rules = 0;
};

/// A calibrated deployment plus the replay trace: everything needed to
/// re-run the same compiled rules under many pipeline / control-plane
/// configurations (the fault-resilience bench replays one Deployment dozens
/// of times without re-training).
struct Deployment {
  std::unique_ptr<core::IGuard> guard;      // selected iGuard model
  core::VoteWhitelist iforest_rules;        // selected baseline rules
  const rules::Quantizer* fl_quantizer = nullptr;  // owned by the lab
  traffic::Trace test_trace;                // merged benign-test + attack
  double selected_scale = 1.0;

  switchsim::DeployedModel iguard_model() const;
  switchsim::DeployedModel iforest_model() const;
};

class TestbedLab {
 public:
  explicit TestbedLab(TestbedLabConfig cfg);

  /// Full §4.2 run for one attack: calibrate on validation, deploy both
  /// systems, replay benign-test + attack traffic, measure per packet.
  TestbedOutcome run_attack(traffic::AttackType type) const;

  /// Same, but with caller-supplied attack traces (adversarial variants).
  TestbedOutcome run_with_traces(const traffic::Trace& attack_val,
                                 const traffic::Trace& attack_test) const;

  /// Training/selection half of run_with_traces: calibrate the teacher,
  /// reward-select iGuard and the baseline, and build the replay trace —
  /// but do not replay. Callers replay the returned Deployment through
  /// switchsim::Pipeline under whatever PipelineConfig they want.
  Deployment deploy_with_traces(const traffic::Trace& attack_val,
                                const traffic::Trace& attack_test) const;
  Deployment deploy_attack(traffic::AttackType type) const;

  const ml::Matrix& train_fl() const { return train_fl_; }
  const TestbedLabConfig& config() const { return cfg_; }
  /// Attack trace generator with the lab's sizing (exposed so adversarial
  /// benches can transform it before running).
  traffic::Trace make_attack_trace(traffic::AttackType type, std::uint64_t salt) const;

 private:
  TestbedLabConfig cfg_;
  traffic::Trace benign_val_trace_, benign_test_trace_;
  ml::Matrix train_fl_;   // integer switch features from the training trace
  ml::Matrix train_pl_;   // benign early-packet PL features
  ml::Matrix val_benign_fl_;
  mutable core::AeEnsemble teacher_;
  std::vector<ml::IsolationForest> iforests_;  // one per grid candidate
  rules::Quantizer fl_quantizer_;
};

}  // namespace iguard::harness
