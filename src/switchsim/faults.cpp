#include "switchsim/faults.hpp"

#include <algorithm>
#include <cmath>

namespace iguard::switchsim {

namespace {

/// Shared field checks: every validator reports through the same
/// "field: problem (got value)" shape so messages stay greppable.
std::string check_rate(const char* field, double v) {
  if (std::isnan(v) || v < 0.0 || v > 1.0) {
    return std::string(field) + ": probability must be in [0, 1] (got " + std::to_string(v) +
           ")";
  }
  return {};
}

std::string check_nonneg(const char* field, double v) {
  if (std::isnan(v) || std::isinf(v) || v < 0.0) {
    return std::string(field) + ": must be finite and >= 0 (got " + std::to_string(v) + ")";
  }
  return {};
}

}  // namespace

std::string validate_config(const FaultConfig& cfg) {
  std::string err;
  if (!(err = check_rate("digest_loss_rate", cfg.digest_loss_rate)).empty()) return err;
  if (!(err = check_rate("digest_delay_rate", cfg.digest_delay_rate)).empty()) return err;
  if (!(err = check_nonneg("digest_delay_s", cfg.digest_delay_s)).empty()) return err;
  if (!(err = check_rate("install_failure_rate", cfg.install_failure_rate)).empty()) return err;
  if (!(err = check_rate("record_truncate_rate", cfg.record_truncate_rate)).empty()) return err;
  if (!(err = check_rate("record_corrupt_rate", cfg.record_corrupt_rate)).empty()) return err;
  if (!(err = check_rate("batch_duplicate_rate", cfg.batch_duplicate_rate)).empty()) return err;
  if (!(err = check_rate("batch_reorder_rate", cfg.batch_reorder_rate)).empty()) return err;
  for (const auto& w : cfg.crashes) {
    if (!(err = check_nonneg("crashes.start_s", w.start_s)).empty()) return err;
    if (!(err = check_nonneg("crashes.duration_s", w.duration_s)).empty()) return err;
  }
  for (const auto& w : cfg.bursts) {
    if (!(err = check_nonneg("bursts.start_s", w.start_s)).empty()) return err;
    if (!(err = check_nonneg("bursts.duration_s", w.duration_s)).empty()) return err;
    // The mangler casts the (product of overlapping) multipliers to a
    // uint64 copy count; a negative or non-finite value would be UB at
    // that cast, and anything past kMaxBurstMultiplier is a copy bomb, not
    // a burst model. Sub-1 values stay legal — burst_multiplier_at clamps
    // them up to 1 (a window can only add load, never shed it).
    if (std::isnan(w.multiplier) || std::isinf(w.multiplier) || w.multiplier < 0.0 ||
        w.multiplier > kMaxBurstMultiplier) {
      return "bursts.multiplier: must be finite and in [0, " +
             std::to_string(static_cast<std::uint64_t>(kMaxBurstMultiplier)) + "] (got " +
             std::to_string(w.multiplier) + ")";
    }
  }
  return {};
}

std::string validate_config(const ControlPlaneConfig& cfg) {
  std::string err;
  if (!(err = check_nonneg("control_latency_s", cfg.control_latency_s)).empty()) return err;
  if (!(err = check_nonneg("retry_backoff_s", cfg.retry_backoff_s)).empty()) return err;
  if (!(err = check_nonneg("retry_backoff_cap_s", cfg.retry_backoff_cap_s)).empty()) return err;
  if (cfg.retry_backoff_cap_s < cfg.retry_backoff_s) {
    return "retry_backoff_cap_s: must be >= retry_backoff_s (got " +
           std::to_string(cfg.retry_backoff_cap_s) + " < " +
           std::to_string(cfg.retry_backoff_s) + ")";
  }
  if (!(err = validate_config(cfg.faults)).empty()) return "faults." + err;
  return {};
}

Controller::Controller(BlacklistTable& blacklist, ControlPlaneConfig cfg,
                       const FlowStore* store, obs::Registry* metrics,
                       std::string_view metrics_prefix)
    : blacklist_(&blacklist), cfg_(std::move(cfg)), store_(store), injector_(cfg_.faults) {
  if (const std::string err = validate_config(cfg_); !err.empty()) {
    const std::size_t colon = err.find(':');
    throw ConfigError("ControlPlaneConfig", err.substr(0, colon),
                      colon == std::string::npos ? err : err.substr(colon + 2));
  }
  std::sort(cfg_.faults.crashes.begin(), cfg_.faults.crashes.end(),
            [](const CrashWindow& a, const CrashWindow& b) { return a.start_s < b.start_s; });
  // Re-seat the injector on the sorted window list so down_at's early-exit
  // scan is valid regardless of the order the caller supplied.
  injector_ = FaultInjector(cfg_.faults);
  if (metrics != nullptr && metrics->enabled()) {
    const std::string p(metrics_prefix);
    obs_.digests = metrics->counter(p + ".digests");
    obs_.installs = metrics->counter(p + ".installs");
    obs_.install_retries = metrics->counter(p + ".install_retries");
    obs_.dead_letters = metrics->counter(p + ".dead_letters");
    obs_.digest_drops = metrics->counter(p + ".digest_drops");
    obs_.install_latency =
        metrics->histogram(p + ".install_latency_s", obs::default_install_latency_bounds_s());
    obs_.backlog = metrics->series(p + ".backlog", cfg_.backlog_sample_capacity,
                                   cfg_.backlog_sample_every);
  }
}

void Controller::on_digest(const Digest& d, double ts_s) {
  ++digests_;
  ++stats_.digests_received;
  bytes_ += Digest::kBytes;
  obs_.digests.inc();
  if (cfg_.digest_tap != nullptr) cfg_.digest_tap->push_back({d, ts_s});
  if (injector_.down_at(ts_s)) {
    // Nothing is listening: the digest notification goes nowhere.
    ++stats_.digests_lost_to_crash;
    obs_.digest_drops.inc();
    obs_.backlog.observe(static_cast<double>(channel_backlog_));
    return;
  }
  if (injector_.drop_digest()) {
    ++stats_.injected_digest_drops;
    obs_.digest_drops.inc();
    obs_.backlog.observe(static_cast<double>(channel_backlog_));
    return;
  }
  if (cfg_.channel_capacity > 0 && channel_backlog_ >= cfg_.channel_capacity) {
    ++stats_.channel_overflow_drops;
    obs_.digest_drops.inc();
    obs_.backlog.observe(static_cast<double>(channel_backlog_));
    return;
  }
  double delay = cfg_.control_latency_s;
  if (injector_.delay_digest()) {
    delay += cfg_.faults.digest_delay_s;
    ++stats_.delayed_digests;
  }
  Event ev;
  ev.digest = d;
  ev.enqueue_ts = ts_s;
  ev.due_ts = ts_s + delay;
  ev.seq = seq_++;
  channel_.push(ev);
  ++channel_backlog_;
  stats_.backlog_hwm = std::max(stats_.backlog_hwm, channel_backlog_);
  obs_.backlog.observe(static_cast<double>(channel_backlog_));
}

void Controller::on_benign_mirror(const BenignMirror& m, double ts_s) {
  // Mirrors traverse the same channel as digests (shared capacity, shared
  // crash windows, same loss/delay rates) but consume their own fault
  // streams so enabling the update path never perturbs an existing
  // workload's digest fault sequence.
  bytes_ += BenignMirror::kBytes;
  if (injector_.down_at(ts_s)) {
    ++stats_.mirrors_lost;
    return;
  }
  if (injector_.drop_mirror()) {
    ++stats_.mirrors_lost;
    return;
  }
  if (cfg_.channel_capacity > 0 && channel_backlog_ >= cfg_.channel_capacity) {
    ++stats_.mirrors_lost;
    ++stats_.channel_overflow_drops;
    ++stats_.mirror_overflow_drops;
    return;
  }
  double delay = cfg_.control_latency_s;
  if (injector_.delay_mirror()) {
    delay += cfg_.faults.digest_delay_s;
    ++stats_.delayed_mirrors;
  }
  Event ev;
  ev.mirror = m;
  ev.is_mirror = true;
  ev.enqueue_ts = ts_s;
  ev.due_ts = ts_s + delay;
  ev.seq = seq_++;
  channel_.push(ev);
  ++channel_backlog_;
  ++stats_.mirrors_enqueued;
  stats_.backlog_hwm = std::max(stats_.backlog_hwm, channel_backlog_);
  obs_.backlog.observe(static_cast<double>(channel_backlog_));
}

double Controller::backoff_delay(std::uint32_t attempt) const {
  // attempt is the number of failures so far: 1 -> base, 2 -> 2x, ... capped.
  double d = cfg_.retry_backoff_s;
  for (std::uint32_t i = 1; i < attempt && d < cfg_.retry_backoff_cap_s; ++i) d *= 2.0;
  return std::min(d, cfg_.retry_backoff_cap_s);
}

double Controller::next_recovery_ts() const {
  const auto& windows = cfg_.faults.crashes;
  if (next_recovery_ >= windows.size()) return std::numeric_limits<double>::infinity();
  return windows[next_recovery_].end_s();
}

void Controller::run_recovery(double ts_s) {
  ++next_recovery_;
  ++stats_.crashes;
  if (store_ == nullptr) return;
  // Reconcile the blacklist against the flow-label registers still resident
  // in the data plane: any flow the switch remembers as malicious gets its
  // rule (re)installed. Recovery installs are exempt from injected install
  // failures — the reconciliation sweep runs until it succeeds.
  store_->for_each([&](const IntFlowState& st) {
    if (st.label != 1) return;
    if (blacklist_->install(st.ft)) {
      ++installs_;
      ++stats_.recovery_installs;
    }
  });
  (void)ts_s;
}

void Controller::deliver(const Event& e) {
  if (e.attempt == 0 && channel_backlog_ > 0) --channel_backlog_;
  if (injector_.down_at(e.due_ts)) {
    if (e.is_mirror) {
      ++stats_.mirrors_lost;
    } else if (e.attempt == 0) {
      ++stats_.digests_lost_to_crash;
    } else {
      ++stats_.retry_installs_lost_to_crash;
    }
    return;
  }
  if (e.is_mirror) {
    ++stats_.mirrors_delivered;
    if (sink_ != nullptr) sink_->on_benign_mirror(e.mirror, e.due_ts);
    return;
  }
  if (e.attempt == 0) ++stats_.digests_delivered;
  if (e.digest.label != 1) return;  // benign digests carry no install
  ++stats_.install_attempts;
  if (injector_.fail_install()) {
    ++stats_.install_failures;
    const std::uint32_t attempt = e.attempt + 1;
    if (attempt > cfg_.max_install_retries) {
      ++stats_.dead_letters;
      obs_.dead_letters.inc();
      return;
    }
    ++stats_.install_retries;
    obs_.install_retries.inc();
    Event retry;
    retry.digest = e.digest;
    retry.enqueue_ts = e.enqueue_ts;
    retry.due_ts = e.due_ts + backoff_delay(attempt);
    retry.attempt = attempt;
    retry.seq = seq_++;
    channel_.push(retry);
    return;
  }
  blacklist_->install(e.digest.ft);
  ++installs_;
  ++stats_.installs_applied;
  obs_.installs.inc();
  // Simulated digest-to-applied latency: event-clocked, hence deterministic.
  obs_.install_latency.record(e.due_ts - e.enqueue_ts);
}

void Controller::advance_to(double now_s) {
  if (now_s < clock_) now_s = clock_;
  while (true) {
    const double ev_ts =
        channel_.empty() ? std::numeric_limits<double>::infinity() : channel_.top().due_ts;
    const double rec_ts = next_recovery_ts();
    const double t = std::min(ev_ts, rec_ts);
    if (t > now_s) break;
    clock_ = t;
    if (rec_ts <= ev_ts) {
      // Restart first: an event due exactly at the window's end is handled
      // by the freshly recovered controller.
      run_recovery(rec_ts);
    } else {
      const Event e = channel_.top();
      channel_.pop();
      deliver(e);
    }
  }
  clock_ = now_s;
}

void Controller::flush() {
  while (!channel_.empty() ||
         next_recovery_ts() < std::numeric_limits<double>::infinity()) {
    advance_to(std::min(channel_.empty() ? next_recovery_ts() : channel_.top().due_ts,
                        next_recovery_ts()));
  }
}

}  // namespace iguard::switchsim
