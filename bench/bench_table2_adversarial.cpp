// Reproduces Table 2: black-box adversarial robustness on the switch
// testbed — (a) low-rate floods (UDP/TCP DDoS throttled to 1/100 of their
// rate, hiding the volumetric signature) and (b) training-set poisoning
// (Mirai flows slipped unlabeled into 2% / 10% of the benign capture).
// Metrics are per-packet macro F1 / ROC AUC / PR AUC from the pipeline
// replay. Paper's shape: iGuard stays far ahead of the iForest baseline
// (improvements of roughly 22-57 points).
#include <iostream>

#include "eval/report.hpp"
#include "harness/testbed_lab.hpp"
#include "trafficgen/adversarial.hpp"

using namespace iguard;

namespace {

// Low-rate attack trace: the flood's specs throttled by `factor`.
traffic::Trace low_rate_trace(traffic::AttackType type, std::size_t flows, double factor,
                              std::uint64_t seed) {
  traffic::AttackConfig acfg;
  acfg.flows = flows;
  acfg.horizon = 600.0;
  ml::Rng rng(seed);
  auto specs = traffic::attack_flows(type, acfg, rng);
  traffic::apply_low_rate(specs, factor);
  return traffic::emit_packets(specs, rng);
}

std::string fmt(const eval::DetectionMetrics& m) {
  return eval::Table::pct(m.macro_f1) + "/" + eval::Table::pct(m.roc_auc) + "/" +
         eval::Table::pct(m.pr_auc);
}

}  // namespace

int main() {
  eval::Table table({"scenario", "iForest [15] (F1/ROC/PR)", "iGuard (F1/ROC/PR)"});

  // --- low-rate floods (clean training) -----------------------------------
  {
    harness::TestbedLab lab{harness::TestbedLabConfig{}};
    for (auto type : {traffic::AttackType::kUdpDdos, traffic::AttackType::kTcpDdos}) {
      const auto val = low_rate_trace(type, lab.config().attack_flows, 100.0,
                                      lab.config().seed ^ 0x10DDu);
      const auto test =
          low_rate_trace(type, lab.config().attack_flows, 100.0, lab.config().seed ^ 0xBEEF);
      const auto out = lab.run_with_traces(val, test);
      table.add_row({"Low rate (" + traffic::attack_name(type) + " 1/100)",
                     fmt(out.iforest), fmt(out.iguard)});
    }
  }

  // --- poisoning (Mirai 2% / 10%) ------------------------------------------
  for (double frac : {0.02, 0.10}) {
    harness::TestbedLabConfig cfg;
    cfg.teacher.num_threads = 0;
    cfg.forest.num_threads = 0;
    cfg.poison_fraction = frac;
    cfg.poison_type = traffic::AttackType::kMirai;
    harness::TestbedLab lab{cfg};
    const auto out = lab.run_attack(traffic::AttackType::kMirai);
    table.add_row({"Poison (Mirai " + eval::Table::pct(frac, 0) + ")", fmt(out.iforest),
                   fmt(out.iguard)});
  }

  table.print(std::cout, "Table 2: black-box low-rate and poison adversarial attacks");
  std::cout << "\nPaper reference rows:\n"
               "  Low rate (UDPDDoS 1/100): iForest 43.43/44.42/14.92  iGuard 65.92/66.67/59.01\n"
               "  Low rate (TCPDDoS 1/100): iForest 57.43/57.50/23.80  iGuard 88.84/89.12/70.93\n"
               "  Poison (Mirai 2%):        iForest 28.52/29.56/14.78  iGuard 65.75/61.56/30.54\n"
               "  Poison (Mirai 10%):       iForest 15.55/18.56/6.24   iGuard 65.21/61.50/30.06\n";
  table.write_csv("table2_adversarial.csv");
  return 0;
}
