#include "daemon/alerts.hpp"

#include <cstdio>

namespace iguard::daemon {

std::string_view alert_kind_name(AlertKind k) {
  switch (k) {
    case AlertKind::kBlacklistInstall: return "blacklist_install";
    case AlertKind::kSwapPublish: return "swap_publish";
    case AlertKind::kQuarantine: return "quarantine";
    case AlertKind::kShed: return "shed";
    case AlertKind::kReload: return "reload";
    case AlertKind::kContainer: return "container";
  }
  return "unknown";
}

AlertLog::AlertLog(std::size_t capacity) : cap_(capacity == 0 ? 1 : capacity) {
  ring_.resize(cap_);
}

void AlertLog::emit(AlertKind kind, double ts, std::uint64_t count, std::uint32_t shard,
                    std::uint64_t version) {
  const std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = AlertRecord{emitted_ + 1, kind, ts, count, shard, version};
  next_ = (next_ + 1) % cap_;
  ++emitted_;
  totals_[static_cast<std::size_t>(kind)] += count;
}

std::uint64_t AlertLog::emitted() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

std::uint64_t AlertLog::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return emitted_ > cap_ ? emitted_ - cap_ : 0;
}

std::uint64_t AlertLog::total(AlertKind kind) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return totals_[static_cast<std::size_t>(kind)];
}

void AlertLog::snapshot(std::vector<AlertRecord>& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  out.clear();
  const std::size_t n = emitted_ < cap_ ? static_cast<std::size_t>(emitted_) : cap_;
  const std::size_t start = emitted_ < cap_ ? 0 : next_;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) % cap_]);
}

std::string AlertLog::render() const {
  std::vector<AlertRecord> rows;
  snapshot(rows);
  std::string out;
  out.reserve(rows.size() * 64);
  char buf[160];
  for (const auto& r : rows) {
    std::snprintf(buf, sizeof(buf),
                  "seq=%llu ts=%.17g kind=%s shard=%u count=%llu version=%llu\n",
                  static_cast<unsigned long long>(r.seq), r.ts,
                  std::string(alert_kind_name(r.kind)).c_str(), r.shard,
                  static_cast<unsigned long long>(r.count),
                  static_cast<unsigned long long>(r.version));
    out += buf;
  }
  return out;
}

}  // namespace iguard::daemon
