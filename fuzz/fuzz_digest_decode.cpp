// Fuzz target: the 14-byte digest wire codec (io/ingest.hpp). Contract:
//   - decode_digest_stream never throws/crashes on arbitrary bytes;
//   - conservation: offered == decoded + rejected;
//   - every decoded digest is schema-clean (proto in {1,6,17}, label 0/1)
//     and survives an encode -> decode round trip bit-identically.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "io/ingest.hpp"

namespace {

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_digest_decode: invariant violated: %s\n", what);
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  iguard::io::DigestDecodeStats stats;
  const auto digests = iguard::io::decode_digest_stream(bytes, stats);

  check(stats.conserved(), "offered != decoded + rejected");
  check(digests.size() == stats.decoded, "vector size != decoded");
  for (const auto& d : digests) {
    check(d.ft.proto == 1 || d.ft.proto == 6 || d.ft.proto == 17, "bad proto decoded");
    check(d.label == 0 || d.label == 1, "bad label decoded");
    const std::string wire = iguard::io::encode_digest(d);
    check(wire.size() == iguard::switchsim::Digest::kBytes, "re-encode size");
    iguard::switchsim::Digest back;
    check(iguard::io::decode_digest(wire, back), "re-encoded digest failed decode");
    check(back.ft == d.ft && back.label == d.label, "round trip not bit-identical");
  }
  return 0;
}
